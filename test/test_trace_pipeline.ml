(* Tests for the low-overhead trace pipeline: buffered sinks, the
   binary trace encoding, format detection, the typed view fast path,
   emit short-circuiting, the run profiler and the bench regression
   gate. *)

module Json = Obs.Json
module Sink = Obs.Sink
module Btrace = Obs.Btrace
module Trace_file = Obs.Trace_file
module View = Obs.View
module Trace = Lockss.Trace
module Metrics = Lockss.Metrics
module Admission = Lockss.Admission
module Grade = Lockss.Grade
module Scenario = Experiments.Scenario
module Duration = Repro_prelude.Duration

let with_temp_file f =
  let path = Filename.temp_file "trace_pipeline" ".tmp" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_all path = In_channel.with_open_bin path In_channel.input_all

(* One event of every kind in the taxonomy. *)
let sample_events =
  [
    Trace.Poll_started { poller = 3; au = 1; poll_id = 7; inner_candidates = 9 };
    Trace.Solicitation_sent { poller = 3; voter = 5; au = 1; poll_id = 7; attempt = 2 };
    Trace.Invitation_dropped
      { voter = 5; claimed = 12; au = 0; poll_id = 4; reason = Admission.Refractory };
    Trace.Invitation_admitted
      {
        voter = 5;
        claimed = 3;
        au = 1;
        poll_id = Some 7;
        path = Trace.Admitted_known Grade.Even;
      };
    Trace.Invitation_refused { voter = 5; poller = 3; au = 1; poll_id = 7 };
    Trace.Invitation_accepted { voter = 5; poller = 3; au = 1; poll_id = 7 };
    Trace.Vote_sent { voter = 5; poller = 3; au = 1; poll_id = 7 };
    Trace.Poll_sampled
      { poller = 3; au = 1; poll_id = 7; invited = [ 5; 6 ]; reference = [ 5; 6; 8 ] };
    Trace.Evaluation_started { poller = 3; au = 1; poll_id = 7; votes = 6 };
    Trace.Repair_applied
      { poller = 3; au = 1; poll_id = 7; block = 4; version = 99; clean = true };
    Trace.Poll_concluded { poller = 3; au = 1; poll_id = 7; outcome = Metrics.Alarmed };
    Trace.Effort_charged
      {
        peer = 5;
        role = Trace.Loyal;
        phase = Trace.Voting;
        poller = Some 3;
        au = Some 1;
        poll_id = Some 7;
        seconds = 432.5;
      };
    Trace.Effort_received
      { peer = 3; from_ = 5; phase = Trace.Voting; au = 1; poll_id = 7; seconds = 12.25 };
    Trace.Fault_dropped { src = 3; dst = 5 };
    Trace.Fault_duplicated { src = 3; dst = 5 };
    Trace.Fault_delayed { src = 3; dst = 5; extra = 0.25 };
    Trace.Node_crashed { node = 5 };
    Trace.Node_restarted { node = 5 };
    Trace.Invariant_violated
      {
        invariant = "refractory";
        peer = Some 5;
        au = Some 1;
        poll_id = None;
        detail = "two admissions 3.2s apart";
      };
  ]

let sample_jsons =
  List.mapi
    (fun i event -> Trace.to_json ~time:(10. *. float_of_int (i + 1)) event)
    sample_events

(* -- Sink ---------------------------------------------------------------- *)

let test_sink_size_bound () =
  with_temp_file (fun path ->
      let sink = Sink.open_file ~buffer_bytes:16 path in
      Sink.write sink "0123456789";
      Alcotest.(check int) "pending" 10 (Sink.pending sink);
      Alcotest.(check int) "nothing handed over" 0 (Sink.written sink);
      (* Crossing the 16-byte threshold drains the buffer. *)
      Sink.write sink "0123456789";
      Alcotest.(check int) "drained" 20 (Sink.written sink);
      Alcotest.(check int) "empty buffer" 0 (Sink.pending sink);
      Sink.close sink;
      Alcotest.(check string) "file content" "01234567890123456789" (read_all path))

let test_sink_explicit_flush () =
  with_temp_file (fun path ->
      let sink = Sink.open_file path in
      Sink.write_line sink "hello";
      Alcotest.(check string) "buffered, not on disk" "" (read_all path);
      Sink.flush sink;
      Alcotest.(check string) "flush makes it durable" "hello\n" (read_all path);
      Sink.close sink)

let test_sink_time_bound () =
  with_temp_file (fun path ->
      let sink = Sink.open_file ~flush_interval:10. path in
      Sink.write sink ~now:0. "a";
      Sink.write sink ~now:5. "b";
      Alcotest.(check int) "within interval: buffered" 2 (Sink.pending sink);
      Sink.write sink ~now:11. "c";
      Alcotest.(check int) "interval elapsed: drained" 3 (Sink.written sink);
      (* The mark advances: the next drain needs another full interval. *)
      Sink.write sink ~now:15. "d";
      Alcotest.(check int) "new interval: buffered" 1 (Sink.pending sink);
      Sink.close sink)

let test_sink_close_semantics () =
  with_temp_file (fun path ->
      let sink = Sink.open_file path in
      Sink.write sink "x";
      Sink.close sink;
      Alcotest.(check bool) "closed" true (Sink.closed sink);
      Sink.close sink;
      (* idempotent *)
      Alcotest.(check string) "flushed on close" "x" (read_all path);
      Alcotest.check_raises "write after close"
        (Invalid_argument "Sink: write after close") (fun () -> Sink.write sink "y"))

let test_sink_flush_on_exception () =
  with_temp_file (fun path ->
      (try
         Sink.with_file path (fun sink ->
             Sink.write_line sink "before the crash";
             failwith "boom")
       with Failure _ -> ());
      Alcotest.(check string) "trace survives the crash" "before the crash\n"
        (read_all path))

let test_sink_append_reopen () =
  with_temp_file (fun path ->
      Sink.with_file path (fun sink -> Sink.write_line sink "first");
      Sink.with_file ~append:true path (fun sink -> Sink.write_line sink "second");
      Alcotest.(check string) "append keeps the first run" "first\nsecond\n"
        (read_all path);
      Sink.with_file path (fun sink -> Sink.write_line sink "fresh");
      Alcotest.(check string) "default truncates" "fresh\n" (read_all path))

(* -- Series over a sink -------------------------------------------------- *)

let test_series_buffers_rows () =
  with_temp_file (fun path ->
      let series =
        Obs.Series.create ~format:Obs.Series.Csv ~columns:[ "t"; "x" ]
          (Sink.open_file path)
      in
      Obs.Series.append series [ Json.Float 1.5; Json.Int 2 ];
      Obs.Series.append series [ Json.Float 2.5; Json.Int 3 ];
      (* The old writer flushed per row; the sink-backed one must not. *)
      Alcotest.(check string) "rows buffered until close" "" (read_all path);
      Obs.Series.close series;
      Alcotest.(check string) "identical output to the unbuffered format"
        "t,x\n1.5,2\n2.5,3\n" (read_all path))

(* -- Binary trace format ------------------------------------------------- *)

let write_binary path jsons =
  Sink.with_file path (fun sink ->
      let w = Btrace.writer sink in
      List.iter (fun json -> Btrace.write w json) jsons;
      Btrace.count w)

let read_binary path =
  let acc = ref [] in
  match Btrace.iter_file path ~f:(fun ~index:_ json -> acc := json :: !acc) with
  | Ok () -> Ok (List.rev !acc)
  | Error msg -> Error msg

let test_btrace_round_trip_taxonomy () =
  with_temp_file (fun path ->
      let n = write_binary path sample_jsons in
      Alcotest.(check int) "record count" (List.length sample_jsons) n;
      match read_binary path with
      | Error msg -> Alcotest.failf "decode failed: %s" msg
      | Ok decoded ->
        Alcotest.(check int) "all records decoded" (List.length sample_jsons)
          (List.length decoded);
        List.iter2
          (fun original back ->
            Alcotest.(check bool)
              (Json.to_string original ^ " survives binary round-trip")
              true (original = back))
          sample_jsons decoded)

let test_btrace_smaller_than_jsonl () =
  with_temp_file (fun bin_path ->
      with_temp_file (fun jsonl_path ->
          (* Interning should make the steady-state binary encoding
             clearly smaller than JSONL for a repetitive event stream. *)
          let jsons = List.concat (List.init 20 (fun _ -> sample_jsons)) in
          ignore (write_binary bin_path jsons);
          Sink.with_file jsonl_path (fun sink ->
              List.iter (fun j -> Sink.write_line sink (Json.to_string j)) jsons);
          let bin = String.length (read_all bin_path) in
          let jsonl = String.length (read_all jsonl_path) in
          if not (bin * 2 < jsonl) then
            Alcotest.failf "binary %d bytes not < half of JSONL %d bytes" bin jsonl))

let test_btrace_truncation_detected () =
  with_temp_file (fun path ->
      ignore (write_binary path sample_jsons);
      let whole = read_all path in
      let truncated = String.sub whole 0 (String.length whole - 3) in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc truncated);
      match read_binary path with
      | Ok _ -> Alcotest.fail "truncated file decoded cleanly"
      | Error _ -> ())

let write_raw path bytes =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes)

let test_btrace_bad_magic () =
  with_temp_file (fun path ->
      write_raw path "NOPE1\n\x01\x00";
      match read_binary path with
      | Ok _ -> Alcotest.fail "bad magic accepted"
      | Error msg ->
        Alcotest.(check bool) "mentions magic" true
          (String.length msg > 0))

let test_btrace_bad_intern_ref () =
  with_temp_file (fun path ->
      (* One record: tag 8 (string ref) to id 5 with an empty table. *)
      write_raw path (Btrace.magic ^ "\x02\x08\x05");
      match read_binary path with
      | Ok _ -> Alcotest.fail "dangling intern reference accepted"
      | Error _ -> ())

let test_btrace_trailing_bytes_in_record () =
  with_temp_file (fun path ->
      (* Record claims 2 bytes but null needs only 1: trailing garbage. *)
      write_raw path (Btrace.magic ^ "\x02\x00\x00");
      match read_binary path with
      | Ok _ -> Alcotest.fail "trailing bytes inside a record accepted"
      | Error _ -> ())

(* Random JSON round-trip battery. *)
let json_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        (* Finite floats only: NaN breaks structural equality. *)
        map (fun f -> Json.Float f) (float_bound_inclusive 1e12);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 80));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Json.List l) (list_size (int_bound 5) (value (depth - 1))));
          ( 1,
            map
              (fun fields -> Json.Assoc fields)
              (list_size (int_bound 5)
                 (pair (string_size ~gen:printable (int_bound 20)) (value (depth - 1))))
          );
        ]
  in
  list_size (int_bound 10) (value 3)

let test_btrace_qcheck_round_trip =
  QCheck2.Test.make ~name:"binary encoding round-trips arbitrary JSON" ~count:100
    json_gen (fun jsons ->
      with_temp_file (fun path ->
          ignore (write_binary path jsons);
          match read_binary path with
          | Error msg -> QCheck2.Test.fail_reportf "decode failed: %s" msg
          | Ok decoded -> decoded = jsons))

(* -- Trace_file ---------------------------------------------------------- *)

let test_trace_file_detect () =
  with_temp_file (fun path ->
      ignore (write_binary path sample_jsons);
      Alcotest.(check bool) "binary sniffed" true (Trace_file.detect path = Trace_file.Binary);
      write_raw path "{\"kind\":\"poll_started\"}\n";
      Alcotest.(check bool) "jsonl sniffed" true (Trace_file.detect path = Trace_file.Jsonl);
      write_raw path "";
      Alcotest.(check bool) "empty file is jsonl" true
        (Trace_file.detect path = Trace_file.Jsonl));
  Alcotest.(check bool) "ntrace extension" true
    (Trace_file.format_of_path "out/run.NTRACE" = Trace_file.Binary);
  Alcotest.(check bool) "other extension" true
    (Trace_file.format_of_path "out/run.jsonl" = Trace_file.Jsonl)

let test_trace_file_iter_jsonl_tolerant () =
  with_temp_file (fun path ->
      write_raw path "{\"kind\":\"a\"}\nnot json\n\n{\"kind\":\"b\"}\n";
      let oks = ref [] and errs = ref [] in
      let format =
        Trace_file.iter path ~f:(fun ~line result ->
            match result with
            | Ok json -> oks := (line, json) :: !oks
            | Error _ -> errs := line :: !errs)
      in
      Alcotest.(check bool) "format" true (format = Trace_file.Jsonl);
      (* Blank line skipped but counted; iteration continues past errors. *)
      Alcotest.(check (list int)) "good lines" [ 1; 4 ] (List.rev_map fst !oks);
      Alcotest.(check (list int)) "bad lines" [ 2 ] !errs)

let test_trace_file_iter_binary_stops () =
  with_temp_file (fun path ->
      ignore (write_binary path sample_jsons);
      let whole = read_all path in
      write_raw path (String.sub whole 0 (String.length whole - 2));
      let oks = ref 0 and errs = ref [] in
      ignore
        (Trace_file.iter path ~f:(fun ~line result ->
             match result with
             | Ok _ -> incr oks
             | Error _ -> errs := line :: !errs));
      Alcotest.(check int) "prefix decoded" (List.length sample_jsons - 1) !oks;
      Alcotest.(check (list int)) "one terminal error" [ List.length sample_jsons ] !errs)

(* -- View fast path ------------------------------------------------------ *)

let test_view_agrees_with_json () =
  List.iteri
    (fun i event ->
      let time = 10. *. float_of_int (i + 1) in
      let via_json = View.of_json (Trace.to_json ~time event) in
      let direct = Trace.to_view ~time event in
      match via_json with
      | None -> Alcotest.failf "%s: of_json returned None" (Trace.kind event)
      | Some v ->
        Alcotest.(check bool)
          (Trace.kind event ^ ": to_view = of_json . to_json")
          true (v = direct))
    sample_events

let test_write_jsonl_byte_parity () =
  (* The direct serializer must emit exactly the bytes of the generic
     JSON path for every event kind, including awkward times and
     escape-needing strings. *)
  let times = [ 0.; 1.5; 86_400.; 5_831_999.734_210_6; 1e13; 0.000_123_456_789 ] in
  let events =
    Trace.Invariant_violated
      {
        invariant = "quote\"backslash\\tab\tnewline\n";
        peer = None;
        au = None;
        poll_id = Some 1;
        detail = "control\x01char";
      }
    :: sample_events
  in
  List.iter
    (fun time ->
      List.iter
        (fun event ->
          let buf = Buffer.create 256 in
          Trace.write_jsonl buf ~time event;
          Alcotest.(check string)
            (Printf.sprintf "%s @ %g" (Trace.kind event) time)
            (Json.to_string (Trace.to_json ~time event))
            (Buffer.contents buf))
        events)
    times

let test_binary_sink_byte_parity () =
  (* The direct field-by-field binary encoder must emit exactly the
     bytes of the generic [Btrace.write (to_json ...)] path, intern ids
     included. *)
  with_temp_file (fun direct_path ->
      with_temp_file (fun generic_path ->
          Sink.with_file direct_path (fun sink ->
              let w = Btrace.writer sink in
              let emit = Trace.binary_sink w in
              List.iteri
                (fun i e -> emit ~time:(10. *. float_of_int (i + 1)) e)
                sample_events);
          Sink.with_file generic_path (fun sink ->
              let w = Btrace.writer sink in
              List.iteri
                (fun i e ->
                  let time = 10. *. float_of_int (i + 1) in
                  Btrace.write w ~now:time (Trace.to_json ~time e))
                sample_events);
          Alcotest.(check string) "identical files" (read_all generic_path)
            (read_all direct_path)))

let test_analyzer_parity_json_vs_view () =
  (* Feeding serialised JSON and feeding typed views must produce the
     same report: the live fast path cannot drift from the offline
     path. *)
  let via_json = Obs.Analyze.create () in
  let via_view = Obs.Analyze.create () in
  List.iteri
    (fun i event ->
      let time = 10. *. float_of_int (i + 1) in
      Obs.Analyze.feed via_json (Trace.to_json ~time event);
      Obs.Analyze.feed_view via_view (Trace.to_view ~time event))
    sample_events;
  Alcotest.(check string) "identical reports"
    (Json.to_string (Obs.Analyze.report_json via_json))
    (Json.to_string (Obs.Analyze.report_json via_view))

(* -- Emit short-circuiting ----------------------------------------------- *)

let test_emit_bound_skips_thunk () =
  let bus = Trace.create () in
  let delivered = ref 0 in
  Trace.subscribe ~interest:Trace.Warn bus (fun ~time:_ _ -> incr delivered);
  let built = ref 0 in
  let make () =
    incr built;
    Trace.Node_crashed { node = 1 }
  in
  Trace.emit ~bound:Trace.Debug bus ~now:0. make;
  Alcotest.(check int) "debug-bounded thunk skipped" 0 !built;
  Trace.emit ~bound:Trace.Warn bus ~now:0. make;
  Alcotest.(check int) "warn-bounded thunk runs" 1 !built;
  (* Interest only licenses skipping: delivery is not filtered. *)
  Alcotest.(check int) "delivered regardless of actual severity" 1 !delivered;
  (* A lower-interest subscriber reopens the bus. *)
  Trace.subscribe ~interest:Trace.Debug bus (fun ~time:_ _ -> ());
  Trace.emit ~bound:Trace.Debug bus ~now:0. make;
  Alcotest.(check int) "debug interest restores construction" 2 !built

let severity_rank = function Trace.Debug -> 0 | Trace.Info -> 1 | Trace.Warn -> 2

let tiny_scale =
  {
    Scenario.peers = 12;
    aus = 2;
    quorum = 3;
    max_disagree = 1;
    outer_circle = 3;
    reference_target = 6;
    years = 0.1;
    runs = 1;
    seed = 5;
  }

let capture_run ~interest =
  let cfg = Scenario.config tiny_scale in
  let population = Scenario.build ~cfg ~seed:5 Scenario.No_attack in
  let acc = ref [] in
  Lockss.Trace.subscribe ~interest
    (Lockss.Population.trace population)
    (fun ~time event ->
      if severity_rank (Trace.severity event) >= severity_rank interest then
        acc := Json.to_string (Trace.to_json ~time event) :: !acc);
  Lockss.Population.run population ~until:(Duration.of_days 36.);
  List.rev !acc

let test_emit_severity_parity () =
  (* The in-tree call sites' declared bounds must never skip an event an
     interested subscriber would have kept: a Warn-interest run has to
     see exactly the Warn-or-worse slice of the full Debug capture. *)
  let all = capture_run ~interest:Trace.Debug in
  let warn_only = capture_run ~interest:Trace.Warn in
  let expected =
    List.filter
      (fun line ->
        match Json.of_string line with
        | Ok json ->
          (match Trace.of_json json with
          | Ok (_, event) -> severity_rank (Trace.severity event) >= 2
          | Error _ -> false)
        | Error _ -> false)
      all
  in
  Alcotest.(check bool) "the debug capture is non-trivial" true (List.length all > 100);
  Alcotest.(check (list string)) "warn capture = filtered debug capture" expected
    warn_only

(* -- Scenario trace files: jsonl and binary agree ----------------------- *)

let test_run_trace_encodings_agree () =
  with_temp_file (fun jsonl_path ->
      with_temp_file (fun ntrace_stub ->
          let binary_path = ntrace_stub ^ ".ntrace" in
          Fun.protect
            ~finally:(fun () ->
              List.iter
                (fun p ->
                  let seeded = Scenario.seeded_path p ~seed:5 in
                  if Sys.file_exists seeded then Sys.remove seeded)
                [ jsonl_path; binary_path ])
            (fun () ->
              let cfg = Scenario.config tiny_scale in
              let observe trace_out trace_format =
                {
                  Scenario.default_observe with
                  Scenario.trace_out = Some trace_out;
                  trace_level = Lockss.Trace.Debug;
                  trace_format;
                }
              in
              let s1 =
                Scenario.run_one
                  ~observe:(observe jsonl_path `Jsonl)
                  ~cfg ~seed:5 ~years:0.1 Scenario.No_attack
              in
              let s2 =
                Scenario.run_one
                  ~observe:(observe binary_path `Auto)
                  ~cfg ~seed:5 ~years:0.1 Scenario.No_attack
              in
              (* [compare], not [=]: empirical_read_failure is [nan] when
                 the short run saw no reads, and [nan = nan] is false. *)
              Alcotest.(check bool) "same summary" true (compare s1 s2 = 0);
              let jsonl_file = Scenario.seeded_path jsonl_path ~seed:5 in
              let binary_file = Scenario.seeded_path binary_path ~seed:5 in
              Alcotest.(check bool) "binary format selected by extension" true
                (Trace_file.detect binary_file = Trace_file.Binary);
              (* The two encodings of the same run must analyze
                 byte-identically. *)
              let report path =
                let analyzer = Obs.Analyze.create () in
                Obs.Analyze.read_file analyzer path;
                Json.to_string (Obs.Analyze.report_json analyzer)
              in
              Alcotest.(check string) "identical trace-report" (report jsonl_file)
                (report binary_file);
              (* And converting jsonl -> binary reproduces the stream. *)
              let reencoded = ref [] in
              ignore
                (Trace_file.iter jsonl_file ~f:(fun ~line:_ result ->
                     match result with
                     | Ok json -> reencoded := json :: !reencoded
                     | Error msg -> Alcotest.failf "jsonl record: %s" msg));
              let from_binary = ref [] in
              ignore
                (Trace_file.iter binary_file ~f:(fun ~line:_ result ->
                     match result with
                     | Ok json -> from_binary := json :: !from_binary
                     | Error msg -> Alcotest.failf "binary record: %s" msg));
              Alcotest.(check bool) "identical json streams" true
                (List.rev !reencoded = List.rev !from_binary))))

(* -- Profiler ------------------------------------------------------------ *)

let test_profiler_phases () =
  let now = ref 0. in
  let prof = Obs.Profiler.create ~clock:(fun () -> !now) () in
  let result =
    Obs.Profiler.phase prof "setup" (fun () ->
        now := !now +. 1.5;
        42)
  in
  Alcotest.(check int) "phase returns the body's result" 42 result;
  Obs.Profiler.phase prof "setup" (fun () -> now := !now +. 0.5);
  Alcotest.(check (float 1e-9)) "accumulates across calls" 2.
    (Obs.Profiler.phase_seconds prof "setup");
  (try Obs.Profiler.phase prof "run" (fun () -> now := !now +. 3.; failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (float 1e-9)) "exception-safe" 3.
    (Obs.Profiler.phase_seconds prof "run");
  Obs.Profiler.add_phase_time prof "run" 1.;
  Alcotest.(check (float 1e-9)) "external credit" 4.
    (Obs.Profiler.phase_seconds prof "run")

let test_profiler_domains_and_snapshot () =
  let prof = Obs.Profiler.create () in
  Obs.Profiler.note_domain prof ~domain:1 ~busy_s:2. ~tasks:3 ();
  Obs.Profiler.note_domain prof ~domain:0 ~busy_s:1. ~tasks:2 ();
  Obs.Profiler.note_domain prof ~domain:1 ~cpu_s:0.4 ~minor_words:1000.
    ~minor_collections:2 ~major_collections:1 ~busy_s:0.5 ~tasks:1 ();
  (match Obs.Profiler.domain_stats prof with
  | [ d0; d1 ] ->
    Alcotest.(check int) "sorted by id" 0 d0.Obs.Profiler.domain;
    Alcotest.(check (float 1e-9)) "domain 1 busy accumulates" 2.5
      d1.Obs.Profiler.busy_s;
    Alcotest.(check int) "domain 1 tasks accumulate" 4 d1.Obs.Profiler.tasks;
    Alcotest.(check (float 1e-9)) "domain 1 cpu accumulates" 0.4
      d1.Obs.Profiler.cpu_s;
    Alcotest.(check (float 1e-9)) "domain 1 minor words accumulate" 1000.
      d1.Obs.Profiler.minor_words;
    Alcotest.(check int) "domain 1 minor collections" 2
      d1.Obs.Profiler.minor_collections;
    Alcotest.(check int) "domain 1 major collections" 1
      d1.Obs.Profiler.major_collections
  | stats -> Alcotest.failf "expected 2 domains, got %d" (List.length stats));
  Obs.Profiler.sample_gc prof;
  let snapshot = Obs.Profiler.snapshot_json prof in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true (Json.member key snapshot <> None))
    [ "phases"; "domains"; "gc"; "registry" ]

let test_profiler_gc_delta () =
  let before = Obs.Profiler.gc_now () in
  let keep = ref [] in
  for i = 1 to 10_000 do
    keep := string_of_int i :: !keep
  done;
  ignore (Sys.opaque_identity !keep);
  (* quick_stat omits words still in the live minor arena; empty it so
     the allocations above become visible in the counters. *)
  Gc.minor ();
  let delta = Obs.Profiler.gc_delta ~before ~after:(Obs.Profiler.gc_now ()) in
  Alcotest.(check bool) "allocation observed" true
    (Obs.Profiler.allocated_words delta > 0.)

(* -- Bench gate ---------------------------------------------------------- *)

let obs_doc overhead_full =
  Json.Assoc
    [
      ("repeats", Json.Int 5);
      ( "variants",
        Json.List
          [
            Json.Assoc
              [
                ("variant", Json.String "tracing disabled");
                ("mean_s", Json.Float 0.1);
                ("overhead", Json.Float 1.0);
              ];
            Json.Assoc
              [
                ("variant", Json.String "full file sinks");
                ("mean_s", Json.Float (0.1 *. overhead_full));
                ("overhead", Json.Float overhead_full);
              ];
          ] );
    ]

let test_gate_flatten_keys_by_variant () =
  let paths = List.map fst (Obs.Bench_gate.flatten (obs_doc 2.0)) in
  Alcotest.(check bool) "variant-keyed path" true
    (List.mem "variants.full file sinks.overhead" paths)

let test_gate_passes_within_threshold () =
  let report =
    Obs.Bench_gate.compare_json ~baseline:(obs_doc 2.0) ~current:(obs_doc 2.3) ()
  in
  Alcotest.(check bool) "15% growth under the 25% threshold" true
    (Obs.Bench_gate.ok report)

let test_gate_fails_on_regression () =
  let report =
    Obs.Bench_gate.compare_json ~baseline:(obs_doc 2.0) ~current:(obs_doc 2.8) ()
  in
  Alcotest.(check bool) "40% growth regresses" false (Obs.Bench_gate.ok report);
  match Obs.Bench_gate.regressions report with
  | [ d ] ->
    Alcotest.(check string) "the overhead leaf" "variants.full file sinks.overhead"
      d.Obs.Bench_gate.path
  | ds -> Alcotest.failf "expected 1 regression, got %d" (List.length ds)

let test_gate_speedup_lower_is_worse () =
  let doc speedup =
    Json.Assoc
      [
        ( "targets",
          Json.List
            [
              Json.Assoc
                [
                  ("target", Json.String "stoppage sweep");
                  ("serial_s", Json.Float 10.);
                  ("speedup", Json.Float speedup);
                ];
            ] );
      ]
  in
  Alcotest.(check bool) "speedup gain passes" true
    (Obs.Bench_gate.ok (Obs.Bench_gate.compare_json ~baseline:(doc 2.) ~current:(doc 3.) ()));
  Alcotest.(check bool) "speedup collapse regresses" false
    (Obs.Bench_gate.ok (Obs.Bench_gate.compare_json ~baseline:(doc 2.) ~current:(doc 1.) ()))

let test_gate_missing_tracked_fails () =
  let report =
    Obs.Bench_gate.compare_json ~baseline:(obs_doc 2.0)
      ~current:(Json.Assoc [ ("repeats", Json.Int 5) ])
      ()
  in
  Alcotest.(check bool) "missing tracked metric fails" false (Obs.Bench_gate.ok report);
  Alcotest.(check bool) "reported as missing" true
    (List.mem "variants.full file sinks.overhead" report.Obs.Bench_gate.missing_tracked)

let test_gate_absolutes_informational () =
  (* Wall-clock absolutes may drift arbitrarily without failing. *)
  let base = obs_doc 2.0 in
  let current =
    Json.Assoc
      [
        ("repeats", Json.Int 5);
        ( "variants",
          Json.List
            [
              Json.Assoc
                [
                  ("variant", Json.String "tracing disabled");
                  ("mean_s", Json.Float 0.9);
                  ("overhead", Json.Float 1.0);
                ];
              Json.Assoc
                [
                  ("variant", Json.String "full file sinks");
                  ("mean_s", Json.Float 1.9);
                  ("overhead", Json.Float 2.1);
                ];
            ] );
      ]
  in
  Alcotest.(check bool) "9x slower wall-clock still passes" true
    (Obs.Bench_gate.ok (Obs.Bench_gate.compare_json ~baseline:base ~current ()))

let test_gate_neutral_slackens_lucky_baseline () =
  (* A chaos run can legitimately land below 1.0 overhead (faults drop
     messages). Drifting back to the neutral must not fail; moving past
     the neutral by the threshold must. *)
  let doc overhead = Json.Assoc [ ("overhead", Json.Float overhead) ] in
  Alcotest.(check bool) "0.69 -> 1.0 passes (return to neutral)" true
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json ~baseline:(doc 0.69) ~current:(doc 1.0) ()));
  Alcotest.(check bool) "0.69 -> 1.2 passes (within threshold of neutral)" true
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json ~baseline:(doc 0.69) ~current:(doc 1.2) ()));
  Alcotest.(check bool) "0.69 -> 1.3 regresses (past neutral + threshold)" false
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json ~baseline:(doc 0.69) ~current:(doc 1.3) ()));
  (* A baseline already above neutral keeps gating against itself. *)
  Alcotest.(check bool) "2.0 -> 2.8 still regresses" false
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json ~baseline:(doc 2.0) ~current:(doc 2.8) ()))

let test_gate_slowdown_tracked () =
  let doc v = Json.Assoc [ ("slowdown", Json.Float v) ] in
  Alcotest.(check bool) "slowdown growth past neutral regresses" false
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json ~baseline:(doc 1.1) ~current:(doc 1.6) ()));
  Alcotest.(check bool) "slowdown shrink passes" true
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json ~baseline:(doc 1.1) ~current:(doc 0.8) ()))

let test_gate_words_per_event_tracked () =
  (* Allocation per event is deterministic, so it gates with no neutral:
     growth past the threshold fails, shrinking never does. *)
  let doc v = Json.Assoc [ ("words_per_event", Json.Float v) ] in
  Alcotest.(check bool) "within threshold passes" true
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json ~baseline:(doc 400.) ~current:(doc 450.) ()));
  Alcotest.(check bool) "allocation bloat regresses" false
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json ~baseline:(doc 400.) ~current:(doc 600.) ()));
  Alcotest.(check bool) "allocation reduction passes" true
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json ~baseline:(doc 400.) ~current:(doc 150.) ()))

let parallel_doc ~degenerate ~speedup =
  Json.Assoc
    ([ ("requested_jobs", Json.Int 4); ("effective_jobs", Json.Int 1) ]
    @ (if degenerate then [ ("degenerate", Json.Bool true) ] else [])
    @ [
        ( "targets",
          Json.List
            [
              Json.Assoc
                [
                  ("target", Json.String "stoppage sweep");
                  ("speedup", Json.Float speedup);
                ];
            ] );
      ])

let test_gate_degenerate_skips_tracked () =
  (* Current artifact degenerate while the baseline pin was live: the
     gate stopped measuring what it gates. That used to pass all-green;
     it is now a distinct failure with its own report bucket... *)
  let report =
    Obs.Bench_gate.compare_json
      ~baseline:(parallel_doc ~degenerate:false ~speedup:2.0)
      ~current:(parallel_doc ~degenerate:true ~speedup:1.0)
      ()
  in
  Alcotest.(check bool) "live pin gone degenerate fails the gate" false
    (Obs.Bench_gate.ok report);
  Alcotest.(check (list string))
    "degenerate_current names the path"
    [ "targets.stoppage sweep.speedup" ]
    report.Obs.Bench_gate.degenerate_current;
  Alcotest.(check bool) "not conflated with baseline-degenerate skips" true
    (report.Obs.Bench_gate.skipped = []);
  Alcotest.(check bool) "not conflated with value regressions" true
    (Obs.Bench_gate.regressions report = []);
  (* ... and the opt-out demotes it to a warning for intentional
     environment changes. *)
  let allowed =
    Obs.Bench_gate.compare_json ~allow_degenerate_current:true
      ~baseline:(parallel_doc ~degenerate:false ~speedup:2.0)
      ~current:(parallel_doc ~degenerate:true ~speedup:1.0)
      ()
  in
  Alcotest.(check bool) "--allow-degenerate passes" true
    (Obs.Bench_gate.ok allowed);
  Alcotest.(check (list string))
    "still surfaced when allowed"
    [ "targets.stoppage sweep.speedup" ]
    allowed.Obs.Bench_gate.degenerate_current;
  (* The degenerate subtree is enumerated (document root here, the
     [degenerate:true] member sits at top level) and named on the
     verdict line — a gate that measured nothing must say so. *)
  Alcotest.(check (list string))
    "degenerate subtree enumerated" [ "" ]
    report.Obs.Bench_gate.degenerate_subtrees;
  let rendered = Format.asprintf "%a" Obs.Bench_gate.pp_report report in
  Alcotest.(check bool) "verdict line names the skipped subtree" true
    (let needle = "1 degenerate subtree skipped: (root)" in
     let nlen = String.length needle in
     let rec has i =
       i + nlen <= String.length rendered
       && (String.sub rendered i nlen = needle || has (i + 1))
     in
     has 0);
  (* Degenerate baseline also skips, including the missing-tracked check. *)
  let report =
    Obs.Bench_gate.compare_json
      ~baseline:(parallel_doc ~degenerate:true ~speedup:1.0)
      ~current:(Json.Assoc [ ("requested_jobs", Json.Int 4) ])
      ()
  in
  Alcotest.(check bool) "degenerate baseline never demands the metric" true
    (Obs.Bench_gate.ok report);
  Alcotest.(check bool) "absent metric reported as skipped, not missing" true
    (List.mem "targets.stoppage sweep.speedup" report.Obs.Bench_gate.skipped);
  (* Neither side degenerate: the same collapse fails as before. *)
  Alcotest.(check bool) "non-degenerate collapse still regresses" false
    (Obs.Bench_gate.ok
       (Obs.Bench_gate.compare_json
          ~baseline:(parallel_doc ~degenerate:false ~speedup:2.0)
          ~current:(parallel_doc ~degenerate:false ~speedup:1.0)
          ()))

(* -- Suite --------------------------------------------------------------- *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "trace_pipeline"
    [
      ( "sink",
        [
          tc "size bound" `Quick test_sink_size_bound;
          tc "explicit flush" `Quick test_sink_explicit_flush;
          tc "time bound on simulated time" `Quick test_sink_time_bound;
          tc "close semantics" `Quick test_sink_close_semantics;
          tc "flush on exception" `Quick test_sink_flush_on_exception;
          tc "append and reopen" `Quick test_sink_append_reopen;
          tc "series buffers rows" `Quick test_series_buffers_rows;
        ] );
      ( "binary trace",
        [
          tc "taxonomy round-trip" `Quick test_btrace_round_trip_taxonomy;
          tc "smaller than jsonl" `Quick test_btrace_smaller_than_jsonl;
          tc "truncation detected" `Quick test_btrace_truncation_detected;
          tc "bad magic rejected" `Quick test_btrace_bad_magic;
          tc "dangling intern ref rejected" `Quick test_btrace_bad_intern_ref;
          tc "trailing record bytes rejected" `Quick test_btrace_trailing_bytes_in_record;
          QCheck_alcotest.to_alcotest test_btrace_qcheck_round_trip;
        ] );
      ( "trace files",
        [
          tc "format detection" `Quick test_trace_file_detect;
          tc "jsonl iteration is line-tolerant" `Quick test_trace_file_iter_jsonl_tolerant;
          tc "binary iteration stops at corruption" `Quick test_trace_file_iter_binary_stops;
          tc "run encodings agree" `Slow test_run_trace_encodings_agree;
        ] );
      ( "view fast path",
        [
          tc "to_view agrees with of_json" `Quick test_view_agrees_with_json;
          tc "write_jsonl byte parity" `Quick test_write_jsonl_byte_parity;
          tc "binary sink byte parity" `Quick test_binary_sink_byte_parity;
          tc "analyzer parity json vs view" `Quick test_analyzer_parity_json_vs_view;
        ] );
      ( "emit short-circuit",
        [
          tc "bound below interest skips the thunk" `Quick test_emit_bound_skips_thunk;
          tc "call-site bounds lose no events" `Slow test_emit_severity_parity;
        ] );
      ( "profiler",
        [
          tc "phase accounting" `Quick test_profiler_phases;
          tc "domains and snapshot" `Quick test_profiler_domains_and_snapshot;
          tc "gc delta" `Quick test_profiler_gc_delta;
        ] );
      ( "bench gate",
        [
          tc "flatten keys lists by variant" `Quick test_gate_flatten_keys_by_variant;
          tc "within threshold passes" `Quick test_gate_passes_within_threshold;
          tc "regression fails" `Quick test_gate_fails_on_regression;
          tc "speedup is lower-is-worse" `Quick test_gate_speedup_lower_is_worse;
          tc "missing tracked metric fails" `Quick test_gate_missing_tracked_fails;
          tc "absolutes are informational" `Quick test_gate_absolutes_informational;
          tc "neutral slackens lucky baselines" `Quick
            test_gate_neutral_slackens_lucky_baseline;
          tc "slowdown is tracked" `Quick test_gate_slowdown_tracked;
          tc "words_per_event is tracked" `Quick test_gate_words_per_event_tracked;
          tc "degenerate prefixes skip the gate" `Quick
            test_gate_degenerate_skips_tracked;
        ] );
    ]
