(* Tests for the experiment harness: scenario plumbing, ratio metrics,
   and quick miniature versions of the paper's sweeps that check the
   claimed shapes hold. *)

module Duration = Repro_prelude.Duration
open Experiments

(* A very small, fast scale for harness tests. *)
let micro =
  {
    Scenario.peers = 15;
    aus = 2;
    quorum = 4;
    max_disagree = 1;
    outer_circle = 3;
    reference_target = 8;
    years = 2.;
    runs = 1;
    seed = 5;
  }

let test_config_of_scale () =
  let cfg = Scenario.config micro in
  Alcotest.(check int) "peers" 15 cfg.Lockss.Config.loyal_peers;
  Alcotest.(check int) "aus" 2 cfg.Lockss.Config.aus;
  Alcotest.(check int) "quorum" 4 cfg.Lockss.Config.quorum;
  Lockss.Config.validate cfg

let test_run_one_deterministic () =
  let cfg = Scenario.config micro in
  let a = Scenario.run_one ~cfg ~seed:3 ~years:0.5 Scenario.No_attack in
  let b = Scenario.run_one ~cfg ~seed:3 ~years:0.5 Scenario.No_attack in
  Alcotest.(check int) "same polls" a.Lockss.Metrics.polls_succeeded
    b.Lockss.Metrics.polls_succeeded;
  Alcotest.(check (float 0.)) "same effort" a.Lockss.Metrics.loyal_effort
    b.Lockss.Metrics.loyal_effort

let test_run_avg_averages () =
  let cfg = Scenario.config micro in
  let scale = { micro with Scenario.runs = 2; years = 0.5 } in
  let avg = Scenario.run_avg ~cfg scale Scenario.No_attack in
  let s1 = Scenario.run_one ~cfg ~seed:scale.Scenario.seed ~years:0.5 Scenario.No_attack in
  let s2 =
    Scenario.run_one ~cfg ~seed:(scale.Scenario.seed + 1) ~years:0.5 Scenario.No_attack
  in
  let expected =
    (s1.Lockss.Metrics.loyal_effort +. s2.Lockss.Metrics.loyal_effort) /. 2.
  in
  Alcotest.(check (float 1e-6)) "averaged effort" expected avg.Lockss.Metrics.loyal_effort

(* A synthetic summary for aggregation tests; fields that mean_summaries
   touches are parameterised, the rest hold arbitrary benign values. *)
let summary_stub ~horizon ~underflows ~reads ~reads_failed =
  {
    Lockss.Metrics.horizon;
    replicas = 10;
    access_failure_probability = 1e-4;
    polls_succeeded = 100;
    polls_inquorate = 2;
    polls_alarmed = 0;
    mean_success_gap = Duration.of_days 30.;
    loyal_effort = 1e6;
    adversary_effort = 0.;
    effort_per_successful_poll = 1e4;
    invitations_considered = 50;
    invitations_dropped = 5;
    repairs = 3;
    repair_underflows = underflows;
    votes_supplied = 400;
    reads;
    reads_failed;
    empirical_read_failure =
      (if reads > 0 then float_of_int reads_failed /. float_of_int reads else nan);
  }

let test_mean_summaries_aggregation () =
  (* Underflow counters must be summed (one anomaly in any run stays
     visible), the horizon averaged, and the empirical read-failure rate
     averaged only over the runs that read at all. *)
  let s1 =
    summary_stub ~horizon:(Duration.of_years 1.) ~underflows:2 ~reads:100
      ~reads_failed:10
  in
  let s2 =
    summary_stub ~horizon:(Duration.of_years 3.) ~underflows:0 ~reads:0
      ~reads_failed:0
  in
  let s3 =
    summary_stub ~horizon:(Duration.of_years 2.) ~underflows:1 ~reads:100
      ~reads_failed:30
  in
  let m = Scenario.mean_summaries [ s1; s2; s3 ] in
  Alcotest.(check int) "underflows summed" 3 m.Lockss.Metrics.repair_underflows;
  Alcotest.(check (float 1e-6)) "horizon averaged" (Duration.of_years 2.)
    m.Lockss.Metrics.horizon;
  (* s2 read nothing: its NaN must not poison the mean. (0.10 + 0.30) / 2. *)
  Alcotest.(check (float 1e-9)) "read failure over reading runs" 0.2
    m.Lockss.Metrics.empirical_read_failure;
  (* All runs read-free: NaN is the honest answer. *)
  let none =
    Scenario.mean_summaries
      [
        summary_stub ~horizon:1. ~underflows:0 ~reads:0 ~reads_failed:0;
        summary_stub ~horizon:1. ~underflows:0 ~reads:0 ~reads_failed:0;
      ]
  in
  Alcotest.(check bool) "NaN when no run read" true
    (Float.is_nan none.Lockss.Metrics.empirical_read_failure)

let test_ratios_baseline_is_one () =
  let cfg = Scenario.config micro in
  let s = Scenario.run_one ~cfg ~seed:3 ~years:1. Scenario.No_attack in
  let c = Scenario.ratios ~baseline:s ~attack:s in
  Alcotest.(check (float 1e-9)) "delay ratio 1" 1. c.Scenario.delay_ratio;
  Alcotest.(check (float 1e-9)) "friction 1" 1. c.Scenario.friction;
  Alcotest.(check (float 1e-9)) "cost ratio 0 (no adversary)" 0. c.Scenario.cost_ratio

let test_ratios_infinite_when_no_successes () =
  let cfg = Scenario.config micro in
  let baseline = Scenario.run_one ~cfg ~seed:3 ~years:1. Scenario.No_attack in
  let dead =
    Scenario.run_one ~cfg ~seed:3 ~years:1.
      (Scenario.Pipe_stoppage
         { coverage = 1.0; duration = Duration.of_years 2.; recuperation = Duration.day })
  in
  let c = Scenario.ratios ~baseline ~attack:dead in
  Alcotest.(check bool) "delay ratio infinite" true (c.Scenario.delay_ratio = infinity)

(* -- Shape checks: miniature versions of the paper's figures ---------- *)

let test_fig3_shape_coverage_monotone () =
  (* Higher coverage cannot make preservation better. *)
  let points =
    Stoppage.sweep ~scale:micro
      ~durations:[ Duration.of_days 90. ]
      ~coverages:[ 0.1; 1.0 ] ()
  in
  match points with
  | [ low; high ] ->
    Alcotest.(check bool) "full coverage at least as damaging" true
      (high.Stoppage.access_failure >= low.Stoppage.access_failure);
    Alcotest.(check bool) "delay grows with coverage" true
      (high.Stoppage.delay_ratio >= low.Stoppage.delay_ratio)
  | _ -> Alcotest.fail "expected two points"

let test_fig3_shape_duration_monotone () =
  let points =
    Stoppage.sweep ~scale:micro
      ~durations:[ Duration.of_days 5.; Duration.of_days 120. ]
      ~coverages:[ 1.0 ] ()
  in
  match points with
  | [ short; long ] ->
    Alcotest.(check bool) "long attacks hurt more" true
      (long.Stoppage.delay_ratio > short.Stoppage.delay_ratio);
    Alcotest.(check bool) "short attacks nearly harmless" true
      (short.Stoppage.delay_ratio < 1.5)
  | _ -> Alcotest.fail "expected two points"

let test_fig6_shape_flood_is_weak () =
  let points =
    Admission_attack.sweep ~scale:micro
      ~durations:[ Duration.of_years 1. ]
      ~coverages:[ 1.0 ] ()
  in
  match points with
  | [ p ] ->
    (* The paper's core claim: the application-level flood barely moves
       preservation while raising friction modestly. *)
    Alcotest.(check bool) "delay ratio close to 1" true (p.Admission_attack.delay_ratio < 1.3);
    Alcotest.(check bool) "friction bounded" true (p.Admission_attack.friction < 2.0)
  | _ -> Alcotest.fail "expected one point"

let test_table1_shape () =
  let rows = Effort_attack.sweep ~scale:micro ~collections:[ 2 ] ~identities:20 () in
  Alcotest.(check int) "three strategies" 3 (List.length rows);
  let find strategy =
    List.find (fun r -> r.Effort_attack.strategy = strategy) rows
  in
  let intro = find Adversary.Brute_force.Intro in
  let remaining = find Adversary.Brute_force.Remaining in
  let full = find Adversary.Brute_force.Full in
  (* Cost ratio: full participation is the adversary's optimum. *)
  Alcotest.(check bool) "NONE < REMAINING cost" true
    (full.Effort_attack.cost_ratio < remaining.Effort_attack.cost_ratio);
  Alcotest.(check bool) "NONE < INTRO cost" true
    (full.Effort_attack.cost_ratio < intro.Effort_attack.cost_ratio);
  (* Friction: strategies extracting votes hurt most. *)
  Alcotest.(check bool) "vote extraction costs defenders" true
    (remaining.Effort_attack.friction > intro.Effort_attack.friction);
  Alcotest.(check bool) "friction bounded by constant over-provisioning" true
    (full.Effort_attack.friction < 4.);
  (* Access failure stays in the baseline's order of magnitude. *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "preservation intact" true (r.Effort_attack.access_failure < 0.01))
    rows

let test_fig2_shape () =
  (* A high damage rate keeps the comparison out of small-sample noise at
     this micro scale. *)
  let points =
    Baseline.sweep ~scale:micro
      ~intervals:[ Duration.of_months 1.; Duration.of_months 6. ]
      ~mttfs:[ 0.1 ] ~collections:[ 4 ] ()
  in
  match points with
  | [ fast; slow ] ->
    Alcotest.(check bool) "longer interval worse" true
      (slow.Baseline.access_failure > fast.Baseline.access_failure)
  | _ -> Alcotest.fail "expected two points"

(* -- Report formatting ------------------------------------------------ *)

let test_report_formats () =
  Alcotest.(check string) "sci" "1.50e-03" (Report.sci 0.0015);
  Alcotest.(check string) "sci inf" "inf" (Report.sci infinity);
  Alcotest.(check string) "ratio" "2.61" (Report.ratio 2.614);
  Alcotest.(check string) "days" "90d" (Report.days (Duration.of_days 90.));
  Alcotest.(check string) "months" "3.0mo" (Report.months (Duration.of_months 3.));
  Alcotest.(check string) "pct" "30%" (Report.pct 0.3)

let test_tables_render () =
  let points =
    [
      {
        Stoppage.coverage = 0.5;
        duration = Duration.of_days 10.;
        access_failure = 1e-4;
        delay_ratio = 1.5;
        friction = 2.0;
      };
    ]
  in
  List.iter
    (fun table ->
      Alcotest.(check bool) "renders" true
        (String.length (Repro_prelude.Table.render table) > 0))
    [ Stoppage.fig3_table points; Stoppage.fig4_table points; Stoppage.fig5_table points ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "experiments"
    [
      ( "scenario",
        [
          quick "config of scale" test_config_of_scale;
          quick "deterministic" test_run_one_deterministic;
          quick "averaging" test_run_avg_averages;
          quick "aggregation" test_mean_summaries_aggregation;
          quick "identity ratios" test_ratios_baseline_is_one;
          slow "infinite ratios" test_ratios_infinite_when_no_successes;
        ] );
      ( "shapes",
        [
          slow "fig3 coverage monotone" test_fig3_shape_coverage_monotone;
          slow "fig3 duration monotone" test_fig3_shape_duration_monotone;
          slow "fig6 flood weak" test_fig6_shape_flood_is_weak;
          slow "table1 ordering" test_table1_shape;
          slow "fig2 interval monotone" test_fig2_shape;
        ] );
      ( "report",
        [ quick "formats" test_report_formats; quick "tables render" test_tables_render ] );
    ]
