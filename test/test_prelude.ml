(* Unit and property tests for the prelude substrate: rng, heap, stats,
   duration, table. *)

module Rng = Repro_prelude.Rng
module Heap = Repro_prelude.Heap
module Stats = Repro_prelude.Stats
module Duration = Repro_prelude.Duration
module Table = Repro_prelude.Table

let check_float = Alcotest.(check (float 1e-9))

(* -- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "seeds diverge" true !differs

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy tracks" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* b is now one draw behind a; their next draws differ in general *)
  let a2 = Rng.bits64 a and b2 = Rng.bits64 b in
  Alcotest.(check bool) "desynchronised after extra draw" false (Int64.equal a2 b2)

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  (* Consuming the child must not affect the parent's future stream. *)
  let parent_reference = Rng.copy parent in
  for _ = 1 to 50 do
    ignore (Rng.bits64 child)
  done;
  for _ = 1 to 50 do
    Alcotest.(check int64) "parent unaffected" (Rng.bits64 parent_reference)
      (Rng.bits64 parent)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (x >= 0. && x < 3.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 17 in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)

let test_rng_bernoulli_frequency () =
  let rng = Rng.create 19 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "frequency near 0.3" true (Float.abs (freq -. 0.3) < 0.02)

let test_rng_exponential_mean () =
  let rng = Rng.create 23 in
  let acc = Stats.Acc.create () in
  for _ = 1 to 20_000 do
    Stats.Acc.add acc (Rng.exponential rng ~mean:5.)
  done;
  Alcotest.(check bool) "mean near 5" true (Float.abs (Stats.Acc.mean acc -. 5.) < 0.2)

let test_rng_sample_distinct () =
  let rng = Rng.create 29 in
  let xs = List.init 20 (fun i -> i) in
  let sample = Rng.sample rng 10 xs in
  Alcotest.(check int) "size" 10 (List.length sample);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare sample));
  List.iter (fun x -> Alcotest.(check bool) "member" true (List.mem x xs)) sample

let test_rng_sample_overshoot () =
  let rng = Rng.create 31 in
  let sample = Rng.sample rng 10 [ 1; 2; 3 ] in
  Alcotest.(check int) "capped at population" 3 (List.length sample)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 37 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let prop_sample_is_subset =
  QCheck2.Test.make ~name:"rng sample is always a distinct subset" ~count:200
    QCheck2.Gen.(pair small_int (small_list small_int))
    (fun (k, xs) ->
      let rng = Rng.create 41 in
      let s = Rng.sample rng k xs in
      List.length s = min (max k 0) (List.length xs)
      && List.for_all (fun x -> List.mem x xs) s)

(* -- Heap ------------------------------------------------------------- *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.add h 5;
  Heap.add h 1;
  Heap.add h 3;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop 5" (Some 5) (Heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_heap_pop_exn_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn on empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.add h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.add h) xs;
      let drained = ref [] in
      let rec drain () =
        match Heap.pop h with
        | None -> ()
        | Some x ->
          drained := x :: !drained;
          drain ()
      in
      drain ();
      List.rev !drained = List.sort compare xs)

let prop_heap_to_sorted_list_preserves =
  QCheck2.Test.make ~name:"to_sorted_list leaves heap intact" ~count:200
    QCheck2.Gen.(list small_int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.add h) xs;
      let listed = Heap.to_sorted_list h in
      listed = List.sort compare xs && Heap.length h = List.length xs)

(* -- Tsheap ----------------------------------------------------------- *)

module Tsheap = Repro_prelude.Tsheap

let test_tsheap_basic () =
  let h = Tsheap.create ~dummy:"" () in
  Alcotest.(check bool) "empty" true (Tsheap.is_empty h);
  Tsheap.add h ~time:5. ~seq:0 "e";
  Tsheap.add h ~time:1. ~seq:1 "a";
  Tsheap.add h ~time:3. ~seq:2 "c";
  Alcotest.(check int) "length" 3 (Tsheap.length h);
  Alcotest.(check (float 0.)) "min time" 1. (Tsheap.min_time h);
  Alcotest.(check int) "min seq" 1 (Tsheap.min_seq h);
  Alcotest.(check string) "min payload" "a" (Tsheap.min_payload h);
  Alcotest.(check (option string)) "pop a" (Some "a") (Tsheap.pop h);
  Alcotest.(check (option string)) "pop c" (Some "c") (Tsheap.pop h);
  Alcotest.(check (option string)) "pop e" (Some "e") (Tsheap.pop h);
  Alcotest.(check (option string)) "pop empty" None (Tsheap.pop h)

let test_tsheap_ties_fifo () =
  (* Equal times drain in seq order: the engine's FIFO guarantee for
     same-time events rests on exactly this. *)
  let h = Tsheap.create ~dummy:(-1) () in
  List.iter (fun seq -> Tsheap.add h ~time:2. ~seq seq) [ 4; 0; 3; 1; 2 ];
  let order = List.init 5 (fun _ -> Option.get (Tsheap.pop h)) in
  Alcotest.(check (list int)) "FIFO under ties" [ 0; 1; 2; 3; 4 ] order

let test_tsheap_empty_ops_raise () =
  let h = Tsheap.create ~dummy:0 () in
  Alcotest.check_raises "min_time" (Invalid_argument "Tsheap.min_time: empty heap")
    (fun () -> ignore (Tsheap.min_time h));
  Alcotest.check_raises "drop_min" (Invalid_argument "Tsheap.drop_min: empty heap")
    (fun () -> Tsheap.drop_min h)

let test_tsheap_clear () =
  let h = Tsheap.create ~dummy:0 () in
  for i = 1 to 40 do
    Tsheap.add h ~time:(float_of_int (i mod 7)) ~seq:i i
  done;
  Tsheap.clear h;
  Alcotest.(check int) "cleared" 0 (Tsheap.length h);
  Tsheap.add h ~time:1. ~seq:0 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Tsheap.pop h)

(* Model check against the generic comparator heap: identical pop order
   on (time, seq) keys, including heavy time ties — the engine swapped
   the former for the latter and this pins the equivalence. Times are
   drawn from a small set so collisions are the common case, and seqs
   are the injection index, unique as in the engine. *)
let tsheap_keys_gen =
  QCheck2.Gen.(list_size (int_bound 200) (int_bound 7))

let prop_tsheap_matches_model_heap =
  QCheck2.Test.make ~name:"tsheap pop order matches comparator-heap model"
    ~count:300 tsheap_keys_gen (fun raw_times ->
      let keyed = List.mapi (fun seq t -> (float_of_int t, seq)) raw_times in
      let model =
        Heap.create
          ~cmp:(fun (t1, s1) (t2, s2) ->
            match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c)
      in
      let h = Tsheap.create ~dummy:(nan, -1) () in
      List.iter
        (fun (time, seq) ->
          Heap.add model (time, seq);
          Tsheap.add h ~time ~seq (time, seq))
        keyed;
      let rec drain acc =
        match (Heap.pop model, Tsheap.pop h) with
        | None, None -> acc
        | Some m, Some f -> m = f && drain acc
        | _ -> false
      in
      drain true && Tsheap.is_empty h)

let prop_tsheap_interleaved_ops =
  (* Interleave adds and drops (the engine's actual access pattern, where
     the heap never fully drains between schedules) and check the final
     drain is still totally ordered with unique seqs. *)
  QCheck2.Test.make ~name:"tsheap interleaved add/drop stays ordered" ~count:200
    QCheck2.Gen.(list_size (int_bound 100) (pair (int_bound 5) bool))
    (fun ops ->
      let h = Tsheap.create ~dummy:(-1) () in
      let seq = ref 0 in
      List.iter
        (fun (t, drop) ->
          if drop && not (Tsheap.is_empty h) then Tsheap.drop_min h
          else begin
            Tsheap.add h ~time:(float_of_int t) ~seq:!seq !seq;
            incr seq
          end)
        ops;
      let rec drain prev =
        if Tsheap.is_empty h then true
        else begin
          let key = (Tsheap.min_time h, Tsheap.min_seq h) in
          Tsheap.drop_min h;
          (match prev with None -> true | Some p -> p < key) && drain (Some key)
        end
      in
      drain None)

(* -- Monotonic clock -------------------------------------------------- *)

let test_monotonic_now () =
  let a = Repro_prelude.Monotonic.now_s () in
  let b = Repro_prelude.Monotonic.now_s () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  Alcotest.(check bool) "elapsed non-negative" true
    (Repro_prelude.Monotonic.elapsed_s a >= 0.);
  (* elapsed_s clamps: a reference in the future must not go negative. *)
  Alcotest.(check (float 0.)) "clamped" 0.
    (Repro_prelude.Monotonic.elapsed_s (b +. 3600.))

let test_monotonic_thread_cpu () =
  let a = Repro_prelude.Monotonic.thread_cpu_s () in
  (* Burn a little CPU; the thread clock must not go backwards and
     should advance eventually (we only assert monotonicity to stay
     robust on coarse-grained platforms). *)
  let acc = ref 0 in
  for i = 1 to 1_000_000 do
    acc := !acc + (i mod 7)
  done;
  ignore (Sys.opaque_identity !acc);
  let b = Repro_prelude.Monotonic.thread_cpu_s () in
  Alcotest.(check bool) "non-decreasing" true (b >= a)

(* -- Stats ------------------------------------------------------------ *)

let test_acc_mean_variance () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float "mean" 5.0 (Stats.Acc.mean acc);
  check_float "variance" (32. /. 7.) (Stats.Acc.variance acc);
  check_float "min" 2. (Stats.Acc.min acc);
  check_float "max" 9. (Stats.Acc.max acc);
  Alcotest.(check int) "count" 8 (Stats.Acc.count acc);
  check_float "total" 40. (Stats.Acc.total acc)

let test_acc_empty () =
  let acc = Stats.Acc.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Acc.mean acc));
  check_float "variance 0" 0. (Stats.Acc.variance acc)

let test_time_weighted_constant () =
  let tw = Stats.Time_weighted.create ~start:0. ~value:3. in
  check_float "constant signal" 3. (Stats.Time_weighted.mean tw ~now:10.)

let test_time_weighted_step () =
  let tw = Stats.Time_weighted.create ~start:0. ~value:0. in
  Stats.Time_weighted.update tw ~now:5. ~value:1.;
  (* 0 for 5s then 1 for 5s *)
  check_float "step mean" 0.5 (Stats.Time_weighted.mean tw ~now:10.)

let test_time_weighted_multi_step () =
  let tw = Stats.Time_weighted.create ~start:0. ~value:2. in
  Stats.Time_weighted.update tw ~now:2. ~value:0.;
  Stats.Time_weighted.update tw ~now:4. ~value:4.;
  (* 2*2 + 0*2 + 4*6 = 28 over 10 *)
  check_float "piecewise mean" 2.8 (Stats.Time_weighted.mean tw ~now:10.)

let prop_acc_mean_matches_fold =
  QCheck2.Test.make ~name:"acc mean matches reference fold" ~count:300
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let acc = Stats.Acc.create () in
      List.iter (Stats.Acc.add acc) xs;
      let reference = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Stats.Acc.mean acc -. reference) < 1e-6 *. (1. +. Float.abs reference))

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "p0" 1. (Stats.percentile 0. xs);
  check_float "p50" 3. (Stats.percentile 50. xs);
  check_float "p100" 5. (Stats.percentile 100. xs);
  check_float "p25" 2. (Stats.percentile 25. xs)

let test_percentile_interpolates () =
  check_float "p50 of pair" 1.5 (Stats.percentile 50. [ 1.; 2. ])

let test_percentile_total_order () =
  (* Regression: the sort used polymorphic [compare]; with total float
     order, signed zeros and infinities land where they should. *)
  check_float "negatives sort below" (-3.) (Stats.percentile 0. [ 4.; -3.; 0. ]);
  check_float "p100 with infinity" infinity (Stats.percentile 100. [ 1.; infinity; 2. ]);
  check_float "p0 with -infinity" neg_infinity
    (Stats.percentile 0. [ 1.; neg_infinity; 2. ]);
  check_float "signed zeros ordered" 0. (Stats.percentile 50. [ 0.; -0.; 1. ])

let test_percentile_nan_raises () =
  Alcotest.check_raises "NaN input" (Invalid_argument "Stats.percentile: NaN input")
    (fun () -> ignore (Stats.percentile 50. [ 1.; nan; 2. ]))

let test_percentile_singleton () =
  check_float "p0 singleton" 42. (Stats.percentile 0. [ 42. ]);
  check_float "p100 singleton" 42. (Stats.percentile 100. [ 42. ]);
  check_float "p37 singleton" 42. (Stats.percentile 37. [ 42. ])

let test_mean_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Stats.mean []))

(* -- Duration --------------------------------------------------------- *)

let test_duration_roundtrips () =
  check_float "days" 3. (Duration.to_days (Duration.of_days 3.));
  check_float "months" 2.5 (Duration.to_months (Duration.of_months 2.5));
  check_float "years" 1.5 (Duration.to_years (Duration.of_years 1.5))

let test_duration_constants () =
  check_float "day" 86400. Duration.day;
  check_float "month = 30 days" (30. *. 86400.) Duration.month;
  check_float "year = 365 days" (365. *. 86400.) Duration.year

let test_duration_pp () =
  let s x = Format.asprintf "%a" Duration.pp x in
  Alcotest.(check string) "seconds" "30.0s" (s 30.);
  Alcotest.(check string) "days" "2.0d" (s (Duration.of_days 2.));
  Alcotest.(check string) "months" "3.0mo" (s (Duration.of_months 3.));
  Alcotest.(check string) "years" "2.00y" (s (Duration.of_years 2.))

(* -- Table ------------------------------------------------------------ *)

let test_table_renders () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length rendered > 0
    && String.split_on_char '\n' rendered |> List.length = 5
       (* header, rule, 2 rows, trailing *));
  Alcotest.(check bool) "pads short rows" true
    (String.split_on_char '\n' rendered
    |> List.exists (fun line -> String.trim line = "333"))

let test_table_too_many_cells () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "1"; "2" ])

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          quick "deterministic streams" test_rng_deterministic;
          quick "seed sensitivity" test_rng_seed_sensitivity;
          quick "copy independence" test_rng_copy_independent;
          quick "split independence" test_rng_split_independent;
          quick "int bounds" test_rng_int_bounds;
          quick "float bounds" test_rng_float_bounds;
          quick "bernoulli extremes" test_rng_bernoulli_extremes;
          quick "bernoulli frequency" test_rng_bernoulli_frequency;
          quick "exponential mean" test_rng_exponential_mean;
          quick "sample distinct" test_rng_sample_distinct;
          quick "sample overshoot" test_rng_sample_overshoot;
          quick "shuffle permutation" test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_sample_is_subset;
        ] );
      ( "heap",
        [
          quick "basic order" test_heap_basic;
          quick "pop_exn empty" test_heap_pop_exn_empty;
          quick "clear" test_heap_clear;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_to_sorted_list_preserves;
        ] );
      ( "tsheap",
        [
          quick "basic order" test_tsheap_basic;
          quick "FIFO under time ties" test_tsheap_ties_fifo;
          quick "empty ops raise" test_tsheap_empty_ops_raise;
          quick "clear" test_tsheap_clear;
          QCheck_alcotest.to_alcotest prop_tsheap_matches_model_heap;
          QCheck_alcotest.to_alcotest prop_tsheap_interleaved_ops;
        ] );
      ( "monotonic",
        [
          quick "wall clock" test_monotonic_now;
          quick "thread cpu clock" test_monotonic_thread_cpu;
        ] );
      ( "stats",
        [
          quick "acc mean/variance" test_acc_mean_variance;
          quick "acc empty" test_acc_empty;
          quick "time-weighted constant" test_time_weighted_constant;
          quick "time-weighted step" test_time_weighted_step;
          quick "time-weighted multi-step" test_time_weighted_multi_step;
          quick "percentile" test_percentile;
          quick "percentile interpolation" test_percentile_interpolates;
          quick "percentile total order" test_percentile_total_order;
          quick "percentile NaN raises" test_percentile_nan_raises;
          quick "percentile singleton" test_percentile_singleton;
          quick "mean empty raises" test_mean_empty_raises;
          QCheck_alcotest.to_alcotest prop_acc_mean_matches_fold;
        ] );
      ( "duration",
        [
          quick "roundtrips" test_duration_roundtrips;
          quick "constants" test_duration_constants;
          quick "pretty printing" test_duration_pp;
        ] );
      ( "table",
        [ quick "renders" test_table_renders; quick "cell overflow" test_table_too_many_cells ]
      );
    ]
