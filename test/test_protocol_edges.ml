(* Edge-case tests that drive the poller/voter state machines directly
   with hand-crafted messages: desertion, forgery, nonce mismatches,
   unsolicited votes, duplicates. *)

module Duration = Repro_prelude.Duration
module Rng = Repro_prelude.Rng
module Engine = Narses.Engine
module Proof = Effort.Proof
open Lockss

let cfg =
  {
    Config.default with
    Config.loyal_peers = 8;
    aus = 1;
    quorum = 2;
    max_disagree = 0;
    inner_circle_factor = 2;
    outer_circle_size = 2;
    reference_list_target = 5;
    friends_count = 2;
    (* Make sure admission never randomly interferes with these tests. *)
    drop_unknown = 0.;
    drop_debt = 0.;
  }

(* A fresh world whose poll clocks have not started yet (polls begin at a
   random phase within the first interval; we operate near t = 0). *)
let make_world () =
  let population = Population.create ~seed:99 cfg in
  let ctx = Population.ctx population in
  (population, ctx)

let rng = Rng.create 4242

let genuine_intro () = Proof.generate ~rng ~cost:(Config.intro_effort cfg)
let genuine_remaining () = Proof.generate ~rng ~cost:(Config.remaining_effort cfg)

let find_session (peer : Peer.t) key = Hashtbl.find_opt peer.Peer.voter_sessions key

let test_accepted_poll_creates_session () =
  let population, ctx = make_world () in
  let voter = ctx.Peer.peers.(0) in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  (match find_session voter (1, 0, 77) with
  | Some session ->
    (match session.Peer.vs_state with
    | Peer.Awaiting_proof _ -> ()
    | _ -> Alcotest.fail "expected Awaiting_proof")
  | None -> Alcotest.fail "session missing");
  ignore population

let test_forged_intro_rejected_and_punished () =
  let _population, ctx = make_world () in
  let voter = ctx.Peer.peers.(0) in
  let st = Peer.au_state voter 0 in
  (* Make identity 1 a known, trusted peer; a forged proof erases that. *)
  Known_peers.set st.Peer.known ~now:0. 1 Grade.Credit;
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77
    ~intro:(Proof.forged ~claimed_cost:1e6);
  Alcotest.(check (option unit)) "no session" None
    (Option.map (fun _ -> ()) (find_session voter (1, 0, 77)));
  Alcotest.(check bool) "punished into oblivion" false (Known_peers.known st.Peer.known 1)

let test_duplicate_poll_ignored () =
  let _population, ctx = make_world () in
  let voter = ctx.Peer.peers.(0) in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  Alcotest.(check int) "one session" 1 (Hashtbl.length voter.Peer.voter_sessions)

let test_proof_desertion_times_out_and_punishes () =
  let _population, ctx = make_world () in
  let voter = ctx.Peer.peers.(0) in
  let st = Peer.au_state voter 0 in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  let backlog_before = Effort.Task_schedule.reserved_work voter.Peer.schedule ~now:0. in
  Alcotest.(check bool) "vote work reserved" true (backlog_before > 0.);
  (* Never send the PollProof: the INTRO reservation attack. *)
  Engine.run_until ctx.Peer.engine ~limit:(cfg.Config.proof_timeout +. Duration.hour);
  Alcotest.(check (option unit)) "session reaped" None
    (Option.map (fun _ -> ()) (find_session voter (1, 0, 77)));
  Alcotest.(check bool) "deserter forgotten" false (Known_peers.known st.Peer.known 1);
  let now = Engine.now ctx.Peer.engine in
  Alcotest.(check (float 1e-6)) "reservation released" 0.
    (Effort.Task_schedule.reserved_work voter.Peer.schedule ~now)

let test_forged_remaining_rejected () =
  let _population, ctx = make_world () in
  let voter = ctx.Peer.peers.(0) in
  let st = Peer.au_state voter 0 in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  Voter.on_poll_proof ctx voter ~identity:1 ~au:0 ~poll_id:77
    ~remaining:(Proof.forged ~claimed_cost:1e6) ~nonce:5L;
  Alcotest.(check (option unit)) "session closed" None
    (Option.map (fun _ -> ()) (find_session voter (1, 0, 77)));
  Alcotest.(check bool) "cheater forgotten" false (Known_peers.known st.Peer.known 1)

let test_full_voter_exchange_produces_vote () =
  let population, ctx = make_world () in
  let voter = ctx.Peer.peers.(0) in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  Voter.on_poll_proof ctx voter ~identity:1 ~au:0 ~poll_id:77
    ~remaining:(genuine_remaining ()) ~nonce:42L;
  (* Run long enough for the vote computation to complete. *)
  Engine.run_until ctx.Peer.engine ~limit:(Duration.of_days 1.);
  (match find_session voter (1, 0, 77) with
  | Some session ->
    (match (session.Peer.vs_state, session.Peer.vs_vote) with
    | Peer.Voted_waiting_receipt _, Some vote ->
      Alcotest.(check int64) "vote echoes nonce" 42L vote.Vote.nonce;
      Alcotest.(check bool) "vote honest" false vote.Vote.bogus
    | _ -> Alcotest.fail "expected a sent vote awaiting receipt")
  | None -> Alcotest.fail "session missing");
  let s = Population.summary population in
  Alcotest.(check int) "vote counted" 1 s.Metrics.votes_supplied

let with_voted_session () =
  let population, ctx = make_world () in
  let voter = ctx.Peer.peers.(0) in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  Voter.on_poll_proof ctx voter ~identity:1 ~au:0 ~poll_id:77
    ~remaining:(genuine_remaining ()) ~nonce:42L;
  Engine.run_until ctx.Peer.engine ~limit:(Duration.of_days 1.);
  let session =
    match find_session voter (1, 0, 77) with
    | Some s -> s
    | None -> Alcotest.fail "session missing"
  in
  (population, ctx, voter, session)

let test_valid_receipt_settles () =
  let _population, ctx, voter, session = with_voted_session () in
  let st = Peer.au_state voter 0 in
  let vote = Option.get session.Peer.vs_vote in
  Voter.on_receipt ctx voter ~identity:1 ~au:0 ~poll_id:77
    ~receipt:(Vote.expected_receipt vote);
  Alcotest.(check (option unit)) "session closed" None
    (Option.map (fun _ -> ()) (find_session voter (1, 0, 77)));
  (* Normal settlement: one step toward debt from Even. *)
  (match Known_peers.grade st.Peer.known ~now:(Engine.now ctx.Peer.engine) 1 with
  | Some Grade.Debt -> ()
  | g ->
    Alcotest.failf "expected debt after settlement, got %s"
      (match g with
      | None -> "unknown"
      | Some Grade.Even -> "even"
      | Some Grade.Credit -> "credit"
      | Some Grade.Debt -> assert false))

let test_bad_receipt_punishes () =
  let _population, ctx, voter, _session = with_voted_session () in
  let st = Peer.au_state voter 0 in
  Voter.on_receipt ctx voter ~identity:1 ~au:0 ~poll_id:77 ~receipt:(0L, 0L);
  Alcotest.(check bool) "wasteful poller forgotten" false (Known_peers.known st.Peer.known 1)

let test_committed_voter_serves_repairs () =
  let population, ctx, voter, _session = with_voted_session () in
  ignore (Replica.damage (Peer.au_state voter 0).Peer.replica ~block:3 ~version:9);
  Voter.on_repair_request ctx voter ~identity:1 ~au:0 ~poll_id:77 ~block:3;
  (* The Repair flows back over the network toward node 1. *)
  let before = Narses.Net.delivered_count ctx.Peer.net in
  Engine.run_until ctx.Peer.engine ~limit:(Engine.now ctx.Peer.engine +. Duration.hour);
  Alcotest.(check bool) "repair message delivered" true
    (Narses.Net.delivered_count ctx.Peer.net > before);
  ignore population

let test_unsolicited_vote_ignored () =
  let population, ctx = make_world () in
  let victim = ctx.Peer.peers.(0) in
  let vote =
    {
      Vote.voter = 999_999;
      nonce = 1L;
      proof = Proof.forged ~claimed_cost:1.;
      snapshot = [];
      nominations = [ 999_998 ];
      bogus = true;
    }
  in
  let effort_before = (Population.summary population).Metrics.loyal_effort in
  Poller.on_vote ctx victim ~identity:999_999 ~au:0 ~poll_id:123_456 ~vote;
  let s = Population.summary population in
  (* The defense is structural: no state, no cost. *)
  Alcotest.(check (float 0.)) "no effort spent" effort_before s.Metrics.loyal_effort;
  Alcotest.(check int) "no poll state created" 0
    (match (Peer.au_state victim 0).Peer.current_poll with None -> 0 | Some _ -> 1)

let test_repair_for_unknown_poll_ignored () =
  let _population, ctx = make_world () in
  let victim = ctx.Peer.peers.(0) in
  Poller.on_repair ctx victim ~identity:3 ~au:0 ~poll_id:5 ~block:0 ~version:7;
  Alcotest.(check bool) "replica untouched" false
    (Replica.is_damaged (Peer.au_state victim 0).Peer.replica)

let test_ack_for_unknown_poll_ignored () =
  let _population, ctx = make_world () in
  let victim = ctx.Peer.peers.(0) in
  (* Must not raise nor create state. *)
  Poller.on_poll_ack ctx victim ~identity:3 ~au:0 ~poll_id:5 ~accepted:true;
  Alcotest.(check int) "no sessions" 0 (Hashtbl.length victim.Peer.voter_sessions)

(* -- Timeout handlers -------------------------------------------------- *)

(* A world where every peer ignores traffic and skips its poll ticks, so
   the only protocol activity (and the only classed timer) is what a test
   drives by hand. The clocks and damage processes attached at creation
   keep firing as unlabeled no-ops. *)
let quiet_world () =
  let population, ctx = make_world () in
  Array.iter (fun p -> p.Peer.active <- false) ctx.Peer.peers;
  (population, ctx)

let live ctx name =
  Option.value ~default:0 (List.assoc_opt name (Engine.live_by_class ctx.Peer.engine))

(* Counts [Message_rejected] events, optionally only those with [reason]. *)
let count_rejections ?reason population =
  let n = ref 0 in
  Trace.subscribe ~interest:Trace.Debug (Population.trace population)
    (fun ~time:_ event ->
      match event with
      | Trace.Message_rejected r ->
        (match reason with Some want when r.reason <> want -> () | _ -> incr n)
      | _ -> ());
  n

let plain_vote ~voter =
  {
    Vote.voter;
    nonce = 0L;
    proof = Proof.forged ~claimed_cost:1.;
    snapshot = [];
    nominations = [];
    bogus = false;
  }

let make_candidate ~identity =
  { Peer.cand_identity = identity; inner = true; attempts = 1;
    status = Peer.Not_invited; cand_nonce = 0L }

(* A hand-built poll installed as the peer's current poll, so each timer
   can be exercised in isolation at a known state. *)
let install_poll (st : Peer.au_state) ~poll_id ~candidates =
  let poll =
    {
      Peer.poll_id;
      poll_au = st.Peer.au;
      started_at = 0.;
      inner_deadline = Duration.of_days 40.;
      outer_deadline = Duration.of_days 80.;
      candidates;
      votes = [];
      nominations = [];
      phase = Peer.Soliciting;
      pending_repairs = [];
      repair_timer = None;
      repair_attempts = 0;
      alarmed = false;
    }
  in
  st.Peer.current_poll <- Some poll;
  poll

(* Nobody answers the solicitations, so every candidate's ack timeout
   fires, retries through the budget and fails; the poll must conclude
   inquorate with no classed timer left behind, and a late ack must be a
   taxonomized no-op. *)
let test_ack_timeout_fails_candidates_and_poll () =
  let population, ctx = make_world () in
  Array.iteri (fun i p -> if i <> 0 then p.Peer.active <- false) ctx.Peer.peers;
  let poller = ctx.Peer.peers.(0) in
  let st = Peer.au_state poller 0 in
  Poller.start_poll ctx poller st;
  let poll = Option.get st.Peer.current_poll in
  Engine.run_until ctx.Peer.engine ~limit:(poll.Peer.outer_deadline +. Duration.hour);
  Alcotest.(check (option unit)) "poll concluded" None
    (Option.map (fun _ -> ()) st.Peer.current_poll);
  List.iter
    (fun (c : Peer.candidate) ->
      match c.Peer.status with
      | Peer.Failed -> ()
      | _ -> Alcotest.fail "candidate not failed after ack timeouts")
    poll.Peer.candidates;
  Alcotest.(check int) "no live ack timers" 0 (live ctx "ack_timeout");
  Alcotest.(check int) "no live vote timers" 0 (live ctx "vote_timeout");
  Alcotest.(check bool) "inquorate recorded" true
    ((Population.summary population).Metrics.polls_inquorate >= 1);
  (* Idempotence: the timeout already resolved this candidate; a
     straggling ack for the dead poll is rejected without state. *)
  let rejections = count_rejections ~reason:Trace.Unknown_poll population in
  let survivor = (List.hd poll.Peer.candidates).Peer.cand_identity in
  Poller.on_poll_ack ctx poller ~identity:survivor ~au:0
    ~poll_id:poll.Peer.poll_id ~accepted:true;
  Alcotest.(check int) "late ack rejected" 1 !rejections

(* An accepted candidate that never votes: the vote-patience timer fires
   and marks it failed; a duplicate ack while waiting and a late vote
   after the timeout are both rejected without touching the tally. *)
let test_vote_timeout_marks_candidate_failed () =
  let population, ctx = quiet_world () in
  let poller = ctx.Peer.peers.(0) in
  let st = Peer.au_state poller 0 in
  let cand = make_candidate ~identity:1 in
  let poll = install_poll st ~poll_id:901 ~candidates:[ cand ] in
  let ack_timer =
    Engine.schedule_in ctx.Peer.engine ~cls:Peer.cls_ack_timeout
      ~after:(Duration.of_days 2.) (fun () -> ())
  in
  cand.Peer.status <- Peer.Awaiting_ack ack_timer;
  Alcotest.(check int) "one live ack timer" 1 (live ctx "ack_timeout");
  Poller.on_poll_ack ctx poller ~identity:1 ~au:0 ~poll_id:901 ~accepted:true;
  Alcotest.(check int) "ack timer cancelled" 0 (live ctx "ack_timeout");
  (match cand.Peer.status with
  | Peer.Awaiting_vote _ -> ()
  | _ -> Alcotest.fail "expected Awaiting_vote after accepted ack");
  Alcotest.(check int) "one live vote timer" 1 (live ctx "vote_timeout");
  (* Duplicate ack while awaiting the vote: no second dispatch. *)
  let dup_acks = count_rejections ~reason:Trace.Wrong_state population in
  Poller.on_poll_ack ctx poller ~identity:1 ~au:0 ~poll_id:901 ~accepted:true;
  Alcotest.(check int) "duplicate ack rejected" 1 !dup_acks;
  Alcotest.(check int) "still one live vote timer" 1 (live ctx "vote_timeout");
  (* The vote never arrives: patience runs out. *)
  Engine.run_until ctx.Peer.engine ~limit:(Duration.of_days 30.);
  (match cand.Peer.status with
  | Peer.Failed -> ()
  | _ -> Alcotest.fail "expected Failed after vote timeout");
  Alcotest.(check int) "vote timer cleaned up" 0 (live ctx "vote_timeout");
  let late_votes = count_rejections ~reason:Trace.Wrong_state population in
  Poller.on_vote ctx poller ~identity:1 ~au:0 ~poll_id:901
    ~vote:(plain_vote ~voter:1);
  Alcotest.(check int) "late vote rejected" 1 !late_votes;
  Alcotest.(check int) "tally untouched" 0 (List.length poll.Peer.votes)

(* Repair suppliers that never answer: each repair timeout advances to
   the next supplier, and exhausting them concludes the poll inquorate
   with no timer left; a straggling repair is then rejected. *)
let test_repair_timeout_advances_then_concludes () =
  let population, ctx = quiet_world () in
  let poller = ctx.Peer.peers.(0) in
  let st = Peer.au_state poller 0 in
  let cand = { (make_candidate ~identity:5) with Peer.status = Peer.Voted } in
  let poll = install_poll st ~poll_id:902 ~candidates:[ cand ] in
  poll.Peer.votes <- [ (cand, plain_vote ~voter:5) ];
  poll.Peer.phase <- Peer.Repairing;
  poll.Peer.pending_repairs <- [ (2, [ 5 ]); (3, [ 6; 7 ]) ];
  (* Applying the head repair moves the queue on and arms the timer for
     the next block's first supplier. *)
  Poller.on_repair ctx poller ~identity:5 ~au:0 ~poll_id:902 ~block:2 ~version:0;
  Alcotest.(check bool) "repair timer armed" true (poll.Peer.repair_timer <> None);
  Alcotest.(check int) "one live repair timer" 1 (live ctx "repair_timeout");
  (* Supplier 6 never answers; the timeout re-issues to supplier 7. *)
  let t1 = Engine.now ctx.Peer.engine in
  Engine.run_until ctx.Peer.engine
    ~limit:(t1 +. ctx.Peer.cfg.Config.repair_timeout +. Duration.hour);
  Alcotest.(check int) "re-armed for next supplier" 1 (live ctx "repair_timeout");
  (match poll.Peer.phase with
  | Peer.Repairing -> ()
  | _ -> Alcotest.fail "poll should still be repairing");
  (* Supplier 7 deserts too: out of suppliers, the poll fails cleanly. *)
  let t2 = Engine.now ctx.Peer.engine in
  Engine.run_until ctx.Peer.engine
    ~limit:(t2 +. ctx.Peer.cfg.Config.repair_timeout +. Duration.hour);
  Alcotest.(check (option unit)) "poll concluded" None
    (Option.map (fun _ -> ()) st.Peer.current_poll);
  Alcotest.(check int) "repair timer cleaned up" 0 (live ctx "repair_timeout");
  Alcotest.(check bool) "inquorate recorded" true
    ((Population.summary population).Metrics.polls_inquorate >= 1);
  let late = count_rejections ~reason:Trace.Unknown_poll population in
  Poller.on_repair ctx poller ~identity:7 ~au:0 ~poll_id:902 ~block:3 ~version:0;
  Alcotest.(check int) "late repair rejected" 1 !late

(* Late PollProof after the proof timeout reaped the session: rejected as
   unknown, and no ghost session appears. (The timeout's cleanup side is
   covered by the desertion test above.) *)
let test_late_proof_after_desertion_rejected () =
  let population, ctx = quiet_world () in
  let voter = ctx.Peer.peers.(0) in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  Alcotest.(check int) "one live proof timer" 1 (live ctx "proof_timeout");
  Engine.run_until ctx.Peer.engine
    ~limit:(cfg.Config.proof_timeout +. Duration.hour);
  Alcotest.(check int) "proof timer cleaned up" 0 (live ctx "proof_timeout");
  let late = count_rejections ~reason:Trace.Unknown_session population in
  Voter.on_poll_proof ctx voter ~identity:1 ~au:0 ~poll_id:77
    ~remaining:(genuine_remaining ()) ~nonce:5L;
  Alcotest.(check int) "late proof rejected" 1 !late;
  Alcotest.(check int) "no ghost session" 0 (Hashtbl.length voter.Peer.voter_sessions)

(* A poller that never sends the receipt: the receipt timeout punishes it
   and reaps the session; a late receipt is then rejected. *)
let test_receipt_timeout_reaps_session () =
  let population, ctx = quiet_world () in
  let voter = ctx.Peer.peers.(0) in
  let st = Peer.au_state voter 0 in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  Voter.on_poll_proof ctx voter ~identity:1 ~au:0 ~poll_id:77
    ~remaining:(genuine_remaining ()) ~nonce:42L;
  Engine.run_until ctx.Peer.engine ~limit:(Duration.of_days 1.);
  (match find_session voter (1, 0, 77) with
  | Some { Peer.vs_state = Peer.Voted_waiting_receipt _; _ } -> ()
  | _ -> Alcotest.fail "expected a sent vote awaiting receipt");
  Alcotest.(check int) "one live receipt timer" 1 (live ctx "receipt_timeout");
  let start = Engine.now ctx.Peer.engine in
  Engine.run_until ctx.Peer.engine
    ~limit:(start +. cfg.Config.inter_poll_interval +. Duration.hour);
  Alcotest.(check (option unit)) "session reaped" None
    (Option.map (fun _ -> ()) (find_session voter (1, 0, 77)));
  Alcotest.(check int) "receipt timer cleaned up" 0 (live ctx "receipt_timeout");
  Alcotest.(check bool) "deserting poller forgotten" false
    (Known_peers.known st.Peer.known 1);
  let late = count_rejections ~reason:Trace.Unknown_session population in
  Voter.on_receipt ctx voter ~identity:1 ~au:0 ~poll_id:77 ~receipt:(0L, 0L);
  Alcotest.(check int) "late receipt rejected" 1 !late

(* A completed session's key lands in the closed ring: re-delivering the
   original Poll must not reopen a ghost session whose receipt timeout
   would punish an innocent poller. *)
let test_duplicate_poll_after_close_rejected_stale () =
  let population, ctx = quiet_world () in
  let voter = ctx.Peer.peers.(0) in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  Voter.on_poll_proof ctx voter ~identity:1 ~au:0 ~poll_id:77
    ~remaining:(genuine_remaining ()) ~nonce:42L;
  Engine.run_until ctx.Peer.engine ~limit:(Duration.of_days 1.);
  let session = Option.get (find_session voter (1, 0, 77)) in
  Voter.on_receipt ctx voter ~identity:1 ~au:0 ~poll_id:77
    ~receipt:(Vote.expected_receipt (Option.get session.Peer.vs_vote));
  Alcotest.(check (option unit)) "session closed" None
    (Option.map (fun _ -> ()) (find_session voter (1, 0, 77)));
  let stale = count_rejections ~reason:Trace.Stale_closed population in
  Voter.on_poll ctx voter ~src:1 ~identity:1 ~au:0 ~poll_id:77 ~intro:(genuine_intro ());
  Alcotest.(check int) "duplicate poll rejected stale" 1 !stale;
  Alcotest.(check int) "no ghost session" 0 (Hashtbl.length voter.Peer.voter_sessions);
  Alcotest.(check int) "no live voter timers" 0
    (live ctx "proof_timeout" + live ctx "receipt_timeout")

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "protocol-edges"
    [
      ( "voter",
        [
          quick "accepted poll creates session" test_accepted_poll_creates_session;
          quick "forged intro punished" test_forged_intro_rejected_and_punished;
          quick "duplicate poll ignored" test_duplicate_poll_ignored;
          quick "proof desertion reaped" test_proof_desertion_times_out_and_punishes;
          quick "forged remaining rejected" test_forged_remaining_rejected;
          quick "full exchange votes" test_full_voter_exchange_produces_vote;
          quick "valid receipt settles" test_valid_receipt_settles;
          quick "bad receipt punishes" test_bad_receipt_punishes;
          quick "committed voter serves repairs" test_committed_voter_serves_repairs;
        ] );
      ( "poller",
        [
          quick "unsolicited vote ignored" test_unsolicited_vote_ignored;
          quick "stray repair ignored" test_repair_for_unknown_poll_ignored;
          quick "stray ack ignored" test_ack_for_unknown_poll_ignored;
        ] );
      ( "timeouts",
        [
          quick "ack timeout fails candidates"
            test_ack_timeout_fails_candidates_and_poll;
          quick "vote timeout fails candidate" test_vote_timeout_marks_candidate_failed;
          quick "repair timeout advances suppliers"
            test_repair_timeout_advances_then_concludes;
          quick "late proof after desertion rejected"
            test_late_proof_after_desertion_rejected;
          quick "receipt timeout reaps session" test_receipt_timeout_reaps_session;
          quick "stale duplicate poll rejected"
            test_duplicate_poll_after_close_rejected_stale;
        ] );
    ]
