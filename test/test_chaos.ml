(* Tests for the fault-injection layer (Narses.Faults), its wiring into
   Net and Population (crash/restart semantics, duplicate-delivery
   idempotence), the engine's event budget, and the chaos harness
   invariants — including fault-trace determinism. *)

module Rng = Repro_prelude.Rng
module Duration = Repro_prelude.Duration
module Engine = Narses.Engine
module Topology = Narses.Topology
module Partition = Narses.Partition
module Net = Narses.Net
module Faults = Narses.Faults
open Experiments

let micro =
  {
    Scenario.peers = 15;
    aus = 2;
    quorum = 4;
    max_disagree = 1;
    outer_circle = 3;
    reference_target = 8;
    years = 2.;
    runs = 1;
    seed = 5;
  }

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* A bare faulty network: engine + topology + partition + injector. *)
let make_net ?(nodes = 12) fault_cfg =
  let engine = Engine.create () in
  let topology = Topology.create ~rng:(Rng.create 99) ~nodes in
  let partition = Partition.create ~nodes in
  let faults = Faults.create ~engine ~nodes fault_cfg in
  let net = Net.create ~faults ~engine ~topology ~partition () in
  (engine, topology, faults, net)

(* -- Injection at the Net layer ----------------------------------------- *)

let test_loss_drops_everything () =
  let cfg = { Faults.none with Faults.loss = 1.0; fault_seed = 3 } in
  let engine, _topology, faults, net = make_net cfg in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ (_ : int) -> incr received);
  for i = 1 to 50 do
    Net.send net ~src:0 ~dst:1 ~bytes:1024 i
  done;
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 !received;
  Alcotest.(check int) "net counted every drop" 50 (Net.dropped_count net);
  Alcotest.(check int) "injector counted every drop" 50 (Faults.dropped_count faults);
  Alcotest.(check int) "sends still counted" 50 (Net.sent_count net)

let test_duplication_doubles_delivery () =
  let cfg = { Faults.none with Faults.duplication = 1.0; fault_seed = 3 } in
  let engine, _topology, faults, net = make_net cfg in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ (_ : int) -> incr received);
  for i = 1 to 50 do
    Net.send net ~src:0 ~dst:1 ~bytes:1024 i
  done;
  Engine.run engine;
  Alcotest.(check int) "every message delivered twice" 100 !received;
  Alcotest.(check int) "fifty duplications injected" 50 (Faults.duplicated_count faults);
  Alcotest.(check int) "one logical send each" 50 (Net.sent_count net);
  Alcotest.(check int) "no drops" 0 (Net.dropped_count net)

let test_jitter_bounds_delay () =
  let jitter = 2.0 in
  let cfg = { Faults.none with Faults.jitter; fault_seed = 3 } in
  let engine, topology, faults, net = make_net cfg in
  let base = Topology.transfer_time topology ~src:0 ~dst:1 ~bytes:1024 in
  let arrivals = ref [] in
  Net.register net 1 (fun ~src:_ (_ : int) -> arrivals := Engine.now engine :: !arrivals);
  for i = 1 to 40 do
    Net.send net ~src:0 ~dst:1 ~bytes:1024 i
  done;
  Engine.run engine;
  Alcotest.(check int) "all delivered" 40 (List.length !arrivals);
  List.iter
    (fun t ->
      Alcotest.(check bool) "no earlier than the fault-free delay" true (t >= base -. 1e-9);
      Alcotest.(check bool) "within base + jitter" true (t <= base +. jitter +. 1e-9))
    !arrivals;
  let lo = List.fold_left Float.min infinity !arrivals in
  let hi = List.fold_left Float.max neg_infinity !arrivals in
  Alcotest.(check bool) "jitter actually spreads deliveries" true (hi -. lo > 0.1);
  Alcotest.(check int) "every delivery recorded as delayed" 40 (Faults.delayed_count faults)

let test_conservation_under_mixed_faults () =
  let cfg =
    {
      Faults.none with
      Faults.loss = 0.3;
      jitter = 1.0;
      duplication = 0.2;
      fault_seed = 5;
    }
  in
  let engine, _topology, faults, net = make_net cfg in
  for node = 0 to 11 do
    Net.register net node (fun ~src:_ (_ : int) -> ())
  done;
  for i = 0 to 199 do
    let src = i mod 12 in
    let dst = (src + 1 + (i mod 11)) mod 12 in
    Net.send net ~src ~dst ~bytes:4096 i
  done;
  Engine.run engine;
  let sent = Net.sent_count net in
  let dups = Faults.duplicated_count faults in
  let delivered = Net.delivered_count net in
  let dropped = Net.dropped_count net in
  Alcotest.(check int) "every send counted" 200 sent;
  Alcotest.(check bool) "some copies lost" true (dropped > 0);
  Alcotest.(check bool) "some copies duplicated" true (dups > 0);
  Alcotest.(check int) "sent + dup = delivered + dropped after drain" (sent + dups)
    (delivered + dropped)

(* -- Churn scheduling ---------------------------------------------------- *)

let test_churn_schedule_and_hooks () =
  let cfg =
    {
      Faults.none with
      Faults.churn_per_day = 1.0;
      downtime = Duration.of_days 0.5;
      fault_seed = 11;
    }
  in
  let engine = Engine.create () in
  let faults = Faults.create ~engine ~nodes:10 cfg in
  let hook_crashes = ref 0 and hook_restarts = ref 0 in
  Faults.on_crash faults (fun _node -> incr hook_crashes);
  Faults.on_restart faults (fun _node -> incr hook_restarts);
  Faults.start_churn faults ~nodes:(List.init 10 (fun i -> i));
  Engine.run_until engine ~limit:(Duration.of_days 30.);
  let crashes = Faults.crash_count faults in
  let restarts = Faults.restart_count faults in
  let down = Faults.down_count faults in
  Alcotest.(check bool) "churn produced crashes" true (crashes > 0);
  Alcotest.(check int) "crashes = restarts + still down" crashes (restarts + down);
  Alcotest.(check int) "crash hook fired per crash" crashes !hook_crashes;
  Alcotest.(check int) "restart hook fired per restart" restarts !hook_restarts;
  let observed_down = ref 0 in
  for node = 0 to 9 do
    if Faults.is_down faults node then incr observed_down
  done;
  Alcotest.(check int) "down_count matches is_down" down !observed_down

let test_validate_rejects_bad_configs () =
  let rejects label cfg =
    Alcotest.(check bool) label true
      (try
         Faults.validate cfg;
         false
       with Invalid_argument _ -> true)
  in
  Faults.validate Faults.none;
  rejects "loss above one" { Faults.none with Faults.loss = 1.5 };
  rejects "negative jitter" { Faults.none with Faults.jitter = -1.0 };
  rejects "negative duplication" { Faults.none with Faults.duplication = -0.1 };
  rejects "churn without downtime" { Faults.none with Faults.churn_per_day = 0.5; downtime = 0.0 }

(* -- Crash / restart at the population layer ----------------------------- *)

(* First (time, poller) at which any poll starts, found by replaying the
   deterministic run once with a trace subscriber. *)
let first_poll_start cfg ~seed ~horizon =
  let population = Lockss.Population.create ~seed cfg in
  let found = ref None in
  Lockss.Trace.subscribe (Lockss.Population.trace population) (fun ~time event ->
      match (!found, event) with
      | None, Lockss.Trace.Poll_started { poller; _ } -> found := Some (time, poller)
      | _ -> ());
  Lockss.Population.run population ~until:horizon;
  match !found with
  | Some x -> x
  | None -> Alcotest.fail "no poll started within the horizon"

let test_crash_aborts_inflight_poll () =
  let cfg = Scenario.config micro in
  let horizon = 1.5 *. cfg.Lockss.Config.inter_poll_interval in
  let t0, poller = first_poll_start cfg ~seed:5 ~horizon in
  (* Same seed, fresh population: stop just after that poll went out. *)
  let population = Lockss.Population.create ~seed:5 cfg in
  Lockss.Population.run population ~until:(t0 +. 1.);
  let ctx = Lockss.Population.ctx population in
  let peer = ctx.Lockss.Peer.peers.(poller) in
  Alcotest.(check bool) "poll in flight before the crash" true
    (Array.exists
       (fun (st : Lockss.Peer.au_state) -> Option.is_some st.Lockss.Peer.current_poll)
       peer.Lockss.Peer.aus);
  Lockss.Population.crash_peer population ~node:poller;
  Alcotest.(check bool) "peer inactive after crash" false peer.Lockss.Peer.active;
  Alcotest.(check bool) "in-flight polls aborted" true
    (Array.for_all
       (fun (st : Lockss.Peer.au_state) -> Option.is_none st.Lockss.Peer.current_poll)
       peer.Lockss.Peer.aus);
  Alcotest.(check int) "voter sessions discarded" 0
    (Hashtbl.length peer.Lockss.Peer.voter_sessions);
  Lockss.Population.restart_peer population ~node:poller;
  Alcotest.(check bool) "peer active after restart" true peer.Lockss.Peer.active;
  (* The deployment keeps running cleanly through the crash/restart. *)
  Lockss.Population.run population ~until:horizon

let test_restart_ignores_dormant_peers () =
  let cfg = Scenario.config micro in
  let population = Lockss.Population.create ~seed:5 ~dormant:1 cfg in
  let node = List.hd (Lockss.Population.dormant_nodes population) in
  (* crash_peer is a no-op on an inactive peer, and restart_peer only
     revives peers that churn actually took down. *)
  Lockss.Population.crash_peer population ~node;
  Lockss.Population.restart_peer population ~node;
  Alcotest.(check bool) "dormant peer stays dormant" true
    (List.mem node (Lockss.Population.dormant_nodes population));
  Alcotest.(check bool) "dormant peer stays inactive" false
    (Lockss.Population.ctx population).Lockss.Peer.peers.(node).Lockss.Peer.active

(* -- Duplicate-delivery idempotence -------------------------------------- *)

(* Admission control and effort balancing draw from the voter's rng; with
   both off, Voter.on_poll is deterministic and we can call it directly. *)
let idem_population () =
  let cfg =
    {
      (Scenario.config micro) with
      Lockss.Config.admission_control_enabled = false;
      effort_balancing_enabled = false;
    }
  in
  Lockss.Population.create ~seed:11 cfg

let test_duplicate_poll_is_reacked () =
  let population = idem_population () in
  let ctx = Lockss.Population.ctx population in
  let peer = ctx.Lockss.Peer.peers.(2) in
  let st = peer.Lockss.Peer.aus.(0) in
  Alcotest.(check bool) "replica held" true st.Lockss.Peer.held;
  let au = st.Lockss.Peer.au in
  let sent0 = Net.sent_count ctx.Lockss.Peer.net in
  let invite () =
    Lockss.Voter.on_poll ctx peer ~src:1 ~identity:1 ~au ~poll_id:99
      ~intro:(Effort.Proof.forged ~claimed_cost:1.)
  in
  invite ();
  Alcotest.(check int) "one session opened" 1
    (Hashtbl.length peer.Lockss.Peer.voter_sessions);
  Alcotest.(check int) "ack sent" (sent0 + 1) (Net.sent_count ctx.Lockss.Peer.net);
  invite ();
  Alcotest.(check int) "duplicate opens no second session" 1
    (Hashtbl.length peer.Lockss.Peer.voter_sessions);
  Alcotest.(check int) "lost-ack recovery: ack repeated" (sent0 + 2)
    (Net.sent_count ctx.Lockss.Peer.net);
  match Hashtbl.find_opt peer.Lockss.Peer.voter_sessions (1, au, 99) with
  | Some { Lockss.Peer.vs_state = Lockss.Peer.Awaiting_proof _; _ } -> ()
  | _ -> Alcotest.fail "session should still be awaiting its proof"

let test_stale_duplicate_is_dropped () =
  let population = idem_population () in
  let ctx = Lockss.Population.ctx population in
  let peer = ctx.Lockss.Peer.peers.(3) in
  let st = peer.Lockss.Peer.aus.(0) in
  let au = st.Lockss.Peer.au in
  (* Pretend the session for poll 77 already ran to completion. *)
  Lockss.Peer.note_session_closed peer (1, au, 77);
  let sent0 = Net.sent_count ctx.Lockss.Peer.net in
  Lockss.Voter.on_poll ctx peer ~src:1 ~identity:1 ~au ~poll_id:77
    ~intro:(Effort.Proof.forged ~claimed_cost:1.);
  Alcotest.(check int) "no ghost session reopened" 0
    (Hashtbl.length peer.Lockss.Peer.voter_sessions);
  Alcotest.(check int) "no ack for a stale duplicate" sent0
    (Net.sent_count ctx.Lockss.Peer.net)

(* -- Engine event budget ------------------------------------------------- *)

let test_engine_budget_stops_livelock () =
  let engine = Engine.create () in
  let rec boom () = ignore (Engine.schedule_in engine ~after:0.001 boom) in
  boom ();
  (match Engine.run ~max_events:500 engine with
  | () -> Alcotest.fail "run should have raised Event_limit_exceeded"
  | exception Engine.Event_limit_exceeded msg ->
    Alcotest.(check bool) "message names the budget" true (contains msg "500"));
  let engine2 = Engine.create () in
  let rec boom2 () = ignore (Engine.schedule_in engine2 ~after:0.001 boom2) in
  boom2 ();
  match Engine.run_until ~max_events:500 engine2 ~limit:10.0 with
  | () -> Alcotest.fail "run_until should have raised Event_limit_exceeded"
  | exception Engine.Event_limit_exceeded _ -> ()

let test_engine_budget_spares_finite_runs () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Engine.schedule_in engine ~after:1.0 (fun () ->
             incr count;
             chain (n - 1)))
  in
  chain 100;
  Engine.run ~max_events:1000 engine;
  Alcotest.(check int) "finite workload completes under budget" 100 !count

(* -- Determinism --------------------------------------------------------- *)

let traced_run ~fault_seed () =
  let mix =
    {
      Chaos.default_mix with
      Chaos.loss = 0.1;
      jitter = 0.5;
      duplication = 0.05;
      churn_per_day = 0.05;
      fault_seed;
    }
  in
  let cfg =
    { (Scenario.config micro) with Lockss.Config.faults = Some (Chaos.faults_config mix) }
  in
  let population = Lockss.Population.create ~seed:5 cfg in
  let buf = Buffer.create 65536 in
  Lockss.Trace.subscribe (Lockss.Population.trace population) (fun ~time event ->
      Buffer.add_string buf (Obs.Json.to_string (Lockss.Trace.to_json ~time event));
      Buffer.add_char buf '\n');
  Lockss.Population.run population ~until:(Duration.of_years 0.5);
  (Buffer.contents buf, Lockss.Population.summary population)

let test_same_seed_identical_fault_trace () =
  let trace1, summary1 = traced_run ~fault_seed:7 () in
  let trace2, summary2 = traced_run ~fault_seed:7 () in
  Alcotest.(check bool) "trace is non-trivial" true (String.length trace1 > 1000);
  Alcotest.(check bool) "faults appear in the trace" true
    (contains trace1 "fault_dropped" && contains trace1 "fault_delayed");
  Alcotest.(check bool) "byte-identical JSONL traces" true (String.equal trace1 trace2);
  Alcotest.(check int) "identical poll outcomes" summary1.Lockss.Metrics.polls_succeeded
    summary2.Lockss.Metrics.polls_succeeded;
  Alcotest.(check (float 0.)) "identical damage"
    summary1.Lockss.Metrics.access_failure_probability
    summary2.Lockss.Metrics.access_failure_probability

let test_fault_seed_changes_trace () =
  let trace1, _ = traced_run ~fault_seed:7 () in
  let trace2, _ = traced_run ~fault_seed:8 () in
  Alcotest.(check bool) "different fault seeds diverge" false (String.equal trace1 trace2)

(* -- The chaos harness --------------------------------------------------- *)

let test_chaos_harness_all_green () =
  let scale = { micro with Scenario.years = 1.; seed = 3 } in
  let report = Chaos.run ~scale Chaos.default_mix in
  Alcotest.(check int) "seven invariants evaluated" 7 (List.length report.Chaos.checks);
  List.iter
    (fun (c : Chaos.check) ->
      Alcotest.(check bool) (c.Chaos.name ^ " — " ^ c.Chaos.detail) true c.Chaos.ok)
    report.Chaos.checks;
  Alcotest.(check bool) "harness agrees it is green" true (Chaos.all_green report);
  Alcotest.(check bool) "no-stuck-poll invariant present" true
    (List.exists (fun (c : Chaos.check) -> c.Chaos.name = "no stuck poll") report.Chaos.checks);
  Alcotest.(check bool) "faults were actually injected" true
    (report.Chaos.injected_drops > 0
    && report.Chaos.injected_dups > 0
    && report.Chaos.injected_delays > 0);
  Alcotest.(check bool) "content faults were actually injected" true
    (report.Chaos.injected_corruptions > 0
    && report.Chaos.injected_replays > 0
    && report.Chaos.injected_stales > 0
    && report.Chaos.injected_strays > 0);
  Alcotest.(check bool) "leak audit invariant present" true
    (List.exists (fun (c : Chaos.check) -> c.Chaos.name = "leak audit") report.Chaos.checks)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "chaos"
    [
      ( "injection",
        [
          quick "loss drops everything at p=1" test_loss_drops_everything;
          quick "duplication doubles delivery at p=1" test_duplication_doubles_delivery;
          quick "jitter bounded by config" test_jitter_bounds_delay;
          quick "conservation under mixed faults" test_conservation_under_mixed_faults;
        ] );
      ( "churn",
        [
          quick "schedule, hooks and accounting" test_churn_schedule_and_hooks;
          quick "crash aborts in-flight poll" test_crash_aborts_inflight_poll;
          quick "restart ignores dormant peers" test_restart_ignores_dormant_peers;
        ] );
      ( "idempotence",
        [
          quick "duplicate poll re-acked once" test_duplicate_poll_is_reacked;
          quick "stale duplicate dropped" test_stale_duplicate_is_dropped;
        ] );
      ( "engine budget",
        [
          quick "livelock raises" test_engine_budget_stops_livelock;
          quick "finite run unaffected" test_engine_budget_spares_finite_runs;
        ] );
      ( "determinism",
        [
          quick "same seed, byte-identical trace" test_same_seed_identical_fault_trace;
          quick "different fault seed diverges" test_fault_seed_changes_trace;
        ] );
      ( "config", [ quick "validate rejects bad mixes" test_validate_rejects_bad_configs ] );
      ( "harness", [ quick "acceptance mix all green" test_chaos_harness_all_green ] );
    ]
