(* Tests for Experiments.Runner: the work-stealing parallel map must be
   a drop-in replacement for serial iteration — same results, same
   order, same bytes in every rendered table — and actually faster when
   more than one core is available. *)

module Duration = Repro_prelude.Duration
open Experiments

(* A very small, fast scale with enough runs/grid points to exercise the
   cursor with more jobs than workers. *)
let micro =
  {
    Scenario.peers = 12;
    aus = 1;
    quorum = 3;
    max_disagree = 1;
    outer_circle = 3;
    reference_target = 6;
    years = 0.5;
    runs = 2;
    seed = 11;
  }

(* Run [f] with a forced worker count, restoring the auto heuristic
   afterwards even on failure. *)
let with_jobs n f =
  Runner.set_jobs n;
  Fun.protect ~finally:(fun () -> Runner.set_jobs 0) f

(* -- Map semantics ----------------------------------------------------- *)

let test_map_preserves_order () =
  let items = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "squares in order (%d jobs)" jobs)
        (List.map (fun x -> x * x) items)
        (Runner.map ~jobs (fun x -> x * x) items))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Runner.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Runner.map ~jobs:4 succ [ 1 ])

exception Boom of int

let test_map_reraises_lowest_index () =
  List.iter
    (fun jobs ->
      match
        Runner.map ~jobs (fun x -> if x >= 3 then raise (Boom x) else x)
          [ 0; 1; 2; 3; 4; 5 ]
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
        Alcotest.(check int)
          (Printf.sprintf "lowest failing index wins (%d jobs)" jobs)
          3 x)
    [ 1; 4 ]

let test_map_nested_runs_serially () =
  (* A map inside a worker must not spawn further domains — it runs
     inline, so the nested call still returns correct, ordered results. *)
  let result =
    Runner.map ~jobs:4
      (fun outer -> Runner.map ~jobs:4 (fun inner -> (outer * 10) + inner) [ 0; 1; 2 ])
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list (list int)))
    "nested results intact"
    [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ] ]
    result

let test_both_pairs_results () =
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let a, b = Runner.both (fun () -> 6 * 7) (fun () -> "ok") in
          Alcotest.(check int) "left" 42 a;
          Alcotest.(check string) "right" "ok" b))
    [ 1; 2 ];
  match Runner.both (fun () -> raise (Boom 1)) (fun () -> ()) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ()

let test_set_jobs_validation () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Runner.set_jobs: negative job count") (fun () ->
      Runner.set_jobs (-1));
  with_jobs 3 (fun () -> Alcotest.(check int) "override visible" 3 (Runner.jobs ()));
  Alcotest.(check bool) "heuristic restored" true (Runner.jobs () >= 1)

(* -- Determinism: parallel output is byte-identical to serial --------- *)

let render_stoppage_tables () =
  let points =
    Stoppage.sweep ~scale:micro
      ~durations:[ Duration.of_days 30.; Duration.of_days 90. ]
      ~coverages:[ 0.3; 1.0 ] ()
  in
  String.concat "\n"
    (List.map Repro_prelude.Table.render
       [
         Stoppage.fig3_table points;
         Stoppage.fig4_table points;
         Stoppage.fig5_table points;
       ])

let test_stoppage_sweep_byte_identical () =
  let serial = with_jobs 1 render_stoppage_tables in
  List.iter
    (fun jobs ->
      let parallel = with_jobs jobs render_stoppage_tables in
      Alcotest.(check string)
        (Printf.sprintf "fig3-5 tables identical (%d jobs)" jobs)
        serial parallel)
    [ 2; 4 ]

let test_chaos_paired_run_byte_identical () =
  let report () =
    Format.asprintf "%a" Chaos.pp_report (Chaos.run ~scale:micro Chaos.default_mix)
  in
  let serial = with_jobs 1 report in
  let parallel = with_jobs 2 report in
  Alcotest.(check string) "chaos report identical" serial parallel

let test_run_all_and_spread_identical () =
  let cfg = Scenario.config micro in
  let scale = { micro with Scenario.runs = 3 } in
  let all () = Scenario.run_all ~cfg scale Scenario.No_attack in
  let serial = with_jobs 1 all in
  let parallel = with_jobs 3 all in
  Alcotest.(check int) "same run count" (List.length serial) (List.length parallel);
  List.iteri
    (fun i (s, p) ->
      Alcotest.(check int)
        (Printf.sprintf "run %d polls" i)
        s.Lockss.Metrics.polls_succeeded p.Lockss.Metrics.polls_succeeded;
      Alcotest.(check (float 0.))
        (Printf.sprintf "run %d effort" i)
        s.Lockss.Metrics.loyal_effort p.Lockss.Metrics.loyal_effort;
      Alcotest.(check (float 0.))
        (Printf.sprintf "run %d afp" i)
        s.Lockss.Metrics.access_failure_probability
        p.Lockss.Metrics.access_failure_probability)
    (List.combine serial parallel);
  let spread () = Scenario.run_spread ~cfg scale Scenario.No_attack in
  let s = with_jobs 1 spread in
  let p = with_jobs 3 spread in
  Alcotest.(check (float 0.)) "spread min" s.Scenario.afp_min p.Scenario.afp_min;
  Alcotest.(check (float 0.)) "spread max" s.Scenario.afp_max p.Scenario.afp_max;
  Alcotest.(check (float 0.)) "spread mean effort" s.Scenario.mean.Lockss.Metrics.loyal_effort
    p.Scenario.mean.Lockss.Metrics.loyal_effort

(* -- Pool behaviour: helpers persist across maps ----------------------- *)

let test_pool_reuse_byte_identical () =
  (* Helpers persist across maps; a sweep rendered through a freshly
     warmed pool, and again through the same (now well-used) pool with
     other-width maps in between, must produce the same bytes as a
     serial run every time. *)
  let reference = with_jobs 1 render_stoppage_tables in
  for round = 1 to 3 do
    (* Vary the interleaved map width so chunk striping differs between
       rounds — the rendered bytes must not. *)
    ignore (Runner.map ~jobs:(1 + round) (fun x -> x * x) (List.init (16 * round) Fun.id));
    let rendered = with_jobs 4 render_stoppage_tables in
    Alcotest.(check string)
      (Printf.sprintf "round %d through warm pool" round)
      reference rendered
  done

let test_chunked_claiming_determinism () =
  (* The chunk size is [max 1 (n / (jobs * 4))]; every (n, jobs)
     combination exercises a different striping, including chunk = 1
     (n <= jobs*4), n not divisible by the chunk, and single-chunk
     tails. All must agree with the serial map. *)
  List.iter
    (fun n ->
      let items = List.init n (fun i -> i) in
      let expected = List.map (fun x -> (x * 7) mod 13) items in
      List.iter
        (fun jobs ->
          Alcotest.(check (list int))
            (Printf.sprintf "n=%d jobs=%d" n jobs)
            expected
            (Runner.map ~jobs (fun x -> (x * 7) mod 13) items))
        [ 1; 2; 3; 5; 8 ])
    [ 1; 2; 3; 7; 16; 33; 100 ]

let test_nested_map_through_warm_pool () =
  (* Nested maps must stay serial on a pool that has already run
     batches, and [both] must compose with maps before and after — the
     parked helpers may not claim a nested batch recursively. *)
  ignore (Runner.map ~jobs:3 succ (List.init 10 Fun.id));
  let nested =
    Runner.map ~jobs:3
      (fun outer ->
        let a, b =
          Runner.both
            (fun () -> Runner.map ~jobs:3 (fun i -> (outer * 100) + i) [ 0; 1 ])
            (fun () -> outer * 1000)
        in
        (a, b))
      [ 1; 2 ]
  in
  Alcotest.(check (list (pair (list int) int)))
    "nested both+map through warm pool"
    [ ([ 100; 101 ], 1000); ([ 200; 201 ], 2000) ]
    nested;
  ignore (Runner.map ~jobs:2 succ (List.init 5 Fun.id))

let test_profiler_slots_stable () =
  (* Slots are persistent pool positions: slot 0 is the caller, helpers
     keep their id across batches, and [both] accounts through the same
     slot space as [map] instead of a colliding private 0/1. *)
  let prof = Obs.Profiler.create () in
  Runner.set_profiler (Some prof);
  Fun.protect
    ~finally:(fun () -> Runner.set_profiler None)
    (fun () ->
      with_jobs 2 (fun () ->
          ignore (Runner.map (fun x -> x * 2) (List.init 8 Fun.id));
          ignore (Runner.both (fun () -> 1) (fun () -> 2))));
  let stats = Obs.Profiler.domain_stats prof in
  Alcotest.(check bool) "some slots recorded" true (stats <> []);
  let total_tasks =
    List.fold_left (fun acc d -> acc + d.Obs.Profiler.tasks) 0 stats
  in
  Alcotest.(check int) "8 map jobs + 2 both thunks" 10 total_tasks;
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d busy_s sane" d.Obs.Profiler.domain)
        true
        (d.Obs.Profiler.busy_s >= 0. && d.Obs.Profiler.cpu_s >= 0.);
      Alcotest.(check bool)
        (Printf.sprintf "slot %d id sane" d.Obs.Profiler.domain)
        true (d.Obs.Profiler.domain >= 0))
    stats

(* -- Wall-clock: parallel beats serial when cores allow ---------------- *)

let test_parallel_faster_on_multicore () =
  if Domain.recommended_domain_count () < 2 then
    (* One visible core (CI containers): the speedup claim is vacuous
       here; determinism is covered above either way. *)
    ()
  else begin
    let work () =
      ignore
        (Runner.map
           (fun seed ->
             let cfg = Scenario.config micro in
             Scenario.run_one ~cfg ~seed ~years:1. Scenario.No_attack)
           (List.init 4 (fun i -> micro.Scenario.seed + i)))
    in
    let wall f =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let serial = wall (fun () -> with_jobs 1 work) in
    let parallel = wall (fun () -> with_jobs 2 work) in
    Alcotest.(check bool)
      (Printf.sprintf "parallel (%.2fs) < serial (%.2fs)" parallel serial)
      true (parallel < serial)
  end

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "runner"
    [
      ( "map",
        [
          quick "order preserved" test_map_preserves_order;
          quick "empty and singleton" test_map_empty_and_singleton;
          quick "exception propagation" test_map_reraises_lowest_index;
          quick "nested maps serial" test_map_nested_runs_serially;
          quick "both" test_both_pairs_results;
          quick "set_jobs validation" test_set_jobs_validation;
        ] );
      ( "pool",
        [
          quick "chunked claiming deterministic" test_chunked_claiming_determinism;
          quick "nested map through warm pool" test_nested_map_through_warm_pool;
          quick "profiler slots stable" test_profiler_slots_stable;
          slow "pool reuse byte-identical" test_pool_reuse_byte_identical;
        ] );
      ( "determinism",
        [
          slow "stoppage sweep byte-identical" test_stoppage_sweep_byte_identical;
          slow "chaos paired run byte-identical" test_chaos_paired_run_byte_identical;
          slow "run_all and run_spread identical" test_run_all_and_spread_identical;
        ] );
      ("wall-clock", [ slow "parallel faster on multicore" test_parallel_faster_on_multicore ]);
    ]
