(* Tests for Experiments.Runner: the work-stealing parallel map must be
   a drop-in replacement for serial iteration — same results, same
   order, same bytes in every rendered table — and actually faster when
   more than one core is available. *)

module Duration = Repro_prelude.Duration
open Experiments

(* A very small, fast scale with enough runs/grid points to exercise the
   cursor with more jobs than workers. *)
let micro =
  {
    Scenario.peers = 12;
    aus = 1;
    quorum = 3;
    max_disagree = 1;
    outer_circle = 3;
    reference_target = 6;
    years = 0.5;
    runs = 2;
    seed = 11;
  }

(* Run [f] with a forced worker count, restoring the auto heuristic
   afterwards even on failure. *)
let with_jobs n f =
  Runner.set_jobs n;
  Fun.protect ~finally:(fun () -> Runner.set_jobs 0) f

(* -- Map semantics ----------------------------------------------------- *)

let test_map_preserves_order () =
  let items = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "squares in order (%d jobs)" jobs)
        (List.map (fun x -> x * x) items)
        (Runner.map ~jobs (fun x -> x * x) items))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Runner.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Runner.map ~jobs:4 succ [ 1 ])

exception Boom of int

let test_map_reraises_lowest_index () =
  List.iter
    (fun jobs ->
      match
        Runner.map ~jobs (fun x -> if x >= 3 then raise (Boom x) else x)
          [ 0; 1; 2; 3; 4; 5 ]
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
        Alcotest.(check int)
          (Printf.sprintf "lowest failing index wins (%d jobs)" jobs)
          3 x)
    [ 1; 4 ]

let test_map_nested_runs_serially () =
  (* A map inside a worker must not spawn further domains — it runs
     inline, so the nested call still returns correct, ordered results. *)
  let result =
    Runner.map ~jobs:4
      (fun outer -> Runner.map ~jobs:4 (fun inner -> (outer * 10) + inner) [ 0; 1; 2 ])
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list (list int)))
    "nested results intact"
    [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ] ]
    result

let test_both_pairs_results () =
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let a, b = Runner.both (fun () -> 6 * 7) (fun () -> "ok") in
          Alcotest.(check int) "left" 42 a;
          Alcotest.(check string) "right" "ok" b))
    [ 1; 2 ];
  match Runner.both (fun () -> raise (Boom 1)) (fun () -> ()) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ()

let test_set_jobs_validation () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Runner.set_jobs: negative job count") (fun () ->
      Runner.set_jobs (-1));
  with_jobs 3 (fun () -> Alcotest.(check int) "override visible" 3 (Runner.jobs ()));
  Alcotest.(check bool) "heuristic restored" true (Runner.jobs () >= 1)

(* -- Determinism: parallel output is byte-identical to serial --------- *)

let render_stoppage_tables () =
  let points =
    Stoppage.sweep ~scale:micro
      ~durations:[ Duration.of_days 30.; Duration.of_days 90. ]
      ~coverages:[ 0.3; 1.0 ] ()
  in
  String.concat "\n"
    (List.map Repro_prelude.Table.render
       [
         Stoppage.fig3_table points;
         Stoppage.fig4_table points;
         Stoppage.fig5_table points;
       ])

let test_stoppage_sweep_byte_identical () =
  let serial = with_jobs 1 render_stoppage_tables in
  List.iter
    (fun jobs ->
      let parallel = with_jobs jobs render_stoppage_tables in
      Alcotest.(check string)
        (Printf.sprintf "fig3-5 tables identical (%d jobs)" jobs)
        serial parallel)
    [ 2; 4 ]

let test_chaos_paired_run_byte_identical () =
  let report () =
    Format.asprintf "%a" Chaos.pp_report (Chaos.run ~scale:micro Chaos.default_mix)
  in
  let serial = with_jobs 1 report in
  let parallel = with_jobs 2 report in
  Alcotest.(check string) "chaos report identical" serial parallel

let test_run_all_and_spread_identical () =
  let cfg = Scenario.config micro in
  let scale = { micro with Scenario.runs = 3 } in
  let all () = Scenario.run_all ~cfg scale Scenario.No_attack in
  let serial = with_jobs 1 all in
  let parallel = with_jobs 3 all in
  Alcotest.(check int) "same run count" (List.length serial) (List.length parallel);
  List.iteri
    (fun i (s, p) ->
      Alcotest.(check int)
        (Printf.sprintf "run %d polls" i)
        s.Lockss.Metrics.polls_succeeded p.Lockss.Metrics.polls_succeeded;
      Alcotest.(check (float 0.))
        (Printf.sprintf "run %d effort" i)
        s.Lockss.Metrics.loyal_effort p.Lockss.Metrics.loyal_effort;
      Alcotest.(check (float 0.))
        (Printf.sprintf "run %d afp" i)
        s.Lockss.Metrics.access_failure_probability
        p.Lockss.Metrics.access_failure_probability)
    (List.combine serial parallel);
  let spread () = Scenario.run_spread ~cfg scale Scenario.No_attack in
  let s = with_jobs 1 spread in
  let p = with_jobs 3 spread in
  Alcotest.(check (float 0.)) "spread min" s.Scenario.afp_min p.Scenario.afp_min;
  Alcotest.(check (float 0.)) "spread max" s.Scenario.afp_max p.Scenario.afp_max;
  Alcotest.(check (float 0.)) "spread mean effort" s.Scenario.mean.Lockss.Metrics.loyal_effort
    p.Scenario.mean.Lockss.Metrics.loyal_effort

(* -- Wall-clock: parallel beats serial when cores allow ---------------- *)

let test_parallel_faster_on_multicore () =
  if Domain.recommended_domain_count () < 2 then
    (* One visible core (CI containers): the speedup claim is vacuous
       here; determinism is covered above either way. *)
    ()
  else begin
    let work () =
      ignore
        (Runner.map
           (fun seed ->
             let cfg = Scenario.config micro in
             Scenario.run_one ~cfg ~seed ~years:1. Scenario.No_attack)
           (List.init 4 (fun i -> micro.Scenario.seed + i)))
    in
    let wall f =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let serial = wall (fun () -> with_jobs 1 work) in
    let parallel = wall (fun () -> with_jobs 2 work) in
    Alcotest.(check bool)
      (Printf.sprintf "parallel (%.2fs) < serial (%.2fs)" parallel serial)
      true (parallel < serial)
  end

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "runner"
    [
      ( "map",
        [
          quick "order preserved" test_map_preserves_order;
          quick "empty and singleton" test_map_empty_and_singleton;
          quick "exception propagation" test_map_reraises_lowest_index;
          quick "nested maps serial" test_map_nested_runs_serially;
          quick "both" test_both_pairs_results;
          quick "set_jobs validation" test_set_jobs_validation;
        ] );
      ( "determinism",
        [
          slow "stoppage sweep byte-identical" test_stoppage_sweep_byte_identical;
          slow "chaos paired run byte-identical" test_chaos_paired_run_byte_identical;
          slow "run_all and run_spread identical" test_run_all_and_spread_identical;
        ] );
      ("wall-clock", [ slow "parallel faster on multicore" test_parallel_faster_on_multicore ]);
    ]
