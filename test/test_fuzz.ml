(* Property-based fuzzing of whole simulations: random (but valid)
   configurations, attacks and seeds must run to completion without
   exceptions and uphold global invariants. *)

module Duration = Repro_prelude.Duration
open Lockss

let config_gen =
  let open QCheck2.Gen in
  let* peers = int_range 10 20 in
  let* aus = int_range 1 3 in
  let* quorum = int_range 2 4 in
  let* max_disagree = int_range 0 ((quorum - 1) / 2) in
  let* interval_days = int_range 20 120 in
  let* capacity = float_range 0.01 2.0 in
  let* mttf = float_range 0.2 5.0 in
  let* drop_unknown = float_range 0.5 0.95 in
  let* drop_debt = float_range 0.2 drop_unknown in
  let* desynchronized = bool in
  let* introductions = bool in
  let* adaptive = bool in
  let* coverage = float_range 0.75 1.0 in
  let inner = 2 * quorum in
  if inner > peers - 1 then return None
  else if
    int_of_float (Float.round (coverage *. float_of_int peers)) <= inner
  then return None
  else
    return
      (Some
         {
           Config.default with
           Config.loyal_peers = peers;
           aus;
           quorum;
           max_disagree;
           inner_circle_factor = 2;
           outer_circle_size = quorum;
           reference_list_target = min (3 * quorum) (peers - 1);
           friends_count = min 3 (peers - 1);
           inter_poll_interval = Duration.of_days (float_of_int interval_days);
           capacity;
           disk_mttf_years = mttf;
           drop_unknown;
           drop_debt;
           desynchronized;
           introductions_enabled = introductions;
           adaptive_acceptance = adaptive;
           au_coverage = coverage;
         })

let attack_gen =
  let open QCheck2.Gen in
  let open Experiments.Scenario in
  oneof
    [
      return No_attack;
      (let* coverage = float_range 0.1 1.0 in
       let* days = int_range 5 120 in
       return
         (Pipe_stoppage
            {
              coverage;
              duration = Duration.of_days (float_of_int days);
              recuperation = Duration.of_days 30.;
            }));
      (let* coverage = float_range 0.1 1.0 in
       let* rate = float_range 1. 10. in
       return
         (Admission_flood
            {
              coverage;
              duration = Duration.of_days 60.;
              recuperation = Duration.of_days 30.;
              rate;
            }));
      (let* strategy =
         oneofl
           [ Adversary.Brute_force.Intro; Adversary.Brute_force.Remaining; Adversary.Brute_force.Full ]
       in
       return (Brute_force { strategy; rate = 3.; identities = 10 }));
      return (Vote_flood { rate = 5. });
    ]

let invariants (s : Metrics.summary) =
  let afp = s.Metrics.access_failure_probability in
  afp >= 0. && afp <= 1.
  && s.Metrics.polls_succeeded >= 0
  && s.Metrics.loyal_effort >= 0.
  && s.Metrics.adversary_effort >= 0.
  && s.Metrics.repairs >= 0
  && (s.Metrics.mean_success_gap > 0. || s.Metrics.mean_success_gap = infinity)
  && s.Metrics.invitations_considered >= 0
  && s.Metrics.invitations_dropped >= 0

let prop_random_simulations_run =
  QCheck2.Test.make ~name:"random configs+attacks run and keep invariants" ~count:40
    QCheck2.Gen.(triple config_gen attack_gen (int_range 1 10_000))
    (fun (cfg, attack, seed) ->
      match cfg with
      | None -> true (* generator produced an inconsistent draw; skip *)
      | Some cfg ->
        Config.validate cfg;
        let summary =
          Experiments.Scenario.run_one ~cfg ~seed ~years:0.5 attack
        in
        invariants summary)

let prop_runs_are_reproducible =
  QCheck2.Test.make ~name:"equal seeds reproduce bit-identical summaries" ~count:10
    QCheck2.Gen.(pair config_gen (int_range 1 1000))
    (fun (cfg, seed) ->
      match cfg with
      | None -> true
      | Some cfg ->
        let a = Experiments.Scenario.run_one ~cfg ~seed ~years:0.25 Experiments.Scenario.No_attack in
        let b = Experiments.Scenario.run_one ~cfg ~seed ~years:0.25 Experiments.Scenario.No_attack in
        a.Metrics.polls_succeeded = b.Metrics.polls_succeeded
        && a.Metrics.loyal_effort = b.Metrics.loyal_effort
        && a.Metrics.access_failure_probability = b.Metrics.access_failure_probability)

let prop_sessions_end_in_legal_states =
  QCheck2.Test.make ~name:"voter sessions end in legal states" ~count:15
    QCheck2.Gen.(pair config_gen (int_range 1 1000))
    (fun (cfg, seed) ->
      match cfg with
      | None -> true
      | Some cfg ->
        let population = Population.create ~seed cfg in
        Population.run population ~until:(Duration.of_months 6.);
        let ctx = Population.ctx population in
        Array.for_all
          (fun (peer : Peer.t) ->
            Hashtbl.fold
              (fun _key (session : Peer.voter_session) acc ->
                acc
                &&
                match session.Peer.vs_state with
                | Peer.Awaiting_proof _ | Peer.Computing | Peer.Voted_waiting_receipt _ ->
                  true
                | Peer.Closed -> false (* closed sessions must be removed *))
              peer.Peer.voter_sessions true)
          ctx.Peer.peers)

(* -- Byzantine message-mutation battery ------------------------------------ *)

(* The acceptance property for the hardened handlers: any well-formed
   message, corrupted in one or two fields, delivered straight into a
   live peer's dispatch must either be rejected with a taxonomized
   [message_rejected] event or absorbed without raising, without
   tripping the runtime invariant auditor, and without leaking a timer
   or session. *)

let byz_cfg =
  {
    Config.default with
    Config.loyal_peers = 12;
    aus = 2;
    quorum = 3;
    max_disagree = 0;
    inner_circle_factor = 2;
    outer_circle_size = 3;
    reference_list_target = 8;
    friends_count = 3;
    inter_poll_interval = Duration.of_days 30.;
    drop_unknown = 0.5;
    drop_debt = 0.25;
  }

let message_gen =
  let open QCheck2.Gen in
  let proof_gen =
    oneofl
      [
        Effort.Proof.forged ~claimed_cost:1.;
        Effort.Proof.forged ~claimed_cost:1e6;
      ]
  in
  let i64_gen = map Int64.of_int (int_range 0 1_000_000) in
  let vote_gen =
    let* voter = int_range 0 40 in
    let* nonce = i64_gen in
    let* proof = proof_gen in
    let* snapshot =
      list_size (int_range 0 3) (pair (int_range (-1) 12) (int_range 0 3))
    in
    (* Nominations stay within the loyal range: in a real deployment every
       nomination names some reachable node; unknown claimed identities are
       exercised through the envelope instead. *)
    let* nominations = list_size (int_range 0 2) (int_range 0 11) in
    let* bogus = bool in
    return { Vote.voter; nonce; proof; snapshot; nominations; bogus }
  in
  let* identity = int_range 0 40 in
  let* au = int_range (-2) 4 in
  let* poll_id = int_range 0 30 in
  let* payload =
    oneof
      [
        (let* intro = proof_gen in
         return (Message.Poll { poll_id; intro }));
        (let* accepted = bool in
         return (Message.Poll_ack { poll_id; accepted }));
        (let* remaining = proof_gen in
         let* nonce = i64_gen in
         return (Message.Poll_proof { poll_id; remaining; nonce }));
        (let* vote = vote_gen in
         return (Message.Vote_msg { poll_id; vote }));
        (let* block = int_range (-2) 50 in
         return (Message.Repair_request { poll_id; block }));
        (let* block = int_range (-2) 50 in
         let* version = int_range (-1) 9 in
         return (Message.Repair { poll_id; block; version }));
        (let* r1 = i64_gen in
         let* r2 = i64_gen in
         return (Message.Evaluation_receipt { poll_id; receipt = (r1, r2) }));
        (let* claimed_bytes = int_range 0 100_000 in
         return (Message.Garbage { claimed_bytes }));
      ]
  in
  return { Message.identity; au; payload }

(* Salts with live selector (top byte) and delta (bottom byte) bits, so
   every mutation slot of every payload gets drawn. *)
let salt_gen =
  let open QCheck2.Gen in
  let* hi = int_range 0 0xFF in
  let* lo = int_range 0 0xFFFF in
  return Int64.(logor (shift_left (of_int hi) 56) (of_int lo))

let sessions_legal (ctx : Peer.ctx) =
  Array.for_all
    (fun (peer : Peer.t) ->
      Hashtbl.fold
        (fun _key (session : Peer.voter_session) acc ->
          acc
          &&
          match session.Peer.vs_state with
          | Peer.Awaiting_proof _ | Peer.Computing | Peer.Voted_waiting_receipt _ ->
            true
          | Peer.Closed -> false)
        peer.Peer.voter_sessions true)
    ctx.Peer.peers

(* Accumulated across all cases so a final check can assert the battery
   actually exercised the reject taxonomy. *)
let battery_rejected = ref 0

let prop_mutated_messages_rejected_or_absorbed =
  QCheck2.Test.make ~name:"mutated messages are rejected or absorbed safely" ~count:40
    QCheck2.Gen.(
      triple
        (list_size (int_range 5 25) (pair message_gen salt_gen))
        (int_range 1 10_000) bool)
    (fun (msgs, seed, double) ->
      let population = Population.create ~seed byz_cfg in
      Trace.subscribe ~interest:Trace.Debug (Population.trace population)
        (fun ~time:_ event ->
          match event with
          | Trace.Message_rejected _ -> incr battery_rejected
          | _ -> ());
      let auditor = Experiments.Scenario.make_auditor ~cfg:byz_cfg () in
      Check.Auditor.attach auditor (Population.trace population);
      (* Warm the world so live polls and sessions exist to collide with. *)
      Population.run population ~until:(Duration.of_days 45.);
      List.iter
        (fun (msg, salt) ->
          let m = Message.mutate msg ~salt in
          let m = if double then Message.mutate m ~salt:(Int64.add salt 977L) else m in
          Population.default_handler population 0 ~src:1 m)
        msgs;
      (* Long enough for every timer armed by an absorbed mutant (proof,
         receipt) to fire and clean up. *)
      Population.run population ~until:(Duration.of_days 90.);
      Check.Auditor.finish ~metrics:(Population.summary population) auditor;
      let ctx = Population.ctx population in
      let leaks =
        Check.Leak.audit ~engine:(Population.engine population) ~ctx
      in
      Check.Auditor.violations auditor = [] && leaks = [] && sessions_legal ctx)

let mutation_battery_exercised_taxonomy () =
  Alcotest.(check bool) "battery produced taxonomized rejections" true
    (!battery_rejected > 0)

(* -- Obs.Json round-trip -------------------------------------------------- *)

let json_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) (int_range (-1_000_000_000) 1_000_000_000);
        (* Finite floats only: non-finite values deliberately serialise
           as null and so cannot round-trip. *)
        map (fun f -> Obs.Json.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Obs.Json.String s) (string_size ~gen:printable (int_range 0 20));
      ]
  in
  let rec build depth =
    if depth = 0 then scalar
    else
      oneof
        [
          scalar;
          map (fun l -> Obs.Json.List l) (list_size (int_range 0 4) (build (depth - 1)));
          map
            (fun kvs -> Obs.Json.Assoc kvs)
            (list_size (int_range 0 4)
               (pair (string_size ~gen:printable (int_range 0 8)) (build (depth - 1))));
        ]
  in
  build 3

(* The writer prints integral floats without a fraction (4320.0 becomes
   "4320", which parses as Int), so numbers compare through to_float. *)
let rec json_equal a b =
  match (a, b) with
  | Obs.Json.Null, Obs.Json.Null -> true
  | Obs.Json.Bool x, Obs.Json.Bool y -> x = y
  | (Obs.Json.Int _ | Obs.Json.Float _), (Obs.Json.Int _ | Obs.Json.Float _) -> (
    match (Obs.Json.to_float a, Obs.Json.to_float b) with
    | Some x, Some y -> Float.equal x y
    | _ -> false)
  | Obs.Json.String x, Obs.Json.String y -> String.equal x y
  | Obs.Json.List xs, Obs.Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Obs.Json.Assoc xs, Obs.Json.Assoc ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
         xs ys
  | _ -> false

let prop_json_round_trips =
  QCheck2.Test.make ~name:"Obs.Json values round-trip through their text form"
    ~count:500 json_gen (fun v ->
      match Obs.Json.of_string (Obs.Json.to_string v) with
      | Ok v' -> json_equal v v'
      | Error _ -> false)

let () =
  Alcotest.run "fuzz"
    [
      ( "whole-simulation properties",
        [
          QCheck_alcotest.to_alcotest ~long:true prop_random_simulations_run;
          QCheck_alcotest.to_alcotest prop_runs_are_reproducible;
          QCheck_alcotest.to_alcotest prop_sessions_end_in_legal_states;
        ] );
      ( "byzantine message mutation",
        [
          QCheck_alcotest.to_alcotest prop_mutated_messages_rejected_or_absorbed;
          Alcotest.test_case "taxonomy exercised" `Quick
            mutation_battery_exercised_taxonomy;
        ] );
      ("json properties", [ QCheck_alcotest.to_alcotest prop_json_round_trips ]);
    ]
