(* Seeded equivalence battery for the population-representation layer.

   Every case below renders a seeded scenario to a byte-exact string
   (summaries, chaos/soak reports, debug-trace digests) and compares its
   MD5 against a pinned golden. The goldens were generated from the
   list-based population representation, so any compact-representation
   change that perturbs an RNG draw sequence, a member ordering, or a
   trace line fails here byte-for-byte — this is the lock on the
   "summaries and traces identical at paper scale" contract.

   Regenerate (only when behaviour is MEANT to change) with:

     GOLDEN_REGEN=$PWD/test/goldens/scale_equivalence.golden \
       dune exec test/test_scale_equivalence.exe
*)

module Duration = Repro_prelude.Duration
module Scenario = Experiments.Scenario
module Chaos = Experiments.Chaos
module Soak = Experiments.Soak
module Runner = Experiments.Runner

(* Under [dune runtest] the cwd is _build/default/test (the goldens are
   declared as test deps); under [dune exec] from the workspace root it
   is the root itself. *)
let golden_file =
  List.find Sys.file_exists
    [ "goldens/scale_equivalence.golden"; "test/goldens/scale_equivalence.golden" ]

(* Paper scale, shortened horizon: 100 peers x 50 AUs is the population
   the acceptance criterion names; 0.1 years keeps the battery fast
   while still completing several poll generations per AU. *)
let paper_short = { Scenario.paper with Scenario.years = 0.1; runs = 2 }

let digest s = Digest.to_hex (Digest.string s)

let summary_string s = Format.asprintf "%a" Lockss.Metrics.pp_summary s

let with_temp_file f =
  let path = Filename.temp_file "scale-equiv" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* -- Cases --------------------------------------------------------------- *)

(* Serial paper-scale run with a full debug trace: the trace digest pins
   event ordering, reference-list member order (Poll_sampled carries the
   whole reference list) and every payload byte. *)
let case_run_trace () =
  let cfg = Scenario.config paper_short in
  with_temp_file (fun path ->
      let observe =
        {
          Scenario.default_observe with
          Scenario.trace_out = Some path;
          trace_level = Lockss.Trace.Debug;
          trace_format = `Jsonl;
        }
      in
      let summary =
        Scenario.run_one ~observe ~cfg ~seed:1 ~years:0.05 Scenario.No_attack
      in
      let trace_path = Scenario.seeded_path path ~seed:1 in
      let trace_digest = Digest.to_hex (Digest.file trace_path) in
      Sys.remove trace_path;
      summary_string summary ^ "\ntrace:" ^ trace_digest)

(* The same multi-run sweep with 1 and 2 worker domains must agree with
   each other and with the pinned golden (the Runner determinism
   contract, re-checked here because the compact structures are shared
   nowhere but must not accidentally become shared). *)
let case_run_parallel () =
  let cfg = Scenario.config paper_short in
  let sweep jobs =
    Runner.map ~jobs
      (fun i ->
        summary_string
          (Scenario.run_one ~cfg ~seed:(1 + i) ~years:paper_short.Scenario.years
             Scenario.No_attack))
      (List.init paper_short.Scenario.runs Fun.id)
  in
  let serial = sweep 1 in
  let parallel = sweep 2 in
  if serial <> parallel then
    Alcotest.fail "serial and parallel sweeps disagree before golden check";
  String.concat "\n---\n" serial

(* Partial AU coverage drives the sparse holder-assignment path (each AU
   holds on a sampled subset instead of everyone). *)
let case_run_sparse_holdings () =
  let cfg = { (Scenario.config paper_short) with Lockss.Config.au_coverage = 0.5 } in
  summary_string (Scenario.run_one ~cfg ~seed:2 ~years:0.1 Scenario.No_attack)

(* Dormant nodes join the identity space (and consume setup RNG draws)
   without participating until activated; the representation must keep
   them out of holder iteration exactly as the matrix did. *)
let case_run_dormant () =
  let cfg = Scenario.config { Scenario.bench with Scenario.years = 0.5 } in
  let population = Lockss.Population.create ~seed:5 ~dormant:5 cfg in
  Lockss.Population.run population ~until:(Duration.of_years 0.5);
  summary_string (Lockss.Population.summary population)

(* An admission-flood attack exercises nomination, admission dedup and
   the introduction machinery — the hot paths the refactor touches. *)
let case_run_attack () =
  let cfg = Scenario.config Scenario.bench in
  let attack =
    Scenario.Admission_flood
      {
        coverage = 0.5;
        duration = Duration.of_days 90.;
        recuperation = Duration.of_days 30.;
        rate = 4.;
      }
  in
  summary_string (Scenario.run_one ~cfg ~seed:3 ~years:1.0 attack)

(* Chaos at paper scale: the paired faulted/fault-free comparison plus
   every invariant check verdict, rendered through the chaos report
   printer. *)
let case_chaos () =
  let report =
    Chaos.run ~scale:{ paper_short with Scenario.seed = 4 } Chaos.default_mix
  in
  Format.asprintf "%a" Chaos.pp_report report

(* Soak at paper scale, two seeds: pins per-seed poll counts, rejection
   histograms and auditor verdicts as JSON. *)
let case_soak () =
  let report =
    Soak.run ~scale:paper_short ~seeds:[ 1; 2 ] Chaos.default_mix
  in
  Obs.Json.to_string (Soak.report_json report)

let cases =
  [
    ("run-trace", case_run_trace);
    ("run-parallel", case_run_parallel);
    ("run-sparse-holdings", case_run_sparse_holdings);
    ("run-dormant", case_run_dormant);
    ("run-attack", case_run_attack);
    ("chaos", case_chaos);
    ("soak", case_soak);
  ]

(* -- Golden plumbing ----------------------------------------------------- *)

let load_goldens path =
  In_channel.with_open_text path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some line ->
          (match String.index_opt line '=' with
          | Some i ->
            go
              ((String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1))
              :: acc)
          | None -> go acc)
      in
      go [])

let regen path =
  let only =
    match Sys.getenv_opt "GOLDEN_ONLY" with
    | None | Some "" -> fun _ -> true
    | Some names ->
      let names = String.split_on_char ',' names in
      fun name -> List.mem name names
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun (name, case) ->
          if only name then begin
            let t0 = Unix.gettimeofday () in
            let d = digest (case ()) in
            Printf.fprintf oc "%s=%s\n" name d;
            Printf.printf "%s=%s (%.1fs)\n%!" name d (Unix.gettimeofday () -. t0)
          end)
        cases)

let check_case goldens name case () =
  match List.assoc_opt name goldens with
  | None -> Alcotest.fail (Printf.sprintf "no golden pinned for %s" name)
  | Some expected ->
    let actual = case () in
    let actual_digest = digest actual in
    if actual_digest <> expected then
      Alcotest.fail
        (Printf.sprintf
           "golden mismatch for %s: expected digest %s, got %s\n\
            --- actual output ---\n\
            %s"
           name expected actual_digest actual)

let () =
  match Sys.getenv_opt "GOLDEN_REGEN" with
  | Some path when path <> "" -> regen path
  | _ ->
    let goldens = load_goldens golden_file in
    Alcotest.run "scale_equivalence"
      [
        ( "goldens",
          List.map
            (fun (name, case) ->
              Alcotest.test_case name `Slow (check_case goldens name case))
            cases );
      ]
