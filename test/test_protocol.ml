(* End-to-end protocol tests: whole populations running the audit-and-
   repair protocol over simulated months/years. *)

module Duration = Repro_prelude.Duration
open Lockss

let tiny_cfg =
  {
    Config.default with
    Config.loyal_peers = 15;
    aus = 2;
    quorum = 4;
    max_disagree = 1;
    inner_circle_factor = 2;
    outer_circle_size = 3;
    reference_list_target = 8;
    friends_count = 3;
  }

let run_population ?(cfg = tiny_cfg) ?(seed = 5) ~years () =
  let population = Population.create ~seed cfg in
  Population.run population ~until:(Duration.of_years years);
  population

let test_polls_happen_and_succeed () =
  let population = run_population ~years:1. () in
  let s = Population.summary population in
  (* 15 peers x 2 AUs x ~4 polls/year = ~120 poll slots. *)
  Alcotest.(check bool) "many successes" true (s.Metrics.polls_succeeded > 80);
  Alcotest.(check bool) "failures rare" true
    (s.Metrics.polls_inquorate < s.Metrics.polls_succeeded / 5);
  Alcotest.(check int) "no alarms among honest peers" 0 s.Metrics.polls_alarmed

let test_poll_rate_matches_interval () =
  let population = run_population ~years:2. () in
  let s = Population.summary population in
  let interval = tiny_cfg.Config.inter_poll_interval in
  Alcotest.(check bool) "mean gap within 15% of the inter-poll interval" true
    (Float.abs (s.Metrics.mean_success_gap -. interval) < 0.15 *. interval)

let test_damage_gets_repaired () =
  let population = run_population ~years:2. () in
  let s = Population.summary population in
  (* With MTTF 5y and 2/50 disks per peer over 15 peers x 2 years, some
     damage occurs; polls must detect and repair it. *)
  Alcotest.(check bool) "repairs happened" true (s.Metrics.repairs > 0);
  Alcotest.(check bool) "few replicas damaged at the end" true
    (Population.damaged_replicas population <= 1);
  Alcotest.(check bool) "access failure probability small" true
    (s.Metrics.access_failure_probability < 0.01)

let test_determinism () =
  let s1 = Population.summary (run_population ~seed:11 ~years:1. ()) in
  let s2 = Population.summary (run_population ~seed:11 ~years:1. ()) in
  Alcotest.(check int) "same successes" s1.Metrics.polls_succeeded s2.Metrics.polls_succeeded;
  Alcotest.(check (float 1e-12)) "same loyal effort" s1.Metrics.loyal_effort
    s2.Metrics.loyal_effort;
  Alcotest.(check (float 1e-12)) "same afp" s1.Metrics.access_failure_probability
    s2.Metrics.access_failure_probability

let test_seed_changes_results () =
  let s1 = Population.summary (run_population ~seed:11 ~years:1. ()) in
  let s2 = Population.summary (run_population ~seed:12 ~years:1. ()) in
  Alcotest.(check bool) "different seeds diverge" true
    (s1.Metrics.loyal_effort <> s2.Metrics.loyal_effort)

let test_effort_flows_both_roles () =
  let population = run_population ~years:1. () in
  let s = Population.summary population in
  Alcotest.(check bool) "votes supplied" true (s.Metrics.votes_supplied > 0);
  Alcotest.(check bool) "effort charged" true (s.Metrics.loyal_effort > 0.);
  Alcotest.(check (float 0.)) "no adversary effort absent attack" 0. s.Metrics.adversary_effort

let test_higher_damage_rate_more_failures () =
  let fragile = { tiny_cfg with Config.disk_mttf_years = 0.5 } in
  let sturdy = { tiny_cfg with Config.disk_mttf_years = 5.0 } in
  let sf = Population.summary (run_population ~cfg:fragile ~years:2. ()) in
  let ss = Population.summary (run_population ~cfg:sturdy ~years:2. ()) in
  Alcotest.(check bool) "fragile disks fail more" true
    (sf.Metrics.access_failure_probability > ss.Metrics.access_failure_probability)

let test_longer_interval_higher_access_failure () =
  let slow =
    { tiny_cfg with Config.inter_poll_interval = Duration.of_months 6.; disk_mttf_years = 1. }
  in
  let fast =
    { tiny_cfg with Config.inter_poll_interval = Duration.of_months 1.; disk_mttf_years = 1. }
  in
  let s_slow = Population.summary (run_population ~cfg:slow ~years:2. ()) in
  let s_fast = Population.summary (run_population ~cfg:fast ~years:2. ()) in
  Alcotest.(check bool) "slower polling leaves damage undetected longer" true
    (s_slow.Metrics.access_failure_probability > s_fast.Metrics.access_failure_probability)

let test_capacity_overprovisioning_reduces_refusals () =
  (* With heavy per-peer load and capacity 1, schedules refuse work; with
     ample capacity the same workload succeeds more often. *)
  let loaded = { tiny_cfg with Config.aus = 6; capacity = 0.02 } in
  let provisioned = { loaded with Config.capacity = 4.0 } in
  let s_lo = Population.summary (run_population ~cfg:loaded ~years:1. ()) in
  let s_hi = Population.summary (run_population ~cfg:provisioned ~years:1. ()) in
  Alcotest.(check bool) "over-provisioning helps" true
    (s_hi.Metrics.polls_succeeded >= s_lo.Metrics.polls_succeeded)

let test_pipe_stoppage_blocks_polls_then_recovery () =
  (* Manually stop the whole population mid-run and verify polls stall,
     then restore and verify they resume. *)
  let population = Population.create ~seed:3 tiny_cfg in
  Population.run population ~until:(Duration.of_months 6.);
  let mid = Population.summary population in
  let partition = Population.partition population in
  List.iter (Narses.Partition.stop partition) (Population.loyal_nodes population);
  Population.run population ~until:(Duration.of_months 12.);
  let stalled = Population.summary population in
  List.iter (Narses.Partition.restore partition) (Population.loyal_nodes population);
  Population.run population ~until:(Duration.of_months 24.);
  let recovered = Population.summary population in
  let d1 = stalled.Metrics.polls_succeeded - mid.Metrics.polls_succeeded in
  let d2 = recovered.Metrics.polls_succeeded - stalled.Metrics.polls_succeeded in
  Alcotest.(check bool) "stoppage stalls polls" true (d1 < d2 / 4);
  Alcotest.(check bool) "polls resume after restoration" true (d2 > 30)

let test_synchronized_ablation_struggles_under_load () =
  (* The [28] failure mode: synchronous solicitation needs many voters
     free simultaneously. Under tight capacity, the desynchronized
     protocol outperforms it. *)
  let base = { tiny_cfg with Config.aus = 4; capacity = 0.003 } in
  let desync = { base with Config.desynchronized = true } in
  let sync = { base with Config.desynchronized = false } in
  let s_desync = Population.summary (run_population ~cfg:desync ~years:1. ()) in
  let s_sync = Population.summary (run_population ~cfg:sync ~years:1. ()) in
  Alcotest.(check bool) "desynchronization wins decisively under load" true
    (s_desync.Metrics.polls_succeeded > s_sync.Metrics.polls_succeeded * 3 / 2)

let test_layering_validates_against_unlayered () =
  (* The paper's layering technique: "layer n is a simulation of 50 AUs on
     peers already running a realistic workload of 50(n-1) AUs", validated
     against unlayered runs with "negligible differences". We reproduce
     the validation at moderate load: a 4-AU layer on top of a 4-AU
     background behaves like the corresponding AUs of an 8-AU unlayered
     run. *)
  let base = { tiny_cfg with Config.loyal_peers = 25; quorum = 5; max_disagree = 1;
               outer_circle_size = 5; reference_list_target = 12; capacity = 0.01 } in
  let unlayered = { base with Config.aus = 8 } in
  let layered = { base with Config.aus = 4; background_load = 0.48 } in
  let su = Population.summary (run_population ~cfg:unlayered ~years:2. ()) in
  let sl = Population.summary (run_population ~cfg:layered ~years:2. ()) in
  let rate (s : Metrics.summary) aus =
    float_of_int s.Metrics.polls_succeeded /. float_of_int aus
  in
  let ru = rate su 8 and rl = rate sl 4 in
  Alcotest.(check bool) "per-AU success rates within 10%" true
    (Float.abs (ru -. rl) < 0.1 *. ru)

let test_background_load_consumes_schedule () =
  (* A saturating background load starves this layer's polls — the
     over-estimation bias the paper notes for higher layers. *)
  let base = { tiny_cfg with Config.capacity = 0.005 } in
  let free = { base with Config.background_load = 0. } in
  let saturated = { base with Config.background_load = 0.97 } in
  let sf = Population.summary (run_population ~cfg:free ~years:1. ()) in
  let ss = Population.summary (run_population ~cfg:saturated ~years:1. ()) in
  Alcotest.(check bool) "saturation starves the layer" true
    (ss.Metrics.polls_succeeded < sf.Metrics.polls_succeeded / 2)

let test_reader_estimator_matches_integral () =
  (* The empirical read-failure rate is an unbiased estimator of the
     time-averaged damaged fraction. *)
  let cfg =
    { tiny_cfg with Config.loyal_peers = 25; quorum = 5; max_disagree = 1;
      outer_circle_size = 5; reference_list_target = 12;
      disk_mttf_years = 0.05; reads_per_replica_per_day = 2.0 }
  in
  let s = Population.summary (run_population ~cfg ~seed:3 ~years:2. ()) in
  Alcotest.(check bool) "many reads sampled" true (s.Metrics.reads > 50_000);
  Alcotest.(check bool) "estimator within 25% of integral" true
    (Float.abs (s.Metrics.empirical_read_failure -. s.Metrics.access_failure_probability)
    < 0.25 *. s.Metrics.access_failure_probability)

let test_trace_captures_poll_lifecycle () =
  let population = Population.create ~seed:5 tiny_cfg in
  let get_events = Trace.recorder (Population.trace population) in
  Population.run population ~until:(Duration.of_months 8.);
  let record = get_events () in
  let events = record.Trace.events in
  Alcotest.(check int) "ring not exceeded" 0 record.Trace.dropped;
  Alcotest.(check bool) "events recorded" true (List.length events > 100);
  let count p = List.length (List.filter (fun (_, e) -> p e) events) in
  let starts = count (function Trace.Poll_started _ -> true | _ -> false) in
  let conclusions = count (function Trace.Poll_concluded _ -> true | _ -> false) in
  let votes = count (function Trace.Vote_sent _ -> true | _ -> false) in
  Alcotest.(check bool) "polls started" true (starts > 0);
  Alcotest.(check bool) "conclusions do not exceed starts" true (conclusions <= starts);
  Alcotest.(check bool) "votes flowed" true (votes > conclusions);
  (* Times are monotone (the engine delivers events in order). *)
  let monotone =
    List.for_all2
      (fun (a, _) (b, _) -> a <= b)
      (List.filteri (fun i _ -> i < List.length events - 1) events)
      (List.tl events)
  in
  Alcotest.(check bool) "timestamps monotone" true monotone;
  (* The summary agrees with the trace. *)
  let s = Population.summary population in
  Alcotest.(check int) "trace conclusions = metrics conclusions"
    (s.Metrics.polls_succeeded + s.Metrics.polls_inquorate + s.Metrics.polls_alarmed)
    conclusions

let test_trace_free_when_unobserved () =
  (* No subscriber: runs must behave identically (emit is a no-op). *)
  let run ~observe =
    let population = Population.create ~seed:9 tiny_cfg in
    (if observe then
       let (_ : unit -> Trace.record) =
         Trace.recorder (Population.trace population)
       in
       ());
    Population.run population ~until:(Duration.of_months 6.);
    Population.summary population
  in
  let a = run ~observe:false and b = run ~observe:true in
  Alcotest.(check int) "same successes" a.Metrics.polls_succeeded b.Metrics.polls_succeeded;
  Alcotest.(check (float 0.)) "same effort" a.Metrics.loyal_effort b.Metrics.loyal_effort

let test_damaged_peer_recovers_via_poll () =
  (* Damage one replica everywhere-but-one and watch the landslide
     repair machinery fix it within a couple of poll rounds. *)
  let cfg = { tiny_cfg with Config.disk_mttf_years = 1e6 (* no background damage *) } in
  let population = Population.create ~seed:9 cfg in
  let ctx = Population.ctx population in
  let victim = ctx.Peer.peers.(0) in
  let st = Peer.au_state victim 0 in
  let was_clean = Replica.damage st.Peer.replica ~block:7 ~version:999 in
  if was_clean then
    Metrics.on_replica_damaged ctx.Peer.metrics ~now:(Narses.Engine.now ctx.Peer.engine);
  Population.run population ~until:(Duration.of_years 1.);
  Alcotest.(check bool) "replica repaired" false (Replica.is_damaged st.Peer.replica);
  let s = Population.summary population in
  Alcotest.(check bool) "repair recorded" true (s.Metrics.repairs >= 1)

let test_concurrent_damage_same_block_converges () =
  (* Two peers damaged on the same block with different corrupt versions:
     a repair can arrive from a supplier that is itself damaged; the
     retry loop must still converge everyone to the publisher content. *)
  let cfg = { tiny_cfg with Config.disk_mttf_years = 1e6 } in
  let population = Population.create ~seed:17 cfg in
  let ctx = Population.ctx population in
  let damage node version =
    let st = Peer.au_state ctx.Peer.peers.(node) 0 in
    let was_clean = Replica.damage st.Peer.replica ~block:5 ~version in
    if was_clean then
      Metrics.on_replica_damaged ctx.Peer.metrics ~now:(Narses.Engine.now ctx.Peer.engine)
  in
  damage 0 100;
  damage 1 200;
  Population.run population ~until:(Duration.of_years 1.);
  Alcotest.(check int) "everyone clean again" 0 (Population.damaged_replicas population);
  let s = Population.summary population in
  Alcotest.(check bool) "at least two repairs happened" true (s.Metrics.repairs >= 2);
  (* At this small quorum (4, margin 1), two simultaneous dissenters on
     one block legitimately leave some polls without a landslide: the
     bimodal design raises alarms for correlated damage rather than
     guessing. They must stop once the replicas converge. *)
  Alcotest.(check bool) "alarms bounded and transient" true
    (s.Metrics.polls_alarmed < 10);
  let before = s.Metrics.polls_alarmed in
  Population.run population ~until:(Duration.of_years 2.);
  let s2 = Population.summary population in
  Alcotest.(check int) "no further alarms after convergence" before s2.Metrics.polls_alarmed

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "protocol"
    [
      ( "end-to-end",
        [
          quick "polls succeed" test_polls_happen_and_succeed;
          slow "poll rate" test_poll_rate_matches_interval;
          slow "damage repaired" test_damage_gets_repaired;
          quick "deterministic runs" test_determinism;
          quick "seed sensitivity" test_seed_changes_results;
          quick "effort accounting" test_effort_flows_both_roles;
          slow "damage-rate monotone" test_higher_damage_rate_more_failures;
          slow "interval monotone" test_longer_interval_higher_access_failure;
          slow "over-provisioning" test_capacity_overprovisioning_reduces_refusals;
          slow "stoppage and recovery" test_pipe_stoppage_blocks_polls_then_recovery;
          slow "desynchronization ablation" test_synchronized_ablation_struggles_under_load;
          quick "targeted damage recovery" test_damaged_peer_recovers_via_poll;
          slow "layering validation" test_layering_validates_against_unlayered;
          slow "background load semantics" test_background_load_consumes_schedule;
          slow "reader estimator" test_reader_estimator_matches_integral;
          quick "trace lifecycle" test_trace_captures_poll_lifecycle;
          quick "trace free when unobserved" test_trace_free_when_unobserved;
          quick "concurrent same-block damage" test_concurrent_damage_same_block_converges;
        ] );
    ]
