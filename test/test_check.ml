(* The runtime protocol-invariant audit layer (lib/check).

   The load-bearing claims, in order: a fault-free run audits clean; a
   faulted (loss/jitter/duplication/churn) run still audits clean — the
   invariants are conservative, not weather-dependent; every seeded
   mutation trips exactly its target invariant and nothing else; and
   the online checks agree with straightforward reference models on
   random histories. *)

module Duration = Repro_prelude.Duration
module Scenario = Experiments.Scenario
module Chaos = Experiments.Chaos
open Lockss
module Invariant = Check.Invariant
module Auditor = Check.Auditor
module Mutation = Check.Mutation

let micro_scale =
  {
    Scenario.peers = 15;
    aus = 2;
    quorum = 4;
    max_disagree = 1;
    outer_circle = 3;
    reference_target = 8;
    years = 0.25;
    runs = 1;
    seed = 7;
  }

let micro_cfg = Scenario.config micro_scale
let micro_params = Invariant.params_of_config micro_cfg

(* [capture cfg] runs a quarter-year micro simulation recording every
   bus event, exactly what a --trace-level debug file would hold. *)
let capture ?(attack = Scenario.No_attack) ~seed cfg =
  let population = Scenario.build ~cfg ~seed attack in
  let events = ref [] in
  Trace.subscribe (Lockss.Population.trace population) (fun ~time event ->
      events := (time, event) :: !events);
  Lockss.Population.run population ~until:(Duration.of_years micro_scale.Scenario.years);
  (Lockss.Population.summary population, List.rev !events)

let baseline = lazy (capture ~seed:micro_scale.Scenario.seed micro_cfg)

let audit_events ?only events =
  let auditor = Auditor.create ~params:micro_params ?only () in
  List.iter (fun (time, event) -> Auditor.feed auditor ~time event) events;
  Auditor.finish auditor;
  auditor

(* -- Clean runs audit clean --------------------------------------------- *)

let test_baseline_run_clean () =
  let _, violations =
    Scenario.run_one_audited ~cfg:micro_cfg ~seed:3
      ~years:micro_scale.Scenario.years Scenario.No_attack
  in
  Alcotest.(check int) "no violations on a fault-free audited run" 0
    (List.length violations)

let test_attacked_run_clean () =
  (* The invariants police the loyal protocol, not the adversary's
     manners: an attacked run must still audit clean. *)
  let attack =
    Scenario.Admission_flood
      {
        coverage = 1.0;
        duration = Duration.of_days 30.;
        recuperation = Duration.of_days 30.;
        rate = 24.;
      }
  in
  let _, violations =
    Scenario.run_one_audited ~cfg:micro_cfg ~seed:5
      ~years:micro_scale.Scenario.years attack
  in
  Alcotest.(check int) "no violations under admission flood" 0 (List.length violations)

let test_faulted_run_clean () =
  let cfg =
    { micro_cfg with Config.faults = Some (Chaos.faults_config Chaos.default_mix) }
  in
  let _, violations =
    Scenario.run_one_audited ~cfg ~seed:11 ~years:micro_scale.Scenario.years
      Scenario.No_attack
  in
  Alcotest.(check int) "no violations under loss/jitter/dup/churn" 0
    (List.length violations)

let test_offline_matches_live () =
  let summary, events = Lazy.force baseline in
  let auditor = Auditor.create ~params:micro_params () in
  List.iter (fun (time, event) -> Auditor.feed auditor ~time event) events;
  Auditor.finish ~metrics:summary auditor;
  Alcotest.(check int) "captured baseline replays clean, conservation included" 0
    (Auditor.violation_count auditor)

(* -- Mutation self-tests ------------------------------------------------ *)

(* Each seeded mutation must make its target invariant fire — and only
   that invariant, so one planted bug cannot hide behind a cascade. *)
let test_mutations_trip_their_invariant () =
  let _, events = Lazy.force baseline in
  List.iter
    (fun m ->
      match Mutation.apply ~params:micro_params ~id:m.Mutation.id events with
      | Error msg ->
        Alcotest.failf "mutation %s not applicable to the baseline: %s" m.Mutation.id msg
      | Ok mutated ->
        let auditor = audit_events mutated in
        let violations = Auditor.violations auditor in
        Alcotest.(check int)
          (Printf.sprintf "%s raises exactly one violation" m.Mutation.id)
          1 (List.length violations);
        List.iter
          (fun v ->
            Alcotest.(check string)
              (Printf.sprintf "%s trips only %s" m.Mutation.id m.Mutation.target)
              m.Mutation.target v.Invariant.invariant)
          violations)
    Mutation.all

let test_unknown_mutation_rejected () =
  match Mutation.apply ~params:micro_params ~id:"no-such-mutation" [] with
  | Ok _ -> Alcotest.fail "unknown mutation id must be rejected"
  | Error _ -> ()

let test_conservation_fires_on_perturbed_summary () =
  (* Conservation is the one invariant a trace mutation cannot seed (it
     compares the trace against the run's metrics), so perturb the
     metrics side instead. *)
  let summary, events = Lazy.force baseline in
  let auditor = Auditor.create ~params:micro_params () in
  List.iter (fun (time, event) -> Auditor.feed auditor ~time event) events;
  Auditor.finish
    ~metrics:
      { summary with Metrics.loyal_effort = summary.Metrics.loyal_effort +. 1000. }
    auditor;
  let violations = Auditor.violations auditor in
  Alcotest.(check int) "perturbed summary raises exactly one violation" 1
    (List.length violations);
  List.iter
    (fun v ->
      Alcotest.(check string) "the violation is conservation" "conservation"
        v.Invariant.invariant)
    violations

(* -- Live attachment ---------------------------------------------------- *)

let test_attach_reemits_without_looping () =
  let bus = Trace.create () in
  let auditor = Auditor.create ~params:micro_params ~only:[ "refractory" ] () in
  Auditor.attach auditor bus;
  let reported = ref 0 in
  Trace.subscribe bus (fun ~time:_ event ->
      match event with Trace.Invariant_violated _ -> incr reported | _ -> ());
  let admit now =
    Trace.emit bus ~now (fun () ->
        Trace.Invitation_admitted
          { voter = 1; claimed = 2; au = 0; poll_id = None; path = Trace.Admitted_unknown })
  in
  admit 0.;
  admit (0.1 *. micro_params.Invariant.refractory_period);
  Alcotest.(check int) "one violation collected" 1 (Auditor.violation_count auditor);
  Alcotest.(check int) "one invariant_violated event re-emitted on the bus" 1 !reported

(* -- Reference-model unit checks ---------------------------------------- *)

let admitted ?(voter = 1) ?(claimed = 2) ?(path = Trace.Admitted_unknown) () =
  Trace.Invitation_admitted { voter; claimed; au = 0; poll_id = None; path }

let test_grade_decay_touches_reset () =
  let d = micro_params.Invariant.decay_period in
  let known g = Trace.Admitted_known g in
  (* Same grade inside one decay step: clean. *)
  let a =
    audit_events ~only:[ "grade-decay" ]
      [ (0., admitted ~path:(known Grade.Even) ()); (0.5 *. d, admitted ~path:(known Grade.Even) ()) ]
  in
  Alcotest.(check int) "steady grade is clean" 0 (Auditor.violation_count a);
  (* A climb with no touch in between: violation. *)
  let a =
    audit_events ~only:[ "grade-decay" ]
      [ (0., admitted ~path:(known Grade.Even) ()); (0.5 *. d, admitted ~path:(known Grade.Credit) ()) ]
  in
  Alcotest.(check int) "untouched climb fires" 1 (Auditor.violation_count a);
  (* The observer voting for the subject legitimately rewrites the
     entry, so a later climb is not a violation. *)
  let a =
    audit_events ~only:[ "grade-decay" ]
      [
        (0., admitted ~path:(known Grade.Even) ());
        (1., Trace.Vote_sent { voter = 1; poller = 2; au = 0; poll_id = 9 });
        (2., admitted ~path:(known Grade.Credit) ());
      ]
  in
  Alcotest.(check int) "own vote resets the baseline" 0 (Auditor.violation_count a);
  (* The subject voting in the observer's poll raises its grade when the
     poll concludes — also a legitimate rewrite. *)
  let a =
    audit_events ~only:[ "grade-decay" ]
      [
        (0., admitted ~voter:1 ~claimed:3 ~path:(known Grade.Even) ());
        (1., Trace.Vote_sent { voter = 3; poller = 1; au = 0; poll_id = 9 });
        ( 2.,
          Trace.Poll_concluded { poller = 1; au = 0; poll_id = 9; outcome = Metrics.Success }
        );
        (3., admitted ~voter:1 ~claimed:3 ~path:(known Grade.Credit) ());
      ]
  in
  Alcotest.(check int) "concluded vote resets the baseline" 0
    (Auditor.violation_count a)

(* -- QCheck model batteries --------------------------------------------- *)

(* Random admission histories on one supplier: the auditor must flag
   exactly the gaps a direct reading of the rule flags. Integer gaps
   keep the comparison away from the epsilon band. *)
let prop_refractory_matches_model =
  QCheck2.Test.make ~name:"refractory agrees with the gap model on random histories"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 250))
    (fun gaps ->
      let period = 100. in
      let params =
        { micro_params with Invariant.refractory_period = period; admission_control = true }
      in
      let auditor = Auditor.create ~params ~only:[ "refractory" ] () in
      (* the first admission has no predecessor, so only the gaps
         between consecutive admissions — the tail — can violate *)
      let expected =
        List.length
          (List.filter
             (fun g -> float_of_int g < period)
             (match gaps with [] -> [] | _ :: tl -> tl))
      in
      let _ =
        List.fold_left
          (fun now gap ->
            let now = now +. float_of_int gap in
            Auditor.feed auditor ~time:now (admitted ());
            now)
          0. gaps
      in
      Auditor.finish auditor;
      Auditor.violation_count auditor = expected)

type effort_op = Charge of float | Receive of float | Vote

(* Random charge/receive/vote interleavings on one account: the online
   check must agree with a direct fold over the same history. *)
let prop_effort_balance_matches_model =
  let gen_op =
    QCheck2.Gen.(
      frequency
        [
          (3, map (fun s -> Charge s) (float_range 0.1 10.));
          (2, map (fun s -> Receive s) (float_range 0.1 30.));
          (1, pure Vote);
        ])
  in
  QCheck2.Test.make ~name:"effort-balance agrees with the ledger model on random histories"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) gen_op)
    (fun ops ->
      let auditor = Auditor.create ~params:micro_params ~only:[ "effort-balance" ] () in
      let tol = micro_params.Invariant.tolerance in
      let charged = ref 0. and received = ref 0. in
      let expected = ref 0 in
      let breaks () = !charged -. !received > tol *. Float.max 1. !received in
      List.iteri
        (fun i op ->
          let time = float_of_int i in
          match op with
          | Charge s ->
            charged := !charged +. s;
            Auditor.feed auditor ~time
              (Trace.Effort_charged
                 {
                   peer = 1;
                   role = Trace.Loyal;
                   phase = Trace.Voting;
                   poller = Some 2;
                   au = Some 0;
                   poll_id = Some 7;
                   seconds = s;
                 })
          | Receive s ->
            received := !received +. s;
            if breaks () then incr expected;
            Auditor.feed auditor ~time
              (Trace.Effort_received
                 {
                   peer = 1;
                   from_ = 2;
                   phase = Trace.Solicitation;
                   au = 0;
                   poll_id = 7;
                   seconds = s;
                 })
          | Vote ->
            if breaks () then incr expected;
            Auditor.feed auditor ~time
              (Trace.Vote_sent { voter = 1; poller = 2; au = 0; poll_id = 7 }))
        ops;
      Auditor.finish auditor;
      Auditor.violation_count auditor = !expected)

let () =
  Alcotest.run "check"
    [
      ( "clean runs",
        [
          Alcotest.test_case "fault-free audited run" `Quick test_baseline_run_clean;
          Alcotest.test_case "attacked audited run" `Quick test_attacked_run_clean;
          Alcotest.test_case "faulted audited run" `Quick test_faulted_run_clean;
          Alcotest.test_case "offline replay with conservation" `Quick
            test_offline_matches_live;
        ] );
      ( "mutation self-tests",
        [
          Alcotest.test_case "each mutation trips exactly its invariant" `Quick
            test_mutations_trip_their_invariant;
          Alcotest.test_case "unknown mutation rejected" `Quick
            test_unknown_mutation_rejected;
          Alcotest.test_case "conservation fires on a perturbed summary" `Quick
            test_conservation_fires_on_perturbed_summary;
        ] );
      ( "live attachment",
        [
          Alcotest.test_case "re-emission without feedback loops" `Quick
            test_attach_reemits_without_looping;
        ] );
      ( "reference models",
        [
          Alcotest.test_case "grade decay touch semantics" `Quick
            test_grade_decay_touches_reset;
          QCheck_alcotest.to_alcotest prop_refractory_matches_model;
          QCheck_alcotest.to_alcotest prop_effort_balance_matches_model;
        ] );
    ]
