(* Unit tests for the LOCKSS protocol data structures: grades, replicas,
   votes, tallies, reputation, admission control, introductions,
   reference lists, configuration, messages, metrics. *)

module Rng = Repro_prelude.Rng
module Duration = Repro_prelude.Duration
open Lockss

let rng () = Rng.create 1234
let check_float = Alcotest.(check (float 1e-9))

let grade_testable =
  Alcotest.testable Grade.pp Grade.equal

(* -- Grade ------------------------------------------------------------ *)

let test_grade_raise () =
  Alcotest.check grade_testable "debt->even" Grade.Even (Grade.raise_grade Grade.Debt);
  Alcotest.check grade_testable "even->credit" Grade.Credit (Grade.raise_grade Grade.Even);
  Alcotest.check grade_testable "credit saturates" Grade.Credit
    (Grade.raise_grade Grade.Credit)

let test_grade_lower () =
  Alcotest.check grade_testable "credit->even" Grade.Even (Grade.lower Grade.Credit);
  Alcotest.check grade_testable "even->debt" Grade.Debt (Grade.lower Grade.Even);
  Alcotest.check grade_testable "debt saturates" Grade.Debt (Grade.lower Grade.Debt)

let test_grade_decay () =
  Alcotest.check grade_testable "no steps" Grade.Credit (Grade.decayed Grade.Credit ~steps:0);
  Alcotest.check grade_testable "one step" Grade.Even (Grade.decayed Grade.Credit ~steps:1);
  Alcotest.check grade_testable "two steps" Grade.Debt (Grade.decayed Grade.Credit ~steps:2);
  Alcotest.check grade_testable "over-decay saturates" Grade.Debt
    (Grade.decayed Grade.Credit ~steps:100)

let test_grade_rank_order () =
  Alcotest.(check bool) "debt < even < credit" true
    (Grade.rank Grade.Debt < Grade.rank Grade.Even
    && Grade.rank Grade.Even < Grade.rank Grade.Credit)

(* -- Replica ---------------------------------------------------------- *)

let test_replica_pristine () =
  let r = Replica.create ~au:0 ~blocks:16 in
  Alcotest.(check bool) "clean" false (Replica.is_damaged r);
  Alcotest.(check int) "publisher version" 0 (Replica.version r 3);
  Alcotest.(check (list (pair int int))) "no deviations" [] (Replica.damaged_blocks r)

let test_replica_damage_and_repair () =
  let r = Replica.create ~au:0 ~blocks:16 in
  Alcotest.(check bool) "first damage transitions" true (Replica.damage r ~block:3 ~version:7);
  Alcotest.(check bool) "second damage does not" false (Replica.damage r ~block:5 ~version:9);
  Alcotest.(check int) "damaged version" 7 (Replica.version r 3);
  Alcotest.(check (list (pair int int))) "sorted damage list" [ (3, 7); (5, 9) ]
    (Replica.damaged_blocks r);
  Alcotest.(check bool) "partial repair no transition" false (Replica.write r ~block:3 ~version:0);
  Alcotest.(check bool) "final repair transitions" true (Replica.write r ~block:5 ~version:0);
  Alcotest.(check bool) "clean again" false (Replica.is_damaged r)

let test_replica_write_bad_version_keeps_damage () =
  let r = Replica.create ~au:0 ~blocks:16 in
  ignore (Replica.damage r ~block:1 ~version:5);
  (* A "repair" from a damaged supplier installs its bad version. *)
  Alcotest.(check bool) "not a clean transition" false (Replica.write r ~block:1 ~version:8);
  Alcotest.(check int) "still deviant" 8 (Replica.version r 1)

let test_replica_bounds_checked () =
  let r = Replica.create ~au:0 ~blocks:4 in
  Alcotest.(check bool) "out of range raises" true
    (try
       ignore (Replica.version r 4);
       false
     with Invalid_argument _ -> true)

let test_replica_damage_version_zero_rejected () =
  let r = Replica.create ~au:0 ~blocks:4 in
  Alcotest.(check bool) "version 0 damage rejected" true
    (try
       ignore (Replica.damage r ~block:0 ~version:0);
       false
     with Invalid_argument _ -> true)

let prop_replica_damage_then_repair_roundtrips =
  QCheck2.Test.make ~name:"damage+repair roundtrips to clean" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (pair (int_range 0 63) (int_range 1 1000)))
    (fun damages ->
      let r = Replica.create ~au:0 ~blocks:64 in
      List.iter (fun (block, version) -> ignore (Replica.damage r ~block ~version)) damages;
      List.iter (fun (block, _) -> ignore (Replica.write r ~block ~version:0)) damages;
      (not (Replica.is_damaged r)) && Replica.damaged_blocks r = [])

(* -- Vote ------------------------------------------------------------- *)

let make_vote ?(bogus = false) ?(snapshot = []) ?(nominations = []) voter =
  {
    Vote.voter;
    nonce = 42L;
    proof = Effort.Proof.generate ~rng:(rng ()) ~cost:1.;
    snapshot;
    nominations;
    bogus;
  }

let test_vote_versions () =
  let v = make_vote ~snapshot:[ (2, 9) ] 1 in
  Alcotest.(check int) "damaged block" 9 (Vote.version v 2);
  Alcotest.(check int) "clean block" 0 (Vote.version v 0)

let test_vote_agreement () =
  let v = make_vote ~snapshot:[ (2, 9) ] 1 in
  Alcotest.(check bool) "agrees on clean" true (Vote.agrees_on v ~block:0 ~poller_version:0);
  Alcotest.(check bool) "disagrees damaged" false (Vote.agrees_on v ~block:2 ~poller_version:0);
  Alcotest.(check bool) "agrees on equal damage" true (Vote.agrees_on v ~block:2 ~poller_version:9)

let test_bogus_vote_never_agrees () =
  let v = make_vote ~bogus:true 1 in
  Alcotest.(check bool) "bogus disagrees everywhere" false
    (Vote.agrees_on v ~block:0 ~poller_version:0)

let test_vote_wire_bytes_scale () =
  let v = make_vote 1 in
  Alcotest.(check bool) "more blocks, bigger vote" true
    (Vote.wire_bytes v ~blocks:1024 > Vote.wire_bytes v ~blocks:16)

(* -- Real-content votes ------------------------------------------------ *)

let make_content ?(blocks = 8) () =
  Content.synthesize ~rng:(Rng.create 55) ~blocks ~block_bytes:256

let test_content_identical_replicas_agree () =
  let publisher = make_content () in
  let replica = Content.copy publisher in
  let vote = Content.vote replica ~nonce:"nonce-1" in
  Alcotest.(check int) "one hash per block" 8 (List.length vote);
  Alcotest.(check (option int)) "identical content agrees everywhere" None
    (Content.first_divergence publisher ~nonce:"nonce-1" ~vote)

let test_content_divergence_finds_first_damage () =
  let publisher = make_content () in
  let replica = Content.copy publisher in
  Content.corrupt replica ~rng:(Rng.create 56) ~block:3;
  let vote = Content.vote replica ~nonce:"nonce-1" in
  Alcotest.(check (option int)) "first damaged block found" (Some 3)
    (Content.first_divergence publisher ~nonce:"nonce-1" ~vote)

let test_content_repair_restores_agreement () =
  let publisher = make_content () in
  let replica = Content.copy publisher in
  Content.corrupt replica ~rng:(Rng.create 57) ~block:5;
  Content.write replica ~block:5 ~content:(Content.block publisher 5);
  Alcotest.(check (option int)) "repair restores agreement" None
    (Content.first_divergence publisher ~nonce:"n"
       ~vote:(Content.vote replica ~nonce:"n"))

let test_content_nonce_binds_votes () =
  let publisher = make_content () in
  let vote_a = Content.vote publisher ~nonce:"a" in
  let vote_b = Content.vote publisher ~nonce:"b" in
  (* Different nonces yield unrelated votes: replaying a vote from an old
     poll cannot pass. *)
  Alcotest.(check bool) "votes are nonce-specific" false (vote_a = vote_b);
  Alcotest.(check (option int)) "old vote diverges immediately" (Some 0)
    (Content.first_divergence publisher ~nonce:"b" ~vote:vote_a)

let prop_content_symbolic_model_faithful =
  (* The relation the symbolic replicas encode: votes agree on every block
     iff the contents are identical; otherwise the first divergence is the
     first differing block. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"real votes match the symbolic agreement relation" ~count:50
       QCheck2.Gen.(pair (int_range 0 7) (int_range 1 1000))
       (fun (damaged_block, seed) ->
         let publisher = make_content () in
         let replica = Content.copy publisher in
         Content.corrupt replica ~rng:(Rng.create seed) ~block:damaged_block;
         let vote = Content.vote replica ~nonce:"n" in
         Content.first_divergence publisher ~nonce:"n" ~vote = Some damaged_block))

(* -- Tally ------------------------------------------------------------ *)

let votes_with_versions specs =
  (* specs: (voter, version_of_block0) list *)
  List.map
    (fun (voter, version) ->
      make_vote ~snapshot:(if version = 0 then [] else [ (0, version) ]) voter)
    specs

let test_tally_landslide_agree () =
  let votes = votes_with_versions [ (1, 0); (2, 0); (3, 0); (4, 0); (5, 7) ] in
  match Tally.classify ~votes ~block:0 ~poller_version:0 ~max_disagree:1 with
  | Tally.Landslide_agree -> ()
  | Tally.Landslide_disagree _ | Tally.Inconclusive -> Alcotest.fail "expected agreement"

let test_tally_landslide_disagree () =
  let votes = votes_with_versions [ (1, 0); (2, 7); (3, 7); (4, 7); (5, 7) ] in
  match Tally.classify ~votes ~block:0 ~poller_version:0 ~max_disagree:1 with
  | Tally.Landslide_disagree dissenters ->
    Alcotest.(check (list int)) "dissenting voters" [ 2; 3; 4; 5 ] (List.sort compare dissenters)
  | Tally.Landslide_agree | Tally.Inconclusive -> Alcotest.fail "expected disagreement"

let test_tally_inconclusive () =
  let votes = votes_with_versions [ (1, 0); (2, 0); (3, 7); (4, 7); (5, 7) ] in
  match Tally.classify ~votes ~block:0 ~poller_version:0 ~max_disagree:1 with
  | Tally.Inconclusive -> ()
  | Tally.Landslide_agree | Tally.Landslide_disagree _ -> Alcotest.fail "expected alarm"

let test_tally_no_votes_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tally.classify ~votes:[] ~block:0 ~poller_version:0 ~max_disagree:1);
       false
     with Invalid_argument _ -> true)

let test_tally_blocks_to_inspect () =
  let votes = [ make_vote ~snapshot:[ (3, 1); (5, 2) ] 1; make_vote ~snapshot:[ (5, 9) ] 2 ] in
  Alcotest.(check (list int)) "union of deviations" [ 1; 3; 5 ]
    (Tally.blocks_to_inspect ~poller_damage:[ (1, 4) ] ~votes)

let test_tally_bogus_forces_inspection () =
  let votes = [ make_vote ~bogus:true 1 ] in
  Alcotest.(check (list int)) "block 0 inspected" [ 0 ]
    (Tally.blocks_to_inspect ~poller_damage:[] ~votes)

let test_tally_agrees_overall () =
  let poller = Replica.create ~au:0 ~blocks:8 in
  let votes = votes_with_versions [ (1, 0); (2, 0); (3, 0); (4, 0); (5, 0) ] in
  Alcotest.(check bool) "clean world agrees" true
    (Tally.agrees_overall ~votes ~poller ~max_disagree:1);
  ignore (Replica.damage poller ~block:0 ~version:3);
  Alcotest.(check bool) "damaged poller disagrees" false
    (Tally.agrees_overall ~votes ~poller ~max_disagree:1)

let prop_tally_permutation_invariant =
  QCheck2.Test.make ~name:"tally invariant under vote permutation" ~count:200
    QCheck2.Gen.(list_size (int_range 5 15) (int_range 0 2))
    (fun versions ->
      let votes = votes_with_versions (List.mapi (fun i v -> (i, v)) versions) in
      let rev_votes = List.rev votes in
      let classify vs = Tally.classify ~votes:vs ~block:0 ~poller_version:0 ~max_disagree:2 in
      match (classify votes, classify rev_votes) with
      | Tally.Landslide_agree, Tally.Landslide_agree -> true
      | Tally.Landslide_disagree a, Tally.Landslide_disagree b ->
        List.sort compare a = List.sort compare b
      | Tally.Inconclusive, Tally.Inconclusive -> true
      | _ -> false)

(* -- Known peers ------------------------------------------------------ *)

let test_known_peers_lifecycle () =
  let kp = Known_peers.create ~decay_period:100. in
  Alcotest.(check (option grade_testable)) "unknown" None (Known_peers.grade kp ~now:0. 7);
  Known_peers.raise_grade kp ~now:0. 7;
  Alcotest.(check (option grade_testable)) "enters at even" (Some Grade.Even)
    (Known_peers.grade kp ~now:0. 7);
  Known_peers.raise_grade kp ~now:10. 7;
  Alcotest.(check (option grade_testable)) "raised to credit" (Some Grade.Credit)
    (Known_peers.grade kp ~now:10. 7);
  Known_peers.lower kp ~now:20. 7;
  Alcotest.(check (option grade_testable)) "lowered" (Some Grade.Even)
    (Known_peers.grade kp ~now:20. 7)

let test_known_peers_decay () =
  let kp = Known_peers.create ~decay_period:100. in
  Known_peers.set kp ~now:0. 7 Grade.Credit;
  Alcotest.(check (option grade_testable)) "fresh" (Some Grade.Credit)
    (Known_peers.grade kp ~now:99. 7);
  Alcotest.(check (option grade_testable)) "one period" (Some Grade.Even)
    (Known_peers.grade kp ~now:150. 7);
  Alcotest.(check (option grade_testable)) "two periods" (Some Grade.Debt)
    (Known_peers.grade kp ~now:250. 7);
  Alcotest.(check (option grade_testable)) "saturates at debt" (Some Grade.Debt)
    (Known_peers.grade kp ~now:10_000. 7)

let test_known_peers_decay_huge_gap_clamped () =
  (* Regression: the step count used to feed an unclamped [int_of_float],
     whose result is unspecified for huge floats. Absurd gaps must still
     decay cleanly to the absorbing Debt state. *)
  let kp = Known_peers.create ~decay_period:100. in
  Known_peers.set kp ~now:0. 7 Grade.Credit;
  Alcotest.(check (option grade_testable)) "gap beyond int range" (Some Grade.Debt)
    (Known_peers.grade kp ~now:1e300 7);
  Alcotest.(check (option grade_testable)) "infinite gap" (Some Grade.Debt)
    (Known_peers.grade kp ~now:infinity 7)

let test_known_peers_update_resets_decay_clock () =
  let kp = Known_peers.create ~decay_period:100. in
  Known_peers.set kp ~now:0. 7 Grade.Credit;
  (* Touch at t=150: effective grade Even, clock restarts. *)
  Known_peers.raise_grade kp ~now:150. 7;
  Alcotest.(check (option grade_testable)) "raised from decayed value" (Some Grade.Credit)
    (Known_peers.grade kp ~now:150. 7);
  Alcotest.(check (option grade_testable)) "fresh clock" (Some Grade.Credit)
    (Known_peers.grade kp ~now:240. 7)

let test_known_peers_punish_forgets () =
  let kp = Known_peers.create ~decay_period:100. in
  Known_peers.set kp ~now:0. 7 Grade.Credit;
  Known_peers.punish kp ~now:1. 7;
  Alcotest.(check bool) "forgotten" false (Known_peers.known kp 7);
  Alcotest.(check (option grade_testable)) "treated as unknown" None
    (Known_peers.grade kp ~now:1. 7)

let test_known_peers_lower_unknown_enters_debt () =
  let kp = Known_peers.create ~decay_period:100. in
  Known_peers.lower kp ~now:0. 9;
  Alcotest.(check (option grade_testable)) "debt entry" (Some Grade.Debt)
    (Known_peers.grade kp ~now:0. 9)

let prop_known_peers_decay_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"effective grade never rises with time" ~count:200
       QCheck2.Gen.(triple (int_range 0 2) (float_range 0. 1000.) (float_range 0. 1000.))
       (fun (grade_idx, t1, dt) ->
         let kp = Known_peers.create ~decay_period:100. in
         let grade = List.nth [ Grade.Debt; Grade.Even; Grade.Credit ] grade_idx in
         Known_peers.set kp ~now:0. 7 grade;
         let at t = Option.get (Known_peers.grade kp ~now:t 7) in
         Grade.rank (at (t1 +. dt)) <= Grade.rank (at t1)))

let prop_grade_raise_lower_inverse =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"raise then lower never ends above start" ~count:100
       QCheck2.Gen.(int_range 0 2)
       (fun grade_idx ->
         let g = List.nth [ Grade.Debt; Grade.Even; Grade.Credit ] grade_idx in
         Grade.rank (Grade.lower (Grade.raise_grade g)) <= max (Grade.rank g) 1))

(* -- Introductions ---------------------------------------------------- *)

let test_introductions_consume () =
  let intros = Introductions.create ~max_outstanding:10 in
  Introductions.add intros ~introducer:1 ~introducee:2;
  Alcotest.(check bool) "consume succeeds" true (Introductions.consume intros ~introducee:2);
  Alcotest.(check bool) "consumed only once" false (Introductions.consume intros ~introducee:2)

let test_introductions_consume_wipes_related () =
  let intros = Introductions.create ~max_outstanding:10 in
  (* Introducer 1 vouches for 2 and 3; introducer 4 also vouches for 2. *)
  Introductions.add intros ~introducer:1 ~introducee:2;
  Introductions.add intros ~introducer:1 ~introducee:3;
  Introductions.add intros ~introducer:4 ~introducee:2;
  Alcotest.(check bool) "consume 2" true (Introductions.consume intros ~introducee:2);
  (* All of introducer 1's other introductions are forgotten, as are all
     other introductions of introducee 2. *)
  Alcotest.(check bool) "1's vouch for 3 gone" false (Introductions.consume intros ~introducee:3);
  Alcotest.(check int) "empty" 0 (Introductions.outstanding intros)

let test_introductions_cap () =
  let intros = Introductions.create ~max_outstanding:2 in
  Introductions.add intros ~introducer:1 ~introducee:2;
  Introductions.add intros ~introducer:3 ~introducee:4;
  Introductions.add intros ~introducer:5 ~introducee:6;
  Alcotest.(check int) "capped" 2 (Introductions.outstanding intros);
  Alcotest.(check bool) "over-cap introduction dropped" false
    (Introductions.consume intros ~introducee:6)

let test_introductions_duplicate_ignored () =
  let intros = Introductions.create ~max_outstanding:10 in
  Introductions.add intros ~introducer:1 ~introducee:2;
  Introductions.add intros ~introducer:1 ~introducee:2;
  Alcotest.(check int) "no duplicates" 1 (Introductions.outstanding intros)

let test_introductions_forget_introducer () =
  let intros = Introductions.create ~max_outstanding:10 in
  Introductions.add intros ~introducer:1 ~introducee:2;
  Introductions.add intros ~introducer:3 ~introducee:4;
  Introductions.forget_introducer intros 1;
  Alcotest.(check bool) "1's introductions gone" false (Introductions.consume intros ~introducee:2);
  Alcotest.(check bool) "3's remain" true (Introductions.consume intros ~introducee:4)

(* -- Admission -------------------------------------------------------- *)

let admission_cfg =
  { Config.default with Config.refractory_period = 100.; drop_unknown = 1.0; drop_debt = 1.0 }

let test_admission_unknown_all_dropped () =
  (* With drop probability 1, unknown peers never get in. *)
  let adm = Admission.create admission_cfg in
  let kp = Known_peers.create ~decay_period:1000. in
  match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:5 with
  | Admission.Dropped Admission.Random_drop -> ()
  | _ -> Alcotest.fail "expected random drop"

let test_admission_unknown_admitted_triggers_refractory () =
  let cfg = { admission_cfg with Config.drop_unknown = 0.0; drop_debt = 0.0 } in
  let adm = Admission.create cfg in
  let kp = Known_peers.create ~decay_period:1000. in
  (match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:5 with
  | Admission.Admitted `Unknown -> ()
  | _ -> Alcotest.fail "expected admission");
  Alcotest.(check bool) "in refractory" true (Admission.in_refractory adm ~now:50.);
  (* A second unknown invitation during the refractory period is dropped,
     whatever identity it claims. *)
  (match Admission.consider adm ~rng:(rng ()) ~now:50. ~known:kp ~identity:6 with
  | Admission.Dropped Admission.Refractory -> ()
  | _ -> Alcotest.fail "expected refractory drop");
  (* After the period ends, admissions resume. *)
  match Admission.consider adm ~rng:(rng ()) ~now:150. ~known:kp ~identity:6 with
  | Admission.Admitted `Unknown -> ()
  | _ -> Alcotest.fail "expected post-refractory admission"

let test_admission_even_bypasses_drops () =
  let adm = Admission.create admission_cfg in
  let kp = Known_peers.create ~decay_period:1000. in
  Known_peers.set kp ~now:0. 5 Grade.Even;
  match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:5 with
  | Admission.Admitted (`Known Grade.Even) -> ()
  | _ -> Alcotest.fail "expected even-grade admission"

let test_admission_known_rate_limit () =
  let adm = Admission.create admission_cfg in
  let kp = Known_peers.create ~decay_period:1000. in
  Known_peers.set kp ~now:0. 5 Grade.Credit;
  (match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:5 with
  | Admission.Admitted (`Known Grade.Credit) -> ()
  | _ -> Alcotest.fail "first admission");
  Alcotest.(check (option (float 1e-9)))
    "known admission recorded" (Some 0.) (Admission.last_admission adm 5);
  (* The global self-clocking window covers known peers too: a repeat
     invitation inside the refractory period is dropped before the
     per-identity slot is even consulted. *)
  (match Admission.consider adm ~rng:(rng ()) ~now:10. ~known:kp ~identity:5 with
  | Admission.Dropped Admission.Refractory -> ()
  | _ -> Alcotest.fail "expected refractory drop for repeat known peer");
  match Admission.consider adm ~rng:(rng ()) ~now:150. ~known:kp ~identity:5 with
  | Admission.Admitted (`Known Grade.Credit) -> ()
  | _ -> Alcotest.fail "slot refreshes after a period"

let test_admission_debt_gets_debt_drop_rate () =
  (* drop_debt = 0, drop_unknown = 1: a debt peer gets in where an unknown
     peer cannot. *)
  let cfg = { admission_cfg with Config.drop_debt = 0.0 } in
  let adm = Admission.create cfg in
  let kp = Known_peers.create ~decay_period:1000. in
  Known_peers.set kp ~now:0. 5 Grade.Debt;
  match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:5 with
  | Admission.Admitted (`Known Grade.Debt) -> ()
  | _ -> Alcotest.fail "expected debt-path admission"

let test_admission_introduction_bypass () =
  let adm = Admission.create admission_cfg in
  let kp = Known_peers.create ~decay_period:1000. in
  Introductions.add (Admission.introductions adm) ~introducer:9 ~introducee:5;
  (match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:5 with
  | Admission.Admitted `Introduced -> ()
  | _ -> Alcotest.fail "expected introduced admission");
  (* The introduction is consumed; next time the peer is unknown again. *)
  match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:5 with
  | Admission.Dropped _ -> ()
  | Admission.Admitted _ -> Alcotest.fail "introduction must not be reusable"

let test_admission_introduction_respects_refractory () =
  (* Regression for the reorder: introductions bypass only the random
     drops, never the refractory window. An introduced poller arriving
     mid-window is dropped, its introduction is NOT consumed, and the
     retry after the window succeeds with the same introduction. *)
  let cfg = { admission_cfg with Config.drop_unknown = 0.0 } in
  let adm = Admission.create cfg in
  let kp = Known_peers.create ~decay_period:1000. in
  (* Arm the refractory window with an unknown admission at t=0. *)
  (match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:7 with
  | Admission.Admitted `Unknown -> ()
  | _ -> Alcotest.fail "expected unknown admission");
  Introductions.add (Admission.introductions adm) ~introducer:9 ~introducee:5;
  (match Admission.consider adm ~rng:(rng ()) ~now:50. ~known:kp ~identity:5 with
  | Admission.Dropped Admission.Refractory -> ()
  | _ -> Alcotest.fail "introduced poller must not bypass refractory");
  (match Admission.consider adm ~rng:(rng ()) ~now:150. ~known:kp ~identity:5 with
  | Admission.Admitted `Introduced -> ()
  | _ -> Alcotest.fail "refractory drop must not consume the introduction");
  Alcotest.(check (option (float 1e-9)))
    "introduced admission recorded" (Some 150.) (Admission.last_admission adm 5)

let test_admission_introduction_rearms_refractory () =
  (* An introduced admission re-arms the self-clocking window like any
     other admission path. *)
  let adm = Admission.create admission_cfg in
  let kp = Known_peers.create ~decay_period:1000. in
  Introductions.add (Admission.introductions adm) ~introducer:9 ~introducee:5;
  (match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:5 with
  | Admission.Admitted `Introduced -> ()
  | _ -> Alcotest.fail "expected introduced admission");
  Alcotest.(check bool) "in refractory" true (Admission.in_refractory adm ~now:99.);
  Introductions.add (Admission.introductions adm) ~introducer:9 ~introducee:6;
  match Admission.consider adm ~rng:(rng ()) ~now:50. ~known:kp ~identity:6 with
  | Admission.Dropped Admission.Refractory -> ()
  | _ -> Alcotest.fail "second introduction inside the window must be dropped"

let test_admission_disabled_admits_everything () =
  let cfg = { admission_cfg with Config.admission_control_enabled = false } in
  let adm = Admission.create cfg in
  let kp = Known_peers.create ~decay_period:1000. in
  for i = 0 to 20 do
    match Admission.consider adm ~rng:(rng ()) ~now:0. ~known:kp ~identity:i with
    | Admission.Admitted _ -> ()
    | Admission.Dropped _ -> Alcotest.fail "ablation must admit all"
  done

let prop_admission_rate_bounded =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"unknown/debt admissions bounded by refractory" ~count:50
       QCheck2.Gen.(int_range 1 1000)
       (fun seed ->
         let cfg =
           { Config.default with Config.refractory_period = 100.; drop_unknown = 0.5; drop_debt = 0.5 }
         in
         let adm = Admission.create cfg in
         let kp = Known_peers.create ~decay_period:1e9 in
         let r = Rng.create seed in
         (* 1000 seconds, invitations every second from fresh identities:
            at most ceil(1000/100) + 1 admissions possible. *)
         let admitted = ref 0 in
         for now = 0 to 999 do
           match
             Admission.consider adm ~rng:r ~now:(float_of_int now) ~known:kp
               ~identity:(10_000 + now)
           with
           | Admission.Admitted _ -> incr admitted
           | Admission.Dropped _ -> ()
         done;
         !admitted <= 11))

(* -- Reference list --------------------------------------------------- *)

let test_reference_list_create_dedups () =
  let rl = Reference_list.create ~target:10 ~friends:[ 1; 2 ] ~initial:[ 2; 3; 3 ] in
  Alcotest.(check (list int)) "deduplicated" [ 1; 2; 3 ] (List.sort compare (Reference_list.members rl))

let test_reference_list_sample_excludes () =
  let rl = Reference_list.create ~target:10 ~friends:[] ~initial:[ 1; 2; 3; 4; 5 ] in
  let s = Reference_list.sample rl ~rng:(rng ()) ~count:10 ~excluding:[ 1; 2 ] in
  Alcotest.(check (list int)) "excluded absent" [ 3; 4; 5 ] (List.sort compare s)

let test_reference_list_update_rule () =
  let rl = Reference_list.create ~target:4 ~friends:[ 9 ] ~initial:[ 1; 2; 3; 4 ] in
  Reference_list.update rl ~rng:(rng ()) ~voted:[ 1; 2 ] ~agreeing_outer:[ 7 ]
    ~fallback:[ 5; 6 ];
  let members = Reference_list.members rl in
  Alcotest.(check bool) "voted removed" false
    (Reference_list.mem rl 1 || Reference_list.mem rl 2);
  Alcotest.(check bool) "agreeing outer inserted" true (Reference_list.mem rl 7);
  Alcotest.(check bool) "topped up to target" true (List.length members >= 4)

let test_reference_list_insert_remove () =
  let rl = Reference_list.create ~target:4 ~friends:[] ~initial:[ 1 ] in
  Reference_list.insert rl 2;
  Reference_list.insert rl 2;
  Alcotest.(check int) "idempotent insert" 2 (Reference_list.size rl);
  Reference_list.remove rl 2;
  Alcotest.(check bool) "removed" false (Reference_list.mem rl 2)

let test_reference_list_empty_friends_update () =
  (* Regression: a peer whose friends list has drained used to request a
     >= 1-element sample from an empty list; the friend-bias step must
     now be a well-defined no-op while removal, insertion and fallback
     top-up still apply. *)
  let rl = Reference_list.create ~target:4 ~friends:[] ~initial:[ 1; 2; 3; 4 ] in
  Reference_list.update rl ~rng:(rng ()) ~voted:[ 1; 2 ] ~agreeing_outer:[ 9 ]
    ~fallback:[ 5; 6; 7 ];
  Alcotest.(check bool) "voted removed" false
    (Reference_list.mem rl 1 || Reference_list.mem rl 2);
  Alcotest.(check bool) "agreeing outer inserted" true (Reference_list.mem rl 9);
  Alcotest.(check int) "topped back up to target" 4 (Reference_list.size rl);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "member %d from initial/outer/fallback" m)
        true
        (List.mem m [ 3; 4; 5; 6; 7; 9 ]))
    (Reference_list.members rl)

(* The compact representation (flat int arrays + bitset membership) must
   be observationally identical to the plain-list bookkeeping it
   replaced: same member order after any prepend/remove interleaving,
   and same seeded sample results. The model below IS the old
   implementation, element for element. *)
let prop_id_set_models_list =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"compact reference list agrees with list model" ~count:500
       QCheck2.Gen.(
         triple (int_range 1 1_000_000)
           (list_size (int_range 0 20) (int_range 0 50))
           (list_size (int_range 0 80) (pair (int_range 0 1) (int_range 0 50))))
       (fun (seed, initial, ops) ->
         let rl =
           Reference_list.create ~target:12 ~friends:[] ~initial
         in
         (* Old representation: sort_uniq of initial, prepend on insert,
            order-preserving filter on remove. *)
         let model = ref (List.sort_uniq Ids.Identity.compare initial) in
         List.iter
           (fun (op, x) ->
             match op with
             | 0 ->
               Reference_list.insert rl x;
               if not (List.mem x !model) then model := x :: !model
             | _ ->
               Reference_list.remove rl x;
               model := List.filter (fun m -> m <> x) !model)
           ops;
         let members = Reference_list.members rl in
         let r1 = Rng.create seed and r2 = Rng.create seed in
         let sampled_compact = Reference_list.nominate rl ~rng:r1 ~count:5 in
         let sampled_model = Rng.sample r2 5 !model in
         members = !model
         && Reference_list.size rl = List.length !model
         && List.for_all (fun m -> Reference_list.mem rl m) !model
         && List.for_all (fun x -> List.mem x !model || not (Reference_list.mem rl x))
              (List.init 51 Fun.id)
         && sampled_compact = sampled_model))

let prop_known_peers_sorted_ids_model =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"known-peers entries agree with per-id grades" ~count:300
       QCheck2.Gen.(
         list_size (int_range 0 60) (triple (int_range 0 3) (int_range 0 40) (float_range 0. 5000.)))
       (fun ops ->
         let kp = Known_peers.create ~decay_period:1000. in
         (* Timestamps must be non-decreasing like simulation time. *)
         let now = ref 0. in
         List.iter
           (fun (op, id, dt) ->
             now := !now +. dt;
             match op with
             | 0 -> Known_peers.raise_grade kp ~now:!now id
             | 1 -> Known_peers.lower kp ~now:!now id
             | 2 -> Known_peers.punish kp ~now:!now id
             | _ -> Known_peers.set kp ~now:!now id Grade.Credit)
           ops;
         let entries = Known_peers.entries kp ~now:!now in
         (* Reference: every id's grade through the public point lookup,
            ascending — what the fold-and-sort implementation returned. *)
         let reference =
           List.filter_map
             (fun id ->
               Option.map (fun g -> (id, g)) (Known_peers.grade kp ~now:!now id))
             (List.init 41 Fun.id)
         in
         let good = Known_peers.good_ids kp ~now:!now ~excluding:7 in
         let good_reference =
           List.filter_map
             (fun (id, g) ->
               if id <> 7 && g <> Grade.Debt then Some id else None)
             entries
         in
         entries = reference && good = good_reference))

let prop_merged_with_friends_is_sort_uniq =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"fallback merge equals sort_uniq of concat" ~count:300
       QCheck2.Gen.(
         pair (list_size (int_range 0 8) (int_range 0 40))
           (list_size (int_range 0 30) (int_range 0 40)))
       (fun (friends, ids) ->
         let rl = Reference_list.create ~target:12 ~friends ~initial:[] in
         let ascending = List.sort_uniq Ids.Identity.compare ids in
         Reference_list.merged_with_friends rl ascending
         = List.sort_uniq Ids.Identity.compare (ascending @ friends)))

let prop_reference_list_update_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"reference-list update removes voted, keeps size" ~count:200
       QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 10))
       (fun (seed, voted_count) ->
         let r = Rng.create seed in
         let population = List.init 40 (fun i -> i) in
         let friends = Rng.sample r 4 population in
         let initial = Rng.sample r 12 population in
         let rl = Reference_list.create ~target:12 ~friends ~initial in
         let voted = Rng.sample r voted_count (Reference_list.members rl) in
         let outer = Rng.sample r 3 population in
         Reference_list.update rl ~rng:r ~voted ~agreeing_outer:outer ~fallback:population;
         let members = Reference_list.members rl in
         List.length members >= 12
         && List.for_all (fun o -> Reference_list.mem rl o) outer
         && List.length (List.sort_uniq compare members) = List.length members))

(* -- Config ----------------------------------------------------------- *)

let test_config_default_valid () = Config.validate Config.default

let test_config_rejects_bad_quorum () =
  Alcotest.(check bool) "landslide margin too big" true
    (try
       Config.validate { Config.default with Config.quorum = 4; max_disagree = 2 };
       false
     with Invalid_argument _ -> true)

let test_config_rejects_tiny_population () =
  Alcotest.(check bool) "inner circle exceeds peers" true
    (try
       Config.validate { Config.default with Config.loyal_peers = 10 };
       false
     with Invalid_argument _ -> true)

let test_config_effort_split () =
  let cfg = Config.default in
  check_float "intro + remaining = total"
    (Config.solicitation_effort cfg)
    (Config.intro_effort cfg +. Config.remaining_effort cfg);
  Alcotest.(check bool) "intro is the 20% share" true
    (Float.abs ((Config.intro_effort cfg /. Config.solicitation_effort cfg) -. 0.20) < 1e-9)

let test_config_effort_balances () =
  (* The poller's provable effort must exceed the voter's cost to produce
     the vote — the heart of effort balancing. *)
  let cfg = Config.default in
  Alcotest.(check bool) "solicitation effort covers vote work" true
    (Config.solicitation_effort cfg > Config.vote_work cfg)

let test_config_au_bytes () =
  Alcotest.(check int) "au size" (Config.default.Config.au_blocks * Config.default.Config.block_bytes)
    (Config.au_bytes Config.default)

(* -- Message ---------------------------------------------------------- *)

let test_message_sizes () =
  let cfg = Config.default in
  let vote = make_vote 1 in
  let mk payload = { Message.identity = 1; au = 0; payload } in
  let poll = Message.wire_bytes cfg (mk (Message.Poll { poll_id = 1; intro = vote.Vote.proof })) in
  let vote_bytes = Message.wire_bytes cfg (mk (Message.Vote_msg { poll_id = 1; vote })) in
  let repair = Message.wire_bytes cfg (mk (Message.Repair { poll_id = 1; block = 0; version = 0 })) in
  Alcotest.(check bool) "vote much larger than poll" true (vote_bytes > poll);
  Alcotest.(check bool) "repair carries a block" true (repair > cfg.Config.block_bytes)

(* -- Metrics ---------------------------------------------------------- *)

let test_metrics_access_failure_integral () =
  let m = Metrics.create ~replicas:10 ~start:0. in
  (* One of ten replicas damaged for half the horizon. *)
  Metrics.on_replica_damaged m ~now:0.;
  Metrics.on_replica_repaired m ~now:50.;
  let s = Metrics.finalize m ~now:100. in
  check_float "afp = (1 damaged * 50s) / (10 replicas * 100s)" 0.05
    s.Metrics.access_failure_probability

let test_metrics_open_damage_counts () =
  let m = Metrics.create ~replicas:2 ~start:0. in
  Metrics.on_replica_damaged m ~now:50.;
  let s = Metrics.finalize m ~now:100. in
  (* 1 damaged of 2 replicas for the last half of the horizon. *)
  check_float "still-damaged replica integrates to the end" 0.25
    s.Metrics.access_failure_probability

let test_metrics_success_gaps () =
  let m = Metrics.create ~replicas:2 ~start:0. in
  Metrics.on_poll_concluded m ~peer:0 ~au:0 ~now:100. Metrics.Success;
  Metrics.on_poll_concluded m ~peer:0 ~au:0 ~now:300. Metrics.Success;
  Metrics.on_poll_concluded m ~peer:1 ~au:0 ~now:50. Metrics.Success;
  Metrics.on_poll_concluded m ~peer:1 ~au:0 ~now:150. Metrics.Success;
  let s = Metrics.finalize m ~now:400. in
  Alcotest.(check int) "successes" 4 s.Metrics.polls_succeeded;
  check_float "mean gap of 200 and 100" 150. s.Metrics.mean_success_gap

let test_metrics_no_success_gap_is_infinite () =
  let m = Metrics.create ~replicas:1 ~start:0. in
  Metrics.on_poll_concluded m ~peer:0 ~au:0 ~now:10. Metrics.Inquorate;
  let s = Metrics.finalize m ~now:100. in
  Alcotest.(check bool) "gap infinite" true (s.Metrics.mean_success_gap = infinity);
  Alcotest.(check bool) "effort/success infinite" true
    (s.Metrics.effort_per_successful_poll = infinity);
  Alcotest.(check int) "inquorate counted" 1 s.Metrics.polls_inquorate

let test_metrics_effort_accounting () =
  let m = Metrics.create ~replicas:1 ~start:0. in
  Metrics.charge_loyal m 10.;
  Metrics.charge_loyal m 5.;
  Metrics.charge_adversary m 30.;
  Metrics.on_poll_concluded m ~peer:0 ~au:0 ~now:10. Metrics.Success;
  let s = Metrics.finalize m ~now:100. in
  check_float "loyal" 15. s.Metrics.loyal_effort;
  check_float "adversary" 30. s.Metrics.adversary_effort;
  check_float "per success" 15. s.Metrics.effort_per_successful_poll

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lockss-units"
    [
      ( "grade",
        [
          quick "raise" test_grade_raise;
          quick "lower" test_grade_lower;
          quick "decay" test_grade_decay;
          quick "rank order" test_grade_rank_order;
        ] );
      ( "replica",
        [
          quick "pristine" test_replica_pristine;
          quick "damage and repair" test_replica_damage_and_repair;
          quick "bad repair version" test_replica_write_bad_version_keeps_damage;
          quick "bounds" test_replica_bounds_checked;
          quick "damage version zero" test_replica_damage_version_zero_rejected;
          QCheck_alcotest.to_alcotest prop_replica_damage_then_repair_roundtrips;
        ] );
      ( "vote",
        [
          quick "versions" test_vote_versions;
          quick "agreement" test_vote_agreement;
          quick "bogus votes" test_bogus_vote_never_agrees;
          quick "wire size" test_vote_wire_bytes_scale;
        ] );
      ( "real content",
        [
          quick "identical replicas agree" test_content_identical_replicas_agree;
          quick "divergence finds first damage" test_content_divergence_finds_first_damage;
          quick "repair restores agreement" test_content_repair_restores_agreement;
          quick "nonce binds votes" test_content_nonce_binds_votes;
          prop_content_symbolic_model_faithful;
        ] );
      ( "tally",
        [
          quick "landslide agree" test_tally_landslide_agree;
          quick "landslide disagree" test_tally_landslide_disagree;
          quick "inconclusive" test_tally_inconclusive;
          quick "empty rejected" test_tally_no_votes_rejected;
          quick "blocks to inspect" test_tally_blocks_to_inspect;
          quick "bogus inspection" test_tally_bogus_forces_inspection;
          quick "overall agreement" test_tally_agrees_overall;
          QCheck_alcotest.to_alcotest prop_tally_permutation_invariant;
        ] );
      ( "known peers",
        [
          quick "lifecycle" test_known_peers_lifecycle;
          quick "decay" test_known_peers_decay;
          quick "decay huge gap clamped" test_known_peers_decay_huge_gap_clamped;
          quick "decay clock reset" test_known_peers_update_resets_decay_clock;
          quick "punish forgets" test_known_peers_punish_forgets;
          quick "lower unknown" test_known_peers_lower_unknown_enters_debt;
          prop_known_peers_decay_monotone;
          prop_grade_raise_lower_inverse;
          prop_known_peers_sorted_ids_model;
        ] );
      ( "introductions",
        [
          quick "consume" test_introductions_consume;
          quick "consume wipes related" test_introductions_consume_wipes_related;
          quick "cap" test_introductions_cap;
          quick "duplicates" test_introductions_duplicate_ignored;
          quick "forget introducer" test_introductions_forget_introducer;
        ] );
      ( "admission",
        [
          quick "unknown dropped" test_admission_unknown_all_dropped;
          quick "refractory trigger" test_admission_unknown_admitted_triggers_refractory;
          quick "even bypasses drops" test_admission_even_bypasses_drops;
          quick "known rate limit" test_admission_known_rate_limit;
          quick "debt drop rate" test_admission_debt_gets_debt_drop_rate;
          quick "introduction bypass" test_admission_introduction_bypass;
          quick "introduction respects refractory"
            test_admission_introduction_respects_refractory;
          quick "introduction re-arms refractory"
            test_admission_introduction_rearms_refractory;
          quick "disabled admits all" test_admission_disabled_admits_everything;
          prop_admission_rate_bounded;
        ] );
      ( "reference list",
        [
          quick "create dedups" test_reference_list_create_dedups;
          quick "sample excludes" test_reference_list_sample_excludes;
          quick "update rule" test_reference_list_update_rule;
          quick "insert/remove" test_reference_list_insert_remove;
          quick "empty friends update" test_reference_list_empty_friends_update;
          prop_reference_list_update_invariants;
          prop_id_set_models_list;
          prop_merged_with_friends_is_sort_uniq;
        ] );
      ( "config",
        [
          quick "default valid" test_config_default_valid;
          quick "bad quorum" test_config_rejects_bad_quorum;
          quick "tiny population" test_config_rejects_tiny_population;
          quick "effort split" test_config_effort_split;
          quick "effort balances" test_config_effort_balances;
          quick "au bytes" test_config_au_bytes;
        ] );
      ("message", [ quick "wire sizes" test_message_sizes ]);
      ( "metrics",
        [
          quick "access failure integral" test_metrics_access_failure_integral;
          quick "open damage" test_metrics_open_damage_counts;
          quick "success gaps" test_metrics_success_gaps;
          quick "no successes" test_metrics_no_success_gap_is_infinite;
          quick "effort accounting" test_metrics_effort_accounting;
        ] );
    ]
