(* Tests for the effort substrate: cost model, MBF proofs, task
   schedule. *)

module Cost_model = Effort.Cost_model
module Proof = Effort.Proof
module Task_schedule = Effort.Task_schedule
module Rng = Repro_prelude.Rng

let check_float = Alcotest.(check (float 1e-9))

(* -- Cost model ------------------------------------------------------- *)

let test_hash_seconds_linear () =
  let cm = Cost_model.default in
  let one = Cost_model.hash_seconds cm ~bytes:1_000_000 in
  let ten = Cost_model.hash_seconds cm ~bytes:10_000_000 in
  check_float "linear in bytes" (10. *. one) ten;
  Alcotest.(check bool) "positive" true (one > 0.)

let test_verify_cheaper_than_generate () =
  let cm = Cost_model.default in
  let generation_cost = 100. in
  let verify = Cost_model.mbf_verify_seconds cm ~generation_cost in
  Alcotest.(check bool) "verification is cheaper" true (verify < generation_cost);
  check_float "speedup factor" (generation_cost /. cm.Cost_model.mbf_verify_speedup) verify

(* -- Proofs ----------------------------------------------------------- *)

let test_proof_meets () =
  let rng = Rng.create 3 in
  let p = Proof.generate ~rng ~cost:10. in
  Alcotest.(check bool) "meets its own cost" true (Proof.meets p ~required:10.);
  Alcotest.(check bool) "meets less" true (Proof.meets p ~required:5.);
  Alcotest.(check bool) "fails more" false (Proof.meets p ~required:10.5);
  check_float "cost" 10. (Proof.cost p)

let test_proof_negative_cost_rejected () =
  let rng = Rng.create 3 in
  Alcotest.(check bool) "negative cost raises" true
    (try
       ignore (Proof.generate ~rng ~cost:(-1.));
       false
     with Invalid_argument _ -> true)

let test_forged_proof_never_meets () =
  let p = Proof.forged ~claimed_cost:1000. in
  Alcotest.(check bool) "forged fails" false (Proof.meets p ~required:1.);
  Alcotest.(check bool) "not genuine" false (Proof.is_genuine p)

let test_receipt_matching () =
  let rng = Rng.create 5 in
  let p = Proof.generate ~rng ~cost:1. in
  Alcotest.(check bool) "byproduct matches itself" true
    (Proof.receipt_matches p ~receipt:(Proof.byproduct p));
  Alcotest.(check bool) "wrong receipt rejected" false
    (Proof.receipt_matches p ~receipt:(1L, 2L));
  let q = Proof.generate ~rng ~cost:1. in
  Alcotest.(check bool) "other proof's byproduct rejected" false
    (Proof.receipt_matches p ~receipt:(Proof.byproduct q))

let test_forged_receipt_never_matches () =
  let p = Proof.forged ~claimed_cost:1. in
  Alcotest.(check bool) "forged byproduct is unusable" false
    (Proof.receipt_matches p ~receipt:(Proof.byproduct p))

let prop_byproducts_unique =
  QCheck2.Test.make ~name:"byproducts are effectively unique" ~count:50
    QCheck2.Gen.small_int (fun seed ->
      let rng = Rng.create seed in
      let a = Proof.generate ~rng ~cost:1. and b = Proof.generate ~rng ~cost:1. in
      Proof.byproduct a <> Proof.byproduct b)

(* -- Memory-bound function --------------------------------------------- *)

module Mbf = Effort.Mbf

let mbf_table = lazy (Mbf.make_table ~seed:77 ~size_log2:12)

let test_mbf_genuine_verifies () =
  let table = Lazy.force mbf_table in
  let p = Mbf.generate table ~nonce:42L ~paths:16 ~path_length:100 in
  Alcotest.(check bool) "verifies fully" true (Mbf.verify table ~nonce:42L ~sample:16 p);
  Alcotest.(check bool) "verifies sampled" true (Mbf.verify table ~nonce:42L ~sample:3 p);
  Alcotest.(check int) "paths" 16 (Mbf.paths p)

let test_mbf_deterministic () =
  let table = Lazy.force mbf_table in
  let a = Mbf.generate table ~nonce:42L ~paths:8 ~path_length:50 in
  let b = Mbf.generate table ~nonce:42L ~paths:8 ~path_length:50 in
  Alcotest.(check int64) "byproduct reproducible" (Mbf.byproduct a) (Mbf.byproduct b)

let test_mbf_nonce_binds () =
  let table = Lazy.force mbf_table in
  let p = Mbf.generate table ~nonce:42L ~paths:8 ~path_length:50 in
  Alcotest.(check bool) "different nonce rejects" false
    (Mbf.verify table ~nonce:43L ~sample:8 p);
  Alcotest.(check bool) "byproducts differ across nonces" false
    (Int64.equal (Mbf.byproduct p)
       (Mbf.byproduct (Mbf.generate table ~nonce:43L ~paths:8 ~path_length:50)))

let test_mbf_forgery_rejected () =
  let table = Lazy.force mbf_table in
  let f = Mbf.forge ~paths:16 in
  Alcotest.(check bool) "forgery rejected" false (Mbf.verify table ~nonce:42L ~sample:4 f)

let test_mbf_table_must_match () =
  let table = Lazy.force mbf_table in
  let other = Mbf.make_table ~seed:78 ~size_log2:12 in
  let p = Mbf.generate table ~nonce:42L ~paths:8 ~path_length:50 in
  Alcotest.(check bool) "wrong table rejects" false (Mbf.verify other ~nonce:42L ~sample:8 p)

let prop_mbf_roundtrip =
  QCheck2.Test.make ~name:"mbf generate/verify roundtrip" ~count:25
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 200))
    (fun (paths, path_length) ->
      let table = Lazy.force mbf_table in
      let nonce = Int64.of_int (paths * 1000 + path_length) in
      let p = Mbf.generate table ~nonce ~paths ~path_length in
      Mbf.verify table ~nonce ~sample:paths p)

(* -- SHA-1 -------------------------------------------------------------- *)

module Sha1 = Effort.Sha1

let sha1_hex s = Sha1.to_hex (Sha1.digest s)

let test_sha1_rfc_vectors () =
  Alcotest.(check string) "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (sha1_hex "");
  Alcotest.(check string) "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (sha1_hex "abc");
  Alcotest.(check string) "two-block message"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (sha1_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Alcotest.(check string) "fox" "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
    (sha1_hex "The quick brown fox jumps over the lazy dog")

let test_sha1_million_a () =
  Alcotest.(check string) "10^6 x a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (sha1_hex (String.make 1_000_000 'a'))

let test_sha1_streaming_matches_oneshot () =
  let whole = sha1_hex "hello world, block by block" in
  let ctx = Sha1.init () in
  let ctx = Sha1.feed ctx "hello world" in
  let ctx = Sha1.feed ctx ", block" in
  let ctx = Sha1.feed ctx " by block" in
  Alcotest.(check string) "chunked = oneshot" whole (Sha1.to_hex (Sha1.peek ctx))

let test_sha1_peek_is_pure () =
  let ctx = Sha1.feed (Sha1.init ()) "ab" in
  let before = Sha1.to_hex (Sha1.peek ctx) in
  let _ = Sha1.peek ctx in
  Alcotest.(check string) "peek does not disturb the stream" before
    (Sha1.to_hex (Sha1.peek ctx));
  let ctx' = Sha1.feed ctx "c" in
  Alcotest.(check string) "stream continues correctly"
    "a9993e364706816aba3e25717850c26c9cd0d89d"
    (Sha1.to_hex (Sha1.peek ctx'))

let test_sha1_chunked_feed_boundaries () =
  (* Regression: feed used to re-buffer the whole pending prefix on each
     call (quadratic in chunk count) and the rewrite compresses full
     blocks straight from the input, so every path through the 64-byte
     block boundary — sub-block, one-less, exact, one-more — must match
     the one-shot digest. *)
  let message =
    String.init 1000 (fun i -> Char.chr (((i * 37) + (i / 7)) land 0xff))
  in
  let whole = sha1_hex message in
  List.iter
    (fun chunk ->
      let ctx = ref (Sha1.init ()) in
      let pos = ref 0 in
      while !pos < String.length message do
        let len = min chunk (String.length message - !pos) in
        ctx := Sha1.feed !ctx (String.sub message !pos len);
        pos := !pos + len
      done;
      Alcotest.(check string)
        (Printf.sprintf "%d-byte chunks = oneshot" chunk)
        whole
        (Sha1.to_hex (Sha1.peek !ctx)))
    [ 1; 63; 64; 65; 128; 1000 ]

let prop_sha1_injective_in_practice =
  QCheck2.Test.make ~name:"distinct short strings hash distinctly" ~count:200
    QCheck2.Gen.(pair string_small string_small)
    (fun (a, b) -> a = b || Sha1.digest a <> Sha1.digest b)

(* -- Task schedule ---------------------------------------------------- *)

let test_schedule_idle_accepts () =
  let s = Task_schedule.create ~capacity:1. in
  Alcotest.(check bool) "fits" true
    (Task_schedule.can_accept s ~now:0. ~work:10. ~deadline:10.);
  Alcotest.(check bool) "too tight" false
    (Task_schedule.can_accept s ~now:0. ~work:10. ~deadline:9.9)

let test_schedule_fifo_queueing () =
  let s = Task_schedule.create ~capacity:1. in
  let r1 = Task_schedule.reserve s ~now:0. ~work:5. ~deadline:100. in
  (match r1 with
  | Some (_, finish) -> check_float "first finishes at 5" 5. finish
  | None -> Alcotest.fail "first reservation refused");
  match Task_schedule.reserve s ~now:0. ~work:5. ~deadline:100. with
  | Some (_, finish) -> check_float "second queues behind" 10. finish
  | None -> Alcotest.fail "second reservation refused"

let test_schedule_deadline_refusal () =
  let s = Task_schedule.create ~capacity:1. in
  ignore (Task_schedule.reserve s ~now:0. ~work:8. ~deadline:100.);
  Alcotest.(check (option unit)) "overcommitted work refused" None
    (Option.map (fun _ -> ()) (Task_schedule.reserve s ~now:0. ~work:5. ~deadline:10.))

let test_schedule_capacity_speedup () =
  let s = Task_schedule.create ~capacity:2. in
  match Task_schedule.reserve s ~now:0. ~work:10. ~deadline:100. with
  | Some (_, finish) -> check_float "double speed halves time" 5. finish
  | None -> Alcotest.fail "refused"

let test_schedule_drains_with_time () =
  let s = Task_schedule.create ~capacity:1. in
  ignore (Task_schedule.reserve s ~now:0. ~work:10. ~deadline:100.);
  check_float "busy until 10" 10. (Task_schedule.backlog_end s ~now:0.);
  check_float "idle by 20" 20. (Task_schedule.backlog_end s ~now:20.);
  check_float "no residual work" 0. (Task_schedule.reserved_work s ~now:20.)

let test_schedule_cancellation_frees_capacity () =
  let s = Task_schedule.create ~capacity:1. in
  let r, _ =
    match Task_schedule.reserve s ~now:0. ~work:10. ~deadline:100. with
    | Some x -> x
    | None -> Alcotest.fail "refused"
  in
  Task_schedule.cancel s ~now:0. r;
  check_float "capacity freed" 0. (Task_schedule.reserved_work s ~now:0.);
  Task_schedule.cancel s ~now:0. r;
  check_float "double cancel harmless" 0. (Task_schedule.reserved_work s ~now:0.)

let test_schedule_cancel_after_execution_window () =
  let s = Task_schedule.create ~capacity:1. in
  let r, _ =
    match Task_schedule.reserve s ~now:0. ~work:10. ~deadline:100. with
    | Some x -> x
    | None -> Alcotest.fail "refused"
  in
  (* By now=50 the work already ran; cancelling must not rewind time. *)
  Task_schedule.cancel s ~now:50. r;
  check_float "queue not rewound below now" 50. (Task_schedule.backlog_end s ~now:50.)

let test_schedule_unchecked_always_books () =
  let s = Task_schedule.create ~capacity:1. in
  let _, f1 = Task_schedule.reserve_unchecked s ~now:0. ~work:1000. in
  check_float "books regardless" 1000. f1;
  Alcotest.(check bool) "later checked reservation sees backlog" false
    (Task_schedule.can_accept s ~now:0. ~work:1. ~deadline:500.)

let prop_reservations_never_overlap_capacity =
  QCheck2.Test.make ~name:"completion times are consistent with capacity" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.1 10.))
    (fun works ->
      let s = Task_schedule.create ~capacity:1. in
      let total = List.fold_left ( +. ) 0. works in
      let finishes =
        List.map
          (fun work ->
            match Task_schedule.reserve s ~now:0. ~work ~deadline:infinity with
            | Some (_, f) -> f
            | None -> nan)
          works
      in
      let last = List.fold_left Float.max 0. finishes in
      (* Work is serialised: the last completion equals the total work. *)
      Float.abs (last -. total) < 1e-6
      && List.for_all (fun f -> Float.is_finite f) finishes)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "effort"
    [
      ( "cost model",
        [
          quick "hash linear" test_hash_seconds_linear;
          quick "verify cheaper" test_verify_cheaper_than_generate;
        ] );
      ( "proofs",
        [
          quick "meets" test_proof_meets;
          quick "negative cost" test_proof_negative_cost_rejected;
          quick "forged never meets" test_forged_proof_never_meets;
          quick "receipt matching" test_receipt_matching;
          quick "forged receipt" test_forged_receipt_never_matches;
          QCheck_alcotest.to_alcotest prop_byproducts_unique;
        ] );
      ( "memory-bound function",
        [
          quick "genuine verifies" test_mbf_genuine_verifies;
          quick "deterministic" test_mbf_deterministic;
          quick "nonce binds" test_mbf_nonce_binds;
          quick "forgery rejected" test_mbf_forgery_rejected;
          quick "table binds" test_mbf_table_must_match;
          QCheck_alcotest.to_alcotest prop_mbf_roundtrip;
        ] );
      ( "sha1",
        [
          quick "rfc vectors" test_sha1_rfc_vectors;
          Alcotest.test_case "million a" `Slow test_sha1_million_a;
          quick "streaming" test_sha1_streaming_matches_oneshot;
          quick "chunk boundaries" test_sha1_chunked_feed_boundaries;
          quick "peek pure" test_sha1_peek_is_pure;
          QCheck_alcotest.to_alcotest prop_sha1_injective_in_practice;
        ] );
      ( "task schedule",
        [
          quick "idle accepts" test_schedule_idle_accepts;
          quick "fifo queueing" test_schedule_fifo_queueing;
          quick "deadline refusal" test_schedule_deadline_refusal;
          quick "capacity speedup" test_schedule_capacity_speedup;
          quick "drains with time" test_schedule_drains_with_time;
          quick "cancellation frees capacity" test_schedule_cancellation_frees_capacity;
          quick "cancel after execution" test_schedule_cancel_after_execution_window;
          quick "unchecked reservations" test_schedule_unchecked_always_books;
          QCheck_alcotest.to_alcotest prop_reservations_never_overlap_capacity;
        ] );
    ]
