(* Tests for the observability layer: JSON round-trips, trace sinks and
   the ring recorder, the metrics registry, the time-series writer, the
   periodic sampler, engine profiling stats and the hardened metric
   transitions. *)

module Duration = Repro_prelude.Duration
module Engine = Narses.Engine
module Json = Obs.Json
module Registry = Obs.Registry
module Series = Obs.Series
open Lockss

(* -- Json --------------------------------------------------------------- *)

let test_json_round_trip () =
  let value =
    Json.Assoc
      [
        ("i", Json.Int 42);
        ("f", Json.Float 1.5);
        ("s", Json.String "with \"quotes\", commas\nand newlines");
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int (-2); Json.Float 0.25 ]);
        ("o", Json.Assoc [ ("nested", Json.Bool false) ]);
      ]
  in
  match Json.of_string (Json.to_string value) with
  | Ok parsed -> Alcotest.(check bool) "round trip" true (parsed = value)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,]"; "{\"a\" 1}"; "nulll"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

let test_json_numbers () =
  (match Json.of_string "-17" with
  | Ok (Json.Int -17) -> ()
  | _ -> Alcotest.fail "int literal");
  (match Json.of_string "2.5e3" with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "exp float" 2500. f
  | _ -> Alcotest.fail "float literal");
  match Json.of_string "604800" with
  | Ok v -> Alcotest.(check (float 0.)) "to_float widens" 604800. (Option.get (Json.to_float v))
  | Error msg -> Alcotest.failf "parse: %s" msg

let test_json_escapes () =
  let s = "tab\tnewline\ncr\rquote\"backslash\\ctrl\x01\x1f" in
  (match Json.of_string (Json.to_string (Json.String s)) with
  | Ok (Json.String s') -> Alcotest.(check string) "escaped string survives" s s'
  | _ -> Alcotest.fail "string round trip");
  (* Control characters must leave the line printable (escaped, not raw). *)
  String.iter
    (fun c ->
      if Char.code c < 0x20 then Alcotest.failf "raw control char %C in output" c)
    (Json.to_string (Json.String s))

let test_json_non_finite_floats () =
  List.iter
    (fun f ->
      Alcotest.(check string) "non-finite renders null" "null"
        (Json.to_string (Json.Float f)))
    [ nan; infinity; neg_infinity ];
  match Json.of_string (Json.to_string (Json.List [ Json.Float nan; Json.Int 1 ])) with
  | Ok (Json.List [ Json.Null; Json.Int 1 ]) -> ()
  | _ -> Alcotest.fail "nan inside a list becomes null"

let test_json_deep_nesting () =
  let rec build depth =
    if depth = 0 then Json.Int 7
    else Json.Assoc [ ("child", Json.List [ build (depth - 1); Json.String "x" ]) ]
  in
  let v = build 40 in
  match Json.of_string (Json.to_string v) with
  | Ok parsed -> Alcotest.(check bool) "deep structure" true (parsed = v)
  | Error msg -> Alcotest.failf "parse: %s" msg

(* -- Trace taxonomy, round-trip, sinks ---------------------------------- *)

let sample_events =
  [
    Trace.Poll_started { poller = 3; au = 1; poll_id = 7; inner_candidates = 9 };
    Trace.Solicitation_sent { poller = 3; voter = 5; au = 1; poll_id = 7; attempt = 2 };
    Trace.Invitation_dropped
      { voter = 5; claimed = 12; au = 0; poll_id = 4; reason = Admission.Refractory };
    Trace.Invitation_admitted
      {
        voter = 5;
        claimed = 3;
        au = 1;
        poll_id = Some 7;
        path = Trace.Admitted_known Grade.Even;
      };
    Trace.Invitation_refused { voter = 5; poller = 3; au = 1; poll_id = 7 };
    Trace.Invitation_accepted { voter = 5; poller = 3; au = 1; poll_id = 7 };
    Trace.Vote_sent { voter = 5; poller = 3; au = 1; poll_id = 7 };
    Trace.Poll_sampled
      { poller = 3; au = 1; poll_id = 7; invited = [ 5; 6 ]; reference = [ 5; 6; 8 ] };
    Trace.Evaluation_started { poller = 3; au = 1; poll_id = 7; votes = 6 };
    Trace.Repair_applied
      { poller = 3; au = 1; poll_id = 7; block = 4; version = 99; clean = true };
    Trace.Poll_concluded { poller = 3; au = 1; poll_id = 7; outcome = Metrics.Alarmed };
    Trace.Effort_charged
      {
        peer = 5;
        role = Trace.Loyal;
        phase = Trace.Voting;
        poller = Some 3;
        au = Some 1;
        poll_id = Some 7;
        seconds = 432.5;
      };
    Trace.Effort_received
      { peer = 3; from_ = 5; phase = Trace.Voting; au = 1; poll_id = 7; seconds = 12.25 };
    Trace.Message_rejected
      {
        peer = 3;
        from_ = 5;
        au = 1;
        poll_id = Some 7;
        msg_kind = "vote";
        reason = Trace.Uninvited;
      };
    Trace.Fault_dropped { src = 3; dst = 5 };
    Trace.Fault_duplicated { src = 3; dst = 5 };
    Trace.Fault_delayed { src = 3; dst = 5; extra = 0.25 };
    Trace.Partition_dropped { src = 3; dst = 5 };
    Trace.Fault_corrupted { src = 3; dst = 5 };
    Trace.Fault_replayed { src = 3; dst = 5; extra = 42.5 };
    Trace.Fault_stale { src = 3; dst = 5; extra = 259200. };
    Trace.Fault_stray { src = 9; dst = 5 };
    Trace.Node_crashed { node = 5 };
    Trace.Node_restarted { node = 5 };
    Trace.Invariant_violated
      {
        invariant = "refractory";
        peer = Some 5;
        au = Some 1;
        poll_id = None;
        detail = "two admissions 3.2s apart";
      };
  ]

let test_trace_jsonl_round_trip () =
  (* Every event kind survives to_json -> to_string -> of_string -> of_json. *)
  List.iteri
    (fun i event ->
      let time = 1000. *. float_of_int (i + 1) in
      let line = Json.to_string (Trace.to_json ~time event) in
      match Json.of_string line with
      | Error msg -> Alcotest.failf "%s: bad JSON: %s" (Trace.kind event) msg
      | Ok json ->
        (match Trace.of_json json with
        | Error msg -> Alcotest.failf "%s: bad event: %s" (Trace.kind event) msg
        | Ok (time', event') ->
          Alcotest.(check (float 1e-9)) (Trace.kind event ^ " time") time time';
          Alcotest.(check bool) (Trace.kind event ^ " event") true (event = event')))
    sample_events;
  Alcotest.(check int) "all kinds exercised" (List.length Trace.all_kinds)
    (List.length sample_events)

let test_trace_sink_fanout () =
  let trace = Trace.create () in
  let seen_a = ref 0 and seen_b = ref 0 in
  Trace.subscribe trace (fun ~time:_ _ -> incr seen_a);
  Trace.subscribe trace (fun ~time:_ _ -> incr seen_b);
  List.iter (fun e -> Trace.emit trace ~now:1. (fun () -> e)) sample_events;
  Alcotest.(check int) "first sink" (List.length sample_events) !seen_a;
  Alcotest.(check int) "second sink" (List.length sample_events) !seen_b

let test_trace_filter_sink () =
  let trace = Trace.create () in
  let warns = ref 0 and peer5 = ref 0 and drops = ref 0 in
  Trace.subscribe trace
    (Trace.filter_sink ~min_severity:Trace.Warn (fun ~time:_ _ -> incr warns));
  Trace.subscribe trace (Trace.filter_sink ~peer:5 (fun ~time:_ _ -> incr peer5));
  Trace.subscribe trace
    (Trace.filter_sink ~kinds:[ "invitation_dropped" ] (fun ~time:_ _ -> incr drops));
  List.iter (fun e -> Trace.emit trace ~now:2. (fun () -> e)) sample_events;
  (* The Alarmed conclusion and the invariant violation are the only
     warn-severity events in the sample set. *)
  Alcotest.(check int) "warn filter" 2 !warns;
  let expect_peer5 = List.length (List.filter (fun e -> Trace.involves e 5) sample_events) in
  Alcotest.(check int) "peer filter" expect_peer5 !peer5;
  Alcotest.(check int) "kind filter" 1 !drops

let test_trace_severity_order () =
  Alcotest.(check bool) "debug below info" true (Trace.Debug < Trace.Info);
  Alcotest.(check bool) "info below warn" true (Trace.Info < Trace.Warn);
  List.iter
    (fun s ->
      let name = Trace.severity_to_string s in
      Alcotest.(check bool) ("round trip " ^ name) true
        (Trace.severity_of_string name = Some s))
    [ Trace.Debug; Trace.Info; Trace.Warn ]

let test_recorder_counts_drops () =
  let trace = Trace.create () in
  let get = Trace.recorder ~capacity:10 trace in
  for i = 1 to 25 do
    Trace.emit trace ~now:(float_of_int i) (fun () ->
        Trace.Poll_started { poller = i; au = 0; poll_id = i; inner_candidates = 0 })
  done;
  let record = get () in
  Alcotest.(check int) "retained" 10 (List.length record.Trace.events);
  Alcotest.(check int) "dropped" 15 record.Trace.dropped;
  (* The ring keeps the most recent events: 16..25. *)
  let times = List.map fst record.Trace.events in
  Alcotest.(check (list (float 1e-9))) "newest retained"
    (List.init 10 (fun i -> float_of_int (16 + i)))
    times

let test_recorder_under_capacity_drops_nothing () =
  let trace = Trace.create () in
  let get = Trace.recorder ~capacity:100 trace in
  for i = 1 to 7 do
    Trace.emit trace ~now:(float_of_int i) (fun () ->
        Trace.Vote_sent { voter = 1; poller = 2; au = 0; poll_id = i })
  done;
  let record = get () in
  Alcotest.(check int) "retained" 7 (List.length record.Trace.events);
  Alcotest.(check int) "dropped" 0 record.Trace.dropped

(* -- Registry ------------------------------------------------------------ *)

let test_registry_counters_and_gauges () =
  let registry = Registry.create () in
  let c = Registry.counter registry "polls" in
  Registry.Counter.incr c;
  Registry.Counter.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Registry.Counter.value c);
  Alcotest.(check int) "same instrument" 5
    (Registry.Counter.value (Registry.counter registry "polls"));
  let g = Registry.gauge registry "damaged" in
  Registry.Gauge.set g 3.;
  Registry.Gauge.add g 1.5;
  Alcotest.(check (float 1e-9)) "gauge" 4.5 (Registry.Gauge.value g);
  Alcotest.check_raises "kind clash" (Invalid_argument "Registry: \"polls\" already registered as a counter")
    (fun () -> ignore (Registry.gauge registry "polls"))

let test_registry_histogram_quantiles () =
  let registry = Registry.create () in
  let h = Registry.histogram ~window:2048 registry "gap" in
  for i = 1 to 1000 do
    Registry.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Registry.Histogram.count h);
  Alcotest.(check (float 1.)) "median" 500.5 (Registry.Histogram.quantile h 0.5);
  Alcotest.(check (float 1.5)) "p90" 900. (Registry.Histogram.quantile h 0.9);
  Alcotest.(check (float 0.)) "min" 1. (Registry.Histogram.min h);
  Alcotest.(check (float 0.)) "max" 1000. (Registry.Histogram.max h);
  Alcotest.(check (float 1e-6)) "mean" 500.5 (Registry.Histogram.mean h)

let test_registry_histogram_window_evicts () =
  let registry = Registry.create () in
  let h = Registry.histogram ~window:10 registry "w" in
  for i = 1 to 30 do
    Registry.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "lifetime count" 30 (Registry.Histogram.count h);
  Alcotest.(check (float 0.)) "window min is recent" 21. (Registry.Histogram.min h);
  Alcotest.(check (float 0.)) "window max" 30. (Registry.Histogram.max h)

let test_registry_snapshot () =
  let registry = Registry.create () in
  Registry.Counter.incr (Registry.counter registry "b_counter");
  Registry.Gauge.set (Registry.gauge registry "a_gauge") 2.;
  Registry.Histogram.observe (Registry.histogram registry "c_hist") 7.;
  let snapshot = Registry.snapshot registry in
  Alcotest.(check (list string)) "sorted names" [ "a_gauge"; "b_counter"; "c_hist" ]
    (List.map fst snapshot);
  match List.assoc "c_hist" snapshot with
  | Json.Assoc fields ->
    Alcotest.(check bool) "hist has p50" true (List.mem_assoc "p50" fields)
  | _ -> Alcotest.fail "histogram snapshot shape"

(* -- Series -------------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "obs_test" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  loop []

let test_series_csv () =
  with_temp_file (fun path ->
      let series =
        Series.create ~format:Series.Csv ~columns:[ "t"; "x"; "label" ]
          (Obs.Sink.open_file path)
      in
      Series.append series [ Json.Float 1.5; Json.Int 2; Json.String "plain" ];
      Series.append series [ Json.Float 2.5; Json.Int 3; Json.String "needs,\"quoting\"" ];
      Series.close series;
      match read_lines path with
      | [ header; row1; row2 ] ->
        Alcotest.(check string) "header" "t,x,label" header;
        Alcotest.(check string) "row" "1.5,2,plain" row1;
        Alcotest.(check string) "quoted row" "2.5,3,\"needs,\"\"quoting\"\"\"" row2
      | lines -> Alcotest.failf "expected 3 lines, got %d" (List.length lines))

let test_series_jsonl () =
  with_temp_file (fun path ->
      let series =
        Series.create ~format:Series.Jsonl ~columns:[ "t"; "x" ]
          (Obs.Sink.open_file path)
      in
      Series.append series [ Json.Float 1.; Json.Int 10 ];
      Series.append series [ Json.Float 2.; Json.Int 20 ];
      Series.close series;
      let rows =
        List.map
          (fun line -> Result.get_ok (Json.of_string line))
          (read_lines path)
      in
      Alcotest.(check int) "rows" 2 (List.length rows);
      Alcotest.(check (option int)) "column value" (Some 20)
        (Option.bind (Json.member "x" (List.nth rows 1)) Json.to_int))

let test_series_format_of_path () =
  Alcotest.(check bool) "jsonl" true (Series.format_of_path "a/b.jsonl" = Series.Jsonl);
  Alcotest.(check bool) "json" true (Series.format_of_path "B.JSON" = Series.Jsonl);
  Alcotest.(check bool) "csv" true (Series.format_of_path "out.csv" = Series.Csv);
  Alcotest.(check bool) "other" true (Series.format_of_path "out.dat" = Series.Csv)

(* -- Sampler ------------------------------------------------------------- *)

let test_sampler_tick_alignment () =
  let engine = Engine.create () in
  let metrics = Metrics.create ~replicas:10 ~start:0. in
  let times = ref [] in
  let sampler =
    Sampler.attach ~engine ~metrics ~interval:10. (fun s ->
        times := s.Metrics.time :: !times)
  in
  (* Samples at 10,20,...,100 all fire inside run_until ~limit:100. *)
  Engine.run_until engine ~limit:100.;
  Alcotest.(check int) "ticks" 10 (Sampler.ticks sampler);
  Alcotest.(check (list (float 1e-9))) "aligned times"
    (List.init 10 (fun i -> 10. *. float_of_int (i + 1)))
    (List.rev !times);
  (* A partial trailing interval produces no sample. *)
  Engine.run_until engine ~limit:105.;
  Alcotest.(check int) "no partial tick" 10 (Sampler.ticks sampler);
  Engine.run_until engine ~limit:110.;
  Alcotest.(check int) "next full tick" 11 (Sampler.ticks sampler);
  Sampler.stop sampler;
  Engine.run_until engine ~limit:200.;
  Alcotest.(check int) "stopped" 11 (Sampler.ticks sampler)

let test_sampler_sees_metric_changes () =
  let engine = Engine.create () in
  let metrics = Metrics.create ~replicas:10 ~start:0. in
  let damaged = ref [] in
  let _sampler =
    Sampler.attach ~engine ~metrics ~interval:10. (fun s ->
        damaged := s.Metrics.damaged_replicas :: !damaged)
  in
  ignore (Engine.schedule engine ~at:5. (fun () -> Metrics.on_replica_damaged metrics ~now:5.));
  ignore
    (Engine.schedule engine ~at:15. (fun () -> Metrics.on_replica_repaired metrics ~now:15.));
  Engine.run_until engine ~limit:20.;
  Alcotest.(check (list int)) "damage then repair visible" [ 1; 0 ] (List.rev !damaged)

let test_sampler_series_writer_deltas () =
  with_temp_file (fun path ->
      let series =
        Series.create ~format:Series.Jsonl ~columns:Sampler.columns
          (Obs.Sink.open_file path)
      in
      let writer = Sampler.series_writer ~seed:3 series in
      let metrics = Metrics.create ~replicas:10 ~start:0. in
      Metrics.on_invitation_considered metrics;
      Metrics.on_invitation_considered metrics;
      writer (Metrics.sample metrics ~now:Duration.day);
      Metrics.on_invitation_considered metrics;
      writer (Metrics.sample metrics ~now:(2. *. Duration.day));
      Series.close series;
      let rows = List.map (fun l -> Result.get_ok (Json.of_string l)) (read_lines path) in
      let considered row =
        Option.get (Option.bind (Json.member "invitations_considered" row) Json.to_int)
      in
      (* Cumulative 2 then 3 -> per-interval deltas 2 then 1. *)
      Alcotest.(check (list int)) "deltas" [ 2; 1 ] (List.map considered rows);
      Alcotest.(check (option int)) "seed column" (Some 3)
        (Option.bind (Json.member "seed" (List.hd rows)) Json.to_int))

(* -- Engine stats -------------------------------------------------------- *)

let test_engine_stats () =
  let engine = Engine.create () in
  let ids = List.init 5 (fun i -> Engine.schedule engine ~at:(float_of_int (i + 1)) ignore) in
  Engine.cancel engine (List.nth ids 0);
  Engine.cancel engine (List.nth ids 1);
  Engine.cancel engine (List.nth ids 1);
  (* double cancel is a no-op *)
  Engine.run engine;
  let stats = Engine.stats engine in
  Alcotest.(check int) "scheduled" 5 stats.Engine.scheduled;
  Alcotest.(check int) "cancelled" 2 stats.Engine.cancelled;
  Alcotest.(check int) "executed" 3 stats.Engine.executed;
  Alcotest.(check int) "pending" 0 stats.Engine.pending;
  Alcotest.(check int) "heap high-water" 5 stats.Engine.max_heap_depth

(* -- Metrics hardening --------------------------------------------------- *)

let test_repair_underflow_clamps () =
  let metrics = Metrics.create ~replicas:4 ~start:0. in
  (* Repair with nothing damaged: must not abort, must be counted. *)
  Metrics.on_replica_repaired metrics ~now:1.;
  Metrics.on_replica_damaged metrics ~now:2.;
  Metrics.on_replica_repaired metrics ~now:3.;
  Metrics.on_replica_repaired metrics ~now:4.;
  let summary = Metrics.finalize metrics ~now:10. in
  Alcotest.(check int) "underflows counted" 2 summary.Metrics.repair_underflows;
  let sample = Metrics.sample metrics ~now:10. in
  Alcotest.(check int) "damage clamped at zero" 0 sample.Metrics.damaged_replicas

(* -- Duration parsing ---------------------------------------------------- *)

let test_duration_of_string () =
  let ok s expect =
    match Duration.of_string s with
    | Ok v -> Alcotest.(check (float 1e-6)) s expect v
    | Error msg -> Alcotest.failf "%s: %s" s msg
  in
  ok "7d" (Duration.of_days 7.);
  ok "12h" (12. *. Duration.hour);
  ok "90" 90.;
  ok "90s" 90.;
  ok "5m" (5. *. Duration.minute);
  ok "2w" (Duration.of_days 14.);
  ok "1mo" Duration.month;
  ok "0.5y" (Duration.of_years 0.5);
  ok " 3d " (Duration.of_days 3.);
  List.iter
    (fun s ->
      match Duration.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "x"; "-5d"; "5q"; ""; "d"; "1.2.3h" ]

(* -- End to end: Scenario observability ---------------------------------- *)

let test_scenario_observability_end_to_end () =
  let trace_path = Filename.temp_file "obs_trace" ".jsonl" in
  let metrics_path = Filename.temp_file "obs_metrics" ".csv" in
  let seeds = [ 5; 6 ] in
  let seeded path seed = Experiments.Scenario.seeded_path path ~seed in
  let per_seed path = List.map (fun seed -> seeded path seed) seeds in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        ((trace_path :: metrics_path :: per_seed trace_path) @ per_seed metrics_path))
    (fun () ->
      let scale =
        {
          Experiments.Scenario.peers = 10;
          aus = 1;
          quorum = 3;
          max_disagree = 1;
          outer_circle = 3;
          reference_target = 6;
          years = 0.25;
          runs = 2;
          seed = 5;
        }
      in
      let cfg = Experiments.Scenario.config scale in
      let observe =
        {
          Experiments.Scenario.default_observe with
          Experiments.Scenario.trace_out = Some trace_path;
          metrics_out = Some metrics_path;
          sample_interval = Duration.of_days 7.;
        }
      in
      (* Two runs; each writes its own seed-suffixed trace and metrics file. *)
      ignore
        (Experiments.Scenario.run_avg ~observe ~cfg scale
           Experiments.Scenario.No_attack);
      List.iter
        (fun seed ->
          (* Trace file: every line parses back to a typed event. *)
          let trace_lines = read_lines (seeded trace_path seed) in
          Alcotest.(check bool)
            (Printf.sprintf "trace nonempty (seed %d)" seed)
            true
            (List.length trace_lines > 10);
          List.iter
            (fun line ->
              match
                Result.bind (Json.of_string line) (fun json -> Trace.of_json json)
              with
              | Ok _ -> ()
              | Error msg -> Alcotest.failf "trace line %S: %s" line msg)
            trace_lines;
          (* Metrics file: one header plus 13 weekly samples for this run. *)
          match read_lines (seeded metrics_path seed) with
          | [] -> Alcotest.failf "empty metrics file (seed %d)" seed
          | header :: rows ->
            Alcotest.(check string) "header" (String.concat "," Sampler.columns) header;
            (* 0.25 y = 91.25 days -> 13 full 7-day intervals. *)
            Alcotest.(check int) (Printf.sprintf "rows (seed %d)" seed) 13
              (List.length rows);
            let row_seeds =
              List.sort_uniq compare
                (List.map (fun row -> List.hd (String.split_on_char ',' row)) rows)
            in
            Alcotest.(check (list string))
              (Printf.sprintf "seed column (seed %d)" seed)
              [ string_of_int seed ] row_seeds)
        seeds)

(* -- Span reconstruction -------------------------------------------------- *)

let feed_events analyzer events =
  List.iter
    (fun (time, event) -> Obs.Analyze.feed analyzer (Trace.to_json ~time event))
    events

(* One complete, healthy poll lifecycle for poll (1, 0, 42). *)
let poll_lifecycle_events =
  [
    (0., Trace.Poll_started { poller = 1; au = 0; poll_id = 42; inner_candidates = 5 });
    (10., Trace.Solicitation_sent { poller = 1; voter = 2; au = 0; poll_id = 42; attempt = 1 });
    (12., Trace.Solicitation_sent { poller = 1; voter = 3; au = 0; poll_id = 42; attempt = 1 });
    (20., Trace.Invitation_accepted { voter = 2; poller = 1; au = 0; poll_id = 42 });
    (22., Trace.Invitation_refused { voter = 3; poller = 1; au = 0; poll_id = 42 });
    ( 30.,
      Trace.Effort_charged
        {
          peer = 2;
          role = Trace.Loyal;
          phase = Trace.Voting;
          poller = Some 1;
          au = Some 0;
          poll_id = Some 42;
          seconds = 100.;
        } );
    (35., Trace.Vote_sent { voter = 2; poller = 1; au = 0; poll_id = 42 });
    (40., Trace.Evaluation_started { poller = 1; au = 0; poll_id = 42; votes = 1 });
    ( 41.,
      Trace.Effort_received
        { peer = 1; from_ = 2; phase = Trace.Voting; au = 0; poll_id = 42; seconds = 7. } );
    ( 45.,
      Trace.Repair_applied
        { poller = 1; au = 0; poll_id = 42; block = 0; version = 3; clean = false } );
    (50., Trace.Poll_concluded { poller = 1; au = 0; poll_id = 42; outcome = Metrics.Success });
  ]

let test_span_reconstruction () =
  let analyzer = Obs.Analyze.create () in
  feed_events analyzer poll_lifecycle_events;
  (* A vote crossing the conclusion in flight is informational, not an
     anomaly. *)
  feed_events analyzer [ (55., Trace.Vote_sent { voter = 3; poller = 1; au = 0; poll_id = 42 }) ];
  let builder = Obs.Analyze.span_builder analyzer in
  Alcotest.(check int) "no anomalies" 0 (Obs.Span.anomaly_count builder);
  Alcotest.(check int) "late vote is informational" 1 (Obs.Span.late_events builder);
  Alcotest.(check int) "no open spans" 0 (List.length (Obs.Span.open_spans builder));
  match Obs.Span.closed_spans builder with
  | [ s ] ->
    Alcotest.(check int) "poller" 1 s.Obs.Span.poller;
    Alcotest.(check int) "inner candidates" 5 s.Obs.Span.inner_candidates;
    Alcotest.(check int) "solicitations" 2 s.Obs.Span.solicitations;
    Alcotest.(check int) "accepted" 1 s.Obs.Span.invitations_accepted;
    Alcotest.(check int) "refused" 1 s.Obs.Span.invitations_refused;
    Alcotest.(check int) "votes before conclusion" 1 s.Obs.Span.votes;
    Alcotest.(check (option (float 1e-9))) "first vote at" (Some 35.) s.Obs.Span.first_vote_at;
    Alcotest.(check int) "votes at evaluation" 1 s.Obs.Span.votes_at_evaluation;
    Alcotest.(check int) "repairs" 1 s.Obs.Span.repairs;
    Alcotest.(check bool) "concluded successfully" true
      (s.Obs.Span.outcome = Some Obs.Span.Success);
    Alcotest.(check (float 1e-9)) "effort spent" 100. s.Obs.Span.effort_spent;
    Alcotest.(check (float 1e-9)) "effort received" 7. s.Obs.Span.effort_received;
    Alcotest.(check (option (float 1e-9))) "solicitation duration" (Some 40.)
      (Obs.Span.solicitation_duration s);
    Alcotest.(check (option (float 1e-9))) "evaluation duration" (Some 5.)
      (Obs.Span.evaluation_duration s);
    Alcotest.(check (option (float 1e-9))) "repair duration" (Some 5.)
      (Obs.Span.repair_duration s);
    Alcotest.(check (option (float 1e-9))) "total duration" (Some 50.)
      (Obs.Span.total_duration s)
  | spans -> Alcotest.failf "expected one closed span, got %d" (List.length spans)

let test_span_anomalies () =
  let builder = Obs.Span.create () in
  let feed time event = Obs.Span.feed builder (Trace.to_json ~time event) in
  (* Two events for a poll whose start was never seen: one anomaly per
     orphan key, both events counted. *)
  feed 1. (Trace.Vote_sent { voter = 9; poller = 8; au = 0; poll_id = 5 });
  feed 2. (Trace.Vote_sent { voter = 10; poller = 8; au = 0; poll_id = 5 });
  Alcotest.(check int) "orphan anomalies dedup per key" 1 (Obs.Span.anomaly_count builder);
  Alcotest.(check int) "orphan events all counted" 2 (Obs.Span.orphan_events builder);
  (* A second poll by the same (poller, au) abandons the first. *)
  feed 3. (Trace.Poll_started { poller = 1; au = 0; poll_id = 1; inner_candidates = 0 });
  feed 4. (Trace.Poll_started { poller = 1; au = 0; poll_id = 2; inner_candidates = 0 });
  feed 5. (Trace.Poll_concluded { poller = 1; au = 0; poll_id = 2; outcome = Metrics.Success });
  feed 6. (Trace.Poll_concluded { poller = 1; au = 0; poll_id = 2; outcome = Metrics.Success });
  (* Poller-side activity after its own conclusion is an anomaly. *)
  feed 7. (Trace.Evaluation_started { poller = 1; au = 0; poll_id = 2; votes = 0 });
  let kinds =
    List.map
      (function
        | Obs.Span.Orphan_event _ -> "orphan"
        | Obs.Span.Abandoned_poll _ -> "abandoned"
        | Obs.Span.Duplicate_conclusion _ -> "duplicate"
        | Obs.Span.Poller_event_after_conclusion _ -> "after-conclusion"
        | Obs.Span.Malformed_line _ -> "malformed")
      (Obs.Span.anomalies builder)
  in
  Alcotest.(check (list string)) "anomaly sequence"
    [ "orphan"; "abandoned"; "duplicate"; "after-conclusion" ]
    kinds;
  (* The abandoned span is closed without an outcome. *)
  let abandoned =
    List.filter (fun s -> s.Obs.Span.outcome = None) (Obs.Span.closed_spans builder)
  in
  Alcotest.(check int) "abandoned span closed outcome-less" 1 (List.length abandoned)

let test_truncated_trace_is_not_fatal () =
  (* A trace cut mid-poll (the writer died): the final line is half a
     JSON object and the poll never concludes. The analyzer must report
     a malformed line and keep the span open, not crash. *)
  let analyzer = Obs.Analyze.create () in
  let lines =
    List.map (fun (time, e) -> Json.to_string (Trace.to_json ~time e)) poll_lifecycle_events
  in
  let keep = List.length lines - 1 in
  let lines = List.filteri (fun i _ -> i < keep) lines in
  List.iteri
    (fun i line ->
      let line = if i = keep - 1 then String.sub line 0 (String.length line / 2) else line in
      Obs.Analyze.feed_line analyzer ~line:(i + 1) line)
    lines;
  Alcotest.(check int) "one anomaly" 1 (Obs.Analyze.anomaly_count analyzer);
  (match Obs.Analyze.anomalies analyzer with
  | [ Obs.Span.Malformed_line { line; _ } ] ->
    Alcotest.(check int) "at the cut line" keep line
  | _ -> Alcotest.fail "expected a malformed-line anomaly");
  let builder = Obs.Analyze.span_builder analyzer in
  Alcotest.(check int) "poll left open" 1 (List.length (Obs.Span.open_spans builder));
  Alcotest.(check int) "nothing concluded" 0 (List.length (Obs.Span.closed_spans builder))

(* -- Ledger --------------------------------------------------------------- *)

let test_ledger_accumulates () =
  let ledger = Obs.Ledger.create () in
  let feed time event = Obs.Ledger.feed ledger (Trace.to_json ~time event) in
  let charge peer role phase seconds =
    Trace.Effort_charged
      { peer; role; phase; poller = Some 1; au = Some 0; poll_id = Some 1; seconds }
  in
  feed 1. (charge 1 Trace.Loyal Trace.Solicitation 50.);
  feed 2. (charge 2 Trace.Loyal Trace.Voting 30.);
  feed 3. (charge 2 Trace.Adversary Trace.Voting 20.);
  feed 4.
    (Trace.Effort_received
       { peer = 1; from_ = 2; phase = Trace.Voting; au = 0; poll_id = 1; seconds = 5. });
  feed 5. (Trace.Poll_started { poller = 1; au = 0; poll_id = 1; inner_candidates = 2 });
  feed 5.5
    (Trace.Invitation_admitted
       {
         voter = 2;
         claimed = 1;
         au = 0;
         poll_id = Some 1;
         path = Trace.Admitted_unknown;
       });
  feed 6. (Trace.Vote_sent { voter = 2; poller = 1; au = 0; poll_id = 1 });
  feed 7. (Trace.Poll_concluded { poller = 1; au = 0; poll_id = 1; outcome = Metrics.Success });
  let e2 = Option.get (Obs.Ledger.find ledger 2) in
  Alcotest.(check (float 1e-9)) "loyal and adversary kept apart (loyal)" 30.
    (Obs.Ledger.spent_loyal_total e2);
  Alcotest.(check (float 1e-9)) "loyal and adversary kept apart (adversary)" 20.
    (Obs.Ledger.spent_adversary_total e2);
  Alcotest.(check (float 1e-9)) "voting-phase bucket" 30.
    e2.Obs.Ledger.spent_loyal.(Obs.Ledger.phase_index Obs.Ledger.Voting);
  Alcotest.(check int) "votes credited to the voter" 1 e2.Obs.Ledger.votes_sent;
  let e1 = Option.get (Obs.Ledger.find ledger 1) in
  Alcotest.(check (float 1e-9)) "receipts credited to the poller" 5.
    (Obs.Ledger.received_total e1);
  Alcotest.(check int) "poll outcome credited to the poller" 1 e1.Obs.Ledger.polls_succeeded;
  let totals = Obs.Ledger.totals ledger in
  Alcotest.(check (float 1e-9)) "loyal total" 80. totals.Obs.Ledger.loyal_effort;
  Alcotest.(check (float 1e-9)) "friction numerator" 80.
    (Obs.Ledger.effort_per_successful_poll ledger);
  Alcotest.(check (float 1e-9)) "cost ratio" 0.25 (Obs.Ledger.cost_ratio ledger);
  let r =
    Obs.Ledger.reconcile ledger ~loyal_effort:80. ~adversary_effort:20. ~polls_succeeded:1
      ~polls_inquorate:0 ~polls_alarmed:0 ~votes_supplied:1 ~invitations_considered:1
  in
  Alcotest.(check bool) "reconciles against matching aggregates" true r.Obs.Ledger.ok;
  let bad =
    Obs.Ledger.reconcile ledger ~loyal_effort:81. ~adversary_effort:20. ~polls_succeeded:1
      ~polls_inquorate:0 ~polls_alarmed:0 ~votes_supplied:2 ~invitations_considered:1
  in
  Alcotest.(check bool) "detects a mismatch" false bad.Obs.Ledger.ok

(* Run a real simulation with a live analyzer attached and check the
   ledger reconstructed from trace events against the Metrics
   aggregates — the reconciliation-by-construction invariant. *)
let reconciled_run attack =
  let scale =
    {
      Experiments.Scenario.peers = 12;
      aus = 1;
      quorum = 3;
      max_disagree = 1;
      outer_circle = 3;
      reference_target = 6;
      years = 0.25;
      runs = 1;
      seed = 11;
    }
  in
  let cfg = Experiments.Scenario.config scale in
  let population = Experiments.Scenario.build ~cfg ~seed:11 attack in
  let analyzer = Obs.Analyze.create () in
  Trace.subscribe (Population.trace population) (fun ~time event ->
      Obs.Analyze.feed analyzer (Trace.to_json ~time event));
  Population.run population ~until:(Duration.of_years scale.Experiments.Scenario.years);
  (analyzer, Population.summary population)

let check_reconciles name analyzer (s : Metrics.summary) =
  let ledger = Obs.Analyze.ledger analyzer in
  let r =
    Obs.Ledger.reconcile ledger ~loyal_effort:s.Metrics.loyal_effort
      ~adversary_effort:s.Metrics.adversary_effort ~polls_succeeded:s.Metrics.polls_succeeded
      ~polls_inquorate:s.Metrics.polls_inquorate ~polls_alarmed:s.Metrics.polls_alarmed
      ~votes_supplied:s.Metrics.votes_supplied
      ~invitations_considered:s.Metrics.invitations_considered
  in
  if not r.Obs.Ledger.ok then
    Alcotest.failf "%s does not reconcile: %s" name
      (Format.asprintf "%a" Obs.Ledger.pp_reconciliation r);
  (* The derived defense metrics must agree too (same data, so up to
     float summation order). *)
  let close label expect actual =
    let ok =
      (Float.is_finite expect
      && Float.abs (actual -. expect) <= 1e-6 *. Float.max 1. (Float.abs expect))
      || (expect = infinity && actual = infinity)
    in
    if not ok then Alcotest.failf "%s %s: expected %g, got %g" name label expect actual
  in
  close "friction numerator" s.Metrics.effort_per_successful_poll
    (Obs.Ledger.effort_per_successful_poll ledger);
  if s.Metrics.loyal_effort > 0. then
    close "cost ratio"
      (s.Metrics.adversary_effort /. s.Metrics.loyal_effort)
      (Obs.Ledger.cost_ratio ledger)

let test_ledger_reconciles_baseline () =
  let analyzer, summary = reconciled_run Experiments.Scenario.No_attack in
  check_reconciles "baseline" analyzer summary;
  (* A fault-free baseline produces a causally clean trace. *)
  Alcotest.(check int) "no anomalies on the fault-free baseline" 0
    (Obs.Analyze.anomaly_count analyzer)

let test_ledger_reconciles_under_attack () =
  let analyzer, summary =
    reconciled_run
      (Experiments.Scenario.Brute_force
         { strategy = Adversary.Brute_force.Intro; rate = 3.; identities = 10 })
  in
  check_reconciles "brute force" analyzer summary;
  let totals = Obs.Ledger.totals (Obs.Analyze.ledger analyzer) in
  Alcotest.(check bool) "adversary effort visible in the ledger" true
    (totals.Obs.Ledger.adversary_effort > 0.)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "observability"
    [
      ( "json",
        [
          quick "round trip" test_json_round_trip;
          quick "rejects garbage" test_json_rejects_garbage;
          quick "numbers" test_json_numbers;
          quick "escape sequences" test_json_escapes;
          quick "non-finite floats" test_json_non_finite_floats;
          quick "deep nesting" test_json_deep_nesting;
        ] );
      ( "trace",
        [
          quick "jsonl round trip (all kinds)" test_trace_jsonl_round_trip;
          quick "sink fan-out" test_trace_sink_fanout;
          quick "filter sink" test_trace_filter_sink;
          quick "severity order" test_trace_severity_order;
          quick "ring recorder counts drops" test_recorder_counts_drops;
          quick "recorder under capacity" test_recorder_under_capacity_drops_nothing;
        ] );
      ( "registry",
        [
          quick "counters and gauges" test_registry_counters_and_gauges;
          quick "histogram quantiles" test_registry_histogram_quantiles;
          quick "histogram window" test_registry_histogram_window_evicts;
          quick "snapshot" test_registry_snapshot;
        ] );
      ( "series",
        [
          quick "csv" test_series_csv;
          quick "jsonl" test_series_jsonl;
          quick "format by path" test_series_format_of_path;
        ] );
      ( "sampler",
        [
          quick "tick alignment with run_until" test_sampler_tick_alignment;
          quick "sees metric changes" test_sampler_sees_metric_changes;
          quick "series writer deltas" test_sampler_series_writer_deltas;
        ] );
      ( "engine",
        [ quick "profiling stats" test_engine_stats ] );
      ( "metrics",
        [ quick "repair underflow clamps" test_repair_underflow_clamps ] );
      ( "duration",
        [ quick "of_string" test_duration_of_string ] );
      ( "scenario",
        [ quick "end-to-end files" test_scenario_observability_end_to_end ] );
      ( "span",
        [
          quick "reconstruction from a healthy lifecycle" test_span_reconstruction;
          quick "anomaly taxonomy" test_span_anomalies;
          quick "truncated trace is not fatal" test_truncated_trace_is_not_fatal;
        ] );
      ( "ledger",
        [
          quick "accumulates and reconciles" test_ledger_accumulates;
          quick "reconciles a live baseline run" test_ledger_reconciles_baseline;
          quick "reconciles a live attack run" test_ledger_reconciles_under_attack;
        ] );
    ]
