(* Tests for the observability layer: JSON round-trips, trace sinks and
   the ring recorder, the metrics registry, the time-series writer, the
   periodic sampler, engine profiling stats and the hardened metric
   transitions. *)

module Duration = Repro_prelude.Duration
module Engine = Narses.Engine
module Json = Obs.Json
module Registry = Obs.Registry
module Series = Obs.Series
open Lockss

(* -- Json --------------------------------------------------------------- *)

let test_json_round_trip () =
  let value =
    Json.Assoc
      [
        ("i", Json.Int 42);
        ("f", Json.Float 1.5);
        ("s", Json.String "with \"quotes\", commas\nand newlines");
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int (-2); Json.Float 0.25 ]);
        ("o", Json.Assoc [ ("nested", Json.Bool false) ]);
      ]
  in
  match Json.of_string (Json.to_string value) with
  | Ok parsed -> Alcotest.(check bool) "round trip" true (parsed = value)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,]"; "{\"a\" 1}"; "nulll"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

let test_json_numbers () =
  (match Json.of_string "-17" with
  | Ok (Json.Int -17) -> ()
  | _ -> Alcotest.fail "int literal");
  (match Json.of_string "2.5e3" with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "exp float" 2500. f
  | _ -> Alcotest.fail "float literal");
  match Json.of_string "604800" with
  | Ok v -> Alcotest.(check (float 0.)) "to_float widens" 604800. (Option.get (Json.to_float v))
  | Error msg -> Alcotest.failf "parse: %s" msg

(* -- Trace taxonomy, round-trip, sinks ---------------------------------- *)

let sample_events =
  [
    Trace.Poll_started { poller = 3; au = 1; poll_id = 7; inner_candidates = 9 };
    Trace.Solicitation_sent { poller = 3; voter = 5; au = 1; poll_id = 7; attempt = 2 };
    Trace.Invitation_dropped
      { voter = 5; claimed = 12; au = 0; reason = Admission.Refractory };
    Trace.Invitation_refused { voter = 5; poller = 3; au = 1 };
    Trace.Invitation_accepted { voter = 5; poller = 3; au = 1 };
    Trace.Vote_sent { voter = 5; poller = 3; au = 1; poll_id = 7 };
    Trace.Evaluation_started { poller = 3; au = 1; poll_id = 7; votes = 6 };
    Trace.Repair_applied { poller = 3; au = 1; block = 4; version = 99; clean = true };
    Trace.Poll_concluded { poller = 3; au = 1; poll_id = 7; outcome = Metrics.Alarmed };
    Trace.Fault_dropped { src = 3; dst = 5 };
    Trace.Fault_duplicated { src = 3; dst = 5 };
    Trace.Fault_delayed { src = 3; dst = 5; extra = 0.25 };
    Trace.Node_crashed { node = 5 };
    Trace.Node_restarted { node = 5 };
  ]

let test_trace_jsonl_round_trip () =
  (* Every event kind survives to_json -> to_string -> of_string -> of_json. *)
  List.iteri
    (fun i event ->
      let time = 1000. *. float_of_int (i + 1) in
      let line = Json.to_string (Trace.to_json ~time event) in
      match Json.of_string line with
      | Error msg -> Alcotest.failf "%s: bad JSON: %s" (Trace.kind event) msg
      | Ok json ->
        (match Trace.of_json json with
        | Error msg -> Alcotest.failf "%s: bad event: %s" (Trace.kind event) msg
        | Ok (time', event') ->
          Alcotest.(check (float 1e-9)) (Trace.kind event ^ " time") time time';
          Alcotest.(check bool) (Trace.kind event ^ " event") true (event = event')))
    sample_events;
  Alcotest.(check int) "all kinds exercised" (List.length Trace.all_kinds)
    (List.length sample_events)

let test_trace_sink_fanout () =
  let trace = Trace.create () in
  let seen_a = ref 0 and seen_b = ref 0 in
  Trace.subscribe trace (fun ~time:_ _ -> incr seen_a);
  Trace.subscribe trace (fun ~time:_ _ -> incr seen_b);
  List.iter (fun e -> Trace.emit trace ~now:1. (fun () -> e)) sample_events;
  Alcotest.(check int) "first sink" (List.length sample_events) !seen_a;
  Alcotest.(check int) "second sink" (List.length sample_events) !seen_b

let test_trace_filter_sink () =
  let trace = Trace.create () in
  let warns = ref 0 and peer5 = ref 0 and drops = ref 0 in
  Trace.subscribe trace
    (Trace.filter_sink ~min_severity:Trace.Warn (fun ~time:_ _ -> incr warns));
  Trace.subscribe trace (Trace.filter_sink ~peer:5 (fun ~time:_ _ -> incr peer5));
  Trace.subscribe trace
    (Trace.filter_sink ~kinds:[ "invitation_dropped" ] (fun ~time:_ _ -> incr drops));
  List.iter (fun e -> Trace.emit trace ~now:2. (fun () -> e)) sample_events;
  (* Only the Alarmed conclusion is warn-severity in the sample set. *)
  Alcotest.(check int) "warn filter" 1 !warns;
  let expect_peer5 = List.length (List.filter (fun e -> Trace.involves e 5) sample_events) in
  Alcotest.(check int) "peer filter" expect_peer5 !peer5;
  Alcotest.(check int) "kind filter" 1 !drops

let test_trace_severity_order () =
  Alcotest.(check bool) "debug below info" true (Trace.Debug < Trace.Info);
  Alcotest.(check bool) "info below warn" true (Trace.Info < Trace.Warn);
  List.iter
    (fun s ->
      let name = Trace.severity_to_string s in
      Alcotest.(check bool) ("round trip " ^ name) true
        (Trace.severity_of_string name = Some s))
    [ Trace.Debug; Trace.Info; Trace.Warn ]

let test_recorder_counts_drops () =
  let trace = Trace.create () in
  let get = Trace.recorder ~capacity:10 trace in
  for i = 1 to 25 do
    Trace.emit trace ~now:(float_of_int i) (fun () ->
        Trace.Poll_started { poller = i; au = 0; poll_id = i; inner_candidates = 0 })
  done;
  let record = get () in
  Alcotest.(check int) "retained" 10 (List.length record.Trace.events);
  Alcotest.(check int) "dropped" 15 record.Trace.dropped;
  (* The ring keeps the most recent events: 16..25. *)
  let times = List.map fst record.Trace.events in
  Alcotest.(check (list (float 1e-9))) "newest retained"
    (List.init 10 (fun i -> float_of_int (16 + i)))
    times

let test_recorder_under_capacity_drops_nothing () =
  let trace = Trace.create () in
  let get = Trace.recorder ~capacity:100 trace in
  for i = 1 to 7 do
    Trace.emit trace ~now:(float_of_int i) (fun () ->
        Trace.Vote_sent { voter = 1; poller = 2; au = 0; poll_id = i })
  done;
  let record = get () in
  Alcotest.(check int) "retained" 7 (List.length record.Trace.events);
  Alcotest.(check int) "dropped" 0 record.Trace.dropped

(* -- Registry ------------------------------------------------------------ *)

let test_registry_counters_and_gauges () =
  let registry = Registry.create () in
  let c = Registry.counter registry "polls" in
  Registry.Counter.incr c;
  Registry.Counter.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Registry.Counter.value c);
  Alcotest.(check int) "same instrument" 5
    (Registry.Counter.value (Registry.counter registry "polls"));
  let g = Registry.gauge registry "damaged" in
  Registry.Gauge.set g 3.;
  Registry.Gauge.add g 1.5;
  Alcotest.(check (float 1e-9)) "gauge" 4.5 (Registry.Gauge.value g);
  Alcotest.check_raises "kind clash" (Invalid_argument "Registry: \"polls\" already registered as a counter")
    (fun () -> ignore (Registry.gauge registry "polls"))

let test_registry_histogram_quantiles () =
  let registry = Registry.create () in
  let h = Registry.histogram ~window:2048 registry "gap" in
  for i = 1 to 1000 do
    Registry.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Registry.Histogram.count h);
  Alcotest.(check (float 1.)) "median" 500.5 (Registry.Histogram.quantile h 0.5);
  Alcotest.(check (float 1.5)) "p90" 900. (Registry.Histogram.quantile h 0.9);
  Alcotest.(check (float 0.)) "min" 1. (Registry.Histogram.min h);
  Alcotest.(check (float 0.)) "max" 1000. (Registry.Histogram.max h);
  Alcotest.(check (float 1e-6)) "mean" 500.5 (Registry.Histogram.mean h)

let test_registry_histogram_window_evicts () =
  let registry = Registry.create () in
  let h = Registry.histogram ~window:10 registry "w" in
  for i = 1 to 30 do
    Registry.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "lifetime count" 30 (Registry.Histogram.count h);
  Alcotest.(check (float 0.)) "window min is recent" 21. (Registry.Histogram.min h);
  Alcotest.(check (float 0.)) "window max" 30. (Registry.Histogram.max h)

let test_registry_snapshot () =
  let registry = Registry.create () in
  Registry.Counter.incr (Registry.counter registry "b_counter");
  Registry.Gauge.set (Registry.gauge registry "a_gauge") 2.;
  Registry.Histogram.observe (Registry.histogram registry "c_hist") 7.;
  let snapshot = Registry.snapshot registry in
  Alcotest.(check (list string)) "sorted names" [ "a_gauge"; "b_counter"; "c_hist" ]
    (List.map fst snapshot);
  match List.assoc "c_hist" snapshot with
  | Json.Assoc fields ->
    Alcotest.(check bool) "hist has p50" true (List.mem_assoc "p50" fields)
  | _ -> Alcotest.fail "histogram snapshot shape"

(* -- Series -------------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "obs_test" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  loop []

let test_series_csv () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let series = Series.create ~format:Series.Csv ~columns:[ "t"; "x"; "label" ] oc in
      Series.append series [ Json.Float 1.5; Json.Int 2; Json.String "plain" ];
      Series.append series [ Json.Float 2.5; Json.Int 3; Json.String "needs,\"quoting\"" ];
      close_out oc;
      match read_lines path with
      | [ header; row1; row2 ] ->
        Alcotest.(check string) "header" "t,x,label" header;
        Alcotest.(check string) "row" "1.5,2,plain" row1;
        Alcotest.(check string) "quoted row" "2.5,3,\"needs,\"\"quoting\"\"\"" row2
      | lines -> Alcotest.failf "expected 3 lines, got %d" (List.length lines))

let test_series_jsonl () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let series = Series.create ~format:Series.Jsonl ~columns:[ "t"; "x" ] oc in
      Series.append series [ Json.Float 1.; Json.Int 10 ];
      Series.append series [ Json.Float 2.; Json.Int 20 ];
      close_out oc;
      let rows =
        List.map
          (fun line -> Result.get_ok (Json.of_string line))
          (read_lines path)
      in
      Alcotest.(check int) "rows" 2 (List.length rows);
      Alcotest.(check (option int)) "column value" (Some 20)
        (Option.bind (Json.member "x" (List.nth rows 1)) Json.to_int))

let test_series_format_of_path () =
  Alcotest.(check bool) "jsonl" true (Series.format_of_path "a/b.jsonl" = Series.Jsonl);
  Alcotest.(check bool) "json" true (Series.format_of_path "B.JSON" = Series.Jsonl);
  Alcotest.(check bool) "csv" true (Series.format_of_path "out.csv" = Series.Csv);
  Alcotest.(check bool) "other" true (Series.format_of_path "out.dat" = Series.Csv)

(* -- Sampler ------------------------------------------------------------- *)

let test_sampler_tick_alignment () =
  let engine = Engine.create () in
  let metrics = Metrics.create ~replicas:10 ~start:0. in
  let times = ref [] in
  let sampler =
    Sampler.attach ~engine ~metrics ~interval:10. (fun s ->
        times := s.Metrics.time :: !times)
  in
  (* Samples at 10,20,...,100 all fire inside run_until ~limit:100. *)
  Engine.run_until engine ~limit:100.;
  Alcotest.(check int) "ticks" 10 (Sampler.ticks sampler);
  Alcotest.(check (list (float 1e-9))) "aligned times"
    (List.init 10 (fun i -> 10. *. float_of_int (i + 1)))
    (List.rev !times);
  (* A partial trailing interval produces no sample. *)
  Engine.run_until engine ~limit:105.;
  Alcotest.(check int) "no partial tick" 10 (Sampler.ticks sampler);
  Engine.run_until engine ~limit:110.;
  Alcotest.(check int) "next full tick" 11 (Sampler.ticks sampler);
  Sampler.stop sampler;
  Engine.run_until engine ~limit:200.;
  Alcotest.(check int) "stopped" 11 (Sampler.ticks sampler)

let test_sampler_sees_metric_changes () =
  let engine = Engine.create () in
  let metrics = Metrics.create ~replicas:10 ~start:0. in
  let damaged = ref [] in
  let _sampler =
    Sampler.attach ~engine ~metrics ~interval:10. (fun s ->
        damaged := s.Metrics.damaged_replicas :: !damaged)
  in
  ignore (Engine.schedule engine ~at:5. (fun () -> Metrics.on_replica_damaged metrics ~now:5.));
  ignore
    (Engine.schedule engine ~at:15. (fun () -> Metrics.on_replica_repaired metrics ~now:15.));
  Engine.run_until engine ~limit:20.;
  Alcotest.(check (list int)) "damage then repair visible" [ 1; 0 ] (List.rev !damaged)

let test_sampler_series_writer_deltas () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let series = Series.create ~format:Series.Jsonl ~columns:Sampler.columns oc in
      let writer = Sampler.series_writer ~seed:3 series in
      let metrics = Metrics.create ~replicas:10 ~start:0. in
      Metrics.on_invitation_considered metrics;
      Metrics.on_invitation_considered metrics;
      writer (Metrics.sample metrics ~now:Duration.day);
      Metrics.on_invitation_considered metrics;
      writer (Metrics.sample metrics ~now:(2. *. Duration.day));
      close_out oc;
      let rows = List.map (fun l -> Result.get_ok (Json.of_string l)) (read_lines path) in
      let considered row =
        Option.get (Option.bind (Json.member "invitations_considered" row) Json.to_int)
      in
      (* Cumulative 2 then 3 -> per-interval deltas 2 then 1. *)
      Alcotest.(check (list int)) "deltas" [ 2; 1 ] (List.map considered rows);
      Alcotest.(check (option int)) "seed column" (Some 3)
        (Option.bind (Json.member "seed" (List.hd rows)) Json.to_int))

(* -- Engine stats -------------------------------------------------------- *)

let test_engine_stats () =
  let engine = Engine.create () in
  let ids = List.init 5 (fun i -> Engine.schedule engine ~at:(float_of_int (i + 1)) ignore) in
  Engine.cancel engine (List.nth ids 0);
  Engine.cancel engine (List.nth ids 1);
  Engine.cancel engine (List.nth ids 1);
  (* double cancel is a no-op *)
  Engine.run engine;
  let stats = Engine.stats engine in
  Alcotest.(check int) "scheduled" 5 stats.Engine.scheduled;
  Alcotest.(check int) "cancelled" 2 stats.Engine.cancelled;
  Alcotest.(check int) "executed" 3 stats.Engine.executed;
  Alcotest.(check int) "pending" 0 stats.Engine.pending;
  Alcotest.(check int) "heap high-water" 5 stats.Engine.max_heap_depth

(* -- Metrics hardening --------------------------------------------------- *)

let test_repair_underflow_clamps () =
  let metrics = Metrics.create ~replicas:4 ~start:0. in
  (* Repair with nothing damaged: must not abort, must be counted. *)
  Metrics.on_replica_repaired metrics ~now:1.;
  Metrics.on_replica_damaged metrics ~now:2.;
  Metrics.on_replica_repaired metrics ~now:3.;
  Metrics.on_replica_repaired metrics ~now:4.;
  let summary = Metrics.finalize metrics ~now:10. in
  Alcotest.(check int) "underflows counted" 2 summary.Metrics.repair_underflows;
  let sample = Metrics.sample metrics ~now:10. in
  Alcotest.(check int) "damage clamped at zero" 0 sample.Metrics.damaged_replicas

(* -- Duration parsing ---------------------------------------------------- *)

let test_duration_of_string () =
  let ok s expect =
    match Duration.of_string s with
    | Ok v -> Alcotest.(check (float 1e-6)) s expect v
    | Error msg -> Alcotest.failf "%s: %s" s msg
  in
  ok "7d" (Duration.of_days 7.);
  ok "12h" (12. *. Duration.hour);
  ok "90" 90.;
  ok "90s" 90.;
  ok "5m" (5. *. Duration.minute);
  ok "2w" (Duration.of_days 14.);
  ok "1mo" Duration.month;
  ok "0.5y" (Duration.of_years 0.5);
  ok " 3d " (Duration.of_days 3.);
  List.iter
    (fun s ->
      match Duration.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "x"; "-5d"; "5q"; ""; "d"; "1.2.3h" ]

(* -- End to end: Scenario observability ---------------------------------- *)

let test_scenario_observability_end_to_end () =
  let trace_path = Filename.temp_file "obs_trace" ".jsonl" in
  let metrics_path = Filename.temp_file "obs_metrics" ".csv" in
  let seeds = [ 5; 6 ] in
  let seeded path seed = Experiments.Scenario.seeded_path path ~seed in
  let per_seed path = List.map (fun seed -> seeded path seed) seeds in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        ((trace_path :: metrics_path :: per_seed trace_path) @ per_seed metrics_path))
    (fun () ->
      let scale =
        {
          Experiments.Scenario.peers = 10;
          aus = 1;
          quorum = 3;
          max_disagree = 1;
          outer_circle = 3;
          reference_target = 6;
          years = 0.25;
          runs = 2;
          seed = 5;
        }
      in
      let cfg = Experiments.Scenario.config scale in
      let observe =
        {
          Experiments.Scenario.default_observe with
          Experiments.Scenario.trace_out = Some trace_path;
          metrics_out = Some metrics_path;
          sample_interval = Duration.of_days 7.;
        }
      in
      (* Two runs; each writes its own seed-suffixed trace and metrics file. *)
      ignore
        (Experiments.Scenario.run_avg ~observe ~cfg scale
           Experiments.Scenario.No_attack);
      List.iter
        (fun seed ->
          (* Trace file: every line parses back to a typed event. *)
          let trace_lines = read_lines (seeded trace_path seed) in
          Alcotest.(check bool)
            (Printf.sprintf "trace nonempty (seed %d)" seed)
            true
            (List.length trace_lines > 10);
          List.iter
            (fun line ->
              match
                Result.bind (Json.of_string line) (fun json -> Trace.of_json json)
              with
              | Ok _ -> ()
              | Error msg -> Alcotest.failf "trace line %S: %s" line msg)
            trace_lines;
          (* Metrics file: one header plus 13 weekly samples for this run. *)
          match read_lines (seeded metrics_path seed) with
          | [] -> Alcotest.failf "empty metrics file (seed %d)" seed
          | header :: rows ->
            Alcotest.(check string) "header" (String.concat "," Sampler.columns) header;
            (* 0.25 y = 91.25 days -> 13 full 7-day intervals. *)
            Alcotest.(check int) (Printf.sprintf "rows (seed %d)" seed) 13
              (List.length rows);
            let row_seeds =
              List.sort_uniq compare
                (List.map (fun row -> List.hd (String.split_on_char ',' row)) rows)
            in
            Alcotest.(check (list string))
              (Printf.sprintf "seed column (seed %d)" seed)
              [ string_of_int seed ] row_seeds)
        seeds)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "observability"
    [
      ( "json",
        [
          quick "round trip" test_json_round_trip;
          quick "rejects garbage" test_json_rejects_garbage;
          quick "numbers" test_json_numbers;
        ] );
      ( "trace",
        [
          quick "jsonl round trip (all kinds)" test_trace_jsonl_round_trip;
          quick "sink fan-out" test_trace_sink_fanout;
          quick "filter sink" test_trace_filter_sink;
          quick "severity order" test_trace_severity_order;
          quick "ring recorder counts drops" test_recorder_counts_drops;
          quick "recorder under capacity" test_recorder_under_capacity_drops_nothing;
        ] );
      ( "registry",
        [
          quick "counters and gauges" test_registry_counters_and_gauges;
          quick "histogram quantiles" test_registry_histogram_quantiles;
          quick "histogram window" test_registry_histogram_window_evicts;
          quick "snapshot" test_registry_snapshot;
        ] );
      ( "series",
        [
          quick "csv" test_series_csv;
          quick "jsonl" test_series_jsonl;
          quick "format by path" test_series_format_of_path;
        ] );
      ( "sampler",
        [
          quick "tick alignment with run_until" test_sampler_tick_alignment;
          quick "sees metric changes" test_sampler_sees_metric_changes;
          quick "series writer deltas" test_sampler_series_writer_deltas;
        ] );
      ( "engine",
        [ quick "profiling stats" test_engine_stats ] );
      ( "metrics",
        [ quick "repair underflow clamps" test_repair_underflow_clamps ] );
      ( "duration",
        [ quick "of_string" test_duration_of_string ] );
      ( "scenario",
        [ quick "end-to-end files" test_scenario_observability_end_to_end ] );
    ]
