(* Tests for the result-baseline layer: Obs.Baseline comparison
   semantics and JSON round-trips, and Experiments.Golden capture —
   including the drift-injection check: a copied pin with one perturbed
   metric must fail the diff with an actionable per-metric delta. *)

module B = Obs.Baseline
module Json = Obs.Json
open Experiments

let micro =
  {
    Scenario.peers = 15;
    aus = 2;
    quorum = 4;
    max_disagree = 1;
    outer_circle = 3;
    reference_target = 8;
    years = 1.;
    runs = 1;
    seed = 5;
  }

let doc ?(experiment = "figX") ?(config = [ ("peers", Json.Int 15) ]) metrics =
  B.make ~experiment ~config metrics

(* -- Comparison semantics ------------------------------------------------ *)

let test_identical_ok () =
  let t = doc [ B.metric "af" 1.5e-3; B.metric "zero" 0.; B.metric "nan" nan ] in
  let report = B.compare ~baseline:t ~current:t in
  Alcotest.(check bool) "identical docs pass (NaN and zero included)" true
    (B.ok report);
  Alcotest.(check int) "no drifted deltas" 0 (List.length (B.drifted report))

let test_within_tolerance_ok () =
  let pinned = doc [ B.metric ~tolerance_pct:1.0 "af" 100. ] in
  let current = doc [ B.metric ~tolerance_pct:1.0 "af" 100.9 ] in
  Alcotest.(check bool) "0.9% move under a 1% tolerance passes" true
    (B.ok (B.compare ~baseline:pinned ~current))

let test_two_sided_drift () =
  let pinned = doc [ B.metric ~direction:B.Higher_is_worse "af" 100. ] in
  let up = doc [ B.metric "af" 101. ] in
  let down = doc [ B.metric "af" 99. ] in
  let verdict current =
    match B.drifted (B.compare ~baseline:pinned ~current) with
    | [ d ] -> d.B.verdict
    | _ -> Alcotest.fail "expected exactly one drifted metric"
  in
  (* Both directions fail — the science moved either way — but the
     direction labels which way. *)
  Alcotest.(check bool) "upward drift labelled worse" true
    (verdict up = B.Drift_worse);
  Alcotest.(check bool) "downward drift labelled better" true
    (verdict down = B.Drift_better)

let test_lower_is_worse_labels () =
  let pinned = doc [ B.metric ~direction:B.Lower_is_worse "cost_ratio" 2.0 ] in
  let collapsed = doc [ B.metric "cost_ratio" 1.0 ] in
  match B.drifted (B.compare ~baseline:pinned ~current:collapsed) with
  | [ d ] ->
    Alcotest.(check bool) "cost-ratio collapse is worse" true
      (d.B.verdict = B.Drift_worse)
  | _ -> Alcotest.fail "expected exactly one drifted metric"

let test_neutral_drift_unlabelled () =
  let pinned = doc [ B.metric ~direction:B.Neutral "mean" 1.0 ] in
  let current = doc [ B.metric "mean" 2.0 ] in
  match B.drifted (B.compare ~baseline:pinned ~current) with
  | [ d ] ->
    Alcotest.(check bool) "neutral metric drifts without a direction label" true
      (d.B.verdict = B.Drift)
  | _ -> Alcotest.fail "expected exactly one drifted metric"

let test_zero_pin_exact () =
  let pinned = doc [ B.metric "af" 0. ] in
  Alcotest.(check bool) "pinned zero accepts exact zero" true
    (B.ok (B.compare ~baseline:pinned ~current:(doc [ B.metric "af" 0. ])));
  Alcotest.(check bool) "pinned zero rejects any nonzero" false
    (B.ok (B.compare ~baseline:pinned ~current:(doc [ B.metric "af" 1e-12 ])))

let test_nan_vs_number_drifts () =
  let report =
    B.compare
      ~baseline:(doc [ B.metric "af" nan ])
      ~current:(doc [ B.metric "af" 0.5 ])
  in
  Alcotest.(check bool) "NaN pin vs number fails" false (B.ok report);
  match B.drifted report with
  | [ d ] ->
    Alcotest.(check bool) "undirected verdict for a NaN side" true
      (d.B.verdict = B.Drift)
  | _ -> Alcotest.fail "expected exactly one drifted metric"

let test_missing_added_config () =
  let pinned = doc ~config:[ ("peers", Json.Int 15) ] [ B.metric "a" 1. ] in
  let current = doc ~config:[ ("peers", Json.Int 25) ] [ B.metric "b" 1. ] in
  let report = B.compare ~baseline:pinned ~current in
  Alcotest.(check bool) "missing/added/config all fail the diff" false
    (B.ok report);
  Alcotest.(check (list string)) "missing metric" [ "a" ] report.B.missing;
  Alcotest.(check (list string)) "added metric" [ "b" ] report.B.added;
  Alcotest.(check int) "config mismatch surfaces" 1
    (List.length report.B.config_mismatch)

let test_config_numeric_equivalence () =
  (* The pretty writer prints 1.0 as "1", which parses back as Int:
     numerically equal Int/Float config values must not flag. *)
  let pinned = doc ~config:[ ("years", Json.Int 1) ] [ B.metric "a" 1. ] in
  let current = doc ~config:[ ("years", Json.Float 1.0) ] [ B.metric "a" 1. ] in
  Alcotest.(check bool) "Int 1 config equals Float 1.0" true
    (B.ok (B.compare ~baseline:pinned ~current))

(* -- JSON round-trip ----------------------------------------------------- *)

let test_json_round_trip () =
  let t =
    B.make ~experiment:"fig3"
      ~config:[ ("peers", Json.Int 15); ("years", Json.Float 0.5) ]
      ~provenance:[ ("git", Json.String "abc123") ]
      [
        B.metric ~direction:B.Higher_is_worse ~tolerance_pct:0.5 "af" 1.5e-3;
        B.metric ~direction:B.Lower_is_worse "cost" 2.0;
        B.metric ~direction:B.Neutral "mean" 0.25;
        B.metric "nan_metric" nan;
        B.metric "inf_metric" infinity;
        B.metric "neg_inf_metric" neg_infinity;
      ]
  in
  match B.of_json (B.to_json t) with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
    Alcotest.(check string) "experiment" t.B.experiment t'.B.experiment;
    Alcotest.(check int) "metric count" (List.length t.B.metrics)
      (List.length t'.B.metrics);
    (* A round-tripped document diffs clean against the original —
       non-finite values included. *)
    Alcotest.(check bool) "round trip diffs clean" true
      (B.ok (B.compare ~baseline:t ~current:t'));
    let find name =
      List.find (fun (m : B.metric) -> m.B.name = name) t'.B.metrics
    in
    Alcotest.(check bool) "NaN survives" true
      (Float.is_nan (find "nan_metric").B.value);
    Alcotest.(check bool) "inf survives" true
      ((find "inf_metric").B.value = infinity);
    Alcotest.(check bool) "-inf survives" true
      ((find "neg_inf_metric").B.value = neg_infinity);
    Alcotest.(check (float 0.)) "tolerance survives" 0.5 (find "af").B.tolerance_pct;
    Alcotest.(check bool) "direction survives" true
      ((find "cost").B.direction = B.Lower_is_worse)

let test_of_json_rejects () =
  let reject name json =
    match B.of_json json with
    | Ok _ -> Alcotest.failf "%s: expected rejection" name
    | Error _ -> ()
  in
  reject "wrong schema"
    (Json.Assoc [ ("schema", Json.String "something-else/9") ]);
  reject "missing schema" (Json.Assoc [ ("experiment", Json.String "x") ]);
  let dup =
    B.to_json (doc [ B.metric "a" 1. ])
  in
  (match dup with
  | Json.Assoc fields ->
    let doubled =
      List.map
        (fun (k, v) ->
          match v with
          | Json.List ms when k = "metrics" -> (k, Json.List (ms @ ms))
          | _ -> (k, v))
        fields
    in
    reject "duplicate metric names" (Json.Assoc doubled)
  | _ -> Alcotest.fail "to_json did not produce an object")

let test_save_load () =
  let dir = Filename.temp_file "baseline" "" in
  Sys.remove dir;
  let t = doc ~experiment:"fig3" [ B.metric "af" 1.5e-3 ] in
  B.save ~dir t;
  let path = B.path ~dir "fig3" in
  Alcotest.(check bool) "file written" true (Sys.file_exists path);
  (match B.load path with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
    Alcotest.(check bool) "saved pin diffs clean" true
      (B.ok (B.compare ~baseline:t ~current:t')));
  Sys.remove path;
  Unix.rmdir dir

(* -- Golden capture ------------------------------------------------------ *)

let sweeps = Golden.sweeps ~scale:micro

let test_capture_targets () =
  List.iter
    (fun target ->
      match Golden.capture sweeps ~scale:micro target with
      | Error msg -> Alcotest.fail msg
      | Ok t ->
        Alcotest.(check string) "experiment named after target" target
          t.B.experiment;
        Alcotest.(check bool)
          (target ^ " has metrics")
          true
          (List.length t.B.metrics > 0);
        (* Headlines are present for every target. *)
        Alcotest.(check bool)
          (target ^ " has a .worst headline")
          true
          (List.exists
             (fun (m : B.metric) ->
               String.length m.B.name > 6
               && String.sub m.B.name (String.length m.B.name - 6) 6 = ".worst")
             t.B.metrics))
    Golden.targets;
  match Golden.capture sweeps ~scale:micro "fig99" with
  | Ok _ -> Alcotest.fail "unknown target accepted"
  | Error _ -> ()

let test_capture_deterministic () =
  (* Two independent sweeps at the same scale capture identical
     documents — the property the whole pinning scheme rests on. *)
  let s1 = Golden.sweeps ~scale:micro in
  let s2 = Golden.sweeps ~scale:micro in
  let c1 = Golden.capture s1 ~scale:micro "fig3" in
  let c2 = Golden.capture s2 ~scale:micro "fig3" in
  match (c1, c2) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "re-captured sweep diffs clean" true
      (B.ok (B.compare ~baseline:a ~current:b))
  | _ -> Alcotest.fail "capture failed"

(* The acceptance check for the whole observatory: copy a pinned
   baseline, inject drift into one metric past its tolerance, and the
   diff must fail with that metric's name, values and verdict. *)
let test_drift_injection_on_copied_baseline () =
  let pinned =
    match Golden.capture sweeps ~scale:micro "table1" with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  let dir = Filename.temp_file "baseline" "" in
  Sys.remove dir;
  B.save ~dir pinned;
  let loaded =
    match B.load (B.path ~dir "table1") with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  (* Perturb the first finite nonzero metric of the copy well past its
     tolerance; the perturbed copy plays the "pinned" side, the honest
     capture the "current" side — exactly the nightly-gate shape. *)
  let victim =
    match
      List.find_opt
        (fun (m : B.metric) -> Float.is_finite m.B.value && m.B.value <> 0.)
        loaded.B.metrics
    with
    | Some m -> m
    | None -> Alcotest.fail "no finite nonzero metric to perturb"
  in
  let perturbed =
    {
      loaded with
      B.metrics =
        List.map
          (fun (m : B.metric) ->
            if m.B.name = victim.B.name then
              { m with B.value = m.B.value *. 1.5 }
            else m)
          loaded.B.metrics;
    }
  in
  let report = B.compare ~baseline:perturbed ~current:pinned in
  Alcotest.(check bool) "perturbed pin fails the diff" false (B.ok report);
  (match B.drifted report with
  | [ d ] ->
    Alcotest.(check string) "delta names the perturbed metric" victim.B.name
      d.B.name;
    Alcotest.(check (float 1e-9)) "delta carries the pinned value"
      (victim.B.value *. 1.5) d.B.pinned;
    Alcotest.(check (float 1e-9)) "delta carries the current value"
      victim.B.value d.B.current;
    Alcotest.(check bool) "verdict is a drift" true (d.B.verdict <> B.Within)
  | ds -> Alcotest.failf "expected exactly one drifted metric, got %d"
            (List.length ds));
  (* And the rendered report carries the actionable re-pin hint. *)
  let rendered = Format.asprintf "%a" B.pp_report report in
  let contains needle haystack =
    let nlen = String.length needle in
    let rec go i =
      i + nlen <= String.length haystack
      && (String.sub haystack i nlen = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "report names the metric" true
    (contains victim.B.name rendered);
  Alcotest.(check bool) "report suggests re-pinning" true
    (contains "re-pin with pin-baseline" rendered);
  Sys.remove (B.path ~dir "table1");
  Unix.rmdir dir

let test_config_fingerprint_gates () =
  (* The same results captured under a different scale must fail on the
     fingerprint, not silently compare metric-by-metric. *)
  let other = { micro with Scenario.seed = 6 } in
  let a =
    match Golden.capture sweeps ~scale:micro "fig2" with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  let b =
    match Golden.capture sweeps ~scale:other "fig2" with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  let report = B.compare ~baseline:a ~current:b in
  Alcotest.(check bool) "scale change fails" false (B.ok report);
  Alcotest.(check bool) "the failure is a config mismatch" true
    (report.B.config_mismatch <> [])

let () =
  Alcotest.run "baseline"
    [
      ( "compare",
        [
          Alcotest.test_case "identical ok" `Quick test_identical_ok;
          Alcotest.test_case "within tolerance" `Quick test_within_tolerance_ok;
          Alcotest.test_case "two-sided drift" `Quick test_two_sided_drift;
          Alcotest.test_case "lower-is-worse labels" `Quick
            test_lower_is_worse_labels;
          Alcotest.test_case "neutral drift" `Quick test_neutral_drift_unlabelled;
          Alcotest.test_case "zero pin exact" `Quick test_zero_pin_exact;
          Alcotest.test_case "nan vs number" `Quick test_nan_vs_number_drifts;
          Alcotest.test_case "missing/added/config" `Quick
            test_missing_added_config;
          Alcotest.test_case "config numeric equivalence" `Quick
            test_config_numeric_equivalence;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "rejects bad documents" `Quick test_of_json_rejects;
          Alcotest.test_case "save/load" `Quick test_save_load;
        ] );
      ( "golden",
        [
          Alcotest.test_case "all targets capture" `Quick test_capture_targets;
          Alcotest.test_case "capture deterministic" `Quick
            test_capture_deterministic;
          Alcotest.test_case "drift injection on a copied pin" `Quick
            test_drift_injection_on_copied_baseline;
          Alcotest.test_case "config fingerprint gates" `Quick
            test_config_fingerprint_gates;
        ] );
    ]
