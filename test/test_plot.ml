(* Golden tests for the gnuplot figure writers.

   Each case renders one figN.dat or figN.gp from a small seeded sweep
   and compares its MD5 against a pinned golden: the .dat bytes are
   downstream of every simulation layer, so a drifted golden means a
   change moved the figures the paper reproduction emits.

   Regenerate (only when figure output is MEANT to change) with:

     GOLDEN_REGEN=$PWD/test/goldens/plot.golden \
       dune exec test/test_plot.exe
*)

open Experiments

(* Under [dune runtest] the cwd is _build/default/test (the goldens are
   declared as test deps); under [dune exec] from the workspace root it
   is the root itself. *)
let golden_file =
  lazy
    (List.find Sys.file_exists [ "goldens/plot.golden"; "test/goldens/plot.golden" ])

(* Same micro scale the baseline tests pin: small enough that the three
   sweeps take seconds, large enough that every figure has distinct
   series. *)
let micro =
  {
    Scenario.peers = 15;
    aus = 2;
    quorum = 4;
    max_disagree = 1;
    outer_circle = 3;
    reference_target = 8;
    years = 1.;
    runs = 1;
    seed = 5;
  }

let with_temp_dir f =
  let dir = Filename.temp_file "plot_golden" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read path = In_channel.with_open_bin path In_channel.input_all

(* One sweep per attack family, shared across that family's cases. *)
let stoppage = lazy (Stoppage.sweep ~scale:micro ())
let admission = lazy (Admission_attack.sweep ~scale:micro ())
let baseline = lazy (Baseline.sweep ~scale:micro ())

let render_family write files () =
  with_temp_dir (fun dir ->
      write ~dir;
      List.map (fun name -> (name, read (Filename.concat dir name))) files)

let families =
  [
    ( render_family
        (fun ~dir -> Plot.write_stoppage ~dir (Lazy.force stoppage))
        [ "fig3.dat"; "fig3.gp"; "fig4.dat"; "fig4.gp"; "fig5.dat"; "fig5.gp" ] );
    ( render_family
        (fun ~dir -> Plot.write_admission ~dir (Lazy.force admission))
        [ "fig6.dat"; "fig6.gp"; "fig7.dat"; "fig7.gp"; "fig8.dat"; "fig8.gp" ] );
    ( render_family
        (fun ~dir -> Plot.write_baseline ~dir (Lazy.force baseline))
        [ "fig2.dat"; "fig2.gp" ] );
  ]

let cases () = List.concat_map (fun family -> family ()) families

let digest s = Digest.to_hex (Digest.string s)

(* -- Golden plumbing ----------------------------------------------------- *)

let load_goldens path =
  In_channel.with_open_text path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some line ->
          (match String.index_opt line '=' with
          | None -> go acc
          | Some i ->
            go
              ((String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1))
              :: acc))
      in
      go [])

let regen path =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun (name, content) ->
          let d = digest content in
          Printf.fprintf oc "%s=%s\n" name d;
          Printf.printf "%s=%s\n%!" name d)
        (cases ()))

let check_case goldens name content () =
  match List.assoc_opt name goldens with
  | None -> Alcotest.fail (Printf.sprintf "no golden pinned for %s" name)
  | Some expected ->
    let actual = digest content in
    if actual <> expected then
      Alcotest.fail
        (Printf.sprintf
           "%s drifted from its golden\n  pinned %s\n  actual %s\n\
            If the figure change is intended, regenerate with\n\
            GOLDEN_REGEN=$PWD/test/goldens/plot.golden dune exec \
            test/test_plot.exe\n--- emitted ---\n%s"
           name expected actual content)

let () =
  match Sys.getenv_opt "GOLDEN_REGEN" with
  | Some path when path <> "" -> regen path
  | _ ->
    let goldens = load_goldens (Lazy.force golden_file) in
    Alcotest.run "plot"
      [
        ( "goldens",
          List.map
            (fun (name, content) ->
              Alcotest.test_case name `Quick (check_case goldens name content))
            (cases ()) );
      ]
