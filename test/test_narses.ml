(* Tests for the discrete-event engine and the network substrate. *)

module Engine = Narses.Engine
module Topology = Narses.Topology
module Partition = Narses.Partition
module Net = Narses.Net
module Rng = Repro_prelude.Rng

(* -- Engine ----------------------------------------------------------- *)

let test_engine_runs_in_time_order () =
  let engine = Engine.create () in
  let trace = ref [] in
  let note tag () = trace := tag :: !trace in
  ignore (Engine.schedule engine ~at:3. (note "c"));
  ignore (Engine.schedule engine ~at:1. (note "a"));
  ignore (Engine.schedule engine ~at:2. (note "b"));
  Engine.run engine;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !trace)

let test_engine_fifo_at_equal_times () =
  let engine = Engine.create () in
  let trace = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule engine ~at:1. (fun () -> trace := i :: !trace))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !trace)

let test_engine_clock_advances () =
  let engine = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule engine ~at:2.5 (fun () -> seen := Engine.now engine :: !seen));
  ignore (Engine.schedule engine ~at:7. (fun () -> seen := Engine.now engine :: !seen));
  Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "clock at event times" [ 2.5; 7. ] (List.rev !seen)

let test_engine_schedule_in_past_rejected () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~at:5. (fun () -> ()));
  Engine.run engine;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Engine.schedule engine ~at:1. (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule engine ~at:1. (fun () -> fired := true) in
  Engine.cancel engine id;
  Engine.run engine;
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check int) "no live events" 0 (Engine.pending engine)

let test_engine_cancel_twice_harmless () =
  let engine = Engine.create () in
  let id = Engine.schedule engine ~at:1. (fun () -> ()) in
  Engine.cancel engine id;
  Engine.cancel engine id;
  Alcotest.(check int) "pending zero, not negative" 0 (Engine.pending engine)

let test_engine_events_scheduling_events () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec chain n () =
    incr count;
    if n > 1 then ignore (Engine.schedule_in engine ~after:1. (chain (n - 1)))
  in
  ignore (Engine.schedule engine ~at:0. (chain 10));
  Engine.run engine;
  Alcotest.(check int) "chain length" 10 !count;
  Alcotest.(check (float 1e-9)) "final time" 9. (Engine.now engine)

let test_engine_run_until_limit () =
  let engine = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun at -> ignore (Engine.schedule engine ~at (fun () -> fired := at :: !fired)))
    [ 1.; 2.; 10. ];
  Engine.run_until engine ~limit:5.;
  Alcotest.(check (list (float 1e-9))) "only early events" [ 1.; 2. ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock at limit" 5. (Engine.now engine);
  Alcotest.(check int) "late event still pending" 1 (Engine.pending engine);
  Engine.run_until engine ~limit:20.;
  Alcotest.(check (list (float 1e-9))) "late event fires later" [ 1.; 2.; 10. ]
    (List.rev !fired)

let test_engine_budget_ignores_cancelled () =
  (* Regression: run_until used to charge its event budget before
     draining cancelled entries at the heap head, so a burst of
     cancellations could raise Event_limit_exceeded even though no live
     event beyond the budget would ever execute. *)
  let engine = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule engine ~at:1. (fun () -> incr fired));
  (* Cancelled debris sitting at the heap head within the time limit... *)
  List.iter
    (fun at ->
      let id = Engine.schedule engine ~at ignore in
      Engine.cancel engine id)
    [ 2.; 3.; 4. ];
  (* ...and a live event beyond the limit that must stay pending. *)
  ignore (Engine.schedule engine ~at:100. ignore);
  (* Budget 1 covers exactly the one live event inside the limit. *)
  Engine.run_until ~max_events:1 engine ~limit:10.;
  Alcotest.(check int) "live event executed" 1 !fired;
  Alcotest.(check int) "late event untouched" 1 (Engine.pending engine)

let prop_engine_never_runs_backwards =
  QCheck2.Test.make ~name:"events never run out of time order" ~count:100
    QCheck2.Gen.(list_size (int_range 1 100) (float_range 0. 1000.))
    (fun times ->
      let engine = Engine.create () in
      let last = ref neg_infinity in
      let monotone = ref true in
      List.iter
        (fun at ->
          ignore
            (Engine.schedule engine ~at (fun () ->
                 if Engine.now engine < !last then monotone := false;
                 last := Engine.now engine)))
        times;
      Engine.run engine;
      !monotone)

(* -- Topology --------------------------------------------------------- *)

let make_topology ?(nodes = 20) () =
  Topology.create ~rng:(Rng.create 99) ~nodes

let test_topology_bandwidth_choices () =
  let t = make_topology ~nodes:200 () in
  for n = 0 to 199 do
    let bw = Topology.bandwidth_bps t n in
    Alcotest.(check bool) "bandwidth from paper's set" true
      (List.mem bw [ 1.5e6; 10.0e6; 100.0e6 ])
  done

let test_topology_latency_range () =
  let t = make_topology ~nodes:200 () in
  for src = 0 to 19 do
    for dst = 0 to 19 do
      if src <> dst then begin
        let l = Topology.path_latency t ~src ~dst in
        Alcotest.(check bool) "latency in [1,30] ms" true (l >= 0.001 && l <= 0.030)
      end
    done
  done

let test_topology_transfer_time () =
  let t = make_topology () in
  let small = Topology.transfer_time t ~src:0 ~dst:1 ~bytes:100 in
  let large = Topology.transfer_time t ~src:0 ~dst:1 ~bytes:1_000_000 in
  Alcotest.(check bool) "positive" true (small > 0.);
  Alcotest.(check bool) "larger payload slower" true (large > small);
  (* Serialisation term: (large - small) = 8 * delta_bytes / bottleneck *)
  let bottleneck = min (Topology.bandwidth_bps t 0) (Topology.bandwidth_bps t 1) in
  let expected = 8. *. 999_900. /. bottleneck in
  Alcotest.(check (float 1e-9)) "bandwidth math" expected (large -. small)

(* -- Partition -------------------------------------------------------- *)

let test_partition_stop_restore () =
  let p = Partition.create ~nodes:4 in
  Alcotest.(check bool) "initially open" false (Partition.blocked p ~src:0 ~dst:1);
  Partition.stop p 1;
  Alcotest.(check bool) "blocked as dst" true (Partition.blocked p ~src:0 ~dst:1);
  Alcotest.(check bool) "blocked as src" true (Partition.blocked p ~src:1 ~dst:2);
  Alcotest.(check bool) "others fine" false (Partition.blocked p ~src:0 ~dst:2);
  Alcotest.(check int) "count" 1 (Partition.stopped_count p);
  Partition.stop p 1;
  Alcotest.(check int) "idempotent stop" 1 (Partition.stopped_count p);
  Partition.restore p 1;
  Alcotest.(check bool) "restored" false (Partition.blocked p ~src:0 ~dst:1);
  Partition.restore p 1;
  Alcotest.(check int) "idempotent restore" 0 (Partition.stopped_count p)

let test_partition_restore_all () =
  let p = Partition.create ~nodes:5 in
  List.iter (Partition.stop p) [ 0; 2; 4 ];
  Partition.restore_all p;
  Alcotest.(check int) "all restored" 0 (Partition.stopped_count p)

(* -- Net -------------------------------------------------------------- *)

let make_net ?model () =
  let engine = Engine.create () in
  let topology = make_topology () in
  let partition = Partition.create ~nodes:20 in
  let net = Net.create ?model ~engine ~topology ~partition () in
  (engine, topology, partition, net)

let test_net_delivers () =
  let engine, topology, _, net = make_net () in
  let received = ref [] in
  Net.register net 1 (fun ~src msg -> received := (src, msg, Engine.now engine) :: !received);
  Net.send net ~src:0 ~dst:1 ~bytes:1000 "hello";
  Engine.run engine;
  match !received with
  | [ (src, msg, at) ] ->
    Alcotest.(check int) "src" 0 src;
    Alcotest.(check string) "payload" "hello" msg;
    let expected = Topology.transfer_time topology ~src:0 ~dst:1 ~bytes:1000 in
    Alcotest.(check (float 1e-9)) "delivery time" expected at;
    Alcotest.(check int) "delivered count" 1 (Net.delivered_count net);
    Alcotest.(check int) "bytes" 1000 (Net.bytes_delivered net)
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_net_drops_when_stopped_at_send () =
  let engine, _, partition, net = make_net () in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr received);
  Partition.stop partition 1;
  Net.send net ~src:0 ~dst:1 ~bytes:10 "lost";
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 !received;
  Alcotest.(check int) "dropped" 1 (Net.dropped_count net)

let test_net_drops_mid_flight () =
  let engine, _, partition, net = make_net () in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr received);
  Net.send net ~src:0 ~dst:1 ~bytes:10 "doomed";
  (* Stop the destination before the propagation delay elapses. *)
  ignore (Engine.schedule engine ~at:0. (fun () -> Partition.stop partition 1));
  Engine.run engine;
  Alcotest.(check int) "mid-flight message lost" 0 !received;
  Alcotest.(check int) "dropped" 1 (Net.dropped_count net)

let test_net_unregistered_destination () =
  let engine, _, _, net = make_net () in
  Net.send net ~src:0 ~dst:2 ~bytes:10 "void";
  Engine.run engine;
  Alcotest.(check int) "counted as dropped" 1 (Net.dropped_count net)

let test_net_bidirectional () =
  let engine, _, _, net = make_net () in
  let log = ref [] in
  Net.register net 0 (fun ~src:_ msg -> log := ("at0", msg) :: !log);
  Net.register net 1 (fun ~src msg ->
      log := ("at1", msg) :: !log;
      Net.send net ~src:1 ~dst:src ~bytes:10 "pong");
  Net.send net ~src:0 ~dst:1 ~bytes:10 "ping";
  Engine.run engine;
  Alcotest.(check (list (pair string string))) "request/response" [ ("at1", "ping"); ("at0", "pong") ]
    (List.rev !log)

let test_net_shared_bottleneck_slows_concurrency () =
  let engine, topology, _, net = make_net ~model:Net.Shared_bottleneck () in
  let arrival = ref nan in
  Net.register net 1 (fun ~src:_ msg -> if msg = "probe" then arrival := Engine.now engine);
  Net.register net 3 (fun ~src:_ _ -> ());
  (* A single transfer matches the uncongested time... *)
  Net.send net ~src:0 ~dst:1 ~bytes:100_000 "probe";
  Engine.run engine;
  let solo = !arrival in
  Alcotest.(check (float 1e-9)) "solo = delay-only time"
    (Topology.transfer_time topology ~src:0 ~dst:1 ~bytes:100_000)
    solo;
  (* ...but a transfer sharing the source link is slower. *)
  let engine2, topology2, _, net2 = make_net ~model:Net.Shared_bottleneck () in
  let arrival2 = ref nan in
  Net.register net2 1 (fun ~src:_ msg -> if msg = "probe" then arrival2 := Engine.now engine2);
  Net.register net2 3 (fun ~src:_ _ -> ());
  Net.send net2 ~src:0 ~dst:3 ~bytes:10_000_000 "bulk";
  Net.send net2 ~src:0 ~dst:1 ~bytes:100_000 "probe";
  Engine.run engine2;
  ignore topology2;
  Alcotest.(check bool) "congested probe is slower" true (!arrival2 > solo);
  Alcotest.(check int) "links idle at the end" 0 (Net.active_transfers net2 0)

let test_net_delay_only_ignores_concurrency () =
  let engine, topology, _, net = make_net () in
  let arrival = ref nan in
  Net.register net 1 (fun ~src:_ msg -> if msg = "probe" then arrival := Engine.now engine);
  Net.register net 3 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:3 ~bytes:10_000_000 "bulk";
  Net.send net ~src:0 ~dst:1 ~bytes:100_000 "probe";
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "probe unaffected by bulk transfer"
    (Topology.transfer_time topology ~src:0 ~dst:1 ~bytes:100_000)
    !arrival

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "narses"
    [
      ( "engine",
        [
          quick "time order" test_engine_runs_in_time_order;
          quick "fifo ties" test_engine_fifo_at_equal_times;
          quick "clock advances" test_engine_clock_advances;
          quick "no scheduling in the past" test_engine_schedule_in_past_rejected;
          quick "cancel" test_engine_cancel;
          quick "cancel twice" test_engine_cancel_twice_harmless;
          quick "events schedule events" test_engine_events_scheduling_events;
          quick "run_until" test_engine_run_until_limit;
          quick "budget ignores cancelled" test_engine_budget_ignores_cancelled;
          QCheck_alcotest.to_alcotest prop_engine_never_runs_backwards;
        ] );
      ( "topology",
        [
          quick "bandwidth choices" test_topology_bandwidth_choices;
          quick "latency range" test_topology_latency_range;
          quick "transfer time" test_topology_transfer_time;
        ] );
      ( "partition",
        [
          quick "stop/restore" test_partition_stop_restore;
          quick "restore_all" test_partition_restore_all;
        ] );
      ( "net",
        [
          quick "delivery" test_net_delivers;
          quick "drop at send" test_net_drops_when_stopped_at_send;
          quick "drop mid-flight" test_net_drops_mid_flight;
          quick "unregistered destination" test_net_unregistered_destination;
          quick "bidirectional exchange" test_net_bidirectional;
          quick "shared bottleneck congestion" test_net_shared_bottleneck_slows_concurrency;
          quick "delay-only has no congestion" test_net_delay_only_ignores_concurrency;
        ] );
    ]
