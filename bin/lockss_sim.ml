(* lockss_sim: command-line driver for the LOCKSS attrition-defense
   simulator.

     lockss_sim run           -- one scenario, fully parameterised
     lockss_sim reproduce     -- regenerate a paper figure/table
     lockss_sim ablate        -- defense ablation table
     lockss_sim chaos         -- fault injection + invariant checks
     lockss_sim pin-baseline  -- pin golden result baselines
     lockss_sim diff-baseline -- diff fresh results against the pins *)

module Duration = Repro_prelude.Duration
module Scenario = Experiments.Scenario
module Chaos = Experiments.Chaos
open Cmdliner

(* -- Shared options ---------------------------------------------------- *)

let peers =
  Arg.(value & opt int 25 & info [ "peers" ] ~docv:"N" ~doc:"Loyal peer population size.")

let aus =
  Arg.(value & opt int 4 & info [ "aus" ] ~docv:"N" ~doc:"Archival units preserved per peer.")

let quorum = Arg.(value & opt int 5 & info [ "quorum" ] ~docv:"N" ~doc:"Poll quorum.")

let years =
  Arg.(value & opt float 2. & info [ "years" ] ~docv:"Y" ~doc:"Simulated horizon in years.")

let runs =
  Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc:"Runs averaged per data point.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Root random seed.")

(* Every command that fans out independent simulations honors --jobs;
   the setting is a performance knob only — results are byte-identical
   at any worker count. *)
let jobs =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for independent simulation runs: $(b,1) forces serial \
           execution, $(b,0) (default) uses $(b,LOCKSS_JOBS) or the machine's \
           recommended domain count. Results are identical at any setting.")

let set_jobs n =
  try Experiments.Runner.set_jobs n
  with Invalid_argument msg ->
    Printf.eprintf "invalid --jobs: %s\n" msg;
    exit 2

let capacity =
  Arg.(
    value
    & opt float 1.0
    & info [ "capacity" ]
        ~docv:"C"
        ~doc:"Per-peer compute capacity (over-provisioning factor; 1.0 = reference PC).")

let mttf =
  Arg.(
    value
    & opt float 5.0
    & info [ "disk-mttf-years" ] ~docv:"Y"
        ~doc:"Mean years between block failures per 50-AU disk.")

let interval_months =
  Arg.(
    value
    & opt float 3.0
    & info [ "interval-months" ] ~docv:"M" ~doc:"Inter-poll interval in months.")

(* -- Fault-injection options (shared by run and chaos) ----------------- *)

(* [mix_term defaults] builds the --loss/--jitter/--dup/--churn family;
   [run] defaults everything to zero (faults opt-in), [chaos] defaults to
   the standard chaos mix. *)
let mix_term (d : Chaos.mix) =
  let loss =
    Arg.(
      value
      & opt float d.Chaos.loss
      & info [ "loss" ] ~docv:"P" ~doc:"Per-copy message loss probability in [0,1].")
  in
  let jitter =
    Arg.(
      value
      & opt float d.Chaos.jitter
      & info [ "jitter" ] ~docv:"S"
          ~doc:"Maximum extra delivery latency in seconds (drawn uniformly per copy).")
  in
  let dup =
    Arg.(
      value
      & opt float d.Chaos.duplication
      & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplication probability in [0,1].")
  in
  let churn =
    Arg.(
      value
      & opt float d.Chaos.churn_per_day
      & info [ "churn" ] ~docv:"R" ~doc:"Crashes per peer per day (Poisson schedule).")
  in
  let downtime_days =
    Arg.(
      value
      & opt float (d.Chaos.downtime /. Duration.day)
      & info [ "downtime-days" ] ~docv:"D" ~doc:"Days a crashed peer stays down.")
  in
  let corrupt =
    Arg.(
      value
      & opt float d.Chaos.corruption
      & info [ "corrupt" ] ~docv:"P"
          ~doc:
            "Per-copy probability in [0,1] of corrupting one message field \
             (deterministic seeded mutation) before delivery.")
  in
  let replay =
    Arg.(
      value
      & opt float d.Chaos.replay
      & info [ "replay" ] ~docv:"P"
          ~doc:
            "Per-send probability in [0,1] of re-injecting a recently delivered \
             message from the replay ring.")
  in
  let stale =
    Arg.(
      value
      & opt float d.Chaos.stale
      & info [ "stale" ] ~docv:"P"
          ~doc:
            "Per-send probability in [0,1] of re-injecting a past delivery after a \
             multi-day delay, well outside every protocol timeout.")
  in
  let stray =
    Arg.(
      value
      & opt float d.Chaos.stray
      & info [ "stray" ] ~docv:"P"
          ~doc:
            "Per-send probability in [0,1] of forging an unsolicited protocol message \
             (vote, ack, proof, receipt or invitation) from an arbitrary identity.")
  in
  let fault_seed =
    Arg.(
      value
      & opt int d.Chaos.fault_seed
      & info [ "fault-seed" ] ~docv:"S"
          ~doc:
            "Seed of the dedicated fault randomness stream; equal seeds replay \
             identical fault traces.")
  in
  let make loss jitter duplication churn_per_day downtime_days corruption replay stale
      stray fault_seed =
    {
      Chaos.loss;
      jitter;
      duplication;
      churn_per_day;
      downtime = Duration.of_days downtime_days;
      corruption;
      replay;
      stale;
      stray;
      fault_seed;
    }
  in
  Term.(
    const make $ loss $ jitter $ dup $ churn $ downtime_days $ corrupt $ replay $ stale
    $ stray $ fault_seed)

let zero_mix =
  {
    Chaos.default_mix with
    Chaos.loss = 0.;
    jitter = 0.;
    duplication = 0.;
    churn_per_day = 0.;
    corruption = 0.;
    replay = 0.;
    stale = 0.;
    stray = 0.;
  }

(* -- Observability options (shared by run and reproduce) --------------- *)

let duration_arg =
  let parse s =
    match Duration.of_string s with Ok d -> Ok d | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Duration.pp)

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write structured protocol events to $(docv) — JSONL (one object per event) \
           or the compact binary format, per --trace-format.")

let trace_format =
  let formats = [ ("auto", `Auto); ("jsonl", `Jsonl); ("binary", `Binary) ] in
  Arg.(
    value
    & opt (enum formats) `Auto
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Encoding of --trace-out: $(b,jsonl), $(b,binary) (compact length-prefixed \
           records, typically several times smaller; convert with $(b,trace-convert)), \
           or $(b,auto) (default: a $(b,.ntrace) extension selects binary, anything \
           else JSONL).")

let trace_level =
  let levels =
    [ ("debug", Lockss.Trace.Debug); ("info", Lockss.Trace.Info); ("warn", Lockss.Trace.Warn) ]
  in
  Arg.(
    value
    & opt (enum levels) Lockss.Trace.Debug
    & info [ "trace-level" ] ~docv:"LEVEL"
        ~doc:
          "Minimum severity written to --trace-out: $(b,debug) (all protocol chatter), \
           $(b,info) (poll lifecycle, drops, repairs), $(b,warn) (inquorate/alarmed \
           polls only).")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Append periodic metric samples to $(docv): a time series of damage, poll \
           outcomes, admission activity and effort. A $(b,.jsonl)/$(b,.json) suffix \
           selects JSONL; anything else writes CSV.")

let sample_interval =
  Arg.(
    value
    & opt duration_arg (Duration.of_days 7.)
    & info [ "sample-interval" ] ~docv:"DUR"
        ~doc:
          "Simulated time between metric samples, e.g. $(b,7d), $(b,12h), $(b,1mo) \
           (default 7d).")

let spans_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans-out" ] ~docv:"FILE"
        ~doc:
          "Write reconstructed poll spans to $(docv) as JSONL, one object per poll: \
           phase timestamps, vote/repair counts, correlated effort and outcome.")

let ledger_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger-out" ] ~docv:"FILE"
        ~doc:
          "Write the per-peer provable-effort ledger (spent and received per protocol \
           phase) plus its reconciliation against the run's metrics to $(docv) as JSON.")

let profile_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Write a run-wide profile to $(docv) as JSON: per-phase wall-clock, GC \
           counters (allocation, collections, heap size), the metric-registry \
           snapshot and engine event statistics.")

let observe_term =
  let make trace_out trace_level trace_format metrics_out sample_interval spans_out
      ledger_out profile_out =
    if
      trace_out = None && metrics_out = None && spans_out = None && ledger_out = None
      && profile_out = None
    then None
    else
      Some
        {
          Experiments.Scenario.trace_out;
          trace_level;
          trace_format;
          metrics_out;
          sample_interval;
          spans_out;
          ledger_out;
          profile_out;
        }
  in
  Term.(
    const make $ trace_out $ trace_level $ trace_format $ metrics_out $ sample_interval
    $ spans_out $ ledger_out $ profile_out)

(* -- Manifest + baseline options --------------------------------------- *)

let manifest_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest-out" ] ~docv:"FILE"
        ~doc:
          "Write a run manifest to $(docv) as one JSON object: command, targets, the \
           seed list consumed, worker-domain counts, injected fault mix, git revision, \
           host/toolchain identification, and wall/CPU seconds.")

(* The manifest handle is opened before the sweep so wall/CPU cover the
   whole command; writing is a no-op without --manifest-out. *)
let emit_manifest ~manifest_out ~handle ~seeds ?targets ?fault_mix () =
  match manifest_out with
  | None -> ()
  | Some path ->
    Experiments.Manifest.write ~path
      (Experiments.Manifest.finish handle ~seeds ?targets ?fault_mix ());
    Printf.printf "wrote manifest %s\n" path

let seeds_of_scale (scale : Scenario.scale) =
  List.init scale.Scenario.runs (fun i -> scale.Scenario.seed + i)

let fault_mix_json (m : Chaos.mix) =
  Obs.Json.Assoc
    [
      ("loss", Obs.Json.Float m.Chaos.loss);
      ("jitter", Obs.Json.Float m.Chaos.jitter);
      ("duplication", Obs.Json.Float m.Chaos.duplication);
      ("churn_per_day", Obs.Json.Float m.Chaos.churn_per_day);
      ("downtime", Obs.Json.Float m.Chaos.downtime);
      ("corruption", Obs.Json.Float m.Chaos.corruption);
      ("replay", Obs.Json.Float m.Chaos.replay);
      ("stale", Obs.Json.Float m.Chaos.stale);
    ]

let baseline_dir =
  Arg.(
    value
    & opt string "baselines"
    & info [ "baseline-dir" ] ~docv:"DIR"
        ~doc:"Directory holding the pinned golden baselines (default $(b,baselines)).")

let scale_of ~peers ~aus ~quorum ~years ~runs ~seed =
  let quorum = max 2 quorum in
  {
    Scenario.peers;
    aus;
    quorum;
    max_disagree = max 1 ((quorum - 1) / 3);
    outer_circle = quorum;
    reference_target = min (3 * quorum) (peers - 1);
    years;
    runs;
    seed;
  }

let config_of scale ~capacity ~mttf ~interval_months =
  {
    (Scenario.config scale) with
    Lockss.Config.capacity;
    disk_mttf_years = mttf;
    inter_poll_interval = Duration.of_months interval_months;
  }

(* -- run command ------------------------------------------------------- *)

type attack_kind =
  | A_none
  | A_stoppage
  | A_flood
  | A_vote_flood
  | A_brute_intro
  | A_brute_remaining
  | A_brute_none

let attack_kind =
  let kinds =
    [
      ("none", A_none);
      ("stoppage", A_stoppage);
      ("flood", A_flood);
      ("vote-flood", A_vote_flood);
      ("brute-intro", A_brute_intro);
      ("brute-remaining", A_brute_remaining);
      ("brute-none", A_brute_none);
    ]
  in
  Arg.(
    value
    & opt (enum kinds) A_none
    & info [ "attack" ] ~docv:"KIND"
        ~doc:
          "Adversary: $(b,none), $(b,stoppage) (network-level pipe stoppage), $(b,flood) \
           (admission-control garbage), $(b,vote-flood) (unsolicited bogus votes), \
           $(b,brute-intro)/$(b,brute-remaining)/$(b,brute-none) (effortful adversary by \
           defection point).")

let coverage =
  Arg.(
    value
    & opt float 1.0
    & info [ "coverage" ] ~docv:"F" ~doc:"Fraction of the population attacked (0,1].")

let duration_days =
  Arg.(
    value
    & opt float 90.
    & info [ "attack-days" ] ~docv:"D" ~doc:"Attack duration per cycle, in days.")

let attack_of kind ~coverage ~duration_days ~years =
  let duration = Duration.of_days duration_days in
  let recuperation = Duration.of_days 30. in
  let brute strategy = Scenario.Brute_force { strategy; rate = 5.; identities = 50 } in
  ignore years;
  match kind with
  | A_none -> Scenario.No_attack
  | A_stoppage -> Scenario.Pipe_stoppage { coverage; duration; recuperation }
  | A_flood -> Scenario.Admission_flood { coverage; duration; recuperation; rate = 24. }
  | A_vote_flood -> Scenario.Vote_flood { rate = 10. }
  | A_brute_intro -> brute Adversary.Brute_force.Intro
  | A_brute_remaining -> brute Adversary.Brute_force.Remaining
  | A_brute_none -> brute Adversary.Brute_force.Full

let check_flag =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Attach the runtime invariant auditor to every run: protocol invariants \
           (effort balance, refractory self-clocking, grade decay, sampling, quorum, \
           ledger conservation) are evaluated online against the trace stream; any \
           violation is printed, written to --trace-out as an $(b,invariant_violated) \
           event, and makes the command exit with status 1.")

(* Audits come back as (label, seed, violations); print every violation
   and end with the greppable "violations: N" line. *)
let report_audits audits =
  let total = List.fold_left (fun acc (_, _, vs) -> acc + List.length vs) 0 audits in
  List.iter
    (fun (label, seed, vs) ->
      List.iter
        (fun v ->
          Format.printf "%s seed %d: %a@." label seed Check.Invariant.pp_violation v)
        vs)
    audits;
  Format.printf "violations: %d@." total;
  if total > 0 then exit 1

let run_cmd =
  let action peers aus quorum years runs seed jobs capacity mttf interval_months kind
      coverage duration_days mix observe check manifest_out =
    set_jobs jobs;
    let handle = Experiments.Manifest.start ~command:"run" () in
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    let cfg = config_of scale ~capacity ~mttf ~interval_months in
    let fault_cfg = Chaos.faults_config mix in
    let cfg =
      if Narses.Faults.is_none fault_cfg then cfg
      else { cfg with Lockss.Config.faults = Some fault_cfg }
    in
    (try Lockss.Config.validate cfg
     with Invalid_argument msg ->
       Printf.eprintf "invalid configuration: %s\n" msg;
       exit 2);
    let attack = attack_of kind ~coverage ~duration_days ~years in
    let print_comparison c =
      Format.printf "baseline:@.%a@.@.under attack:@.%a@.@." Lockss.Metrics.pp_summary
        c.Scenario.baseline Lockss.Metrics.pp_summary c.Scenario.attack;
      Format.printf
        "access failure: %.3e@.delay ratio: %.2f@.coefficient of friction: %.2f@.cost \
         ratio: %.2f@."
        c.Scenario.access_failure c.Scenario.delay_ratio c.Scenario.friction
        c.Scenario.cost_ratio
    in
    (match (attack, check) with
    | Scenario.No_attack, false ->
      let summary = Scenario.run_avg ?observe ~cfg scale Scenario.No_attack in
      Format.printf "%a@." Lockss.Metrics.pp_summary summary
    | Scenario.No_attack, true ->
      let summary, audits = Scenario.run_avg_audited ?observe ~cfg scale Scenario.No_attack in
      Format.printf "%a@." Lockss.Metrics.pp_summary summary;
      report_audits (List.map (fun (seed, vs) -> ("run", seed, vs)) audits)
    | _, false -> print_comparison (Scenario.compare_runs ?observe ~cfg scale attack)
    | _, true ->
      let c, audits = Scenario.compare_runs_audited ?observe ~cfg scale attack in
      print_comparison c;
      report_audits audits);
    let fault_mix =
      if Narses.Faults.is_none fault_cfg then None else Some (fault_mix_json mix)
    in
    emit_manifest ~manifest_out ~handle ~seeds:(seeds_of_scale scale) ?fault_mix ()
  in
  let term =
    Term.(
      const action $ peers $ aus $ quorum $ years $ runs $ seed $ jobs $ capacity $ mttf
      $ interval_months $ attack_kind $ coverage $ duration_days $ mix_term zero_mix
      $ observe_term $ check_flag $ manifest_out)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one simulated deployment, optionally under attack and/or injected \
          network faults.")
    term

(* -- chaos command ----------------------------------------------------- *)

let chaos_cmd =
  let ablation =
    Arg.(
      value
      & flag
      & info [ "ablation" ]
          ~doc:"Also print the faults × pipe-stoppage ablation table (4 extra runs).")
  in
  let action peers aus quorum years runs seed jobs kind coverage duration_days mix
      ablation =
    set_jobs jobs;
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    let attack = attack_of kind ~coverage ~duration_days ~years in
    (try Narses.Faults.validate (Chaos.faults_config mix)
     with Invalid_argument msg ->
       Printf.eprintf "invalid fault mix: %s\n" msg;
       exit 2);
    let report = Chaos.run ~scale ~attack mix in
    Format.printf "%a" Chaos.pp_report report;
    if ablation then Repro_prelude.Table.print (Chaos.ablation ~scale mix);
    if not (Chaos.all_green report) then exit 1
  in
  let term =
    Term.(
      const action $ peers $ aus $ quorum $ years $ runs $ seed $ jobs $ attack_kind
      $ coverage $ duration_days $ mix_term Chaos.default_mix $ ablation)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a scenario under an injected fault mix (loss, jitter, duplication, \
          churn) and check protocol invariants: liveness, no stuck polls, no leaked \
          timeouts, message conservation, churn accounting and bounded degradation \
          versus the fault-free paired run. Exit status 1 if any invariant fails.")
    term

(* -- soak command ------------------------------------------------------ *)

let soak_cmd =
  let seeds_count =
    Arg.(
      value
      & opt int 8
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Number of independent seeds to soak (seed, seed+1, ...).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the machine-readable soak report to $(docv).")
  in
  let action peers aus quorum years runs seed jobs kind coverage duration_days mix
      seeds_count json_out =
    set_jobs jobs;
    if seeds_count < 1 then begin
      Printf.eprintf "invalid --seeds: need at least one seed\n";
      exit 2
    end;
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    let attack = attack_of kind ~coverage ~duration_days ~years in
    (try Narses.Faults.validate (Chaos.faults_config mix)
     with Invalid_argument msg ->
       Printf.eprintf "invalid fault mix: %s\n" msg;
       exit 2);
    let seeds = List.init seeds_count (fun i -> seed + i) in
    let report = Experiments.Soak.run ~scale ~attack ~seeds mix in
    Format.printf "%a" Experiments.Soak.pp_report report;
    (match json_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Json.to_string (Experiments.Soak.report_json report));
      output_char oc '\n';
      close_out oc);
    if not (Experiments.Soak.all_clean report) then exit 1
  in
  let term =
    Term.(
      const action $ peers $ aus $ quorum $ years $ runs $ seed $ jobs $ attack_kind
      $ coverage $ duration_days $ mix_term Chaos.default_mix $ seeds_count $ json_out)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Soak the protocol across many independent seeds under the full Byzantine \
          fault mix (loss, jitter, duplication, churn, corruption, replay, stale \
          delivery, stray injection) with the runtime invariant auditor attached and \
          an end-of-run leak audit. A seed fails on any handler exception, invariant \
          violation, leaked timer/session, or lack of progress. Exit status 1 unless \
          every seed is clean.")
    term

(* -- reproduce command ------------------------------------------------- *)

(* One sweep execution feeds the printed table, the optional plot files
   and the optional baseline check: Golden.sweeps shares the lazies. *)
let table_of_target sweeps target =
  let module Golden = Experiments.Golden in
  match target with
  | "fig2" -> Some (Experiments.Baseline.to_table (Golden.baseline_points sweeps))
  | "fig3" -> Some (Experiments.Stoppage.fig3_table (Golden.stoppage_points sweeps))
  | "fig4" -> Some (Experiments.Stoppage.fig4_table (Golden.stoppage_points sweeps))
  | "fig5" -> Some (Experiments.Stoppage.fig5_table (Golden.stoppage_points sweeps))
  | "fig6" ->
    Some (Experiments.Admission_attack.fig6_table (Golden.admission_points sweeps))
  | "fig7" ->
    Some (Experiments.Admission_attack.fig7_table (Golden.admission_points sweeps))
  | "fig8" ->
    Some (Experiments.Admission_attack.fig8_table (Golden.admission_points sweeps))
  | "table1" -> Some (Experiments.Effort_attack.to_table (Golden.effort_rows sweeps))
  | _ -> None

(* Compare one freshly captured target against its pin. Returns the
   report, or an error when the pin is unreadable/absent. *)
let check_target ~dir ~scale sweeps target =
  let pin_path = Obs.Baseline.path ~dir target in
  match Obs.Baseline.load pin_path with
  | Error msg ->
    Error
      (Printf.sprintf "%s — pin it first with: lockss_sim pin-baseline %s" msg target)
  | Ok pinned ->
    (match Experiments.Golden.capture sweeps ~scale target with
    | Error msg -> Error msg
    | Ok current -> Ok (Obs.Baseline.compare ~baseline:pinned ~current))

let reproduce_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"One of: fig2 fig3 fig4 fig5 fig6 fig7 fig8 table1.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV to $(docv).")
  in
  let plot =
    Arg.(
      value
      & opt (some string) None
      & info [ "plot" ] ~docv:"DIR"
          ~doc:"Also write gnuplot .dat/.gp files for the figure into $(docv).")
  in
  let check_baseline =
    Arg.(
      value & flag
      & info [ "check-baseline" ]
          ~doc:
            "After regenerating the target, diff its metrics against the pinned golden \
             baseline in --baseline-dir and print the per-metric delta report; exit \
             status 1 on any drift past tolerance (or when no baseline is pinned).")
  in
  let action target peers aus quorum years runs seed jobs csv_path plot_dir
      check_baseline dir manifest_out =
    set_jobs jobs;
    let handle = Experiments.Manifest.start ~command:("reproduce " ^ target) () in
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    let module Table = Repro_prelude.Table in
    let module Golden = Experiments.Golden in
    let sweeps = Golden.sweeps ~scale in
    (match plot_dir with
    | None -> ()
    | Some dir ->
      (match target with
      | "fig2" -> Experiments.Plot.write_baseline ~dir (Golden.baseline_points sweeps)
      | "fig3" | "fig4" | "fig5" ->
        Experiments.Plot.write_stoppage ~dir (Golden.stoppage_points sweeps)
      | "fig6" | "fig7" | "fig8" ->
        Experiments.Plot.write_admission ~dir (Golden.admission_points sweeps)
      | _ -> Printf.eprintf "--plot is only available for fig2..fig8\n"));
    let table =
      match table_of_target sweeps target with
      | Some table -> table
      | None ->
        Printf.eprintf "unknown target %S\n" target;
        exit 2
    in
    Table.print table;
    (match csv_path with None -> () | Some path -> Table.save_csv table path);
    let drifted =
      if not check_baseline then false
      else
        match check_target ~dir ~scale sweeps target with
        | Error msg ->
          Printf.eprintf "%s\n" msg;
          true
        | Ok report ->
          Format.printf "%a@." Obs.Baseline.pp_report report;
          not (Obs.Baseline.ok report)
    in
    emit_manifest ~manifest_out ~handle ~seeds:(seeds_of_scale scale)
      ~targets:[ target ] ();
    if drifted then exit 1
  in
  let term =
    Term.(
      const action $ target $ peers $ aus $ quorum $ years $ runs $ seed $ jobs $ csv
      $ plot $ check_baseline $ baseline_dir $ manifest_out)
  in
  Cmd.v
    (Cmd.info "reproduce"
       ~doc:
         "Regenerate a figure or table from the paper's evaluation section, fanning \
          the sweep's independent runs out over --jobs worker domains; \
          $(b,--check-baseline) then diffs the result against its pinned golden \
          baseline. (Per-run tracing/metrics files are a $(b,run)-command feature.)")
    term

(* -- pin-baseline / diff-baseline commands ------------------------------ *)

let baseline_targets_arg =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"TARGET"
        ~doc:
          "Targets to pin/diff (fig2..fig8, table1); all of them when none is given.")

let resolve_baseline_targets = function
  | [] -> Experiments.Golden.targets
  | targets ->
    List.iter
      (fun t ->
        if not (List.mem t Experiments.Golden.targets) then begin
          Printf.eprintf "unknown target %S (known: %s)\n" t
            (String.concat " " Experiments.Golden.targets);
          exit 2
        end)
      targets;
    targets

let pin_baseline_cmd =
  let tolerance =
    Arg.(
      value
      & opt float Obs.Baseline.default_tolerance_pct
      & info [ "tolerance-pct" ] ~docv:"PCT"
          ~doc:
            "Per-metric drift tolerance baked into the pin, as a percent of the \
             pinned value (default 0.01: seeded runs are deterministic, so the \
             allowance only absorbs float-formatting noise).")
  in
  let action targets peers aus quorum years runs seed jobs tolerance dir manifest_out =
    set_jobs jobs;
    let targets = resolve_baseline_targets targets in
    let handle = Experiments.Manifest.start ~command:"pin-baseline" () in
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    let sweeps = Experiments.Golden.sweeps ~scale in
    let provenance = Experiments.Manifest.provenance () in
    List.iter
      (fun target ->
        match
          Experiments.Golden.capture ~tolerance_pct:tolerance sweeps ~scale target
        with
        | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
        | Ok captured ->
          let captured = { captured with Obs.Baseline.provenance } in
          Obs.Baseline.save ~dir captured;
          Printf.printf "pinned %s (%d metrics)\n"
            (Obs.Baseline.path ~dir target)
            (List.length captured.Obs.Baseline.metrics))
      targets;
    emit_manifest ~manifest_out ~handle ~seeds:(seeds_of_scale scale) ~targets ()
  in
  let term =
    Term.(
      const action $ baseline_targets_arg $ peers $ aus $ quorum $ years $ runs $ seed
      $ jobs $ tolerance $ baseline_dir $ manifest_out)
  in
  Cmd.v
    (Cmd.info "pin-baseline"
       ~doc:
         "Run the paper-figure sweeps and pin their results as golden baseline \
          documents under --baseline-dir: per-figure series points and headline \
          metrics, each with a drift direction and tolerance, plus the scale \
          fingerprint and pin provenance. Commit the pins; $(b,diff-baseline) and \
          $(b,reproduce --check-baseline) gate against them.")
    term

let diff_baseline_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the delta reports as one JSON object instead of human-readable text.")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Also write the machine-readable delta report to $(docv) — the artifact \
             the nightly reproduce gate uploads.")
  in
  let action targets peers aus quorum years runs seed jobs json_flag report_out dir
      manifest_out =
    set_jobs jobs;
    let targets = resolve_baseline_targets targets in
    let handle = Experiments.Manifest.start ~command:"diff-baseline" () in
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    let sweeps = Experiments.Golden.sweeps ~scale in
    let results =
      List.map (fun target -> (target, check_target ~dir ~scale sweeps target)) targets
    in
    let ok_overall =
      List.for_all
        (fun (_, result) ->
          match result with Ok report -> Obs.Baseline.ok report | Error _ -> false)
        results
    in
    let report_doc =
      Obs.Json.Assoc
        [
          ("ok", Obs.Json.Bool ok_overall);
          ("baseline_dir", Obs.Json.String dir);
          ( "targets",
            Obs.Json.List
              (List.map
                 (fun (target, result) ->
                   match result with
                   | Ok report -> Obs.Baseline.report_json report
                   | Error msg ->
                     Obs.Json.Assoc
                       [
                         ("experiment", Obs.Json.String target);
                         ("ok", Obs.Json.Bool false);
                         ("error", Obs.Json.String msg);
                       ])
                 results) );
        ]
    in
    if json_flag then print_endline (Obs.Json.to_string report_doc)
    else
      List.iter
        (fun (target, result) ->
          match result with
          | Error msg -> Printf.printf "baseline %s: FAILED — %s\n" target msg
          | Ok report -> Format.printf "%a@." Obs.Baseline.pp_report report)
        results;
    (match report_out with
    | None -> ()
    | Some path ->
      Experiments.Manifest.write ~path report_doc;
      Printf.printf "wrote delta report %s\n" path);
    emit_manifest ~manifest_out ~handle ~seeds:(seeds_of_scale scale) ~targets ();
    if not ok_overall then exit 1
  in
  let term =
    Term.(
      const action $ baseline_targets_arg $ peers $ aus $ quorum $ years $ runs $ seed
      $ jobs $ json_flag $ report_out $ baseline_dir $ manifest_out)
  in
  Cmd.v
    (Cmd.info "diff-baseline"
       ~doc:
         "Re-run the paper-figure sweeps and diff every metric against the pinned \
          golden baselines: per-metric value/pin/delta/tolerance/verdict, config \
          fingerprint check, and missing/new metric detection. Exit status 1 on any \
          drift past tolerance — the simulator is deterministic for pinned seeds, so \
          drift means a code change moved the science and must be either fixed or \
          deliberately re-pinned.")
    term

(* -- check-trace command ----------------------------------------------- *)

let check_trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Trace file written with --trace-out, JSONL or binary.")
  in
  let action path =
    let by_kind = Hashtbl.create 16 in
    let events = ref 0 in
    let check ~line result =
      let fail msg =
        Printf.eprintf "%s:%d: %s\n" path line msg;
        exit 1
      in
      match result with
      (* For JSONL the error is a bad line; for binary it is corrupt
         framing, a bad intern reference or trailing garbage — either
         way the file is invalid. *)
      | Error msg -> fail ("invalid record: " ^ msg)
      | Ok json ->
        (match Lockss.Trace.of_json json with
        | Error msg -> fail ("not a trace event: " ^ msg)
        | Ok (time, event) ->
          incr events;
          let kind = Lockss.Trace.kind event in
          (* The typed event must survive re-serialization: compare
             events, not JSON values, because the float writer may
             legitimately narrow 4320.0 to the literal 4320. *)
          (match
             Obs.Json.of_string (Obs.Json.to_string (Lockss.Trace.to_json ~time event))
           with
          | Error msg -> fail ("re-serialized event does not parse: " ^ msg)
          | Ok json' -> (
            match Lockss.Trace.of_json json' with
            | Error msg -> fail ("re-serialized event does not round-trip: " ^ msg)
            | Ok (time', event') ->
              if not (Float.equal time' time && event' = event) then
                fail ("event changed across JSON round-trip: " ^ kind)));
          (* Poll-scoped events must carry the full correlation key
             so the span builder and ledger can attribute them. *)
          let require_int name =
            match Option.bind (Obs.Json.member name json) Obs.Json.to_int with
            | Some _ -> ()
            | None -> fail (Printf.sprintf "missing correlation field %S on %s" name kind)
          in
          (match kind with
          | "poll_started" | "solicitation_sent" | "invitation_refused"
          | "invitation_accepted" | "vote_sent" | "evaluation_started"
          | "repair_applied" | "poll_concluded" ->
            List.iter require_int [ "poller"; "au"; "poll_id" ]
          | "invitation_dropped" ->
            List.iter require_int [ "voter"; "claimed"; "au"; "poll_id" ]
          | "invitation_admitted" ->
            (* poll_id stays optional: garbage invitations carry none *)
            List.iter require_int [ "voter"; "claimed"; "au" ]
          | "poll_sampled" -> List.iter require_int [ "poller"; "au"; "poll_id" ]
          | "effort_received" -> List.iter require_int [ "peer"; "from"; "au"; "poll_id" ]
          | _ -> ());
          Hashtbl.replace by_kind kind
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind kind)))
    in
    let format =
      try Obs.Trace_file.iter path ~f:check
      with Sys_error msg ->
        Printf.eprintf "cannot open %s: %s\n" path msg;
        exit 2
    in
    Printf.printf "%s: %d events (%s), all parse and round-trip\n" path !events
      (Obs.Trace_file.format_to_string format);
    Hashtbl.fold (fun kind count acc -> (kind, count) :: acc) by_kind []
    |> List.sort compare
    |> List.iter (fun (kind, count) -> Printf.printf "  %-20s %d\n" kind count)
  in
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:
         "Validate a --trace-out file in either encoding. JSONL: every line must \
          parse. Binary: the magic header, record framing and intern table must be \
          consistent. Either way every record must parse back into a typed event, \
          survive a re-serialization round-trip, and carry the full \
          (poller, au, poll_id) correlation key when poll-scoped. Prints event counts \
          by kind. Exit status 1 on the first bad record.")
    Term.(const action $ file)

(* -- trace-convert command ---------------------------------------------- *)

let trace_convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"IN" ~doc:"Source trace file; encoding is sniffed, not guessed \
                                 from the extension.")
  in
  let output =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT"
          ~doc:
            "Destination trace file; a $(b,.ntrace) extension writes binary, anything \
             else JSONL.")
  in
  let action in_path out_path =
    let out_format = Obs.Trace_file.format_of_path out_path in
    let records = ref 0 in
    (* Records are converted as raw JSON values, not re-encoded through
       typed events, so a convert round-trip preserves the stream
       exactly — trace-report and audit give identical answers on both
       encodings of the same run. *)
    let in_format =
      try
        Obs.Sink.with_file out_path (fun sink ->
            let write_record =
              match out_format with
              | Obs.Trace_file.Binary ->
                let w = Obs.Btrace.writer sink in
                fun json -> Obs.Btrace.write w json
              | Obs.Trace_file.Jsonl ->
                let scratch = Buffer.create 256 in
                fun json ->
                  Buffer.clear scratch;
                  Obs.Json.write scratch json;
                  Buffer.add_char scratch '\n';
                  Obs.Sink.write_buffer sink scratch
            in
            Obs.Trace_file.iter in_path ~f:(fun ~line result ->
                match result with
                | Error msg ->
                  Printf.eprintf "%s:%d: invalid record: %s\n" in_path line msg;
                  exit 1
                | Ok json ->
                  incr records;
                  write_record json))
      with Sys_error msg ->
        Printf.eprintf "cannot convert: %s\n" msg;
        exit 2
    in
    Printf.printf "%s (%s) -> %s (%s): %d records\n" in_path
      (Obs.Trace_file.format_to_string in_format)
      out_path
      (Obs.Trace_file.format_to_string out_format)
      !records
  in
  Cmd.v
    (Cmd.info "trace-convert"
       ~doc:
         "Convert a trace file between JSONL and the compact binary encoding \
          (selected by $(i,OUT)'s extension: $(b,.ntrace) is binary). Records are \
          copied as raw JSON values, so converting back yields an equivalent stream \
          and all offline tools report identical results on either encoding. Exit \
          status 1 on a corrupt input record.")
    Term.(const action $ input $ output)

(* -- trace-report command ----------------------------------------------- *)

let trace_report_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Trace file written with --trace-out, JSONL or binary.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the report as one JSON object instead of human-readable text.")
  in
  let action path as_json =
    let analyzer = Obs.Analyze.create () in
    (try Obs.Analyze.read_file analyzer path
     with Sys_error msg ->
       Printf.eprintf "cannot open %s: %s\n" path msg;
       exit 2);
    if as_json then print_endline (Obs.Json.to_string (Obs.Analyze.report_json analyzer))
    else Format.printf "%a@." Obs.Analyze.pp_report analyzer;
    (* Corrupt records get a file:record diagnostic on stderr so the
       offending input is locatable even when the report went to a pipe. *)
    List.iter
      (fun anomaly ->
        match anomaly with
        | Obs.Span.Malformed_line { line; error } ->
          Printf.eprintf "%s:%d: corrupt trace record: %s\n" path line error
        | _ -> ())
      (Obs.Analyze.anomalies analyzer);
    if Obs.Analyze.anomaly_count analyzer > 0 then begin
      Printf.eprintf
        "%s: %d anomalies — re-record the trace or inspect the records above\n" path
        (Obs.Analyze.anomaly_count analyzer);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:
         "Analyze a --trace-out JSONL file offline: reconstruct poll spans, per-phase \
          latency distributions and the per-peer effort ledger, and list anomalies \
          (orphaned events, abandoned polls, duplicate conclusions, poller activity \
          after conclusion, malformed lines). Exit status 1 when any anomaly is found \
          — a fault-free baseline trace reports none. Effort tables need a trace \
          written at --trace-level debug.")
    Term.(const action $ file $ json_flag)

(* -- audit command ----------------------------------------------------- *)

let audit_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Trace file written with --trace-out (--trace-level debug), JSONL or \
             binary.")
  in
  let audit_quorum =
    Arg.(
      value
      & opt int 5
      & info [ "quorum" ] ~docv:"N"
          ~doc:"Quorum the traced run used (the $(b,run) command's default is 5).")
  in
  let refractory =
    Arg.(
      value
      & opt duration_arg Lockss.Config.default.Lockss.Config.refractory_period
      & info [ "refractory" ] ~docv:"DUR"
          ~doc:"Refractory period the traced run used, e.g. $(b,1d).")
  in
  let decay =
    Arg.(
      value
      & opt duration_arg Lockss.Config.default.Lockss.Config.grade_decay_period
      & info [ "decay" ] ~docv:"DUR"
          ~doc:"Grade decay period the traced run used, e.g. $(b,6mo).")
  in
  let mutate =
    let ids = List.map (fun m -> (m.Check.Mutation.id, m.Check.Mutation.id)) Check.Mutation.all in
    Arg.(
      value
      & opt (some (enum ids)) None
      & info [ "mutate" ] ~docv:"ID"
          ~doc:
            (Printf.sprintf
               "Self-test: apply a seeded trace mutation before auditing, so the \
                matching invariant must fire. One of: %s."
               (String.concat ", " (List.map (fun m -> m.Check.Mutation.id) Check.Mutation.all))))
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the audit report as one JSON object instead of human-readable text.")
  in
  let action path quorum refractory decay mutate as_json =
    let params =
      {
        Check.Invariant.default_params with
        Check.Invariant.quorum;
        refractory_period = refractory;
        decay_period = decay;
      }
    in
    let jsons =
      let acc = ref [] in
      (try
         ignore
           (Obs.Trace_file.iter path ~f:(fun ~line result ->
                match result with
                | Ok json -> acc := json :: !acc
                | Error msg ->
                  Printf.eprintf "%s:%d: invalid record: %s\n" path line msg;
                  exit 2))
       with Sys_error msg ->
         Printf.eprintf "cannot open %s: %s\n" path msg;
         exit 2);
      List.rev !acc
    in
    let auditor = Check.Auditor.create ~params () in
    (match mutate with
    | None ->
      (* Stream the file as-is; malformed event lines become
         trace-format violations. *)
      List.iter (fun json -> ignore (Check.Auditor.feed_json auditor json)) jsons
    | Some id ->
      let events =
        List.map
          (fun json ->
            match Lockss.Trace.of_json json with
            | Ok te -> te
            | Error msg ->
              Printf.eprintf "%s: cannot mutate a malformed trace: %s\n" path msg;
              exit 2)
          jsons
      in
      (match Check.Mutation.apply ~params ~id events with
      | Error msg ->
        Printf.eprintf "mutation %s not applicable: %s\n" id msg;
        exit 2
      | Ok mutated ->
        List.iter (fun (time, event) -> Check.Auditor.feed auditor ~time event) mutated));
    Check.Auditor.finish auditor;
    if as_json then print_endline (Obs.Json.to_string (Check.Auditor.report_json auditor))
    else Format.printf "%a@." Check.Auditor.pp_report auditor;
    if Check.Auditor.violation_count auditor > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Replay a --trace-out JSONL file through the protocol-invariant auditor: \
          effort balance per poll, refractory self-clocking of admissions, monotonic \
          grade decay, inner-circle sampling and quorum rules. A fault-free trace \
          audits clean; exit status 1 when any invariant is violated. --mutate seeds a \
          known violation first, proving the matching check fires. Audit a trace \
          written at --trace-level debug, with --quorum/--refractory/--decay matching \
          the traced run's configuration.")
    Term.(const action $ file $ audit_quorum $ refractory $ decay $ mutate $ json_flag)

(* -- subversion command ------------------------------------------------ *)

let subversion_cmd =
  let action peers aus quorum years runs seed jobs =
    set_jobs jobs;
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    Repro_prelude.Table.print
      (Experiments.Subversion_attack.to_table (Experiments.Subversion_attack.sweep ~scale ()))
  in
  let term = Term.(const action $ peers $ aus $ quorum $ years $ runs $ seed $ jobs) in
  Cmd.v
    (Cmd.info "subversion"
       ~doc:
         "Run the retained-defense experiment: the stealth content-corruption adversary \
          of the prior protocol paper.")
    term

(* -- reciprocity command ------------------------------------------------- *)

let reciprocity_cmd =
  let action peers aus quorum years runs seed jobs =
    set_jobs jobs;
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    Repro_prelude.Table.print
      (Experiments.Reciprocity_attack.to_table (Experiments.Reciprocity_attack.sweep ~scale ()));
    Printf.printf "brute-force REMAINING friction at this scale (reference): %s\n"
      (Experiments.Report.ratio (Experiments.Reciprocity_attack.brute_force_reference ~scale ()))
  in
  let term = Term.(const action $ peers $ aus $ quorum $ years $ runs $ seed $ jobs) in
  Cmd.v
    (Cmd.info "reciprocity"
       ~doc:"Run the grade-recovery adversary experiment the paper deferred to its \
             extended version.")
    term

(* -- extensions command -------------------------------------------------- *)

let extensions_cmd =
  let action peers aus quorum years runs seed jobs =
    set_jobs jobs;
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    Repro_prelude.Table.print
      (Experiments.Extensions.adaptive_table (Experiments.Extensions.adaptive_acceptance ~scale ()));
    let c = Experiments.Extensions.churn ~scale () in
    Printf.printf
      "churn: %d joiners; incumbents %.2f vs newcomers %.2f successful polls/peer-AU-year\n"
      c.Experiments.Extensions.joiners c.Experiments.Extensions.incumbent_success_rate
      c.Experiments.Extensions.newcomer_success_rate;
    Repro_prelude.Table.print
      (Experiments.Extensions.combined_table (Experiments.Extensions.combined ~scale ()))
  in
  let term = Term.(const action $ peers $ aus $ quorum $ years $ runs $ seed $ jobs) in
  Cmd.v
    (Cmd.info "extensions"
       ~doc:"Run the Section 9 future-work experiments: adaptive acceptance, churn, \
             combined adversaries.")
    term

(* -- ablate command ---------------------------------------------------- *)

let ablate_cmd =
  let action peers aus quorum years runs seed jobs =
    set_jobs jobs;
    let scale = scale_of ~peers ~aus ~quorum ~years ~runs ~seed in
    Repro_prelude.Table.print (Experiments.Ablation.to_table (Experiments.Ablation.run ~scale ()))
  in
  let term = Term.(const action $ peers $ aus $ quorum $ years $ runs $ seed $ jobs) in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Show what each attrition defense buys, one ablation per row.")
    term

let () =
  let doc = "LOCKSS attrition-defense simulator (USENIX 2005 reproduction)" in
  let info = Cmd.info "lockss_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            reproduce_cmd;
            pin_baseline_cmd;
            diff_baseline_cmd;
            ablate_cmd;
            chaos_cmd;
            soak_cmd;
            subversion_cmd;
            reciprocity_cmd;
            extensions_cmd;
            check_trace_cmd;
            trace_convert_cmd;
            trace_report_cmd;
            audit_cmd;
          ]))
