(* Observability tour: one small deployment under an admission flood,
   watched three ways at once --

     1. a warn-level pretty sink narrating troubled polls to stdout,
     2. an Obs.Registry fed from the trace (event counts by kind, plus a
        histogram of votes gathered per evaluation),
     3. a Sampler emitting a weekly CSV time series of the metrics,

   which is the same machinery `lockss_sim run --trace-out/--metrics-out`
   and every Experiments.Scenario run uses. *)

module Duration = Repro_prelude.Duration
module Population = Lockss.Population
module Trace = Lockss.Trace

let () =
  let cfg =
    {
      Lockss.Config.default with
      Lockss.Config.loyal_peers = 20;
      aus = 2;
      quorum = 4;
      max_disagree = 1;
      outer_circle_size = 4;
      reference_list_target = 10;
    }
  in
  let population = Population.create ~seed:11 ~extra_nodes:5 cfg in
  ignore
    (Adversary.Admission_flood.attach population
       ~minions:(Population.extra_nodes population)
       ~coverage:1.0
       ~attack_duration:(Duration.of_days 60.)
       ~recuperation:(Duration.of_days 30.)
       ~invitations_per_victim_au_per_day:24.);
  let trace = Population.trace population in

  (* 1. Pretty sink: only warn-severity events (inquorate/alarmed polls). *)
  print_endline "-- troubled polls (warn-level pretty sink) --";
  Trace.subscribe trace (Trace.pretty_sink ~min_severity:Trace.Warn Format.std_formatter);

  (* 2. Registry fed from the trace. *)
  let registry = Obs.Registry.create () in
  let votes_per_eval = Obs.Registry.histogram registry "votes_per_evaluation" in
  Trace.subscribe trace (fun ~time:_ event ->
      Obs.Registry.Counter.incr (Obs.Registry.counter registry ("events." ^ Trace.kind event));
      match event with
      | Trace.Evaluation_started { votes; _ } ->
        Obs.Registry.Histogram.observe votes_per_eval (float_of_int votes)
      | _ -> ());

  (* 3. Four-weekly metric samples as CSV on stdout. *)
  print_endline "\n-- four-weekly metric samples (CSV) --";
  let series =
    Obs.Series.create ~format:Obs.Series.Csv ~columns:Lockss.Sampler.columns
      (Obs.Sink.of_channel stdout)
  in
  let ctx = Population.ctx population in
  let sampler =
    Lockss.Sampler.attach
      ~engine:(Population.engine population)
      ~metrics:ctx.Lockss.Peer.metrics
      ~interval:(Duration.of_days 28.)
      (Lockss.Sampler.series_writer ~seed:11 series)
  in

  Population.run population ~until:(Duration.of_years 0.5);
  Lockss.Sampler.stop sampler;
  Obs.Series.close series;

  print_endline "\n-- registry snapshot --";
  List.iter
    (fun (name, value) -> Printf.printf "%-28s %s\n" name (Obs.Json.to_string value))
    (Obs.Registry.snapshot registry);

  print_endline "\n-- end-of-run summary --";
  Format.printf "%a@." Lockss.Metrics.pp_summary (Population.summary population)
