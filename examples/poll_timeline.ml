(* Poll timeline: subscribe to the protocol trace and print one peer's
   first poll, event by event — invitation drops, retries, acceptances,
   votes, evaluation and conclusion.

   Usage: dune exec examples/poll_timeline.exe *)

module Duration = Repro_prelude.Duration
open Lockss

let cfg =
  {
    Config.default with
    Config.loyal_peers = 15;
    aus = 1;
    quorum = 4;
    max_disagree = 1;
    outer_circle_size = 3;
    reference_list_target = 8;
  }

let watched_peer = 0

let involves_watched event =
  match event with
  | Trace.Poll_started { poller; _ }
  | Trace.Solicitation_sent { poller; _ }
  | Trace.Evaluation_started { poller; _ }
  | Trace.Repair_applied { poller; _ }
  | Trace.Poll_concluded { poller; _ } ->
    poller = watched_peer
  | Trace.Poll_sampled { poller; _ } -> poller = watched_peer
  | Trace.Invitation_dropped { claimed; _ } | Trace.Invitation_admitted { claimed; _ }
    ->
    claimed = watched_peer
  | Trace.Invitation_refused { poller; _ } | Trace.Invitation_accepted { poller; _ } ->
    poller = watched_peer
  | Trace.Vote_sent { poller; _ } -> poller = watched_peer
  | Trace.Effort_charged _ | Trace.Effort_received _ ->
    (* Effort accounting is too chatty for a timeline. *)
    false
  | Trace.Message_rejected _ | Trace.Fault_dropped _ | Trace.Fault_duplicated _
  | Trace.Fault_delayed _ | Trace.Partition_dropped _ | Trace.Fault_corrupted _
  | Trace.Fault_replayed _ | Trace.Fault_stale _ | Trace.Fault_stray _
  | Trace.Node_crashed _ | Trace.Node_restarted _ | Trace.Invariant_violated _ ->
    false

let () =
  let population = Population.create ~seed:21 cfg in
  let concluded = ref false in
  Trace.subscribe (Population.trace population) (fun ~time event ->
      if involves_watched event && not !concluded then begin
        Format.printf "  [%a] %a@." Duration.pp time Trace.pp_event event;
        match event with
        | Trace.Poll_concluded _ -> concluded := true
        | _ -> ()
      end);
  Format.printf "Timeline of peer %d's first poll (every event involving it as poller):@."
    watched_peer;
  Population.run population ~until:(Duration.of_months 9.);
  let s = Population.summary population in
  Format.printf
    "@.The solicitation spread, silent drops and retries above are the@.desynchronization \
     and admission-control defenses at work. Population totals:@.%d polls ok, %d \
     inquorate, %d invitations dropped.@."
    s.Metrics.polls_succeeded s.Metrics.polls_inquorate s.Metrics.invitations_dropped
