(** Monomorphic flat-array min-heap keyed by [(time, seq)].

    The discrete-event engine's queue in one structure-of-arrays: an
    unboxed [float array] lane for times, an [int array] lane for the
    FIFO tie-breaking sequence numbers, and a payload lane for whatever
    the caller attaches to each entry. Orders ascending by time, then by
    sequence number — exactly the comparator the engine used on its
    boxed event records, but with no closure call, no polymorphic
    compare and no pointer chase per comparison: a sift step reads two
    flats and branches.

    Compared to {!Heap} holding a record per event, this removes the
    per-event record (and the boxed float inside it, since a mixed
    record boxes its float fields) and the [Some] allocation per
    peek/pop. {!Heap} remains the general-purpose structure; this one
    exists for hot paths keyed by time.

    Keys must not be NaN — NaN breaks the strict-weak-ordering the sift
    relies on. Callers validate (the engine rejects NaN schedule
    times). When [(time, seq)] pairs are unique, pop order is a total
    order and therefore independent of internal layout: replacing
    {!Heap} with this structure cannot reorder events. *)

type 'a t

(** [create ~dummy ()] is an empty heap. [dummy] is a throwaway payload
    value used to blank vacated slots so popped payloads are not
    retained by the backing array. *)
val create : dummy:'a -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [add t ~time ~seq payload] inserts an entry. Amortised O(log n),
    allocation-free except when the backing arrays grow. *)
val add : 'a t -> time:float -> seq:int -> 'a -> unit

(** [min_time t] is the smallest [(time, seq)] entry's time. Undefined
    (reads a stale slot or raises [Invalid_argument]) when empty — check
    {!is_empty} first. *)
val min_time : 'a t -> float

(** [min_seq t] is the minimum entry's sequence number. Same caveat as
    {!min_time}. *)
val min_seq : 'a t -> int

(** [min_payload t] is the minimum entry's payload. Same caveat as
    {!min_time}. *)
val min_payload : 'a t -> 'a

(** [drop_min t] removes the minimum entry. Raises [Invalid_argument]
    when empty. O(log n), allocation-free. *)
val drop_min : 'a t -> unit

(** [pop t] is the minimum payload after removing its entry, or [None]
    when empty. Convenience for tests; the engine's hot path uses
    {!min_payload} + {!drop_min} to avoid the option. *)
val pop : 'a t -> 'a option

(** [clear t] empties the heap and releases the backing arrays. *)
val clear : 'a t -> unit
