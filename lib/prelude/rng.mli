(** Deterministic pseudo-random number generator.

    A small, fast, splittable PRNG (splitmix64 core) used everywhere in the
    simulator so that every experiment is reproducible from a single seed.
    Each logical component of a simulation should own its own [t], obtained
    with {!split}, so that adding randomness consumption in one component
    does not perturb the stream seen by another. *)

type t

(** [create seed] returns a generator deterministically derived from
    [seed]. Equal seeds yield equal streams. *)
val create : int -> t

(** [split t] returns a fresh generator whose stream is statistically
    independent of subsequent draws from [t]. *)
val split : t -> t

(** [copy t] duplicates the generator state; the copy and the original
    produce identical streams from this point on. *)
val copy : t -> t

(** [bits64 t] draws 64 uniformly distributed bits. *)
val bits64 : t -> int64

(** [int t bound] draws uniformly from [0, bound); [bound] must be
    positive. *)
val int : t -> int -> int

(** [float t bound] draws uniformly from [0, bound); [bound] must be
    positive. *)
val float : t -> float -> float

(** [bool t] draws a fair boolean. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)
val bernoulli : t -> float -> bool

(** [uniform t ~lo ~hi] draws uniformly from [lo, hi); requires
    [lo < hi]. *)
val uniform : t -> lo:float -> hi:float -> float

(** [exponential t ~mean] draws from the exponential distribution with the
    given positive mean; used for Poisson event inter-arrival times. *)
val exponential : t -> mean:float -> float

(** [pick t arr] draws a uniformly random element of the non-empty array
    [arr]. *)
val pick : t -> 'a array -> 'a

(** [pick_list t xs] draws a uniformly random element of the non-empty
    list [xs]. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place, uniformly at random. *)
val shuffle : t -> 'a array -> unit

(** [sample t k xs] draws [min k (List.length xs)] distinct elements of
    [xs], uniformly at random, in random order. *)
val sample : t -> int -> 'a list -> 'a list

(** [sample_array t k arr] is [sample] over an array: it shuffles [arr]
    in place and returns its first [min k (Array.length arr)] elements.
    Given the same elements in the same order, [sample] and
    [sample_array] consume the same number of draws and return the same
    result, so callers can swap list-based state for arrays without
    perturbing seeded streams. *)
val sample_array : t -> int -> 'a array -> 'a list
