type t = { mutable words : int array }

let bits_per_word = Sys.int_size

let create ?(capacity = 256) () =
  { words = Array.make (max 1 ((capacity + bits_per_word - 1) / bits_per_word)) 0 }

let ensure t w =
  let n = Array.length t.words in
  if w >= n then begin
    let words = Array.make (max (w + 1) (2 * n)) 0 in
    Array.blit t.words 0 words 0 n;
    t.words <- words
  end

let check i = if i < 0 then invalid_arg "Bitset: negative element"

let mem t i =
  check i;
  let w = i / bits_per_word in
  w < Array.length t.words && t.words.(w) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check i;
  let w = i / bits_per_word in
  ensure t w;
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check i;
  let w = i / bits_per_word in
  if w < Array.length t.words then
    t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))
