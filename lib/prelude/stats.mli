(** Streaming and batch statistics used by the metrics collectors.

    {!Acc} is a Welford-style accumulator for means and variances of point
    samples. {!Time_weighted} integrates a piecewise-constant signal over
    simulated time, which is how the access-failure probability ("fraction
    of replicas damaged averaged over all time points") is computed. *)

module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float

  (** [mean t] is the sample mean, or [nan] when empty. *)
  val mean : t -> float

  (** [variance t] is the unbiased sample variance, [0.] for fewer than two
      samples. *)
  val variance : t -> float

  val stddev : t -> float

  (** [min t]/[max t] are seeded to [nan] and stay [nan] until the first
      {!add} (the [count = 1] branch overwrites the seed, so NaN never
      poisons comparisons afterwards). *)
  val min : t -> float

  val max : t -> float
end

module Time_weighted : sig
  type t

  (** [create ~start ~value] begins integrating a signal whose value is
      [value] from time [start]. *)
  val create : start:float -> value:float -> t

  (** [update t ~now ~value] records that the signal changed to [value] at
      time [now]. [now] must not precede the previous update. *)
  val update : t -> now:float -> value:float -> unit

  (** [mean t ~now] is the time-weighted mean of the signal over
      [[start, now]]; [nan] when [now] equals the start time. *)
  val mean : t -> now:float -> float
end

(** [mean xs] is the arithmetic mean of a non-empty list. *)
val mean : float list -> float

(** [percentile p xs] is the [p]-th percentile ([0 <= p <= 100]) of a
    non-empty list, with linear interpolation. Sorts with total float
    order ([Float.compare]); raises [Invalid_argument] if any input is
    NaN, so quantiles are always well-defined. *)
val percentile : float -> float list -> float
