type seconds = float

let second = 1.
let minute = 60.
let hour = 3600.
let day = 86_400.
let month = 30. *. day
let year = 365. *. day

let of_days d = d *. day
let of_months m = m *. month
let of_years y = y *. year

let to_days s = s /. day
let to_months s = s /. month
let to_years s = s /. year

let of_string s =
  let s = String.trim s in
  let len = String.length s in
  let is_unit_char c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  let split = ref len in
  while !split > 0 && is_unit_char s.[!split - 1] do
    decr split
  done;
  let number = String.sub s 0 !split in
  let unit = String.lowercase_ascii (String.sub s !split (len - !split)) in
  let scale =
    match unit with
    | "" | "s" | "sec" -> Some second
    | "m" | "min" -> Some minute
    | "h" -> Some hour
    | "d" -> Some day
    | "w" -> Some (7. *. day)
    | "mo" -> Some month
    | "y" -> Some year
    | _ -> None
  in
  match (float_of_string_opt number, scale) with
  | _, None -> Error (Printf.sprintf "unknown duration unit %S" unit)
  | None, _ -> Error (Printf.sprintf "malformed duration %S" s)
  | Some value, _ when value < 0. || not (Float.is_finite value) ->
    Error (Printf.sprintf "duration must be finite and non-negative: %S" s)
  | Some value, Some scale -> Ok (value *. scale)

let pp ppf s =
  if s < minute then Format.fprintf ppf "%.1fs" s
  else if s < hour then Format.fprintf ppf "%.1fm" (s /. minute)
  else if s < day then Format.fprintf ppf "%.1fh" (s /. hour)
  else if s < month then Format.fprintf ppf "%.1fd" (to_days s)
  else if s < year then Format.fprintf ppf "%.1fmo" (to_months s)
  else Format.fprintf ppf "%.2fy" (to_years s)
