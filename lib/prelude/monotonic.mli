(** Monotonic wall clock.

    [Unix.gettimeofday] jumps when NTP steps the system clock, which
    poisons elapsed-time accounting (a worker's "busy seconds" can come
    out negative across a step). This module reads
    [clock_gettime(CLOCK_MONOTONIC)] through a one-line C stub — the
    stdlib's Unix binding does not expose it — and falls back to the
    realtime clock only on platforms without a monotonic source.

    The absolute value is meaningless (seconds since an arbitrary
    origin, typically boot); only differences between two reads are. *)

(** [now_s ()] is the current monotonic time in seconds. Monotone
    non-decreasing across reads within a process, on every platform with
    [CLOCK_MONOTONIC]. *)
val now_s : unit -> float

(** [elapsed_s since] is [now_s () -. since], clamped to [0.] so clock
    quirks can never produce a negative duration. *)
val elapsed_s : float -> float

(** [thread_cpu_s ()] is the CPU time consumed by the calling thread, in
    seconds ([CLOCK_THREAD_CPUTIME_ID]). [Sys.time] charges the whole
    process, so it cannot attribute CPU cost to one domain; this can.
    Falls back to process CPU time on platforms without per-thread
    clocks. Differences between two reads on the {e same} thread are
    meaningful; the absolute value is not. *)
val thread_cpu_s : unit -> float
