external now_s : unit -> (float[@unboxed])
  = "repro_monotonic_now_s" "repro_monotonic_now_s_unboxed"
[@@noalloc]

external thread_cpu_s : unit -> (float[@unboxed])
  = "repro_monotonic_thread_cpu_s" "repro_monotonic_thread_cpu_s_unboxed"
[@@noalloc]

let elapsed_s since = Float.max 0. (now_s () -. since)
