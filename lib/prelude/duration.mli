(** Time arithmetic for the simulator.

    Simulated time is a [float] number of seconds since the start of the
    experiment. This module gives the constants and conversions used when
    expressing protocol parameters ("3 months", "1 day") and when printing
    results. A month is 30 days and a year is 365 days, matching the coarse
    calendar the paper's parameters use. *)

type seconds = float

val second : seconds
val minute : seconds
val hour : seconds
val day : seconds
val month : seconds
val year : seconds

val of_days : float -> seconds
val of_months : float -> seconds
val of_years : float -> seconds

val to_days : seconds -> float
val to_months : seconds -> float
val to_years : seconds -> float

(** [pp ppf s] prints a duration with a human-readable unit, e.g.
    ["2.0d"] or ["3.0mo"]. *)
val pp : Format.formatter -> seconds -> unit

(** [of_string s] parses a duration literal: a non-negative number with
    an optional unit suffix — [s] seconds (also the default), [m]/[min]
    minutes, [h] hours, [d] days, [w] weeks, [mo] months, [y] years.
    Examples: ["7d"], ["0.5y"], ["90"], ["12h"]. *)
val of_string : string -> (seconds, string) result
