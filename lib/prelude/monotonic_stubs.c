/* clock_gettime(CLOCK_MONOTONIC) as a float-returning, noalloc
   primitive. The stdlib's Unix binding stops at gettimeofday, which
   jumps under NTP steps; elapsed-time accounting needs a monotonic
   source. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#ifdef _WIN32
#include <windows.h>

CAMLprim double repro_monotonic_now_s_unboxed(value unit)
{
  static LARGE_INTEGER freq = {0};
  (void)unit;
  LARGE_INTEGER count;
  if (freq.QuadPart == 0) QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return (double)count.QuadPart / (double)freq.QuadPart;
}

#else
#include <time.h>

CAMLprim double repro_monotonic_now_s_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
#endif
    clock_gettime(CLOCK_REALTIME, &ts);
  return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}
#endif

CAMLprim value repro_monotonic_now_s(value unit)
{
  return caml_copy_double(repro_monotonic_now_s_unboxed(unit));
}

/* CPU seconds consumed by the *calling thread* — [Sys.time] charges the
   whole process, which is useless for per-domain accounting. */
#ifdef _WIN32
CAMLprim double repro_monotonic_thread_cpu_s_unboxed(value unit)
{
  FILETIME creation, exit, kernel, user;
  ULARGE_INTEGER k, u;
  (void)unit;
  if (!GetThreadTimes(GetCurrentThread(), &creation, &exit, &kernel, &user))
    return 0.0;
  k.LowPart = kernel.dwLowDateTime; k.HighPart = kernel.dwHighDateTime;
  u.LowPart = user.dwLowDateTime; u.HighPart = user.dwHighDateTime;
  return ((double)k.QuadPart + (double)u.QuadPart) * 1e-7;
}
#else
CAMLprim double repro_monotonic_thread_cpu_s_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
#ifdef CLOCK_THREAD_CPUTIME_ID
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
#endif
  return (double)clock() / (double)CLOCKS_PER_SEC;
}
#endif

CAMLprim value repro_monotonic_thread_cpu_s(value unit)
{
  return caml_copy_double(repro_monotonic_thread_cpu_s_unboxed(unit));
}
