(** Growable bitset over non-negative ints.

    Membership is O(1); memory is one bit per int up to the largest
    element ever added (identities are interned to small dense ints, so
    a population's worth of bits is a few kilobytes). All operations
    raise [Invalid_argument] on negative elements. *)

type t

(** [create ?capacity ()] is an empty set pre-sized for elements below
    [capacity]; it grows transparently beyond that. *)
val create : ?capacity:int -> unit -> t

val mem : t -> int -> bool

(** [add t i] inserts [i] (idempotent). *)
val add : t -> int -> unit

(** [remove t i] deletes [i] if present. *)
val remove : t -> int -> unit
