module Acc = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable total : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; total = 0.; min = nan; max = nan }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.count = 1 then begin
      t.min <- x;
      t.max <- x
    end
    else begin
      if x < t.min then t.min <- x;
      if x > t.max then t.max <- x
    end

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then nan else t.mean
  let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

module Time_weighted = struct
  type t = {
    start : float;
    mutable last_time : float;
    mutable last_value : float;
    mutable integral : float;
  }

  let create ~start ~value =
    { start; last_time = start; last_value = value; integral = 0. }

  let update t ~now ~value =
    assert (now >= t.last_time);
    t.integral <- t.integral +. (t.last_value *. (now -. t.last_time));
    t.last_time <- now;
    t.last_value <- value

  let mean t ~now =
    let span = now -. t.start in
    if span <= 0. then nan
    else begin
      let tail = t.last_value *. (now -. t.last_time) in
      (t.integral +. tail) /. span
    end
end

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty list"
  | _ :: _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ :: _ ->
    if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
    if List.exists Float.is_nan xs then invalid_arg "Stats.percentile: NaN input";
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
    end
