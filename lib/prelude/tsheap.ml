(* Structure-of-arrays binary min-heap on (time, seq) keys.

   Sift loops use the hole technique: the moving entry is held in
   locals and slots shift into the hole, so a sift of depth d does d
   lane reads and d lane writes instead of 3d swaps. Comparisons are
   monomorphic float/int operators on flat lanes — the entire point of
   this module; see the .mli. *)

type 'a t = {
  mutable time : float array;  (* unboxed lane *)
  mutable seq : int array;
  mutable payload : 'a array;
  mutable size : int;
  dummy : 'a;  (* blanks vacated payload slots *)
}

let create ~dummy () = { time = [||]; seq = [||]; payload = [||]; size = 0; dummy }
let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.seq in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let ntime = Array.make ncap 0. in
  let nseq = Array.make ncap 0 in
  let npayload = Array.make ncap t.dummy in
  Array.blit t.time 0 ntime 0 t.size;
  Array.blit t.seq 0 nseq 0 t.size;
  Array.blit t.payload 0 npayload 0 t.size;
  t.time <- ntime;
  t.seq <- nseq;
  t.payload <- npayload

let add t ~time ~seq payload =
  if t.size = Array.length t.seq then grow t;
  let times = t.time and seqs = t.seq and payloads = t.payload in
  (* Sift up with a hole: parents later in (time, seq) order shift down
     until the new entry's slot is found. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = Array.unsafe_get times parent in
    if time < pt || (time = pt && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set payloads !i (Array.unsafe_get payloads parent);
      i := parent
    end
    else continue_ := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set payloads !i payload

let min_time t =
  if t.size = 0 then invalid_arg "Tsheap.min_time: empty heap";
  Array.unsafe_get t.time 0

let min_seq t =
  if t.size = 0 then invalid_arg "Tsheap.min_seq: empty heap";
  Array.unsafe_get t.seq 0

let min_payload t =
  if t.size = 0 then invalid_arg "Tsheap.min_payload: empty heap";
  Array.unsafe_get t.payload 0

let drop_min t =
  if t.size = 0 then invalid_arg "Tsheap.drop_min: empty heap";
  let last = t.size - 1 in
  t.size <- last;
  let times = t.time and seqs = t.seq and payloads = t.payload in
  if last = 0 then Array.unsafe_set payloads 0 t.dummy
  else begin
    (* Move the last entry into the root's hole, sifting the hole down
       toward the smaller child until the entry fits. *)
    let mt = Array.unsafe_get times last in
    let ms = Array.unsafe_get seqs last in
    let mp = Array.unsafe_get payloads last in
    Array.unsafe_set payloads last t.dummy;
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      if l >= last then continue_ := false
      else begin
        (* Pick the smaller child. *)
        let r = l + 1 in
        let c =
          if r < last then begin
            let lt = Array.unsafe_get times l and rt = Array.unsafe_get times r in
            if rt < lt || (rt = lt && Array.unsafe_get seqs r < Array.unsafe_get seqs l)
            then r
            else l
          end
          else l
        in
        let ct = Array.unsafe_get times c in
        if ct < mt || (ct = mt && Array.unsafe_get seqs c < ms) then begin
          Array.unsafe_set times !i ct;
          Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
          Array.unsafe_set payloads !i (Array.unsafe_get payloads c);
          i := c
        end
        else continue_ := false
      end
    done;
    Array.unsafe_set times !i mt;
    Array.unsafe_set seqs !i ms;
    Array.unsafe_set payloads !i mp
  end

let pop t =
  if t.size = 0 then None
  else begin
    let p = min_payload t in
    drop_min t;
    Some p
  end

let clear t =
  t.time <- [||];
  t.seq <- [||];
  t.payload <- [||];
  t.size <- 0
