type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64: advance by a fixed gamma and scramble the counter. *)
let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let t = { state = Int64.of_int seed } in
  (* Burn a few outputs so that small consecutive seeds diverge quickly. *)
  for _ = 1 to 4 do
    ignore (next_raw t)
  done;
  t

let split t = { state = next_raw t }
let copy t = { state = t.state }
let bits64 = next_raw

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (next_raw t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  assert (bound > 0.);
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  mantissa /. 9007199254740992. *. bound

let bool t = Int64.logand (next_raw t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1.0 < p

let uniform t ~lo ~hi =
  assert (lo < hi);
  lo +. float t (hi -. lo)

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t 1.0 in
  (* u is in [0,1); 1-u is in (0,1], so log is finite. *)
  -.mean *. log (1. -. u)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Fisher-Yates over the WHOLE array regardless of [k], so the draw
   sequence depends only on the array length — [sample] and
   [sample_array] on equal-content sequences consume identical streams
   and return identical results. *)
let sample_array t k arr =
  shuffle t arr;
  let n = min k (Array.length arr) in
  Array.to_list (Array.sub arr 0 n)

let sample t k xs = sample_array t k (Array.of_list xs)
