(** Message-passing network over {!Engine}, {!Topology} and {!Partition}.

    Narses is a flow-based simulator with selectable fidelity; the paper
    picks its "simplistic network model": delivery delay is propagation
    latency plus serialisation at the bottleneck access link, with no
    congestion except the artificial kind a pipe-stoppage adversary
    causes (modelled by {!Partition} silently dropping traffic). That is
    {!Delay_only}, the default. {!Shared_bottleneck} adds first-order
    congestion — an access link's bandwidth is divided among the
    transfers concurrently touching the node — so the paper's model
    choice can be validated as an ablation.

    Messages are delivered by invoking the destination node's registered
    handler inside the event loop. *)

type model =
  | Delay_only  (** the paper's choice: latency + serialisation *)
  | Shared_bottleneck
      (** bandwidth divided by the number of concurrent transfers at the
          busier endpoint, estimated at send time (first-order processor
          sharing; in-flight transfers are not re-planned) *)

type 'msg t

(** [create ?model ?faults ~engine ~topology ~partition ()] wires an
    empty network; every node starts without a handler, and sends to
    handler-less nodes are counted as dropped. With [faults], every send
    passes through the {!Faults} injector: copies may be lost, delayed
    beyond the model's transfer time, or duplicated, and messages
    touching a crashed node are dropped at send and at delivery time.
    Without it the network is perfectly reliable, as before. *)
val create :
  ?model:model ->
  ?faults:Faults.t ->
  engine:Engine.t ->
  topology:Topology.t ->
  partition:Partition.t ->
  unit ->
  'msg t

(** [register t node handler] installs the receive callback for [node];
    replaces any previous handler. The callback receives the sender and the
    message. *)
val register : 'msg t -> Topology.node -> (src:Topology.node -> 'msg -> unit) -> unit

(** [set_tamper t f] installs the message mutator applied when the fault
    layer decides a copy is corrupted: [f msg ~salt] must be a
    deterministic function of its arguments. The network layer is
    generic in ['msg], so the concrete mutator is supplied by the
    protocol layer ([Lockss.Message.mutate]). Without a tamper hook,
    corruption decisions are never drawn. *)
val set_tamper : 'msg t -> ('msg -> salt:int64 -> 'msg) -> unit

(** [set_stray t f] installs the stray-forger hook, invoked when the
    fault layer decides to inject an unsolicited message. The hook is
    expected to forge an in-protocol message and send it through
    {!send} (so strays appear in {!sent_count} and conservation holds). *)
val set_stray : 'msg t -> (salt:int64 -> unit) -> unit

(** [send t ~src ~dst ~bytes msg] schedules delivery of [msg] after the
    topology-determined transfer time, unless either endpoint is stopped
    or crashed (checked both at send and at delivery time, so a node
    stopped mid-flight loses the message, as a flooded pipe would).
    Under fault injection one logical send can deliver zero, one or two
    copies, each copy may be corrupted through the tamper hook, and the
    send may additionally trigger a replay/stale re-injection from the
    ring of recent deliveries or a stray forgery; {!dropped_count}
    counts each lost copy once. *)
val send : 'msg t -> src:Topology.node -> dst:Topology.node -> bytes:int -> 'msg -> unit

(** Counters for tests and reporting. *)
val sent_count : 'msg t -> int

val delivered_count : 'msg t -> int

(** [dropped_count t] is the total copies lost for any reason —
    partition blockage, injected loss, crashed endpoints, or a missing
    handler. The first two are broken out below; the split satisfies
    [partition_dropped + fault_dropped <= dropped]. *)
val dropped_count : 'msg t -> int

(** [partition_dropped_count t] counts copies suppressed by a
    {!Partition} stoppage (at send or delivery time). *)
val partition_dropped_count : 'msg t -> int

(** [fault_dropped_count t] counts copies lost to the {!Faults} injector:
    probabilistic loss and crashed endpoints. *)
val fault_dropped_count : 'msg t -> int

(** [injected_count t] counts replay/stale copies re-injected from the
    delivery ring; these are extra deliveries that are not logical
    sends, so conservation reads
    [sent + duplicated + injected = delivered + dropped + in_flight]. *)
val injected_count : 'msg t -> int

(** [bytes_delivered t] is the cumulative payload volume delivered. *)
val bytes_delivered : 'msg t -> int

(** [active_transfers t node] counts transfers currently touching the
    node's access link (always 0 under {!Delay_only}). *)
val active_transfers : 'msg t -> Topology.node -> int
