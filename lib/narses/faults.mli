(** Deterministic fault injection for the network substrate.

    The paper's Narses substrate delivers every message perfectly unless
    a pipe-stoppage {!Partition} silently suppresses it, so only one
    fault shape ever exercises the protocol's timeout and retry
    machinery. This module interposes a seeded fault model between
    {!Net.send} and delivery:

    - {e loss}: each message copy is dropped with a fixed probability;
    - {e jitter}: each delivered copy gains extra latency drawn uniformly
      from [\[0, jitter)];
    - {e duplication}: a delivered message spawns a second,
      independently-jittered copy;
    - {e churn}: nodes crash on a Poisson schedule and restart after a
      fixed downtime. Unlike a {!Partition} stoppage — which silently
      eats traffic while the node's protocol state lives on — a crash
      fires hooks so the owner can clear in-flight protocol state
      (sessions, poll timers) and later resume from a clean slate.

    All randomness comes from a dedicated stream seeded by
    [config.fault_seed], split off per concern, so identical seeds replay
    identical fault traces regardless of what the protocol layer draws
    from its own generators. Every injected fault is reported to the
    registered observer (see {!set_observer}), which the population layer
    bridges onto the [Lockss.Trace] bus. *)

type config = {
  loss : float;  (** per-copy drop probability, in [\[0, 1\]] *)
  jitter : float;  (** max extra delivery latency, seconds, [>= 0] *)
  duplication : float;  (** per-message duplication probability, [\[0, 1\]] *)
  churn_per_day : float;  (** crash rate per node per day, [>= 0] *)
  downtime : float;  (** seconds a crashed node stays down, [> 0] *)
  fault_seed : int;  (** seed of the dedicated fault randomness stream *)
}

(** [none] injects nothing: all rates zero (downtime keeps its default so
    [{ none with churn_per_day = r }] is well-formed). *)
val none : config

(** [is_none c] holds when [c] injects no faults at all. *)
val is_none : config -> bool

(** [validate c] raises [Invalid_argument] on out-of-range rates. *)
val validate : config -> unit

type event =
  | Dropped of { src : int; dst : int }  (** a message copy was lost *)
  | Duplicated of { src : int; dst : int }  (** an extra copy was spawned *)
  | Delayed of { src : int; dst : int; extra : float }
      (** a copy will arrive [extra] seconds later than the network model
          alone would deliver it *)
  | Crashed of { node : int }
  | Restarted of { node : int }

type t

(** [create ~engine ~nodes config] validates [config] and builds the
    injector for a [nodes]-node network. Churn does not start until
    {!start_churn}. *)
val create : engine:Engine.t -> nodes:int -> config -> t

val config : t -> config

(** [set_observer t f] installs the (single) fault-event observer,
    called synchronously with the current simulated time. *)
val set_observer : t -> (time:float -> event -> unit) -> unit

(** [on_crash t f] / [on_restart t f] register hooks called with the node
    index when churn takes it down / brings it back. Multiple hooks run
    in registration order. *)
val on_crash : t -> (int -> unit) -> unit

val on_restart : t -> (int -> unit) -> unit

(** [start_churn t ~nodes] begins an independent Poisson crash schedule
    (rate [churn_per_day]) for each listed node. Call at most once. *)
val start_churn : t -> nodes:int list -> unit

val is_down : t -> int -> bool

(** [down_count t] is the number of nodes currently crashed. *)
val down_count : t -> int

(** [plan t ~src ~dst] decides the fate of one message about to be sent:
    the returned list holds one extra-latency value per copy to deliver —
    [[]] when the message is lost, two elements when it is duplicated.
    Counts and reports the faults it injects. *)
val plan : t -> src:int -> dst:int -> float list

(** [note_down_drop t ~src ~dst] records a message lost because an
    endpoint was crashed (at send or delivery time); used by {!Net}. *)
val note_down_drop : t -> src:int -> dst:int -> unit

(** Cumulative injection counters, for conservation checks. *)
val dropped_count : t -> int

val duplicated_count : t -> int
val delayed_count : t -> int
val crash_count : t -> int
val restart_count : t -> int
