(** Deterministic fault injection for the network substrate.

    The paper's Narses substrate delivers every message perfectly unless
    a pipe-stoppage {!Partition} silently suppresses it, so only one
    fault shape ever exercises the protocol's timeout and retry
    machinery. This module interposes a seeded fault model between
    {!Net.send} and delivery:

    - {e loss}: each message copy is dropped with a fixed probability;
    - {e jitter}: each delivered copy gains extra latency drawn uniformly
      from [\[0, jitter)];
    - {e duplication}: a delivered message spawns a second,
      independently-jittered copy;
    - {e churn}: nodes crash on a Poisson schedule and restart after a
      fixed downtime. Unlike a {!Partition} stoppage — which silently
      eats traffic while the node's protocol state lives on — a crash
      fires hooks so the owner can clear in-flight protocol state
      (sessions, poll timers) and later resume from a clean slate.

    Beyond delivery faults, a Byzantine adversary controls message
    {e content} ("Attrition Defenses", §4): this module also decides,
    on its own split stream, when to inject

    - {e corruption}: one field of a delivered copy is deterministically
      mutated (the mutator itself lives in the protocol layer — this
      module only supplies the salt);
    - {e replay}: a previously delivered message is re-sent from a
      bounded ring kept by {!Net};
    - {e stale} delivery: a replayed message arrives only after a long
      extra delay, typically after its session has closed;
    - {e stray} injection: an unsolicited in-protocol message from a
      peer that was never invited (forged by the population layer).

    All randomness comes from a dedicated stream seeded by
    [config.fault_seed], split off per concern, so identical seeds replay
    identical fault traces regardless of what the protocol layer draws
    from its own generators. Content-fault draws are guarded by their
    rates, so a configuration with all content rates zero leaves the
    link/churn streams byte-identical to pre-Byzantine builds. Every
    injected fault is reported to the registered observer (see
    {!set_observer}), which the population layer bridges onto the
    [Lockss.Trace] bus. *)

type config = {
  loss : float;  (** per-copy drop probability, in [\[0, 1\]] *)
  jitter : float;  (** max extra delivery latency, seconds, [>= 0] *)
  duplication : float;  (** per-message duplication probability, [\[0, 1\]] *)
  churn_per_day : float;  (** crash rate per node per day, [>= 0] *)
  downtime : float;  (** seconds a crashed node stays down, [> 0] *)
  corruption : float;  (** per-copy field-corruption probability, [\[0, 1\]] *)
  replay : float;  (** per-send replay-injection probability, [\[0, 1\]] *)
  stale : float;  (** per-send stale-replay probability, [\[0, 1\]] *)
  stale_delay : float;  (** extra seconds a stale copy waits, [> 0] *)
  stray : float;  (** per-send stray-injection probability, [\[0, 1\]] *)
  fault_seed : int;  (** seed of the dedicated fault randomness stream *)
}

(** [none] injects nothing: all rates zero (downtime and stale delay keep
    their defaults so [{ none with churn_per_day = r }] is well-formed). *)
val none : config

(** [is_none c] holds when [c] injects no faults at all. *)
val is_none : config -> bool

(** [validate c] raises [Invalid_argument] on out-of-range rates. *)
val validate : config -> unit

type event =
  | Dropped of { src : int; dst : int }  (** a message copy was lost *)
  | Duplicated of { src : int; dst : int }  (** an extra copy was spawned *)
  | Delayed of { src : int; dst : int; extra : float }
      (** a copy will arrive [extra] seconds later than the network model
          alone would deliver it *)
  | Crashed of { node : int }
  | Restarted of { node : int }
  | Partition_blocked of { src : int; dst : int }
      (** a send suppressed by a {!Partition} stoppage — not a fault this
          module injected, but reported here so chaos ablations can
          attribute loss correctly *)
  | Corrupted of { src : int; dst : int }
      (** one field of a delivered copy was mutated *)
  | Replayed of { src : int; dst : int; extra : float }
      (** a previously delivered message was re-injected *)
  | Stale of { src : int; dst : int; extra : float }
      (** a previously delivered message was re-injected after a long
          extra delay *)
  | Stray of { src : int; dst : int }
      (** an unsolicited in-protocol message was forged *)

type t

(** [create ~engine ~nodes config] validates [config] and builds the
    injector for a [nodes]-node network. Churn does not start until
    {!start_churn}. *)
val create : engine:Engine.t -> nodes:int -> config -> t

val config : t -> config

(** [set_observer t f] installs the (single) fault-event observer,
    called synchronously with the current simulated time. *)
val set_observer : t -> (time:float -> event -> unit) -> unit

(** [on_crash t f] / [on_restart t f] register hooks called with the node
    index when churn takes it down / brings it back. Multiple hooks run
    in registration order. *)
val on_crash : t -> (int -> unit) -> unit

val on_restart : t -> (int -> unit) -> unit

(** [start_churn t ~nodes] begins an independent Poisson crash schedule
    (rate [churn_per_day]) for each listed node. Call at most once. *)
val start_churn : t -> nodes:int list -> unit

val is_down : t -> int -> bool

(** [down_count t] is the number of nodes currently crashed. *)
val down_count : t -> int

(** [plan t ~src ~dst] decides the fate of one message about to be sent:
    the returned list holds one extra-latency value per copy to deliver —
    [[]] when the message is lost, two elements when it is duplicated.
    Counts and reports the faults it injects. *)
val plan : t -> src:int -> dst:int -> float list

(** {2 Content-fault decisions}

    Each returns [None] without touching the content stream when its
    rate is zero. The caller ({!Net}) applies the decision and then
    reports it via the matching [note_*] below, so counting happens
    exactly when the fault actually lands. *)

(** [corrupt_salt t] decides whether the copy about to be delivered is
    corrupted; [Some salt] feeds the protocol layer's deterministic
    message mutator. *)
val corrupt_salt : t -> int64 option

(** [replay_extra t] decides whether to re-inject a previously delivered
    message, with the returned extra latency. *)
val replay_extra : t -> float option

(** [stale_extra t] is {!replay_extra} with [stale_delay] added — the
    copy arrives long after the session it belonged to closed. *)
val stale_extra : t -> float option

(** [stray_salt t] decides whether to forge an unsolicited message;
    [Some salt] feeds the population layer's forger. *)
val stray_salt : t -> int64 option

(** [pick t n] is a uniform index in [\[0, n)] from the content stream,
    used to choose a replay-ring slot. Raises on [n <= 0]. *)
val pick : t -> int -> int

(** [note_down_drop t ~src ~dst] records a message lost because an
    endpoint was crashed (at send or delivery time); used by {!Net}. *)
val note_down_drop : t -> src:int -> dst:int -> unit

(** [note_partition_block t ~src ~dst] records a send suppressed by a
    partition stoppage; used by {!Net} so chaos ablations can separate
    partition loss from injected loss. *)
val note_partition_block : t -> src:int -> dst:int -> unit

val note_corrupted : t -> src:int -> dst:int -> unit
val note_replayed : t -> src:int -> dst:int -> extra:float -> unit
val note_stale : t -> src:int -> dst:int -> extra:float -> unit
val note_stray : t -> src:int -> dst:int -> unit

(** Cumulative injection counters, for conservation checks. *)
val dropped_count : t -> int

val duplicated_count : t -> int
val delayed_count : t -> int
val crash_count : t -> int
val restart_count : t -> int
val partition_blocked_count : t -> int
val corrupted_count : t -> int
val replayed_count : t -> int
val stale_count : t -> int
val stray_count : t -> int
