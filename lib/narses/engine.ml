(* The event loop's hot path is [schedule] + [step]: every simulated
   message, timer and sample goes through both once. The queue is a
   {!Repro_prelude.Tsheap} — flat unboxed (time, seq) lanes, so a sift
   comparison is two scalar reads and no closure call — and the only
   per-event allocation left on this side is the 4-word handle record
   below (the caller's action closure already exists). The previous
   representation paid, per event: a 6-field mixed record plus the boxed
   float inside it on [schedule], a closure-indirected polymorphic
   compare per sift step, and a [Some] per peek/pop. *)

(* The schedule handle doubles as the heap payload: [cancel] flips
   [live] and the queue drops dead entries lazily when they surface. *)
type event = { action : unit -> unit; cls : int; mutable live : bool }

type event_id = event
type cls = int

let dummy_event = { action = ignore; cls = 0; live = false }

(* Class names are registered once, globally, at module-initialisation
   time (timer owners register their class in a top-level [let]); each
   engine keeps an int array of live counts indexed by class id, so the
   per-event bookkeeping stays a single array bump. Class 0 is the
   implicit "unlabeled" class for callers that pass no [?cls].

   The registry is guarded by a mutex: registration is documented as
   module-init-only, but a library loaded late (or a test registering
   from a worker domain) must get a unique id and a consistent name
   table rather than undefined behaviour. Reads on the engine hot path
   never touch the registry — [create] snapshots the count under the
   lock and [bump_cls] grows the engine-local array lazily. *)
let class_mutex = Mutex.create ()
let class_names = ref [| "unlabeled" |]
let class_count = ref 1

let register_class name =
  Mutex.protect class_mutex (fun () ->
      let id = !class_count in
      let old = !class_names in
      let n = Array.length old in
      if id >= n then begin
        let bigger = Array.make (max 4 (2 * n)) "" in
        Array.blit old 0 bigger 0 n;
        class_names := bigger
      end;
      !class_names.(id) <- name;
      incr class_count;
      id)

(* A consistent (names, count) pair for readers; the names array is
   only ever grown, never shrunk, so the snapshot stays valid. *)
let class_snapshot () =
  Mutex.protect class_mutex (fun () -> (!class_names, !class_count))

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable cancelled : int;
  mutable live_count : int;
  mutable max_heap_depth : int;
  mutable live_by_cls : int array;
  queue : event Repro_prelude.Tsheap.t;
}

let create () =
  let _, count = class_snapshot () in
  {
    clock = 0.;
    next_seq = 0;
    executed = 0;
    cancelled = 0;
    live_count = 0;
    max_heap_depth = 0;
    live_by_cls = Array.make count 0;
    queue = Repro_prelude.Tsheap.create ~dummy:dummy_event ();
  }

let now t = t.clock

let grow_cls t cls =
  let n = Array.length t.live_by_cls in
  (* A class registered after this engine was created; grow lazily. *)
  let _, count = class_snapshot () in
  let bigger = Array.make (max count (cls + 1)) 0 in
  Array.blit t.live_by_cls 0 bigger 0 n;
  t.live_by_cls <- bigger

let[@inline] bump_cls t cls delta =
  if cls >= Array.length t.live_by_cls then grow_cls t cls;
  t.live_by_cls.(cls) <- t.live_by_cls.(cls) + delta

let schedule ?(cls = 0) t ~at f =
  (* [not (at >= clock)] rather than [at < clock]: it also rejects NaN,
     which would corrupt the heap's strict ordering. *)
  if not (at >= t.clock) then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%g precedes now=%g" at t.clock);
  let ev = { action = f; cls; live = true } in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live_count <- t.live_count + 1;
  bump_cls t cls 1;
  Repro_prelude.Tsheap.add t.queue ~time:at ~seq ev;
  let depth = Repro_prelude.Tsheap.length t.queue in
  if depth > t.max_heap_depth then t.max_heap_depth <- depth;
  ev

let schedule_in ?cls t ~after f =
  if after < 0. then invalid_arg "Engine.schedule_in: negative delay";
  schedule ?cls t ~at:(t.clock +. after) f

let cancel t ev =
  if ev.live then begin
    ev.live <- false;
    t.live_count <- t.live_count - 1;
    bump_cls t ev.cls (-1);
    t.cancelled <- t.cancelled + 1
  end

let pending t = t.live_count
let is_live (ev : event_id) = ev.live

let live_by_class t =
  let names, count = class_snapshot () in
  let out = ref [] in
  for cls = count - 1 downto 1 do
    let n =
      if cls < Array.length t.live_by_cls then t.live_by_cls.(cls) else 0
    in
    out := (names.(cls), n) :: !out
  done;
  !out

(* Fire the queue's minimum event (which must exist and be live):
   shared by [step] and the [run_until] loop. *)
let[@inline] fire t ev =
  ev.live <- false;
  t.live_count <- t.live_count - 1;
  bump_cls t ev.cls (-1);
  t.clock <- Repro_prelude.Tsheap.min_time t.queue;
  t.executed <- t.executed + 1;
  Repro_prelude.Tsheap.drop_min t.queue;
  ev.action ()

let step t =
  if Repro_prelude.Tsheap.is_empty t.queue then false
  else begin
    let ev = Repro_prelude.Tsheap.min_payload t.queue in
    if ev.live then fire t ev else Repro_prelude.Tsheap.drop_min t.queue;
    true
  end

exception Event_limit_exceeded of string

let limit_exceeded t budget =
  raise
    (Event_limit_exceeded
       (Printf.sprintf
          "Engine: event budget %d exhausted at t=%g with %d events pending \
           (likely a self-scheduling loop)"
          budget t.clock t.live_count))

let run_until ?max_events t ~limit =
  let queue = t.queue in
  (* The budget counts live executions only. Cancelled heads are drained
     for free *before* the budget check, so an exactly-exhausted budget
     whose remaining in-horizon events are all dead finishes normally
     instead of tripping — the check fires only when a live event within
     [limit] is actually about to run. *)
  (match max_events with
  | None ->
    let continue_ = ref true in
    while !continue_ do
      if Repro_prelude.Tsheap.is_empty queue then continue_ := false
      else begin
        let ev = Repro_prelude.Tsheap.min_payload queue in
        if not ev.live then Repro_prelude.Tsheap.drop_min queue
        else if Repro_prelude.Tsheap.min_time queue > limit then
          (* Leave future events queued; just advance the clock. *)
          continue_ := false
        else fire t ev
      end
    done
  | Some budget ->
    let start = t.executed in
    let continue_ = ref true in
    while !continue_ do
      if Repro_prelude.Tsheap.is_empty queue then continue_ := false
      else begin
        let ev = Repro_prelude.Tsheap.min_payload queue in
        if not ev.live then Repro_prelude.Tsheap.drop_min queue
        else if Repro_prelude.Tsheap.min_time queue > limit then continue_ := false
        else begin
          if t.executed - start >= budget then limit_exceeded t budget;
          fire t ev
        end
      end
    done);
  if limit > t.clock then t.clock <- limit

let run ?max_events t =
  match max_events with
  | None -> while step t do () done
  | Some budget ->
    let start = t.executed in
    let rec loop () =
      if t.executed - start >= budget && t.live_count > 0 then
        limit_exceeded t budget
      else if step t then loop ()
    in
    loop ()

let executed t = t.executed

type stats = {
  executed : int;
  scheduled : int;
  cancelled : int;
  pending : int;
  max_heap_depth : int;
}

let stats (t : t) =
  {
    executed = t.executed;
    scheduled = t.next_seq;
    cancelled = t.cancelled;
    pending = t.live_count;
    max_heap_depth = t.max_heap_depth;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "events: %d executed, %d scheduled, %d cancelled, %d pending; heap high-water: %d"
    s.executed s.scheduled s.cancelled s.pending s.max_heap_depth
