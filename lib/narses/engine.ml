type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  cls : int;
  mutable live : bool;
}

type event_id = event
type cls = int

(* Class names are registered once, globally, at module-initialisation
   time (timer owners register their class in a top-level [let]); each
   engine keeps an int array of live counts indexed by class id, so the
   per-event bookkeeping stays a single array bump. Class 0 is the
   implicit "unlabeled" class for callers that pass no [?cls]. *)
let class_names = ref [| "unlabeled" |]
let class_count = ref 1

let register_class name =
  let id = !class_count in
  let old = !class_names in
  let n = Array.length old in
  if id >= n then begin
    let bigger = Array.make (max 4 (2 * n)) "" in
    Array.blit old 0 bigger 0 n;
    class_names := bigger
  end;
  !class_names.(id) <- name;
  incr class_count;
  id

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable cancelled : int;
  mutable live_count : int;
  mutable max_heap_depth : int;
  mutable live_by_cls : int array;
  queue : event Repro_prelude.Heap.t;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    clock = 0.;
    next_seq = 0;
    executed = 0;
    cancelled = 0;
    live_count = 0;
    max_heap_depth = 0;
    live_by_cls = Array.make !class_count 0;
    queue = Repro_prelude.Heap.create ~cmp:compare_events;
  }

let now t = t.clock

let bump_cls t cls delta =
  let n = Array.length t.live_by_cls in
  if cls >= n then begin
    (* A class registered after this engine was created; grow lazily. *)
    let bigger = Array.make (max !class_count (cls + 1)) 0 in
    Array.blit t.live_by_cls 0 bigger 0 n;
    t.live_by_cls <- bigger
  end;
  t.live_by_cls.(cls) <- t.live_by_cls.(cls) + delta

let schedule ?(cls = 0) t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%g precedes now=%g" at t.clock);
  let ev = { time = at; seq = t.next_seq; action = f; cls; live = true } in
  t.next_seq <- t.next_seq + 1;
  t.live_count <- t.live_count + 1;
  bump_cls t cls 1;
  Repro_prelude.Heap.add t.queue ev;
  let depth = Repro_prelude.Heap.length t.queue in
  if depth > t.max_heap_depth then t.max_heap_depth <- depth;
  ev

let schedule_in ?cls t ~after f =
  if after < 0. then invalid_arg "Engine.schedule_in: negative delay";
  schedule ?cls t ~at:(t.clock +. after) f

let cancel t ev =
  if ev.live then begin
    ev.live <- false;
    t.live_count <- t.live_count - 1;
    bump_cls t ev.cls (-1);
    t.cancelled <- t.cancelled + 1
  end

let pending t = t.live_count
let is_live (ev : event_id) = ev.live

let live_by_class t =
  let names = !class_names in
  let out = ref [] in
  for cls = !class_count - 1 downto 1 do
    let count =
      if cls < Array.length t.live_by_cls then t.live_by_cls.(cls) else 0
    in
    out := (names.(cls), count) :: !out
  done;
  !out

let step t =
  match Repro_prelude.Heap.pop t.queue with
  | None -> false
  | Some ev ->
    if ev.live then begin
      ev.live <- false;
      t.live_count <- t.live_count - 1;
      bump_cls t ev.cls (-1);
      t.clock <- ev.time;
      t.executed <- t.executed + 1;
      ev.action ()
    end;
    true

exception Event_limit_exceeded of string

let limit_exceeded t budget =
  raise
    (Event_limit_exceeded
       (Printf.sprintf
          "Engine: event budget %d exhausted at t=%g with %d events pending \
           (likely a self-scheduling loop)"
          budget t.clock t.live_count))

let run_until ?max_events t ~limit =
  let start = t.executed in
  (* The budget counts live executions only. Cancelled heads are drained
     for free *before* the budget check, so an exactly-exhausted budget
     whose remaining in-horizon events are all dead finishes normally
     instead of tripping — the check fires only when a live event within
     [limit] is actually about to run. *)
  let rec loop () =
    match Repro_prelude.Heap.peek t.queue with
    | None -> ()
    | Some ev when not ev.live ->
      ignore (Repro_prelude.Heap.pop t.queue);
      loop ()
    | Some ev when ev.time > limit ->
      (* Leave future events queued; just advance the clock. *)
      ()
    | Some _ ->
      (match max_events with
      | Some budget when t.executed - start >= budget -> limit_exceeded t budget
      | Some _ | None -> ());
      ignore (step t);
      loop ()
  in
  loop ();
  if limit > t.clock then t.clock <- limit

let run ?max_events t =
  match max_events with
  | None -> while step t do () done
  | Some budget ->
    let start = t.executed in
    let rec loop () =
      if t.executed - start >= budget && t.live_count > 0 then
        limit_exceeded t budget
      else if step t then loop ()
    in
    loop ()
let executed t = t.executed

type stats = {
  executed : int;
  scheduled : int;
  cancelled : int;
  pending : int;
  max_heap_depth : int;
}

let stats (t : t) =
  {
    executed = t.executed;
    scheduled = t.next_seq;
    cancelled = t.cancelled;
    pending = t.live_count;
    max_heap_depth = t.max_heap_depth;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "events: %d executed, %d scheduled, %d cancelled, %d pending; heap high-water: %d"
    s.executed s.scheduled s.cancelled s.pending s.max_heap_depth
