(** Discrete-event simulation engine.

    A single-threaded event loop over a priority queue of timestamped
    callbacks. Events scheduled at equal times fire in scheduling order
    (FIFO), which keeps runs deterministic. This is the core of our
    Narses-equivalent substrate: the paper ran its experiments on Narses, a
    discrete-event simulator with a pluggable network model; {!Engine} plus
    {!Net} reproduce the model variant the paper selected. *)

type t

(** Handle to a scheduled event, usable with {!cancel}. *)
type event_id

(** An event class label for leak auditing: timer owners register a
    class once at module-initialisation time and tag their schedules
    with it, and the engine maintains a per-class live count for free.
    {!Check.Leak} cross-checks these counts against owner state at end
    of run. *)
type cls

(** [register_class name] allocates a fresh global class id. Call once
    per class, normally at module-initialisation time. Registration is
    mutex-guarded, so a late registration racing engines on other
    domains still yields a unique id and a consistent name table;
    engines created before a registration grow their per-class counters
    lazily on first use of the new id. *)
val register_class : string -> cls

(** [create ()] is an engine at time [0.] with no pending events. *)
val create : unit -> t

(** [now t] is the current simulated time in seconds. *)
val now : t -> float

(** [schedule ?cls t ~at f] runs [f ()] at absolute time [at], which must
    not precede [now t] (NaN is rejected — it would corrupt the queue's
    ordering). Returns a handle for cancellation. [cls]
    (default: an unlabeled class excluded from {!live_by_class}) tags
    the event for the per-class live counters. *)
val schedule : ?cls:cls -> t -> at:float -> (unit -> unit) -> event_id

(** [schedule_in ?cls t ~after f] runs [f ()] after [after] seconds
    ([>= 0]). *)
val schedule_in : ?cls:cls -> t -> after:float -> (unit -> unit) -> event_id

(** [cancel t id] prevents the event from firing if it has not fired yet;
    cancelling a fired or cancelled event is a no-op. *)
val cancel : t -> event_id -> unit

(** [pending t] is the number of live (uncancelled, unfired) events. *)
val pending : t -> int

(** [is_live id] is [true] while the event has neither fired nor been
    cancelled — lets the leak audit check that a timer handle still held
    in protocol state is actually pending. *)
val is_live : event_id -> bool

(** [live_by_class t] is the current live-event count for every
    registered class (in registration order), including zero counts;
    unlabeled events are not listed. *)
val live_by_class : t -> (string * int) list

(** Raised by {!run} and {!run_until} when [max_events] executions have
    fired and live events remain; the message reports the budget, the
    simulated time reached and the pending count. *)
exception Event_limit_exceeded of string

(** [run_until ?max_events t ~limit] executes events in time order until
    the queue is empty or the next event is strictly after [limit]; the
    clock finishes at [limit] or at the last event time, whichever is
    later. With [max_events], raises {!Event_limit_exceeded} instead of
    looping forever when events keep scheduling same-time successors
    (cancelled events do not count against the budget). *)
val run_until : ?max_events:int -> t -> limit:float -> unit

(** [run ?max_events t] executes events until the queue is empty.
    Without [max_events] it diverges if events schedule unboundedly many
    successors; with it, {!Event_limit_exceeded} is raised instead. *)
val run : ?max_events:int -> t -> unit

(** [executed t] is the count of events that have fired, for tests and
    throughput benchmarks. *)
val executed : t -> int

(** Engine-level profiling counters, maintained for free as the run
    proceeds. [scheduled] counts every {!schedule} call (fired, pending
    or cancelled); [max_heap_depth] is the high-water mark of the event
    queue including not-yet-popped cancelled events, i.e. the engine's
    peak memory pressure. *)
type stats = {
  executed : int;
  scheduled : int;
  cancelled : int;
  pending : int;
  max_heap_depth : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
