type model = Delay_only | Shared_bottleneck

type 'msg t = {
  model : model;
  engine : Engine.t;
  topology : Topology.t;
  partition : Partition.t;
  faults : Faults.t option;
  handlers : (src:Topology.node -> 'msg -> unit) option array;
  active : int array;  (* concurrent transfers touching each node's link *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes_delivered : int;
}

let create ?(model = Delay_only) ?faults ~engine ~topology ~partition () =
  {
    model;
    engine;
    topology;
    partition;
    faults;
    handlers = Array.make (Topology.node_count topology) None;
    active = Array.make (Topology.node_count topology) 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes_delivered = 0;
  }

let register t node handler = t.handlers.(node) <- Some handler

let transfer_delay t ~src ~dst ~bytes =
  match t.model with
  | Delay_only -> Topology.transfer_time t.topology ~src ~dst ~bytes
  | Shared_bottleneck ->
    (* First-order congestion: the busier endpoint's link is shared
       equally among its concurrent transfers, this one included. *)
    let sharers = 1 + max t.active.(src) t.active.(dst) in
    let bottleneck =
      min (Topology.bandwidth_bps t.topology src) (Topology.bandwidth_bps t.topology dst)
      /. float_of_int sharers
    in
    Topology.path_latency t.topology ~src ~dst
    +. (8. *. float_of_int bytes /. bottleneck)

let endpoint_down t ~src ~dst =
  match t.faults with
  | None -> false
  | Some f -> Faults.is_down f src || Faults.is_down f dst

let send t ~src ~dst ~bytes msg =
  t.sent <- t.sent + 1;
  if Partition.blocked t.partition ~src ~dst then t.dropped <- t.dropped + 1
  else if endpoint_down t ~src ~dst then begin
    (* A crashed endpoint can neither transmit nor receive. *)
    Faults.note_down_drop (Option.get t.faults) ~src ~dst;
    t.dropped <- t.dropped + 1
  end
  else begin
    let delay = transfer_delay t ~src ~dst ~bytes in
    let schedule_copy extra =
      t.active.(src) <- t.active.(src) + 1;
      t.active.(dst) <- t.active.(dst) + 1;
      let deliver () =
        t.active.(src) <- t.active.(src) - 1;
        t.active.(dst) <- t.active.(dst) - 1;
        if Partition.blocked t.partition ~src ~dst then t.dropped <- t.dropped + 1
        else if endpoint_down t ~src ~dst then begin
          (* Crashed mid-flight: the copy reaches a dead process. *)
          Faults.note_down_drop (Option.get t.faults) ~src ~dst;
          t.dropped <- t.dropped + 1
        end
        else begin
          match t.handlers.(dst) with
          | None -> t.dropped <- t.dropped + 1
          | Some handler ->
            t.delivered <- t.delivered + 1;
            t.bytes_delivered <- t.bytes_delivered + bytes;
            handler ~src msg
        end
      in
      ignore (Engine.schedule_in t.engine ~after:(delay +. extra) deliver)
    in
    match t.faults with
    | None -> schedule_copy 0.
    | Some faults ->
      (match Faults.plan faults ~src ~dst with
      | [] -> t.dropped <- t.dropped + 1  (* lost to injected message loss *)
      | extras -> List.iter schedule_copy extras)
  end

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped
let bytes_delivered t = t.bytes_delivered
let active_transfers t node = t.active.(node)
