type model = Delay_only | Shared_bottleneck

(* Capacity of the replay ring: recently delivered messages the fault
   layer can re-inject. Bounded so memory stays O(1) per network. *)
let replay_ring_capacity = 64

type 'msg t = {
  model : model;
  engine : Engine.t;
  topology : Topology.t;
  partition : Partition.t;
  faults : Faults.t option;
  handlers : (src:Topology.node -> 'msg -> unit) option array;
  active : int array;  (* concurrent transfers touching each node's link *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable partition_dropped : int;
  mutable fault_dropped : int;
  mutable injected : int;
  mutable bytes_delivered : int;
  mutable tamper : ('msg -> salt:int64 -> 'msg) option;
  mutable stray : (salt:int64 -> unit) option;
  (* (src, dst, bytes, msg) of recent deliveries, overwritten round-robin *)
  ring : (Topology.node * Topology.node * int * 'msg) option array;
  mutable ring_next : int;
  mutable ring_filled : int;
}

let create ?(model = Delay_only) ?faults ~engine ~topology ~partition () =
  {
    model;
    engine;
    topology;
    partition;
    faults;
    handlers = Array.make (Topology.node_count topology) None;
    active = Array.make (Topology.node_count topology) 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    partition_dropped = 0;
    fault_dropped = 0;
    injected = 0;
    bytes_delivered = 0;
    tamper = None;
    stray = None;
    ring = Array.make replay_ring_capacity None;
    ring_next = 0;
    ring_filled = 0;
  }

let register t node handler = t.handlers.(node) <- Some handler
let set_tamper t f = t.tamper <- Some f
let set_stray t f = t.stray <- Some f

let transfer_delay t ~src ~dst ~bytes =
  match t.model with
  | Delay_only -> Topology.transfer_time t.topology ~src ~dst ~bytes
  | Shared_bottleneck ->
    (* First-order congestion: the busier endpoint's link is shared
       equally among its concurrent transfers, this one included. *)
    let sharers = 1 + max t.active.(src) t.active.(dst) in
    let bottleneck =
      min (Topology.bandwidth_bps t.topology src) (Topology.bandwidth_bps t.topology dst)
      /. float_of_int sharers
    in
    Topology.path_latency t.topology ~src ~dst
    +. (8. *. float_of_int bytes /. bottleneck)

let endpoint_down t ~src ~dst =
  match t.faults with
  | None -> false
  | Some f -> Faults.is_down f src || Faults.is_down f dst

let note_partition_drop t ~src ~dst =
  t.dropped <- t.dropped + 1;
  t.partition_dropped <- t.partition_dropped + 1;
  match t.faults with
  | None -> ()
  | Some f -> Faults.note_partition_block f ~src ~dst

let note_fault_drop t =
  t.dropped <- t.dropped + 1;
  t.fault_dropped <- t.fault_dropped + 1

let ring_push t ~src ~dst ~bytes msg =
  t.ring.(t.ring_next) <- Some (src, dst, bytes, msg);
  t.ring_next <- (t.ring_next + 1) mod replay_ring_capacity;
  if t.ring_filled < replay_ring_capacity then t.ring_filled <- t.ring_filled + 1

(* Deliver one copy of [msg] from [src] to [dst] after the model delay
   plus [extra]. Under corruption faults, each copy independently rolls
   for a single-field mutation applied through the registered tamper
   hook. Delivered copies are remembered in the replay ring. *)
let schedule_copy t ~src ~dst ~bytes ~extra msg =
  let delay = transfer_delay t ~src ~dst ~bytes in
  let msg =
    match t.faults, t.tamper with
    | Some faults, Some tamper ->
      (match Faults.corrupt_salt faults with
      | None -> msg
      | Some salt ->
        Faults.note_corrupted faults ~src ~dst;
        tamper msg ~salt)
    | _ -> msg
  in
  t.active.(src) <- t.active.(src) + 1;
  t.active.(dst) <- t.active.(dst) + 1;
  let deliver () =
    t.active.(src) <- t.active.(src) - 1;
    t.active.(dst) <- t.active.(dst) - 1;
    if Partition.blocked t.partition ~src ~dst then note_partition_drop t ~src ~dst
    else if endpoint_down t ~src ~dst then begin
      (* Crashed mid-flight: the copy reaches a dead process. *)
      Faults.note_down_drop (Option.get t.faults) ~src ~dst;
      t.fault_dropped <- t.fault_dropped + 1;
      t.dropped <- t.dropped + 1
    end
    else begin
      match t.handlers.(dst) with
      | None -> t.dropped <- t.dropped + 1
      | Some handler ->
        t.delivered <- t.delivered + 1;
        t.bytes_delivered <- t.bytes_delivered + bytes;
        ring_push t ~src ~dst ~bytes msg;
        handler ~src msg
    end
  in
  ignore (Engine.schedule_in t.engine ~after:(delay +. extra) deliver)

(* Re-inject a past delivery chosen from the ring, counted in
   [injected] (it is not a logical send, so conservation becomes
   sent + dups + injected = delivered + dropped + in-flight). *)
let inject_from_ring t faults ~extra ~note =
  if t.ring_filled > 0 then begin
    let slot = Faults.pick faults t.ring_filled in
    match t.ring.(slot) with
    | None -> ()
    | Some (src, dst, bytes, msg) ->
      t.injected <- t.injected + 1;
      note ~src ~dst;
      schedule_copy t ~src ~dst ~bytes ~extra msg
  end

let send t ~src ~dst ~bytes msg =
  t.sent <- t.sent + 1;
  if Partition.blocked t.partition ~src ~dst then note_partition_drop t ~src ~dst
  else if endpoint_down t ~src ~dst then begin
    (* A crashed endpoint can neither transmit nor receive. *)
    Faults.note_down_drop (Option.get t.faults) ~src ~dst;
    note_fault_drop t
  end
  else begin
    (match t.faults with
    | None -> schedule_copy t ~src ~dst ~bytes ~extra:0. msg
    | Some faults ->
      (match Faults.plan faults ~src ~dst with
      | [] -> note_fault_drop t  (* lost to injected message loss *)
      | extras -> List.iter (fun extra -> schedule_copy t ~src ~dst ~bytes ~extra msg) extras));
    (* Content-fault triggers ride on live sends so injection pressure
       scales with traffic; partition-blocked and dead-endpoint sends
       skip them. *)
    match t.faults with
    | None -> ()
    | Some faults ->
      (match Faults.replay_extra faults with
      | None -> ()
      | Some extra ->
        inject_from_ring t faults ~extra ~note:(fun ~src ~dst ->
            Faults.note_replayed faults ~src ~dst ~extra));
      (match Faults.stale_extra faults with
      | None -> ()
      | Some extra ->
        inject_from_ring t faults ~extra ~note:(fun ~src ~dst ->
            Faults.note_stale faults ~src ~dst ~extra));
      (match Faults.stray_salt faults with
      | None -> ()
      | Some salt ->
        (match t.stray with None -> () | Some forge -> forge ~salt))
  end

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped
let partition_dropped_count t = t.partition_dropped
let fault_dropped_count t = t.fault_dropped
let injected_count t = t.injected
let bytes_delivered t = t.bytes_delivered
let active_transfers t node = t.active.(node)
