module Rng = Repro_prelude.Rng
module Duration = Repro_prelude.Duration

type config = {
  loss : float;
  jitter : float;
  duplication : float;
  churn_per_day : float;
  downtime : float;
  corruption : float;
  replay : float;
  stale : float;
  stale_delay : float;
  stray : float;
  fault_seed : int;
}

let none =
  {
    loss = 0.;
    jitter = 0.;
    duplication = 0.;
    churn_per_day = 0.;
    downtime = Duration.of_days 3.;
    corruption = 0.;
    replay = 0.;
    stale = 0.;
    stale_delay = Duration.of_days 3.;
    stray = 0.;
    fault_seed = 0;
  }

let is_none c =
  c.loss = 0. && c.jitter = 0. && c.duplication = 0. && c.churn_per_day = 0.
  && c.corruption = 0. && c.replay = 0. && c.stale = 0. && c.stray = 0.

let validate c =
  let check cond msg = if not cond then invalid_arg ("Faults: " ^ msg) in
  check (c.loss >= 0. && c.loss <= 1.) "loss must be a probability";
  check (c.jitter >= 0.) "jitter must be non-negative";
  check (c.duplication >= 0. && c.duplication <= 1.) "duplication must be a probability";
  check (c.churn_per_day >= 0.) "churn_per_day must be non-negative";
  check (c.churn_per_day = 0. || c.downtime > 0.) "downtime must be positive under churn";
  check (c.corruption >= 0. && c.corruption <= 1.) "corruption must be a probability";
  check (c.replay >= 0. && c.replay <= 1.) "replay must be a probability";
  check (c.stale >= 0. && c.stale <= 1.) "stale must be a probability";
  check (c.stale = 0. || c.stale_delay > 0.) "stale_delay must be positive under stale";
  check (c.stray >= 0. && c.stray <= 1.) "stray must be a probability"

type event =
  | Dropped of { src : int; dst : int }
  | Duplicated of { src : int; dst : int }
  | Delayed of { src : int; dst : int; extra : float }
  | Crashed of { node : int }
  | Restarted of { node : int }
  | Partition_blocked of { src : int; dst : int }
  | Corrupted of { src : int; dst : int }
  | Replayed of { src : int; dst : int; extra : float }
  | Stale of { src : int; dst : int; extra : float }
  | Stray of { src : int; dst : int }

type t = {
  cfg : config;
  engine : Engine.t;
  link_rng : Rng.t;  (* loss/jitter/duplication draws, in send order *)
  churn_rng : Rng.t;  (* split per node when churn starts *)
  content_rng : Rng.t;  (* corruption/replay/stale/stray draws *)
  down : bool array;
  mutable observer : (time:float -> event -> unit) option;
  mutable crash_hooks : (int -> unit) list;
  mutable restart_hooks : (int -> unit) list;
  mutable churn_started : bool;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable partition_blocked : int;
  mutable corrupted : int;
  mutable replayed : int;
  mutable stales : int;
  mutable strays : int;
}

let create ~engine ~nodes cfg =
  validate cfg;
  if nodes <= 0 then invalid_arg "Faults.create: nodes must be positive";
  let root = Rng.create cfg.fault_seed in
  (* Splits taken in a fixed order so enabling the content faults does
     not perturb the pre-existing link/churn streams for a given seed. *)
  {
    cfg;
    engine;
    link_rng = Rng.split root;
    churn_rng = Rng.split root;
    content_rng = Rng.split root;
    down = Array.make nodes false;
    observer = None;
    crash_hooks = [];
    restart_hooks = [];
    churn_started = false;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    crashes = 0;
    restarts = 0;
    partition_blocked = 0;
    corrupted = 0;
    replayed = 0;
    stales = 0;
    strays = 0;
  }

let config t = t.cfg
let set_observer t f = t.observer <- Some f
let on_crash t f = t.crash_hooks <- t.crash_hooks @ [ f ]
let on_restart t f = t.restart_hooks <- t.restart_hooks @ [ f ]
let is_down t node = t.down.(node)
let down_count t = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.down

let emit t event =
  match t.observer with
  | None -> ()
  | Some f -> f ~time:(Engine.now t.engine) event

(* One copy's extra latency. The draw happens even at jitter = 0 so that
   turning jitter on or off does not shift the loss/duplication stream. *)
let draw_extra t =
  let u = Rng.float t.link_rng 1.0 in
  u *. t.cfg.jitter

let plan t ~src ~dst =
  if Rng.bernoulli t.link_rng t.cfg.loss then begin
    t.dropped <- t.dropped + 1;
    emit t (Dropped { src; dst });
    []
  end
  else begin
    let note_extra extra =
      if extra > 0. then begin
        t.delayed <- t.delayed + 1;
        emit t (Delayed { src; dst; extra })
      end;
      extra
    in
    let first = note_extra (draw_extra t) in
    if Rng.bernoulli t.link_rng t.cfg.duplication then begin
      t.duplicated <- t.duplicated + 1;
      emit t (Duplicated { src; dst });
      [ first; note_extra (draw_extra t) ]
    end
    else [ first ]
  end

(* Content-fault draws. Unlike the link stream, each draw is guarded by
   its rate being non-zero, so a run with content faults disabled makes
   no [content_rng] draws at all and the pre-existing fault streams stay
   byte-identical for a given seed. *)

let corrupt_salt t =
  if t.cfg.corruption > 0. && Rng.bernoulli t.content_rng t.cfg.corruption then
    Some (Rng.bits64 t.content_rng)
  else None

let replay_extra t =
  if t.cfg.replay > 0. && Rng.bernoulli t.content_rng t.cfg.replay then
    Some (Rng.float t.content_rng 1.0 *. t.cfg.jitter)
  else None

let stale_extra t =
  if t.cfg.stale > 0. && Rng.bernoulli t.content_rng t.cfg.stale then
    Some (t.cfg.stale_delay +. (Rng.float t.content_rng 1.0 *. t.cfg.jitter))
  else None

let stray_salt t =
  if t.cfg.stray > 0. && Rng.bernoulli t.content_rng t.cfg.stray then
    Some (Rng.bits64 t.content_rng)
  else None

let pick t n =
  if n <= 0 then invalid_arg "Faults.pick: empty range"
  else Rng.int t.content_rng n

let note_down_drop t ~src ~dst =
  t.dropped <- t.dropped + 1;
  emit t (Dropped { src; dst })

let note_partition_block t ~src ~dst =
  t.partition_blocked <- t.partition_blocked + 1;
  emit t (Partition_blocked { src; dst })

let note_corrupted t ~src ~dst =
  t.corrupted <- t.corrupted + 1;
  emit t (Corrupted { src; dst })

let note_replayed t ~src ~dst ~extra =
  t.replayed <- t.replayed + 1;
  emit t (Replayed { src; dst; extra })

let note_stale t ~src ~dst ~extra =
  t.stales <- t.stales + 1;
  emit t (Stale { src; dst; extra })

let note_stray t ~src ~dst =
  t.strays <- t.strays + 1;
  emit t (Stray { src; dst })

let start_churn t ~nodes =
  if t.churn_started then invalid_arg "Faults.start_churn: already started";
  t.churn_started <- true;
  if t.cfg.churn_per_day > 0. then begin
    let mean = Duration.day /. t.cfg.churn_per_day in
    List.iter
      (fun node ->
        let rng = Rng.split t.churn_rng in
        let rec schedule_crash () =
          let delay = Rng.exponential rng ~mean in
          ignore
            (Engine.schedule_in t.engine ~after:delay (fun () ->
                 t.down.(node) <- true;
                 t.crashes <- t.crashes + 1;
                 emit t (Crashed { node });
                 List.iter (fun f -> f node) t.crash_hooks;
                 ignore
                   (Engine.schedule_in t.engine ~after:t.cfg.downtime (fun () ->
                        t.down.(node) <- false;
                        t.restarts <- t.restarts + 1;
                        emit t (Restarted { node });
                        List.iter (fun f -> f node) t.restart_hooks;
                        schedule_crash ()))))
        in
        schedule_crash ())
      nodes
  end

let dropped_count t = t.dropped
let duplicated_count t = t.duplicated
let delayed_count t = t.delayed
let crash_count t = t.crashes
let restart_count t = t.restarts
let partition_blocked_count t = t.partition_blocked
let corrupted_count t = t.corrupted
let replayed_count t = t.replayed
let stale_count t = t.stales
let stray_count t = t.strays
