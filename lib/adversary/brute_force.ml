module Engine = Narses.Engine
module Rng = Repro_prelude.Rng
module Duration = Repro_prelude.Duration
module Proof = Effort.Proof
module Cost_model = Effort.Cost_model

type strategy = Intro | Remaining | Full

let pp_strategy ppf s =
  Format.pp_print_string ppf
    (match s with Intro -> "INTRO" | Remaining -> "REMAINING" | Full -> "NONE")

(* Distinct from the admission-flood identity space; each instance gets
   its own block (numbered per population) so combined attacks cannot
   collide at the victims. *)
let identity_space = 2_000_000

type session = { victim : Narses.Topology.node; identity : Lockss.Ids.Identity.t }

type t = {
  population : Lockss.Population.t;
  rng : Rng.t;
  minions : Narses.Topology.node array;
  strategy : strategy;
  identities : Lockss.Ids.Identity.t array;
  period : float;
  mutable next_identity_index : int;
  mutable next_poll_id : int;
  sessions : (Lockss.Ids.Au_id.t * int, session) Hashtbl.t;
  mutable sent : int;
  mutable admissions : int;
  mutable votes_received : int;
}

let ctx t = Lockss.Population.ctx t.population
let cfg t = (ctx t).Lockss.Peer.cfg
(* All adversary work is booked through [Peer.charge_adversary] so the
   trace-derived effort ledger attributes it to the spending identity and
   the poll it targets. *)
let charge t ~who ~phase ?poller ?au ?poll_id work =
  Lockss.Peer.charge_adversary (ctx t) ~who ~phase ?poller ?au ?poll_id work

let next_identity t =
  let id = t.identities.(t.next_identity_index mod Array.length t.identities) in
  t.next_identity_index <- t.next_identity_index + 1;
  id

let send t ~minion ~identity ~dst ~au payload =
  let msg = { Lockss.Message.identity; au; payload } in
  Narses.Net.send (ctx t).Lockss.Peer.net ~src:minion ~dst
    ~bytes:(Lockss.Message.wire_bytes (cfg t) msg)
    msg;
  t.sent <- t.sent + 1

(* The insider-information oracle: would the victim even consider this
   invitation right now? Spares the adversary introductory efforts that a
   scheduling conflict or an active refractory period would waste. *)
let oracle_accepts t ~victim ~au =
  let ctx = ctx t in
  let cfg = cfg t in
  let peer = ctx.Lockss.Peer.peers.(victim) in
  let now = Engine.now ctx.Lockss.Peer.engine in
  let st = Lockss.Peer.au_state peer au in
  (not (Lockss.Admission.in_refractory st.Lockss.Peer.admission ~now))
  && Effort.Task_schedule.can_accept peer.Lockss.Peer.schedule ~now
       ~work:(Lockss.Config.vote_work cfg)
       ~deadline:(now +. cfg.Lockss.Config.vote_allowance)

let rec lane t ~victim ~au () =
  let engine = Lockss.Population.engine t.population in
  if oracle_accepts t ~victim ~au then begin
    let cfg = cfg t in
    let identity = next_identity t in
    let minion = t.minions.(Rng.int t.rng (Array.length t.minions)) in
    let poll_id = t.next_poll_id in
    t.next_poll_id <- poll_id + 1;
    Hashtbl.replace t.sessions (au, poll_id) { victim; identity };
    let intro_cost = Lockss.Config.intro_effort cfg in
    (* If the defenders ablated effort balancing away, nobody verifies
       proofs — the adversary ships free forgeries instead of paying. *)
    let charge_solicitation work =
      charge t ~who:identity ~phase:Lockss.Trace.Solicitation ~poller:identity ~au
        ~poll_id work
    in
    let intro =
      if cfg.Lockss.Config.effort_balancing_enabled then begin
        charge_solicitation intro_cost;
        Proof.generate ~rng:t.rng ~cost:intro_cost
      end
      else Proof.forged ~claimed_cost:intro_cost
    in
    charge_solicitation cfg.Lockss.Config.cost.Effort.Cost_model.session_setup_seconds;
    send t ~minion ~identity ~dst:victim ~au (Lockss.Message.Poll { poll_id; intro })
  end;
  let delay = Rng.uniform t.rng ~lo:(0.5 *. t.period) ~hi:(1.5 *. t.period) in
  ignore (Engine.schedule_in engine ~after:delay (lane t ~victim ~au))

let on_poll_ack t ~minion ~au ~poll_id ~accepted =
  match Hashtbl.find_opt t.sessions (au, poll_id) with
  | None -> ()
  | Some session ->
    if not accepted then Hashtbl.remove t.sessions (au, poll_id)
    else begin
      t.admissions <- t.admissions + 1;
      match t.strategy with
      | Intro ->
        (* Reservation attack: desert after the accepted Poll. *)
        Hashtbl.remove t.sessions (au, poll_id)
      | Remaining | Full ->
        let cfg = cfg t in
        let remaining_cost = Lockss.Config.remaining_effort cfg in
        let remaining =
          if cfg.Lockss.Config.effort_balancing_enabled then begin
            charge t ~who:session.identity ~phase:Lockss.Trace.Solicitation
              ~poller:session.identity ~au ~poll_id remaining_cost;
            Proof.generate ~rng:t.rng ~cost:remaining_cost
          end
          else Proof.forged ~claimed_cost:remaining_cost
        in
        let nonce = Rng.bits64 t.rng in
        send t ~minion ~identity:session.identity ~dst:session.victim ~au
          (Lockss.Message.Poll_proof { poll_id; remaining; nonce })
    end

let on_vote t ~minion ~au ~poll_id ~(vote : Lockss.Vote.t) =
  match Hashtbl.find_opt t.sessions (au, poll_id) with
  | None -> ()
  | Some session ->
    t.votes_received <- t.votes_received + 1;
    (match t.strategy with
    | Intro | Remaining ->
      (* Wasteful attack: discard the vote unevaluated, no receipt. *)
      ()
    | Full ->
      (* Validate the vote's effort proof: that verification work is what
         reproduces the 160-bit byproduct the receipt must echo. Content
         comparison is free to this adversary — its replica is magically
         incorruptible, and any disagreeing blocks are the victim's own
         damage, not its problem. *)
      let cfg = cfg t in
      let eval_cost =
        Cost_model.mbf_verify_seconds cfg.Lockss.Config.cost
          ~generation_cost:(Lockss.Config.vote_proof_cost cfg)
      in
      charge t ~who:session.identity ~phase:Lockss.Trace.Evaluation
        ~poller:session.identity ~au ~poll_id eval_cost;
      send t ~minion ~identity:session.identity ~dst:session.victim ~au
        (Lockss.Message.Evaluation_receipt
           { poll_id; receipt = Lockss.Vote.expected_receipt vote }));
    Hashtbl.remove t.sessions (au, poll_id)

let minion_handler t minion ~src:_ (msg : Lockss.Message.t) =
  let au = msg.Lockss.Message.au in
  match msg.Lockss.Message.payload with
  | Lockss.Message.Poll_ack { poll_id; accepted } ->
    on_poll_ack t ~minion ~au ~poll_id ~accepted
  | Lockss.Message.Vote_msg { poll_id; vote } -> on_vote t ~minion ~au ~poll_id ~vote
  | Lockss.Message.Poll _ | Lockss.Message.Poll_proof _ | Lockss.Message.Repair_request _
  | Lockss.Message.Repair _ | Lockss.Message.Evaluation_receipt _
  | Lockss.Message.Garbage _ ->
    ()

let attach population ~minions ~strategy ~identities ~attempts_per_victim_au_per_day =
  if minions = [] then invalid_arg "Brute_force.attach: needs at least one minion";
  if identities <= 0 then invalid_arg "Brute_force.attach: identities must be positive";
  if attempts_per_victim_au_per_day <= 0. then
    invalid_arg "Brute_force.attach: rate must be positive";
  let instance = Lockss.Population.next_adversary_instance population in
  let ids = Array.init identities (fun i -> identity_space + (100_000 * instance) + i) in
  let t =
    {
      population;
      rng = Lockss.Population.split_rng population;
      minions = Array.of_list minions;
      strategy;
      identities = ids;
      period = Duration.day /. attempts_per_victim_au_per_day;
      next_identity_index = 0;
      next_poll_id = 1;
      sessions = Hashtbl.create 256;
      sent = 0;
      admissions = 0;
      votes_received = 0;
    }
  in
  let ctx' = ctx t in
  (* Replies to any adversary identity route to a minion node; total
     information awareness makes every minion interchangeable. *)
  Array.iteri
    (fun i id ->
      Lockss.Peer.register_identity ctx' id t.minions.(i mod Array.length t.minions))
    ids;
  Lockss.Population.seed_debt_identities population (Array.to_list ids);
  List.iter
    (fun minion ->
      Narses.Net.register ctx'.Lockss.Peer.net minion (minion_handler t minion))
    minions;
  let engine = Lockss.Population.engine population in
  let aus = (cfg t).Lockss.Config.aus in
  List.iter
    (fun victim ->
      for au = 0 to aus - 1 do
        let start = Rng.uniform t.rng ~lo:0. ~hi:t.period in
        ignore (Engine.schedule_in engine ~after:start (lane t ~victim ~au))
      done)
    (Lockss.Population.loyal_nodes population);
  t

let invitations_sent t = t.sent
let admissions t = t.admissions
let votes_received t = t.votes_received
