module Engine = Narses.Engine
module Rng = Repro_prelude.Rng
module Proof = Effort.Proof
module Cost_model = Effort.Cost_model

type strategy = Aggressive | Patient

let pp_strategy ppf s =
  Format.pp_print_string ppf
    (match s with Aggressive -> "aggressive" | Patient -> "patient")

(* All minions claim this content version for the target block. *)
let corrupt_version = 0xBAD
let target_block = 0

type session = {
  sv_poller : Lockss.Ids.Identity.t;
  sv_poller_node : Narses.Topology.node;
  sv_au : Lockss.Ids.Au_id.t;
  sv_poll_id : int;
  mutable sv_nonce : int64;
  mutable sv_attack : bool;
}

type t = {
  population : Lockss.Population.t;
  rng : Rng.t;
  strategy : strategy;
  minions : Narses.Topology.node array;
  is_minion : (Lockss.Ids.Identity.t, unit) Hashtbl.t;
  (* (poller, au, poll_id) -> how many minions were invited; the shared
     state "total information awareness" grants. *)
  invitations : (Lockss.Ids.Identity.t * Lockss.Ids.Au_id.t * int, int) Hashtbl.t;
  sessions :
    ( Narses.Topology.node * Lockss.Ids.Identity.t * Lockss.Ids.Au_id.t * int,
      session )
    Hashtbl.t;
  mutable corrupt_votes : int;
  mutable corrupt_repairs : int;
}

let ctx t = Lockss.Population.ctx t.population
let cfg t = (ctx t).Lockss.Peer.cfg
(* All adversary work is booked through [Peer.charge_adversary] so the
   trace-derived effort ledger attributes it to the spending minion and
   the poll it concerns. *)
let charge t ~who ~phase ?poller ?au ?poll_id work =
  Lockss.Peer.charge_adversary (ctx t) ~who ~phase ?poller ?au ?poll_id work

let invited_minions t ~poller ~au ~poll_id =
  match Hashtbl.find_opt t.invitations (poller, au, poll_id) with
  | None -> 0
  | Some n -> n

let should_attack t ~invited =
  let cfg = cfg t in
  match t.strategy with
  | Aggressive ->
    (* Vote corrupt in every honest poll and hope to be a landslide
       majority of whoever else turns up. *)
    true
  | Patient ->
    (* Only move with evidence that the minions can crowd out the whole
       quorum: enough co-invitations to form a landslide by themselves.
       Because solicitation is desynchronized, invitations trickle in
       over weeks and an early-invited minion must commit its vote long
       before the later ones are known — this evidence rarely
       accumulates, which is precisely the defense. *)
    invited >= cfg.Lockss.Config.quorum - cfg.Lockss.Config.max_disagree

let reply t ~minion ~to_identity ~au payload =
  let sender = (ctx t).Lockss.Peer.peers.(minion).Lockss.Peer.identity in
  let msg = { Lockss.Message.identity = sender; au; payload } in
  let dst = Lockss.Peer.node_of_identity (ctx t) to_identity in
  Narses.Net.send (ctx t).Lockss.Peer.net ~src:minion ~dst
    ~bytes:(Lockss.Message.wire_bytes (cfg t) msg)
    msg

let fellow_nominations t ~minion =
  let cfg = cfg t in
  let others =
    Array.to_list t.minions |> List.filter (fun node -> node <> minion)
  in
  Rng.sample t.rng cfg.Lockss.Config.nominations_per_vote others

let send_vote t ~minion (session : session) () =
  let cfg = cfg t in
  let peer = (ctx t).Lockss.Peer.peers.(minion) in
  let st = Lockss.Peer.au_state peer session.sv_au in
  let invited =
    invited_minions t ~poller:session.sv_poller ~au:session.sv_au
      ~poll_id:session.sv_poll_id
  in
  (* Never attack a fellow minion's poll: corrupting each other's
     replicas only raises the alarm statistics for free. *)
  let attack =
    (not (Hashtbl.mem t.is_minion session.sv_poller)) && should_attack t ~invited
  in
  session.sv_attack <- attack;
  if attack then t.corrupt_votes <- t.corrupt_votes + 1;
  (* Do the honest amount of work: the vote must survive effort
     verification and the receipt exchange to keep the minion's grades. *)
  charge t ~who:peer.Lockss.Peer.identity ~phase:Lockss.Trace.Voting
    ~poller:session.sv_poller ~au:session.sv_au ~poll_id:session.sv_poll_id
    (Lockss.Config.vote_work cfg);
  let proof = Proof.generate ~rng:t.rng ~cost:(Lockss.Config.vote_proof_cost cfg) in
  let snapshot =
    if attack then [ (target_block, corrupt_version) ]
    else Lockss.Replica.snapshot st.Lockss.Peer.replica
  in
  let vote =
    {
      Lockss.Vote.voter = peer.Lockss.Peer.identity;
      nonce = session.sv_nonce;
      proof;
      snapshot;
      nominations = fellow_nominations t ~minion;
      bogus = false;
    }
  in
  reply t ~minion ~to_identity:session.sv_poller ~au:session.sv_au
    (Lockss.Message.Vote_msg { poll_id = session.sv_poll_id; vote })

let on_voter_message t ~minion ~src (msg : Lockss.Message.t) =
  let cfg = cfg t in
  let identity = msg.Lockss.Message.identity and au = msg.Lockss.Message.au in
  let peer = (ctx t).Lockss.Peer.peers.(minion) in
  match msg.Lockss.Message.payload with
  | Lockss.Message.Poll { poll_id; intro = _ } ->
    (* Minions skip admission control and always accept: they want into
       every poll they can reach. *)
    let key = (identity, au, poll_id) in
    Hashtbl.replace t.invitations key (1 + invited_minions t ~poller:identity ~au ~poll_id);
    Hashtbl.replace t.sessions
      (minion, identity, au, poll_id)
      {
        sv_poller = identity;
        sv_poller_node = src;
        sv_au = au;
        sv_poll_id = poll_id;
        sv_nonce = 0L;
        sv_attack = false;
      };
    reply t ~minion ~to_identity:identity ~au
      (Lockss.Message.Poll_ack { poll_id; accepted = true })
  | Lockss.Message.Poll_proof { poll_id; remaining = _; nonce } ->
    (match Hashtbl.find_opt t.sessions (minion, identity, au, poll_id) with
    | None -> ()
    | Some session ->
      session.sv_nonce <- nonce;
      (* Wait out most of the allowance before committing the vote, so as
         many co-minion invitations as possible are known. *)
      let delay = 0.8 *. cfg.Lockss.Config.vote_allowance in
      ignore
        (Engine.schedule_in (ctx t).Lockss.Peer.engine ~after:delay
           (send_vote t ~minion session)))
  | Lockss.Message.Repair_request { poll_id; block } ->
    (match Hashtbl.find_opt t.sessions (minion, identity, au, poll_id) with
    | None -> ()
    | Some session ->
      charge t ~who:peer.Lockss.Peer.identity ~phase:Lockss.Trace.Repair
        ~poller:identity ~au ~poll_id
        (Cost_model.hash_seconds cfg.Lockss.Config.cost ~bytes:cfg.Lockss.Config.block_bytes);
      let version =
        if session.sv_attack && block = target_block then begin
          t.corrupt_repairs <- t.corrupt_repairs + 1;
          corrupt_version
        end
        else Lockss.Replica.version (Lockss.Peer.au_state peer au).Lockss.Peer.replica block
      in
      reply t ~minion ~to_identity:identity ~au
        (Lockss.Message.Repair { poll_id; block; version }))
  | Lockss.Message.Evaluation_receipt { poll_id; receipt = _ } ->
    Hashtbl.remove t.sessions (minion, identity, au, poll_id)
  | Lockss.Message.Poll_ack _ | Lockss.Message.Vote_msg _ | Lockss.Message.Repair _
  | Lockss.Message.Garbage _ ->
    assert false

let minion_handler t minion ~src (msg : Lockss.Message.t) =
  match msg.Lockss.Message.payload with
  | Lockss.Message.Poll _ | Lockss.Message.Poll_proof _ | Lockss.Message.Repair_request _
  | Lockss.Message.Evaluation_receipt _ ->
    on_voter_message t ~minion ~src msg
  | Lockss.Message.Poll_ack _ | Lockss.Message.Vote_msg _ | Lockss.Message.Repair _ ->
    (* The compromised peer keeps its honest poller role: it calls polls,
       repairs its replica and earns reputation like anyone else. *)
    Lockss.Population.default_handler t.population minion ~src msg
  | Lockss.Message.Garbage _ -> ()

let attach population ~fraction ~strategy =
  if fraction <= 0. || fraction >= 1. then
    invalid_arg "Subversion.attach: fraction must be in (0,1)";
  let loyal = Lockss.Population.loyal_nodes population in
  let count =
    max 1 (int_of_float (Float.round (fraction *. float_of_int (List.length loyal))))
  in
  let rng = Lockss.Population.split_rng population in
  let minions = Array.of_list (Rng.sample rng count loyal) in
  let t =
    {
      population;
      rng;
      strategy;
      minions;
      is_minion = Hashtbl.create 16;
      invitations = Hashtbl.create 256;
      sessions = Hashtbl.create 256;
      corrupt_votes = 0;
      corrupt_repairs = 0;
    }
  in
  let ctx' = Lockss.Population.ctx population in
  Array.iter
    (fun node ->
      Hashtbl.replace t.is_minion node ();
      Narses.Net.register ctx'.Lockss.Peer.net node (minion_handler t node))
    minions;
  t

let corrupted_replicas t =
  let ctx' = ctx t in
  Array.fold_left
    (fun acc (peer : Lockss.Peer.t) ->
      if Hashtbl.mem t.is_minion peer.Lockss.Peer.identity then acc
      else
        Array.fold_left
          (fun acc (st : Lockss.Peer.au_state) ->
            if Lockss.Replica.version st.Lockss.Peer.replica target_block = corrupt_version
            then acc + 1
            else acc)
          acc peer.Lockss.Peer.aus)
    0 ctx'.Lockss.Peer.peers

let minion_count t = Array.length t.minions
let corrupt_votes t = t.corrupt_votes
let corrupt_repairs t = t.corrupt_repairs
let minion_nodes t = Array.to_list t.minions
