module Engine = Narses.Engine
module Rng = Repro_prelude.Rng
module Duration = Repro_prelude.Duration
module Proof = Effort.Proof
module Cost_model = Effort.Cost_model

(* Defecting polls use ids in their own range so a minion's handler can
   tell replies to them apart from replies to the peer's own honest
   polls, which are delegated to the normal protocol logic. *)
let defect_poll_id_base = 1_000_000

type voter_session = {
  rv_poller : Lockss.Ids.Identity.t;
  rv_au : Lockss.Ids.Au_id.t;
  rv_poll_id : int;
  mutable rv_nonce : int64;
}

type defect_session = { df_victim : Narses.Topology.node; df_au : Lockss.Ids.Au_id.t }

type t = {
  population : Lockss.Population.t;
  rng : Rng.t;
  minions : Narses.Topology.node array;
  is_minion : (Lockss.Ids.Identity.t, unit) Hashtbl.t;
  period : float;
  voter_sessions :
    (Narses.Topology.node * Lockss.Ids.Identity.t * Lockss.Ids.Au_id.t * int, voter_session)
    Hashtbl.t;
  defect_sessions : (int, defect_session) Hashtbl.t;  (* by poll_id *)
  (* at most one outstanding defect poll per (minion, victim, au) *)
  busy_lanes : (Narses.Topology.node * Narses.Topology.node * Lockss.Ids.Au_id.t, unit) Hashtbl.t;
  mutable next_poll_id : int;
  mutable defections : int;
  mutable honest_votes : int;
}

let ctx t = Lockss.Population.ctx t.population
let cfg t = (ctx t).Lockss.Peer.cfg
(* All adversary work is booked through [Peer.charge_adversary] so the
   trace-derived effort ledger attributes it to the spending minion and
   the poll it concerns. *)
let charge t ~who ~phase ?poller ?au ?poll_id work =
  Lockss.Peer.charge_adversary (ctx t) ~who ~phase ?poller ?au ?poll_id work

let minion_identity t minion = (ctx t).Lockss.Peer.peers.(minion).Lockss.Peer.identity

let send t ~minion ~to_identity ~au payload =
  let sender = (ctx t).Lockss.Peer.peers.(minion).Lockss.Peer.identity in
  let msg = { Lockss.Message.identity = sender; au; payload } in
  let dst = Lockss.Peer.node_of_identity (ctx t) to_identity in
  Narses.Net.send (ctx t).Lockss.Peer.net ~src:minion ~dst
    ~bytes:(Lockss.Message.wire_bytes (cfg t) msg)
    msg

(* -- Honest voter role: build and keep the grade ----------------------- *)

let send_honest_vote t ~minion (session : voter_session) () =
  let cfg = cfg t in
  let peer = (ctx t).Lockss.Peer.peers.(minion) in
  let st = Lockss.Peer.au_state peer session.rv_au in
  charge t ~who:peer.Lockss.Peer.identity ~phase:Lockss.Trace.Voting
    ~poller:session.rv_poller ~au:session.rv_au ~poll_id:session.rv_poll_id
    (Lockss.Config.vote_work cfg);
  t.honest_votes <- t.honest_votes + 1;
  let proof = Proof.generate ~rng:t.rng ~cost:(Lockss.Config.vote_proof_cost cfg) in
  (* Nominations push fellow minions into the victim's discovery. *)
  let fellows =
    Array.to_list t.minions
    |> List.filter (fun node -> node <> minion)
    |> Rng.sample t.rng cfg.Lockss.Config.nominations_per_vote
  in
  let vote =
    {
      Lockss.Vote.voter = peer.Lockss.Peer.identity;
      nonce = session.rv_nonce;
      proof;
      snapshot = Lockss.Replica.snapshot st.Lockss.Peer.replica;
      nominations = fellows;
      bogus = false;
    }
  in
  send t ~minion ~to_identity:session.rv_poller ~au:session.rv_au
    (Lockss.Message.Vote_msg { poll_id = session.rv_poll_id; vote })

let on_voter_message t ~minion (msg : Lockss.Message.t) =
  let cfg = cfg t in
  let identity = msg.Lockss.Message.identity and au = msg.Lockss.Message.au in
  let peer = (ctx t).Lockss.Peer.peers.(minion) in
  match msg.Lockss.Message.payload with
  | Lockss.Message.Poll { poll_id; intro = _ } ->
    Hashtbl.replace t.voter_sessions
      (minion, identity, au, poll_id)
      { rv_poller = identity; rv_au = au; rv_poll_id = poll_id; rv_nonce = 0L };
    send t ~minion ~to_identity:identity ~au
      (Lockss.Message.Poll_ack { poll_id; accepted = true })
  | Lockss.Message.Poll_proof { poll_id; remaining = _; nonce } ->
    (match Hashtbl.find_opt t.voter_sessions (minion, identity, au, poll_id) with
    | None -> ()
    | Some session ->
      session.rv_nonce <- nonce;
      ignore
        (Engine.schedule_in (ctx t).Lockss.Peer.engine
           ~after:(Lockss.Config.vote_work cfg /. cfg.Lockss.Config.capacity)
           (send_honest_vote t ~minion session)))
  | Lockss.Message.Repair_request { poll_id; block } ->
    if Hashtbl.mem t.voter_sessions (minion, identity, au, poll_id) then begin
      charge t ~who:peer.Lockss.Peer.identity ~phase:Lockss.Trace.Repair
        ~poller:identity ~au ~poll_id
        (Cost_model.hash_seconds cfg.Lockss.Config.cost ~bytes:cfg.Lockss.Config.block_bytes);
      let version =
        Lockss.Replica.version (Lockss.Peer.au_state peer au).Lockss.Peer.replica block
      in
      send t ~minion ~to_identity:identity ~au (Lockss.Message.Repair { poll_id; block; version })
    end
  | Lockss.Message.Evaluation_receipt { poll_id; receipt = _ } ->
    Hashtbl.remove t.voter_sessions (minion, identity, au, poll_id)
  | Lockss.Message.Poll_ack _ | Lockss.Message.Vote_msg _ | Lockss.Message.Repair _
  | Lockss.Message.Garbage _ ->
    ()

(* -- Defecting poller role --------------------------------------------- *)

(* The insider oracle: does the victim currently grade this minion even or
   credit on the AU, with a free known-peer admission slot and room in its
   schedule? *)
let oracle_would_admit t ~minion ~victim ~au =
  let ctx = ctx t in
  let cfg = cfg t in
  let victim_peer = ctx.Lockss.Peer.peers.(victim) in
  let st = Lockss.Peer.au_state victim_peer au in
  let now = Engine.now ctx.Lockss.Peer.engine in
  let minion_identity = ctx.Lockss.Peer.peers.(minion).Lockss.Peer.identity in
  (match Lockss.Known_peers.grade st.Lockss.Peer.known ~now minion_identity with
  | Some (Lockss.Grade.Even | Lockss.Grade.Credit) -> true
  | Some Lockss.Grade.Debt | None -> false)
  && Effort.Task_schedule.can_accept victim_peer.Lockss.Peer.schedule ~now
       ~work:(Lockss.Config.vote_work cfg)
       ~deadline:(now +. cfg.Lockss.Config.vote_allowance)

let rec lane t ~minion ~victim ~au () =
  let engine = Lockss.Population.engine t.population in
  let lane_key = (minion, victim, au) in
  if (not (Hashtbl.mem t.busy_lanes lane_key)) && oracle_would_admit t ~minion ~victim ~au
  then begin
    let cfg = cfg t in
    let poll_id = t.next_poll_id in
    t.next_poll_id <- poll_id + 1;
    Hashtbl.replace t.busy_lanes lane_key ();
    Hashtbl.replace t.defect_sessions poll_id { df_victim = victim; df_au = au };
    (* Release the lane if the exchange stalls for any reason. *)
    ignore
      (Engine.schedule_in engine ~after:(Duration.of_days 10.) (fun () ->
           Hashtbl.remove t.busy_lanes lane_key));
    let intro_cost = Lockss.Config.intro_effort cfg in
    let sender = minion_identity t minion in
    charge t ~who:sender ~phase:Lockss.Trace.Solicitation ~poller:sender ~au ~poll_id
      (intro_cost +. cfg.Lockss.Config.cost.Effort.Cost_model.session_setup_seconds);
    let intro = Proof.generate ~rng:t.rng ~cost:intro_cost in
    let victim_identity = (ctx t).Lockss.Peer.peers.(victim).Lockss.Peer.identity in
    send t ~minion ~to_identity:victim_identity ~au (Lockss.Message.Poll { poll_id; intro })
  end;
  let delay = Rng.uniform t.rng ~lo:(0.5 *. t.period) ~hi:(1.5 *. t.period) in
  ignore (Engine.schedule_in engine ~after:delay (lane t ~minion ~victim ~au))

let on_defect_reply t ~minion (msg : Lockss.Message.t) =
  let au = msg.Lockss.Message.au in
  match msg.Lockss.Message.payload with
  | Lockss.Message.Poll_ack { poll_id; accepted } ->
    (match Hashtbl.find_opt t.defect_sessions poll_id with
    | None -> ()
    | Some session ->
      if not accepted then begin
        Hashtbl.remove t.defect_sessions poll_id;
        Hashtbl.remove t.busy_lanes (minion, session.df_victim, au)
      end
      else begin
        let cfg = cfg t in
        let remaining_cost = Lockss.Config.remaining_effort cfg in
        let sender = minion_identity t minion in
        charge t ~who:sender ~phase:Lockss.Trace.Solicitation ~poller:sender ~au
          ~poll_id remaining_cost;
        let remaining = Proof.generate ~rng:t.rng ~cost:remaining_cost in
        let victim_identity =
          (ctx t).Lockss.Peer.peers.(session.df_victim).Lockss.Peer.identity
        in
        send t ~minion ~to_identity:victim_identity ~au
          (Lockss.Message.Poll_proof { poll_id; remaining; nonce = Rng.bits64 t.rng })
      end)
  | Lockss.Message.Vote_msg { poll_id; vote = _ } ->
    (match Hashtbl.find_opt t.defect_sessions poll_id with
    | None -> ()
    | Some session ->
      (* The point of the attack: the victim's whole vote, discarded
         unevaluated, no receipt — burning the grade that admitted us. *)
      t.defections <- t.defections + 1;
      Hashtbl.remove t.defect_sessions poll_id;
      Hashtbl.remove t.busy_lanes (minion, session.df_victim, au))
  | Lockss.Message.Poll _ | Lockss.Message.Poll_proof _ | Lockss.Message.Repair_request _
  | Lockss.Message.Repair _ | Lockss.Message.Evaluation_receipt _
  | Lockss.Message.Garbage _ ->
    ()

let minion_handler t minion ~src (msg : Lockss.Message.t) =
  match msg.Lockss.Message.payload with
  | Lockss.Message.Poll _ | Lockss.Message.Poll_proof _ | Lockss.Message.Repair_request _
  | Lockss.Message.Evaluation_receipt _ ->
    on_voter_message t ~minion msg
  | Lockss.Message.Poll_ack { poll_id; _ } | Lockss.Message.Vote_msg { poll_id; _ }
    when poll_id >= defect_poll_id_base ->
    on_defect_reply t ~minion msg
  | Lockss.Message.Poll_ack _ | Lockss.Message.Vote_msg _ | Lockss.Message.Repair _ ->
    (* Replies to the peer's own honest polls. *)
    Lockss.Population.default_handler t.population minion ~src msg
  | Lockss.Message.Garbage _ -> ()

let attach population ~fraction ~attempts_per_victim_au_per_day =
  if fraction <= 0. || fraction >= 1. then
    invalid_arg "Reciprocity.attach: fraction must be in (0,1)";
  if attempts_per_victim_au_per_day <= 0. then
    invalid_arg "Reciprocity.attach: rate must be positive";
  let loyal = Lockss.Population.loyal_nodes population in
  let rng = Lockss.Population.split_rng population in
  let count =
    max 1 (int_of_float (Float.round (fraction *. float_of_int (List.length loyal))))
  in
  let minions = Array.of_list (Rng.sample rng count loyal) in
  let t =
    {
      population;
      rng;
      minions;
      is_minion = Hashtbl.create 16;
      period = Duration.day /. attempts_per_victim_au_per_day;
      voter_sessions = Hashtbl.create 256;
      defect_sessions = Hashtbl.create 256;
      busy_lanes = Hashtbl.create 256;
      next_poll_id = defect_poll_id_base;
      defections = 0;
      honest_votes = 0;
    }
  in
  let ctx' = Lockss.Population.ctx population in
  Array.iter
    (fun node ->
      Hashtbl.replace t.is_minion node ();
      Narses.Net.register ctx'.Lockss.Peer.net node (minion_handler t node))
    minions;
  let engine = Lockss.Population.engine population in
  let aus = (cfg t).Lockss.Config.aus in
  let victims = List.filter (fun node -> not (Hashtbl.mem t.is_minion node)) loyal in
  Array.iter
    (fun minion ->
      List.iter
        (fun victim ->
          for au = 0 to aus - 1 do
            let start = Rng.uniform t.rng ~lo:0. ~hi:t.period in
            ignore (Engine.schedule_in engine ~after:start (lane t ~minion ~victim ~au))
          done)
        victims)
    minions;
  t

let minion_count t = Array.length t.minions
let defections t = t.defections
let honest_votes t = t.honest_votes
