(** Offline (and live) trace analysis: poll spans, per-peer effort
    ledger, per-phase latency distributions and anomaly detection, from
    a stream of trace events in JSON form.

    Feed events one of three ways:
    - {!feed} with already-parsed JSON values — this is how the live
      builders attach: bridge the trace bus through the trace
      serialiser into [feed];
    - {!feed_line} with raw JSONL lines (malformed lines become
      anomalies, never exceptions);
    - {!read_file}/{!read_channel} for whole trace files.

    The report distinguishes {e anomalies} (shapes a healthy fault-free
    run never produces — the fault-free smoke asserts there are none)
    from {e informational} observations (open spans at end of trace,
    voter-side events crossing a conclusion in flight). *)

type t

val create : unit -> t
val span_builder : t -> Span.t
val ledger : t -> Ledger.t

(** [feed t json] routes one trace event to the span builder and the
    ledger. *)
val feed : t -> Json.t -> unit

(** [feed_view t v] is {!feed} on a pre-projected event — the zero-JSON
    path the live bridges use. *)
val feed_view : t -> View.t -> unit

(** [feed_line t ~line s] parses one JSONL line and feeds it; parse
    failures are recorded as {!Span.Malformed_line} anomalies. Blank
    lines are ignored. *)
val feed_line : t -> line:int -> string -> unit

val read_channel : t -> in_channel -> unit

(** [read_file t path] reads a whole trace in either encoding,
    sniffing the {!Btrace.magic} prefix ({!Trace_file.detect}). Binary
    decode errors are recorded as malformed-line anomalies, like
    unparsable JSONL lines. *)
val read_file : t -> string -> unit

(** Lines (JSONL) or records (binary) seen by the offline readers (0
    when fed live). *)
val lines : t -> int

val anomalies : t -> Span.anomaly list
val anomaly_count : t -> int

(** {2 Latency distributions} *)

type dist = {
  label : string;
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  max : float;
}

(** [phase_latencies t] summarises, over all spans that reached the
    phase: solicitation (start to evaluation), evaluation (to first
    repair or conclusion), repair (to conclusion), first_vote (start to
    first vote) and total (start to conclusion). *)
val phase_latencies : t -> dist list

(** [duration_histogram t] buckets total poll durations into
    human-scale ranges ([<1h] … [>=30d]); returns [(label, count)]. *)
val duration_histogram : t -> (string * int) list

(** {2 Reports} *)

val report_json : t -> Json.t
val pp_report : Format.formatter -> t -> unit
