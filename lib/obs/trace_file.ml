type format = Jsonl | Binary

let format_to_string = function Jsonl -> "jsonl" | Binary -> "binary"

let format_of_path path =
  if Filename.check_suffix (String.lowercase_ascii path) ".ntrace" then Binary
  else Jsonl

let detect path =
  In_channel.with_open_bin path (fun ic ->
      let n = String.length Btrace.magic in
      match really_input_string ic n with
      | prefix when String.equal prefix Btrace.magic -> Binary
      | _ -> Jsonl
      | exception End_of_file -> Jsonl)

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s

let iter_jsonl path ~f =
  In_channel.with_open_text path (fun ic ->
      let rec loop line =
        match In_channel.input_line ic with
        | None -> ()
        | Some s ->
          if not (is_blank s) then f ~line (Json.of_string s);
          loop (line + 1)
      in
      loop 1)

let iter_binary path ~f =
  let last = ref 0 in
  match
    Btrace.iter_file path ~f:(fun ~index json ->
        last := index;
        f ~line:index (Ok json))
  with
  | Ok () -> ()
  | Error msg -> f ~line:(!last + 1) (Error msg)

let iter path ~f =
  let format = detect path in
  (match format with Jsonl -> iter_jsonl path ~f | Binary -> iter_binary path ~f);
  format
