module Counter = struct
  type t = { mutable count : int }

  let incr ?(by = 1) t =
    if by < 0 then invalid_arg "Registry.Counter.incr: negative increment";
    t.count <- t.count + by

  let value t = t.count
end

module Gauge = struct
  type t = { mutable gauge : float }

  let set t v = t.gauge <- v
  let add t v = t.gauge <- t.gauge +. v
  let value t = t.gauge
end

module Histogram = struct
  (* Ring buffer of the last [window] observations plus lifetime count:
     quantiles reflect recent behaviour, [count] the whole run. *)
  type t = {
    window : float array;
    mutable filled : int;
    mutable next : int;
    mutable total : int;
  }

  let make window = { window = Array.make window nan; filled = 0; next = 0; total = 0 }

  let observe t x =
    t.window.(t.next) <- x;
    t.next <- (t.next + 1) mod Array.length t.window;
    if t.filled < Array.length t.window then t.filled <- t.filled + 1;
    t.total <- t.total + 1

  let count t = t.total

  let retained t = Array.sub t.window 0 t.filled

  let quantile t q =
    if q < 0. || q > 1. then invalid_arg "Registry.Histogram.quantile: q out of range";
    if t.filled = 0 then nan
    else begin
      let sorted = retained t in
      Array.sort Float.compare sorted;
      let rank = q *. float_of_int (t.filled - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then sorted.(lo)
      else begin
        let frac = rank -. float_of_int lo in
        (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
      end
    end

  let fold f init t =
    let acc = ref init in
    for i = 0 to t.filled - 1 do
      acc := f !acc t.window.(i)
    done;
    !acc

  let mean t =
    if t.filled = 0 then nan else fold ( +. ) 0. t /. float_of_int t.filled

  let min t = if t.filled = 0 then nan else fold Float.min infinity t
  let max t = if t.filled = 0 then nan else fold Float.max neg_infinity t
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 32 }

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let lookup t name make match_kind =
  match Hashtbl.find_opt t.instruments name with
  | Some existing ->
    (match match_kind existing with
    | Some instrument -> instrument
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: %S already registered as a %s" name
           (kind_name existing)))
  | None ->
    let fresh = make () in
    Hashtbl.replace t.instruments name fresh;
    (match match_kind fresh with
    | Some instrument -> instrument
    | None -> assert false)

let counter t name =
  lookup t name
    (fun () -> I_counter { Counter.count = 0 })
    (function I_counter c -> Some c | _ -> None)

let gauge t name =
  lookup t name
    (fun () -> I_gauge { Gauge.gauge = 0. })
    (function I_gauge g -> Some g | _ -> None)

let histogram ?(window = 1024) t name =
  if window <= 0 then invalid_arg "Registry.histogram: window must be positive";
  lookup t name
    (fun () -> I_histogram (Histogram.make window))
    (function I_histogram h -> Some h | _ -> None)

let snapshot t =
  Hashtbl.fold
    (fun name instrument acc ->
      let value =
        match instrument with
        | I_counter c -> Json.Int (Counter.value c)
        | I_gauge g -> Json.Float (Gauge.value g)
        | I_histogram h ->
          Json.Assoc
            [
              ("count", Json.Int (Histogram.count h));
              ("mean", Json.Float (Histogram.mean h));
              ("min", Json.Float (Histogram.min h));
              ("max", Json.Float (Histogram.max h));
              ("p50", Json.Float (Histogram.quantile h 0.5));
              ("p90", Json.Float (Histogram.quantile h 0.9));
              ("p99", Json.Float (Histogram.quantile h 0.99));
            ]
      in
      (name, value) :: acc)
    t.instruments []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
