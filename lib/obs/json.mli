(** Minimal JSON values: enough to emit and re-read the observability
    layer's own output (trace JSONL, metric snapshots) without pulling an
    external dependency into the simulator.

    Emission always produces valid JSON. The parser accepts the common
    subset we emit — objects, arrays, strings with the standard escapes,
    numbers, booleans, null — which is sufficient for round-tripping and
    for validating trace files in the smoke target. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(** [to_string v] is the compact (single-line) JSON rendering of [v].
    Non-finite floats are rendered as [null] to keep the output valid. *)
val to_string : t -> string

(** [write buf v] renders [v] into [buf] — same output as {!to_string}
    without the intermediate string, for per-event hot paths. *)
val write : Buffer.t -> t -> unit

(** [float_literal f] is the numeric literal {!write} emits for
    [Float f] — the single source of truth for float rendering, exposed
    so hot paths can cache the string of a repeated value (consecutive
    trace events frequently share a timestamp). Non-finite floats render
    as ["null"]. *)
val float_literal : float -> string

(** [write_int buf n] appends the decimal digits of [n] without
    allocating an intermediate string — what {!write} uses for [Int]. *)
val write_int : Buffer.t -> int -> unit

val pp : Format.formatter -> t -> unit

(** [of_string s] parses one JSON value, requiring only trailing
    whitespace after it. Numbers without [.], [e] or [E] parse as
    [Int]. *)
val of_string : string -> (t, string) result

(** {2 Accessors} — all total; [None]/fallback on shape mismatch. *)

(** [member key v] is the value bound to [key] when [v] is an [Assoc]. *)
val member : string -> t -> t option

(** [to_float v] widens [Int] and [Float] to [float]. *)
val to_float : t -> float option

val to_int : t -> int option
val to_bool : t -> bool option
val string_value : t -> string option
