(** Compact length-prefixed binary trace format ([.ntrace]).

    A binary trace is the magic string {!magic} followed by records;
    each record is an unsigned LEB128 varint byte length followed by
    that many payload bytes. The payload is a compact encoding of the
    event's {!Json.t} value — {e not} a bespoke typed encoding — so
    decoding a binary trace yields exactly the JSON values that parsing
    the equivalent JSONL trace would, and every analyzer produces
    identical results on both encodings by construction.

    Value encoding, first byte is a tag:
    - [0] null, [1] false, [2] true
    - [3] non-negative int: varint
    - [4] negative int [n]: varint of [-(n+1)]
    - [5] float: 8 bytes, IEEE-754 little-endian
    - [6] inline string: varint length + bytes
    - [7] string definition: like inline, and also assigns the next
      intern id to the string
    - [8] string reference: varint intern id
    - [9] list: varint count + encoded items
    - [10] object: varint count + (string-encoded key, value) pairs

    The writer interns short strings (keys, kind names, phase/role
    labels, peer identifiers) the first time they appear, so steady-state
    records reference them by one- or two-byte ids. The intern table is
    an append-only sequence shared by all records of the file; readers
    rebuild it as they go, which is what makes truncation detectable:
    any record that ends mid-varint, mid-payload, or references an
    unknown intern id is an error, not a silent skip. *)

(** ["NTRC1\n"] *)
val magic : string

(** {2 Writing} *)

type writer

(** [writer sink] writes {!magic} immediately and returns a writer that
    frames every subsequent {!write} into [sink]. Closing [sink]
    finalises the file; the writer holds no state needing a footer. *)
val writer : Sink.t -> writer

(** [write w ?now json] appends one record. [?now] is forwarded to the
    sink for time-bounded flushing. *)
val write : writer -> ?now:float -> Json.t -> unit

(** Records written so far. *)
val count : writer -> int

(** {2 Direct record encoding}

    A hot encoder (e.g. the trace bus's binary sink) can assemble a
    record field by field instead of building a {!Json.t} first. The
    [put_*] functions append one encoded value each to the record opened
    by {!begin_record}; the caller is responsible for emitting a
    well-formed value (one root, header counts matching the values that
    follow) — {!end_record} frames whatever was assembled. Bytes are
    identical to {!write} of the equivalent [Json.t], including intern
    ids: both paths share one intern table per writer. *)

(** An interned-string handle. Register atoms once at
    module-initialisation time (keys, kind names, enum tokens); each
    writer resolves them through a flat array, skipping the per-field
    hashtable lookup of the generic path. *)
type atom

val atom : string -> atom

(** [begin_record w] starts assembling a record in the writer's scratch
    payload. Discards any unfinished previous record. *)
val begin_record : writer -> unit

(** [end_record w ?now ()] length-prefixes the assembled payload and
    hands it to the sink ([?now] forwarded for time-bounded flushing). *)
val end_record : writer -> ?now:float -> unit -> unit

val put_atom : writer -> atom -> unit
val put_null : writer -> unit
val put_bool : writer -> bool -> unit
val put_int : writer -> int -> unit
val put_float : writer -> float -> unit
val put_string : writer -> string -> unit

(** [put_list_header w n] opens a list of [n] values; the next [n]
    [put_*] calls are its elements. *)
val put_list_header : writer -> int -> unit

(** [put_assoc_header w n] opens an object of [n] fields; the next [n]
    (key, value) [put_*] pairs are its members. *)
val put_assoc_header : writer -> int -> unit

(** {2 Reading} *)

(** [iter_channel ic ~f] validates the magic, then decodes records in
    order, calling [f ~index json] with a 1-based record index. Stops
    at the first malformed record — [Error] describes the record index
    and failure — or returns [Ok ()] at a clean end of stream. *)
val iter_channel : in_channel -> f:(index:int -> Json.t -> unit) -> (unit, string) result

val iter_file : string -> f:(index:int -> Json.t -> unit) -> (unit, string) result
