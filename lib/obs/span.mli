(** Causal poll spans, reconstructed from trace events.

    A span is one poll's lifecycle, keyed by the [(poller, au, poll_id)]
    correlation triple every poll-scoped trace event carries: started,
    solicited, voted on, evaluated, repaired, concluded. The builder
    consumes trace events in JSON form (either live, by bridging the
    trace bus through the event serialiser, or offline from a trace
    JSONL file) and maintains open and closed spans plus an anomaly
    list.

    Anomalies are trace shapes a healthy, fault-free run never
    produces: malformed lines, events for polls whose start was never
    seen (orphans — brute-force attack traffic produces these by
    design, since adversary pollers never announce their polls), polls
    superseded before concluding, duplicate conclusions, and
    poller-side events after the poll concluded.

    Voter-side events arriving after a conclusion are {e not}
    anomalies: conclusion is an event at the poller, and votes or
    receipts legitimately cross it in flight. They are counted as
    informational "late" events instead. *)

type outcome = Success | Inquorate | Alarmed

val outcome_to_string : outcome -> string
val outcome_of_string : string -> outcome option

type span = {
  poller : int;
  au : int;
  poll_id : int;
  started_at : float;
  inner_candidates : int;
  mutable solicitations : int;
  mutable invitations_accepted : int;
  mutable invitations_refused : int;
  mutable invitations_dropped : int;
  mutable votes : int;
  mutable first_vote_at : float option;
  mutable evaluation_at : float option;
  mutable votes_at_evaluation : int;
  mutable repairs : int;
  mutable first_repair_at : float option;
  mutable concluded_at : float option;
  mutable outcome : outcome option;  (** [None] also for abandoned spans *)
  mutable effort_spent : float;  (** charges correlated with this poll, any peer *)
  mutable effort_received : float;  (** receipts correlated with this poll *)
  mutable late_events : int;  (** voter-side events after the conclusion *)
}

(** {2 Phase durations} — [None] when the span never reached the phase. *)

(** Poll start to evaluation start. *)
val solicitation_duration : span -> float option

(** Evaluation start to first repair, or to conclusion if none. *)
val evaluation_duration : span -> float option

(** First repair to conclusion. *)
val repair_duration : span -> float option

(** Poll start to conclusion. *)
val total_duration : span -> float option

type anomaly =
  | Malformed_line of { line : int; error : string }
  | Orphan_event of { kind : string; poller : int; au : int; poll_id : int; time : float }
  | Abandoned_poll of { poller : int; au : int; poll_id : int; started_at : float }
  | Duplicate_conclusion of { poller : int; au : int; poll_id : int; time : float }
  | Poller_event_after_conclusion of {
      kind : string;
      poller : int;
      au : int;
      poll_id : int;
      time : float;
    }

val pp_anomaly : Format.formatter -> anomaly -> unit
val anomaly_to_json : anomaly -> Json.t

type t

val create : unit -> t

(** [feed t json] consumes one trace event (timestamp read from its
    ["t"] field). Events without poll correlation are ignored. *)
val feed : t -> Json.t -> unit

(** [feed_view t v] is {!feed} without the JSON detour — the live
    analyzers build a {!View.t} straight from the typed event. [feed]
    is [of_json] composed with this, so both paths stay in lockstep. *)
val feed_view : t -> View.t -> unit

(** [note_malformed t ~line ~error] records a {!Malformed_line} anomaly
    — called by the offline reader for lines that fail to parse. *)
val note_malformed : t -> line:int -> error:string -> unit

(** Concluded (and abandoned) spans, in order of closing. *)
val closed_spans : t -> span list

(** Spans still open when the trace ended — informational, the natural
    state of polls in flight at shutdown. *)
val open_spans : t -> span list

(** All spans, sorted by start time. *)
val spans : t -> span list

(** Anomalies in discovery order. One {!Orphan_event} is recorded per
    orphan poll key; {!orphan_events} counts every orphaned event. *)
val anomalies : t -> anomaly list

val anomaly_count : t -> int
val orphan_events : t -> int
val late_events : t -> int
val event_count : t -> int
val span_to_json : span -> Json.t
