type direction = Higher_is_worse | Lower_is_worse | Neutral

type metric = {
  name : string;
  value : float;
  direction : direction;
  tolerance_pct : float;
}

type t = {
  experiment : string;
  config : (string * Json.t) list;
  provenance : (string * Json.t) list;
  metrics : metric list;
}

let schema_tag = "lockss-baseline/1"
let default_tolerance_pct = 0.01

let metric ?(direction = Neutral) ?(tolerance_pct = default_tolerance_pct) name value =
  { name; value; direction; tolerance_pct }

let make ~experiment ~config ?(provenance = []) metrics =
  { experiment; config; provenance; metrics }

(* -- JSON ---------------------------------------------------------------- *)

let direction_to_string = function
  | Higher_is_worse -> "higher_is_worse"
  | Lower_is_worse -> "lower_is_worse"
  | Neutral -> "neutral"

let direction_of_string = function
  | "higher_is_worse" -> Ok Higher_is_worse
  | "lower_is_worse" -> Ok Lower_is_worse
  | "neutral" -> Ok Neutral
  | other -> Error (Printf.sprintf "unknown direction %S" other)

(* The compact JSON writer renders non-finite floats as [null]; pinned
   values must survive the round trip, so non-finite values are stored
   as tagged strings instead. *)
let value_to_json v =
  if Float.is_nan v then Json.String "nan"
  else if v = infinity then Json.String "inf"
  else if v = neg_infinity then Json.String "-inf"
  else Json.Float v

let value_of_json = function
  | Json.String "nan" -> Ok nan
  | Json.String "inf" -> Ok infinity
  | Json.String "-inf" -> Ok neg_infinity
  | (Json.Int _ | Json.Float _) as j ->
    (match Json.to_float j with Some v -> Ok v | None -> Error "not a number")
  | _ -> Error "not a number or tagged non-finite string"

let metric_to_json m =
  Json.Assoc
    [
      ("name", Json.String m.name);
      ("value", value_to_json m.value);
      ("direction", Json.String (direction_to_string m.direction));
      ("tolerance_pct", Json.Float m.tolerance_pct);
    ]

let to_json t =
  Json.Assoc
    [
      ("schema", Json.String schema_tag);
      ("experiment", Json.String t.experiment);
      ("config", Json.Assoc t.config);
      ("provenance", Json.Assoc t.provenance);
      ("metrics", Json.List (List.map metric_to_json t.metrics));
    ]

let metric_of_json json =
  let str name = Option.bind (Json.member name json) Json.string_value in
  match (str "name", Json.member "value" json) with
  | None, _ -> Error "metric without a \"name\""
  | Some name, None -> Error (Printf.sprintf "metric %S without a \"value\"" name)
  | Some name, Some v ->
    (match value_of_json v with
    | Error msg -> Error (Printf.sprintf "metric %S: %s" name msg)
    | Ok value ->
      let tolerance_pct =
        match Option.bind (Json.member "tolerance_pct" json) Json.to_float with
        | Some t -> t
        | None -> default_tolerance_pct
      in
      (match direction_of_string (Option.value ~default:"neutral" (str "direction")) with
      | Error msg -> Error (Printf.sprintf "metric %S: %s" name msg)
      | Ok direction -> Ok { name; value; direction; tolerance_pct }))

let assoc_fields = function Some (Json.Assoc fields) -> fields | _ -> []

let of_json json =
  match Option.bind (Json.member "schema" json) Json.string_value with
  | None -> Error "not a baseline document: missing \"schema\" tag"
  | Some tag when tag <> schema_tag ->
    Error (Printf.sprintf "unsupported baseline schema %S (want %S)" tag schema_tag)
  | Some _ ->
    (match Option.bind (Json.member "experiment" json) Json.string_value with
    | None -> Error "baseline document without an \"experiment\" name"
    | Some experiment ->
      let config = assoc_fields (Json.member "config" json) in
      let provenance = assoc_fields (Json.member "provenance" json) in
      let metric_jsons =
        match Json.member "metrics" json with Some (Json.List l) -> l | _ -> []
      in
      let rec parse acc seen = function
        | [] -> Ok (List.rev acc)
        | j :: rest ->
          (match metric_of_json j with
          | Error msg -> Error msg
          | Ok m ->
            if List.mem m.name seen then
              Error (Printf.sprintf "duplicate metric name %S" m.name)
            else parse (m :: acc) (m.name :: seen) rest)
      in
      (match parse [] [] metric_jsons with
      | Error msg -> Error msg
      | Ok metrics -> Ok { experiment; config; provenance; metrics }))

(* -- Comparison ---------------------------------------------------------- *)

type verdict = Within | Drift_worse | Drift_better | Drift

type delta = {
  name : string;
  pinned : float;
  current : float;
  delta : float;
  change_pct : float;
  tolerance_pct : float;
  metric_direction : direction;
  verdict : verdict;
}

type report = {
  experiment : string;
  deltas : delta list;
  missing : string list;
  added : string list;
  config_mismatch : (string * Json.t option * Json.t option) list;
}

(* Two-sided drift: exact equality (NaN included — Float.equal treats
   NaN as equal to itself) always passes; otherwise both values must be
   finite and within the relative tolerance of the pinned magnitude. A
   pinned 0 therefore accepts only an exact 0. *)
let within ~tolerance_pct ~pinned ~current =
  Float.equal pinned current
  || Float.is_finite pinned
     && Float.is_finite current
     && Float.abs (current -. pinned) <= Float.abs pinned *. (tolerance_pct /. 100.)

let drift_verdict direction ~pinned ~current =
  if Float.is_nan pinned || Float.is_nan current then Drift
  else
    match direction with
    | Neutral -> Drift
    | Higher_is_worse -> if current > pinned then Drift_worse else Drift_better
    | Lower_is_worse -> if current < pinned then Drift_worse else Drift_better

let compare ~baseline ~current =
  let current_tbl = Hashtbl.create 64 in
  List.iter
    (fun (m : metric) -> Hashtbl.replace current_tbl m.name m.value)
    current.metrics;
  let deltas, missing =
    List.fold_left
      (fun (deltas, missing) (m : metric) ->
        match Hashtbl.find_opt current_tbl m.name with
        | None -> (deltas, m.name :: missing)
        | Some now ->
          let verdict =
            if within ~tolerance_pct:m.tolerance_pct ~pinned:m.value ~current:now then
              Within
            else drift_verdict m.direction ~pinned:m.value ~current:now
          in
          let change_pct =
            if Float.is_finite m.value && m.value <> 0. && Float.is_finite now then
              (now -. m.value) /. Float.abs m.value *. 100.
            else nan
          in
          ( {
              name = m.name;
              pinned = m.value;
              current = now;
              delta = now -. m.value;
              change_pct;
              tolerance_pct = m.tolerance_pct;
              metric_direction = m.direction;
              verdict;
            }
            :: deltas,
            missing ))
      ([], []) baseline.metrics
  in
  let pinned_names = Hashtbl.create 64 in
  List.iter
    (fun (m : metric) -> Hashtbl.replace pinned_names m.name ())
    baseline.metrics;
  let added =
    List.filter_map
      (fun (m : metric) -> if Hashtbl.mem pinned_names m.name then None else Some m.name)
      current.metrics
  in
  let keys fields = List.map fst fields in
  let all_keys =
    keys baseline.config
    @ List.filter (fun k -> not (List.mem_assoc k baseline.config)) (keys current.config)
  in
  (* Numeric-aware equality: the writer prints 1.0 as "1", which parses
     back as Int, so Int/Float pairs with equal values must not flag. *)
  let rec json_equal a b =
    match (a, b) with
    | Json.Int i, Json.Float f | Json.Float f, Json.Int i ->
      Float.equal (float_of_int i) f
    | Json.Float f, Json.Float g -> Float.equal f g
    | Json.List xs, Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
    | Json.Assoc xs, Json.Assoc ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k, v) (k', v') -> String.equal k k' && json_equal v v')
           xs ys
    | _ -> a = b
  in
  let config_mismatch =
    List.filter_map
      (fun key ->
        match (List.assoc_opt key baseline.config, List.assoc_opt key current.config) with
        | Some b, Some c when json_equal b c -> None
        | None, None -> None
        | b, c -> Some (key, b, c))
      all_keys
  in
  {
    experiment = baseline.experiment;
    deltas = List.rev deltas;
    missing = List.rev missing;
    added;
    config_mismatch;
  }

let drifted report = List.filter (fun d -> d.verdict <> Within) report.deltas

let ok report =
  drifted report = []
  && report.missing = []
  && report.added = []
  && report.config_mismatch = []

(* -- Report rendering ---------------------------------------------------- *)

let verdict_to_string = function
  | Within -> "ok"
  | Drift_worse -> "DRIFT (worse)"
  | Drift_better -> "DRIFT (better)"
  | Drift -> "DRIFT"

let delta_to_json d =
  Json.Assoc
    [
      ("name", Json.String d.name);
      ("pinned", value_to_json d.pinned);
      ("current", value_to_json d.current);
      ("delta", value_to_json d.delta);
      ("change_pct", value_to_json d.change_pct);
      ("tolerance_pct", Json.Float d.tolerance_pct);
      ("direction", Json.String (direction_to_string d.metric_direction));
      ("verdict", Json.String (verdict_to_string d.verdict));
    ]

let report_json report =
  Json.Assoc
    [
      ("experiment", Json.String report.experiment);
      ("ok", Json.Bool (ok report));
      ("drifted", Json.List (List.map delta_to_json (drifted report)));
      ("missing", Json.List (List.map (fun n -> Json.String n) report.missing));
      ("added", Json.List (List.map (fun n -> Json.String n) report.added));
      ( "config_mismatch",
        Json.List
          (List.map
             (fun (key, pinned, current) ->
               let side = function None -> Json.Null | Some j -> j in
               Json.Assoc
                 [
                   ("key", Json.String key);
                   ("pinned", side pinned);
                   ("current", side current);
                 ])
             report.config_mismatch) );
      ("deltas", Json.List (List.map delta_to_json report.deltas));
    ]

let pp_float ppf v = Format.fprintf ppf "%10.6g" v

let pp_report ppf report =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "baseline %s: %d pinned metrics@," report.experiment
    (List.length report.deltas + List.length report.missing);
  List.iter
    (fun (key, pinned, current) ->
      let side = function None -> "(absent)" | Some j -> Json.to_string j in
      Format.fprintf ppf "  CONFIG MISMATCH %-20s pinned %s, current %s@," key
        (side pinned) (side current))
    report.config_mismatch;
  let drifted_list = drifted report in
  List.iter
    (fun d ->
      Format.fprintf ppf "  %-52s %a -> %a  delta %a (tol %g%%)  %s@," d.name pp_float
        d.pinned pp_float d.current pp_float d.delta d.tolerance_pct
        (verdict_to_string d.verdict))
    drifted_list;
  List.iter
    (fun name -> Format.fprintf ppf "  %-52s MISSING from the current run@," name)
    report.missing;
  List.iter
    (fun name -> Format.fprintf ppf "  %-52s NEW (not pinned)@," name)
    report.added;
  if ok report then
    Format.fprintf ppf "  all within tolerance@,verdict: OK@]"
  else
    Format.fprintf ppf
      "verdict: DRIFT (%d drifted, %d missing, %d new, %d config) — if intended, \
       re-pin with pin-baseline@]"
      (List.length drifted_list)
      (List.length report.missing)
      (List.length report.added)
      (List.length report.config_mismatch)

(* -- Files --------------------------------------------------------------- *)

let path ~dir experiment = Filename.concat dir (experiment ^ ".baseline.json")

(* One metric per line, stable key order: pins live in git and their
   diffs should read like the delta report. *)
let render (t : t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": %s,\n"
                           (Json.to_string (Json.String schema_tag)));
  Buffer.add_string buf (Printf.sprintf "  \"experiment\": %s,\n"
                           (Json.to_string (Json.String t.experiment)));
  Buffer.add_string buf (Printf.sprintf "  \"config\": %s,\n"
                           (Json.to_string (Json.Assoc t.config)));
  Buffer.add_string buf (Printf.sprintf "  \"provenance\": %s,\n"
                           (Json.to_string (Json.Assoc t.provenance)));
  Buffer.add_string buf "  \"metrics\": [\n";
  let n = List.length t.metrics in
  List.iteri
    (fun i m ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (Json.to_string (metric_to_json m));
      if i < n - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    t.metrics;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let save ~dir (t : t) =
  (try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error _ -> ());
  let target = path ~dir t.experiment in
  let tmp = target ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render t));
  Sys.rename tmp target

let load file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
    (match Json.of_string (String.trim contents) with
    | Error msg -> Error (Printf.sprintf "%s: invalid JSON: %s" file msg)
    | Ok json ->
      (match of_json json with
      | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
      | Ok t -> Ok t))
