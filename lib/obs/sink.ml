let default_buffer_bytes = 64 * 1024

type t = {
  buf : Buffer.t;
  limit : int;
  flush_interval : float option;
  mutable last_mark : float option;
      (* Simulated time of the last time-driven flush (or of the first
         write, before any flush has happened). *)
  oc : out_channel;
  owns_channel : bool;
  mutable is_closed : bool;
  mutable flushed_bytes : int;
}

let of_channel ?(buffer_bytes = default_buffer_bytes) ?flush_interval
    ?(close_channel = false) oc =
  if buffer_bytes < 1 then invalid_arg "Sink.of_channel: buffer_bytes < 1";
  (match flush_interval with
  | Some i when not (i > 0.) -> invalid_arg "Sink.of_channel: flush_interval <= 0"
  | _ -> ());
  {
    buf = Buffer.create (min buffer_bytes 4096);
    limit = buffer_bytes;
    flush_interval;
    last_mark = None;
    oc;
    owns_channel = close_channel;
    is_closed = false;
    flushed_bytes = 0;
  }

let open_file ?buffer_bytes ?flush_interval ?(append = false) path =
  let oc =
    if append then
      open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path
    else open_out_bin path
  in
  of_channel ?buffer_bytes ?flush_interval ~close_channel:true oc

let drain t =
  let n = Buffer.length t.buf in
  if n > 0 then begin
    Buffer.output_buffer t.oc t.buf;
    Buffer.clear t.buf;
    t.flushed_bytes <- t.flushed_bytes + n
  end

let maybe_flush t now =
  if Buffer.length t.buf >= t.limit then drain t
  else
    match (t.flush_interval, now) with
    | Some interval, Some now -> (
      match t.last_mark with
      | None -> t.last_mark <- Some now
      | Some mark ->
        if now -. mark >= interval then begin
          drain t;
          t.last_mark <- Some now
        end)
    | _ -> ()

let check_open t = if t.is_closed then invalid_arg "Sink: write after close"

let write t ?now s =
  check_open t;
  Buffer.add_string t.buf s;
  maybe_flush t now

let write_line t ?now s =
  check_open t;
  Buffer.add_string t.buf s;
  Buffer.add_char t.buf '\n';
  maybe_flush t now

let write_char t ?now c =
  check_open t;
  Buffer.add_char t.buf c;
  maybe_flush t now

let write_buffer t ?now b =
  check_open t;
  Buffer.add_buffer t.buf b;
  maybe_flush t now

let pending t = Buffer.length t.buf
let written t = t.flushed_bytes

let flush t =
  check_open t;
  drain t;
  Stdlib.flush t.oc

let close t =
  if not t.is_closed then begin
    drain t;
    t.is_closed <- true;
    if t.owns_channel then close_out t.oc else Stdlib.flush t.oc
  end

let closed t = t.is_closed

let with_file ?buffer_bytes ?flush_interval ?append path f =
  let t = open_file ?buffer_bytes ?flush_interval ?append path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
