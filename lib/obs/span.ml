module Duration = Repro_prelude.Duration

type outcome = Success | Inquorate | Alarmed

let outcome_to_string = function
  | Success -> "success"
  | Inquorate -> "inquorate"
  | Alarmed -> "alarmed"

let outcome_of_string = function
  | "success" -> Some Success
  | "inquorate" -> Some Inquorate
  | "alarmed" -> Some Alarmed
  | _ -> None

type span = {
  poller : int;
  au : int;
  poll_id : int;
  started_at : float;
  inner_candidates : int;
  mutable solicitations : int;
  mutable invitations_accepted : int;
  mutable invitations_refused : int;
  mutable invitations_dropped : int;
  mutable votes : int;
  mutable first_vote_at : float option;
  mutable evaluation_at : float option;
  mutable votes_at_evaluation : int;
  mutable repairs : int;
  mutable first_repair_at : float option;
  mutable concluded_at : float option;
  mutable outcome : outcome option;
  mutable effort_spent : float;
  mutable effort_received : float;
  mutable late_events : int;
}

let solicitation_duration span =
  Option.map (fun at -> at -. span.started_at) span.evaluation_at

let evaluation_duration span =
  match span.evaluation_at with
  | None -> None
  | Some start -> (
    match (span.first_repair_at, span.concluded_at) with
    | Some stop, _ | None, Some stop -> Some (stop -. start)
    | None, None -> None)

let repair_duration span =
  match (span.first_repair_at, span.concluded_at) with
  | Some start, Some stop -> Some (stop -. start)
  | _ -> None

let total_duration span = Option.map (fun at -> at -. span.started_at) span.concluded_at

type anomaly =
  | Malformed_line of { line : int; error : string }
  | Orphan_event of { kind : string; poller : int; au : int; poll_id : int; time : float }
  | Abandoned_poll of { poller : int; au : int; poll_id : int; started_at : float }
  | Duplicate_conclusion of { poller : int; au : int; poll_id : int; time : float }
  | Poller_event_after_conclusion of {
      kind : string;
      poller : int;
      au : int;
      poll_id : int;
      time : float;
    }

let pp_anomaly ppf = function
  | Malformed_line { line; error } ->
    Format.fprintf ppf "line %d: malformed trace line (%s)" line error
  | Orphan_event { kind; poller; au; poll_id; time } ->
    Format.fprintf ppf "[%a] %s for poll %d by %d on au %d, which never started"
      Duration.pp time kind poll_id poller au
  | Abandoned_poll { poller; au; poll_id; started_at } ->
    Format.fprintf ppf
      "poll %d by %d on au %d (started %a) superseded without a conclusion" poll_id
      poller au Duration.pp started_at
  | Duplicate_conclusion { poller; au; poll_id; time } ->
    Format.fprintf ppf "[%a] duplicate conclusion for poll %d by %d on au %d" Duration.pp
      time poll_id poller au
  | Poller_event_after_conclusion { kind; poller; au; poll_id; time } ->
    Format.fprintf ppf "[%a] %s by poller %d after poll %d on au %d concluded"
      Duration.pp time kind poller poll_id au

let anomaly_to_json = function
  | Malformed_line { line; error } ->
    Json.Assoc
      [
        ("anomaly", Json.String "malformed_line");
        ("line", Json.Int line);
        ("error", Json.String error);
      ]
  | Orphan_event { kind; poller; au; poll_id; time } ->
    Json.Assoc
      [
        ("anomaly", Json.String "orphan_event");
        ("kind", Json.String kind);
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("t", Json.Float time);
      ]
  | Abandoned_poll { poller; au; poll_id; started_at } ->
    Json.Assoc
      [
        ("anomaly", Json.String "abandoned_poll");
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("t", Json.Float started_at);
      ]
  | Duplicate_conclusion { poller; au; poll_id; time } ->
    Json.Assoc
      [
        ("anomaly", Json.String "duplicate_conclusion");
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("t", Json.Float time);
      ]
  | Poller_event_after_conclusion { kind; poller; au; poll_id; time } ->
    Json.Assoc
      [
        ("anomaly", Json.String "poller_event_after_conclusion");
        ("kind", Json.String kind);
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("t", Json.Float time);
      ]

type key = int * int * int

type t = {
  open_spans : (key, span) Hashtbl.t;
  (* The latest open poll per (poller, au): a second start on the same
     pair supersedes — and thereby abandons — the first. *)
  open_by_pair : (int * int, span) Hashtbl.t;
  closed : (key, span) Hashtbl.t;
  mutable closed_rev : span list;
  mutable anomalies_rev : anomaly list;
  orphans : (key, unit) Hashtbl.t;
  mutable orphan_events : int;
  mutable late : int;
  mutable events : int;
}

let create () =
  {
    open_spans = Hashtbl.create 256;
    open_by_pair = Hashtbl.create 256;
    closed = Hashtbl.create 1024;
    closed_rev = [];
    anomalies_rev = [];
    orphans = Hashtbl.create 64;
    orphan_events = 0;
    late = 0;
    events = 0;
  }

let add_anomaly t a = t.anomalies_rev <- a :: t.anomalies_rev

let note_malformed t ~line ~error = add_anomaly t (Malformed_line { line; error })

let close t span =
  Hashtbl.replace t.closed (span.poller, span.au, span.poll_id) span;
  t.closed_rev <- span :: t.closed_rev

let lookup t key =
  match Hashtbl.find_opt t.open_spans key with
  | Some s -> `Open s
  | None -> (
    match Hashtbl.find_opt t.closed key with Some s -> `Closed s | None -> `Unknown)

let note_orphan t ~kind ~time ((poller, au, poll_id) as key) =
  t.orphan_events <- t.orphan_events + 1;
  if not (Hashtbl.mem t.orphans key) then begin
    Hashtbl.replace t.orphans key ();
    add_anomaly t (Orphan_event { kind; poller; au; poll_id; time })
  end

(* The open span for [key], or [None] after accounting for the event
   against a closed one: a poller must fall silent after concluding
   (anomaly if not), while voter-side events legitimately cross the
   conclusion in flight (late, informational). Returning the span
   rather than taking an update callback keeps the per-event cost to
   the one [Some] cell — the callbacks captured [time] and allocated a
   closure per event. *)
let open_span t ~kind ~time ~emitter ((poller, au, poll_id) as key) =
  match Hashtbl.find t.open_spans key with
  | span -> Some span
  | exception Not_found -> (
    match Hashtbl.find t.closed key with
    | span ->
      if emitter = poller then
        add_anomaly t (Poller_event_after_conclusion { kind; poller; au; poll_id; time })
      else begin
        span.late_events <- span.late_events + 1;
        t.late <- t.late + 1
      end;
      None
    | exception Not_found ->
      note_orphan t ~kind ~time key;
      None)

let start_span t ~time ~poller ~au ~poll_id ~inner_candidates =
  (match Hashtbl.find_opt t.open_by_pair (poller, au) with
  | Some prev when prev.poll_id <> poll_id ->
    add_anomaly t
      (Abandoned_poll
         {
           poller = prev.poller;
           au = prev.au;
           poll_id = prev.poll_id;
           started_at = prev.started_at;
         });
    Hashtbl.remove t.open_spans (prev.poller, prev.au, prev.poll_id);
    close t prev
  | _ -> ());
  if not (Hashtbl.mem t.open_spans (poller, au, poll_id)) then begin
    let span =
      {
        poller;
        au;
        poll_id;
        started_at = time;
        inner_candidates;
        solicitations = 0;
        invitations_accepted = 0;
        invitations_refused = 0;
        invitations_dropped = 0;
        votes = 0;
        first_vote_at = None;
        evaluation_at = None;
        votes_at_evaluation = 0;
        repairs = 0;
        first_repair_at = None;
        concluded_at = None;
        outcome = None;
        effort_spent = 0.;
        effort_received = 0.;
        late_events = 0;
      }
    in
    Hashtbl.replace t.open_spans (poller, au, poll_id) span;
    Hashtbl.replace t.open_by_pair (poller, au) span
  end

let conclude t ~time ~poller ~au ~poll_id ~outcome =
  let key = (poller, au, poll_id) in
  match lookup t key with
  | `Open span ->
    span.concluded_at <- Some time;
    span.outcome <- outcome;
    Hashtbl.remove t.open_spans key;
    (match Hashtbl.find_opt t.open_by_pair (poller, au) with
    | Some s when s == span -> Hashtbl.remove t.open_by_pair (poller, au)
    | _ -> ());
    close t span
  | `Closed span -> (
    match span.concluded_at with
    | Some _ -> add_anomaly t (Duplicate_conclusion { poller; au; poll_id; time })
    | None ->
      (* A conclusion for a span we wrote off as abandoned: keep the
         Abandoned_poll anomaly (the supersession really happened) but
         complete the record. *)
      span.concluded_at <- Some time;
      span.outcome <- outcome)
  | `Unknown -> note_orphan t ~kind:"poll_concluded" ~time key

(* The (emitter, au, poll_id) correlation triple, shaped as the span
   key. Top level so the per-event call allocates only the result. *)
let triple (v : View.t) emitter =
  match (emitter, v.View.au, v.View.poll_id) with
  | Some p, Some a, Some id -> Some (p, a, id)
  | _ -> None

let feed_view t (v : View.t) =
  t.events <- t.events + 1;
  let kind = v.View.kind in
  let time = v.View.time in
  match kind with
  | "poll_started" -> (
    match triple v v.View.poller with
    | Some (poller, au, poll_id) ->
      let inner_candidates = Option.value ~default:0 v.View.inner_candidates in
      start_span t ~time ~poller ~au ~poll_id ~inner_candidates
    | None -> ())
  | "solicitation_sent" -> (
    match triple v v.View.poller with
    | Some ((poller, _, _) as key) -> (
      match open_span t ~kind ~time ~emitter:poller key with
      | Some span -> span.solicitations <- span.solicitations + 1
      | None -> ())
    | None -> ())
  | "invitation_dropped" -> (
    match (triple v v.View.claimed, v.View.voter) with
    | Some key, Some voter -> (
      match open_span t ~kind ~time ~emitter:voter key with
      | Some span -> span.invitations_dropped <- span.invitations_dropped + 1
      | None -> ())
    | _ -> ())
  | "invitation_refused" -> (
    match (triple v v.View.poller, v.View.voter) with
    | Some key, Some voter -> (
      match open_span t ~kind ~time ~emitter:voter key with
      | Some span -> span.invitations_refused <- span.invitations_refused + 1
      | None -> ())
    | _ -> ())
  | "invitation_accepted" -> (
    match (triple v v.View.poller, v.View.voter) with
    | Some key, Some voter -> (
      match open_span t ~kind ~time ~emitter:voter key with
      | Some span -> span.invitations_accepted <- span.invitations_accepted + 1
      | None -> ())
    | _ -> ())
  | "vote_sent" -> (
    match (triple v v.View.poller, v.View.voter) with
    | Some key, Some voter -> (
      match open_span t ~kind ~time ~emitter:voter key with
      | Some span ->
        span.votes <- span.votes + 1;
        if span.first_vote_at = None then span.first_vote_at <- Some time
      | None -> ())
    | _ -> ())
  | "evaluation_started" -> (
    match triple v v.View.poller with
    | Some ((poller, _, _) as key) -> (
      match open_span t ~kind ~time ~emitter:poller key with
      | Some span ->
        if span.evaluation_at = None then begin
          span.evaluation_at <- Some time;
          span.votes_at_evaluation <- Option.value ~default:0 v.View.votes
        end
      | None -> ())
    | None -> ())
  | "repair_applied" -> (
    match triple v v.View.poller with
    | Some ((poller, _, _) as key) -> (
      match open_span t ~kind ~time ~emitter:poller key with
      | Some span ->
        span.repairs <- span.repairs + 1;
        if span.first_repair_at = None then span.first_repair_at <- Some time
      | None -> ())
    | None -> ())
  | "poll_concluded" -> (
    match triple v v.View.poller with
    | Some (poller, au, poll_id) ->
      let outcome = Option.bind v.View.outcome outcome_of_string in
      conclude t ~time ~poller ~au ~poll_id ~outcome
    | None -> ())
  | "effort_charged" -> (
    match (triple v v.View.poller, v.View.peer, v.View.seconds) with
    | Some key, Some peer, Some seconds -> (
      match open_span t ~kind ~time ~emitter:peer key with
      | Some span -> span.effort_spent <- span.effort_spent +. seconds
      | None -> ())
    | _ -> ())
  | "effort_received" -> (
    (* The event names both endpoints but not which is the poller:
       resolve against the spans we know. Receipts the poller emits
       (vote proofs) key on [peer]; receipts a voter emits (intro and
       remaining proofs) key on [from]. *)
    match (v.View.peer, v.View.from_, v.View.au, v.View.poll_id, v.View.seconds) with
    | Some peer, Some from_, Some au, Some poll_id, Some seconds -> (
      let k_poller = (peer, au, poll_id) and k_voter = (from_, au, poll_id) in
      match (lookup t k_poller, lookup t k_voter) with
      | `Open span, _ | _, `Open span ->
        span.effort_received <- span.effort_received +. seconds
      | `Closed _, _ ->
        (* The receiver was the poller: it must not book receipts
           after its own conclusion. *)
        add_anomaly t
          (Poller_event_after_conclusion { kind; poller = peer; au; poll_id; time })
      | _, `Closed span ->
        span.late_events <- span.late_events + 1;
        t.late <- t.late + 1
      | `Unknown, `Unknown -> note_orphan t ~kind ~time k_voter)
    | _ -> ())
  | _ -> ()

let feed t json =
  match View.of_json json with None -> () | Some v -> feed_view t v

let closed_spans t = List.rev t.closed_rev

let open_spans t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.open_spans []
  |> List.sort (fun a b -> compare (a.started_at, a.poller, a.au) (b.started_at, b.poller, b.au))

let spans t =
  List.sort
    (fun a b -> compare (a.started_at, a.poller, a.au, a.poll_id) (b.started_at, b.poller, b.au, b.poll_id))
    (closed_spans t @ open_spans t)

let anomalies t = List.rev t.anomalies_rev
let anomaly_count t = List.length t.anomalies_rev
let orphan_events t = t.orphan_events
let late_events t = t.late
let event_count t = t.events

let span_to_json span =
  let opt_float name = function
    | None -> (name, Json.Null)
    | Some v -> (name, Json.Float v)
  in
  Json.Assoc
    [
      ("poller", Json.Int span.poller);
      ("au", Json.Int span.au);
      ("poll_id", Json.Int span.poll_id);
      ("started_at", Json.Float span.started_at);
      ("inner_candidates", Json.Int span.inner_candidates);
      ("solicitations", Json.Int span.solicitations);
      ("invitations_accepted", Json.Int span.invitations_accepted);
      ("invitations_refused", Json.Int span.invitations_refused);
      ("invitations_dropped", Json.Int span.invitations_dropped);
      ("votes", Json.Int span.votes);
      opt_float "first_vote_at" span.first_vote_at;
      opt_float "evaluation_at" span.evaluation_at;
      ("votes_at_evaluation", Json.Int span.votes_at_evaluation);
      ("repairs", Json.Int span.repairs);
      opt_float "first_repair_at" span.first_repair_at;
      opt_float "concluded_at" span.concluded_at;
      ( "outcome",
        match span.outcome with
        | None -> Json.Null
        | Some o -> Json.String (outcome_to_string o) );
      ("effort_spent", Json.Float span.effort_spent);
      ("effort_received", Json.Float span.effort_received);
      ("late_events", Json.Int span.late_events);
    ]
