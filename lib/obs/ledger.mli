(** Per-peer provable-effort ledger, reconstructed from trace events.

    The ledger consumes the JSON representation of trace events (one
    {!Json.t} object per event, as written by the trace JSONL sink) and
    accumulates, per peer, the provable effort it {e spent} and the
    effort other peers {e proved to it}, split by protocol phase. It
    also counts the poll/vote/invitation outcomes each peer was
    responsible for.

    Because every effort charge in the simulator is routed through the
    tracing helpers that also update the global metrics, summing the
    ledger over all peers reconstructs the [Metrics] aggregates exactly
    (up to float addition order); {!reconcile} checks that invariant.

    This module deliberately speaks only JSON: it lives below the
    protocol library so it can be reused offline on trace files without
    linking the simulator. *)

type phase = Admission | Solicitation | Voting | Evaluation | Repair

val all_phases : phase list
val phase_index : phase -> int
val phase_to_string : phase -> string
val phase_of_string : string -> phase option

type entry = {
  peer : int;
  spent_loyal : float array;  (** effort spent in loyal roles, by {!phase_index} *)
  spent_adversary : float array;  (** effort spent doing adversary work *)
  received : float array;  (** effort proved to this peer by others *)
  mutable polls_started : int;
  mutable polls_succeeded : int;
  mutable polls_inquorate : int;
  mutable polls_alarmed : int;
  mutable votes_sent : int;
  mutable invitations_admitted : int;
      (** invitations past the admission filter (considered) *)
  mutable invitations_accepted : int;
  mutable invitations_refused : int;
  mutable invitations_dropped : int;
  mutable repairs : int;
}

val spent_loyal_total : entry -> float
val spent_adversary_total : entry -> float
val received_total : entry -> float

type t

val create : unit -> t

(** [feed t json] consumes one trace event. Events that carry no ledger
    information (faults, crashes) and values of unexpected shape are
    ignored. *)
val feed : t -> Json.t -> unit

(** [feed_view t v] is {!feed} without the JSON detour — the live
    analyzers build a {!View.t} straight from the typed event. *)
val feed_view : t -> View.t -> unit

(** [entries t] is every peer seen so far, sorted by peer id. *)
val entries : t -> entry list

val find : t -> int -> entry option

type totals = {
  loyal_effort : float;
  adversary_effort : float;
  received_effort : float;
  total_polls_started : int;
  total_polls_succeeded : int;
  total_polls_inquorate : int;
  total_polls_alarmed : int;
  total_votes_sent : int;
  total_invitations_admitted : int;
  peer_count : int;
}

val totals : t -> totals

(** [cost_ratio t] is adversary effort over loyal effort — the ledger's
    reconstruction of the cost-ratio defense metric. [infinity] when no
    loyal effort was recorded. *)
val cost_ratio : t -> float

(** [effort_per_successful_poll t] is total loyal effort divided by
    successful polls — the ledger's reconstruction of the friction
    numerator. [infinity] when no poll succeeded. *)
val effort_per_successful_poll : t -> float

type reconciliation = {
  loyal_delta : float;  (** relative error vs the metrics aggregate *)
  adversary_delta : float;
  polls_succeeded_delta : int;
  polls_inquorate_delta : int;
  polls_alarmed_delta : int;
  votes_delta : int;
  invitations_delta : int;
      (** admitted invitations vs the metrics' considered count *)
  ok : bool;
}

(** [reconcile t ~loyal_effort ...] compares the ledger totals with the
    corresponding [Metrics] aggregates (passed as plain numbers so this
    module needs no simulator dependency). Float fields compare by
    relative error with tolerance [1e-6]; counters must match exactly. *)
val reconcile :
  t ->
  loyal_effort:float ->
  adversary_effort:float ->
  polls_succeeded:int ->
  polls_inquorate:int ->
  polls_alarmed:int ->
  votes_supplied:int ->
  invitations_considered:int ->
  reconciliation

val pp_reconciliation : Format.formatter -> reconciliation -> unit
val reconciliation_to_json : reconciliation -> Json.t

val entry_to_json : entry -> Json.t
val to_json : t -> Json.t

(** [pp] renders the per-peer table (efforts as humanised durations). *)
val pp : Format.formatter -> t -> unit
