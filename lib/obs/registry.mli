(** Named time-series instruments: counters, gauges and windowed
    histograms, collected under one registry so a sampler can snapshot
    every instrument at once.

    Instruments are cheap mutable cells; looking one up by name
    get-or-creates it, so call sites need no registration ceremony.
    Everything is single-threaded, like the simulator itself. *)

type t

val create : unit -> t

module Counter : sig
  type t

  (** [incr ?by t] adds [by] (default 1, must be [>= 0]). *)
  val incr : ?by:int -> t -> unit

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit

  (** [count t] is the number of observations ever made (not just those
      still inside the window). *)
  val count : t -> int

  (** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) over the
      retained window by linear interpolation; [nan] when empty. *)
  val quantile : t -> float -> float

  val mean : t -> float
  val min : t -> float
  val max : t -> float
end

(** [counter t name] gets or creates the counter called [name]. Asking
    for an existing name with a different instrument kind raises
    [Invalid_argument]. *)
val counter : t -> string -> Counter.t

val gauge : t -> string -> Gauge.t

(** [histogram ?window t name] gets or creates a histogram retaining the
    most recent [window] observations (default 1024). *)
val histogram : ?window:int -> t -> string -> Histogram.t

(** [snapshot t] renders every instrument to JSON, sorted by name:
    counters as [Int], gauges as [Float], histograms as an object with
    [count], [mean], [min], [max], [p50], [p90], [p99]. *)
val snapshot : t -> (string * Json.t) list
