type t = {
  kind : string;
  time : float;
  poller : int option;
  voter : int option;
  claimed : int option;
  peer : int option;
  from_ : int option;
  au : int option;
  poll_id : int option;
  inner_candidates : int option;
  votes : int option;
  seconds : float option;
  role : string option;
  phase : string option;
  outcome : string option;
}

(* All payload fields are optional arguments so a hot caller builds the
   record in one allocation — [make] followed by a [{ v with ... }]
   update would copy the whole record a second time per event. *)
let make ?poller ?voter ?claimed ?peer ?from_ ?au ?poll_id ?inner_candidates ?votes
    ?seconds ?role ?phase ?outcome ~kind ~time () =
  {
    kind;
    time;
    poller;
    voter;
    claimed;
    peer;
    from_;
    au;
    poll_id;
    inner_candidates;
    votes;
    seconds;
    role;
    phase;
    outcome;
  }

let str name json = Option.bind (Json.member name json) Json.string_value
let int_field name json = Option.bind (Json.member name json) Json.to_int
let float_field name json = Option.bind (Json.member name json) Json.to_float

let of_json json =
  match str "kind" json with
  | None -> None
  | Some kind ->
    Some
      {
        kind;
        time = Option.value ~default:0. (float_field "t" json);
        poller = int_field "poller" json;
        voter = int_field "voter" json;
        claimed = int_field "claimed" json;
        peer = int_field "peer" json;
        from_ = int_field "from" json;
        au = int_field "au" json;
        poll_id = int_field "poll_id" json;
        inner_candidates = int_field "inner_candidates" json;
        votes = int_field "votes" json;
        seconds = float_field "seconds" json;
        role = str "role" json;
        phase = str "phase" json;
        outcome = str "outcome" json;
      }
