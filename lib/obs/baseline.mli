(** Pinned golden result baselines: the experiment-observability layer.

    {!Bench_gate} watches the cost of running the simulator; this module
    watches its {e results}. A baseline is a per-experiment JSON document
    capturing the configuration fingerprint the sweep ran under and
    every result metric — the paper's headline measures (access-failure
    probability, delay ratio, coefficient of friction, cost ratio) plus
    each figure's series points — with a per-metric direction and drift
    tolerance. [pin-baseline] writes these documents into [baselines/];
    [diff-baseline] re-runs the sweep and compares.

    The comparison is {e two-sided}: the simulator is deterministic for
    pinned seeds, so any movement past tolerance — better or worse — is
    drift that must be explained and re-pinned deliberately. The
    direction does not gate; it labels each drifted metric as an
    improvement or a regression so the delta report is actionable. NaN
    is a legal pinned value (e.g. the empirical read-failure rate of a
    run with no reads) and compares equal only to NaN; infinities
    compare equal only to themselves. *)

(** Which movement is {e bad} for a metric — purely a reporting label.
    [Neutral] marks metrics with no bad direction (counts, horizons). *)
type direction = Higher_is_worse | Lower_is_worse | Neutral

type metric = {
  name : string;  (** stable dotted/bracketed key, unique per baseline *)
  value : float;
  direction : direction;
  tolerance_pct : float;
      (** relative drift allowance, percent of the pinned |value|; 0
          demands exact equality (a pinned 0 always does) *)
}

type t = {
  experiment : string;  (** target name: [fig2]..[fig8], [table1] *)
  config : (string * Json.t) list;
      (** scale fingerprint the sweep ran under; compared structurally,
          a mismatch fails the diff before any metric is compared *)
  provenance : (string * Json.t) list;
      (** how the pin was made (git describe, tool version, manifest);
          informational — never compared *)
  metrics : metric list;
}

(** [metric ?direction ?tolerance_pct name value] — direction defaults
    to [Neutral], tolerance to {!default_tolerance_pct}. *)
val metric : ?direction:direction -> ?tolerance_pct:float -> string -> float -> metric

(** 0.01% — far above float round-trip noise (the JSON writer is
    round-trip exact), far below any real result shift. *)
val default_tolerance_pct : float

val make :
  experiment:string ->
  config:(string * Json.t) list ->
  ?provenance:(string * Json.t) list ->
  metric list ->
  t

val to_json : t -> Json.t

(** Rejects documents whose schema tag is missing or unknown, and
    duplicate metric names. *)
val of_json : Json.t -> (t, string) result

(** {2 Comparison} *)

type verdict =
  | Within  (** inside tolerance (or exactly equal) *)
  | Drift_worse  (** past tolerance, moving in the metric's bad direction *)
  | Drift_better  (** past tolerance, moving in the good direction *)
  | Drift  (** past tolerance on a [Neutral] metric *)

type delta = {
  name : string;
  pinned : float;
  current : float;
  delta : float;  (** [current -. pinned]; [nan] when either is NaN *)
  change_pct : float;  (** [nan] when the pinned value is 0 or not finite *)
  tolerance_pct : float;
  metric_direction : direction;
  verdict : verdict;
}

type report = {
  experiment : string;
  deltas : delta list;  (** every pinned metric found in the current run *)
  missing : string list;  (** pinned, but the current run did not produce it *)
  added : string list;  (** produced now, but not pinned *)
  config_mismatch : (string * Json.t option * Json.t option) list;
      (** fingerprint fields that differ: (key, pinned, current) *)
}

(** [compare ~baseline ~current] matches metrics by name. [current] is
    typically a freshly captured (unpinned) baseline of the same
    experiment; its own tolerances and directions are ignored — the pin
    is authoritative. *)
val compare : baseline:t -> current:t -> report

val drifted : report -> delta list

(** No drifted metric, nothing missing or added, fingerprints agree. *)
val ok : report -> bool

val report_json : report -> Json.t

(** Actionable per-metric table: name, pinned value, current value,
    delta, tolerance and verdict, then missing/added/config failures,
    ending with a [verdict:] line. *)
val pp_report : Format.formatter -> report -> unit

(** {2 Files} *)

(** [path ~dir experiment] is [dir/experiment.baseline.json]. *)
val path : dir:string -> string -> string

(** [save ~dir t] pretty-prints the document (stable key order,
    one metric per line — git-diffable) and writes it atomically. *)
val save : dir:string -> t -> unit

(** [load path] reads and validates a pinned baseline. *)
val load : string -> (t, string) result
