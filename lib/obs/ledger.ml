module Duration = Repro_prelude.Duration

type phase = Admission | Solicitation | Voting | Evaluation | Repair

let all_phases = [ Admission; Solicitation; Voting; Evaluation; Repair ]
let phase_count = List.length all_phases

let phase_index = function
  | Admission -> 0
  | Solicitation -> 1
  | Voting -> 2
  | Evaluation -> 3
  | Repair -> 4

let phase_to_string = function
  | Admission -> "admission"
  | Solicitation -> "solicitation"
  | Voting -> "voting"
  | Evaluation -> "evaluation"
  | Repair -> "repair"

let phase_of_string = function
  | "admission" -> Some Admission
  | "solicitation" -> Some Solicitation
  | "voting" -> Some Voting
  | "evaluation" -> Some Evaluation
  | "repair" -> Some Repair
  | _ -> None

type entry = {
  peer : int;
  spent_loyal : float array;
  spent_adversary : float array;
  received : float array;
  mutable polls_started : int;
  mutable polls_succeeded : int;
  mutable polls_inquorate : int;
  mutable polls_alarmed : int;
  mutable votes_sent : int;
  mutable invitations_admitted : int;
  mutable invitations_accepted : int;
  mutable invitations_refused : int;
  mutable invitations_dropped : int;
  mutable repairs : int;
}

let sum = Array.fold_left ( +. ) 0.
let spent_loyal_total e = sum e.spent_loyal
let spent_adversary_total e = sum e.spent_adversary
let received_total e = sum e.received

type t = { peers : (int, entry) Hashtbl.t }

let create () = { peers = Hashtbl.create 64 }

let entry t peer =
  match Hashtbl.find t.peers peer with
  | e -> e
  | exception Not_found ->
    let e =
      {
        peer;
        spent_loyal = Array.make phase_count 0.;
        spent_adversary = Array.make phase_count 0.;
        received = Array.make phase_count 0.;
        polls_started = 0;
        polls_succeeded = 0;
        polls_inquorate = 0;
        polls_alarmed = 0;
        votes_sent = 0;
        invitations_admitted = 0;
        invitations_accepted = 0;
        invitations_refused = 0;
        invitations_dropped = 0;
        repairs = 0;
      }
    in
    Hashtbl.replace t.peers peer e;
    e

let feed_view t (v : View.t) =
  match v.View.kind with
  | "effort_charged" -> (
    match
      (v.View.peer, Option.bind v.View.phase phase_of_string, v.View.role, v.View.seconds)
    with
    | Some peer, Some phase, Some role, Some seconds ->
      let e = entry t peer in
      let bucket =
        if String.equal role "adversary" then e.spent_adversary else e.spent_loyal
      in
      let i = phase_index phase in
      bucket.(i) <- bucket.(i) +. seconds
    | _ -> ())
  | "effort_received" -> (
    match (v.View.peer, Option.bind v.View.phase phase_of_string, v.View.seconds) with
    | Some peer, Some phase, Some seconds ->
      let e = entry t peer in
      let i = phase_index phase in
      e.received.(i) <- e.received.(i) +. seconds
    | _ -> ())
  | "poll_started" -> (
    match v.View.poller with
    | Some poller -> let e = entry t poller in
      e.polls_started <- e.polls_started + 1
    | None -> ())
  | "poll_concluded" -> (
    match (v.View.poller, v.View.outcome) with
    | Some poller, Some outcome ->
      let e = entry t poller in
      (match outcome with
      | "success" -> e.polls_succeeded <- e.polls_succeeded + 1
      | "inquorate" -> e.polls_inquorate <- e.polls_inquorate + 1
      | "alarmed" -> e.polls_alarmed <- e.polls_alarmed + 1
      | _ -> ())
    | _ -> ())
  | "vote_sent" -> (
    match v.View.voter with
    | Some voter -> let e = entry t voter in
      e.votes_sent <- e.votes_sent + 1
    | None -> ())
  | "invitation_admitted" -> (
    match v.View.voter with
    | Some voter ->
      let e = entry t voter in
      e.invitations_admitted <- e.invitations_admitted + 1
    | None -> ())
  | "invitation_accepted" -> (
    match v.View.voter with
    | Some voter ->
      let e = entry t voter in
      e.invitations_accepted <- e.invitations_accepted + 1
    | None -> ())
  | "invitation_refused" -> (
    match v.View.voter with
    | Some voter ->
      let e = entry t voter in
      e.invitations_refused <- e.invitations_refused + 1
    | None -> ())
  | "invitation_dropped" -> (
    match v.View.voter with
    | Some voter ->
      let e = entry t voter in
      e.invitations_dropped <- e.invitations_dropped + 1
    | None -> ())
  | "repair_applied" -> (
    match v.View.poller with
    | Some poller -> let e = entry t poller in
      e.repairs <- e.repairs + 1
    | None -> ())
  | _ -> ()

let feed t json =
  match View.of_json json with None -> () | Some v -> feed_view t v

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.peers []
  |> List.sort (fun a b -> compare a.peer b.peer)

let find t peer = Hashtbl.find_opt t.peers peer

type totals = {
  loyal_effort : float;
  adversary_effort : float;
  received_effort : float;
  total_polls_started : int;
  total_polls_succeeded : int;
  total_polls_inquorate : int;
  total_polls_alarmed : int;
  total_votes_sent : int;
  total_invitations_admitted : int;
  peer_count : int;
}

let totals t =
  Hashtbl.fold
    (fun _ e acc ->
      {
        loyal_effort = acc.loyal_effort +. spent_loyal_total e;
        adversary_effort = acc.adversary_effort +. spent_adversary_total e;
        received_effort = acc.received_effort +. received_total e;
        total_polls_started = acc.total_polls_started + e.polls_started;
        total_polls_succeeded = acc.total_polls_succeeded + e.polls_succeeded;
        total_polls_inquorate = acc.total_polls_inquorate + e.polls_inquorate;
        total_polls_alarmed = acc.total_polls_alarmed + e.polls_alarmed;
        total_votes_sent = acc.total_votes_sent + e.votes_sent;
        total_invitations_admitted =
          acc.total_invitations_admitted + e.invitations_admitted;
        peer_count = acc.peer_count + 1;
      })
    t.peers
    {
      loyal_effort = 0.;
      adversary_effort = 0.;
      received_effort = 0.;
      total_polls_started = 0;
      total_polls_succeeded = 0;
      total_polls_inquorate = 0;
      total_polls_alarmed = 0;
      total_votes_sent = 0;
      total_invitations_admitted = 0;
      peer_count = 0;
    }

let safe_div a b = if b > 0. then a /. b else infinity

let cost_ratio t =
  let s = totals t in
  safe_div s.adversary_effort s.loyal_effort

let effort_per_successful_poll t =
  let s = totals t in
  safe_div s.loyal_effort (float_of_int s.total_polls_succeeded)

type reconciliation = {
  loyal_delta : float;
  adversary_delta : float;
  polls_succeeded_delta : int;
  polls_inquorate_delta : int;
  polls_alarmed_delta : int;
  votes_delta : int;
  invitations_delta : int;
  ok : bool;
}

let float_tolerance = 1e-6

let relative_delta a b =
  let scale = Float.max 1. (Float.abs b) in
  Float.abs (a -. b) /. scale

let reconcile t ~loyal_effort ~adversary_effort ~polls_succeeded ~polls_inquorate
    ~polls_alarmed ~votes_supplied ~invitations_considered =
  let s = totals t in
  let loyal_delta = relative_delta s.loyal_effort loyal_effort in
  let adversary_delta = relative_delta s.adversary_effort adversary_effort in
  let polls_succeeded_delta = s.total_polls_succeeded - polls_succeeded in
  let polls_inquorate_delta = s.total_polls_inquorate - polls_inquorate in
  let polls_alarmed_delta = s.total_polls_alarmed - polls_alarmed in
  let votes_delta = s.total_votes_sent - votes_supplied in
  let invitations_delta = s.total_invitations_admitted - invitations_considered in
  {
    loyal_delta;
    adversary_delta;
    polls_succeeded_delta;
    polls_inquorate_delta;
    polls_alarmed_delta;
    votes_delta;
    invitations_delta;
    ok =
      loyal_delta <= float_tolerance
      && adversary_delta <= float_tolerance
      && polls_succeeded_delta = 0 && polls_inquorate_delta = 0
      && polls_alarmed_delta = 0 && votes_delta = 0 && invitations_delta = 0;
  }

let pp_reconciliation ppf r =
  Format.fprintf ppf
    "ledger vs metrics: %s (loyal %.2e, adversary %.2e, polls %+d/%+d/%+d, votes %+d, \
     invitations %+d)"
    (if r.ok then "reconciled" else "MISMATCH")
    r.loyal_delta r.adversary_delta r.polls_succeeded_delta r.polls_inquorate_delta
    r.polls_alarmed_delta r.votes_delta r.invitations_delta

let reconciliation_to_json r =
  Json.Assoc
    [
      ("ok", Json.Bool r.ok);
      ("loyal_delta", Json.Float r.loyal_delta);
      ("adversary_delta", Json.Float r.adversary_delta);
      ("polls_succeeded_delta", Json.Int r.polls_succeeded_delta);
      ("polls_inquorate_delta", Json.Int r.polls_inquorate_delta);
      ("polls_alarmed_delta", Json.Int r.polls_alarmed_delta);
      ("votes_delta", Json.Int r.votes_delta);
      ("invitations_delta", Json.Int r.invitations_delta);
    ]

let phase_assoc values =
  List.map (fun p -> (phase_to_string p, Json.Float values.(phase_index p))) all_phases

let entry_to_json e =
  Json.Assoc
    [
      ("peer", Json.Int e.peer);
      ("spent_loyal", Json.Assoc (phase_assoc e.spent_loyal));
      ("spent_adversary", Json.Assoc (phase_assoc e.spent_adversary));
      ("received", Json.Assoc (phase_assoc e.received));
      ("spent_loyal_total", Json.Float (spent_loyal_total e));
      ("spent_adversary_total", Json.Float (spent_adversary_total e));
      ("received_total", Json.Float (received_total e));
      ("polls_started", Json.Int e.polls_started);
      ("polls_succeeded", Json.Int e.polls_succeeded);
      ("polls_inquorate", Json.Int e.polls_inquorate);
      ("polls_alarmed", Json.Int e.polls_alarmed);
      ("votes_sent", Json.Int e.votes_sent);
      ("invitations_admitted", Json.Int e.invitations_admitted);
      ("invitations_accepted", Json.Int e.invitations_accepted);
      ("invitations_refused", Json.Int e.invitations_refused);
      ("invitations_dropped", Json.Int e.invitations_dropped);
      ("repairs", Json.Int e.repairs);
    ]

let to_json t =
  let s = totals t in
  Json.Assoc
    [
      ( "totals",
        Json.Assoc
          [
            ("loyal_effort", Json.Float s.loyal_effort);
            ("adversary_effort", Json.Float s.adversary_effort);
            ("received_effort", Json.Float s.received_effort);
            ("cost_ratio", Json.Float (cost_ratio t));
            ("effort_per_successful_poll", Json.Float (effort_per_successful_poll t));
            ("polls_started", Json.Int s.total_polls_started);
            ("polls_succeeded", Json.Int s.total_polls_succeeded);
            ("polls_inquorate", Json.Int s.total_polls_inquorate);
            ("polls_alarmed", Json.Int s.total_polls_alarmed);
            ("votes_sent", Json.Int s.total_votes_sent);
            ("peers", Json.Int s.peer_count);
          ] );
      ("peers", Json.List (List.map entry_to_json (entries t)));
    ]

let pp ppf t =
  let s = totals t in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "%5s  %10s  %10s  %10s  %5s  %12s  %5s  %13s@," "peer" "spent" "adv" "recvd"
    "polls" "ok/inq/alarm" "votes" "acc/ref/drop";
  List.iter
    (fun e ->
      Format.fprintf ppf "%5d  %10s  %10s  %10s  %5d  %4d/%3d/%4d  %5d  %4d/%4d/%3d@,"
        e.peer
        (Format.asprintf "%a" Duration.pp (spent_loyal_total e))
        (Format.asprintf "%a" Duration.pp (spent_adversary_total e))
        (Format.asprintf "%a" Duration.pp (received_total e))
        e.polls_started e.polls_succeeded e.polls_inquorate e.polls_alarmed e.votes_sent
        e.invitations_accepted e.invitations_refused e.invitations_dropped)
    (entries t);
  Format.fprintf ppf
    "total: %d peers, loyal %a, adversary %a (cost ratio %.3g), %d polls (%d ok, %d \
     inquorate, %d alarmed), %d votes@]"
    s.peer_count Duration.pp s.loyal_effort Duration.pp s.adversary_effort (cost_ratio t)
    s.total_polls_started s.total_polls_succeeded s.total_polls_inquorate
    s.total_polls_alarmed s.total_votes_sent
