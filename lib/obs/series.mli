(** Append-only time-series output with a fixed column set, written as
    either CSV (one header row, then one row per sample) or JSONL (one
    object per sample, keyed by column name).

    The format is chosen once at creation — conventionally from the
    output path's extension via {!format_of_path} — so experiment code
    stays agnostic of which the user asked for. *)

type format = Csv | Jsonl

(** [format_of_path p] is [Jsonl] for [.jsonl]/[.json] paths, [Csv]
    otherwise. *)
val format_of_path : string -> format

type t

(** [create ~format ~columns ?header oc] prepares a writer over [oc].
    For CSV, the header row is written immediately unless [header] is
    [false] (pass [false] when appending to a file that already has
    one). *)
val create : format:format -> columns:string list -> ?header:bool -> out_channel -> t

(** [append t values] writes one sample; [values] must match [columns]
    in length and order. Scalars only ([Int], [Float], [String], [Bool],
    [Null]). *)
val append : t -> Json.t list -> unit

val columns : t -> string list
