(** Append-only time-series output with a fixed column set, written as
    either CSV (one header row, then one row per sample) or JSONL (one
    object per sample, keyed by column name).

    The format is chosen once at creation — conventionally from the
    output path's extension via {!format_of_path} — so experiment code
    stays agnostic of which the user asked for.

    Rows are buffered in the underlying {!Sink} rather than flushed one
    by one; pass the sample's simulated time as [?now] to {!append} to
    enable the sink's time-bounded flushing, and {!close} (or close the
    sink) to make the tail durable. *)

type format = Csv | Jsonl

(** [format_of_path p] is [Jsonl] for [.jsonl]/[.json] paths, [Csv]
    otherwise. *)
val format_of_path : string -> format

type t

(** [create ~format ~columns ?header sink] prepares a writer over
    [sink]. For CSV, the header row is written immediately unless
    [header] is [false] (pass [false] when appending to a file that
    already has one). The series does not take ownership of [sink]. *)
val create : format:format -> columns:string list -> ?header:bool -> Sink.t -> t

(** [append t ?now values] writes one sample; [values] must match
    [columns] in length and order. Scalars only ([Int], [Float],
    [String], [Bool], [Null]). *)
val append : t -> ?now:float -> Json.t list -> unit

(** Flush (durably) the underlying sink. *)
val flush : t -> unit

(** Close the underlying sink. *)
val close : t -> unit

val columns : t -> string list
