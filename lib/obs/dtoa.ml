(* Fast decimal rendering for finite doubles, replacing the
   printf-%g-and-verify dance on the trace hot path (a single
   [Printf.sprintf "%.16g"] costs ~600ns; this path lands around a
   quarter of that).

   Method: scale |f| by a cached power of ten held in double-double
   precision (~105 significant bits), round to a 17-digit integer
   mantissa, and lay the digits out %g-style. A 16-digit rounding is
   tried first so friendly values keep their short spelling ("0.1", not
   "0.10000000000000001"). Every candidate is verified by parsing it
   back before it is returned, so the arithmetic here only has to be
   right in the overwhelmingly common case — any residual boundary
   error (rounding ties, double-double drift) turns into a [None] and
   the caller's printf fallback, never into a wrong literal. *)

(* -- Double-double helpers ----------------------------------------------- *)

(* Exact error of the rounded product [p = a *. b], via Veltkamp splits
   and Dekker's product — written out flat so every intermediate stays
   an unboxed local float. Safe for the magnitudes this module admits
   (the 2^27 scaling cannot overflow). *)
let two_prod_err a b p =
  let ca = 134217729. *. a in
  let ah = ca -. (ca -. a) in
  let al = a -. ah in
  let cb = 134217729. *. b in
  let bh = cb -. (cb -. b) in
  let bl = b -. bh in
  ((ah *. bh) -. p) +. (ah *. bl) +. (al *. bh) +. (al *. bl)

let dd_mul (ah, al) (bh, bl) =
  let p = ah *. bh in
  let e = two_prod_err ah bh p +. ((ah *. bl) +. (al *. bh)) in
  let hi = p +. e in
  (hi, e -. (hi -. p))

let dd_div (ah, al) (bh, bl) =
  let q1 = ah /. bh in
  let p = bh *. q1 in
  let e = two_prod_err bh q1 p +. (bl *. q1) in
  let r = (ah -. p) +. (al -. e) in
  let q2 = r /. bh in
  let hi = q1 +. q2 in
  (hi, q2 -. (hi -. q1))

(* -- Cached powers of ten, 10^k for k in [-max_pow, max_pow] ------------- *)

(* The fast path only serves |f| in (1e-30, 1e30) — generously past any
   value the simulator produces (timestamps in seconds, effort charges,
   delays) — so the scale factor 10^(16 - floor(log10 f)) stays within
   [-14, 46]. Everything outside falls back to printf. *)
let max_pow = 50

let pow_hi = Array.make (2 * max_pow + 1) 0.
let pow_lo = Array.make (2 * max_pow + 1) 0.

let () =
  (* 10^k is exact in a double up to k = 22 (5^22 < 2^53). *)
  let exact = Array.make 23 1. in
  for k = 1 to 22 do
    exact.(k) <- exact.(k - 1) *. 10.
  done;
  for k = 0 to 22 do
    pow_hi.(max_pow + k) <- exact.(k);
    pow_lo.(max_pow + k) <- 0.
  done;
  for k = 23 to max_pow do
    let hi, lo =
      dd_mul (pow_hi.(max_pow + k - 22), pow_lo.(max_pow + k - 22)) (exact.(22), 0.)
    in
    pow_hi.(max_pow + k) <- hi;
    pow_lo.(max_pow + k) <- lo
  done;
  for k = 1 to max_pow do
    let hi, lo = dd_div (1., 0.) (pow_hi.(max_pow + k), pow_lo.(max_pow + k)) in
    pow_hi.(max_pow - k) <- hi;
    pow_lo.(max_pow - k) <- lo
  done

(* -- Digit generation ----------------------------------------------------- *)

let ten_p16 = 10_000_000_000_000_000
let ten_p17 = 100_000_000_000_000_000

(* [scaled_17 a] is the 17-digit decimal mantissa [m] and exponent [q]
   with [a ~ m * 10^(q - 16)], [10^16 <= m < 10^17], for positive
   finite [a] within the fast-path domain. *)
let rec scaled_attempt a est retries =
  let k = 16 - est in
  if k < -max_pow || k > max_pow || retries > 2 then None
  else begin
    let ph = pow_hi.(max_pow + k) and pl = pow_lo.(max_pow + k) in
    let p = a *. ph in
    (* p ~ 1e16..1e17, so its ulp can reach 16: [round p] alone loses
       the low decimal digits. Recover them from the exact product
       error plus the low half of the power. *)
    let e = two_prod_err a ph p +. (a *. pl) in
    let r = Float.round p in
    let frac = (p -. r) +. e in
    let m = int_of_float r + int_of_float (Float.round frac) in
    if m >= ten_p17 then scaled_attempt a (est + 1) (retries + 1)
    else if m < ten_p16 then scaled_attempt a (est - 1) (retries + 1)
    else Some (m, est)
  end

let scaled_17 a =
  (* floor(log10 a) from the binary exponent: 78913 / 2^18 ~ log10 2.
     The estimate can be off by one; the range check retries. *)
  let e2 = (Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float a) 52) land 0x7ff) - 1023 in
  scaled_attempt a ((e2 * 78913) asr 18) 0

(* Digit scratch shared across calls (the simulator is single-threaded,
   like every other scratch buffer on the trace path): a 17-digit
   mantissa never needs [string_of_int]'s fresh string. Filled
   least-significant-digit-first from the right; returns the start
   index. *)
let digit_scratch = Bytes.create 17

let rec fill_digits x pos =
  Bytes.unsafe_set digit_scratch pos (Char.unsafe_chr (Char.code '0' + (x mod 10)));
  if x >= 10 then fill_digits (x / 10) (pos - 1) else pos

let rec strip_zeros m p = if m mod 10 = 0 then strip_zeros (m / 10) (p + 1) else (m, p)

(* Reused across calls ([Buffer.contents] copies out a fresh string, so
   sharing the workspace is safe); per-call [Buffer.create] was a
   measurable slice of the per-literal allocation. *)
let render_buf = Buffer.create 32

(* [render ~neg m p] lays out [sign * m * 10^p] %g-style: plain decimal
   when the leading digit's exponent is in [-4, 17), otherwise
   [d.ddde±XX]. Trailing zeros of [m] are stripped first. *)
let render ~neg m p =
  let m, p = strip_zeros m p in
  let start = fill_digits m 16 in
  let l = 17 - start in
  let q = p + l - 1 in
  let b = render_buf in
  Buffer.clear b;
  if neg then Buffer.add_char b '-';
  if q < -4 || q >= 17 then begin
    Buffer.add_char b (Bytes.unsafe_get digit_scratch start);
    if l > 1 then begin
      Buffer.add_char b '.';
      Buffer.add_subbytes b digit_scratch (start + 1) (l - 1)
    end;
    Buffer.add_char b 'e';
    Buffer.add_char b (if q < 0 then '-' else '+');
    let a = abs q in
    if a < 10 then Buffer.add_char b '0';
    Buffer.add_string b (string_of_int a)
  end
  else if q >= l - 1 then begin
    Buffer.add_subbytes b digit_scratch start l;
    for _ = 1 to q - (l - 1) do
      Buffer.add_char b '0'
    done
  end
  else if q >= 0 then begin
    Buffer.add_subbytes b digit_scratch start (q + 1);
    Buffer.add_char b '.';
    Buffer.add_subbytes b digit_scratch (start + q + 1) (l - q - 1)
  end
  else begin
    Buffer.add_string b "0.";
    for _ = 1 to -q - 1 do
      Buffer.add_char b '0'
    done;
    Buffer.add_subbytes b digit_scratch start l
  end;
  Buffer.contents b

(* [certify m p a] decides whether the literal [m * 10^p] parses back to
   exactly the positive double [a], by recomputing the value in
   double-double and measuring its distance from [a] against the
   neighbouring representable doubles. Distances clearly inside half an
   ulp certify the round-trip; clearly outside refute it; the thin
   uncertainty band in between (rounding ties, accumulated dd error,
   well under 2^-40 ulp wide) is left to a real string parse. *)
type verdict = Roundtrips | Fails | Unsure

let certify m p a =
  (* [m] < 10^17 exceeds 2^53, so hold it exactly as a dd pair. The
     product with the power is [dd_mul] written out flat: the tuple
     return would box two floats per call on the hot path. *)
  let mh = float_of_int m in
  let ml = float_of_int (m - int_of_float mh) in
  let bh = pow_hi.(max_pow + p) and bl = pow_lo.(max_pow + p) in
  let ph = mh *. bh in
  let e = two_prod_err mh bh ph +. ((mh *. bl) +. (ml *. bh)) in
  let vh = ph +. e in
  let vl = e -. (vh -. ph) in
  (* [vh -. a] is exact (Sterbenz: the values are within a hair of each
     other whenever the answer is in doubt). *)
  let d = (vh -. a) +. vl in
  let gap = if d >= 0. then Float.succ a -. a else a -. Float.pred a in
  let margin = 1e-5 *. gap in
  let half = 0.5 *. gap in
  let ad = Float.abs d in
  if ad < half -. margin then Roundtrips
  else if ad > half +. margin then Fails
  else Unsure

(* Top level rather than a local of [to_literal]: a closure over
   [neg]/[f]/[a] would allocate per call. *)
let attempt neg f a m p =
  match certify m p a with
  | Roundtrips -> Some (render ~neg m p)
  | Fails -> None
  | Unsure ->
    let s = render ~neg m p in
    if Float.of_string s = f then Some s else None

let to_literal f =
  let a = Float.abs f in
  if not (a > 1e-30 && a < 1e30) then None
  else begin
    match scaled_17 a with
    | None -> None
    | Some (m17, q) ->
      let neg = f < 0. in
      (* Shorter 16-digit rounding first, so values that survive it
         ("0.1", "86400.5") keep the spelling %.16g would give them. *)
      let m16 = (m17 / 10) + (if m17 mod 10 >= 5 then 1 else 0) in
      (match attempt neg f a m16 (q - 15) with
      | Some s -> Some s
      | None -> attempt neg f a m17 (q - 16))
  end
