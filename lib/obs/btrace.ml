let magic = "NTRC1\n"

(* Strings longer than this are written inline rather than interned:
   interning only pays off for values that recur (keys, kinds, labels). *)
let max_intern_len = 64

(* Cap on intern-table size so a pathological trace cannot make the
   writer (or a reader) hold unbounded distinct strings. *)
let max_intern_entries = 1 lsl 16

let tag_null = 0
let tag_false = 1
let tag_true = 2
let tag_int_pos = 3
let tag_int_neg = 4
let tag_float = 5
let tag_string_inline = 6
let tag_string_define = 7
let tag_string_ref = 8
let tag_list = 9
let tag_assoc = 10

(* Unsigned LEB128. [n] is treated as a 63-bit non-negative value; the
   sign-magnitude int tags keep actual negatives out of here. A
   top-level recursive function, not an inner [let rec]: an inner loop
   capturing [buf] would allocate a closure on every call. *)
let rec add_varint buf n =
  if n land lnot 0x7f = 0 then Buffer.add_char buf (Char.unsafe_chr n)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (n land 0x7f)));
    add_varint buf (n lsr 7)
  end

(* Split into two untagged 32-bit halves up front: per-byte [Int64]
   shifts would box an intermediate for every byte written. *)
let add_float_le buf f =
  let bits = Int64.bits_of_float f in
  let lo = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical bits 32) in
  Buffer.add_char buf (Char.unsafe_chr (lo land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((lo lsr 8) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((lo lsr 16) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((lo lsr 24) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr (hi land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((hi lsr 8) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((hi lsr 16) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((hi lsr 24) land 0xff))

(* -- Writer -------------------------------------------------------------- *)

type writer = {
  sink : Sink.t;
  intern : (string, int) Hashtbl.t;
  mutable next_id : int;
  mutable atom_ids : int array;
  payload : Buffer.t;
  header : Buffer.t;
  mutable records : int;
}

(* Module-initialisation-time registration counter for {!atom}; see the
   direct-encoding section below. *)
let atom_slots = ref 0

let writer sink =
  Sink.write sink magic;
  {
    sink;
    intern = Hashtbl.create 256;
    next_id = 0;
    atom_ids = Array.make (max 1 !atom_slots) (-1);
    payload = Buffer.create 256;
    header = Buffer.create 10;
    records = 0;
  }

let add_tag buf tag = Buffer.add_char buf (Char.unsafe_chr tag)

let encode_string w buf s =
  match Hashtbl.find_opt w.intern s with
  | Some id ->
    add_tag buf tag_string_ref;
    add_varint buf id
  | None ->
    let len = String.length s in
    if len <= max_intern_len && w.next_id < max_intern_entries then begin
      add_tag buf tag_string_define;
      Hashtbl.replace w.intern s w.next_id;
      w.next_id <- w.next_id + 1
    end
    else add_tag buf tag_string_inline;
    add_varint buf len;
    Buffer.add_string buf s

let rec encode w buf (json : Json.t) =
  match json with
  | Null -> add_tag buf tag_null
  | Bool false -> add_tag buf tag_false
  | Bool true -> add_tag buf tag_true
  | Int n ->
    if n >= 0 then begin
      add_tag buf tag_int_pos;
      add_varint buf n
    end
    else begin
      add_tag buf tag_int_neg;
      add_varint buf (-(n + 1))
    end
  | Float f ->
    add_tag buf tag_float;
    add_float_le buf f
  | String s -> encode_string w buf s
  | List items ->
    add_tag buf tag_list;
    add_varint buf (List.length items);
    List.iter (fun item -> encode w buf item) items
  | Assoc fields ->
    add_tag buf tag_assoc;
    add_varint buf (List.length fields);
    List.iter
      (fun (key, value) ->
        encode_string w buf key;
        encode w buf value)
      fields

let begin_record w = Buffer.clear w.payload

let end_record w ?now () =
  Buffer.clear w.header;
  add_varint w.header (Buffer.length w.payload);
  Sink.write_buffer w.sink w.header;
  Sink.write_buffer w.sink ?now w.payload;
  w.records <- w.records + 1

let write w ?now json =
  begin_record w;
  encode w w.payload json;
  end_record w ?now ()

let count w = w.records

(* -- Direct record encoding ---------------------------------------------- *)

(* Atoms: strings registered once (at module-initialisation time) and
   resolved per writer through a flat array, so a hot encoder pays an
   array load per recurring string instead of a hashtable lookup. An
   atom's first use in a writer goes through {!encode_string}, sharing
   the one intern id-space with the generic {!write} path — mixing the
   two on one writer stays byte-compatible in either order. *)

type atom = { str : string; slot : int }

let atom str =
  let slot = !atom_slots in
  incr atom_slots;
  { str; slot }

let put_atom w a =
  (if a.slot >= Array.length w.atom_ids then begin
     (* The writer predates this atom's registration; grow the cache. *)
     let bigger = Array.make (a.slot + 1) (-1) in
     Array.blit w.atom_ids 0 bigger 0 (Array.length w.atom_ids);
     w.atom_ids <- bigger
   end);
  let id = Array.unsafe_get w.atom_ids a.slot in
  if id >= 0 then begin
    add_tag w.payload tag_string_ref;
    add_varint w.payload id
  end
  else begin
    encode_string w w.payload a.str;
    match Hashtbl.find_opt w.intern a.str with
    | Some id -> w.atom_ids.(a.slot) <- id
    | None -> () (* intern table full: the atom stays inline *)
  end

let put_null w = add_tag w.payload tag_null

let put_bool w b = add_tag w.payload (if b then tag_true else tag_false)

let put_int w n =
  if n >= 0 then begin
    add_tag w.payload tag_int_pos;
    add_varint w.payload n
  end
  else begin
    add_tag w.payload tag_int_neg;
    add_varint w.payload (-(n + 1))
  end

let put_float w f =
  add_tag w.payload tag_float;
  add_float_le w.payload f

let put_string w s = encode_string w w.payload s

let put_list_header w n =
  add_tag w.payload tag_list;
  add_varint w.payload n

let put_assoc_header w n =
  add_tag w.payload tag_assoc;
  add_varint w.payload n

(* -- Reader -------------------------------------------------------------- *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

type table = { mutable entries : string array; mutable filled : int }

let table_create () = { entries = Array.make 256 ""; filled = 0 }

let table_add tbl s =
  if tbl.filled = Array.length tbl.entries then begin
    let bigger = Array.make (2 * tbl.filled) "" in
    Array.blit tbl.entries 0 bigger 0 tbl.filled;
    tbl.entries <- bigger
  end;
  tbl.entries.(tbl.filled) <- s;
  tbl.filled <- tbl.filled + 1

let table_get tbl id =
  if id < 0 || id >= tbl.filled then
    corrupt "intern reference %d out of range (table has %d entries)" id tbl.filled;
  tbl.entries.(id)

type cursor = { bytes : Bytes.t; len : int; mutable pos : int }

let read_byte cur =
  if cur.pos >= cur.len then corrupt "record truncated at byte %d" cur.pos;
  let b = Char.code (Bytes.unsafe_get cur.bytes cur.pos) in
  cur.pos <- cur.pos + 1;
  b

let read_varint cur =
  let rec go shift acc =
    if shift > 62 then corrupt "varint overflow at byte %d" cur.pos;
    let b = read_byte cur in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_string_bytes cur =
  let len = read_varint cur in
  if len < 0 || cur.pos + len > cur.len then
    corrupt "string length %d exceeds record at byte %d" len cur.pos;
  let s = Bytes.sub_string cur.bytes cur.pos len in
  cur.pos <- cur.pos + len;
  s

let read_float_le cur =
  if cur.pos + 8 > cur.len then corrupt "record truncated in float at byte %d" cur.pos;
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code (Bytes.unsafe_get cur.bytes (cur.pos + i))))
  done;
  cur.pos <- cur.pos + 8;
  Int64.float_of_bits !bits

let decode_string tbl cur tag =
  if tag = tag_string_inline then read_string_bytes cur
  else if tag = tag_string_define then begin
    let s = read_string_bytes cur in
    table_add tbl s;
    s
  end
  else if tag = tag_string_ref then table_get tbl (read_varint cur)
  else corrupt "expected string tag, found %d at byte %d" tag (cur.pos - 1)

let rec decode tbl cur : Json.t =
  let tag = read_byte cur in
  if tag = tag_null then Null
  else if tag = tag_false then Bool false
  else if tag = tag_true then Bool true
  else if tag = tag_int_pos then Int (read_varint cur)
  else if tag = tag_int_neg then Int (-read_varint cur - 1)
  else if tag = tag_float then Float (read_float_le cur)
  else if tag = tag_list then begin
    let n = read_varint cur in
    let rec items i acc =
      if i = n then List.rev acc else items (i + 1) (decode tbl cur :: acc)
    in
    Json.List (items 0 [])
  end
  else if tag = tag_assoc then begin
    let n = read_varint cur in
    let rec fields i acc =
      if i = n then List.rev acc
      else begin
        let key = decode_string tbl cur (read_byte cur) in
        let value = decode tbl cur in
        fields (i + 1) ((key, value) :: acc)
      end
    in
    Json.Assoc (fields 0 [])
  end
  else decode_string tbl cur tag |> fun s -> Json.String s

(* Reads the length varint of the next record straight off the channel.
   A clean EOF before the first byte is the end of the trace; EOF
   mid-varint is truncation. *)
let input_record_length ic =
  match In_channel.input_char ic with
  | None -> None
  | Some first ->
    let rec go shift acc =
      let b =
        match In_channel.input_char ic with
        | Some c -> Char.code c
        | None -> corrupt "truncated record length varint"
      in
      if shift > 62 then corrupt "record length varint overflow";
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    let b = Char.code first in
    Some (if b land 0x80 = 0 then b else go 7 (b land 0x7f))

let iter_channel ic ~f =
  let check_magic () =
    let n = String.length magic in
    let got = really_input_string ic n in
    if not (String.equal got magic) then corrupt "bad magic (not a binary trace)"
  in
  let tbl = table_create () in
  let rec records index =
    match input_record_length ic with
    | None -> ()
    | Some len ->
      if len < 0 then corrupt "record %d: negative length" index;
      let bytes = Bytes.create len in
      (try really_input ic bytes 0 len
       with End_of_file -> corrupt "record %d: truncated mid-record" index);
      let cur = { bytes; len; pos = 0 } in
      let json = decode tbl cur in
      if cur.pos <> cur.len then
        corrupt "record %d: %d trailing bytes" index (cur.len - cur.pos);
      f ~index json;
      records (index + 1)
  in
  match
    check_magic ();
    records 1
  with
  | () -> Ok ()
  | exception Corrupt msg -> Error msg
  | exception End_of_file -> Error "truncated header (not a binary trace)"

let iter_file path ~f = In_channel.with_open_bin path (fun ic -> iter_channel ic ~f)
