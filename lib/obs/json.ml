type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

let needs_escape c = c = '"' || c = '\\' || Char.code c < 0x20

(* Copies maximal clean runs with [add_substring] instead of walking
   char-by-char: most strings contain nothing to escape. *)
let escape buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  let flush_run start stop =
    if stop > start then Buffer.add_substring buf s start (stop - start)
  in
  let rec go start i =
    if i = n then flush_run start i
    else if needs_escape (String.unsafe_get s i) then begin
      flush_run start i;
      (match String.unsafe_get s i with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c)));
      go (i + 1) (i + 1)
    end
    else go start (i + 1)
  in
  go 0 0;
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e12 && not (f = 0. && 1. /. f < 0.)
  then
    (* %.12g prints integral magnitudes below 10^12 as bare digits (and
       negative zero as "-0", hence the exclusion above). *)
    string_of_int (int_of_float f)
  else begin
    match Dtoa.to_literal f with
    | Some s -> s
    | None ->
      (* Round-trippable and short for friendly values: %g strips
         trailing zeros, so 16 digits renders 0.1 as "0.1" while needing
         the %.17g fallback only for the values that genuinely use all
         17. Trying 16 first (not 12) matters: values reaching this
         branch essentially never fit 12 digits, and the failed attempt
         costs a format and a parse per call. *)
      let s = Printf.sprintf "%.16g" f in
      if Float.of_string s = f then s else Printf.sprintf "%.17g" f
  end

(* Digits straight into the buffer: [string_of_int] allocates a fresh
   string per call, which adds up under a debug-level trace sink.
   Negative values fall back to it (handles [min_int]); they do not
   occur on hot paths. Top-level recursion, not an inner [let rec]: a
   loop capturing [buf] would allocate a closure per call. *)
let rec write_uint buf n =
  if n >= 10 then write_uint buf (n / 10);
  Buffer.add_char buf (Char.unsafe_chr (Char.code '0' + (n mod 10)))

let write_int buf n =
  if n < 0 then Buffer.add_string buf (string_of_int n) else write_uint buf n

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> write_int buf i
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf key;
        Buffer.add_char buf ':';
        write buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

exception Parse_error of string

(* Recursive-descent parser over a string with a mutable cursor. *)
type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      true
    | _ -> false
  do
    ()
  done

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %c" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | None -> fail cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
          let hex = String.sub cur.src cur.pos 4 in
          cur.pos <- cur.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail cur "bad \\u escape"
          in
          (* ASCII passes through; anything wider degrades to '?' — we never
             emit non-ASCII ourselves. *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
        | _ -> fail cur "unknown escape");
        loop ())
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek cur with Some c when is_number_char c -> advance cur; true | _ -> false do
    ()
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  let floaty = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text in
  if floaty then begin
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "malformed number"
  end
  else begin
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (* Out-of-range integer literal: fall back to float. *)
      (match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail cur "malformed number")
  end

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Assoc []
    end
    else begin
      let rec fields acc =
        skip_ws cur;
        let key = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let value = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields ((key, value) :: acc)
        | Some '}' ->
          advance cur;
          List.rev ((key, value) :: acc)
        | _ -> fail cur "expected , or }"
      in
      Assoc (fields [])
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec items acc =
        let value = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (value :: acc)
        | Some ']' ->
          advance cur;
          List.rev (value :: acc)
        | _ -> fail cur "expected , or ]"
      in
      List (items [])
    end
  | Some '"' -> String (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | value ->
    skip_ws cur;
    if cur.pos = String.length s then Ok value
    else Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
  | exception Parse_error msg -> Error msg

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let string_value = function String s -> Some s | _ -> None
