(** Uniform access to trace files in either encoding.

    Detection sniffs the {!Btrace.magic} prefix; anything else is
    treated as JSONL (including empty files). Consumers iterate records
    without caring which encoding backs them, with per-record parse
    results so callers choose their own strictness:

    - JSONL: malformed lines are delivered as [Error] and iteration
      continues (matching the analyzer's line-tolerant behaviour);
      blank lines are skipped but still counted in line numbering.
    - Binary: a framing/intern error is delivered as one [Error] and
      iteration stops — past the first corrupt byte there is no record
      boundary to resynchronise on. *)

type format = Jsonl | Binary

val format_to_string : format -> string

(** [format_of_path p] guesses from the extension alone: [.ntrace] is
    [Binary], everything else [Jsonl]. Used to pick an {e output}
    encoding; for inputs prefer {!detect}. *)
val format_of_path : string -> format

(** [detect path] sniffs the file's leading bytes. *)
val detect : string -> format

(** [iter path ~f] reads every record of [path], calling
    [f ~line result] with a 1-based line number (JSONL) or record
    ordinal (binary). Returns the detected format. Raises [Sys_error]
    if the file cannot be opened. *)
val iter : string -> f:(line:int -> (Json.t, string) result -> unit) -> format
