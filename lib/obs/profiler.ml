type gc = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

let gc_now () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
  }

let gc_delta ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
    heap_words = after.heap_words;
    top_heap_words = after.top_heap_words;
  }

let allocated_words g = g.minor_words +. g.major_words -. g.promoted_words

let gc_to_json g =
  Json.Assoc
    [
      ("minor_words", Json.Float g.minor_words);
      ("promoted_words", Json.Float g.promoted_words);
      ("major_words", Json.Float g.major_words);
      ("allocated_words", Json.Float (allocated_words g));
      ("minor_collections", Json.Int g.minor_collections);
      ("major_collections", Json.Int g.major_collections);
      ("compactions", Json.Int g.compactions);
      ("heap_words", Json.Int g.heap_words);
      ("top_heap_words", Json.Int g.top_heap_words);
    ]

type domain_stat = {
  domain : int;
  busy_s : float;
  cpu_s : float;
  tasks : int;
  minor_words : float;
  minor_collections : int;
  major_collections : int;
}

type t = {
  registry : Registry.t;
  clock : unit -> float;
  mutable phases_rev : (string * float ref) list;
  domains : (int, domain_stat ref) Hashtbl.t;
  mutable last_gc : gc option;
}

let create ?registry ?clock () =
  {
    registry = (match registry with Some r -> r | None -> Registry.create ());
    clock =
      (match clock with Some c -> c | None -> Repro_prelude.Monotonic.now_s);
    phases_rev = [];
    domains = Hashtbl.create 8;
    last_gc = None;
  }

let registry t = t.registry

let phase_cell t name =
  match List.assoc_opt name t.phases_rev with
  | Some cell -> cell
  | None ->
    let cell = ref 0. in
    t.phases_rev <- (name, cell) :: t.phases_rev;
    cell

let mirror_phase t name seconds =
  Registry.Gauge.set (Registry.gauge t.registry ("profile.phase." ^ name ^ "_s")) seconds

let add_phase_time t name seconds =
  let cell = phase_cell t name in
  cell := !cell +. seconds;
  mirror_phase t name !cell

let phase t name f =
  let start = t.clock () in
  Fun.protect
    ~finally:(fun () -> add_phase_time t name (t.clock () -. start))
    f

let phase_seconds t name =
  match List.assoc_opt name t.phases_rev with Some cell -> !cell | None -> 0.

let sample_gc t =
  let g = gc_now () in
  t.last_gc <- Some g;
  let set name v = Registry.Gauge.set (Registry.gauge t.registry name) v in
  set "gc.minor_words" g.minor_words;
  set "gc.promoted_words" g.promoted_words;
  set "gc.major_words" g.major_words;
  set "gc.allocated_words" (allocated_words g);
  set "gc.heap_words" (float_of_int g.heap_words);
  set "gc.top_heap_words" (float_of_int g.top_heap_words);
  set "gc.minor_collections" (float_of_int g.minor_collections);
  set "gc.major_collections" (float_of_int g.major_collections);
  set "gc.compactions" (float_of_int g.compactions)

let note_domain t ~domain ?(cpu_s = 0.) ?(minor_words = 0.)
    ?(minor_collections = 0) ?(major_collections = 0) ~busy_s ~tasks () =
  match Hashtbl.find_opt t.domains domain with
  | Some cell ->
    cell :=
      {
        domain;
        busy_s = !cell.busy_s +. busy_s;
        cpu_s = !cell.cpu_s +. cpu_s;
        tasks = !cell.tasks + tasks;
        minor_words = !cell.minor_words +. minor_words;
        minor_collections = !cell.minor_collections + minor_collections;
        major_collections = !cell.major_collections + major_collections;
      }
  | None ->
    Hashtbl.replace t.domains domain
      (ref
         {
           domain;
           busy_s;
           cpu_s;
           tasks;
           minor_words;
           minor_collections;
           major_collections;
         })

let domain_stats t =
  Hashtbl.fold (fun _ cell acc -> !cell :: acc) t.domains []
  |> List.sort (fun a b -> compare a.domain b.domain)

let phases t = List.rev t.phases_rev

let snapshot_json t =
  Json.Assoc
    [
      ( "phases",
        Json.Assoc (List.map (fun (name, cell) -> (name, Json.Float !cell)) (phases t))
      );
      ( "domains",
        Json.List
          (List.map
             (fun d ->
               Json.Assoc
                 [
                   ("domain", Json.Int d.domain);
                   ("busy_s", Json.Float d.busy_s);
                   ("cpu_s", Json.Float d.cpu_s);
                   ("tasks", Json.Int d.tasks);
                   ("minor_words", Json.Float d.minor_words);
                   ("minor_collections", Json.Int d.minor_collections);
                   ("major_collections", Json.Int d.major_collections);
                 ])
             (domain_stats t)) );
      ("gc", match t.last_gc with None -> Json.Null | Some g -> gc_to_json g);
      ("registry", Json.Assoc (Registry.snapshot t.registry));
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "phases:@,";
  List.iter
    (fun (name, cell) -> Format.fprintf ppf "  %-12s %8.3fs@," name !cell)
    (phases t);
  (match domain_stats t with
  | [] -> ()
  | stats ->
    Format.fprintf ppf "domains:@,";
    List.iter
      (fun d ->
        Format.fprintf ppf
          "  domain %d: busy %8.3fs (cpu %8.3fs) over %d tasks, %.3gM minor \
           words, %d minor / %d major collections@,"
          d.domain d.busy_s d.cpu_s d.tasks
          (d.minor_words /. 1e6)
          d.minor_collections d.major_collections)
      stats);
  (match t.last_gc with
  | None -> ()
  | Some g ->
    Format.fprintf ppf
      "gc: %.3gM words allocated, %d minor / %d major collections, heap %.3gM words@,"
      (allocated_words g /. 1e6)
      g.minor_collections g.major_collections
      (float_of_int g.heap_words /. 1e6));
  Format.fprintf ppf "@]"
