(** Fast decimal rendering of doubles for the trace hot path.

    [to_literal f] is a %g-style decimal literal that parses back to
    exactly [f] — every candidate is verified with [Float.of_string]
    before being returned — or [None] when the fast path does not apply
    (non-finite, zero, |f| outside (1e-30, 1e30), or a rounding
    boundary the double-double scaling cannot certify). Callers fall
    back to the printf-based rendering on [None]; the two spell
    friendly values identically (a 16-digit rounding is tried first,
    like %.16g, so "0.1" stays "0.1"). *)
val to_literal : float -> string option
