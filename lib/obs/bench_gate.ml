type direction = Higher_is_worse | Lower_is_worse

type delta = {
  path : string;
  baseline : float;
  current : float;
  change_pct : float;
  direction : direction option;
  regressed : bool;
}

type report = {
  deltas : delta list;
  missing_tracked : string list;
  added : string list;
  threshold_pct : float;
}

(* Members used to key list elements so the diff survives reordering. *)
let key_members = [ "variant"; "target"; "phase"; "bucket"; "name" ]

let element_key json =
  List.find_map
    (fun m -> Option.bind (Json.member m json) Json.string_value)
    key_members

let flatten json =
  let acc = ref [] in
  let join prefix seg = if prefix = "" then seg else prefix ^ "." ^ seg in
  let rec go prefix (json : Json.t) =
    match json with
    | Int i -> acc := (prefix, float_of_int i) :: !acc
    | Float f -> acc := (prefix, f) :: !acc
    | Bool _ | Null | String _ -> ()
    | Assoc fields -> List.iter (fun (k, v) -> go (join prefix k) v) fields
    | List items ->
      List.iteri
        (fun i item ->
          let seg =
            match element_key item with
            | Some key -> key
            | None -> string_of_int i
          in
          go (join prefix seg) item)
        items
  in
  go "" json;
  List.rev !acc

let direction_of_path path =
  let last =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  match last with
  | "overhead" -> Some Higher_is_worse
  | "speedup" -> Some Lower_is_worse
  | _ -> None

let change_pct ~baseline ~current =
  if Float.is_finite baseline && baseline <> 0. && Float.is_finite current then
    (current -. baseline) /. Float.abs baseline *. 100.
  else nan

let default_threshold_pct = 25.

let compare_json ?(threshold_pct = default_threshold_pct) ~baseline ~current () =
  let base = flatten baseline and cur = flatten current in
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun (path, v) -> Hashtbl.replace cur_tbl path v) cur;
  let deltas, missing_tracked =
    List.fold_left
      (fun (deltas, missing) (path, b) ->
        match Hashtbl.find_opt cur_tbl path with
        | Some c ->
          let direction = direction_of_path path in
          let pct = change_pct ~baseline:b ~current:c in
          let regressed =
            match direction with
            | None -> false
            | Some Higher_is_worse -> Float.is_finite pct && pct > threshold_pct
            | Some Lower_is_worse -> Float.is_finite pct && pct < -.threshold_pct
          in
          ( { path; baseline = b; current = c; change_pct = pct; direction; regressed }
            :: deltas,
            missing )
        | None ->
          ( deltas,
            if direction_of_path path <> None then path :: missing else missing ))
      ([], []) base
  in
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (path, _) -> Hashtbl.replace base_tbl path ()) base;
  let added =
    List.filter_map
      (fun (path, _) -> if Hashtbl.mem base_tbl path then None else Some path)
      cur
  in
  {
    deltas = List.sort (fun a b -> compare a.path b.path) deltas;
    missing_tracked = List.rev missing_tracked;
    added;
    threshold_pct;
  }

let regressions report = List.filter (fun d -> d.regressed) report.deltas
let ok report = regressions report = [] && report.missing_tracked = []

let direction_to_json = function
  | None -> Json.Null
  | Some Higher_is_worse -> Json.String "higher_is_worse"
  | Some Lower_is_worse -> Json.String "lower_is_worse"

let delta_to_json d =
  Json.Assoc
    [
      ("path", Json.String d.path);
      ("baseline", Json.Float d.baseline);
      ("current", Json.Float d.current);
      ("change_pct", Json.Float d.change_pct);
      ("direction", direction_to_json d.direction);
      ("regressed", Json.Bool d.regressed);
    ]

let report_json report =
  Json.Assoc
    [
      ("ok", Json.Bool (ok report));
      ("threshold_pct", Json.Float report.threshold_pct);
      ("regressions", Json.List (List.map delta_to_json (regressions report)));
      ( "missing_tracked",
        Json.List (List.map (fun p -> Json.String p) report.missing_tracked) );
      ("added", Json.List (List.map (fun p -> Json.String p) report.added));
      ("deltas", Json.List (List.map delta_to_json report.deltas));
    ]

let pp_report ppf report =
  let tracked = List.filter (fun d -> d.direction <> None) report.deltas in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "tracked metrics (threshold %.0f%%):@," report.threshold_pct;
  List.iter
    (fun d ->
      Format.fprintf ppf "  %-50s %10.4g -> %10.4g  %+7.1f%%  %s@," d.path d.baseline
        d.current d.change_pct
        (if d.regressed then "REGRESSED" else "ok"))
    tracked;
  if tracked = [] then Format.fprintf ppf "  (none)@,";
  List.iter
    (fun path -> Format.fprintf ppf "  %-50s MISSING (tracked in baseline)@," path)
    report.missing_tracked;
  let info = List.filter (fun d -> d.direction = None) report.deltas in
  let shown = List.filteri (fun i _ -> i < 20) info in
  if shown <> [] then begin
    Format.fprintf ppf "informational:@,";
    List.iter
      (fun d ->
        Format.fprintf ppf "  %-50s %10.4g -> %10.4g  %+7.1f%%@," d.path d.baseline
          d.current d.change_pct)
      shown;
    let rest = List.length info - List.length shown in
    if rest > 0 then Format.fprintf ppf "  ... and %d more@," rest
  end;
  if report.added <> [] then
    Format.fprintf ppf "new metrics: %s@," (String.concat ", " report.added);
  Format.fprintf ppf "verdict: %s@]" (if ok report then "OK" else "REGRESSED")
