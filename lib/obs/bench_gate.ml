type direction = Higher_is_worse | Lower_is_worse

type delta = {
  path : string;
  baseline : float;
  current : float;
  change_pct : float;
  direction : direction option;
  regressed : bool;
}

type report = {
  deltas : delta list;
  missing_tracked : string list;
  skipped : string list;
  degenerate_current : string list;
  added : string list;
  degenerate_subtrees : string list;
  threshold_pct : float;
  allow_degenerate_current : bool;
}

(* Members used to key list elements so the diff survives reordering. *)
let key_members = [ "variant"; "target"; "phase"; "bucket"; "name" ]

let element_key json =
  List.find_map
    (fun m -> Option.bind (Json.member m json) Json.string_value)
    key_members

let join prefix seg = if prefix = "" then seg else prefix ^ "." ^ seg

(* Flatten to (path, value) leaves, and separately collect the prefixes
   of objects carrying [("degenerate", true)] — benches mark a whole
   sub-document degenerate when the environment cannot exercise what the
   metric measures (e.g. a parallel sweep on a 1-core host). *)
let flatten_with_degenerate json =
  let acc = ref [] in
  let degenerate = ref [] in
  let rec go prefix (json : Json.t) =
    match json with
    | Int i -> acc := (prefix, float_of_int i) :: !acc
    | Float f -> acc := (prefix, f) :: !acc
    | Bool _ | Null | String _ -> ()
    | Assoc fields ->
      if List.exists (fun (k, v) -> k = "degenerate" && v = Json.Bool true) fields
      then degenerate := prefix :: !degenerate;
      List.iter (fun (k, v) -> go (join prefix k) v) fields
    | List items ->
      List.iteri
        (fun i item ->
          let seg =
            match element_key item with
            | Some key -> key
            | None -> string_of_int i
          in
          go (join prefix seg) item)
        items
  in
  go "" json;
  (List.rev !acc, List.rev !degenerate)

let flatten json = fst (flatten_with_degenerate json)

let last_segment path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

(* The tracked-metric registry: direction of badness plus an optional
   neutral point. A neutral is the metric's natural no-effect value —
   for [overhead] and [slowdown] ratios that is 1.0: a baseline that
   happens to land *better* than neutral (chaos overhead 0.69, because
   faults drop messages) must not turn later drift back toward 1.0 into
   a failure. [speedup] deliberately has no neutral: collapsing from a
   2x speedup to 1x is a real loss of parallelism, so it gates against
   the baseline itself. *)
let tracked_of_path path =
  match last_segment path with
  | "overhead" -> Some (Higher_is_worse, Some 1.0)
  | "slowdown" -> Some (Higher_is_worse, Some 1.0)
  | "speedup" -> Some (Lower_is_worse, None)
  (* Allocation per simulated event is near machine-independent (the
     simulation is deterministic; only GC timing varies), so unlike raw
     seconds it is safe to gate. No neutral: any growth past the
     threshold is a genuine allocation regression. *)
  | "words_per_event" -> Some (Higher_is_worse, None)
  | _ -> None

let direction_of_path path = Option.map fst (tracked_of_path path)

let change_pct ~baseline ~current =
  if Float.is_finite baseline && baseline <> 0. && Float.is_finite current then
    (current -. baseline) /. Float.abs baseline *. 100.
  else nan

let default_threshold_pct = 25.

(* A metric regresses only on movement past the reference point in its
   bad direction. The reference is the baseline, slackened to the
   neutral when the baseline is on the better side of it. *)
let regresses ~threshold_pct ~direction ~neutral ~baseline ~current =
  if not (Float.is_finite baseline && Float.is_finite current) then false
  else
    let frac = threshold_pct /. 100. in
    match direction with
    | Higher_is_worse ->
      let ref_ = match neutral with Some n -> Float.max baseline n | None -> baseline in
      current > ref_ +. (Float.abs ref_ *. frac)
    | Lower_is_worse ->
      let ref_ = match neutral with Some n -> Float.min baseline n | None -> baseline in
      current < ref_ -. (Float.abs ref_ *. frac)

let compare_json ?(threshold_pct = default_threshold_pct)
    ?(allow_degenerate_current = false) ~baseline ~current () =
  let base, base_deg = flatten_with_degenerate baseline in
  let cur, cur_deg = flatten_with_degenerate current in
  let under prefixes path =
    List.exists
      (fun d -> d = "" || path = d || String.starts_with ~prefix:(d ^ ".") path)
      prefixes
  in
  (* A path under a degenerate prefix in the *baseline* never had a real
     pin, so there is nothing to gate: skip. A path degenerate only in
     the *current* artifact is the opposite situation — an armed pin
     whose gate silently stopped measuring (e.g. a speedup baseline from
     a multicore runner, re-run on one core). That used to read as
     all-green; it is collected separately as [degenerate_current]. *)
  let base_degenerate path = under base_deg path in
  let cur_only_degenerate path = under cur_deg path && not (under base_deg path) in
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun (path, v) -> Hashtbl.replace cur_tbl path v) cur;
  let deltas, missing_tracked, skipped, degenerate_current =
    List.fold_left
      (fun (deltas, missing, skipped, deg_cur) (path, b) ->
        let tracked = tracked_of_path path in
        let skip = tracked <> None && base_degenerate path in
        let demoted = tracked <> None && (not skip) && cur_only_degenerate path in
        let deg_cur = if demoted then path :: deg_cur else deg_cur in
        match Hashtbl.find_opt cur_tbl path with
        | Some c ->
          let pct = change_pct ~baseline:b ~current:c in
          let regressed =
            match tracked with
            | None -> false
            | Some _ when skip || demoted -> false
            | Some (direction, neutral) ->
              regresses ~threshold_pct ~direction ~neutral ~baseline:b ~current:c
          in
          ( {
              path;
              baseline = b;
              current = c;
              change_pct = pct;
              direction = Option.map fst tracked;
              regressed;
            }
            :: deltas,
            missing,
            (if skip then path :: skipped else skipped),
            deg_cur )
        | None ->
          if tracked = None then (deltas, missing, skipped, deg_cur)
          else if skip then (deltas, missing, path :: skipped, deg_cur)
          else if demoted then (deltas, missing, skipped, deg_cur)
          else (deltas, path :: missing, skipped, deg_cur))
      ([], [], [], []) base
  in
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (path, _) -> Hashtbl.replace base_tbl path ()) base;
  let added =
    List.filter_map
      (fun (path, _) -> if Hashtbl.mem base_tbl path then None else Some path)
      cur
  in
  let degenerate_subtrees = List.sort_uniq String.compare (base_deg @ cur_deg) in
  {
    deltas = List.sort (fun a b -> compare a.path b.path) deltas;
    missing_tracked = List.rev missing_tracked;
    skipped = List.rev skipped;
    degenerate_current = List.rev degenerate_current;
    added;
    degenerate_subtrees;
    threshold_pct;
    allow_degenerate_current;
  }

let regressions report = List.filter (fun d -> d.regressed) report.deltas

let ok report =
  regressions report = []
  && report.missing_tracked = []
  && (report.allow_degenerate_current || report.degenerate_current = [])

let direction_to_json = function
  | None -> Json.Null
  | Some Higher_is_worse -> Json.String "higher_is_worse"
  | Some Lower_is_worse -> Json.String "lower_is_worse"

let delta_to_json d =
  Json.Assoc
    [
      ("path", Json.String d.path);
      ("baseline", Json.Float d.baseline);
      ("current", Json.Float d.current);
      ("change_pct", Json.Float d.change_pct);
      ("direction", direction_to_json d.direction);
      ("regressed", Json.Bool d.regressed);
    ]

let report_json report =
  Json.Assoc
    [
      ("ok", Json.Bool (ok report));
      ("threshold_pct", Json.Float report.threshold_pct);
      ("regressions", Json.List (List.map delta_to_json (regressions report)));
      ( "missing_tracked",
        Json.List (List.map (fun p -> Json.String p) report.missing_tracked) );
      ("skipped", Json.List (List.map (fun p -> Json.String p) report.skipped));
      ( "degenerate_current",
        Json.List (List.map (fun p -> Json.String p) report.degenerate_current) );
      ("allow_degenerate_current", Json.Bool report.allow_degenerate_current);
      ( "degenerate_subtrees",
        Json.List (List.map (fun p -> Json.String p) report.degenerate_subtrees) );
      ("added", Json.List (List.map (fun p -> Json.String p) report.added));
      ("deltas", Json.List (List.map delta_to_json report.deltas));
    ]

let pp_report ppf report =
  let skipped_tbl = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace skipped_tbl p ()) report.skipped;
  let deg_cur_tbl = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace deg_cur_tbl p ()) report.degenerate_current;
  let tracked = List.filter (fun d -> d.direction <> None) report.deltas in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "tracked metrics (threshold %.0f%%):@," report.threshold_pct;
  List.iter
    (fun d ->
      Format.fprintf ppf "  %-50s %10.4g -> %10.4g  %+7.1f%%  %s@," d.path d.baseline
        d.current d.change_pct
        (if d.regressed then "REGRESSED"
         else if Hashtbl.mem skipped_tbl d.path then "SKIPPED (degenerate)"
         else if Hashtbl.mem deg_cur_tbl d.path then
           if report.allow_degenerate_current then "DEGENERATE NOW [allowed]"
           else "DEGENERATE NOW"
         else "ok"))
    tracked;
  if tracked = [] then Format.fprintf ppf "  (none)@,";
  List.iter
    (fun path ->
      if not (List.exists (fun d -> d.path = path) report.deltas) then
        Format.fprintf ppf "  %-50s SKIPPED (degenerate)@," path)
    report.skipped;
  List.iter
    (fun path ->
      if not (List.exists (fun d -> d.path = path) report.deltas) then
        Format.fprintf ppf "  %-50s DEGENERATE NOW (pinned live in baseline)%s@,"
          path
          (if report.allow_degenerate_current then " [allowed]" else ""))
    report.degenerate_current;
  List.iter
    (fun path -> Format.fprintf ppf "  %-50s MISSING (tracked in baseline)@," path)
    report.missing_tracked;
  let info = List.filter (fun d -> d.direction = None) report.deltas in
  let shown = List.filteri (fun i _ -> i < 20) info in
  if shown <> [] then begin
    Format.fprintf ppf "informational:@,";
    List.iter
      (fun d ->
        Format.fprintf ppf "  %-50s %10.4g -> %10.4g  %+7.1f%%@," d.path d.baseline
          d.current d.change_pct)
      shown;
    let rest = List.length info - List.length shown in
    if rest > 0 then Format.fprintf ppf "  ... and %d more@," rest
  end;
  if report.added <> [] then
    Format.fprintf ppf "new metrics: %s@," (String.concat ", " report.added);
  (* The verdict line names every degenerate subtree whose tracked
     metrics were skipped: an all-green gate that silently measured
     nothing (e.g. a speedup sweep on a 1-core host) must say so. *)
  let degenerate_note =
    match report.degenerate_subtrees with
    | [] -> ""
    | subtrees ->
      let name = function "" -> "(root)" | p -> p in
      Printf.sprintf " — %d degenerate subtree%s skipped: %s"
        (List.length subtrees)
        (if List.length subtrees = 1 then "" else "s")
        (String.concat ", " (List.map name subtrees))
  in
  Format.fprintf ppf "verdict: %s%s@]"
    (if ok report then "OK" else "REGRESSED")
    degenerate_note
