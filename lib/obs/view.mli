(** Flat, analyzer-facing projection of one trace event.

    The live span builder and effort ledger used to consume events by
    serialising them to JSON on the bus and re-dissecting the JSON with
    linear [member] lookups — the dominant cost of live analysis. A
    view is the same information as a flat record of options, cheap to
    build directly from a typed event ([Lockss.Trace.to_view]) and
    cheap to read. [of_json] recovers a view from a serialised event so
    offline and live paths share one feeding code path.

    Only the fields the analyzers consult are represented; events carry
    more (attempt counters, content versions, fault descriptors) that
    the span builder and ledger ignore. *)

type t = {
  kind : string;
  time : float;
  poller : int option;
  voter : int option;
  claimed : int option;  (** claimed poller id on [invitation_dropped] *)
  peer : int option;
  from_ : int option;  (** sender on [effort_received] *)
  au : int option;
  poll_id : int option;
  inner_candidates : int option;
  votes : int option;
  seconds : float option;
  role : string option;
  phase : string option;
  outcome : string option;
}

(** A view with exactly the passed optional fields present. Optional
    arguments (rather than [make] + record update) so the hot caller —
    [Lockss.Trace.to_view], once per event under live analysis — pays a
    single record allocation. *)
val make :
  ?poller:int ->
  ?voter:int ->
  ?claimed:int ->
  ?peer:int ->
  ?from_:int ->
  ?au:int ->
  ?poll_id:int ->
  ?inner_candidates:int ->
  ?votes:int ->
  ?seconds:float ->
  ?role:string ->
  ?phase:string ->
  ?outcome:string ->
  kind:string ->
  time:float ->
  unit ->
  t

(** [of_json json] projects a serialised trace event; [None] when
    [json] has no ["kind"] string member. Missing ["t"] defaults to
    [0.], matching the JSON analyzers. *)
val of_json : Json.t -> t option
