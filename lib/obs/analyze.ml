module Duration = Repro_prelude.Duration
module Stats = Repro_prelude.Stats

type t = {
  span_builder : Span.t;
  ledger : Ledger.t;
  mutable lines : int;
  mutable malformed : int;
}

let create () =
  { span_builder = Span.create (); ledger = Ledger.create (); lines = 0; malformed = 0 }

let span_builder t = t.span_builder
let ledger t = t.ledger

let feed_view t view =
  Span.feed_view t.span_builder view;
  Ledger.feed_view t.ledger view

let feed t json =
  match View.of_json json with None -> () | Some view -> feed_view t view

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s

let feed_line t ~line s =
  t.lines <- t.lines + 1;
  if not (is_blank s) then begin
    match Json.of_string s with
    | Ok json -> feed t json
    | Error error ->
      t.malformed <- t.malformed + 1;
      Span.note_malformed t.span_builder ~line ~error
  end

let read_channel t ic =
  let rec loop line =
    match In_channel.input_line ic with
    | None -> ()
    | Some s ->
      feed_line t ~line s;
      loop (line + 1)
  in
  loop (t.lines + 1)

let read_file t path =
  match Trace_file.detect path with
  | Trace_file.Jsonl -> In_channel.with_open_text path (fun ic -> read_channel t ic)
  | Trace_file.Binary ->
    ignore
      (Trace_file.iter path ~f:(fun ~line result ->
           t.lines <- t.lines + 1;
           match result with
           | Ok json -> feed t json
           | Error error ->
             t.malformed <- t.malformed + 1;
             Span.note_malformed t.span_builder ~line ~error))

let lines t = t.lines
let anomalies t = Span.anomalies t.span_builder
let anomaly_count t = Span.anomaly_count t.span_builder

(* -- Latency distributions ---------------------------------------------- *)

type dist = {
  label : string;
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  max : float;
}

let dist_of label values =
  match values with
  | [] -> { label; count = 0; mean = nan; p50 = nan; p90 = nan; max = nan }
  | _ ->
    {
      label;
      count = List.length values;
      mean = Stats.mean values;
      p50 = Stats.percentile 50. values;
      p90 = Stats.percentile 90. values;
      max = List.fold_left Float.max neg_infinity values;
    }

let phase_extractors =
  [
    ("solicitation", Span.solicitation_duration);
    ("evaluation", Span.evaluation_duration);
    ("repair", Span.repair_duration);
    ( "first_vote",
      fun (s : Span.span) ->
        Option.map (fun at -> at -. s.Span.started_at) s.Span.first_vote_at );
    ("total", Span.total_duration);
  ]

let phase_latencies t =
  let spans = Span.spans t.span_builder in
  List.map
    (fun (label, extract) -> dist_of label (List.filter_map extract spans))
    phase_extractors

let histogram_buckets =
  [
    ("<1h", Duration.hour);
    ("1h-6h", 6. *. Duration.hour);
    ("6h-1d", Duration.of_days 1.);
    ("1d-3d", Duration.of_days 3.);
    ("3d-7d", Duration.of_days 7.);
    ("7d-14d", Duration.of_days 14.);
    ("14d-30d", Duration.of_days 30.);
  ]

let overflow_label = ">=30d"

let duration_histogram t =
  let durations = List.filter_map Span.total_duration (Span.spans t.span_builder) in
  let counts = Array.make (List.length histogram_buckets + 1) 0 in
  List.iter
    (fun d ->
      let rec place i = function
        | [] -> counts.(i) <- counts.(i) + 1
        | (_, bound) :: rest ->
          if d < bound then counts.(i) <- counts.(i) + 1 else place (i + 1) rest
      in
      place 0 histogram_buckets)
    durations;
  List.mapi (fun i (label, _) -> (label, counts.(i))) histogram_buckets
  @ [ (overflow_label, counts.(List.length histogram_buckets)) ]

(* -- Reports ------------------------------------------------------------ *)

type poll_counts = {
  total : int;
  concluded : int;
  success : int;
  inquorate : int;
  alarmed : int;
  abandoned : int;
  still_open : int;
}

let poll_counts t =
  let closed = Span.closed_spans t.span_builder in
  let still_open = List.length (Span.open_spans t.span_builder) in
  let count p = List.length (List.filter p closed) in
  let success = count (fun (s : Span.span) -> s.Span.outcome = Some Span.Success) in
  let inquorate = count (fun (s : Span.span) -> s.Span.outcome = Some Span.Inquorate) in
  let alarmed = count (fun (s : Span.span) -> s.Span.outcome = Some Span.Alarmed) in
  let abandoned =
    count (fun (s : Span.span) -> s.Span.outcome = None && s.Span.concluded_at = None)
  in
  {
    total = List.length closed + still_open;
    concluded = success + inquorate + alarmed;
    success;
    inquorate;
    alarmed;
    abandoned;
    still_open;
  }

let dist_to_json d =
  Json.Assoc
    [
      ("phase", Json.String d.label);
      ("count", Json.Int d.count);
      ("mean", Json.Float d.mean);
      ("p50", Json.Float d.p50);
      ("p90", Json.Float d.p90);
      ("max", Json.Float d.max);
    ]

let report_json t =
  let polls = poll_counts t in
  Json.Assoc
    [
      ("lines", Json.Int t.lines);
      ("events", Json.Int (Span.event_count t.span_builder));
      ("malformed_lines", Json.Int t.malformed);
      ( "polls",
        Json.Assoc
          [
            ("total", Json.Int polls.total);
            ("concluded", Json.Int polls.concluded);
            ("success", Json.Int polls.success);
            ("inquorate", Json.Int polls.inquorate);
            ("alarmed", Json.Int polls.alarmed);
            ("abandoned", Json.Int polls.abandoned);
            ("open", Json.Int polls.still_open);
          ] );
      ("phase_latency", Json.List (List.map dist_to_json (phase_latencies t)));
      ( "duration_histogram",
        Json.List
          (List.map
             (fun (label, count) ->
               Json.Assoc [ ("bucket", Json.String label); ("count", Json.Int count) ])
             (duration_histogram t)) );
      ("ledger", Ledger.to_json t.ledger);
      ("anomalies", Json.List (List.map Span.anomaly_to_json (anomalies t)));
      ( "informational",
        Json.Assoc
          [
            ("late_voter_events", Json.Int (Span.late_events t.span_builder));
            ("orphan_events", Json.Int (Span.orphan_events t.span_builder));
            ("open_spans", Json.Int polls.still_open);
          ] );
    ]

let max_printed_anomalies = 50

let pp_duration_cell ppf v =
  if Float.is_nan v then Format.pp_print_string ppf "-" else Duration.pp ppf v

let pp_report ppf t =
  let polls = poll_counts t in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "trace: %d lines, %d events, %d malformed@," t.lines
    (Span.event_count t.span_builder)
    t.malformed;
  Format.fprintf ppf
    "polls: %d spans — %d concluded (%d success, %d inquorate, %d alarmed), %d \
     abandoned, %d still open at end of trace@,"
    polls.total polls.concluded polls.success polls.inquorate polls.alarmed
    polls.abandoned polls.still_open;
  Format.fprintf ppf "@,per-phase latency:@,";
  Format.fprintf ppf "  %-13s %6s %10s %10s %10s %10s@," "phase" "n" "mean" "p50" "p90"
    "max";
  List.iter
    (fun d ->
      Format.fprintf ppf "  %-13s %6d %10s %10s %10s %10s@," d.label d.count
        (Format.asprintf "%a" pp_duration_cell d.mean)
        (Format.asprintf "%a" pp_duration_cell d.p50)
        (Format.asprintf "%a" pp_duration_cell d.p90)
        (Format.asprintf "%a" pp_duration_cell d.max))
    (phase_latencies t);
  let histogram = duration_histogram t in
  let peak = List.fold_left (fun acc (_, n) -> max acc n) 1 histogram in
  Format.fprintf ppf "@,poll duration histogram:@,";
  List.iter
    (fun (label, count) ->
      let bar = String.make (count * 40 / peak) '#' in
      Format.fprintf ppf "  %-8s %6d %s@," label count bar)
    histogram;
  Format.fprintf ppf "@,effort ledger:@,%a@," Ledger.pp t.ledger;
  Format.fprintf ppf
    "@,informational: %d late voter-side events, %d orphaned events, %d open spans@,"
    (Span.late_events t.span_builder)
    (Span.orphan_events t.span_builder)
    polls.still_open;
  (match anomalies t with
  | [] -> Format.fprintf ppf "anomalies: none@,"
  | list ->
    Format.fprintf ppf "anomalies: %d@," (List.length list);
    List.iteri
      (fun i a ->
        if i < max_printed_anomalies then Format.fprintf ppf "  %a@," Span.pp_anomaly a)
      list;
    let rest = List.length list - max_printed_anomalies in
    if rest > 0 then Format.fprintf ppf "  ... and %d more@," rest);
  Format.fprintf ppf "@]"
