(** Run-wide profiler: phase wall-clock, GC/allocation counters and
    per-domain utilisation, folded into a {!Registry} so one artifact
    answers "where did this run spend its time".

    The profiler is deliberately pull-based and cheap: {!phase} wraps a
    stage in two clock reads, {!sample_gc} is one [Gc.quick_stat], and
    the parallel runner calls {!note_domain} once per domain per [map].
    Nothing here touches simulated time or the RNG, so attaching a
    profiler never perturbs results. *)

(** A [Gc.quick_stat] projection; words are floats as reported by the
    runtime. *)
type gc = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

val gc_now : unit -> gc

(** [gc_delta ~before ~after] subtracts the cumulative counters;
    [heap_words]/[top_heap_words] are taken from [after]. *)
val gc_delta : before:gc -> after:gc -> gc

(** Minor + major - promoted: total words allocated. *)
val allocated_words : gc -> float

val gc_to_json : gc -> Json.t

type t

(** [create ?registry ?clock ()] — [registry] defaults to a fresh one;
    [clock] (seconds, monotonic preferred) defaults to
    {!Repro_prelude.Monotonic.now_s} and exists so tests can drive time
    by hand. *)
val create : ?registry:Registry.t -> ?clock:(unit -> float) -> unit -> t

val registry : t -> Registry.t

(** [phase t name f] runs [f] and adds its wall-clock to phase [name]
    (accumulating across calls), exception-safely. Also mirrored to the
    registry gauge [profile.phase.<name>_s]. *)
val phase : t -> string -> (unit -> 'a) -> 'a

(** [add_phase_time t name seconds] credits time measured externally. *)
val add_phase_time : t -> string -> float -> unit

(** Accumulated seconds for a phase; [0.] if never entered. *)
val phase_seconds : t -> string -> float

(** [sample_gc t] snapshots [Gc.quick_stat] into registry gauges
    ([gc.minor_words], [gc.major_words], [gc.promoted_words],
    [gc.allocated_words], [gc.heap_words], [gc.top_heap_words]) and
    counters ([gc.minor_collections], [gc.major_collections],
    [gc.compactions] — set to the cumulative runtime values). *)
val sample_gc : t -> unit

(** [note_domain t ~domain ~busy_s ~tasks] accumulates utilisation for
    one worker slot (0 is the calling domain; helpers keep their pool
    slot for life, so a slot's history is one physical domain's). The
    optional lanes record what the slot's GC did while busy: [cpu_s] is
    thread CPU seconds (wall minus cpu ≈ time lost to waiting and to
    stop-the-world collection), [minor_words] is words allocated in the
    slot's minor heap and the collection counts are the slot's share of
    minor/major cycles. All default to zero for callers that only track
    wall-clock. Call from the coordinating domain only — the profiler is
    not thread-safe. *)
val note_domain :
  t ->
  domain:int ->
  ?cpu_s:float ->
  ?minor_words:float ->
  ?minor_collections:int ->
  ?major_collections:int ->
  busy_s:float ->
  tasks:int ->
  unit ->
  unit

type domain_stat = {
  domain : int;
  busy_s : float;
  cpu_s : float;
  tasks : int;
  minor_words : float;
  minor_collections : int;
  major_collections : int;
}

(** Sorted by domain id. *)
val domain_stats : t -> domain_stat list

(** Phases in first-entered order, domains, last GC sample and the full
    registry snapshot, as one JSON object. *)
val snapshot_json : t -> Json.t

val pp : Format.formatter -> t -> unit
