type format = Csv | Jsonl

let format_of_path path =
  let lower = String.lowercase_ascii path in
  let has_suffix suffix = Filename.check_suffix lower suffix in
  if has_suffix ".jsonl" || has_suffix ".json" then Jsonl else Csv

type t = { format : format; columns : string list; oc : out_channel }

let csv_cell = function
  | Json.Null -> ""
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> if Float.is_finite f then Printf.sprintf "%.12g" f else "nan"
  | Json.String s ->
    if String.exists (function ',' | '"' | '\n' -> true | _ -> false) s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  | Json.List _ | Json.Assoc _ -> invalid_arg "Series.append: nested value in CSV cell"

let write_csv_row oc cells =
  output_string oc (String.concat "," cells);
  output_char oc '\n'

let create ~format ~columns ?(header = true) oc =
  (match columns with [] -> invalid_arg "Series.create: no columns" | _ -> ());
  if format = Csv && header then
    write_csv_row oc (List.map (fun c -> csv_cell (Json.String c)) columns);
  { format; columns; oc }

let append t values =
  if List.length values <> List.length t.columns then
    invalid_arg "Series.append: value count does not match columns";
  (match t.format with
  | Csv -> write_csv_row t.oc (List.map csv_cell values)
  | Jsonl ->
    output_string t.oc (Json.to_string (Json.Assoc (List.combine t.columns values)));
    output_char t.oc '\n');
  flush t.oc

let columns t = t.columns
