type format = Csv | Jsonl

let format_of_path path =
  let lower = String.lowercase_ascii path in
  let has_suffix suffix = Filename.check_suffix lower suffix in
  if has_suffix ".jsonl" || has_suffix ".json" then Jsonl else Csv

type t = { format : format; columns : string list; sink : Sink.t; row : Buffer.t }

let csv_cell = function
  | Json.Null -> ""
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> if Float.is_finite f then Printf.sprintf "%.12g" f else "nan"
  | Json.String s ->
    if String.exists (function ',' | '"' | '\n' -> true | _ -> false) s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  | Json.List _ | Json.Assoc _ -> invalid_arg "Series.append: nested value in CSV cell"

let add_csv_row buf cells =
  List.iteri
    (fun i cell ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf cell)
    cells;
  Buffer.add_char buf '\n'

let create ~format ~columns ?(header = true) sink =
  (match columns with [] -> invalid_arg "Series.create: no columns" | _ -> ());
  let t = { format; columns; sink; row = Buffer.create 256 } in
  if format = Csv && header then begin
    add_csv_row t.row (List.map (fun c -> csv_cell (Json.String c)) columns);
    Sink.write_buffer sink t.row;
    Buffer.clear t.row
  end;
  t

let append t ?now values =
  if List.length values <> List.length t.columns then
    invalid_arg "Series.append: value count does not match columns";
  Buffer.clear t.row;
  (match t.format with
  | Csv -> add_csv_row t.row (List.map csv_cell values)
  | Jsonl ->
    Json.write t.row (Json.Assoc (List.combine t.columns values));
    Buffer.add_char t.row '\n');
  Sink.write_buffer t.sink ?now t.row;
  Buffer.clear t.row

let flush t = Sink.flush t.sink
let close t = Sink.close t.sink
let columns t = t.columns
