(** Bench regression gate: diff a bench JSON artifact against a pinned
    baseline and fail on regressions of tracked ratios.

    Bench artifacts mix machine-dependent absolutes (mean seconds) with
    machine-independent ratios ([overhead], [speedup]). Only the ratios
    are {e tracked}: an [.overhead] leaf regresses when it grows past
    the threshold, a [.speedup] leaf when it shrinks past it. Absolute
    leaves are still diffed and reported, but informationally — CI
    machines are too noisy to gate wall-clock.

    JSON is flattened to dotted paths. Lists of objects are keyed by
    their ["variant"], ["target"], ["phase"] or ["bucket"] member when
    present (so reordering a bench's variant list does not shuffle the
    diff), by index otherwise. A tracked path present in the baseline
    but missing from the current artifact is itself a failure: silently
    dropping a gated metric must not pass CI. *)

type direction = Higher_is_worse | Lower_is_worse

type delta = {
  path : string;
  baseline : float;
  current : float;
  change_pct : float;  (** [nan] when the baseline is 0 or not finite *)
  direction : direction option;  (** [None] = informational *)
  regressed : bool;
}

type report = {
  deltas : delta list;  (** every shared numeric path, sorted *)
  missing_tracked : string list;  (** tracked in baseline, absent now *)
  added : string list;  (** numeric in current, absent from baseline *)
  threshold_pct : float;
}

(** [flatten json] is every numeric leaf as [(dotted-path, value)]. *)
val flatten : Json.t -> (string * float) list

(** Tracked direction for a flattened path, from its last segment. *)
val direction_of_path : string -> direction option

(** [compare_json ?threshold_pct ~baseline ~current ()] — threshold
    defaults to 25 (percent). *)
val compare_json :
  ?threshold_pct:float -> baseline:Json.t -> current:Json.t -> unit -> report

val regressions : report -> delta list

(** No regressed deltas and no missing tracked paths. *)
val ok : report -> bool

val report_json : report -> Json.t

(** Human-readable table; one line per tracked delta plus failures. *)
val pp_report : Format.formatter -> report -> unit
