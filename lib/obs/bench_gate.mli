(** Bench regression gate: diff a bench JSON artifact against a pinned
    baseline and fail on regressions of tracked ratios.

    Bench artifacts mix machine-dependent absolutes (mean seconds) with
    machine-independent ratios ([overhead], [speedup], [slowdown]).
    Only machine-independent leaves are {e tracked}, and each tracked
    metric carries an explicit bad direction: [overhead], [slowdown]
    and [words_per_event] (allocation per simulated event — the
    simulation is deterministic, so this is as portable as a ratio)
    fail when they grow, [speedup] when it shrinks. Absolute leaves are
    still diffed and reported, but informationally — CI machines are
    too noisy to gate wall-clock.

    Ratio metrics with a natural no-effect point also carry a {e
    neutral} (1.0 for [overhead] and [slowdown]). The gate's reference
    is the baseline slackened to the neutral when the baseline landed on
    the better side of it: a chaos run whose baseline overhead was a
    lucky 0.69 (faults drop messages, so the faulted run was faster)
    does not fail CI when a later run drifts back to 1.0 — only
    movement {e past} the neutral in the bad direction does. [speedup]
    has no neutral on purpose: collapsing from 2x to 1x is a genuine
    loss of parallelism and gates against the baseline itself.

    JSON is flattened to dotted paths. Lists of objects are keyed by
    their ["variant"], ["target"], ["phase"], ["bucket"] or ["name"]
    member when present (so reordering a bench's variant list does not
    shuffle the diff), by index otherwise. A tracked path present in
    the baseline but missing from the current artifact is itself a
    failure: silently dropping a gated metric must not pass CI.

    An object containing [("degenerate", true)] marks its whole subtree
    degenerate: the environment could not exercise what the tracked
    metrics under it measure (e.g. a parallel-speedup sweep on a 1-core
    host). The two artifacts are treated asymmetrically. A tracked path
    degenerate in the {e baseline} never had a real pin, so it is
    excluded from the regression and missing-tracked checks and surfaced
    in {!type-report}[.skipped]. A tracked path degenerate only in the
    {e current} artifact is the reverse — a live pin whose gate stopped
    measuring (a speedup baseline pinned on a multicore runner, re-run
    on one core would otherwise pass all-green while gating nothing) —
    and is a distinct failure, collected in
    {!type-report}[.degenerate_current]; pass
    [~allow_degenerate_current:true] to demote it to a warning when the
    environment change is intentional. *)

type direction = Higher_is_worse | Lower_is_worse

type delta = {
  path : string;
  baseline : float;
  current : float;
  change_pct : float;  (** [nan] when the baseline is 0 or not finite *)
  direction : direction option;  (** [None] = informational *)
  regressed : bool;
}

type report = {
  deltas : delta list;  (** every shared numeric path, sorted *)
  missing_tracked : string list;  (** tracked in baseline, absent now *)
  skipped : string list;
      (** tracked, but under a degenerate prefix in the baseline *)
  degenerate_current : string list;
      (** tracked and pinned live in the baseline, but under a
          degenerate prefix only in the current artifact — fails {!ok}
          unless [allow_degenerate_current] *)
  added : string list;  (** numeric in current, absent from baseline *)
  degenerate_subtrees : string list;
      (** sorted, deduped prefixes marked [degenerate:true] in either
          artifact; the document root renders as ["(root)"]. The
          verdict line enumerates them so an all-green gate that
          skipped its tracked metrics says so. *)
  threshold_pct : float;
  allow_degenerate_current : bool;
}

(** [flatten json] is every numeric leaf as [(dotted-path, value)]. *)
val flatten : Json.t -> (string * float) list

(** Bad direction and neutral point for a flattened path, from its last
    segment; [None] when the path is informational. *)
val tracked_of_path : string -> (direction * float option) option

(** Tracked direction for a flattened path, from its last segment. *)
val direction_of_path : string -> direction option

(** [compare_json ?threshold_pct ?allow_degenerate_current ~baseline
    ~current ()] — threshold defaults to 25 (percent);
    [allow_degenerate_current] (default [false]) demotes
    {!type-report}[.degenerate_current] entries from failures to
    warnings. *)
val compare_json :
  ?threshold_pct:float ->
  ?allow_degenerate_current:bool ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  report

val regressions : report -> delta list

(** No regressed deltas, no missing tracked paths, and — unless
    [allow_degenerate_current] — no tracked path that went degenerate
    while its baseline pin was live. *)
val ok : report -> bool

val report_json : report -> Json.t

(** Human-readable table; one line per tracked delta plus failures. *)
val pp_report : Format.formatter -> report -> unit
