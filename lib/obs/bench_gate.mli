(** Bench regression gate: diff a bench JSON artifact against a pinned
    baseline and fail on regressions of tracked ratios.

    Bench artifacts mix machine-dependent absolutes (mean seconds) with
    machine-independent ratios ([overhead], [speedup], [slowdown]).
    Only the ratios are {e tracked}, and each tracked metric carries an
    explicit bad direction: [overhead] and [slowdown] fail when they
    grow, [speedup] when it shrinks. Absolute leaves are still diffed
    and reported, but informationally — CI machines are too noisy to
    gate wall-clock.

    Ratio metrics with a natural no-effect point also carry a {e
    neutral} (1.0 for [overhead] and [slowdown]). The gate's reference
    is the baseline slackened to the neutral when the baseline landed on
    the better side of it: a chaos run whose baseline overhead was a
    lucky 0.69 (faults drop messages, so the faulted run was faster)
    does not fail CI when a later run drifts back to 1.0 — only
    movement {e past} the neutral in the bad direction does. [speedup]
    has no neutral on purpose: collapsing from 2x to 1x is a genuine
    loss of parallelism and gates against the baseline itself.

    JSON is flattened to dotted paths. Lists of objects are keyed by
    their ["variant"], ["target"], ["phase"], ["bucket"] or ["name"]
    member when present (so reordering a bench's variant list does not
    shuffle the diff), by index otherwise. A tracked path present in
    the baseline but missing from the current artifact is itself a
    failure: silently dropping a gated metric must not pass CI.

    An object containing [("degenerate", true)] marks its whole subtree
    degenerate: the environment could not exercise what the tracked
    metrics under it measure (e.g. a parallel-speedup sweep on a 1-core
    host). Tracked paths under a degenerate prefix — in either the
    baseline or the current artifact — are excluded from both the
    regression check and the missing-tracked check, and surfaced in
    {!type-report}[.skipped] instead. *)

type direction = Higher_is_worse | Lower_is_worse

type delta = {
  path : string;
  baseline : float;
  current : float;
  change_pct : float;  (** [nan] when the baseline is 0 or not finite *)
  direction : direction option;  (** [None] = informational *)
  regressed : bool;
}

type report = {
  deltas : delta list;  (** every shared numeric path, sorted *)
  missing_tracked : string list;  (** tracked in baseline, absent now *)
  skipped : string list;  (** tracked, but under a degenerate prefix *)
  added : string list;  (** numeric in current, absent from baseline *)
  degenerate_subtrees : string list;
      (** sorted, deduped prefixes marked [degenerate:true] in either
          artifact; the document root renders as ["(root)"]. The
          verdict line enumerates them so an all-green gate that
          skipped its tracked metrics says so. *)
  threshold_pct : float;
}

(** [flatten json] is every numeric leaf as [(dotted-path, value)]. *)
val flatten : Json.t -> (string * float) list

(** Bad direction and neutral point for a flattened path, from its last
    segment; [None] when the path is informational. *)
val tracked_of_path : string -> (direction * float option) option

(** Tracked direction for a flattened path, from its last segment. *)
val direction_of_path : string -> direction option

(** [compare_json ?threshold_pct ~baseline ~current ()] — threshold
    defaults to 25 (percent). *)
val compare_json :
  ?threshold_pct:float -> baseline:Json.t -> current:Json.t -> unit -> report

val regressions : report -> delta list

(** No regressed deltas and no missing tracked paths. *)
val ok : report -> bool

val report_json : report -> Json.t

(** Human-readable table; one line per tracked delta plus failures. *)
val pp_report : Format.formatter -> report -> unit
