(** Buffered byte sink for trace and metrics output.

    Observability output used to [flush] the underlying channel after
    every event, which cost ~9x wall-clock on the [obs] bench. A sink
    instead accumulates bytes in a {!Buffer.t} and hands them to the
    channel only when

    - the buffer reaches [buffer_bytes] (size bound), or
    - a write carries a simulation time [?now] at least
      [flush_interval] past the previous time-driven flush (time
      bound — keyed on {e simulated} time so behaviour stays
      deterministic and free of wall-clock reads), or
    - {!flush} or {!close} is called explicitly.

    Threshold flushes move bytes into the channel's own buffer (cheap);
    {!flush} and {!close} additionally flush the channel itself, so
    after either the bytes are visible to other processes. {!with_file}
    guarantees close-on-exception via [Fun.protect], which is what makes
    a crashed run keep its trace up to the last completed flush. *)

type t

(** [of_channel ?buffer_bytes ?flush_interval ?close_channel oc] wraps an
    existing channel. [close_channel] (default [false]) transfers
    ownership: {!close} then also closes [oc]. *)
val of_channel :
  ?buffer_bytes:int -> ?flush_interval:float -> ?close_channel:bool -> out_channel -> t

(** [open_file ?buffer_bytes ?flush_interval ?append path] opens [path]
    in binary mode (truncating unless [append] is [true]) and owns the
    resulting channel. *)
val open_file :
  ?buffer_bytes:int -> ?flush_interval:float -> ?append:bool -> string -> t

(** [write t ?now s] appends [s]. Raises [Invalid_argument] after
    {!close}. *)
val write : t -> ?now:float -> string -> unit

(** [write_line t ?now s] appends [s] and a newline. *)
val write_line : t -> ?now:float -> string -> unit

val write_char : t -> ?now:float -> char -> unit

(** [write_buffer t ?now b] appends the contents of [b] (which is left
    untouched) without going through an intermediate string. *)
val write_buffer : t -> ?now:float -> Buffer.t -> unit

(** Bytes accepted but not yet handed to the channel. *)
val pending : t -> int

(** Bytes handed to the channel so far (excludes {!pending}). *)
val written : t -> int

(** Force all pending bytes out, then flush the channel. *)
val flush : t -> unit

(** Flush, then release the channel if owned. Idempotent; writes after
    close raise. *)
val close : t -> unit

val closed : t -> bool

(** [with_file ?buffer_bytes ?flush_interval ?append path f] opens,
    runs [f], and closes even when [f] raises ([Fun.protect]). *)
val with_file :
  ?buffer_bytes:int ->
  ?flush_interval:float ->
  ?append:bool ->
  string ->
  (t -> 'a) ->
  'a
