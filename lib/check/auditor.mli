(** The runtime auditor: one object that owns a set of live invariant
    instances, feeds them every observed protocol event, and collects
    the resulting violations.

    Two modes share the same core:
    - {e live} — {!attach} the auditor to a simulation's trace bus; it
      sees every event (including [Debug] ones, below the sink's
      severity filter) and re-emits each violation onto the bus as a
      {!Lockss.Trace.Invariant_violated} event so sinks record it.
    - {e offline} — replay a JSONL trace through {!feed_json} and call
      {!finish} at end of file.

    Feeding is re-entrancy safe: [Invariant_violated] events are
    ignored on input, so the live re-emission cannot loop. *)

type t

(** [create ?params ?only ()] instantiates every registry invariant
    that is enabled under [params], optionally restricted to the ids in
    [only]. *)
val create : ?params:Invariant.params -> ?only:string list -> unit -> t

val params : t -> Invariant.params

(** Feed one event, in stream order. Also forwards the event to an
    internal {!Obs.Analyze} so {!finish} can reconcile the ledger. *)
val feed : t -> time:float -> Lockss.Trace.event -> unit

(** Parse one JSONL object and feed it. A malformed line is itself a
    violation (invariant ["trace-format"]) and is returned as [Error]. *)
val feed_json : t -> Obs.Json.t -> (unit, string) result

(** Run every invariant's end-of-stream check. Pass the run's metrics
    [summary] when available (live runs) to enable the conservation
    invariant; offline audits omit it. Idempotent. *)
val finish : ?metrics:Lockss.Metrics.summary -> t -> unit

(** Subscribe to a trace bus: every event is fed, and every violation
    is re-emitted as an {!Lockss.Trace.Invariant_violated} event. *)
val attach : t -> Lockss.Trace.t -> unit

(** Violations observed so far, oldest first. *)
val violations : t -> Invariant.violation list

val violation_count : t -> int

(** Machine-readable report:
    [{"violations": n; "checked": [ids]; "detail": [...]}]. *)
val report_json : t -> Obs.Json.t

(** Human-readable report; the last line is always
    ["violations: <n>"], greppable by smoke tests. *)
val pp_report : Format.formatter -> t -> unit
