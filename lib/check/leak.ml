module Engine = Narses.Engine
module Peer = Lockss.Peer

type expected = {
  mutable ack : int;
  mutable vote : int;
  mutable proof : int;
  mutable receipt : int;
  mutable repair : int;
}

let violation ~now ?peer ?au ?poll_id ~invariant detail =
  {
    Invariant.invariant;
    severity = Invariant.Error;
    time = now;
    peer;
    au;
    poll_id;
    detail;
  }

let audit ~engine ~(ctx : Peer.ctx) =
  let now = Engine.now engine in
  let expected = { ack = 0; vote = 0; proof = 0; receipt = 0; repair = 0 } in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let require_live ~peer ~au ~poll_id ~what id =
    if not (Engine.is_live id) then
      add
        (violation ~now ~peer ~au ~poll_id ~invariant:"leak-dead-reference"
           (Printf.sprintf
              "peer %d au %d poll %d holds a dead %s event: a timer fired or was \
               cancelled without its owner being updated"
              peer au poll_id what))
  in
  Array.iter
    (fun (peer : Peer.t) ->
      (* Poller side: candidate statuses and the repair timer. *)
      Array.iter
        (fun (st : Peer.au_state) ->
          match st.Peer.current_poll with
          | None -> ()
          | Some poll ->
            let au = st.Peer.au and poll_id = poll.Peer.poll_id in
            List.iter
              (fun (cand : Peer.candidate) ->
                match cand.Peer.status with
                | Peer.Awaiting_ack id ->
                  expected.ack <- expected.ack + 1;
                  require_live ~peer:peer.Peer.identity ~au ~poll_id
                    ~what:"ack_timeout" id
                | Peer.Awaiting_vote id ->
                  expected.vote <- expected.vote + 1;
                  require_live ~peer:peer.Peer.identity ~au ~poll_id
                    ~what:"vote_timeout" id
                | Peer.Not_invited | Peer.Voted | Peer.Failed -> ())
              poll.Peer.candidates;
            (match poll.Peer.repair_timer with
            | Some id ->
              expected.repair <- expected.repair + 1;
              require_live ~peer:peer.Peer.identity ~au ~poll_id
                ~what:"repair_timeout" id
            | None -> ()))
        peer.Peer.aus;
      (* Voter side: session states. *)
      Hashtbl.iter
        (fun (_poller, au, poll_id) (session : Peer.voter_session) ->
          match session.Peer.vs_state with
          | Peer.Awaiting_proof id ->
            expected.proof <- expected.proof + 1;
            require_live ~peer:peer.Peer.identity ~au ~poll_id ~what:"proof_timeout" id
          | Peer.Voted_waiting_receipt id ->
            expected.receipt <- expected.receipt + 1;
            require_live ~peer:peer.Peer.identity ~au ~poll_id
              ~what:"receipt_timeout" id
          | Peer.Computing -> ()
          | Peer.Closed ->
            add
              (violation ~now ~peer:peer.Peer.identity ~au ~poll_id
                 ~invariant:"leak-closed-session"
                 (Printf.sprintf
                    "peer %d au %d poll %d: closed voter session still in the \
                     session table"
                    peer.Peer.identity au poll_id)))
        peer.Peer.voter_sessions)
    ctx.Peer.peers;
  let check_class name expected_count =
    match List.assoc_opt name (Engine.live_by_class engine) with
    | None ->
      (* The class was never registered — nothing can have been scheduled
         under it, so the expectation must be zero. *)
      if expected_count <> 0 then
        add
          (violation ~now ~invariant:"leak-timer-count"
             (Printf.sprintf "%s: %d owners but the class was never registered" name
                expected_count))
    | Some live ->
      if live <> expected_count then
        add
          (violation ~now ~invariant:"leak-timer-count"
             (Printf.sprintf
                "%s: %d live events in the engine but %d state-machine owners \
                 (difference %+d leaked)"
                name live expected_count (live - expected_count)))
  in
  check_class "ack_timeout" expected.ack;
  check_class "vote_timeout" expected.vote;
  check_class "proof_timeout" expected.proof;
  check_class "receipt_timeout" expected.receipt;
  check_class "repair_timeout" expected.repair;
  List.rev !violations
