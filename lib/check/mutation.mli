(** Seeded trace mutations — the self-test half of the audit layer.

    Each mutation deterministically rewrites a captured event stream so
    that exactly one invariant is violated (its [target]), proving both
    that the check fires on real breakage and that the others stay
    quiet. No randomness: every mutation picks the {e first} suitable
    site in stream order, so a given trace always mutates the same
    way. *)

type t = {
  id : string;  (** CLI name, e.g. ["refractory-bypass"] *)
  doc : string;
  target : string;  (** the {!Invariant.t} id this mutation must trip *)
}

(** The five mutations: ["refractory-bypass"], ["effort-shortfall"],
    ["grade-jump"], ["phantom-voter"], ["quorum-breach"]. *)
val all : t list

val find : string -> t option

(** [apply ~params ~id events] rewrites the time-ordered trace.
    [Error _] when [id] is unknown or the trace holds no suitable site
    (e.g. a trace with no completed vote cannot host
    ["effort-shortfall"]). *)
val apply :
  params:Invariant.params ->
  id:string ->
  (float * Lockss.Trace.event) list ->
  ((float * Lockss.Trace.event) list, string) result
