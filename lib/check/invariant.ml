module Trace = Lockss.Trace
module Grade = Lockss.Grade
module Config = Lockss.Config
module Metrics = Lockss.Metrics
module Duration = Repro_prelude.Duration

type severity = Warning | Error

let severity_to_string = function Warning -> "warning" | Error -> "error"

type params = {
  refractory_period : float;
  quorum : int;
  decay_period : float;
  admission_control : bool;
  introductions : bool;
  effort_balancing : bool;
  tolerance : float;
}

let default_params =
  {
    refractory_period = Config.default.Config.refractory_period;
    quorum = Config.default.Config.quorum;
    decay_period = Config.default.Config.grade_decay_period;
    admission_control = Config.default.Config.admission_control_enabled;
    introductions = Config.default.Config.introductions_enabled;
    effort_balancing = Config.default.Config.effort_balancing_enabled;
    tolerance = 1e-6;
  }

let params_of_config (cfg : Config.t) =
  {
    refractory_period = cfg.Config.refractory_period;
    quorum = cfg.Config.quorum;
    decay_period = cfg.Config.grade_decay_period;
    admission_control = cfg.Config.admission_control_enabled;
    introductions = cfg.Config.introductions_enabled;
    effort_balancing = cfg.Config.effort_balancing_enabled;
    tolerance = 1e-6;
  }

type violation = {
  invariant : string;
  severity : severity;
  time : float;
  peer : Lockss.Ids.Identity.t option;
  au : Lockss.Ids.Au_id.t option;
  poll_id : int option;
  detail : string;
}

let violation_to_json v =
  let opt name = function None -> [] | Some i -> [ (name, Obs.Json.Int i) ] in
  Obs.Json.Assoc
    ([
       ("invariant", Obs.Json.String v.invariant);
       ("severity", Obs.Json.String (severity_to_string v.severity));
       ("t", Obs.Json.Float v.time);
     ]
    @ opt "peer" v.peer @ opt "au" v.au @ opt "poll_id" v.poll_id
    @ [ ("detail", Obs.Json.String v.detail) ])

let pp_violation ppf v =
  Format.fprintf ppf "[%a] %s (%s)" Duration.pp v.time v.invariant
    (severity_to_string v.severity);
  (match v.poll_id with Some id -> Format.fprintf ppf " poll %d" id | None -> ());
  (match v.peer with Some p -> Format.fprintf ppf " peer %d" p | None -> ());
  (match v.au with Some a -> Format.fprintf ppf " au %d" a | None -> ());
  Format.fprintf ppf ": %s" v.detail

type context = { ledger : Obs.Ledger.t; metrics : Metrics.summary option }

type instance = {
  on_event : time:float -> Trace.event -> unit;
  at_end : time:float -> context -> unit;
}

type t = {
  id : string;
  severity : severity;
  doc : string;
  enabled : params -> bool;
  instantiate : params -> emit:(violation -> unit) -> instance;
}

let nop_end ~time:_ _ = ()

(* -- effort-balance ------------------------------------------------------

   The paper's effort-sizing rule: at every point where a voter has
   received a provable-effort proof from a poller (the introductory
   receipt, the remaining receipt) and when it commits its own vote, the
   requester's proven investment must cover everything the supplier has
   spent on that poll so far. Keyed per (voter, poller, au, poll_id);
   only loyal Admission/Voting charges count (Repair serving happens
   after the vote and is compensated by the repair economics, not by
   solicitation proofs). *)

let effort_balance =
  {
    id = "effort-balance";
    severity = Error;
    doc =
      "requester-invests-more: at each proof receipt and at vote time, effort \
       proven by the poller covers the voter's spend on that poll";
    enabled = (fun p -> p.effort_balancing);
    instantiate =
      (fun params ~emit ->
        let accounts : (int * int * int * int, float ref * float ref) Hashtbl.t =
          Hashtbl.create 256
        in
        let account key =
          match Hashtbl.find_opt accounts key with
          | Some a -> a
          | None ->
            let a = (ref 0., ref 0.) in
            Hashtbl.replace accounts key a;
            a
        in
        let check ~time ((voter, poller, au, poll_id) as key) =
          let charged, received = account key in
          if !charged -. !received > params.tolerance *. Float.max 1. !received then
            emit
              {
                invariant = "effort-balance";
                severity = Error;
                time;
                peer = Some voter;
                au = Some au;
                poll_id = Some poll_id;
                detail =
                  Printf.sprintf
                    "voter %d spent %.3fs on poll %d of poller %d but only %.3fs was \
                     proven to it"
                    voter !charged poll_id poller !received;
              }
        in
        let on_event ~time event =
          match event with
          | Trace.Effort_charged
              {
                peer;
                role = Trace.Loyal;
                phase = Trace.Admission | Trace.Voting;
                poller = Some poller;
                au = Some au;
                poll_id = Some poll_id;
                seconds;
              }
            when peer <> poller ->
            let charged, _ = account (peer, poller, au, poll_id) in
            charged := !charged +. seconds
          | Trace.Effort_received
              { peer; from_; phase = Trace.Solicitation; au; poll_id; seconds } ->
            let key = (peer, from_, au, poll_id) in
            let _, received = account key in
            received := !received +. seconds;
            check ~time key
          | Trace.Vote_sent { voter; poller; au; poll_id } ->
            check ~time (voter, poller, au, poll_id)
          | _ -> ()
        in
        { on_event; at_end = nop_end });
  }

(* -- refractory ----------------------------------------------------------

   Self-clocked admission: a supplier admits at most one invitation —
   introduced, known or unknown — per refractory period. The check keys
   on (voter, au) because the admission filter is per peer per AU. *)

let refractory =
  {
    id = "refractory";
    severity = Error;
    doc =
      "self-clocking: no two admissions on one supplier (per AU) closer than the \
       refractory period, introductions included";
    enabled = (fun p -> p.admission_control);
    instantiate =
      (fun params ~emit ->
        let last : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
        let eps = 1e-6 *. params.refractory_period in
        let on_event ~time event =
          match event with
          | Trace.Invitation_admitted { voter; au; poll_id; path; _ } ->
            (match Hashtbl.find_opt last (voter, au) with
            | Some prev when time -. prev < params.refractory_period -. eps ->
              emit
                {
                  invariant = "refractory";
                  severity = Error;
                  time;
                  peer = Some voter;
                  au = Some au;
                  poll_id;
                  detail =
                    Printf.sprintf
                      "admissions %s apart (< refractory %s, path %s)"
                      (Format.asprintf "%a" Duration.pp (time -. prev))
                      (Format.asprintf "%a" Duration.pp params.refractory_period)
                      (Trace.admission_path_to_string path);
                }
            | _ -> ());
            Hashtbl.replace last (voter, au) time
          | _ -> ()
        in
        { on_event; at_end = nop_end });
  }

(* -- grade-decay ---------------------------------------------------------

   Between touches of a known-peers entry, the effective grade may only
   decay toward Debt. Observations are the grades the admission filter
   reports ([Invitation_admitted] with a [known_*] path, on the shared
   per-(owner, au) table). Any traced event that legitimately rewrites
   the entry — the owner concluding a poll in which the subject voted
   (raise), or the owner sending the subject a vote (lower + clock
   reset) — resets the model baseline for that key, so the check is
   conservative: it only fires when an un-touched entry climbs. *)

let grade_decay =
  {
    id = "grade-decay";
    severity = Error;
    doc =
      "grades decay monotonically toward debt between touches of a known-peers \
       entry";
    enabled = (fun _ -> true);
    instantiate =
      (fun params ~emit ->
        (* (owner, au, subject) -> last untouched observation *)
        let obs : (int * int * int, float * Grade.t) Hashtbl.t = Hashtbl.create 256 in
        (* (poller, au, poll_id) -> voters seen, for conclude raises *)
        let votes : (int * int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
        let max_steps = 8 in
        let steps_between t0 t1 =
          if t1 <= t0 then 0
          else begin
            let raw = (t1 -. t0) /. params.decay_period in
            if raw >= float_of_int max_steps then max_steps else int_of_float raw
          end
        in
        let grade_of_path = function
          | Trace.Admitted_known g -> Some g
          | Trace.Admitted_introduced | Trace.Admitted_unknown -> None
        in
        let on_event ~time event =
          match event with
          | Trace.Invitation_admitted { voter; claimed; au; path; poll_id } ->
            (match grade_of_path path with
            | None -> ()
            | Some g ->
              let key = (voter, au, claimed) in
              (match Hashtbl.find_opt obs key with
              | Some (t0, g0) ->
                let allowed = Grade.decayed g0 ~steps:(steps_between t0 time) in
                if Grade.rank g > Grade.rank allowed then
                  emit
                    {
                      invariant = "grade-decay";
                      severity = Error;
                      time;
                      peer = Some voter;
                      au = Some au;
                      poll_id;
                      detail =
                        Printf.sprintf
                          "peer %d's grade at supplier %d rose from %s (at %s) to %s \
                           without a touch"
                          claimed voter
                          (Format.asprintf "%a" Grade.pp g0)
                          (Format.asprintf "%a" Duration.pp t0)
                          (Format.asprintf "%a" Grade.pp g);
                    }
              | None -> ());
              Hashtbl.replace obs key (time, g))
          | Trace.Vote_sent { voter; poller; au; poll_id } ->
            (* Join for later conclude raises at the poller... *)
            let vs =
              match Hashtbl.find_opt votes (poller, au, poll_id) with
              | Some vs -> vs
              | None ->
                let vs = ref [] in
                Hashtbl.replace votes (poller, au, poll_id) vs;
                vs
            in
            vs := voter :: !vs;
            (* ...and the voter lowers the poller in its own table now. *)
            Hashtbl.remove obs (voter, au, poller)
          | Trace.Poll_concluded { poller; au; poll_id; _ } -> (
            match Hashtbl.find_opt votes (poller, au, poll_id) with
            | None -> ()
            | Some vs ->
              List.iter (fun v -> Hashtbl.remove obs (poller, au, v)) !vs;
              Hashtbl.remove votes (poller, au, poll_id))
          | _ -> ()
        in
        { on_event; at_end = nop_end });
  }

(* -- sampling ------------------------------------------------------------

   The inner circle is a uniform sample of the poller's reference list:
   every invitee must come from the reference list, never the poller
   itself, and without duplicates. *)

let sampling =
  {
    id = "sampling";
    severity = Error;
    doc =
      "the invited inner circle is drawn from the reference list, excludes the \
       poller and holds no duplicates";
    enabled = (fun _ -> true);
    instantiate =
      (fun _params ~emit ->
        let on_event ~time event =
          match event with
          | Trace.Poll_sampled { poller; au; poll_id; invited; reference } ->
            let fire detail =
              emit
                {
                  invariant = "sampling";
                  severity = Error;
                  time;
                  peer = Some poller;
                  au = Some au;
                  poll_id = Some poll_id;
                  detail;
                }
            in
            let stray =
              List.filter (fun id -> not (List.mem id reference)) invited
            in
            (match stray with
            | [] -> ()
            | id :: _ ->
              fire
                (Printf.sprintf "invitee %d is not on the poller's reference list" id));
            if List.mem poller invited then
              fire (Printf.sprintf "poller %d sampled itself" poller);
            let rec dup = function
              | [] -> None
              | x :: rest -> if List.mem x rest then Some x else dup rest
            in
            (match dup invited with
            | Some id -> fire (Printf.sprintf "invitee %d sampled twice" id)
            | None -> ())
          | _ -> ()
        in
        { on_event; at_end = nop_end });
  }

(* -- quorum --------------------------------------------------------------

   A poll may only reach a content conclusion (success or alarm) if at
   least [quorum] of its sampled inner circle actually voted. Votes are
   collected from the trace, so lost messages can only make this an
   over-count of what the poller saw — the check never fires on a poll
   the poller itself counted as quorate. Polls without a recorded sample
   (truncated trace) are skipped. *)

let quorum =
  {
    id = "quorum";
    severity = Error;
    doc = "content conclusions (success/alarm) only at or above quorum inner votes";
    enabled = (fun _ -> true);
    instantiate =
      (fun params ~emit ->
        let sampled : (int * int * int, int list) Hashtbl.t = Hashtbl.create 64 in
        let votes : (int * int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
        let on_event ~time event =
          match event with
          | Trace.Poll_sampled { poller; au; poll_id; invited; _ } ->
            Hashtbl.replace sampled (poller, au, poll_id) invited
          | Trace.Vote_sent { voter; poller; au; poll_id } ->
            let vs =
              match Hashtbl.find_opt votes (poller, au, poll_id) with
              | Some vs -> vs
              | None ->
                let vs = ref [] in
                Hashtbl.replace votes (poller, au, poll_id) vs;
                vs
            in
            if not (List.mem voter !vs) then vs := voter :: !vs
          | Trace.Poll_concluded { poller; au; poll_id; outcome } ->
            let key = (poller, au, poll_id) in
            (match (outcome, Hashtbl.find_opt sampled key) with
            | (Metrics.Success | Metrics.Alarmed), Some invited ->
              let inner_votes =
                match Hashtbl.find_opt votes key with
                | None -> 0
                | Some vs -> List.length (List.filter (fun v -> List.mem v invited) !vs)
              in
              if inner_votes < params.quorum then
                emit
                  {
                    invariant = "quorum";
                    severity = Error;
                    time;
                    peer = Some poller;
                    au = Some au;
                    poll_id = Some poll_id;
                    detail =
                      Printf.sprintf
                        "poll concluded %s with %d inner votes (quorum %d)"
                        (match outcome with
                        | Metrics.Success -> "success"
                        | Metrics.Alarmed -> "alarmed"
                        | Metrics.Inquorate -> "inquorate")
                        inner_votes params.quorum;
                  }
            | _ -> ());
            Hashtbl.remove sampled key;
            Hashtbl.remove votes key
          | _ -> ()
        in
        { on_event; at_end = nop_end });
  }

(* -- conservation --------------------------------------------------------

   The trace-derived ledger and the simulator's metrics aggregates are
   fed from the same instrumentation points, so their totals must agree
   exactly. Only checkable when a metrics summary is available (live
   runs); offline audits of a bare trace skip it. *)

let conservation =
  {
    id = "conservation";
    severity = Error;
    doc = "trace-derived ledger totals match the metrics aggregates";
    enabled = (fun _ -> true);
    instantiate =
      (fun _params ~emit ->
        let at_end ~time ctx =
          match ctx.metrics with
          | None -> ()
          | Some s ->
            let r =
              Obs.Ledger.reconcile ctx.ledger ~loyal_effort:s.Metrics.loyal_effort
                ~adversary_effort:s.Metrics.adversary_effort
                ~polls_succeeded:s.Metrics.polls_succeeded
                ~polls_inquorate:s.Metrics.polls_inquorate
                ~polls_alarmed:s.Metrics.polls_alarmed
                ~votes_supplied:s.Metrics.votes_supplied
                ~invitations_considered:s.Metrics.invitations_considered
            in
            if not r.Obs.Ledger.ok then
              emit
                {
                  invariant = "conservation";
                  severity = Error;
                  time;
                  peer = None;
                  au = None;
                  poll_id = None;
                  detail = Format.asprintf "%a" Obs.Ledger.pp_reconciliation r;
                }
        in
        { on_event = (fun ~time:_ _ -> ()); at_end });
  }

let registry =
  [ effort_balance; refractory; grade_decay; sampling; quorum; conservation ]

let find id = List.find_opt (fun inv -> String.equal inv.id id) registry
