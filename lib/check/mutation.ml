module Trace = Lockss.Trace
module Grade = Lockss.Grade
module Metrics = Lockss.Metrics

type t = { id : string; doc : string; target : string }

(* Every mutation is deterministic: it scans the trace in stream order
   and rewrites the first site that (a) violates its target invariant
   and (b) provably leaves every other invariant silent, so the
   self-tests can assert "exactly this check fires". *)

let all =
  [
    {
      id = "refractory-bypass";
      doc =
        "duplicate an admission half a refractory period after the original, \
         at a supplier with no other admission nearby";
      target = "refractory";
    };
    {
      id = "effort-shortfall";
      doc =
        "shrink the remaining-effort proof of one completed vote to 1% so the \
         voter's spend is no longer covered at vote time";
      target = "effort-balance";
    };
    {
      id = "grade-jump";
      doc =
        "rewrite one known-peer admission to report grade Credit where decay \
         only allows a lower grade";
      target = "grade-decay";
    };
    {
      id = "phantom-voter";
      doc = "add an invitee outside the reference list to one poll's sample";
      target = "sampling";
    };
    {
      id = "quorum-breach";
      doc =
        "append a synthetic poll that concludes success with zero inner votes";
      target = "quorum";
    };
  ]

let find id = List.find_opt (fun m -> String.equal m.id id) all

(* Insert [entry] keeping the trace sorted by time. *)
let insert_sorted (tnew, _ as entry) events =
  let rec ins = function
    | (t, e) :: rest when t <= tnew -> (t, e) :: ins rest
    | rest -> entry :: rest
  in
  ins events

let nth_rewrite i f events =
  List.mapi (fun j entry -> if j = i then f entry else entry) events

(* refractory-bypass: copy an admission to [t + period/2]. The site must
   not be a known-path admission (so the grade model stays silent) and
   must have no later admission on the same (voter, au) key before
   [t + 2.5 * period] — the copy then violates against the original and
   nothing violates against the copy. *)
let refractory_bypass (params : Invariant.params) events =
  let r = params.refractory_period in
  let arr = Array.of_list events in
  let n = Array.length arr in
  let clear_after i voter au t1 =
    let ok = ref true in
    for j = i + 1 to n - 1 do
      match arr.(j) with
      | t2, Trace.Invitation_admitted { voter = v; au = a; _ }
        when v = voter && a = au && t2 < t1 +. (2.5 *. r) ->
        ok := false
      | _ -> ()
    done;
    !ok
  in
  let rec scan i =
    if i >= n then Error "refractory-bypass: no suitable admission in trace"
    else
      match arr.(i) with
      | ( t1,
          (Trace.Invitation_admitted
             { voter; au; path = Trace.Admitted_unknown | Trace.Admitted_introduced; _ }
           as ev) )
        when clear_after i voter au t1 ->
        Ok (insert_sorted (t1 +. (0.5 *. r), ev) events)
      | _ -> scan (i + 1)
  in
  scan 0

(* effort-shortfall: the second solicitation-phase receipt on a
   (voter, poller, au, poll) account is the remaining-effort proof; at
   1% of its value the account still covers the verification charges
   already booked, so the only deficit — and the only violation —
   appears when that voter's vote commits. The site therefore needs a
   later Vote_sent on the same account. *)
let effort_shortfall (_params : Invariant.params) events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let counts = Hashtbl.create 64 in
  let votes_after i key =
    let found = ref false in
    for j = i + 1 to n - 1 do
      match arr.(j) with
      | _, Trace.Vote_sent { voter; poller; au; poll_id }
        when (voter, poller, au, poll_id) = key ->
        found := true
      | _ -> ()
    done;
    !found
  in
  let rec scan i =
    if i >= n then Error "effort-shortfall: no second receipt followed by a vote"
    else
      match arr.(i) with
      | _, Trace.Effort_received { peer; from_; phase = Trace.Solicitation; au; poll_id; _ }
        ->
        let key = (peer, from_, au, poll_id) in
        let c = 1 + (try Hashtbl.find counts key with Not_found -> 0) in
        Hashtbl.replace counts key c;
        if c = 2 && votes_after i key then
          Ok
            (nth_rewrite i
               (fun (t, ev) ->
                 match ev with
                 | Trace.Effort_received { peer; from_; phase; au; poll_id; seconds } ->
                   ( t,
                     Trace.Effort_received
                       { peer; from_; phase; au; poll_id; seconds = seconds *. 0.01 } )
                 | ev -> (t, ev))
               events)
        else scan (i + 1)
      | _ -> scan (i + 1)
  in
  scan 0

(* grade-jump: replay the auditor's own grade model to find the first
   known-path admission whose decayed baseline no longer allows Credit,
   then claim Credit there. Later observations compare against the
   (higher) Credit baseline, which decay keeps above any legitimate
   grade, so no knock-on violations.

   A fault-free trace rarely has such a site — an admission is normally
   followed by the voter's vote, which legitimately rewrites the entry
   and resets the model — so the fallback appends a pair of admissions
   on a fresh supplier: Even, then Credit one step later. The pair is a
   refractory period apart (doubled, so the self-clocking check stays
   quiet) and uses identities far outside the population, touching no
   other invariant. *)
let grade_jump (params : Invariant.params) events =
  let max_steps = 8 in
  let steps_between t0 t1 =
    if t1 <= t0 then 0
    else begin
      let raw = (t1 -. t0) /. params.decay_period in
      if raw >= float_of_int max_steps then max_steps else int_of_float raw
    end
  in
  let obs = Hashtbl.create 256 in
  let votes = Hashtbl.create 64 in
  let site = ref None in
  List.iteri
    (fun i (time, event) ->
      if !site = None then
        match event with
        | Trace.Invitation_admitted { voter; claimed; au; path = Trace.Admitted_known g; _ }
          ->
          let key = (voter, au, claimed) in
          (match Hashtbl.find_opt obs key with
          | Some (t0, g0)
            when Grade.rank (Grade.decayed g0 ~steps:(steps_between t0 time))
                 < Grade.rank Grade.Credit ->
            site := Some i
          | _ -> Hashtbl.replace obs key (time, g))
        | Trace.Vote_sent { voter; poller; au; poll_id } ->
          let vs =
            match Hashtbl.find_opt votes (poller, au, poll_id) with
            | Some vs -> vs
            | None ->
              let vs = ref [] in
              Hashtbl.replace votes (poller, au, poll_id) vs;
              vs
          in
          vs := voter :: !vs;
          Hashtbl.remove obs (voter, au, poller)
        | Trace.Poll_concluded { poller; au; poll_id; _ } -> (
          match Hashtbl.find_opt votes (poller, au, poll_id) with
          | None -> ()
          | Some vs ->
            List.iter (fun v -> Hashtbl.remove obs (poller, au, v)) !vs;
            Hashtbl.remove votes (poller, au, poll_id))
        | _ -> ())
    events;
  match !site with
  | None ->
    let tmax = List.fold_left (fun acc (t, _) -> Float.max acc t) 0. events in
    let voter = 1_000_000 and claimed = 1_000_001 in
    let admitted grade =
      Trace.Invitation_admitted
        { voter; claimed; au = 0; poll_id = None; path = Trace.Admitted_known grade }
    in
    Ok
      (events
      @ [
          (tmax +. 1., admitted Grade.Even);
          (tmax +. 1. +. (2. *. params.refractory_period), admitted Grade.Credit);
        ])
  | Some i ->
    Ok
      (nth_rewrite i
         (fun (t, ev) ->
           match ev with
           | Trace.Invitation_admitted { voter; claimed; au; poll_id; _ } ->
             ( t,
               Trace.Invitation_admitted
                 { voter; claimed; au; poll_id; path = Trace.Admitted_known Grade.Credit } )
           | ev -> (t, ev))
         events)

(* phantom-voter: one invitee from outside the reference list. The id is
   fresh, so it never votes and never touches any other invariant. *)
let phantom_voter (_params : Invariant.params) events =
  let rec index_of i = function
    | [] -> None
    | (_, Trace.Poll_sampled _) :: _ -> Some i
    | _ :: rest -> index_of (i + 1) rest
  in
  match index_of 0 events with
  | None -> Error "phantom-voter: trace has no poll sample"
  | Some i ->
    Ok
      (nth_rewrite i
         (fun (t, ev) ->
           match ev with
           | Trace.Poll_sampled { poller; au; poll_id; invited; reference } ->
             let fresh = 1 + List.fold_left max poller (invited @ reference) in
             ( t,
               Trace.Poll_sampled
                 { poller; au; poll_id; invited = invited @ [ fresh ]; reference } )
           | ev -> (t, ev))
         events)

(* quorum-breach: a synthetic poll at end-of-trace that concludes
   success off an empty (vacuously well-formed) sample. *)
let quorum_breach (_params : Invariant.params) events =
  let tmax = List.fold_left (fun acc (t, _) -> Float.max acc t) 0. events in
  let fresh_poll =
    1
    + List.fold_left
        (fun acc (_, ev) ->
          match ev with
          | Trace.Poll_started { poll_id; _ }
          | Trace.Poll_sampled { poll_id; _ }
          | Trace.Poll_concluded { poll_id; _ }
          | Trace.Vote_sent { poll_id; _ } ->
            max acc poll_id
          | _ -> acc)
        0 events
  in
  Ok
    (events
    @ [
        ( tmax +. 1.,
          Trace.Poll_sampled
            { poller = 0; au = 0; poll_id = fresh_poll; invited = []; reference = [] } );
        ( tmax +. 2.,
          Trace.Poll_concluded
            { poller = 0; au = 0; poll_id = fresh_poll; outcome = Metrics.Success } );
      ])

let apply ~params ~id events =
  match id with
  | "refractory-bypass" -> refractory_bypass params events
  | "effort-shortfall" -> effort_shortfall params events
  | "grade-jump" -> grade_jump params events
  | "phantom-voter" -> phantom_voter params events
  | "quorum-breach" -> quorum_breach params events
  | _ -> Error (Printf.sprintf "unknown mutation %S" id)
