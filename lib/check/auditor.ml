module Trace = Lockss.Trace

type t = {
  params : Invariant.params;
  instances : (Invariant.t * Invariant.instance) list;
  analyzer : Obs.Analyze.t;
  violations : Invariant.violation list ref;  (* newest first *)
  on_violation : (Invariant.violation -> unit) option ref;
  last_time : float ref;
  finished : bool ref;
}

let create ?(params = Invariant.default_params) ?only () =
  let selected =
    match only with
    | None -> Invariant.registry
    | Some ids ->
      List.filter (fun inv -> List.mem inv.Invariant.id ids) Invariant.registry
  in
  let violations = ref [] in
  let on_violation = ref None in
  let emit v =
    violations := v :: !violations;
    match !on_violation with None -> () | Some f -> f v
  in
  let instances =
    List.filter_map
      (fun inv ->
        if inv.Invariant.enabled params then
          Some (inv, inv.Invariant.instantiate params ~emit)
        else None)
      selected
  in
  {
    params;
    instances;
    analyzer = Obs.Analyze.create ();
    violations;
    on_violation;
    last_time = ref 0.;
    finished = ref false;
  }

let params t = t.params

let feed t ~time event =
  match event with
  | Trace.Invariant_violated _ ->
    (* Never react to our own (or a previous auditor's) reports: a live
       auditor re-emits violations onto the bus it subscribes to, and
       ignoring them here makes that provably loop-free. *)
    ()
  | _ ->
    t.last_time := Float.max !(t.last_time) time;
    Obs.Analyze.feed_view t.analyzer (Trace.to_view ~time event);
    List.iter (fun (_, inst) -> inst.Invariant.on_event ~time event) t.instances

let record_violation t v =
  t.violations := v :: !(t.violations);
  match !(t.on_violation) with None -> () | Some f -> f v

let feed_json t json =
  match Trace.of_json json with
  | Ok (time, event) ->
    feed t ~time event;
    Ok ()
  | Error msg ->
    record_violation t
      {
        Invariant.invariant = "trace-format";
        severity = Invariant.Error;
        time = !(t.last_time);
        peer = None;
        au = None;
        poll_id = None;
        detail = msg;
      };
    Error msg

let finish ?metrics t =
  if not !(t.finished) then begin
    t.finished := true;
    let ctx = { Invariant.ledger = Obs.Analyze.ledger t.analyzer; metrics } in
    List.iter
      (fun (_, inst) -> inst.Invariant.at_end ~time:!(t.last_time) ctx)
      t.instances
  end

let attach t bus =
  t.on_violation :=
    Some
      (fun (v : Invariant.violation) ->
        Trace.emit bus ~now:v.Invariant.time (fun () ->
            Trace.Invariant_violated
              {
                invariant = v.Invariant.invariant;
                peer = v.Invariant.peer;
                au = v.Invariant.au;
                poll_id = v.Invariant.poll_id;
                detail = v.Invariant.detail;
              }));
  Trace.subscribe bus (fun ~time event -> feed t ~time event)

let violations t = List.rev !(t.violations)
let violation_count t = List.length !(t.violations)

let report_json t =
  Obs.Json.Assoc
    [
      ("violations", Obs.Json.Int (violation_count t));
      ( "checked",
        Obs.Json.List
          (List.map (fun (inv, _) -> Obs.Json.String inv.Invariant.id) t.instances) );
      ("detail", Obs.Json.List (List.map Invariant.violation_to_json (violations t)));
    ]

let pp_report ppf t =
  Format.fprintf ppf "@[<v>checked:";
  List.iter (fun (inv, _) -> Format.fprintf ppf " %s" inv.Invariant.id) t.instances;
  Format.fprintf ppf "@,";
  List.iter (fun v -> Format.fprintf ppf "%a@," Invariant.pp_violation v) (violations t);
  Format.fprintf ppf "violations: %d@]" (violation_count t)
