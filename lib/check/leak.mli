(** End-of-run leak audit: cross-check the engine's live-event
    population against the protocol state that is supposed to own it.

    Every protocol timer is scheduled under a {!Narses.Engine} class
    registered in {!Lockss.Peer} ([ack_timeout], [vote_timeout],
    [proof_timeout], [receipt_timeout], [repair_timeout]). At any
    quiescent instant — in particular when a run's horizon is reached —
    the number of live events in each class must equal the number of
    state-machine owners referencing one:

    - [ack_timeout] — poller candidates in [Awaiting_ack];
    - [vote_timeout] — poller candidates in [Awaiting_vote] (which hold
      either the proof-dispatch event or the vote-patience timer);
    - [proof_timeout] — voter sessions in [Awaiting_proof];
    - [receipt_timeout] — voter sessions in [Voted_waiting_receipt];
    - [repair_timeout] — polls with [repair_timer = Some _].

    Beyond the per-class totals, the audit checks that every event id
    still referenced by owner state is live (a dead reference means a
    timeout fired or was cancelled without the owner being updated —
    the double-cleanup bug class), and that no [Closed] voter session
    lingers in a session table.

    A violation here is a resource leak or a state-machine
    inconsistency that per-event invariants cannot see; the soak
    harness fails on any. *)

(** [audit ~engine ~ctx] inspects the quiescent simulation and returns
    every leak found (empty = clean). Violations use invariant ids
    ["leak-timer-count"], ["leak-dead-reference"] and
    ["leak-closed-session"], all with severity [Error]. *)
val audit :
  engine:Narses.Engine.t -> ctx:Lockss.Peer.ctx -> Invariant.violation list
