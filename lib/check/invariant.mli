(** The protocol invariant registry.

    Each invariant is an online predicate over the stream of observed
    {!Lockss.Trace} events: it accumulates whatever state it needs and
    emits structured {!violation}s the moment the stream contradicts the
    paper's defenses. Invariants are deliberately {e conservative} —
    they only fire on histories no correct implementation can produce,
    so a fault-free baseline must always audit clean (the mutation
    self-tests in [test/test_check.ml] prove each one still fires on a
    seeded violation).

    The catalogue:
    - ["effort-balance"] — the effort-sizing inequality: at every proof
      receipt and at vote-commit time, the effort a poller has proven to
      a voter covers everything the voter has spent on that poll.
    - ["refractory"] — self-clocked admission: at most one admission per
      supplier (per AU) per refractory period, on {e every} path
      (introductions bypass only the random drops).
    - ["grade-decay"] — between touches of a known-peers entry, the
      effective grade only decays toward Debt.
    - ["sampling"] — the invited inner circle is drawn from the
      reference list, excludes the poller, and holds no duplicates.
    - ["quorum"] — a poll reaches a content conclusion (success/alarm)
      only at or above [quorum] inner-circle votes.
    - ["conservation"] — the trace-derived ledger reconciles with the
      metrics aggregates (live runs only; needs a summary). *)

type severity = Warning | Error

val severity_to_string : severity -> string

(** The protocol constants an audit needs. Derive them with
    {!params_of_config} for live runs; offline audits of a bare trace
    must supply the values the traced run used. *)
type params = {
  refractory_period : float;
  quorum : int;
  decay_period : float;
  admission_control : bool;  (** gates the refractory invariant *)
  introductions : bool;
  effort_balancing : bool;  (** gates the effort-balance invariant *)
  tolerance : float;  (** relative slack for float comparisons *)
}

(** {!Lockss.Config.default} constants with tolerance [1e-6]. *)
val default_params : params

val params_of_config : Lockss.Config.t -> params

type violation = {
  invariant : string;
  severity : severity;
  time : float;  (** simulated seconds *)
  peer : Lockss.Ids.Identity.t option;
  au : Lockss.Ids.Au_id.t option;
  poll_id : int option;
  detail : string;
}

val violation_to_json : violation -> Obs.Json.t
val pp_violation : Format.formatter -> violation -> unit

(** End-of-stream context for invariants that check aggregate
    conservation rather than per-event properties. *)
type context = { ledger : Obs.Ledger.t; metrics : Lockss.Metrics.summary option }

(** A live instance of one invariant: feed it every event in stream
    order, then give it one [at_end] call. *)
type instance = {
  on_event : time:float -> Lockss.Trace.event -> unit;
  at_end : time:float -> context -> unit;
}

type t = {
  id : string;
  severity : severity;
  doc : string;
  enabled : params -> bool;
      (** whether the invariant is meaningful under these parameters
          (e.g. effort-balance needs effort balancing switched on) *)
  instantiate : params -> emit:(violation -> unit) -> instance;
}

(** All invariants, in catalogue order. *)
val registry : t list

val find : string -> t option
