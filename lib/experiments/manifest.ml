module Json = Obs.Json

type t = { command : string; wall0 : float; cpu0 : float; started_at : float }

let start ~command () =
  { command; wall0 = Unix.gettimeofday (); cpu0 = Sys.time (); started_at = Unix.time () }

let first_output_line cmd =
  match Unix.open_process_in cmd with
  | exception (Unix.Unix_error _ | Sys_error _) -> None
  | ic ->
    let line = try Some (input_line ic) with End_of_file | Sys_error _ -> None in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> (match line with Some l when l <> "" -> Some l | _ -> None)
    | _ | (exception Unix.Unix_error _) -> None)

let git_describe () =
  Option.value ~default:"unknown"
    (first_output_line "git describe --always --dirty 2>/dev/null")

let iso8601 epoch =
  let tm = Unix.gmtime epoch in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let hostname () = try Unix.gethostname () with Unix.Unix_error _ -> "unknown"

let provenance () =
  [
    ("git", Json.String (git_describe ()));
    ("host", Json.String (hostname ()));
    ("ocaml", Json.String Sys.ocaml_version);
    ("pinned_at", Json.String (iso8601 (Unix.time ())));
  ]

let finish t ~seeds ?(targets = []) ?fault_mix () =
  let jobs_requested = Runner.jobs () in
  let jobs_effective = min jobs_requested (Domain.recommended_domain_count ()) in
  Json.Assoc
    [
      ("schema", Json.String "lockss-manifest/1");
      ("command", Json.String t.command);
      ("targets", Json.List (List.map (fun s -> Json.String s) targets));
      ("seeds", Json.List (List.map (fun s -> Json.Int s) seeds));
      ("jobs_requested", Json.Int jobs_requested);
      ("jobs_effective", Json.Int jobs_effective);
      ("fault_mix", Option.value ~default:Json.Null fault_mix);
      ("git", Json.String (git_describe ()));
      ("host", Json.String (hostname ()));
      ("ocaml", Json.String Sys.ocaml_version);
      ("started_at", Json.String (iso8601 t.started_at));
      ("wall_s", Json.Float (Unix.gettimeofday () -. t.wall0));
      ("cpu_s", Json.Float (Sys.time () -. t.cpu0));
    ]

let write ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')
