module Duration = Repro_prelude.Duration
module Table = Repro_prelude.Table

type point = {
  interval : float;
  mttf_years : float;
  collection : int;
  access_failure : float;
  afp_min : float;
  afp_max : float;
}

let default_intervals = List.map Duration.of_months [ 1.; 2.; 3.; 6. ]
let default_mttfs = [ 1.; 3.; 5. ]
let collections (scale : Scenario.scale) = [ scale.Scenario.aus; 3 * scale.Scenario.aus ]

let sweep ?(scale = Scenario.bench) ?(intervals = default_intervals)
    ?(mttfs = default_mttfs) ?collections:(colls = collections scale) () =
  let grid =
    List.concat_map
      (fun collection ->
        List.concat_map
          (fun mttf_years ->
            List.map (fun interval -> (collection, mttf_years, interval)) intervals)
          mttfs)
      colls
  in
  (* Every grid point is an independent spread of runs: fan out over
     Runner workers, results merged back in grid order. *)
  Runner.map
    (fun (collection, mttf_years, interval) ->
      let cfg =
        {
          (Scenario.config scale) with
          Lockss.Config.aus = collection;
          inter_poll_interval = interval;
          disk_mttf_years = mttf_years;
        }
      in
      let spread = Scenario.run_spread ~cfg scale Scenario.No_attack in
      {
        interval;
        mttf_years;
        collection;
        access_failure = spread.Scenario.mean.Lockss.Metrics.access_failure_probability;
        afp_min = spread.Scenario.afp_min;
        afp_max = spread.Scenario.afp_max;
      })
    grid

let to_table points =
  let table =
    Table.create
      [ "inter-poll interval"; "disk MTTF"; "AUs"; "access failure prob."; "min"; "max" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Report.months p.interval;
          Printf.sprintf "%.0fy" p.mttf_years;
          string_of_int p.collection;
          Report.sci p.access_failure;
          Report.sci p.afp_min;
          Report.sci p.afp_max;
        ])
    points;
  table
