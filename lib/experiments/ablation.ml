module Duration = Repro_prelude.Duration
module Table = Repro_prelude.Table

type row = {
  group : string;
  variant : string;
  polls_succeeded : int;
  polls_failed : int;
  access_failure : float;
  friction : float;
  cost_ratio : float;
}

let row_of ~group ~variant ~baseline summary =
  let c = Scenario.ratios ~baseline ~attack:summary in
  {
    group;
    variant;
    polls_succeeded = summary.Lockss.Metrics.polls_succeeded;
    polls_failed =
      summary.Lockss.Metrics.polls_inquorate + summary.Lockss.Metrics.polls_alarmed;
    access_failure = summary.Lockss.Metrics.access_failure_probability;
    friction = c.Scenario.friction;
    cost_ratio = c.Scenario.cost_ratio;
  }

(* Each group runs a paper-design configuration and variants against the
   same attack; the group's first row is the paper design itself (and the
   group's baseline for ratio metrics). [groups] flattens every variant
   of every group into one Runner job list so the whole ablation table
   fans out at once, then reassembles rows in group order. *)
let groups ~scale specs =
  let jobs =
    List.concat_map
      (fun (name, attack, variants) ->
        List.map (fun (variant, cfg) -> (name, attack, variant, cfg)) variants)
      specs
  in
  let summaries =
    Runner.map (fun (_, attack, _, cfg) -> Scenario.run_avg ~cfg scale attack) jobs
  in
  let rows = List.combine jobs summaries in
  List.concat_map
    (fun (name, _, variants) ->
      let of_group =
        List.filter_map
          (fun ((n, _, variant, _), summary) ->
            if n = name then Some (variant, summary) else None)
          rows
      in
      match (variants, of_group) with
      | (_, _) :: _, (_, baseline) :: _ ->
        List.map
          (fun (variant, summary) -> row_of ~group:name ~variant ~baseline summary)
          of_group
      | _ -> [])
    specs

let run ?(scale = Scenario.bench) () =
  let cfg = Scenario.config scale in
  let flood =
    Scenario.Admission_flood
      {
        coverage = 1.0;
        duration = Duration.of_years scale.Scenario.years;
        recuperation = Duration.of_days 30.;
        rate = 4.;
      }
  in
  let intro_attack =
    Scenario.Brute_force
      { strategy = Adversary.Brute_force.Intro; rate = 5.; identities = 50 }
  in
  (* Contention stress: constrained capacity, no adversary needed. *)
  let loaded = { cfg with Lockss.Config.capacity = 0.003 } in
  groups ~scale
    [
      ( "desynchronization",
        Scenario.No_attack,
        [
          ("individual solicitation (paper)", loaded);
          ("synchronous quorum", { loaded with Lockss.Config.desynchronized = false });
        ] );
      ( "introductions",
        flood,
        [
          ("introductions on (paper)", cfg);
          ("introductions off", { cfg with Lockss.Config.introductions_enabled = false });
        ] );
      ( "effort balancing",
        intro_attack,
        [
          ("effort balancing on (paper)", cfg);
          ( "effort balancing off",
            { cfg with Lockss.Config.effort_balancing_enabled = false } );
        ] );
      ( "refractory period",
        flood,
        [
          ("1 day (paper)", cfg);
          ( "6 hours",
            { cfg with Lockss.Config.refractory_period = Duration.of_days 0.25 } );
          ("4 days", { cfg with Lockss.Config.refractory_period = Duration.of_days 4. });
        ] );
      ( "drop probabilities",
        flood,
        [
          ("0.90 / 0.80 (paper)", cfg);
          ( "0.50 / 0.40",
            { cfg with Lockss.Config.drop_unknown = 0.5; drop_debt = 0.4 } );
          ( "no admission control",
            { cfg with Lockss.Config.admission_control_enabled = false } );
        ] );
      ( "network model",
        Scenario.No_attack,
        [
          ("delay-only (paper)", cfg);
          ( "shared-bottleneck congestion",
            { cfg with Lockss.Config.network_model = Narses.Net.Shared_bottleneck } );
        ] );
    ]

let to_table rows =
  let table =
    Table.create
      [ "ablation"; "variant"; "polls ok"; "polls failed"; "access failure"; "friction"; "cost ratio" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.group;
          r.variant;
          string_of_int r.polls_succeeded;
          string_of_int r.polls_failed;
          Report.sci r.access_failure;
          Report.ratio r.friction;
          Report.ratio r.cost_ratio;
        ])
    rows;
  table
