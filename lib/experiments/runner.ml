(* Work-stealing parallel map over independent simulation jobs.

   Jobs are keyed by their index in the input list; workers claim
   indices from a shared atomic cursor and write results into a
   per-index slot, so the merge is a plain in-order array read and the
   output cannot depend on scheduling. *)

let env_jobs () =
  match Sys.getenv_opt "LOCKSS_JOBS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with Some n -> n | None -> Domain.recommended_domain_count ()

(* 0 = no override (use the heuristic). An [Atomic.t] rather than a
   [ref] so a worker reading it mid-run is well-defined. *)
let override = Atomic.make 0

let set_jobs n =
  if n < 0 then invalid_arg "Runner.set_jobs: negative job count";
  Atomic.set override n

let jobs () =
  let n = Atomic.get override in
  if n > 0 then n else default_jobs ()

(* Workers flag themselves so nested maps degrade to serial execution
   instead of spawning domains recursively. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Optional run-wide profiler. Set it from the main domain only; workers
   never touch it — they report (busy seconds, task count) through a
   per-worker slot and the calling domain folds those into the profiler
   after the joins, so the profiler needs no synchronisation. *)
let profiler : Obs.Profiler.t option ref = ref None
let set_profiler p = profiler := p

type 'b slot = Done of 'b | Failed of exn * Printexc.raw_backtrace | Pending

let map ?jobs:requested f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let k =
    let j = match requested with Some j -> max 1 j | None -> jobs () in
    min j n
  in
  if n = 0 then []
  else if k <= 1 || Domain.DLS.get in_worker then
    Array.to_list (Array.map f items)
  else begin
    let results = Array.make n Pending in
    let cursor = Atomic.make 0 in
    (* Per-worker effort, written only by that worker and read by the
       calling domain after the joins. *)
    let busy = Array.make k 0. in
    let tasks = Array.make k 0 in
    let work w =
      let t0 = Unix.gettimeofday () in
      let rec go () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (results.(i) <-
            (try Done (f items.(i))
             with e -> Failed (e, Printexc.get_raw_backtrace ())));
          tasks.(w) <- tasks.(w) + 1;
          go ()
        end
      in
      go ();
      busy.(w) <- Unix.gettimeofday () -. t0
    in
    let spawned =
      List.init (k - 1) (fun w ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              work (w + 1)))
    in
    (* The calling domain participates too; it is marked as a worker for
       the duration so jobs it runs inline keep nested maps serial. *)
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_worker false)
      (fun () -> work 0);
    List.iter Domain.join spawned;
    (match !profiler with
    | None -> ()
    | Some p ->
      Array.iteri
        (fun w busy_s ->
          Obs.Profiler.note_domain p ~domain:w ~busy_s ~tasks:tasks.(w))
        busy);
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false)
         results)
  end

let both f g =
  if jobs () <= 1 || Domain.DLS.get in_worker then
    let a = f () in
    let b = g () in
    (a, b)
  else begin
    let g_busy = ref 0. in
    let d =
      Domain.spawn (fun () ->
          Domain.DLS.set in_worker true;
          let t0 = Unix.gettimeofday () in
          let r = g () in
          g_busy := Unix.gettimeofday () -. t0;
          r)
    in
    Domain.DLS.set in_worker true;
    let t0 = Unix.gettimeofday () in
    let a =
      match Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker false) f with
      | a -> Ok a
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    let f_busy = Unix.gettimeofday () -. t0 in
    (* Join before re-raising so a failure on one side never leaks the
       other side's domain. [Domain.join] re-raises [g]'s exception. *)
    let b = Domain.join d in
    (match !profiler with
    | None -> ()
    | Some p ->
      Obs.Profiler.note_domain p ~domain:0 ~busy_s:f_busy ~tasks:1;
      Obs.Profiler.note_domain p ~domain:1 ~busy_s:!g_busy ~tasks:1);
    match a with
    | Ok a -> (a, b)
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  end
