(* Parallel map over independent simulation jobs, on a persistent
   domain pool.

   The previous runner spawned [k - 1] fresh domains on *every* [map]
   and tore them down at the join. A sweep that maps a few dozen times
   paid domain spawn/teardown (and first-touch minor-heap setup) once
   per map; worse, each worker claimed a single job index per
   [Atomic.fetch_and_add], so short jobs turned the cursor into a
   contended hot word. Both costs are fixed structurally here:

   - Helpers are spawned once, on first parallel [map], and parked on a
     condition variable between batches. Every subsequent [map] and
     [both] reuses them; an [at_exit] hook shuts them down.
   - Workers claim *chunks* of [max 1 (n / (k * 4))] indices per cursor
     bump — at most ~4k cursor operations per map instead of n, while
     still leaving enough chunks for the tail to balance.
   - Each helper enlarges its minor heap once at spawn (the simulation
     engine's hot path allocates closures at a rate that makes the
     default 256k-word nursery thrash), tunable via [LOCKSS_MINOR_HEAP].

   Determinism is unchanged: jobs are keyed by their index in the input
   list, workers write results into per-index slots, and the merge is an
   in-order array read, so output cannot depend on which slot ran what. *)

let env_jobs () =
  match Sys.getenv_opt "LOCKSS_JOBS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with Some n -> n | None -> Domain.recommended_domain_count ()

(* 0 = no override (use the heuristic). An [Atomic.t] rather than a
   [ref] so a worker reading it mid-run is well-defined. *)
let override = Atomic.make 0

let set_jobs n =
  if n < 0 then invalid_arg "Runner.set_jobs: negative job count";
  Atomic.set override n

let jobs () =
  let n = Atomic.get override in
  if n > 0 then n else default_jobs ()

(* Workers flag themselves so nested maps degrade to serial execution
   instead of queueing batches recursively (a helper waiting for its own
   sub-batch would deadlock the pool). *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Optional run-wide profiler. Set it from the main domain only; workers
   never touch it — they report effort through a per-slot cell and the
   calling domain folds those into the profiler after the batch. *)
let profiler : Obs.Profiler.t option ref = ref None
let set_profiler p = profiler := p

(* ---- Per-slot effort accounting ------------------------------------ *)

(* Written only by the owning slot's domain while it works a batch; read
   by the calling domain after the batch barrier (the pool mutex
   release/acquire pair orders the writes before the reads). *)
type effort = {
  mutable busy_s : float;
  mutable cpu_s : float;
  mutable tasks : int;
  mutable minor_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable touched : bool;
}

let fresh_effort () =
  {
    busy_s = 0.;
    cpu_s = 0.;
    tasks = 0;
    minor_words = 0.;
    minor_collections = 0;
    major_collections = 0;
    touched = false;
  }

(* [measured st f] runs [f ()] and charges its wall, thread-CPU and
   per-domain GC activity to [st]. [Gc.minor_words] and the collection
   counters in [Gc.quick_stat] are domain-local in OCaml 5, so on a
   helper this really is that helper's allocation, not the process'. *)
let measured st f =
  st.touched <- true;
  let t0 = Repro_prelude.Monotonic.now_s () in
  let c0 = Repro_prelude.Monotonic.thread_cpu_s () in
  let mw0 = Gc.minor_words () in
  let g0 = Gc.quick_stat () in
  let finish () =
    st.busy_s <- st.busy_s +. Repro_prelude.Monotonic.elapsed_s t0;
    st.cpu_s <-
      st.cpu_s
      +. Float.max 0. (Repro_prelude.Monotonic.thread_cpu_s () -. c0);
    st.minor_words <- st.minor_words +. (Gc.minor_words () -. mw0);
    let g1 = Gc.quick_stat () in
    st.minor_collections <-
      st.minor_collections + (g1.Gc.minor_collections - g0.Gc.minor_collections);
    st.major_collections <-
      st.major_collections + (g1.Gc.major_collections - g0.Gc.major_collections)
  in
  Fun.protect ~finally:finish f

let note_efforts efforts =
  match !profiler with
  | None -> ()
  | Some p ->
    Array.iteri
      (fun slot st ->
        if st.touched then
          Obs.Profiler.note_domain p ~domain:slot ~cpu_s:st.cpu_s
            ~minor_words:st.minor_words
            ~minor_collections:st.minor_collections
            ~major_collections:st.major_collections ~busy_s:st.busy_s
            ~tasks:st.tasks ())
      efforts

(* ---- The pool ------------------------------------------------------ *)

(* One process-wide pool. Helpers hold a persistent slot id (1, 2, ...;
   slot 0 is always the calling domain) for their whole life, so
   profiler slot numbers are stable across batches and [both] can never
   collide with [map] numbering. Batch protocol, all under [mutex]:

     publish:  ticket++, work/needed set, joined = finished = 0,
               closed = false, broadcast [work_available]
     join:     a parked helper whose [last] served ticket differs may
               join while [not closed && joined < needed]; it bumps
               [joined], remembers the ticket and runs [work slot]
     close:    after the caller finishes its own share it sets [closed]
               (late helpers now skip the ticket) and waits on
               [batch_done] until [finished = joined]
     retire:   each helper bumps [finished] when done and signals
               [batch_done] when it was the last one in a closed batch

   [submit_lock] serialises whole batches, so a second coordinating
   domain blocks rather than corrupting the protocol state. *)
type pool = {
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable ticket : int;
  mutable work : (int -> unit) option;
  mutable needed : int;
  mutable joined : int;
  mutable finished : int;
  mutable closed : bool;
  mutable shutdown : bool;
  mutable helpers : unit Domain.t list;
  mutable capacity : int;
}

let pool =
  {
    mutex = Mutex.create ();
    work_available = Condition.create ();
    batch_done = Condition.create ();
    ticket = 0;
    work = None;
    needed = 0;
    joined = 0;
    finished = 0;
    closed = false;
    shutdown = false;
    helpers = [];
    capacity = 0;
  }

let submit_lock = Mutex.create ()

(* Grow the nursery once per helper: parallel simulation batches
   allocate fast enough that the 256k-word default causes a minor
   collection every few simulated seconds per domain. *)
let minor_heap_words () =
  match Sys.getenv_opt "LOCKSS_MINOR_HEAP" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 16_384 -> n
    | Some _ | None -> 1 lsl 20)
  | None -> 1 lsl 20

let gc_tune () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = minor_heap_words () }

let helper_body slot =
  Domain.DLS.set in_worker true;
  gc_tune ();
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    let job = ref None in
    while !job = None && not pool.shutdown do
      if pool.ticket <> !last then
        if (not pool.closed) && pool.joined < pool.needed then begin
          pool.joined <- pool.joined + 1;
          last := pool.ticket;
          job := pool.work
        end
        else
          (* Batch already closed or fully staffed: never joinable again,
             mark it served so we park instead of spinning. *)
          last := pool.ticket;
      if !job = None && not pool.shutdown then
        Condition.wait pool.work_available pool.mutex
    done;
    (match !job with
    | None ->
      (* Shutdown. *)
      running := false;
      Mutex.unlock pool.mutex
    | Some work ->
      Mutex.unlock pool.mutex;
      (* Work functions catch job exceptions themselves; the wrapper only
         guards the protocol against a bug escaping, so [finished] can
         never be missed and the caller never hangs. *)
      (try work slot with _ -> ());
      Mutex.lock pool.mutex;
      pool.finished <- pool.finished + 1;
      if pool.closed && pool.finished >= pool.joined then
        Condition.broadcast pool.batch_done;
      Mutex.unlock pool.mutex)
  done

let teardown () =
  Mutex.lock pool.mutex;
  pool.shutdown <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.helpers;
  pool.helpers <- [];
  pool.capacity <- 0

let teardown_registered = ref false

(* Called under [submit_lock]. *)
let ensure_capacity wanted =
  if not !teardown_registered then begin
    teardown_registered := true;
    at_exit teardown
  end;
  while pool.capacity < wanted do
    let slot = pool.capacity + 1 in
    pool.helpers <- Domain.spawn (fun () -> helper_body slot) :: pool.helpers;
    pool.capacity <- slot
  done

(* [submit ~helpers mk] runs one batch: ensures [helpers] pool slots
   exist, lets [mk slots] build the work function (sized to the pool's
   current slot count, which only grows), publishes it, runs the
   caller's share inline as slot 0 and waits for every joined helper to
   retire. Returns whatever [mk] stashed via its closure. *)
let submit ~helpers mk =
  Mutex.protect submit_lock @@ fun () ->
  ensure_capacity helpers;
  let work = mk (pool.capacity + 1) in
  Mutex.lock pool.mutex;
  pool.ticket <- pool.ticket + 1;
  pool.work <- Some work;
  pool.needed <- helpers;
  pool.joined <- 0;
  pool.finished <- 0;
  pool.closed <- false;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  Domain.DLS.set in_worker true;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set in_worker false;
      Mutex.lock pool.mutex;
      pool.closed <- true;
      while pool.finished < pool.joined do
        Condition.wait pool.batch_done pool.mutex
      done;
      pool.work <- None;
      Mutex.unlock pool.mutex)
    (fun () -> work 0)

(* ---- map ----------------------------------------------------------- *)

type 'b slot = Done of 'b | Failed of exn * Printexc.raw_backtrace | Pending

let map ?jobs:requested f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let k =
    let j = match requested with Some j -> max 1 j | None -> jobs () in
    min j n
  in
  if n = 0 then []
  else if k <= 1 || Domain.DLS.get in_worker then
    Array.to_list (Array.map f items)
  else begin
    let results = Array.make n Pending in
    let cursor = Atomic.make 0 in
    (* ~4 chunks per worker: few enough cursor bumps to keep the shared
       word cold, enough slack for a slow chunk to be absorbed by the
       others finishing early. *)
    let chunk = max 1 (n / (k * 4)) in
    let efforts = ref [||] in
    submit ~helpers:(k - 1) (fun slots ->
        let st = Array.init slots (fun _ -> fresh_effort ()) in
        efforts := st;
        fun slot ->
          measured st.(slot) @@ fun () ->
          let claimed = ref (Atomic.fetch_and_add cursor chunk) in
          while !claimed < n do
            let stop = min n (!claimed + chunk) in
            for i = !claimed to stop - 1 do
              results.(i) <-
                (try Done (f items.(i))
                 with e -> Failed (e, Printexc.get_raw_backtrace ()))
            done;
            st.(slot).tasks <- st.(slot).tasks + (stop - !claimed);
            claimed := Atomic.fetch_and_add cursor chunk
          done);
    note_efforts !efforts;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false)
         results)
  end

(* ---- both ---------------------------------------------------------- *)

let both f g =
  if jobs () <= 1 || Domain.DLS.get in_worker then
    let a = f () in
    let b = g () in
    (a, b)
  else begin
    let a_res = ref None in
    let b_res = ref None in
    (* Whoever wins this claims [g]: a pool helper if one wakes in time,
       otherwise the caller itself right after [f] — so [both] makes
       progress even when every helper is busy elsewhere or the machine
       has one core, instead of blocking on a domain that may never be
       scheduled promptly. *)
    let g_claimed = Atomic.make false in
    let efforts = ref [||] in
    submit ~helpers:1 (fun slots ->
        let st = Array.init slots (fun _ -> fresh_effort ()) in
        efforts := st;
        let run_g slot =
          if Atomic.compare_and_set g_claimed false true then
            measured st.(slot) @@ fun () ->
            st.(slot).tasks <- st.(slot).tasks + 1;
            b_res :=
              Some
                (try Ok (g ())
                 with e -> Error (e, Printexc.get_raw_backtrace ()))
        in
        fun slot ->
          if slot = 0 then begin
            (measured st.(0) @@ fun () ->
             st.(0).tasks <- st.(0).tasks + 1;
             a_res :=
               Some
                 (try Ok (f ())
                  with e -> Error (e, Printexc.get_raw_backtrace ())));
            run_g 0
          end
          else run_g slot);
    note_efforts !efforts;
    (* [g]'s exception takes precedence over [f]'s, as it did when
       [Domain.join] re-raised it first. *)
    match !b_res with
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | _ -> (
      match (!a_res, !b_res) with
      | Some (Ok a), Some (Ok b) -> (a, b)
      | Some (Error (e, bt)), _ -> Printexc.raise_with_backtrace e bt
      | _ -> assert false)
  end
