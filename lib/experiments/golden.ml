module B = Obs.Baseline
module Json = Obs.Json

let targets = [ "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "table1" ]

type sweeps = {
  stoppage : Stoppage.point list Lazy.t;
  admission : Admission_attack.point list Lazy.t;
  baseline : Baseline.point list Lazy.t;
  effort : Effort_attack.row list Lazy.t;
}

let sweeps ~scale =
  {
    stoppage = lazy (Stoppage.sweep ~scale ());
    admission = lazy (Admission_attack.sweep ~scale ());
    baseline = lazy (Baseline.sweep ~scale ());
    effort = lazy (Effort_attack.sweep ~scale ());
  }

let stoppage_points s = Lazy.force s.stoppage
let admission_points s = Lazy.force s.admission
let baseline_points s = Lazy.force s.baseline
let effort_rows s = Lazy.force s.effort

let config_fingerprint (scale : Scenario.scale) =
  [
    ("peers", Json.Int scale.Scenario.peers);
    ("aus", Json.Int scale.Scenario.aus);
    ("quorum", Json.Int scale.Scenario.quorum);
    ("max_disagree", Json.Int scale.Scenario.max_disagree);
    ("outer_circle", Json.Int scale.Scenario.outer_circle);
    ("reference_target", Json.Int scale.Scenario.reference_target);
    ("years", Json.Float scale.Scenario.years);
    ("runs", Json.Int scale.Scenario.runs);
    ("seed", Json.Int scale.Scenario.seed);
  ]

(* -- Metric naming -------------------------------------------------------

   Names double as series-point keys: the bracketed coordinates use the
   same formatting as the printed tables (Report.pct, Report.days,
   Report.months), so a drifted metric is findable in the reproduce
   output by eye. *)

let duration_key ~coverage ~duration metric =
  Printf.sprintf "%s[cov=%s,days=%s]" metric (Report.pct coverage)
    (Report.days duration)

let fig2_key ~interval ~mttf_years ~collection metric =
  Printf.sprintf "%s[int=%s,mttf=%gy,aus=%d]" metric (Report.months interval)
    mttf_years collection

let table1_key ~strategy ~collection metric =
  Printf.sprintf "%s[strategy=%s,aus=%d]" metric
    (Format.asprintf "%a" Adversary.Brute_force.pp_strategy strategy)
    collection

(* Headline aggregates over the figure's own grid: the extreme in the
   metric's bad direction plus the mean, so both a localized spike and a
   broad shift of the whole curve drift a compact, readable metric. *)
let headline ~mk name direction values =
  match List.filter Float.is_finite values with
  | [] -> []
  | finite ->
    let worst =
      match direction with
      | B.Higher_is_worse -> List.fold_left Float.max neg_infinity finite
      | B.Lower_is_worse | B.Neutral -> List.fold_left Float.min infinity finite
    in
    let mean = List.fold_left ( +. ) 0. finite /. float_of_int (List.length finite) in
    [
      mk ~direction (Printf.sprintf "%s.worst" name) worst;
      mk ~direction:B.Neutral (Printf.sprintf "%s.mean" name) mean;
    ]

let capture ?tolerance_pct sweeps ~scale target =
  let mk ~direction name value = B.metric ~direction ?tolerance_pct name value in
  let duration_series triples ~metric ~direction =
    headline ~mk metric direction (List.map (fun (_, _, v) -> v) triples)
    @ List.map
        (fun (coverage, duration, v) ->
          mk ~direction (duration_key ~coverage ~duration metric) v)
        triples
  in
  let stoppage_metrics ~metric ~direction value =
    duration_series ~metric ~direction
      (List.map
         (fun (p : Stoppage.point) -> (p.Stoppage.coverage, p.Stoppage.duration, value p))
         (stoppage_points sweeps))
  in
  let admission_metrics ~metric ~direction value =
    duration_series ~metric ~direction
      (List.map
         (fun (p : Admission_attack.point) ->
           (p.Admission_attack.coverage, p.Admission_attack.duration, value p))
         (admission_points sweeps))
  in
  let higher = B.Higher_is_worse in
  let metrics =
    match target with
    | "fig2" ->
      let points = baseline_points sweeps in
      headline ~mk "access_failure" higher
        (List.map (fun (p : Baseline.point) -> p.Baseline.access_failure) points)
      @ List.concat_map
          (fun (p : Baseline.point) ->
            let key = fig2_key ~interval:p.Baseline.interval
                ~mttf_years:p.Baseline.mttf_years ~collection:p.Baseline.collection
            in
            [
              mk ~direction:higher (key "af") p.Baseline.access_failure;
              mk ~direction:B.Neutral (key "af_min") p.Baseline.afp_min;
              mk ~direction:B.Neutral (key "af_max") p.Baseline.afp_max;
            ])
          points
      |> Option.some
    | "fig3" ->
      Some
        (stoppage_metrics ~metric:"access_failure" ~direction:higher (fun p ->
             p.Stoppage.access_failure))
    | "fig4" ->
      Some
        (stoppage_metrics ~metric:"delay_ratio" ~direction:higher (fun p ->
             p.Stoppage.delay_ratio))
    | "fig5" ->
      Some
        (stoppage_metrics ~metric:"friction" ~direction:higher (fun p ->
             p.Stoppage.friction))
    | "fig6" ->
      Some
        (admission_metrics ~metric:"access_failure" ~direction:higher (fun p ->
             p.Admission_attack.access_failure))
    | "fig7" ->
      Some
        (admission_metrics ~metric:"delay_ratio" ~direction:higher (fun p ->
             p.Admission_attack.delay_ratio))
    | "fig8" ->
      Some
        (admission_metrics ~metric:"friction" ~direction:higher (fun p ->
             p.Admission_attack.friction))
    | "table1" ->
      let rows = effort_rows sweeps in
      let lower = B.Lower_is_worse in
      headline ~mk "friction" higher
        (List.map (fun (r : Effort_attack.row) -> r.Effort_attack.friction) rows)
      @ headline ~mk "cost_ratio" lower
          (List.map (fun (r : Effort_attack.row) -> r.Effort_attack.cost_ratio) rows)
      @ headline ~mk "delay_ratio" higher
          (List.map (fun (r : Effort_attack.row) -> r.Effort_attack.delay_ratio) rows)
      @ headline ~mk "access_failure" higher
          (List.map (fun (r : Effort_attack.row) -> r.Effort_attack.access_failure) rows)
      @ List.concat_map
          (fun (r : Effort_attack.row) ->
            let key metric =
              table1_key ~strategy:r.Effort_attack.strategy
                ~collection:r.Effort_attack.collection metric
            in
            [
              mk ~direction:higher (key "friction") r.Effort_attack.friction;
              mk ~direction:lower (key "cost_ratio") r.Effort_attack.cost_ratio;
              mk ~direction:higher (key "delay_ratio") r.Effort_attack.delay_ratio;
              mk ~direction:higher (key "access_failure") r.Effort_attack.access_failure;
            ])
          rows
      |> Option.some
    | _ -> None
  in
  match metrics with
  | None ->
    Error
      (Printf.sprintf "unknown baseline target %S (known: %s)" target
         (String.concat " " targets))
  | Some metrics ->
    Ok (B.make ~experiment:target ~config:(config_fingerprint scale) metrics)
