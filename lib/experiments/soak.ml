module Duration = Repro_prelude.Duration
module Faults = Narses.Faults
module Trace = Lockss.Trace
module Population = Lockss.Population

type seed_report = {
  seed : int;
  polls_succeeded : int;
  rejected : int;
  rejected_by_reason : (string * int) list;
  injected : int;
  violations : Check.Invariant.violation list;
  handler_exn : string option;
}

type report = { mix : Chaos.mix; years : float; seeds : seed_report list }

let seed_clean s =
  s.handler_exn = None && s.violations = [] && s.polls_succeeded > 0

let all_clean r = List.for_all seed_clean r.seeds

(* Same livelock backstop as the chaos harness. *)
let event_budget = 50_000_000

let run_seed ~cfg ~attack ~years seed =
  let population = Scenario.build ~cfg ~seed attack in
  let auditor = Scenario.make_auditor ~cfg () in
  Check.Auditor.attach auditor (Population.trace population);
  let rejected = ref 0 in
  let by_reason = Hashtbl.create 16 in
  Trace.subscribe ~interest:Trace.Debug (Population.trace population)
    (fun ~time:_ event ->
      match event with
      | Trace.Message_rejected { reason; _ } ->
        incr rejected;
        let key = Trace.reject_reason_to_string reason in
        Hashtbl.replace by_reason key
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_reason key))
      | _ -> ());
  let handler_exn =
    (* Any exception escaping a handler is precisely what the soak
       exists to catch: capture it instead of killing the whole sweep. *)
    try
      Population.run ~max_events:event_budget population
        ~until:(Duration.of_years years);
      None
    with exn -> Some (Printexc.to_string exn)
  in
  let summary = Population.summary population in
  Check.Auditor.finish ~metrics:summary auditor;
  let leak_violations =
    (* A crashed run leaves arbitrary mid-flight state; the exception is
       already the failure, so only audit quiescent runs for leaks. *)
    if handler_exn = None then
      Check.Leak.audit
        ~engine:(Population.engine population)
        ~ctx:(Population.ctx population)
    else []
  in
  let injected =
    match Population.faults population with
    | None -> 0
    | Some f ->
      Faults.corrupted_count f + Faults.replayed_count f + Faults.stale_count f
      + Faults.stray_count f
  in
  {
    seed;
    polls_succeeded = summary.Lockss.Metrics.polls_succeeded;
    rejected = !rejected;
    rejected_by_reason =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_reason [] |> List.sort compare;
    injected;
    violations = Check.Auditor.violations auditor @ leak_violations;
    handler_exn;
  }

let run ?(scale = Scenario.bench) ?(attack = Scenario.No_attack) ~seeds mix =
  Faults.validate (Chaos.faults_config mix);
  let base_cfg = Scenario.config scale in
  let cfg =
    { base_cfg with Lockss.Config.faults = Some (Chaos.faults_config mix) }
  in
  let years = scale.Scenario.years in
  let seeds = Runner.map (run_seed ~cfg ~attack ~years) seeds in
  { mix; years; seeds }

let pp_report ppf r =
  Format.fprintf ppf "Soak: %d seeds x %.2f years under the full fault mix@."
    (List.length r.seeds) r.years;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  seed %-4d %s: %d polls ok, %d faults injected, %d messages rejected (%s)@."
        s.seed
        (if seed_clean s then "clean" else "DIRTY")
        s.polls_succeeded s.injected s.rejected
        (if s.rejected_by_reason = [] then "-"
         else
           String.concat ", "
             (List.map
                (fun (reason, n) -> Printf.sprintf "%s %d" reason n)
                s.rejected_by_reason));
      (match s.handler_exn with
      | Some exn -> Format.fprintf ppf "    handler exception: %s@." exn
      | None -> ());
      List.iter
        (fun v -> Format.fprintf ppf "    %a@." Check.Invariant.pp_violation v)
        s.violations)
    r.seeds;
  let dirty = List.filter (fun s -> not (seed_clean s)) r.seeds in
  Format.fprintf ppf "soak verdict: %s@."
    (if dirty = [] then "all seeds clean"
     else
       Printf.sprintf "%d/%d seeds dirty" (List.length dirty) (List.length r.seeds))

let report_json r =
  let seed_json s =
    Obs.Json.Assoc
      [
        ("seed", Obs.Json.Int s.seed);
        ("clean", Obs.Json.Bool (seed_clean s));
        ("polls_succeeded", Obs.Json.Int s.polls_succeeded);
        ("injected", Obs.Json.Int s.injected);
        ("rejected", Obs.Json.Int s.rejected);
        ( "rejected_by_reason",
          Obs.Json.Assoc
            (List.map (fun (k, v) -> (k, Obs.Json.Int v)) s.rejected_by_reason) );
        ( "handler_exn",
          match s.handler_exn with
          | None -> Obs.Json.Null
          | Some exn -> Obs.Json.String exn );
        ( "violations",
          Obs.Json.List (List.map Check.Invariant.violation_to_json s.violations) );
      ]
  in
  Obs.Json.Assoc
    [
      ("years", Obs.Json.Float r.years);
      ("seeds", Obs.Json.List (List.map seed_json r.seeds));
      ("clean", Obs.Json.Bool (all_clean r));
    ]
