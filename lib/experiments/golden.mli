(** Capture of experiment results as pinned golden baselines.

    Turns each paper target's sweep ([fig2]..[fig8], [table1]) into an
    {!Obs.Baseline.t}: the scale fingerprint the sweep ran under plus
    one named metric per figure series point and headline aggregates of
    the paper's measures, each with a drift direction and tolerance.
    [pin-baseline] saves these documents; [diff-baseline] and
    [reproduce --check-baseline] recapture and compare.

    Sweeps are shared: fig3/4/5 read the same pipe-stoppage sweep and
    fig6/7/8 the same admission-flood sweep, forced at most once per
    {!type-sweeps} value — capturing every target costs four sweeps, not
    eight. *)

(** The pinnable targets, in reproduce order:
    [fig2 fig3 fig4 fig5 fig6 fig7 fig8 table1]. *)
val targets : string list

(** Shared lazy sweep results for one scale. *)
type sweeps

val sweeps : scale:Scenario.scale -> sweeps

(** The underlying points, for callers that also render tables or plots
    from the same (single) sweep execution. *)
val stoppage_points : sweeps -> Stoppage.point list

val admission_points : sweeps -> Admission_attack.point list
val baseline_points : sweeps -> Baseline.point list
val effort_rows : sweeps -> Effort_attack.row list

(** The fingerprint {!capture} embeds: every {!Scenario.scale} field as
    a JSON value. A diff against a pin made at a different scale fails
    on the fingerprint before any metric is compared. *)
val config_fingerprint : Scenario.scale -> (string * Obs.Json.t) list

(** [capture ?tolerance_pct sweeps ~scale target] runs (or reuses) the
    target's sweep and captures its baseline document. [tolerance_pct]
    overrides the per-metric drift allowance
    (default {!Obs.Baseline.default_tolerance_pct}). [Error] on an
    unknown target name. *)
val capture :
  ?tolerance_pct:float ->
  sweeps ->
  scale:Scenario.scale ->
  string ->
  (Obs.Baseline.t, string) result
