(** Run manifests: the provenance record attached to scenario runs.

    A manifest is one JSON object answering "what exactly produced this
    output": the CLI command and targets, the seed list the sweep
    consumed, worker-domain counts, the injected fault mix, the source
    revision ([git describe --always --dirty], ["unknown"] outside a git
    checkout), host and toolchain identification, and the run's
    wall-clock and CPU cost. [run]/[reproduce]/[pin-baseline]/
    [diff-baseline] write it with [--manifest-out]; [pin-baseline] also
    embeds it as the pinned document's provenance. *)

(** An open manifest, stamped with its start times at creation. *)
type t

(** [start ~command ()] opens a manifest for the named (sub)command. *)
val start : command:string -> unit -> t

(** Best-effort source revision; never raises. *)
val git_describe : unit -> string

(** [finish t ~seeds ?targets ?fault_mix ()] closes the manifest —
    stamping wall seconds and process-CPU seconds since {!start} — and
    renders it. [seeds] is the full seed list the command consumed;
    [fault_mix] the injected fault configuration, when any. *)
val finish :
  t ->
  seeds:int list ->
  ?targets:string list ->
  ?fault_mix:Obs.Json.t ->
  unit ->
  Obs.Json.t

(** A compact subset for embedding as baseline provenance: revision,
    host, toolchain and pin time, without the cost fields. *)
val provenance : unit -> (string * Obs.Json.t) list

(** [write ~path json] writes the manifest as one JSON line. *)
val write : path:string -> Obs.Json.t -> unit
