module Duration = Repro_prelude.Duration

type scale = {
  peers : int;
  aus : int;
  quorum : int;
  max_disagree : int;
  outer_circle : int;
  reference_target : int;
  years : float;
  runs : int;
  seed : int;
}

let bench =
  {
    peers = 25;
    aus = 4;
    quorum = 5;
    max_disagree = 1;
    outer_circle = 5;
    reference_target = 12;
    years = 2.;
    runs = 2;
    seed = 1;
  }

let paper =
  {
    peers = 100;
    aus = 50;
    quorum = 10;
    max_disagree = 3;
    outer_circle = 10;
    reference_target = 30;
    years = 2.;
    runs = 3;
    seed = 1;
  }

let config ?(base = Lockss.Config.default) scale =
  {
    base with
    Lockss.Config.loyal_peers = scale.peers;
    aus = scale.aus;
    quorum = scale.quorum;
    max_disagree = scale.max_disagree;
    outer_circle_size = scale.outer_circle;
    reference_list_target = scale.reference_target;
  }

type attack =
  | No_attack
  | Pipe_stoppage of { coverage : float; duration : float; recuperation : float }
  | Admission_flood of {
      coverage : float;
      duration : float;
      recuperation : float;
      rate : float;
    }
  | Brute_force of {
      strategy : Adversary.Brute_force.strategy;
      rate : float;
      identities : int;
    }
  | Vote_flood of { rate : float }
  | Combined of attack list

let minion_count = 5

let rec extra_nodes_for = function
  | No_attack | Pipe_stoppage _ -> 0
  | Admission_flood _ | Brute_force _ | Vote_flood _ -> minion_count
  | Combined attacks -> List.fold_left (fun acc a -> acc + extra_nodes_for a) 0 attacks

(* [attach population minions attack] wires the attack, consuming minion
   nodes from the front of [minions]; returns the unconsumed rest. *)
let rec attach population minions attack =
  let take n =
    let rec split acc n rest =
      if n = 0 then (List.rev acc, rest)
      else begin
        match rest with
        | [] -> invalid_arg "Scenario.attach: not enough minion nodes"
        | x :: tl -> split (x :: acc) (n - 1) tl
      end
    in
    split [] n minions
  in
  match attack with
  | No_attack -> minions
  | Pipe_stoppage { coverage; duration; recuperation } ->
    ignore
      (Adversary.Pipe_stoppage.attach population ~coverage ~attack_duration:duration
         ~recuperation);
    minions
  | Admission_flood { coverage; duration; recuperation; rate } ->
    let mine, rest = take minion_count in
    ignore
      (Adversary.Admission_flood.attach population ~minions:mine ~coverage
         ~attack_duration:duration ~recuperation ~invitations_per_victim_au_per_day:rate);
    rest
  | Brute_force { strategy; rate; identities } ->
    let mine, rest = take minion_count in
    ignore
      (Adversary.Brute_force.attach population ~minions:mine ~strategy ~identities
         ~attempts_per_victim_au_per_day:rate);
    rest
  | Vote_flood { rate } ->
    let mine, rest = take minion_count in
    ignore
      (Adversary.Vote_flood.attach population ~minions:mine
         ~votes_per_victim_au_per_day:rate);
    rest
  | Combined attacks -> List.fold_left (attach population) minions attacks

(* -- Observability ----------------------------------------------------- *)

type observe = {
  trace_out : string option;
  trace_level : Lockss.Trace.severity;
  metrics_out : string option;
  sample_interval : float;
}

let default_observe =
  {
    trace_out = None;
    trace_level = Lockss.Trace.Info;
    metrics_out = None;
    sample_interval = Duration.of_days 7.;
  }

let observability_setting : observe option ref = ref None
let set_observability o = observability_setting := o
let observability () = !observability_setting

let file_is_empty path =
  (not (Sys.file_exists path))
  ||
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  close_in ic;
  len = 0

let open_append path =
  open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path

(* Subscribe the configured trace sink and metrics sampler to a freshly
   built population; returns a cleanup closing whatever was opened. *)
let subscribe_observers ~seed population =
  match !observability_setting with
  | None -> Fun.id
  | Some obs ->
    let cleanups = ref [] in
    (match obs.trace_out with
    | None -> ()
    | Some path ->
      let oc = open_append path in
      Lockss.Trace.subscribe
        (Lockss.Population.trace population)
        (Lockss.Trace.jsonl_sink ~min_severity:obs.trace_level oc);
      cleanups := (fun () -> close_out oc) :: !cleanups);
    (match obs.metrics_out with
    | None -> ()
    | Some path ->
      let header = file_is_empty path in
      let oc = open_append path in
      let series =
        Obs.Series.create
          ~format:(Obs.Series.format_of_path path)
          ~columns:Lockss.Sampler.columns ~header oc
      in
      let ctx = Lockss.Population.ctx population in
      let sampler =
        Lockss.Sampler.attach
          ~engine:(Lockss.Population.engine population)
          ~metrics:ctx.Lockss.Peer.metrics ~interval:obs.sample_interval
          (Lockss.Sampler.series_writer ~seed series)
      in
      cleanups :=
        (fun () ->
          Lockss.Sampler.stop sampler;
          close_out oc)
        :: !cleanups);
    fun () -> List.iter (fun f -> f ()) !cleanups

let build ~cfg ~seed attack =
  let population =
    Lockss.Population.create ~seed ~extra_nodes:(extra_nodes_for attack) cfg
  in
  ignore (attach population (Lockss.Population.extra_nodes population) attack);
  population

let run_one ~cfg ~seed ~years attack =
  let population = build ~cfg ~seed attack in
  let cleanup = subscribe_observers ~seed population in
  Fun.protect ~finally:cleanup (fun () ->
      Lockss.Population.run population ~until:(Duration.of_years years);
      Lockss.Population.summary population)

type profile = {
  summary : Lockss.Metrics.summary;
  engine : Narses.Engine.stats;
  setup_cpu_s : float;
  run_cpu_s : float;
}

let run_one_profiled ~cfg ~seed ~years attack =
  let t0 = Sys.time () in
  let population = build ~cfg ~seed attack in
  let cleanup = subscribe_observers ~seed population in
  Fun.protect ~finally:cleanup (fun () ->
      let t1 = Sys.time () in
      Lockss.Population.run population ~until:(Duration.of_years years);
      let t2 = Sys.time () in
      {
        summary = Lockss.Population.summary population;
        engine = Narses.Engine.stats (Lockss.Population.engine population);
        setup_cpu_s = t1 -. t0;
        run_cpu_s = t2 -. t1;
      })

let mean_summaries (summaries : Lockss.Metrics.summary list) =
  match summaries with
  | [] -> invalid_arg "Scenario.mean_summaries: no runs"
  | [ s ] -> s
  | first :: _ ->
    let n = float_of_int (List.length summaries) in
    let favg f = List.fold_left (fun acc s -> acc +. f s) 0. summaries /. n in
    let iavg f =
      int_of_float
        (Float.round (List.fold_left (fun acc s -> acc +. float_of_int (f s)) 0. summaries /. n))
    in
    {
      first with
      Lockss.Metrics.access_failure_probability =
        favg (fun s -> s.Lockss.Metrics.access_failure_probability);
      polls_succeeded = iavg (fun s -> s.Lockss.Metrics.polls_succeeded);
      polls_inquorate = iavg (fun s -> s.Lockss.Metrics.polls_inquorate);
      polls_alarmed = iavg (fun s -> s.Lockss.Metrics.polls_alarmed);
      mean_success_gap = favg (fun s -> s.Lockss.Metrics.mean_success_gap);
      loyal_effort = favg (fun s -> s.Lockss.Metrics.loyal_effort);
      adversary_effort = favg (fun s -> s.Lockss.Metrics.adversary_effort);
      effort_per_successful_poll =
        favg (fun s -> s.Lockss.Metrics.effort_per_successful_poll);
      invitations_considered = iavg (fun s -> s.Lockss.Metrics.invitations_considered);
      invitations_dropped = iavg (fun s -> s.Lockss.Metrics.invitations_dropped);
      repairs = iavg (fun s -> s.Lockss.Metrics.repairs);
      votes_supplied = iavg (fun s -> s.Lockss.Metrics.votes_supplied);
      reads = iavg (fun s -> s.Lockss.Metrics.reads);
      reads_failed = iavg (fun s -> s.Lockss.Metrics.reads_failed);
      empirical_read_failure = favg (fun s -> s.Lockss.Metrics.empirical_read_failure);
    }

let run_all ~cfg scale attack =
  List.init scale.runs (fun i ->
      run_one ~cfg ~seed:(scale.seed + i) ~years:scale.years attack)

let run_avg ~cfg scale attack = mean_summaries (run_all ~cfg scale attack)

type spread = {
  mean : Lockss.Metrics.summary;
  afp_min : float;
  afp_max : float;
}

let run_spread ~cfg scale attack =
  let runs = run_all ~cfg scale attack in
  let afps = List.map (fun s -> s.Lockss.Metrics.access_failure_probability) runs in
  {
    mean = mean_summaries runs;
    afp_min = List.fold_left Float.min infinity afps;
    afp_max = List.fold_left Float.max neg_infinity afps;
  }

type comparison = {
  attack : Lockss.Metrics.summary;
  baseline : Lockss.Metrics.summary;
  access_failure : float;
  delay_ratio : float;
  friction : float;
  cost_ratio : float;
}

let ratios ~baseline ~attack =
  let safe_div a b = if b > 0. && Float.is_finite a then a /. b else infinity in
  {
    attack;
    baseline;
    access_failure = attack.Lockss.Metrics.access_failure_probability;
    delay_ratio =
      safe_div attack.Lockss.Metrics.mean_success_gap
        baseline.Lockss.Metrics.mean_success_gap;
    friction =
      safe_div attack.Lockss.Metrics.effort_per_successful_poll
        baseline.Lockss.Metrics.effort_per_successful_poll;
    cost_ratio =
      safe_div attack.Lockss.Metrics.adversary_effort
        attack.Lockss.Metrics.loyal_effort;
  }

let compare_runs ~cfg scale attack =
  let baseline = run_avg ~cfg scale No_attack in
  let attack_summary = run_avg ~cfg scale attack in
  ratios ~baseline ~attack:attack_summary
