module Duration = Repro_prelude.Duration

type scale = {
  peers : int;
  aus : int;
  quorum : int;
  max_disagree : int;
  outer_circle : int;
  reference_target : int;
  years : float;
  runs : int;
  seed : int;
}

let bench =
  {
    peers = 25;
    aus = 4;
    quorum = 5;
    max_disagree = 1;
    outer_circle = 5;
    reference_target = 12;
    years = 2.;
    runs = 2;
    seed = 1;
  }

let paper =
  {
    peers = 100;
    aus = 50;
    quorum = 10;
    max_disagree = 3;
    outer_circle = 10;
    reference_target = 30;
    years = 2.;
    runs = 3;
    seed = 1;
  }

let config ?(base = Lockss.Config.default) scale =
  {
    base with
    Lockss.Config.loyal_peers = scale.peers;
    aus = scale.aus;
    quorum = scale.quorum;
    max_disagree = scale.max_disagree;
    outer_circle_size = scale.outer_circle;
    reference_list_target = scale.reference_target;
  }

type attack =
  | No_attack
  | Pipe_stoppage of { coverage : float; duration : float; recuperation : float }
  | Admission_flood of {
      coverage : float;
      duration : float;
      recuperation : float;
      rate : float;
    }
  | Brute_force of {
      strategy : Adversary.Brute_force.strategy;
      rate : float;
      identities : int;
    }
  | Vote_flood of { rate : float }
  | Combined of attack list

let minion_count = 5

let rec extra_nodes_for = function
  | No_attack | Pipe_stoppage _ -> 0
  | Admission_flood _ | Brute_force _ | Vote_flood _ -> minion_count
  | Combined attacks -> List.fold_left (fun acc a -> acc + extra_nodes_for a) 0 attacks

(* [attach population minions attack] wires the attack, consuming minion
   nodes from the front of [minions]; returns the unconsumed rest. *)
let rec attach population minions attack =
  let take n =
    let rec split acc n rest =
      if n = 0 then (List.rev acc, rest)
      else begin
        match rest with
        | [] -> invalid_arg "Scenario.attach: not enough minion nodes"
        | x :: tl -> split (x :: acc) (n - 1) tl
      end
    in
    split [] n minions
  in
  match attack with
  | No_attack -> minions
  | Pipe_stoppage { coverage; duration; recuperation } ->
    ignore
      (Adversary.Pipe_stoppage.attach population ~coverage ~attack_duration:duration
         ~recuperation);
    minions
  | Admission_flood { coverage; duration; recuperation; rate } ->
    let mine, rest = take minion_count in
    ignore
      (Adversary.Admission_flood.attach population ~minions:mine ~coverage
         ~attack_duration:duration ~recuperation ~invitations_per_victim_au_per_day:rate);
    rest
  | Brute_force { strategy; rate; identities } ->
    let mine, rest = take minion_count in
    ignore
      (Adversary.Brute_force.attach population ~minions:mine ~strategy ~identities
         ~attempts_per_victim_au_per_day:rate);
    rest
  | Vote_flood { rate } ->
    let mine, rest = take minion_count in
    ignore
      (Adversary.Vote_flood.attach population ~minions:mine
         ~votes_per_victim_au_per_day:rate);
    rest
  | Combined attacks -> List.fold_left (attach population) minions attacks

(* -- Observability ----------------------------------------------------- *)

type trace_format = [ `Auto | `Jsonl | `Binary ]

type observe = {
  trace_out : string option;
  trace_level : Lockss.Trace.severity;
  trace_format : trace_format;
  metrics_out : string option;
  sample_interval : float;
  spans_out : string option;
  ledger_out : string option;
  profile_out : string option;
}

let default_observe =
  {
    trace_out = None;
    trace_level = Lockss.Trace.Info;
    trace_format = `Auto;
    metrics_out = None;
    sample_interval = Duration.of_days 7.;
    spans_out = None;
    ledger_out = None;
    profile_out = None;
  }

let resolve_trace_format format path : Obs.Trace_file.format =
  match format with
  | `Jsonl -> Obs.Trace_file.Jsonl
  | `Binary -> Obs.Trace_file.Binary
  | `Auto -> Obs.Trace_file.format_of_path path

(* [suffix_path path tag] inserts [.tag] before the extension:
   "out/m.csv" -> "out/m.seed3.csv". Observability output is per run —
   every job owns its files exclusively, so parallel jobs never share an
   output channel. *)
let suffix_path path tag =
  let ext = Filename.extension path in
  let base = if ext = "" then path else Filename.remove_extension path in
  Printf.sprintf "%s.%s%s" base tag ext

let seeded_path path ~seed = suffix_path path (Printf.sprintf "seed%d" seed)

(* [tag_observe tag obs] retargets both outputs so a second role in the
   same experiment (the no-attack side of a paired comparison) cannot
   collide with the first at equal seeds. *)
let tag_observe tag obs =
  let retag = Option.map (fun p -> suffix_path p tag) in
  {
    obs with
    trace_out = retag obs.trace_out;
    metrics_out = retag obs.metrics_out;
    spans_out = retag obs.spans_out;
    ledger_out = retag obs.ledger_out;
    profile_out = retag obs.profile_out;
  }

(* Trace sinks drain to the OS on a size bound (the sink's buffer) and,
   as a backstop for long quiet stretches, once per simulated month. *)
let trace_flush_interval = Duration.of_days 30.

(* Subscribe the requested trace sink and metrics sampler to a freshly
   built population; returns a cleanup closing whatever was opened. Each
   run writes (truncating) its own seed-suffixed files. *)
let subscribe_observers ?profiler ~observe ~seed population =
  match observe with
  | None -> Fun.id
  | Some obs ->
    let cleanups = ref [] in
    (match obs.trace_out with
    | None -> ()
    | Some path ->
      let sink =
        Obs.Sink.open_file ~flush_interval:trace_flush_interval
          (seeded_path path ~seed)
      in
      (* [interest] mirrors the sink's severity filter back onto the
         bus, so below-threshold events are never even constructed when
         this is the only subscriber. *)
      let trace_sink =
        match resolve_trace_format obs.trace_format path with
        | Obs.Trace_file.Jsonl ->
          Lockss.Trace.buffered_jsonl_sink ~min_severity:obs.trace_level sink
        | Obs.Trace_file.Binary ->
          Lockss.Trace.binary_sink ~min_severity:obs.trace_level
            (Obs.Btrace.writer sink)
      in
      Lockss.Trace.subscribe ~interest:obs.trace_level
        (Lockss.Population.trace population)
        trace_sink;
      cleanups := (fun () -> Obs.Sink.close sink) :: !cleanups);
    (match obs.metrics_out with
    | None -> ()
    | Some path ->
      let sink = Obs.Sink.open_file (seeded_path path ~seed) in
      let series =
        Obs.Series.create
          ~format:(Obs.Series.format_of_path path)
          ~columns:Lockss.Sampler.columns sink
      in
      let ctx = Lockss.Population.ctx population in
      let sampler =
        Lockss.Sampler.attach
          ~engine:(Lockss.Population.engine population)
          ~metrics:ctx.Lockss.Peer.metrics ~interval:obs.sample_interval
          (Lockss.Sampler.series_writer ~seed series)
      in
      cleanups :=
        (fun () ->
          Lockss.Sampler.stop sampler;
          Obs.Series.close series)
        :: !cleanups);
    (match obs.profile_out with
    | None -> ()
    | Some path ->
      let prof =
        match profiler with Some p -> p | None -> Obs.Profiler.create ()
      in
      cleanups :=
        (fun () ->
          Obs.Profiler.sample_gc prof;
          let stats = Narses.Engine.stats (Lockss.Population.engine population) in
          Out_channel.with_open_text (seeded_path path ~seed) (fun oc ->
              output_string oc
                (Obs.Json.to_string
                   (Obs.Json.Assoc
                      [
                        ("profile", Obs.Profiler.snapshot_json prof);
                        ( "engine",
                          Obs.Json.Assoc
                            [
                              ("executed", Obs.Json.Int stats.Narses.Engine.executed);
                              ("scheduled", Obs.Json.Int stats.Narses.Engine.scheduled);
                              ("cancelled", Obs.Json.Int stats.Narses.Engine.cancelled);
                              ("pending", Obs.Json.Int stats.Narses.Engine.pending);
                              ( "max_heap_depth",
                                Obs.Json.Int stats.Narses.Engine.max_heap_depth );
                            ] );
                      ]));
              output_char oc '\n'))
        :: !cleanups);
    (match (obs.spans_out, obs.ledger_out) with
    | None, None -> ()
    | spans_out, ledger_out ->
      (* The live analyzer subscribes below the severity filter: span
         and ledger reconstruction need the full Debug stream even when
         the trace file itself is written at a higher level. Live
         analysis takes the typed fast path ({!Lockss.Trace.to_view}) —
         no JSON is built — while offline analysis of a trace file goes
         through {!Obs.View.of_json}; the two are checked to agree. *)
      let analyzer = Obs.Analyze.create () in
      Lockss.Trace.subscribe
        (Lockss.Population.trace population)
        (fun ~time event ->
          Obs.Analyze.feed_view analyzer (Lockss.Trace.to_view ~time event));
      cleanups :=
        (fun () ->
          (match spans_out with
          | None -> ()
          | Some path ->
            Out_channel.with_open_text (seeded_path path ~seed) (fun oc ->
                List.iter
                  (fun span ->
                    output_string oc (Obs.Json.to_string (Obs.Span.span_to_json span));
                    output_char oc '\n')
                  (Obs.Span.spans (Obs.Analyze.span_builder analyzer))));
          match ledger_out with
          | None -> ()
          | Some path ->
            let summary = Lockss.Population.summary population in
            let ledger = Obs.Analyze.ledger analyzer in
            let reconciliation =
              Obs.Ledger.reconcile ledger
                ~loyal_effort:summary.Lockss.Metrics.loyal_effort
                ~adversary_effort:summary.Lockss.Metrics.adversary_effort
                ~polls_succeeded:summary.Lockss.Metrics.polls_succeeded
                ~polls_inquorate:summary.Lockss.Metrics.polls_inquorate
                ~polls_alarmed:summary.Lockss.Metrics.polls_alarmed
                ~votes_supplied:summary.Lockss.Metrics.votes_supplied
                ~invitations_considered:summary.Lockss.Metrics.invitations_considered
            in
            Out_channel.with_open_text (seeded_path path ~seed) (fun oc ->
                output_string oc
                  (Obs.Json.to_string
                     (Obs.Json.Assoc
                        [
                          ("ledger", Obs.Ledger.to_json ledger);
                          ( "reconciliation",
                            Obs.Ledger.reconciliation_to_json reconciliation );
                        ]));
                output_char oc '\n'))
        :: !cleanups);
    fun () -> List.iter (fun f -> f ()) !cleanups

let build ~cfg ~seed attack =
  let population =
    Lockss.Population.create ~seed ~extra_nodes:(extra_nodes_for attack) cfg
  in
  ignore (attach population (Lockss.Population.extra_nodes population) attack);
  population

let maybe_phase profiler name f =
  match profiler with None -> f () | Some p -> Obs.Profiler.phase p name f

let run_one ?observe ?check ~cfg ~seed ~years attack =
  let profiler =
    match observe with
    | Some { profile_out = Some _; _ } -> Some (Obs.Profiler.create ())
    | _ -> None
  in
  let population = maybe_phase profiler "setup" (fun () -> build ~cfg ~seed attack) in
  (match check with
  | None -> ()
  | Some auditor -> Check.Auditor.attach auditor (Lockss.Population.trace population));
  let cleanup = subscribe_observers ?profiler ~observe ~seed population in
  Fun.protect ~finally:cleanup (fun () ->
      maybe_phase profiler "run" (fun () ->
          Lockss.Population.run population ~until:(Duration.of_years years));
      let summary = Lockss.Population.summary population in
      (match check with
      | None -> ()
      | Some auditor -> Check.Auditor.finish ~metrics:summary auditor);
      summary)

(* -- Auditing ----------------------------------------------------------- *)

let make_auditor ~cfg () =
  Check.Auditor.create ~params:(Check.Invariant.params_of_config cfg) ()

let run_one_audited ?observe ~cfg ~seed ~years attack =
  let auditor = make_auditor ~cfg () in
  let summary = run_one ?observe ~check:auditor ~cfg ~seed ~years attack in
  (summary, Check.Auditor.violations auditor)

type profile = {
  summary : Lockss.Metrics.summary;
  engine : Narses.Engine.stats;
  setup_cpu_s : float;
  run_cpu_s : float;
  gc : Obs.Profiler.gc;
}

let run_one_profiled ?observe ~cfg ~seed ~years attack =
  let gc0 = Obs.Profiler.gc_now () in
  let t0 = Sys.time () in
  let population = build ~cfg ~seed attack in
  let cleanup = subscribe_observers ~observe ~seed population in
  Fun.protect ~finally:cleanup (fun () ->
      let t1 = Sys.time () in
      Lockss.Population.run population ~until:(Duration.of_years years);
      let t2 = Sys.time () in
      {
        summary = Lockss.Population.summary population;
        engine = Narses.Engine.stats (Lockss.Population.engine population);
        setup_cpu_s = t1 -. t0;
        run_cpu_s = t2 -. t1;
        gc = Obs.Profiler.gc_delta ~before:gc0 ~after:(Obs.Profiler.gc_now ());
      })

let mean_summaries (summaries : Lockss.Metrics.summary list) =
  match summaries with
  | [] -> invalid_arg "Scenario.mean_summaries: no runs"
  | [ s ] -> s
  | first :: _ ->
    let n = float_of_int (List.length summaries) in
    let favg f = List.fold_left (fun acc s -> acc +. f s) 0. summaries /. n in
    let iavg f =
      int_of_float
        (Float.round (List.fold_left (fun acc s -> acc +. float_of_int (f s)) 0. summaries /. n))
    in
    let isum f = List.fold_left (fun acc s -> acc + f s) 0 summaries in
    (* A run with zero reads has no empirical failure rate (NaN), and one
       NaN would poison the cross-run mean: average over the runs that
       read at all, NaN only when none did. *)
    let read_failure =
      let observed =
        List.filter_map
          (fun s ->
            if s.Lockss.Metrics.reads > 0 then
              Some s.Lockss.Metrics.empirical_read_failure
            else None)
          summaries
      in
      match observed with
      | [] -> nan
      | _ ->
        List.fold_left ( +. ) 0. observed /. float_of_int (List.length observed)
    in
    {
      first with
      Lockss.Metrics.horizon = favg (fun s -> s.Lockss.Metrics.horizon);
      access_failure_probability =
        favg (fun s -> s.Lockss.Metrics.access_failure_probability);
      polls_succeeded = iavg (fun s -> s.Lockss.Metrics.polls_succeeded);
      polls_inquorate = iavg (fun s -> s.Lockss.Metrics.polls_inquorate);
      polls_alarmed = iavg (fun s -> s.Lockss.Metrics.polls_alarmed);
      mean_success_gap = favg (fun s -> s.Lockss.Metrics.mean_success_gap);
      loyal_effort = favg (fun s -> s.Lockss.Metrics.loyal_effort);
      adversary_effort = favg (fun s -> s.Lockss.Metrics.adversary_effort);
      effort_per_successful_poll =
        favg (fun s -> s.Lockss.Metrics.effort_per_successful_poll);
      invitations_considered = iavg (fun s -> s.Lockss.Metrics.invitations_considered);
      invitations_dropped = iavg (fun s -> s.Lockss.Metrics.invitations_dropped);
      repairs = iavg (fun s -> s.Lockss.Metrics.repairs);
      (* Anomaly counters are summed, not averaged: a single underflow in
         any run must stay visible in the aggregate. *)
      repair_underflows = isum (fun s -> s.Lockss.Metrics.repair_underflows);
      votes_supplied = iavg (fun s -> s.Lockss.Metrics.votes_supplied);
      reads = iavg (fun s -> s.Lockss.Metrics.reads);
      reads_failed = iavg (fun s -> s.Lockss.Metrics.reads_failed);
      empirical_read_failure = read_failure;
    }

let run_all ?observe ~cfg scale attack =
  Runner.map
    (fun i -> run_one ?observe ~cfg ~seed:(scale.seed + i) ~years:scale.years attack)
    (List.init scale.runs Fun.id)

let run_avg ?observe ~cfg scale attack =
  mean_summaries (run_all ?observe ~cfg scale attack)

(* Audited sweeps: one auditor per run (runs execute on separate
   domains), violations merged back in seed order by [Runner.map], so a
   multi-run audit is as deterministic as the runs themselves. *)
let run_all_audited ?observe ~cfg scale attack =
  List.split
    (Runner.map
       (fun i ->
         let seed = scale.seed + i in
         let summary, violations =
           run_one_audited ?observe ~cfg ~seed ~years:scale.years attack
         in
         (summary, (seed, violations)))
       (List.init scale.runs Fun.id))

let run_avg_audited ?observe ~cfg scale attack =
  let summaries, audits = run_all_audited ?observe ~cfg scale attack in
  (mean_summaries summaries, audits)

type spread = {
  mean : Lockss.Metrics.summary;
  afp_min : float;
  afp_max : float;
}

let run_spread ?observe ~cfg scale attack =
  let runs = run_all ?observe ~cfg scale attack in
  let afps = List.map (fun s -> s.Lockss.Metrics.access_failure_probability) runs in
  {
    mean = mean_summaries runs;
    afp_min = List.fold_left Float.min infinity afps;
    afp_max = List.fold_left Float.max neg_infinity afps;
  }

type comparison = {
  attack : Lockss.Metrics.summary;
  baseline : Lockss.Metrics.summary;
  access_failure : float;
  delay_ratio : float;
  friction : float;
  cost_ratio : float;
}

let ratios ~baseline ~attack =
  let safe_div a b = if b > 0. && Float.is_finite a then a /. b else infinity in
  {
    attack;
    baseline;
    access_failure = attack.Lockss.Metrics.access_failure_probability;
    delay_ratio =
      safe_div attack.Lockss.Metrics.mean_success_gap
        baseline.Lockss.Metrics.mean_success_gap;
    friction =
      safe_div attack.Lockss.Metrics.effort_per_successful_poll
        baseline.Lockss.Metrics.effort_per_successful_poll;
    cost_ratio =
      safe_div attack.Lockss.Metrics.adversary_effort
        attack.Lockss.Metrics.loyal_effort;
  }

let compare_runs ?observe ~cfg scale attack =
  (* Both sides reuse the same seeds, so the baseline's sinks are
     retargeted to [.baseline]-suffixed paths. The two averaged sweeps
     are independent; run them on separate domains when available. *)
  let baseline_observe = Option.map (tag_observe "baseline") observe in
  let baseline, attack_summary =
    Runner.both
      (fun () -> run_avg ?observe:baseline_observe ~cfg scale No_attack)
      (fun () -> run_avg ?observe ~cfg scale attack)
  in
  ratios ~baseline ~attack:attack_summary

let compare_runs_audited ?observe ~cfg scale attack =
  let baseline_observe = Option.map (tag_observe "baseline") observe in
  let (baseline, baseline_audits), (attack_summary, attack_audits) =
    Runner.both
      (fun () -> run_avg_audited ?observe:baseline_observe ~cfg scale No_attack)
      (fun () -> run_avg_audited ?observe ~cfg scale attack)
  in
  ( ratios ~baseline ~attack:attack_summary,
    List.map (fun (seed, vs) -> ("baseline", seed, vs)) baseline_audits
    @ List.map (fun (seed, vs) -> ("attack", seed, vs)) attack_audits )
