module Duration = Repro_prelude.Duration
module Table = Repro_prelude.Table

type point = {
  coverage : float;
  duration : float;
  access_failure : float;
  delay_ratio : float;
  friction : float;
}

let default_durations = List.map Duration.of_days [ 2.; 10.; 45.; 90.; 180. ]
let default_coverages = [ 0.1; 0.3; 0.5; 1.0 ]
let recuperation = Duration.of_days 30.

let sweep ?(scale = Scenario.bench) ?(durations = default_durations)
    ?(coverages = default_coverages) () =
  let cfg = Scenario.config scale in
  let grid =
    List.concat_map
      (fun coverage -> List.map (fun duration -> (coverage, duration)) durations)
      coverages
  in
  (* The baseline and every grid point are independent averaged runs: one
     job each, fanned out over Runner workers, merged in grid order. *)
  let summaries =
    Runner.map
      (fun attack -> Scenario.run_avg ~cfg scale attack)
      (Scenario.No_attack
      :: List.map
           (fun (coverage, duration) ->
             Scenario.Pipe_stoppage { coverage; duration; recuperation })
           grid)
  in
  match summaries with
  | [] -> assert false
  | baseline :: attacked ->
    List.map2
      (fun (coverage, duration) summary ->
        let c = Scenario.ratios ~baseline ~attack:summary in
        {
          coverage;
          duration;
          access_failure = c.Scenario.access_failure;
          delay_ratio = c.Scenario.delay_ratio;
          friction = c.Scenario.friction;
        })
      grid attacked

let metric_table ~header value points =
  let table = Table.create [ "coverage"; "attack duration"; header ] in
  List.iter
    (fun p ->
      Table.add_row table [ Report.pct p.coverage; Report.days p.duration; value p ])
    points;
  table

let fig3_table = metric_table ~header:"access failure prob." (fun p -> Report.sci p.access_failure)
let fig4_table = metric_table ~header:"delay ratio" (fun p -> Report.ratio p.delay_ratio)
let fig5_table = metric_table ~header:"coeff. of friction" (fun p -> Report.ratio p.friction)
