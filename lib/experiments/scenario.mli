(** Experiment scaffolding: scales, attacks, paired runs and ratio
    metrics.

    The paper's evaluation compares each attack run against a no-attack
    baseline with identical parameters and seeds: delay ratio and the
    coefficient of friction are "the same measurement without the attack"
    ratios, and the cost ratio compares attacker and defender effort
    within the attack run. {!compare_runs} packages that methodology.

    Two standard scales are provided. {!paper} is the configuration of
    Section 6.3 (100 peers, 3-month interval, quorum 10, 2 simulated
    years, 3 runs per data point). {!bench} is a proportionally reduced
    deployment (25 peers, quorum 5) whose full figure suite runs in
    minutes; attack phenomenology is scale-stable, which the tests
    check. *)

type scale = {
  peers : int;
  aus : int;
  quorum : int;
  max_disagree : int;
  outer_circle : int;
  reference_target : int;
  years : float;  (** simulated horizon *)
  runs : int;  (** runs averaged per data point *)
  seed : int;
}

val bench : scale
val paper : scale

(** [config ?base scale] specialises a configuration (default
    {!Lockss.Config.default}) to the scale. *)
val config : ?base:Lockss.Config.t -> scale -> Lockss.Config.t

type attack =
  | No_attack
  | Pipe_stoppage of { coverage : float; duration : float; recuperation : float }
  | Admission_flood of {
      coverage : float;
      duration : float;
      recuperation : float;
      rate : float;  (** garbage invitations per victim-AU per day *)
    }
  | Brute_force of {
      strategy : Adversary.Brute_force.strategy;
      rate : float;  (** admission attempts per victim-AU per day *)
      identities : int;
    }
  | Vote_flood of { rate : float  (** unsolicited bogus votes per victim-AU per day *) }
  | Combined of attack list
      (** several adversaries at once (Section 9's combined strategies);
          each effortful sub-attack gets its own minion nodes *)

(** {2 Observability}

    Every scenario run — whether launched directly, by a figure sweep or
    by the CLI — consults a process-wide observability setting, so
    turning on tracing or time-series sampling requires no per-experiment
    plumbing. *)

type observe = {
  trace_out : string option;
      (** append protocol events as JSONL ({!Lockss.Trace.to_json}) here *)
  trace_level : Lockss.Trace.severity;  (** minimum severity written *)
  metrics_out : string option;
      (** append periodic metric samples here; [.jsonl]/[.json] selects
          JSONL, anything else CSV (columns {!Lockss.Sampler.columns}) *)
  sample_interval : float;  (** seconds of simulated time between samples *)
}

(** [default_observe] writes nothing: both outputs [None], level [Info],
    7-day sampling interval. *)
val default_observe : observe

(** [set_observability o] installs (or with [None] clears) the
    process-wide setting consulted by {!run_one}. Output files are opened
    in append mode per run, so multi-run sweeps accumulate into one file,
    distinguished by the [seed] column. *)
val set_observability : observe option -> unit

val observability : unit -> observe option

(** [build ~cfg ~seed attack] constructs the population with the attack
    attached but does not run it — for harnesses (like {!Chaos}) that
    need to subscribe observers or probe engine state mid-run. *)
val build : cfg:Lockss.Config.t -> seed:int -> attack -> Lockss.Population.t

(** [run_one ~cfg ~seed ~years attack] builds a population, attaches the
    attack, runs the horizon and returns the finalised metrics. Honors
    {!set_observability}. *)
val run_one : cfg:Lockss.Config.t -> seed:int -> years:float -> attack ->
  Lockss.Metrics.summary

(** One scenario run with engine profiling attached: the summary plus the
    engine's event statistics and the CPU seconds spent building the
    population ([setup_cpu_s]) and executing events ([run_cpu_s]) —
    enough to compute events/second and locate simulator hot spots. *)
type profile = {
  summary : Lockss.Metrics.summary;
  engine : Narses.Engine.stats;
  setup_cpu_s : float;
  run_cpu_s : float;
}

val run_one_profiled :
  cfg:Lockss.Config.t -> seed:int -> years:float -> attack -> profile

(** [run_avg ~cfg scale attack] averages [scale.runs] runs over seeds
    [scale.seed], [scale.seed+1], …. *)
val run_avg : cfg:Lockss.Config.t -> scale -> attack -> Lockss.Metrics.summary

type spread = {
  mean : Lockss.Metrics.summary;
  afp_min : float;  (** lowest access-failure probability across runs *)
  afp_max : float;  (** highest, matching the min/max bars of Figure 2 *)
}

(** [run_spread ~cfg scale attack] is {!run_avg} plus the across-run
    extremes of the access-failure probability. *)
val run_spread : cfg:Lockss.Config.t -> scale -> attack -> spread

type comparison = {
  attack : Lockss.Metrics.summary;
  baseline : Lockss.Metrics.summary;
  access_failure : float;  (** of the attack run *)
  delay_ratio : float;
  friction : float;
  cost_ratio : float;
}

(** [ratios ~baseline ~attack] forms the paper's three ratio metrics. *)
val ratios : baseline:Lockss.Metrics.summary -> attack:Lockss.Metrics.summary ->
  comparison

(** [compare_runs ~cfg scale attack] runs both sides and returns the
    comparison. *)
val compare_runs : cfg:Lockss.Config.t -> scale -> attack -> comparison
