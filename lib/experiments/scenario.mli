(** Experiment scaffolding: scales, attacks, paired runs and ratio
    metrics.

    The paper's evaluation compares each attack run against a no-attack
    baseline with identical parameters and seeds: delay ratio and the
    coefficient of friction are "the same measurement without the attack"
    ratios, and the cost ratio compares attacker and defender effort
    within the attack run. {!compare_runs} packages that methodology.

    Two standard scales are provided. {!paper} is the configuration of
    Section 6.3 (100 peers, 3-month interval, quorum 10, 2 simulated
    years, 3 runs per data point). {!bench} is a proportionally reduced
    deployment (25 peers, quorum 5) whose full figure suite runs in
    minutes; attack phenomenology is scale-stable, which the tests
    check. *)

type scale = {
  peers : int;
  aus : int;
  quorum : int;
  max_disagree : int;
  outer_circle : int;
  reference_target : int;
  years : float;  (** simulated horizon *)
  runs : int;  (** runs averaged per data point *)
  seed : int;
}

val bench : scale
val paper : scale

(** [config ?base scale] specialises a configuration (default
    {!Lockss.Config.default}) to the scale. *)
val config : ?base:Lockss.Config.t -> scale -> Lockss.Config.t

type attack =
  | No_attack
  | Pipe_stoppage of { coverage : float; duration : float; recuperation : float }
  | Admission_flood of {
      coverage : float;
      duration : float;
      recuperation : float;
      rate : float;  (** garbage invitations per victim-AU per day *)
    }
  | Brute_force of {
      strategy : Adversary.Brute_force.strategy;
      rate : float;  (** admission attempts per victim-AU per day *)
      identities : int;
    }
  | Vote_flood of { rate : float  (** unsolicited bogus votes per victim-AU per day *) }
  | Combined of attack list
      (** several adversaries at once (Section 9's combined strategies);
          each effortful sub-attack gets its own minion nodes *)

(** {2 Observability}

    Observability is a per-run argument, threaded explicitly from the
    caller down to each job: simulation runs execute on multiple domains
    ({!Runner}), so there is no process-wide setting and no shared
    output channel. Each run writes its own files, the configured paths
    suffixed with the run's seed ([m.csv] becomes [m.seed3.csv]), so a
    multi-run sweep yields one file per seed. *)

(** Encoding of the [trace_out] file. [`Auto] resolves from the path's
    extension ([.ntrace] is binary, anything else JSONL). *)
type trace_format = [ `Auto | `Jsonl | `Binary ]

type observe = {
  trace_out : string option;
      (** write protocol events to this path, suffixed per run by seed —
          JSONL ({!Lockss.Trace.to_json}) or the compact binary format
          ({!Obs.Btrace}) per [trace_format]; buffered either way, with
          the file closed (and therefore flushed) when the run ends *)
  trace_level : Lockss.Trace.severity;  (** minimum severity written *)
  trace_format : trace_format;
  metrics_out : string option;
      (** write periodic metric samples to this path, suffixed per run
          by seed; [.jsonl]/[.json] selects JSONL, anything else CSV
          (columns {!Lockss.Sampler.columns}) *)
  sample_interval : float;  (** seconds of simulated time between samples *)
  spans_out : string option;
      (** write reconstructed poll spans ({!Obs.Span.span_to_json}, one
          JSONL line per poll) to this path, suffixed per run by seed.
          The live span builder subscribes below the severity filter, so
          spans are complete even at [trace_level = Warn] *)
  ledger_out : string option;
      (** write the per-peer effort ledger plus its reconciliation
          against the run's metrics as one JSON object to this path,
          suffixed per run by seed *)
  profile_out : string option;
      (** write a run-wide profile (phase wall-clock, GC counters,
          metric registry snapshot, engine stats) as one JSON object to
          this path, suffixed per run by seed *)
}

(** [default_observe] writes nothing: all outputs [None], level [Info],
    [`Auto] trace format, 7-day sampling interval. *)
val default_observe : observe

(** [seeded_path path ~seed] is the per-run output path derived from a
    configured [path]: [.seed<N>] inserted before the extension. *)
val seeded_path : string -> seed:int -> string

(** [tag_observe tag obs] retargets both output paths with an extra
    [.tag] suffix — used by paired comparisons whose two sides reuse the
    same seeds ({!compare_runs} tags its no-attack side [baseline]). *)
val tag_observe : string -> observe -> observe

(** [build ~cfg ~seed attack] constructs the population with the attack
    attached but does not run it — for harnesses (like {!Chaos}) that
    need to subscribe observers or probe engine state mid-run. *)
val build : cfg:Lockss.Config.t -> seed:int -> attack -> Lockss.Population.t

(** [run_one ?observe ?check ~cfg ~seed ~years attack] builds a
    population, attaches the attack, runs the horizon and returns the
    finalised metrics, writing the run's trace/metrics files when
    [observe] is given. When a [check] auditor is given it is attached
    to the run's trace bus (so every protocol invariant is evaluated
    online and violations land in the trace as
    [Invariant_violated] events) and finished against the run's metrics
    before returning. *)
val run_one : ?observe:observe -> ?check:Check.Auditor.t -> cfg:Lockss.Config.t ->
  seed:int -> years:float -> attack -> Lockss.Metrics.summary

(** [make_auditor ~cfg ()] is a fresh auditor parameterised by the run
    configuration ({!Check.Invariant.params_of_config}). *)
val make_auditor : cfg:Lockss.Config.t -> unit -> Check.Auditor.t

(** [run_one_audited] is {!run_one} with its own fresh auditor; returns
    the summary and the violations observed (empty on a clean run). *)
val run_one_audited :
  ?observe:observe -> cfg:Lockss.Config.t -> seed:int -> years:float -> attack ->
  Lockss.Metrics.summary * Check.Invariant.violation list

(** [run_all_audited] is {!run_all} with one auditor per run; the
    violation lists come back seed-tagged, in seed order. *)
val run_all_audited :
  ?observe:observe -> cfg:Lockss.Config.t -> scale -> attack ->
  Lockss.Metrics.summary list * (int * Check.Invariant.violation list) list

(** [run_avg_audited] averages like {!run_avg} and returns the
    seed-tagged violations of every contributing run. *)
val run_avg_audited :
  ?observe:observe -> cfg:Lockss.Config.t -> scale -> attack ->
  Lockss.Metrics.summary * (int * Check.Invariant.violation list) list

(** One scenario run with engine profiling attached: the summary plus the
    engine's event statistics, the CPU seconds spent building the
    population ([setup_cpu_s]) and executing events ([run_cpu_s]), and
    the GC counter deltas across the whole run — enough to compute
    events/second, allocation per event, and locate simulator hot
    spots. *)
type profile = {
  summary : Lockss.Metrics.summary;
  engine : Narses.Engine.stats;
  setup_cpu_s : float;
  run_cpu_s : float;
  gc : Obs.Profiler.gc;
}

val run_one_profiled :
  ?observe:observe -> cfg:Lockss.Config.t -> seed:int -> years:float -> attack ->
  profile

(** [run_all ?observe ~cfg scale attack] runs seeds [scale.seed],
    [scale.seed+1], … in parallel over {!Runner} workers and returns the
    summaries in seed order — byte-identical to a serial loop. *)
val run_all :
  ?observe:observe -> cfg:Lockss.Config.t -> scale -> attack ->
  Lockss.Metrics.summary list

(** [run_avg ?observe ~cfg scale attack] is {!mean_summaries} of
    {!run_all}: [scale.runs] runs averaged ({!run_all}'s parallelism
    included). *)
val run_avg :
  ?observe:observe -> cfg:Lockss.Config.t -> scale -> attack ->
  Lockss.Metrics.summary

(** [mean_summaries summaries] averages metrics across runs. Counters
    average (rounded); anomaly counters ([repair_underflows]) sum so a
    single anomaly stays visible; [empirical_read_failure] averages over
    the runs that performed reads (NaN only when none did). *)
val mean_summaries : Lockss.Metrics.summary list -> Lockss.Metrics.summary

type spread = {
  mean : Lockss.Metrics.summary;
  afp_min : float;  (** lowest access-failure probability across runs *)
  afp_max : float;  (** highest, matching the min/max bars of Figure 2 *)
}

(** [run_spread ?observe ~cfg scale attack] is {!run_avg} plus the
    across-run extremes of the access-failure probability. *)
val run_spread : ?observe:observe -> cfg:Lockss.Config.t -> scale -> attack -> spread

type comparison = {
  attack : Lockss.Metrics.summary;
  baseline : Lockss.Metrics.summary;
  access_failure : float;  (** of the attack run *)
  delay_ratio : float;
  friction : float;
  cost_ratio : float;
}

(** [ratios ~baseline ~attack] forms the paper's three ratio metrics. *)
val ratios : baseline:Lockss.Metrics.summary -> attack:Lockss.Metrics.summary ->
  comparison

(** [compare_runs ?observe ~cfg scale attack] runs both sides (on two
    domains when available) and returns the comparison; the baseline
    side's observability paths are tagged [baseline] because both sides
    reuse the same seeds. *)
val compare_runs :
  ?observe:observe -> cfg:Lockss.Config.t -> scale -> attack -> comparison

(** [compare_runs_audited] audits both sides of the comparison; each
    violation list is tagged with its side (["baseline"] or ["attack"])
    and seed, baseline side first. *)
val compare_runs_audited :
  ?observe:observe -> cfg:Lockss.Config.t -> scale -> attack ->
  comparison * (string * int * Check.Invariant.violation list) list
