(** Parallel execution of independent simulation jobs on a persistent
    domain pool.

    The paper's evaluation is a grid of independent randomized runs —
    seeds × attack parameters × configurations — and every simulation
    holds all of its mutable state (engine, RNG streams, metrics, trace
    bus) inside its own {!Lockss.Population.t}. Jobs therefore share
    nothing and can run on separate OCaml 5 domains.

    Worker domains are spawned once, on the first parallel {!map} or
    {!both}, and parked between batches; every later call reuses them
    (an [at_exit] hook tears the pool down). Helpers keep a persistent
    slot id — 1, 2, ... with 0 always the calling domain — so profiler
    attribution is stable across the whole run. Each helper enlarges its
    minor heap once at spawn ([LOCKSS_MINOR_HEAP] words, default 2^20)
    because simulation batches allocate fast enough to thrash the
    default nursery.

    Determinism contract: {!map} applies [f] to each element exactly
    once, in any order and on any domain, and returns the results in
    submission order. Because each job derives all of its randomness
    from its own seed and touches no cross-job state, parallel output is
    byte-identical to serial output for the same job list — whatever the
    worker count, chunking, or pool reuse history. A job's exception is
    re-raised in the caller (lowest job index wins when several jobs
    fail).

    Nesting is safe and cheap: a {!map} issued from inside a worker runs
    serially on that worker, so sweeps that parallelise over grid points
    may call {!Scenario.run_all} (which itself maps over seeds) without
    queueing pool batches recursively. *)

(** [default_jobs ()] is the [LOCKSS_JOBS] environment variable when set
    to a positive integer, otherwise [Domain.recommended_domain_count
    ()]. *)
val default_jobs : unit -> int

(** [set_jobs n] overrides the process-wide worker count: [n >= 1] forces
    exactly [n] workers ([1] = serial), [0] restores the
    {!default_jobs} heuristic. Raises [Invalid_argument] on negative
    [n]. This is a performance knob only — it never changes results.
    Already-spawned pool helpers beyond the new count stay parked, not
    killed; they simply never join a batch that needs fewer. *)
val set_jobs : int -> unit

(** [jobs ()] is the worker count {!map} will use: the {!set_jobs}
    override when non-zero, else {!default_jobs}. *)
val jobs : unit -> int

(** [set_profiler (Some p)] attaches a run-wide profiler: each parallel
    {!map} (and {!both}) records every participating slot's busy
    wall-clock seconds, thread-CPU seconds, completed task count and
    per-domain GC activity (minor words allocated, minor/major
    collections) into [p] via {!Obs.Profiler.note_domain}, keyed by pool
    slot (0 = the calling domain). Workers never touch the profiler
    themselves — effort is collected per slot and folded in by the
    calling domain after the batch barrier, so no synchronisation is
    needed. Call from the main domain only; [set_profiler None]
    detaches. *)
val set_profiler : Obs.Profiler.t option -> unit

(** [map ?jobs f items] applies [f] to every element of [items] on up to
    [jobs] domains (default {!val-jobs}[ ()], clamped to the job count)
    and returns the results in input order. Work is claimed in chunks of
    [max 1 (n / (jobs * 4))] indices per atomic cursor bump — a long
    chunk never blocks the rest of the grid because idle workers drain
    the remaining chunks. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [both f g] runs the two thunks concurrently when {!val-jobs}[ () >
    1] and not already inside a worker: the caller runs [f] as pool slot
    0 while a pool helper claims [g]; if no helper wakes before [f]
    finishes, the caller runs [g] itself — so [both] never waits on a
    domain that is not making progress. Returns both results; [g]'s
    exception takes precedence over [f]'s. *)
val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
