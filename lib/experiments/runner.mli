(** Work-stealing parallel execution of independent simulation jobs.

    The paper's evaluation is a grid of independent randomized runs —
    seeds × attack parameters × configurations — and every simulation
    holds all of its mutable state (engine, RNG streams, metrics, trace
    bus) inside its own {!Lockss.Population.t}. Jobs therefore share
    nothing and can run on separate OCaml 5 domains.

    Determinism contract: {!map} applies [f] to each element exactly
    once, in any order and on any domain, and returns the results in
    submission order. Because each job derives all of its randomness
    from its own seed and touches no cross-job state, parallel output is
    byte-identical to serial output for the same job list. A job's
    exception is re-raised in the caller (lowest job index wins when
    several jobs fail).

    Nesting is safe and cheap: a {!map} issued from inside a worker runs
    serially on that worker, so sweeps that parallelise over grid points
    may call {!Scenario.run_all} (which itself maps over seeds) without
    spawning domains recursively. *)

(** [default_jobs ()] is the [LOCKSS_JOBS] environment variable when set
    to a positive integer, otherwise [Domain.recommended_domain_count
    ()]. *)
val default_jobs : unit -> int

(** [set_jobs n] overrides the process-wide worker count: [n >= 1] forces
    exactly [n] workers ([1] = serial), [0] restores the
    {!default_jobs} heuristic. Raises [Invalid_argument] on negative
    [n]. This is a performance knob only — it never changes results. *)
val set_jobs : int -> unit

(** [jobs ()] is the worker count {!map} will use: the {!set_jobs}
    override when non-zero, else {!default_jobs}. *)
val jobs : unit -> int

(** [set_profiler (Some p)] attaches a run-wide profiler: each parallel
    {!map} (and {!both}) records every worker's busy wall-clock seconds
    and completed task count into [p] via {!Obs.Profiler.note_domain},
    keyed by worker slot (0 = the calling domain). Workers never touch
    the profiler themselves — effort is collected per worker and folded
    in by the calling domain after the joins, so no synchronisation is
    needed. Call from the main domain only; [set_profiler None]
    detaches. *)
val set_profiler : Obs.Profiler.t option -> unit

(** [map ?jobs f items] applies [f] to every element of [items] on up to
    [jobs] domains (default {!val-jobs}[ ()], clamped to the job count)
    and returns the results in input order. Work-stealing: idle workers
    pull the next unclaimed index from a shared atomic cursor, so a
    long-running job never blocks the rest of the grid behind it. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [both f g] runs the two thunks concurrently (on two domains when
    {!val-jobs}[ () > 1] and not already inside a worker) and returns
    both results — the paired faulted/fault-free runs of the chaos
    harness, and any other two-sided comparison. *)
val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
