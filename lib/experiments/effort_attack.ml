module Table = Repro_prelude.Table

type row = {
  strategy : Adversary.Brute_force.strategy;
  collection : int;
  friction : float;
  cost_ratio : float;
  delay_ratio : float;
  access_failure : float;
}

(* Five attempts per refractory period: the expected number needed to get
   one invitation past the 0.8 in-debt drop probability. *)
let default_rate = 5.

let strategies =
  [ Adversary.Brute_force.Intro; Adversary.Brute_force.Remaining; Adversary.Brute_force.Full ]

let sweep ?(scale = Scenario.bench) ?collections ?(rate = default_rate)
    ?(identities = 50) () =
  let collections =
    match collections with
    | Some c -> c
    | None -> [ scale.Scenario.aus; 3 * scale.Scenario.aus ]
  in
  (* One job per (collection, attack) cell, the per-collection baseline
     included, all fanned out over Runner workers at once. *)
  let cells =
    List.concat_map
      (fun collection ->
        let cfg = { (Scenario.config scale) with Lockss.Config.aus = collection } in
        (collection, cfg, None)
        :: List.map (fun strategy -> (collection, cfg, Some strategy)) strategies)
      collections
  in
  let summaries =
    Runner.map
      (fun (_, cfg, strategy) ->
        let attack =
          match strategy with
          | None -> Scenario.No_attack
          | Some strategy -> Scenario.Brute_force { strategy; rate; identities }
        in
        Scenario.run_avg ~cfg scale attack)
      cells
  in
  let by_cell = List.combine cells summaries in
  List.filter_map
    (fun ((collection, _, strategy), summary) ->
      match strategy with
      | None -> None
      | Some strategy ->
        let baseline =
          match
            List.find_opt
              (fun ((c, _, s), _) -> c = collection && s = None)
              by_cell
          with
          | Some (_, baseline) -> baseline
          | None -> assert false
        in
        let c = Scenario.ratios ~baseline ~attack:summary in
        Some
          {
            strategy;
            collection;
            friction = c.Scenario.friction;
            cost_ratio = c.Scenario.cost_ratio;
            delay_ratio = c.Scenario.delay_ratio;
            access_failure = c.Scenario.access_failure;
          })
    by_cell

let to_table rows =
  let table =
    Table.create
      [ "defection"; "AUs"; "coeff. friction"; "cost ratio"; "delay ratio"; "access failure" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Format.asprintf "%a" Adversary.Brute_force.pp_strategy r.strategy;
          string_of_int r.collection;
          Report.ratio r.friction;
          Report.ratio r.cost_ratio;
          Report.ratio r.delay_ratio;
          Report.sci r.access_failure;
        ])
    rows;
  table
