module Duration = Repro_prelude.Duration
module Table = Repro_prelude.Table

type row = {
  fraction : float;
  strategy : Adversary.Subversion.strategy;
  corrupt_votes : int;
  corrupt_repairs : int;
  alarms : int;
  corrupted_replicas : int;
  access_failure : float;
}

let default_fractions = [ 0.1; 0.2; 0.3; 0.4 ]

let run_one ~cfg ~seed ~years ~fraction ~strategy =
  let population = Lockss.Population.create ~seed cfg in
  let attack = Adversary.Subversion.attach population ~fraction ~strategy in
  Lockss.Population.run population ~until:(Duration.of_years years);
  let summary = Lockss.Population.summary population in
  {
    fraction;
    strategy;
    corrupt_votes = Adversary.Subversion.corrupt_votes attack;
    corrupt_repairs = Adversary.Subversion.corrupt_repairs attack;
    alarms = summary.Lockss.Metrics.polls_alarmed;
    corrupted_replicas = Adversary.Subversion.corrupted_replicas attack;
    access_failure = summary.Lockss.Metrics.access_failure_probability;
  }

let sweep ?(scale = Scenario.bench) ?(fractions = default_fractions) () =
  let cfg = Scenario.config scale in
  let grid =
    List.concat_map
      (fun strategy -> List.map (fun fraction -> (strategy, fraction)) fractions)
      [ Adversary.Subversion.Aggressive; Adversary.Subversion.Patient ]
  in
  Runner.map
    (fun (strategy, fraction) ->
      run_one ~cfg ~seed:scale.Scenario.seed ~years:scale.Scenario.years ~fraction
        ~strategy)
    grid

let to_table rows =
  let table =
    Table.create
      [
        "strategy";
        "compromised";
        "corrupt votes";
        "corrupt repairs";
        "alarms";
        "corrupted replicas";
        "access failure";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Format.asprintf "%a" Adversary.Subversion.pp_strategy r.strategy;
          Report.pct r.fraction;
          string_of_int r.corrupt_votes;
          string_of_int r.corrupt_repairs;
          string_of_int r.alarms;
          string_of_int r.corrupted_replicas;
          Report.sci r.access_failure;
        ])
    rows;
  table
