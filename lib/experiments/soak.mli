(** Multi-seed chaos soak: drive the full Byzantine fault set through
    many independent runs and fail on any robustness violation.

    Each seed runs one scenario under the given {!Chaos.mix} (which
    should enable {e every} fault shape: loss, jitter, duplication,
    churn, corruption, replay, stale delivery and stray injection) with
    the runtime invariant auditor attached, then audits the quiescent
    end state for leaks ({!Check.Leak}). A seed is clean when

    - the run completed without any handler raising;
    - the auditor observed zero protocol-invariant violations;
    - the leak audit found zero leaked timers, dangling event
      references or lingering closed sessions;
    - the run made progress (at least one poll succeeded).

    Every mutated, replayed, stale or stray message must therefore be
    either rejected with a taxonomized [message_rejected] event or
    absorbed without corrupting protocol state — the acceptance
    criterion for the protocol-hardening layer. Seeds fan out over the
    {!Runner} worker pool; results are deterministic per seed. *)

type seed_report = {
  seed : int;
  polls_succeeded : int;
  rejected : int;  (** [message_rejected] events observed *)
  rejected_by_reason : (string * int) list;  (** taxonomy breakdown, sorted *)
  injected : int;  (** corruption + replay + stale + stray injections *)
  violations : Check.Invariant.violation list;  (** auditor then leak audit *)
  handler_exn : string option;  (** exception escaping the run, if any *)
}

type report = {
  mix : Chaos.mix;
  years : float;
  seeds : seed_report list;  (** in seed order *)
}

(** A seed is clean per the criteria above. *)
val seed_clean : seed_report -> bool

val all_clean : report -> bool

(** [run ?scale ?attack ~seeds mix] soaks one configuration across
    [seeds] (each an independent deterministic run). Defaults:
    {!Scenario.bench} scale, no attack. *)
val run :
  ?scale:Scenario.scale -> ?attack:Scenario.attack -> seeds:int list -> Chaos.mix -> report

val pp_report : Format.formatter -> report -> unit

(** Machine-readable report; the violation entries reuse
    {!Check.Invariant.violation_to_json}. *)
val report_json : report -> Obs.Json.t
