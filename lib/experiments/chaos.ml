module Duration = Repro_prelude.Duration
module Table = Repro_prelude.Table
module Faults = Narses.Faults
module Engine = Narses.Engine

type mix = {
  loss : float;
  jitter : float;
  duplication : float;
  churn_per_day : float;
  downtime : float;
  corruption : float;
  replay : float;
  stale : float;
  stray : float;
  fault_seed : int;
}

let default_mix =
  {
    loss = 0.05;
    jitter = 0.5;
    duplication = 0.02;
    churn_per_day = 0.01;
    downtime = Duration.of_days 3.;
    corruption = 0.02;
    replay = 0.01;
    stale = 0.005;
    stray = 0.01;
    fault_seed = 7;
  }

let faults_config mix =
  {
    Faults.loss = mix.loss;
    jitter = mix.jitter;
    duplication = mix.duplication;
    churn_per_day = mix.churn_per_day;
    downtime = mix.downtime;
    corruption = mix.corruption;
    replay = mix.replay;
    stale = mix.stale;
    (* Stale messages resurface from well before any protocol timeout:
       three days matches the churn downtime scale. *)
    stale_delay = Duration.of_days 3.;
    stray = mix.stray;
    fault_seed = mix.fault_seed;
  }

type check = { name : string; ok : bool; detail : string }

type report = {
  checks : check list;
  faulty : Lockss.Metrics.summary;
  fault_free : Lockss.Metrics.summary;
  comparison : Scenario.comparison;
  injected_drops : int;
  injected_dups : int;
  injected_delays : int;
  injected_corruptions : int;
  injected_replays : int;
  injected_stales : int;
  injected_strays : int;
  crashes : int;
  restarts : int;
}

let all_green r = List.for_all (fun c -> c.ok) r.checks

(* Far above any legitimate run at these scales (the bench scale fires a
   few million events); only a genuine livelock can exhaust it. *)
let event_budget = 50_000_000

(* -- Invariants --------------------------------------------------------- *)

let check_no_stuck_poll population =
  let ctx = Lockss.Population.ctx population in
  let now = Engine.now (Lockss.Population.engine population) in
  let limit = 2. *. ctx.Lockss.Peer.cfg.Lockss.Config.inter_poll_interval in
  let stuck = ref [] in
  Array.iter
    (fun (peer : Lockss.Peer.t) ->
      Array.iter
        (fun (st : Lockss.Peer.au_state) ->
          match st.Lockss.Peer.current_poll with
          | Some poll when now -. poll.Lockss.Peer.started_at > limit ->
            stuck :=
              Printf.sprintf "peer %d au %d (age %.1f d)" peer.Lockss.Peer.identity
                st.Lockss.Peer.au
                ((now -. poll.Lockss.Peer.started_at) /. Duration.day)
              :: !stuck
          | _ -> ())
        peer.Lockss.Peer.aus)
    ctx.Lockss.Peer.peers;
  {
    name = "no stuck poll";
    ok = !stuck = [];
    detail =
      (match !stuck with
      | [] -> "every in-flight poll is younger than 2 inter-poll intervals"
      | l -> Printf.sprintf "%d polls stuck: %s" (List.length l) (String.concat "; " l));
  }

let check_pending_growth ~pending_mid ~pending_end =
  (* Leaked (never-cancelled, never-fired) timers accumulate linearly
     with poll count, so the steady-state pending population must not
     grow materially between the run's midpoint and its end. *)
  let allowance = max 64 (pending_mid / 2) in
  {
    name = "no leaked timeouts";
    ok = pending_end - pending_mid <= allowance;
    detail =
      Printf.sprintf "pending events mid-run %d, end %d (allowed growth %d)" pending_mid
        pending_end allowance;
  }

let check_conservation population ~pending_end =
  let ctx = Lockss.Population.ctx population in
  let net = ctx.Lockss.Peer.net in
  let sent = Narses.Net.sent_count net in
  let delivered = Narses.Net.delivered_count net in
  let dropped = Narses.Net.dropped_count net in
  let injected = Narses.Net.injected_count net in
  let dups =
    match Lockss.Population.faults population with
    | None -> 0
    | Some f -> Faults.duplicated_count f
  in
  (* Every copy a send produced (one per send, plus one per duplication,
     plus one per replay/stale re-injection from the delivery ring) is
     eventually delivered, dropped, or still scheduled in the engine. *)
  let in_flight = sent + dups + injected - delivered - dropped in
  {
    name = "message conservation";
    ok = in_flight >= 0 && in_flight <= pending_end;
    detail =
      Printf.sprintf
        "sent %d + dup %d + injected %d = delivered %d + dropped %d + in-flight %d" sent
        dups injected delivered dropped in_flight;
  }

let check_churn_accounting population =
  match Lockss.Population.faults population with
  | None -> { name = "churn accounting"; ok = true; detail = "no injector attached" }
  | Some f ->
    let crashes = Faults.crash_count f in
    let restarts = Faults.restart_count f in
    let down = Faults.down_count f in
    {
      name = "churn accounting";
      ok = crashes = restarts + down;
      detail = Printf.sprintf "crashes %d = restarts %d + still down %d" crashes restarts down;
    }

let check_leak_audit population =
  let ctx = Lockss.Population.ctx population in
  let engine = Lockss.Population.engine population in
  let leaks = Check.Leak.audit ~engine ~ctx in
  {
    name = "leak audit";
    ok = leaks = [];
    detail =
      (match leaks with
      | [] -> "engine live timers reconcile with protocol owner state"
      | v :: _ ->
        Printf.sprintf "%d leak violations, first: %s" (List.length leaks)
          v.Check.Invariant.detail);
  }

let check_liveness (faulty : Lockss.Metrics.summary) =
  {
    name = "liveness";
    ok = faulty.Lockss.Metrics.polls_succeeded > 0;
    detail =
      Printf.sprintf "%d polls succeeded under faults" faulty.Lockss.Metrics.polls_succeeded;
  }

let check_degradation ~(fault_free : Lockss.Metrics.summary)
    ~(faulty : Lockss.Metrics.summary) =
  (* The protocol's retry and repair machinery should absorb moderate
     fault mixes: damage may rise versus the perfect-network paired run,
     but it must stay bounded — within an order of magnitude of the
     fault-free level and below an absolute ceiling. *)
  let base = fault_free.Lockss.Metrics.access_failure_probability in
  let afp = faulty.Lockss.Metrics.access_failure_probability in
  let bound = Float.max 0.05 (10. *. Float.max base 0.005) in
  {
    name = "bounded degradation";
    ok = afp <= bound;
    detail =
      Printf.sprintf "access failure %.4f under faults vs %.4f fault-free (bound %.4f)"
        afp base bound;
  }

(* -- The harness -------------------------------------------------------- *)

let run ?(scale = Scenario.bench) ?(attack = Scenario.No_attack) mix =
  Faults.validate (faults_config mix);
  let base_cfg = Scenario.config scale in
  let cfg = { base_cfg with Lockss.Config.faults = Some (faults_config mix) } in
  let seed = scale.Scenario.seed in
  let horizon = Duration.of_years scale.Scenario.years in
  (* The faulted run and its fault-free pair share nothing (each builds
     its own population from the seed), so they run on two domains when
     available; results are deterministic either way. *)
  let (population, pending_mid, pending_end, faulty), fault_free =
    Runner.both
      (fun () ->
        let population = Scenario.build ~cfg ~seed attack in
        let engine = Lockss.Population.engine population in
        Lockss.Population.run ~max_events:event_budget population ~until:(horizon /. 2.);
        let pending_mid = Engine.pending engine in
        Lockss.Population.run ~max_events:event_budget population ~until:horizon;
        let pending_end = Engine.pending engine in
        (population, pending_mid, pending_end, Lockss.Population.summary population))
      (fun () ->
        Scenario.run_one
          ~cfg:{ base_cfg with Lockss.Config.faults = None }
          ~seed ~years:scale.Scenario.years attack)
  in
  let comparison = Scenario.ratios ~baseline:fault_free ~attack:faulty in
  let ( injected_drops,
        injected_dups,
        injected_delays,
        injected_corruptions,
        injected_replays,
        injected_stales,
        injected_strays,
        crashes,
        restarts ) =
    match Lockss.Population.faults population with
    | None -> (0, 0, 0, 0, 0, 0, 0, 0, 0)
    | Some f ->
      ( Faults.dropped_count f,
        Faults.duplicated_count f,
        Faults.delayed_count f,
        Faults.corrupted_count f,
        Faults.replayed_count f,
        Faults.stale_count f,
        Faults.stray_count f,
        Faults.crash_count f,
        Faults.restart_count f )
  in
  let checks =
    [
      check_liveness faulty;
      check_no_stuck_poll population;
      check_pending_growth ~pending_mid ~pending_end;
      check_conservation population ~pending_end;
      check_churn_accounting population;
      check_leak_audit population;
      check_degradation ~fault_free ~faulty;
    ]
  in
  {
    checks;
    faulty;
    fault_free;
    comparison;
    injected_drops;
    injected_dups;
    injected_delays;
    injected_corruptions;
    injected_replays;
    injected_stales;
    injected_strays;
    crashes;
    restarts;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "Chaos run: %d faults injected (%d drops, %d dups, %d delays, %d corruptions, %d \
     replays, %d stales, %d strays), %d crashes, %d restarts@."
    (r.injected_drops + r.injected_dups + r.injected_delays + r.injected_corruptions
    + r.injected_replays + r.injected_stales + r.injected_strays)
    r.injected_drops r.injected_dups r.injected_delays r.injected_corruptions
    r.injected_replays r.injected_stales r.injected_strays r.crashes r.restarts;
  Format.fprintf ppf
    "  polls: %d ok / %d inquorate / %d alarmed under faults; %d ok fault-free@."
    r.faulty.Lockss.Metrics.polls_succeeded r.faulty.Lockss.Metrics.polls_inquorate
    r.faulty.Lockss.Metrics.polls_alarmed r.fault_free.Lockss.Metrics.polls_succeeded;
  Format.fprintf ppf "  delay ratio %.2f, friction %.2f@." r.comparison.Scenario.delay_ratio
    r.comparison.Scenario.friction;
  List.iter
    (fun c ->
      Format.fprintf ppf "  [%s] %-20s %s@." (if c.ok then "PASS" else "FAIL") c.name
        c.detail)
    r.checks;
  Format.fprintf ppf "  %s@."
    (if all_green r then "all invariants green" else "INVARIANT VIOLATION")

(* -- Attack-under-faults ablation --------------------------------------- *)

let stoppage_attack scale =
  let interval = Lockss.Config.default.Lockss.Config.inter_poll_interval in
  ignore scale;
  Scenario.Pipe_stoppage
    { coverage = 0.4; duration = 3. *. interval; recuperation = interval }

let ablation ?(scale = Scenario.bench) mix =
  let cfg = Scenario.config scale in
  let faulty_cfg = { cfg with Lockss.Config.faults = Some (faults_config mix) } in
  let stoppage = stoppage_attack scale in
  let cells =
    [
      ("fault-free", cfg, Scenario.No_attack);
      ("faults only", faulty_cfg, Scenario.No_attack);
      ("stoppage only", cfg, stoppage);
      ("stoppage + faults", faulty_cfg, stoppage);
    ]
  in
  let rows =
    Runner.map
      (fun (label, run_cfg, attack) ->
        let s =
          Scenario.run_one ~cfg:run_cfg ~seed:scale.Scenario.seed
            ~years:scale.Scenario.years attack
        in
        [
          label;
          Printf.sprintf "%.4f" s.Lockss.Metrics.access_failure_probability;
          string_of_int s.Lockss.Metrics.polls_succeeded;
          string_of_int s.Lockss.Metrics.polls_inquorate;
          string_of_int s.Lockss.Metrics.polls_alarmed;
        ])
      cells
  in
  let table =
    Table.create [ "condition"; "access failure"; "polls ok"; "inquorate"; "alarmed" ]
  in
  List.iter (Table.add_row table) rows;
  table
