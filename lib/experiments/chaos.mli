(** Chaos harness: run scenarios under injected faults and assert the
    protocol's liveness and accounting invariants.

    The paper evaluates the protocol on a perfectly reliable substrate;
    this harness drives the same {!Scenario} configurations through
    {!Narses.Faults} mixes (message loss, latency jitter, duplication,
    node churn) and checks what the paper takes for granted:

    - {e liveness}: polls keep succeeding despite the fault mix;
    - {e no stuck poll}: no in-flight poll older than two inter-poll
      intervals at the end of the run;
    - {e no leaked timeouts}: the engine's pending-event population does
      not grow between the run's midpoint and its end;
    - {e message conservation}: sent + duplicated + injected = delivered
      + dropped + in-flight, with in-flight non-negative and bounded by
      the pending queue;
    - {e churn accounting}: crashes = restarts + nodes still down;
    - {e leak audit}: the engine's live timers reconcile exactly with
      the protocol state that owns them ({!Check.Leak});
    - {e bounded degradation}: access-failure probability stays within an
      order of magnitude of the fault-free paired run (same seed, same
      attack), per the paper's paired-run methodology.

    Runs are driven with an event budget so a livelock raises
    {!Narses.Engine.Event_limit_exceeded} instead of hanging. *)

type mix = {
  loss : float;  (** per-copy drop probability *)
  jitter : float;  (** max extra delivery latency, seconds *)
  duplication : float;  (** per-message duplication probability *)
  churn_per_day : float;  (** crashes per node per day *)
  downtime : float;  (** seconds a crashed node stays down *)
  corruption : float;  (** per-copy field-corruption probability *)
  replay : float;  (** per-send probability of replaying a past delivery *)
  stale : float;  (** per-send probability of a long-delayed replay *)
  stray : float;  (** per-send probability of forging an unsolicited message *)
  fault_seed : int;  (** seed of the dedicated fault stream *)
}

(** [default_mix] is the acceptance mix: 5 % loss, 0.5 s jitter, 2 %
    duplication, 0.01 crashes/node/day with 3-day downtime, plus the
    Byzantine content set (2 % corruption, 1 % replay, 0.5 % stale,
    1 % stray), seed 7. *)
val default_mix : mix

(** [faults_config mix] is the corresponding injector configuration. *)
val faults_config : mix -> Narses.Faults.config

type check = { name : string; ok : bool; detail : string }

type report = {
  checks : check list;
  faulty : Lockss.Metrics.summary;  (** the run under the fault mix *)
  fault_free : Lockss.Metrics.summary;  (** paired run, faults off *)
  comparison : Scenario.comparison;  (** faulty vs fault-free ratios *)
  injected_drops : int;
  injected_dups : int;
  injected_delays : int;
  injected_corruptions : int;
  injected_replays : int;
  injected_stales : int;
  injected_strays : int;
  crashes : int;
  restarts : int;
}

val all_green : report -> bool

(** [run ?scale ?attack mix] executes the scenario under the fault mix,
    then the fault-free paired run, and evaluates every invariant.
    Defaults: {!Scenario.bench}, no attack. *)
val run : ?scale:Scenario.scale -> ?attack:Scenario.attack -> mix -> report

val pp_report : Format.formatter -> report -> unit

(** [ablation ?scale mix] crosses faults with a pipe-stoppage attack:
    fault-free / faults only / stoppage only / stoppage + faults, one
    table row each (access failure and poll outcomes). *)
val ablation : ?scale:Scenario.scale -> mix -> Repro_prelude.Table.t
