module Duration = Repro_prelude.Duration
module Table = Repro_prelude.Table

type point = {
  coverage : float;
  duration : float;
  access_failure : float;
  delay_ratio : float;
  friction : float;
}

let default_durations =
  List.map Duration.of_days [ 10.; 45.; 90.; 180.; 365.; 730. ]

let default_coverages = [ 0.1; 0.5; 1.0 ]
let recuperation = Duration.of_days 30.

(* Garbage is free to the adversary, so it sends enough per victim-AU-day
   that, even through the 0.9 random-drop filter, one invitation is
   admitted almost every day (1 - 0.9^24 = 0.92) and the refractory
   period stays continuously triggered. *)
let default_rate = 24.

let sweep ?(scale = Scenario.bench) ?(durations = default_durations)
    ?(coverages = default_coverages) ?(rate = default_rate) () =
  let cfg = Scenario.config scale in
  let grid =
    List.concat_map
      (fun coverage -> List.map (fun duration -> (coverage, duration)) durations)
      coverages
  in
  (* Baseline and grid points fan out over Runner workers as one job
     list, merged back in grid order. *)
  let summaries =
    Runner.map
      (fun attack -> Scenario.run_avg ~cfg scale attack)
      (Scenario.No_attack
      :: List.map
           (fun (coverage, duration) ->
             Scenario.Admission_flood { coverage; duration; recuperation; rate })
           grid)
  in
  match summaries with
  | [] -> assert false
  | baseline :: attacked ->
    List.map2
      (fun (coverage, duration) summary ->
        let c = Scenario.ratios ~baseline ~attack:summary in
        {
          coverage;
          duration;
          access_failure = c.Scenario.access_failure;
          delay_ratio = c.Scenario.delay_ratio;
          friction = c.Scenario.friction;
        })
      grid attacked

let metric_table ~header value points =
  let table = Table.create [ "coverage"; "attack duration"; header ] in
  List.iter
    (fun p ->
      Table.add_row table [ Report.pct p.coverage; Report.days p.duration; value p ])
    points;
  table

let fig6_table = metric_table ~header:"access failure prob." (fun p -> Report.sci p.access_failure)
let fig7_table = metric_table ~header:"delay ratio" (fun p -> Report.ratio p.delay_ratio)
let fig8_table = metric_table ~header:"coeff. of friction" (fun p -> Report.ratio p.friction)
