module Duration = Repro_prelude.Duration
module Table = Repro_prelude.Table

type row = {
  fraction : float;
  defections : int;
  honest_votes : int;
  friction : float;
  cost_ratio : float;
  delay_ratio : float;
}

let sweep ?(scale = Scenario.bench) ?(fractions = [ 0.1; 0.2; 0.3 ]) ?(rate = 5.) () =
  let cfg = Scenario.config scale in
  (* The baseline average and each compromised-fraction run are
     independent; run them all as one Runner job list. *)
  let results =
    Runner.map
      (function
        | `Baseline -> `Baseline (Scenario.run_avg ~cfg scale Scenario.No_attack)
        | `Fraction fraction ->
          let population = Lockss.Population.create ~seed:scale.Scenario.seed cfg in
          let attack =
            Adversary.Reciprocity.attach population ~fraction
              ~attempts_per_victim_au_per_day:rate
          in
          Lockss.Population.run population
            ~until:(Duration.of_years scale.Scenario.years);
          `Row
            ( fraction,
              Lockss.Population.summary population,
              Adversary.Reciprocity.defections attack,
              Adversary.Reciprocity.honest_votes attack ))
      (`Baseline :: List.map (fun f -> `Fraction f) fractions)
  in
  match results with
  | `Baseline baseline :: rows ->
    List.map
      (function
        | `Row (fraction, summary, defections, honest_votes) ->
          let c = Scenario.ratios ~baseline ~attack:summary in
          {
            fraction;
            defections;
            honest_votes;
            friction = c.Scenario.friction;
            cost_ratio = c.Scenario.cost_ratio;
            delay_ratio = c.Scenario.delay_ratio;
          }
        | `Baseline _ -> assert false)
      rows
  | _ -> assert false

let brute_force_reference ?(scale = Scenario.bench) () =
  let cfg = Scenario.config scale in
  let baseline = Scenario.run_avg ~cfg scale Scenario.No_attack in
  let summary =
    Scenario.run_avg ~cfg scale
      (Scenario.Brute_force
         { strategy = Adversary.Brute_force.Remaining; rate = 5.; identities = 50 })
  in
  (Scenario.ratios ~baseline ~attack:summary).Scenario.friction

let to_table rows =
  let table =
    Table.create
      [
        "compromised";
        "defections";
        "honest rebuild votes";
        "friction";
        "cost ratio";
        "delay ratio";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Report.pct r.fraction;
          string_of_int r.defections;
          string_of_int r.honest_votes;
          Report.ratio r.friction;
          Report.ratio r.cost_ratio;
          Report.ratio r.delay_ratio;
        ])
    rows;
  table
