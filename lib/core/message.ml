type payload =
  | Poll of { poll_id : int; intro : Effort.Proof.t }
  | Poll_ack of { poll_id : int; accepted : bool }
  | Poll_proof of { poll_id : int; remaining : Effort.Proof.t; nonce : int64 }
  | Vote_msg of { poll_id : int; vote : Vote.t }
  | Repair_request of { poll_id : int; block : int }
  | Repair of { poll_id : int; block : int; version : int }
  | Evaluation_receipt of { poll_id : int; receipt : int64 * int64 }
  | Garbage of { claimed_bytes : int }

type t = { identity : Ids.Identity.t; au : Ids.Au_id.t; payload : payload }

let wire_bytes (cfg : Config.t) msg =
  match msg.payload with
  | Poll _ -> 1024
  | Poll_ack _ -> 128
  | Poll_proof _ -> 1024
  | Vote_msg { vote; _ } -> Vote.wire_bytes vote ~blocks:cfg.Config.au_blocks
  | Repair_request _ -> 128
  | Repair _ -> cfg.Config.block_bytes + 128
  | Evaluation_receipt _ -> 128
  | Garbage { claimed_bytes } -> claimed_bytes

let kind_string msg =
  match msg.payload with
  | Poll _ -> "poll"
  | Poll_ack _ -> "poll_ack"
  | Poll_proof _ -> "poll_proof"
  | Vote_msg _ -> "vote"
  | Repair_request _ -> "repair_request"
  | Repair _ -> "repair"
  | Evaluation_receipt _ -> "evaluation_receipt"
  | Garbage _ -> "garbage"

(* Deterministic single-field corruption: [salt] selects both the target
   field and the perturbation, so the same (message, salt) pair always
   yields the same mutant — a requirement for replayable fault traces.
   Integer fields are offset by a small positive delta (which may push
   them out of range — exactly the kind of input handlers must survive);
   64-bit fields are xored with an odd constant so they always change. *)
let mutate msg ~salt =
  let sel n = Int64.to_int (Int64.shift_right_logical salt 56) mod n in
  let delta = 1 + (Int64.to_int (Int64.logand salt 0xFFL) mod 7) in
  let xor64 v = Int64.logxor v (Int64.logor salt 1L) in
  let with_payload payload = { msg with payload } in
  let mutate_common k =
    (* Slots 0/1 hit the envelope (claimed identity / AU); the rest fall
       through to the payload-specific mutation. *)
    match k with
    | 0 -> Some { msg with identity = msg.identity + delta }
    | 1 -> Some { msg with au = msg.au + delta }
    | _ -> None
  in
  let payload_slots =
    match msg.payload with
    | Poll { poll_id; intro } -> [| Poll { poll_id = poll_id + delta; intro } |]
    | Poll_ack { poll_id; accepted } ->
      [|
        Poll_ack { poll_id = poll_id + delta; accepted };
        Poll_ack { poll_id; accepted = not accepted };
      |]
    | Poll_proof { poll_id; remaining; nonce } ->
      [|
        Poll_proof { poll_id = poll_id + delta; remaining; nonce };
        Poll_proof { poll_id; remaining; nonce = xor64 nonce };
      |]
    | Vote_msg { poll_id; vote } -> [| Vote_msg { poll_id = poll_id + delta; vote } |]
    | Repair_request { poll_id; block } ->
      [|
        Repair_request { poll_id = poll_id + delta; block };
        Repair_request { poll_id; block = block + delta };
      |]
    | Repair { poll_id; block; version } ->
      [|
        Repair { poll_id = poll_id + delta; block; version };
        Repair { poll_id; block = block + delta; version };
        Repair { poll_id; block; version = version + delta };
      |]
    | Evaluation_receipt { poll_id; receipt = r1, r2 } ->
      [|
        Evaluation_receipt { poll_id = poll_id + delta; receipt = (r1, r2) };
        Evaluation_receipt { poll_id; receipt = (xor64 r1, xor64 r2) };
      |]
    | Garbage { claimed_bytes } -> [| Garbage { claimed_bytes = claimed_bytes + delta } |]
  in
  let slots = 2 + Array.length payload_slots in
  let k = sel slots in
  match mutate_common k with
  | Some m -> m
  | None -> with_payload payload_slots.(k - 2)

let pp ppf msg =
  let kind =
    match msg.payload with
    | Poll _ -> "Poll"
    | Poll_ack { accepted; _ } -> if accepted then "PollAck+" else "PollAck-"
    | Poll_proof _ -> "PollProof"
    | Vote_msg _ -> "Vote"
    | Repair_request _ -> "RepairRequest"
    | Repair _ -> "Repair"
    | Evaluation_receipt _ -> "EvaluationReceipt"
    | Garbage _ -> "Garbage"
  in
  Format.fprintf ppf "%s from %a on %a" kind Ids.Identity.pp msg.identity Ids.Au_id.pp
    msg.au
