module Bitset = Repro_prelude.Bitset

(* The elements live in [elts.(0 .. len-1)] in REVERSE logical order:
   the logical head is [elts.(len - 1)], so a logical prepend is an
   O(1) append at the end of the array. Keeping the logical order
   list-compatible matters twice over: member order feeds Fisher-Yates
   shuffles (so it determines seeded draw results) and is emitted
   verbatim in Poll_sampled trace events. *)
type t = { mutable elts : int array; mutable len : int; bits : Bitset.t }

let of_ordered_list xs =
  let n = List.length xs in
  let elts = Array.make (max 8 n) 0 in
  let bits = Bitset.create () in
  let i = ref (n - 1) in
  List.iter
    (fun x ->
      if Bitset.mem bits x then invalid_arg "Id_set.of_ordered_list: duplicate";
      elts.(!i) <- x;
      Bitset.add bits x;
      decr i)
    xs;
  { elts; len = n; bits }

let size t = t.len
let mem t x = Bitset.mem t.bits x

let prepend t x =
  if not (Bitset.mem t.bits x) then begin
    if t.len = Array.length t.elts then begin
      let elts = Array.make (2 * t.len) 0 in
      Array.blit t.elts 0 elts 0 t.len;
      t.elts <- elts
    end;
    t.elts.(t.len) <- x;
    t.len <- t.len + 1;
    Bitset.add t.bits x
  end

let remove t x =
  if Bitset.mem t.bits x then begin
    let i = ref 0 in
    while t.elts.(!i) <> x do
      incr i
    done;
    Array.blit t.elts (!i + 1) t.elts !i (t.len - !i - 1);
    t.len <- t.len - 1;
    Bitset.remove t.bits x
  end

let to_list t =
  let acc = ref [] in
  for i = 0 to t.len - 1 do
    acc := t.elts.(i) :: !acc
  done;
  !acc

let to_ordered_array t = Array.init t.len (fun i -> t.elts.(t.len - 1 - i))

let filtered_ordered_array t ~keep =
  let buf = Array.make (max 1 t.len) 0 in
  let k = ref 0 in
  for i = t.len - 1 downto 0 do
    let x = t.elts.(i) in
    if keep x then begin
      buf.(!k) <- x;
      incr k
    end
  done;
  Array.sub buf 0 !k
