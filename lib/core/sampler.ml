module Engine = Narses.Engine
module Json = Obs.Json

type t = {
  engine : Engine.t;
  mutable next : Engine.event_id option;
  mutable ticks : int;
  mutable stopped : bool;
}

let attach ~engine ~metrics ~interval f =
  if interval <= 0. || not (Float.is_finite interval) then
    invalid_arg "Sampler.attach: interval must be positive and finite";
  let t = { engine; next = None; ticks = 0; stopped = false } in
  let rec tick () =
    t.next <- None;
    t.ticks <- t.ticks + 1;
    f (Metrics.sample metrics ~now:(Engine.now engine));
    if not t.stopped then t.next <- Some (Engine.schedule_in engine ~after:interval tick)
  in
  t.next <- Some (Engine.schedule_in engine ~after:interval tick);
  t

let stop t =
  t.stopped <- true;
  match t.next with
  | Some id ->
    Engine.cancel t.engine id;
    t.next <- None
  | None -> ()

let ticks t = t.ticks

let columns =
  [
    "seed";
    "t_days";
    "damaged_replicas";
    "access_failure_probability";
    "polls_succeeded";
    "polls_inquorate";
    "polls_alarmed";
    "invitations_considered";
    "invitations_dropped";
    "repairs";
    "votes_supplied";
    "reads";
    "reads_failed";
    "loyal_effort_s";
    "adversary_effort_s";
    "repair_underflows";
  ]

let series_writer ~seed series =
  let prev = ref None in
  fun (s : Metrics.sample) ->
    (* Counters are cumulative in the collector; the series wants
       per-interval activity, so difference against the last snapshot. *)
    let d get_int =
      get_int s - (match !prev with None -> 0 | Some p -> get_int p)
    in
    let df get_float =
      get_float s -. (match !prev with None -> 0. | Some p -> get_float p)
    in
    let row =
      [
        Json.Int seed;
        Json.Float (Repro_prelude.Duration.to_days s.Metrics.time);
        Json.Int s.Metrics.damaged_replicas;
        Json.Float s.Metrics.running_access_failure;
        Json.Int (d (fun x -> x.Metrics.cum_polls_succeeded));
        Json.Int (d (fun x -> x.Metrics.cum_polls_inquorate));
        Json.Int (d (fun x -> x.Metrics.cum_polls_alarmed));
        Json.Int (d (fun x -> x.Metrics.cum_invitations_considered));
        Json.Int (d (fun x -> x.Metrics.cum_invitations_dropped));
        Json.Int (d (fun x -> x.Metrics.cum_repairs));
        Json.Int (d (fun x -> x.Metrics.cum_votes_supplied));
        Json.Int (d (fun x -> x.Metrics.cum_reads));
        Json.Int (d (fun x -> x.Metrics.cum_reads_failed));
        Json.Float (df (fun x -> x.Metrics.cum_loyal_effort));
        Json.Float (df (fun x -> x.Metrics.cum_adversary_effort));
        Json.Int s.Metrics.cum_repair_underflows;
      ]
    in
    prev := Some s;
    (* Simulated time doubles as the series' flush clock, so a
       time-bounded sink drains deterministically. *)
    Obs.Series.append series ~now:s.Metrics.time row
