module Stats = Repro_prelude.Stats

type poll_outcome = Success | Inquorate | Alarmed

type t = {
  replicas : int;
  start : float;
  mutable damaged_now : int;
  damaged_integral : Stats.Time_weighted.t;
  mutable polls_succeeded : int;
  mutable polls_inquorate : int;
  mutable polls_alarmed : int;
  last_success : (Ids.Identity.t * Ids.Au_id.t, float) Hashtbl.t;
  success_gaps : Stats.Acc.t;
  successes_by_peer : (Ids.Identity.t, int) Hashtbl.t;
  mutable loyal_effort : float;
  mutable adversary_effort : float;
  mutable invitations_considered : int;
  mutable invitations_dropped : int;
  mutable repairs : int;
  mutable repair_underflows : int;
  mutable votes_supplied : int;
  mutable reads : int;
  mutable reads_failed : int;
}

let create ~replicas ~start =
  {
    replicas;
    start;
    damaged_now = 0;
    damaged_integral = Stats.Time_weighted.create ~start ~value:0.;
    polls_succeeded = 0;
    polls_inquorate = 0;
    polls_alarmed = 0;
    last_success = Hashtbl.create 256;
    success_gaps = Stats.Acc.create ();
    successes_by_peer = Hashtbl.create 64;
    loyal_effort = 0.;
    adversary_effort = 0.;
    invitations_considered = 0;
    invitations_dropped = 0;
    repairs = 0;
    repair_underflows = 0;
    votes_supplied = 0;
    reads = 0;
    reads_failed = 0;
  }

let set_damaged t ~now count =
  t.damaged_now <- count;
  Stats.Time_weighted.update t.damaged_integral ~now ~value:(float_of_int count)

let on_replica_damaged t ~now = set_damaged t ~now (t.damaged_now + 1)

(* A repair event without a matching damage event (e.g. a double repair
   delivered by a buggy or adversarial supplier) must not abort the whole
   simulation: clamp at zero and count the anomaly so it stays visible in
   the summary. *)
let on_replica_repaired t ~now =
  if t.damaged_now > 0 then set_damaged t ~now (t.damaged_now - 1)
  else t.repair_underflows <- t.repair_underflows + 1

let on_poll_concluded t ~peer ~au ~now outcome =
  match outcome with
  | Inquorate -> t.polls_inquorate <- t.polls_inquorate + 1
  | Alarmed -> t.polls_alarmed <- t.polls_alarmed + 1
  | Success ->
    t.polls_succeeded <- t.polls_succeeded + 1;
    let prior =
      match Hashtbl.find_opt t.successes_by_peer peer with None -> 0 | Some n -> n
    in
    Hashtbl.replace t.successes_by_peer peer (prior + 1);
    let key = (peer, au) in
    (match Hashtbl.find_opt t.last_success key with
    | Some previous -> Stats.Acc.add t.success_gaps (now -. previous)
    | None -> ());
    Hashtbl.replace t.last_success key now

let successes_of t peer =
  match Hashtbl.find_opt t.successes_by_peer peer with None -> 0 | Some n -> n

let charge_loyal t seconds = t.loyal_effort <- t.loyal_effort +. seconds
let charge_adversary t seconds = t.adversary_effort <- t.adversary_effort +. seconds
let on_invitation_considered t = t.invitations_considered <- t.invitations_considered + 1
let on_invitation_dropped t = t.invitations_dropped <- t.invitations_dropped + 1
let on_repair t = t.repairs <- t.repairs + 1

let on_read t ~failed =
  t.reads <- t.reads + 1;
  if failed then t.reads_failed <- t.reads_failed + 1
let on_vote_supplied t = t.votes_supplied <- t.votes_supplied + 1

type summary = {
  horizon : float;
  replicas : int;
  access_failure_probability : float;
  polls_succeeded : int;
  polls_inquorate : int;
  polls_alarmed : int;
  mean_success_gap : float;
  loyal_effort : float;
  adversary_effort : float;
  effort_per_successful_poll : float;
  invitations_considered : int;
  invitations_dropped : int;
  repairs : int;
  repair_underflows : int;
  votes_supplied : int;
  reads : int;
  reads_failed : int;
  empirical_read_failure : float;
}

(* -- Instantaneous samples (for the periodic sampler) ------------------- *)

type sample = {
  time : float;
  damaged_replicas : int;
  running_access_failure : float;
  cum_polls_succeeded : int;
  cum_polls_inquorate : int;
  cum_polls_alarmed : int;
  cum_invitations_considered : int;
  cum_invitations_dropped : int;
  cum_repairs : int;
  cum_repair_underflows : int;
  cum_votes_supplied : int;
  cum_reads : int;
  cum_reads_failed : int;
  cum_loyal_effort : float;
  cum_adversary_effort : float;
}

let sample t ~now =
  let mean_damaged = Stats.Time_weighted.mean t.damaged_integral ~now in
  {
    time = now;
    damaged_replicas = t.damaged_now;
    running_access_failure =
      (if Float.is_nan mean_damaged then 0.
       else mean_damaged /. float_of_int t.replicas);
    cum_polls_succeeded = t.polls_succeeded;
    cum_polls_inquorate = t.polls_inquorate;
    cum_polls_alarmed = t.polls_alarmed;
    cum_invitations_considered = t.invitations_considered;
    cum_invitations_dropped = t.invitations_dropped;
    cum_repairs = t.repairs;
    cum_repair_underflows = t.repair_underflows;
    cum_votes_supplied = t.votes_supplied;
    cum_reads = t.reads;
    cum_reads_failed = t.reads_failed;
    cum_loyal_effort = t.loyal_effort;
    cum_adversary_effort = t.adversary_effort;
  }

let finalize t ~now =
  let horizon = now -. t.start in
  let mean_damaged = Stats.Time_weighted.mean t.damaged_integral ~now in
  let access_failure_probability =
    if Float.is_nan mean_damaged then 0. else mean_damaged /. float_of_int t.replicas
  in
  let mean_success_gap =
    if Stats.Acc.count t.success_gaps = 0 then infinity
    else Stats.Acc.mean t.success_gaps
  in
  let effort_per_successful_poll =
    if t.polls_succeeded = 0 then infinity
    else t.loyal_effort /. float_of_int t.polls_succeeded
  in
  {
    horizon;
    replicas = t.replicas;
    access_failure_probability;
    polls_succeeded = t.polls_succeeded;
    polls_inquorate = t.polls_inquorate;
    polls_alarmed = t.polls_alarmed;
    mean_success_gap;
    loyal_effort = t.loyal_effort;
    adversary_effort = t.adversary_effort;
    effort_per_successful_poll;
    invitations_considered = t.invitations_considered;
    invitations_dropped = t.invitations_dropped;
    repairs = t.repairs;
    repair_underflows = t.repair_underflows;
    votes_supplied = t.votes_supplied;
    reads = t.reads;
    reads_failed = t.reads_failed;
    empirical_read_failure =
      (if t.reads = 0 then nan else float_of_int t.reads_failed /. float_of_int t.reads);
  }

let pp_summary ppf s =
  let module D = Repro_prelude.Duration in
  Format.fprintf ppf
    "@[<v>horizon: %a@ replicas: %d@ access failure probability: %.3e@ polls: %d ok, %d \
     inquorate, %d alarmed@ mean success gap: %a@ loyal effort: %.3e s@ adversary effort: \
     %.3e s@ effort / successful poll: %.2f s@ invitations: %d considered, %d dropped@ \
     repairs: %d%s@ votes supplied: %d@]"
    D.pp s.horizon s.replicas s.access_failure_probability s.polls_succeeded
    s.polls_inquorate s.polls_alarmed D.pp s.mean_success_gap s.loyal_effort
    s.adversary_effort s.effort_per_successful_poll s.invitations_considered
    s.invitations_dropped s.repairs
    (if s.repair_underflows > 0 then
       Printf.sprintf " (%d repair underflows!)" s.repair_underflows
     else "")
    s.votes_supplied
