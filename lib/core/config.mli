(** Protocol and simulation parameters.

    {!default} matches Section 6.3 of the paper: quorum 10, landslide
    margin 3 disagreeing votes, 3-month inter-poll interval, 1-day
    refractory period, drop probabilities 0.90 (unknown) / 0.80 (in-debt),
    0.5-GByte AUs, 50 AUs per disk, introductory effort at 20 % of the
    poller's total provable effort.

    The ablation switches ([admission_control_enabled],
    [introductions_enabled], [effort_balancing_enabled], [desynchronized])
    default to the paper's design and exist so the bench harness can
    demonstrate what each defense buys. *)

type t = {
  (* Population and content *)
  loyal_peers : int;  (** size of the loyal population (paper: 100) *)
  aus : int;  (** AUs preserved by every peer (paper: 50–600) *)
  au_blocks : int;  (** content blocks per AU *)
  block_bytes : int;  (** bytes per block; AU size = blocks × bytes *)
  friends_count : int;  (** static operator-maintained friends per peer *)
  (* Poll structure *)
  quorum : int;  (** minimum inner-circle votes for a valid poll *)
  max_disagree : int;  (** landslide margin: at most this many dissenters *)
  inner_circle_factor : int;  (** invite factor × quorum inner voters *)
  outer_circle_size : int;  (** discovery solicitations per poll *)
  reference_list_target : int;  (** reference-list size kept after updates *)
  inter_poll_interval : float;  (** seconds between poll conclusions *)
  (* Poll phase layout, as fractions of the inter-poll interval *)
  inner_window_fraction : float;  (** inner-circle solicitation window *)
  outer_window_fraction : float;  (** end of outer-circle window *)
  max_solicit_attempts : int;  (** retries per reluctant inner voter *)
  (* Per-exchange timers *)
  ack_timeout : float;  (** poller waits this long for PollAck *)
  proof_timeout : float;  (** voter waits this long for PollProof *)
  vote_allowance : float;  (** voter must finish its vote within this *)
  vote_timeout_slack : float;  (** poller's extra patience beyond allowance *)
  (* Admission control *)
  admission_control_enabled : bool;
  refractory_period : float;  (** paper: 1 day *)
  drop_unknown : float;  (** paper: 0.90 *)
  drop_debt : float;  (** paper: 0.80 *)
  grade_decay_period : float;  (** one grade step toward debt per period *)
  introductions_enabled : bool;
  max_outstanding_introductions : int;
  (* Effort balancing *)
  effort_balancing_enabled : bool;
  intro_effort_fraction : float;  (** paper: 0.20 *)
  effort_margin : float;  (** requester invests this factor over supplier *)
  (* Desynchronization *)
  desynchronized : bool;
  (* Section 9 extension: modulate poll acceptance by recent busyness *)
  adaptive_acceptance : bool;
      (** When on, a voter accepts an admitted invitation with probability
          falling in its schedule backlog, raising the marginal cost of
          loading it further (the paper's future-work suggestion). *)
  (* Repair behaviour *)
  operator_response_time : float;
      (** how long after an inconclusive-poll alarm a human operator
          audits the AU against the publisher out-of-band and restores
          the replica; <= 0 disables the operator model (alarms are
          counted but unanswered). *)
  frivolous_repair_prob : float;  (** per-poll probability of a frivolous repair *)
  max_repair_attempts : int;
  repair_timeout : float;  (** poller's patience per repair request *)
  (* Discovery *)
  nominations_per_vote : int;
  (* Resources *)
  capacity : float;  (** over-provisioning factor, reference-PC units *)
  background_load : float;
      (** fraction of each peer's capacity pre-committed to lower
          "layers" of AUs, reproducing the paper's layering technique:
          "layer n is a simulation of 50 AUs on peers already running a
          realistic workload of 50(n-1) AUs". 0 disables. *)
  cost : Effort.Cost_model.t;
  (* Storage damage *)
  disk_mttf_years : float;  (** mean years between block failures per disk *)
  aus_per_disk : int;  (** paper: 50 *)
  (* Network fidelity *)
  network_model : Narses.Net.model;
      (** the paper uses [Delay_only]; [Shared_bottleneck] adds
          first-order congestion as a fidelity ablation *)
  faults : Narses.Faults.config option;
      (** when set, a seeded {!Narses.Faults} injector interposes message
          loss, latency jitter, duplication and node churn between send
          and delivery; [None] (the default and the paper's setup) keeps
          the network perfectly reliable *)
  (* Collection diversity *)
  au_coverage : float;
      (** fraction of peers holding each AU. 1.0 is the paper's setup
          ("all peers have replicas of all AUs; we do not yet simulate
          the diversity of local collections"); lower values implement
          that deferred diversity — every AU keeps at least an inner
          circle's worth of holders. *)
  (* Local readers *)
  reads_per_replica_per_day : float;
      (** rate of local-patron reads per (peer, AU); each read of a
          damaged replica is an access failure. 0 disables the process
          (the paper's metric is the time-averaged damaged fraction,
          which reader sampling estimates empirically). *)
}

val default : t

(** [au_bytes t] is the size of one AU replica. *)
val au_bytes : t -> int

(** [vote_work t] is the reference cost for a voter to produce one vote:
    hashing its AU replica plus generating the vote's effort proof. *)
val vote_work : t -> float

(** [vote_proof_cost t] is the provable effort a vote must carry: enough
    to cover the poller hashing one block plus proof verification. *)
val vote_proof_cost : t -> float

(** [solicitation_effort t] is the total provable effort a poller must
    supply across Poll and PollProof for one solicitation. It exceeds, by
    [effort_margin], the voter's cost to verify it and produce the
    requested vote. *)
val solicitation_effort : t -> float

(** [intro_effort t] is the introductory share carried by the Poll
    message; [remaining_effort t] is the balance carried by PollProof. *)
val intro_effort : t -> float

val remaining_effort : t -> float

(** [validate t] raises [Invalid_argument] describing the first
    inconsistent field combination, if any. *)
val validate : t -> unit
