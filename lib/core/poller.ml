module Engine = Narses.Engine
module Proof = Effort.Proof
module Cost_model = Effort.Cost_model
module Rng = Repro_prelude.Rng

let current_poll (st : Peer.au_state) ~poll_id =
  match st.Peer.current_poll with
  | Some poll when poll.Peer.poll_id = poll_id && poll.Peer.phase <> Peer.Concluded ->
    Some poll
  | Some _ | None -> None

let find_candidate (poll : Peer.poll) identity =
  List.find_opt
    (fun (c : Peer.candidate) -> Ids.Identity.equal c.Peer.cand_identity identity)
    poll.Peer.candidates

let send_to ctx (peer : Peer.t) ~identity ~au payload =
  let to_node = Peer.node_of_identity ctx identity in
  Peer.send ctx ~from:peer ~to_node { Message.identity = peer.Peer.identity; au; payload }

let hash_au_cost (cfg : Config.t) =
  Cost_model.hash_seconds cfg.Config.cost ~bytes:(Config.au_bytes cfg)

let block_hash_cost (cfg : Config.t) =
  Cost_model.hash_seconds cfg.Config.cost ~bytes:cfg.Config.block_bytes

let vote_verify_cost (cfg : Config.t) =
  Cost_model.mbf_verify_seconds cfg.Config.cost
    ~generation_cost:(Config.vote_proof_cost cfg)

(* -- Solicitation ---------------------------------------------------- *)

let rec attempt_solicitation ctx (peer : Peer.t) (st : Peer.au_state) (poll : Peer.poll)
    (cand : Peer.candidate) =
  let cfg = ctx.Peer.cfg in
  match (poll.Peer.phase, cand.Peer.status) with
  | Peer.Soliciting, Peer.Not_invited ->
    cand.Peer.attempts <- cand.Peer.attempts + 1;
    (* Establish the session and generate the introductory effort; the
       Poll message leaves when the proof is ready. *)
    Peer.charge ctx ~who:peer.Peer.identity ~phase:Trace.Solicitation
      ~poller:peer.Peer.identity ~au:st.Peer.au ~poll_id:poll.Peer.poll_id
      cfg.Config.cost.Effort.Cost_model.session_setup_seconds;
    let intro_cost = Config.intro_effort cfg in
    let finish =
      Peer.charge_and_delay ctx peer ~phase:Trace.Solicitation ~au:st.Peer.au
        ~poll_id:poll.Peer.poll_id ~work:intro_cost
    in
    let send_invitation () =
      match (poll.Peer.phase, cand.Peer.status) with
      | Peer.Soliciting, Peer.Not_invited ->
        let intro = Proof.generate ~rng:peer.Peer.rng ~cost:intro_cost in
        Trace.emit ~bound:Trace.Debug ctx.Peer.trace ~now:(Engine.now ctx.Peer.engine)
          (fun () ->
            Trace.Solicitation_sent
              {
                poller = peer.Peer.identity;
                voter = cand.Peer.cand_identity;
                au = st.Peer.au;
                poll_id = poll.Peer.poll_id;
                attempt = cand.Peer.attempts;
              });
        send_to ctx peer ~identity:cand.Peer.cand_identity ~au:st.Peer.au
          (Message.Poll { poll_id = poll.Peer.poll_id; intro });
        let timeout =
          Engine.schedule_in ctx.Peer.engine ~cls:Peer.cls_ack_timeout
            ~after:cfg.Config.ack_timeout (fun () ->
              on_ack_timeout ctx peer st poll cand)
        in
        cand.Peer.status <- Peer.Awaiting_ack timeout
      | (Peer.Soliciting | Peer.Repairing | Peer.Concluded), _ -> ()
    in
    ignore (Engine.schedule ctx.Peer.engine ~at:finish send_invitation)
  | (Peer.Soliciting | Peer.Repairing | Peer.Concluded), _ -> ()

and retry_or_fail ctx (peer : Peer.t) (st : Peer.au_state) (poll : Peer.poll)
    (cand : Peer.candidate) =
  let cfg = ctx.Peer.cfg in
  let now = Engine.now ctx.Peer.engine in
  let window_end = if cand.Peer.inner then poll.Peer.inner_deadline else poll.Peer.outer_deadline in
  cand.Peer.status <- Peer.Not_invited;
  if
    cand.Peer.attempts >= cfg.Config.max_solicit_attempts
    || now +. Repro_prelude.Duration.hour >= window_end
    || poll.Peer.phase <> Peer.Soliciting
  then cand.Peer.status <- Peer.Failed
  else begin
    (* Re-try the reluctant peer later in the same solicitation phase —
       soon enough that the retry budget fits in the window, jittered so
       retries stay desynchronized. *)
    let horizon = Float.min window_end (now +. Repro_prelude.Duration.of_days 3.) in
    let at =
      if cfg.Config.desynchronized && horizon > now then
        Rng.uniform peer.Peer.rng ~lo:now ~hi:horizon
      else now
    in
    ignore
      (Engine.schedule ctx.Peer.engine ~at (fun () ->
           attempt_solicitation ctx peer st poll cand))
  end

and on_ack_timeout ctx peer st poll cand =
  match cand.Peer.status with
  | Peer.Awaiting_ack _ -> retry_or_fail ctx peer st poll cand
  | Peer.Not_invited | Peer.Awaiting_vote _ | Peer.Voted | Peer.Failed -> ()

let schedule_solicitations ctx (peer : Peer.t) (st : Peer.au_state) (poll : Peer.poll)
    candidates ~window_start ~window_end =
  let cfg = ctx.Peer.cfg in
  let now = Engine.now ctx.Peer.engine in
  let lo = Float.max now window_start in
  List.iter
    (fun cand ->
      let at =
        if cfg.Config.desynchronized && window_end > lo then
          Rng.uniform peer.Peer.rng ~lo ~hi:window_end
        else lo
      in
      ignore
        (Engine.schedule ctx.Peer.engine ~at (fun () ->
             attempt_solicitation ctx peer st poll cand)))
    candidates

(* -- Evaluation and repair ------------------------------------------- *)

let valid_votes ctx (peer : Peer.t) (st : Peer.au_state) (poll : Peer.poll) =
  let cfg = ctx.Peer.cfg in
  let now = Engine.now ctx.Peer.engine in
  let charge_eval work =
    Peer.charge ctx ~who:peer.Peer.identity ~phase:Trace.Evaluation
      ~poller:peer.Peer.identity ~au:st.Peer.au ~poll_id:poll.Peer.poll_id work
  in
  List.filter
    (fun ((cand : Peer.candidate), (vote : Vote.t)) ->
      if cfg.Config.effort_balancing_enabled then charge_eval (vote_verify_cost cfg);
      let genuine =
        ((not cfg.Config.effort_balancing_enabled)
        || Proof.meets vote.Vote.proof ~required:(Config.vote_proof_cost cfg))
        && Int64.equal vote.Vote.nonce cand.Peer.cand_nonce
      in
      let bogus = vote.Vote.bogus in
      if bogus then
        (* Garbage hashes are detected at the cost of hashing one block. *)
        charge_eval (block_hash_cost cfg);
      if genuine && (not bogus) && cfg.Config.effort_balancing_enabled then
        Peer.note_effort_received ctx ~peer:peer.Peer.identity
          ~from_:cand.Peer.cand_identity ~phase:Trace.Voting ~au:st.Peer.au
          ~poll_id:poll.Peer.poll_id
          ~seconds:(Config.vote_proof_cost cfg);
      if (not genuine) || bogus then begin
        Known_peers.punish st.Peer.known ~now cand.Peer.cand_identity;
        false
      end
      else true)
    poll.Peer.votes

let send_receipt ctx peer ~au ~poll_id ((cand : Peer.candidate), (vote : Vote.t)) =
  send_to ctx peer ~identity:cand.Peer.cand_identity ~au
    (Message.Evaluation_receipt { poll_id; receipt = Vote.expected_receipt vote })

(* An inconclusive poll is "an alarm that requires attention from a human
   operator": if the deployment models one, the operator audits the AU
   against the publisher out-of-band and restores the replica. *)
let summon_operator ctx (st : Peer.au_state) =
  let cfg = ctx.Peer.cfg in
  if cfg.Config.operator_response_time > 0. then
    ignore
      (Engine.schedule_in ctx.Peer.engine ~after:cfg.Config.operator_response_time
         (fun () ->
           let was_damaged = Replica.is_damaged st.Peer.replica in
           List.iter
             (fun (block, _version) -> ignore (Replica.write st.Peer.replica ~block ~version:0))
             (Replica.damaged_blocks st.Peer.replica);
           if was_damaged then
             Metrics.on_replica_repaired ctx.Peer.metrics
               ~now:(Engine.now ctx.Peer.engine)))

let conclude ctx (peer : Peer.t) (st : Peer.au_state) (poll : Peer.poll) ~votes outcome =
  let now = Engine.now ctx.Peer.engine in
  poll.Peer.phase <- Peer.Concluded;
  (match poll.Peer.repair_timer with
  | Some timer -> Engine.cancel ctx.Peer.engine timer
  | None -> ());
  (* Receipts and reputation settlement for everyone whose vote was
     evaluated, regardless of poll outcome. *)
  List.iter
    (fun ((cand : Peer.candidate), _vote) ->
      Known_peers.raise_grade st.Peer.known ~now cand.Peer.cand_identity)
    votes;
  List.iter (send_receipt ctx peer ~au:st.Peer.au ~poll_id:poll.Peer.poll_id) votes;
  (match outcome with
  | Metrics.Success ->
    let voted_inner =
      List.filter_map
        (fun ((cand : Peer.candidate), _) ->
          if cand.Peer.inner then Some cand.Peer.cand_identity else None)
        votes
    in
    let agreeing_outer =
      List.filter_map
        (fun ((cand : Peer.candidate), vote) ->
          if
            (not cand.Peer.inner)
            && Tally.agrees_overall ~votes:[ vote ] ~poller:st.Peer.replica ~max_disagree:0
          then Some cand.Peer.cand_identity
          else None)
        votes
    in
    Reference_list.update st.Peer.reference ~rng:peer.Peer.rng ~voted:voted_inner
      ~agreeing_outer
      ~fallback:(Peer.fallback_identities peer st ~now);
    (* Voters that left the reference list can no longer vouch for
       others. *)
    List.iter
      (fun voter -> Introductions.forget_introducer (Admission.introductions st.Peer.admission) voter)
      voted_inner
  | Metrics.Inquorate -> ()
  | Metrics.Alarmed -> summon_operator ctx st);
  st.Peer.current_poll <- None;
  (* A successful conclusion is Info, anything else Warn: the bound is
     the event's exact severity, known from [outcome] before building it. *)
  let conclusion_bound =
    match outcome with Metrics.Success -> Trace.Info | _ -> Trace.Warn
  in
  Trace.emit ~bound:conclusion_bound ctx.Peer.trace ~now (fun () ->
      Trace.Poll_concluded
        { poller = peer.Peer.identity; au = st.Peer.au; poll_id = poll.Peer.poll_id; outcome });
  Metrics.on_poll_concluded ctx.Peer.metrics ~peer:peer.Peer.identity ~au:st.Peer.au ~now
    outcome

let classify_block (cfg : Config.t) (st : Peer.au_state) inner_votes block =
  Tally.classify ~votes:inner_votes ~block
    ~poller_version:(Replica.version st.Peer.replica block)
    ~max_disagree:cfg.Config.max_disagree

let rec issue_next_repair ctx (peer : Peer.t) (st : Peer.au_state) (poll : Peer.poll)
    ~votes ~inner_votes =
  let cfg = ctx.Peer.cfg in
  match poll.Peer.pending_repairs with
  | [] ->
    if poll.Peer.alarmed then conclude ctx peer st poll ~votes Metrics.Alarmed
    else conclude ctx peer st poll ~votes Metrics.Success
  | (block, suppliers) :: rest ->
    (match suppliers with
    | [] ->
      (* Nobody reachable can supply this block: the poll cannot complete
         its repairs and fails; the fixed-rate clock will try again. *)
      conclude ctx peer st poll ~votes Metrics.Inquorate
    | supplier :: others ->
      poll.Peer.pending_repairs <- (block, others) :: rest;
      send_to ctx peer ~identity:supplier ~au:st.Peer.au
        (Message.Repair_request { poll_id = poll.Peer.poll_id; block });
      let timer =
        Engine.schedule_in ctx.Peer.engine ~cls:Peer.cls_repair_timeout
          ~after:cfg.Config.repair_timeout (fun () ->
            match poll.Peer.phase with
            | Peer.Repairing ->
              poll.Peer.repair_timer <- None;
              issue_next_repair ctx peer st poll ~votes ~inner_votes
            | Peer.Soliciting | Peer.Concluded -> ())
      in
      poll.Peer.repair_timer <- Some timer)

let start_repair_phase ctx (peer : Peer.t) (st : Peer.au_state) (poll : Peer.poll) ~votes
    ~inner_votes =
  let cfg = ctx.Peer.cfg in
  poll.Peer.phase <- Peer.Repairing;
  let blocks =
    Tally.blocks_to_inspect
      ~poller_damage:(Replica.damaged_blocks st.Peer.replica)
      ~votes:inner_votes
  in
  let pending =
    List.filter_map
      (fun block ->
        match classify_block cfg st inner_votes block with
        | Tally.Landslide_agree -> None
        | Tally.Landslide_disagree dissenters ->
          Some (block, Rng.sample peer.Peer.rng (List.length dissenters) dissenters)
        | Tally.Inconclusive ->
          poll.Peer.alarmed <- true;
          None)
      blocks
  in
  (* Frivolous repair: exercise a random voter's repair path even when no
     block needs it, to make targeted repair-refusal free-riding
     detectable. *)
  let pending =
    if
      Rng.bernoulli peer.Peer.rng cfg.Config.frivolous_repair_prob
      && inner_votes <> [] && pending = []
    then begin
      let block = Rng.int peer.Peer.rng cfg.Config.au_blocks in
      let voter = (Rng.pick_list peer.Peer.rng inner_votes).Vote.voter in
      [ (block, [ voter ]) ]
    end
    else pending
  in
  poll.Peer.pending_repairs <- pending;
  if poll.Peer.alarmed then conclude ctx peer st poll ~votes Metrics.Alarmed
  else issue_next_repair ctx peer st poll ~votes ~inner_votes

let begin_evaluation ctx (peer : Peer.t) (st : Peer.au_state) (poll : Peer.poll) =
  let cfg = ctx.Peer.cfg in
  (* Freeze solicitation: unresolved candidates have failed. *)
  List.iter
    (fun (cand : Peer.candidate) ->
      match cand.Peer.status with
      | Peer.Awaiting_ack timeout | Peer.Awaiting_vote timeout ->
        Engine.cancel ctx.Peer.engine timeout;
        cand.Peer.status <- Peer.Failed
      | Peer.Not_invited -> cand.Peer.status <- Peer.Failed
      | Peer.Voted | Peer.Failed -> ())
    poll.Peer.candidates;
  let votes = valid_votes ctx peer st poll in
  poll.Peer.votes <- votes;
  let inner_votes =
    List.filter_map
      (fun ((cand : Peer.candidate), vote) -> if cand.Peer.inner then Some vote else None)
      votes
  in
  Trace.emit ~bound:Trace.Debug ctx.Peer.trace ~now:(Engine.now ctx.Peer.engine)
    (fun () ->
      Trace.Evaluation_started
        {
          poller = peer.Peer.identity;
          au = st.Peer.au;
          poll_id = poll.Peer.poll_id;
          votes = List.length votes;
        });
  if votes = [] then conclude ctx peer st poll ~votes Metrics.Inquorate
  else begin
    (* One pass over the local replica computes, in parallel, every hash
       each voter should have produced. *)
    let finish =
      Peer.charge_and_delay ctx peer ~phase:Trace.Evaluation ~au:st.Peer.au
        ~poll_id:poll.Peer.poll_id ~work:(hash_au_cost cfg)
    in
    ignore
      (Engine.schedule ctx.Peer.engine ~at:finish (fun () ->
           if List.length inner_votes < cfg.Config.quorum then
             conclude ctx peer st poll ~votes Metrics.Inquorate
           else start_repair_phase ctx peer st poll ~votes ~inner_votes))
  end

let start_outer_phase ctx (peer : Peer.t) (st : Peer.au_state) (poll : Peer.poll) =
  let cfg = ctx.Peer.cfg in
  match poll.Peer.phase with
  | Peer.Soliciting ->
    let existing =
      peer.Peer.identity
      :: List.map (fun (c : Peer.candidate) -> c.Peer.cand_identity) poll.Peer.candidates
    in
    let pool =
      List.sort_uniq Ids.Identity.compare poll.Peer.nominations
      |> List.filter (fun id -> not (List.exists (Ids.Identity.equal id) existing))
    in
    let chosen = Rng.sample peer.Peer.rng cfg.Config.outer_circle_size pool in
    let outer =
      List.map
        (fun id ->
          {
            Peer.cand_identity = id;
            inner = false;
            attempts = 0;
            status = Peer.Not_invited;
            cand_nonce = 0L;
          })
        chosen
    in
    poll.Peer.candidates <- poll.Peer.candidates @ outer;
    schedule_solicitations ctx peer st poll outer
      ~window_start:(Engine.now ctx.Peer.engine)
      ~window_end:poll.Peer.outer_deadline
  | Peer.Repairing | Peer.Concluded -> ()

(* -- Entry points ------------------------------------------------------ *)

let rec start_poll ctx (peer : Peer.t) (st : Peer.au_state) =
  let cfg = ctx.Peer.cfg in
  let now = Engine.now ctx.Peer.engine in
  (* Fixed-rate clock: the next poll starts one interval from now, no
     matter what happens to this one. *)
  ignore
    (Engine.schedule_in ctx.Peer.engine ~after:cfg.Config.inter_poll_interval (fun () ->
         start_poll ctx peer st));
  if not peer.Peer.active then ()  (* crashed: keep the clock, skip the tick *)
  else
  match st.Peer.current_poll with
  | Some _ -> ()  (* previous poll overran; skip this tick *)
  | None ->
    let interval = cfg.Config.inter_poll_interval in
    let poll =
      {
        Peer.poll_id = Peer.fresh_poll_id peer;
        poll_au = st.Peer.au;
        started_at = now;
        inner_deadline = now +. (cfg.Config.inner_window_fraction *. interval);
        outer_deadline = now +. (cfg.Config.outer_window_fraction *. interval);
        candidates = [];
        votes = [];
        nominations = [];
        phase = Peer.Soliciting;
        pending_repairs = [];
        repair_timer = None;
        repair_attempts = 0;
        alarmed = false;
      }
    in
    st.Peer.current_poll <- Some poll;
    let sample_size = cfg.Config.inner_circle_factor * cfg.Config.quorum in
    let inner_ids =
      Reference_list.sample st.Peer.reference ~rng:peer.Peer.rng ~count:sample_size
        ~excluding:[ peer.Peer.identity ]
    in
    let inner =
      List.map
        (fun id ->
          {
            Peer.cand_identity = id;
            inner = true;
            attempts = 0;
            status = Peer.Not_invited;
            cand_nonce = 0L;
          })
        inner_ids
    in
    poll.Peer.candidates <- inner;
    Trace.emit ~bound:Trace.Info ctx.Peer.trace ~now (fun () ->
        Trace.Poll_started
          {
            poller = peer.Peer.identity;
            au = st.Peer.au;
            poll_id = poll.Peer.poll_id;
            inner_candidates = List.length inner;
          });
    Trace.emit ~bound:Trace.Debug ctx.Peer.trace ~now (fun () ->
        Trace.Poll_sampled
          {
            poller = peer.Peer.identity;
            au = st.Peer.au;
            poll_id = poll.Peer.poll_id;
            invited = inner_ids;
            reference = Reference_list.members st.Peer.reference;
          });
    schedule_solicitations ctx peer st poll inner ~window_start:now
      ~window_end:poll.Peer.inner_deadline;
    ignore
      (Engine.schedule ctx.Peer.engine ~at:poll.Peer.inner_deadline (fun () ->
           start_outer_phase ctx peer st poll));
    ignore
      (Engine.schedule ctx.Peer.engine ~at:poll.Peer.outer_deadline (fun () ->
           match poll.Peer.phase with
           | Peer.Soliciting -> begin_evaluation ctx peer st poll
           | Peer.Repairing | Peer.Concluded -> ()))

let on_poll_ack ctx (peer : Peer.t) ~identity ~au ~poll_id ~accepted =
  let st = Peer.au_state peer au in
  let reject = Peer.reject_message ctx peer ~from_:identity ~au ~poll_id ~msg_kind:"poll_ack" in
  match current_poll st ~poll_id with
  | None -> reject Trace.Unknown_poll
  | Some poll ->
    (match find_candidate poll identity with
    | None -> reject Trace.Uninvited
    | Some cand ->
      (match cand.Peer.status with
      | Peer.Awaiting_ack timeout ->
        Engine.cancel ctx.Peer.engine timeout;
        if not accepted then retry_or_fail ctx peer st poll cand
        else begin
          let cfg = ctx.Peer.cfg in
          let remaining_cost = Config.remaining_effort cfg in
          (* Generate the balance of the provable effort; the PollProof
             leaves when it is ready. *)
          let finish =
            Peer.charge_and_delay ctx peer ~phase:Trace.Solicitation ~au ~poll_id
              ~work:remaining_cost
          in
          let nonce = Rng.bits64 peer.Peer.rng in
          cand.Peer.cand_nonce <- nonce;
          let vote_patience = cfg.Config.vote_allowance +. cfg.Config.vote_timeout_slack in
          let dispatch () =
            match (poll.Peer.phase, cand.Peer.status) with
            | Peer.Soliciting, Peer.Awaiting_vote _ ->
              let remaining = Proof.generate ~rng:peer.Peer.rng ~cost:remaining_cost in
              send_to ctx peer ~identity ~au
                (Message.Poll_proof { poll_id; remaining; nonce });
              let timeout =
                Engine.schedule_in ctx.Peer.engine ~cls:Peer.cls_vote_timeout
                  ~after:vote_patience (fun () ->
                    match cand.Peer.status with
                    | Peer.Awaiting_vote _ -> cand.Peer.status <- Peer.Failed
                    | Peer.Not_invited | Peer.Awaiting_ack _ | Peer.Voted | Peer.Failed
                      -> ())
              in
              cand.Peer.status <- Peer.Awaiting_vote timeout
            | ( (Peer.Soliciting | Peer.Repairing | Peer.Concluded),
                ( Peer.Not_invited | Peer.Awaiting_ack _ | Peer.Awaiting_vote _
                | Peer.Voted | Peer.Failed ) ) -> ()
          in
          (* While the proof is being generated the candidate waits in
             Awaiting_vote state, holding the dispatch event as its
             timeout (begin_evaluation cancels it if the window ends). *)
          cand.Peer.status <-
            Peer.Awaiting_vote
              (Engine.schedule ctx.Peer.engine ~cls:Peer.cls_vote_timeout ~at:finish
                 dispatch)
        end
      | Peer.Not_invited | Peer.Awaiting_vote _ | Peer.Voted | Peer.Failed ->
        reject Trace.Wrong_state))

let on_vote ctx (peer : Peer.t) ~identity ~au ~poll_id ~vote =
  let st = Peer.au_state peer au in
  let reject = Peer.reject_message ctx peer ~from_:identity ~au ~poll_id ~msg_kind:"vote" in
  match current_poll st ~poll_id with
  | None -> reject Trace.Unknown_poll
  | Some poll ->
    (match find_candidate poll identity with
    | None -> reject Trace.Uninvited
    | Some cand ->
      (match cand.Peer.status with
      | Peer.Awaiting_vote timeout ->
        Engine.cancel ctx.Peer.engine timeout;
        cand.Peer.status <- Peer.Voted;
        poll.Peer.votes <- (cand, vote) :: poll.Peer.votes;
        (* Discovery: split the vote's peer identities between outer-circle
           nominations and introductions. *)
        let cfg = ctx.Peer.cfg in
        List.iter
          (fun nominee ->
            if cfg.Config.introductions_enabled && Rng.bool peer.Peer.rng then
              Introductions.add
                (Admission.introductions st.Peer.admission)
                ~introducer:identity ~introducee:nominee
            else poll.Peer.nominations <- nominee :: poll.Peer.nominations)
          vote.Vote.nominations
      | Peer.Not_invited | Peer.Awaiting_ack _ | Peer.Voted | Peer.Failed ->
        reject Trace.Wrong_state))

let on_repair ctx (peer : Peer.t) ~identity ~au ~poll_id ~block ~version =
  let st = Peer.au_state peer au in
  let reject = Peer.reject_message ctx peer ~from_:identity ~au ~poll_id ~msg_kind:"repair" in
  if block < 0 || block >= Replica.block_count st.Peer.replica then
    (* A corrupted block index would blow up Replica.write below. *)
    reject Trace.Bad_block
  else
  match current_poll st ~poll_id with
  | None -> reject Trace.Unknown_poll
  | Some poll ->
    (match poll.Peer.phase with
    | Peer.Repairing ->
      (match poll.Peer.pending_repairs with
      | (pending_block, _suppliers) :: rest when pending_block = block ->
        (match poll.Peer.repair_timer with
        | Some timer ->
          Engine.cancel ctx.Peer.engine timer;
          poll.Peer.repair_timer <- None
        | None -> ());
        let cfg = ctx.Peer.cfg in
        (* Validate and install the repair, then re-evaluate the block. A
           repair from a malign voter can corrupt a previously clean
           replica — track both transition directions. *)
        Peer.charge ctx ~who:peer.Peer.identity ~phase:Trace.Repair
          ~poller:peer.Peer.identity ~au:st.Peer.au ~poll_id
          (2. *. block_hash_cost cfg);
        Metrics.on_repair ctx.Peer.metrics;
        let was_damaged = Replica.is_damaged st.Peer.replica in
        let became_clean = Replica.write st.Peer.replica ~block ~version in
        let now_damaged = Replica.is_damaged st.Peer.replica in
        Trace.emit ~bound:Trace.Info ctx.Peer.trace ~now:(Engine.now ctx.Peer.engine)
          (fun () ->
            Trace.Repair_applied
              {
                poller = peer.Peer.identity;
                au = st.Peer.au;
                poll_id;
                block;
                version;
                clean = not now_damaged;
              });
        if became_clean then
          Metrics.on_replica_repaired ctx.Peer.metrics ~now:(Engine.now ctx.Peer.engine)
        else if (not was_damaged) && now_damaged then
          Metrics.on_replica_damaged ctx.Peer.metrics ~now:(Engine.now ctx.Peer.engine);
        let inner_votes =
          List.filter_map
            (fun ((c : Peer.candidate), v) -> if c.Peer.inner then Some v else None)
            poll.Peer.votes
        in
        let votes = poll.Peer.votes in
        (match classify_block cfg st inner_votes block with
        | Tally.Landslide_agree ->
          poll.Peer.pending_repairs <- rest;
          issue_next_repair ctx peer st poll ~votes ~inner_votes
        | Tally.Landslide_disagree _ ->
          (* The repair came from a voter whose own copy is damaged; try
             the remaining dissenters, up to the retry budget. *)
          poll.Peer.repair_attempts <- poll.Peer.repair_attempts + 1;
          if poll.Peer.repair_attempts > cfg.Config.max_repair_attempts then
            conclude ctx peer st poll ~votes Metrics.Inquorate
          else issue_next_repair ctx peer st poll ~votes ~inner_votes
        | Tally.Inconclusive ->
          poll.Peer.alarmed <- true;
          conclude ctx peer st poll ~votes Metrics.Alarmed)
      | (_, _) :: _ | [] ->
        (* Not the block at the head of the repair queue: either a stale
           retransmission or a corrupted index. *)
        reject Trace.Bad_block)
    | Peer.Soliciting | Peer.Concluded -> reject Trace.Wrong_phase)
