(** Per-AU reference list: the population a poller samples voters from.

    "The reference list contains mostly peers that have agreed with the
    poller in recent polls on the AU, and a few peers from its static
    friends list." At poll conclusion the poller "updates its reference
    list by removing all voters whose votes determined the poll outcome
    and by inserting all agreeing outer-circle voters and some peers from
    the friends list". Removal churns the sample so an adversary cannot
    park identities in it; friend insertion (friend bias) guarantees a
    trusted trickle. *)

type t

(** [create ~target ~friends ~initial] seeds the list with [initial]
    (bootstrap: peers learned from the publisher) plus friends; [target]
    is the size {!update} tops back up to. *)
val create : target:int -> friends:Ids.Identity.t list -> initial:Ids.Identity.t list -> t

val members : t -> Ids.Identity.t list

(** [friends t] is the static friend set supplied at creation (already
    filtered to peers that hold the AU). *)
val friends : t -> Ids.Identity.t list
val size : t -> int
val mem : t -> Ids.Identity.t -> bool

(** [sample t ~rng ~count ~excluding] draws up to [count] distinct members
    uniformly, never drawing from [excluding]. *)
val sample :
  t -> rng:Repro_prelude.Rng.t -> count:int -> excluding:Ids.Identity.t list ->
  Ids.Identity.t list

(** [nominate t ~rng ~count] is the random subset a voter includes in its
    Vote message. *)
val nominate : t -> rng:Repro_prelude.Rng.t -> count:int -> Ids.Identity.t list

(** [update t ~rng ~voted ~agreeing_outer ~fallback] applies the
    poll-conclusion rule: remove [voted], insert [agreeing_outer] and a
    friend sample, then top up toward the target from [fallback] (peers
    known to preserve the AU) if discovery alone left the list short.
    An empty friend set yields an empty friend sample. *)
val update :
  t ->
  rng:Repro_prelude.Rng.t ->
  voted:Ids.Identity.t list ->
  agreeing_outer:Ids.Identity.t list ->
  fallback:Ids.Identity.t list ->
  unit

(** [insert t identity] adds a member idempotently. *)
val insert : t -> Ids.Identity.t -> unit

(** [remove t identity] deletes a member if present. *)
val remove : t -> Ids.Identity.t -> unit

(** [merged_with_friends t ids] merges the ascending duplicate-free
    [ids] with the friend set: equal to
    [List.sort_uniq compare (ids @ friends t)] but a linear sorted
    merge. Used to assemble per-AU fallback identity lists. *)
val merged_with_friends : t -> Ids.Identity.t list -> Ids.Identity.t list
