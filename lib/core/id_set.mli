(** Order-preserving compact set of interned identities.

    Semantically a duplicate-free [Ids.Identity.t list] with O(1)
    membership, size and prepend, and O(n) remove (a shift within a
    flat int array, cache-friendly at reference-list sizes). The
    logical order is exactly the list order the callers used to
    maintain by hand — creation order, new members prepended, removal
    order-preserving — because that order is observable: it feeds
    seeded shuffles and appears in trace events. *)

type t

(** [of_ordered_list xs] builds the set with logical order [xs]; raises
    [Invalid_argument] on duplicates. *)
val of_ordered_list : Ids.Identity.t list -> t

val size : t -> int
val mem : t -> Ids.Identity.t -> bool

(** [prepend t x] adds [x] at the logical head (idempotent). *)
val prepend : t -> Ids.Identity.t -> unit

(** [remove t x] deletes [x] if present, preserving the order of the
    remaining elements. *)
val remove : t -> Ids.Identity.t -> unit

(** [to_list t] is the members in logical order. *)
val to_list : t -> Ids.Identity.t list

(** [to_ordered_array t] is a fresh array of the members in logical
    order (safe to shuffle in place). *)
val to_ordered_array : t -> Ids.Identity.t array

(** [filtered_ordered_array t ~keep] is {!to_ordered_array} restricted
    to members satisfying [keep]. *)
val filtered_ordered_array : t -> keep:(Ids.Identity.t -> bool) -> Ids.Identity.t array
