(** Structured protocol event tracing.

    A lightweight observer registry the protocol code emits typed events
    into. With no subscribers the cost is one list check per event, so
    production runs pay nothing; tools subscribe to watch poll
    lifecycles, admission decisions and repairs as they happen (see
    [examples/poll_timeline.ml] and [examples/observability_demo.ml]).

    Every poll-lifecycle event carries the full causal correlation key
    [(poller, au, poll_id)] (the dropped-invitation event carries the
    {e claimed} poller), so a poll can be followed from solicitation
    through evaluation to repair and conclusion — live via {!subscribe}
    or offline from a JSONL trace ({!Obs.Span}, {!Obs.Analyze}).

    Beyond raw subscription, this module provides an event taxonomy
    ({!kind}, {!severity}), composable {{!sinks} sinks} (pretty-printing,
    JSONL, filtering), a lossless JSON round-trip ({!to_json} /
    {!of_json}) and a bounded-ring {!recorder} that counts what it had to
    drop instead of losing it silently. *)

(** {2 Effort taxonomy}

    Provable-effort accounting events classify work by who spends it and
    in which protocol phase, mirroring the paper's effort-balancing
    argument: charges are binned by the {e spender's} activity, receipts
    by the phase whose work generated the proof. *)

(** Whether the charge was booked against the loyal population or the
    adversary (mirrors [Metrics.charge_loyal] / [charge_adversary]). *)
type effort_role = Loyal | Adversary

val effort_role_to_string : effort_role -> string
val effort_role_of_string : string -> effort_role option

(** The protocol phase an effort charge belongs to:
    - [Admission]: a voter's consideration and introductory-proof
      verification cost (including garbage invitations);
    - [Solicitation]: a poller's session setup and introductory /
      remaining proof generation;
    - [Voting]: a voter's remaining-proof verification and vote
      computation;
    - [Evaluation]: a poller's vote-proof verification and AU hashing;
    - [Repair]: block hashing on either side of a repair. *)
type effort_phase = Admission | Solicitation | Voting | Evaluation | Repair

val effort_phase_to_string : effort_phase -> string
val effort_phase_of_string : string -> effort_phase option

(** All effort phases, in declaration order. *)
val all_effort_phases : effort_phase list

(** {2 Admission paths}

    Which filter branch admitted an invitation: via a consumed
    introduction, as an anonymous unknown, or as a known peer with its
    effective (decayed) grade at admission time. *)
type admission_path =
  | Admitted_introduced
  | Admitted_unknown
  | Admitted_known of Grade.t

(** [admission_path_of_decision d] converts the payload of
    [Admission.Admitted d] to its trace representation. *)
val admission_path_of_decision :
  [ `Known of Grade.t | `Unknown | `Introduced ] -> admission_path

val admission_path_to_string : admission_path -> string
val admission_path_of_string : string -> admission_path option

(** {2 Reject reasons}

    Why a protocol handler refused to act on a delivered message.
    Hardened handlers (PR 7) validate sender, session, poll id, phase
    and field ranges before acting; anything that fails validation is
    dropped with a [message_rejected] event instead of raising or
    corrupting state:
    - [Bad_au]: the AU index is out of range for the receiving peer;
    - [Not_held]: the peer does not preserve the referenced AU;
    - [Unknown_poll]: no current poll matches the message's poll id;
    - [Uninvited]: the sender was never invited into the poll;
    - [Wrong_state]: the candidate/session exists but is not in a state
      that accepts this message (e.g. a duplicate or late reply);
    - [Wrong_phase]: the poll is not in the phase the message belongs to;
    - [Unknown_session]: no voter session matches the message;
    - [Stale_closed]: the session existed but recently closed;
    - [Bad_block]: the block index is out of range. *)
type reject_reason =
  | Bad_au
  | Not_held
  | Unknown_poll
  | Uninvited
  | Wrong_state
  | Wrong_phase
  | Unknown_session
  | Stale_closed
  | Bad_block

val reject_reason_to_string : reject_reason -> string
val reject_reason_of_string : string -> reject_reason option

(** All reject reasons, in declaration order. *)
val all_reject_reasons : reject_reason list

type event =
  | Poll_started of { poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int; inner_candidates : int }
  | Solicitation_sent of {
      poller : Ids.Identity.t;
      voter : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      attempt : int;
    }
  | Invitation_dropped of {
      voter : Ids.Identity.t;
      claimed : Ids.Identity.t;  (** alleged poller; unauthenticated *)
      au : Ids.Au_id.t;
      poll_id : int;
      reason : Admission.drop_reason;
    }
  | Invitation_admitted of {
      voter : Ids.Identity.t;
      claimed : Ids.Identity.t;  (** alleged poller; unauthenticated *)
      au : Ids.Au_id.t;
      poll_id : int option;  (** [None] for unsolicited (garbage) invitations *)
      path : admission_path;
    }
      (** the admission filter let an invitation through — the checkable
          complement of [Invitation_dropped], consumed by the refractory
          self-clocking invariant *)
  | Invitation_refused of {
      voter : Ids.Identity.t;
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
    }
      (** admitted but refused: schedule or adaptive-acceptance pushback *)
  | Invitation_accepted of {
      voter : Ids.Identity.t;
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
    }
  | Vote_sent of { voter : Ids.Identity.t; poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int }
  | Poll_sampled of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      invited : Ids.Identity.t list;  (** the sampled inner circle *)
      reference : Ids.Identity.t list;  (** reference list at sampling time *)
    }
      (** the inner-circle sample a poll drew from its reference list,
          consumed by the sampling and quorum invariants *)
  | Evaluation_started of { poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int; votes : int }
  | Repair_applied of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;  (** the poll whose evaluation triggered the repair *)
      block : int;
      version : int;
      clean : bool;  (** replica fully clean after this repair *)
    }
  | Poll_concluded of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      outcome : Metrics.poll_outcome;
    }
  | Effort_charged of {
      peer : Ids.Identity.t;  (** who spent the effort *)
      role : effort_role;
      phase : effort_phase;
      poller : Ids.Identity.t option;  (** poll owner, when known *)
      au : Ids.Au_id.t option;
      poll_id : int option;
      seconds : float;
    }
      (** provable effort spent; emitted at every [Peer.charge] /
          [charge_and_delay] / [charge_adversary] call, so summing these
          reconstructs the [Metrics] effort aggregates exactly *)
  | Effort_received of {
      peer : Ids.Identity.t;  (** the verifier *)
      from_ : Ids.Identity.t;  (** the prover *)
      phase : effort_phase;  (** phase whose work generated the proof *)
      au : Ids.Au_id.t;
      poll_id : int;
      seconds : float;  (** the proven effort *)
    }
      (** a provable-effort proof verified successfully; emitted only
          when effort balancing is enabled *)
  | Message_rejected of {
      peer : Ids.Identity.t;  (** the receiver that refused to act *)
      from_ : Ids.Identity.t;  (** claimed sender identity; unauthenticated *)
      au : Ids.Au_id.t;  (** claimed AU — may itself be corrupt *)
      poll_id : int option;  (** claimed poll id, when the payload has one *)
      msg_kind : string;  (** payload constructor, [Message.kind_string] *)
      reason : reject_reason;
    }
      (** a delivered message failed handler validation and was dropped
          without touching protocol state — the hardened complement of
          raising or silently corrupting tallies *)
  | Fault_dropped of { src : Ids.Identity.t; dst : Ids.Identity.t }
      (** injected message loss (or a copy lost to a crashed endpoint) *)
  | Fault_duplicated of { src : Ids.Identity.t; dst : Ids.Identity.t }
  | Fault_delayed of { src : Ids.Identity.t; dst : Ids.Identity.t; extra : float }
  | Partition_dropped of { src : Ids.Identity.t; dst : Ids.Identity.t }
      (** a send suppressed by a pipe-stoppage partition — previously
          conflated with [Fault_dropped] in the network counters *)
  | Fault_corrupted of { src : Ids.Identity.t; dst : Ids.Identity.t }
      (** one field of a delivered copy was mutated in flight *)
  | Fault_replayed of { src : Ids.Identity.t; dst : Ids.Identity.t; extra : float }
      (** a previously delivered message was re-injected *)
  | Fault_stale of { src : Ids.Identity.t; dst : Ids.Identity.t; extra : float }
      (** a previously delivered message was re-injected after a long
          extra delay, typically after its session closed *)
  | Fault_stray of { src : Ids.Identity.t; dst : Ids.Identity.t }
      (** an unsolicited in-protocol message was forged from a
          never-invited identity *)
  | Node_crashed of { node : Ids.Identity.t }  (** churn took the node down *)
  | Node_restarted of { node : Ids.Identity.t }
  | Invariant_violated of {
      invariant : string;  (** the [Check.Invariant] id that fired *)
      peer : Ids.Identity.t option;
      au : Ids.Au_id.t option;
      poll_id : int option;
      detail : string;
    }
      (** a protocol invariant failed; emitted by a live [Check.Auditor]
          attached to this bus (auditors never react to these, so
          re-emission cannot loop) *)

(** Event severity, ordered [Debug < Info < Warn]. [Debug] is the
    per-message chatter of healthy polls (including effort accounting);
    [Info] marks poll lifecycle milestones, admission drops and repairs;
    [Warn] marks outcomes that indicate trouble (inquorate or alarmed
    polls, invariant violations). *)
type severity = Debug | Info | Warn

type t

val create : unit -> t

(** [subscribe ?interest t f] adds an observer called synchronously on
    every event with the current simulated time. [interest] (default
    [Debug], i.e. everything) declares the minimum severity [f] cares
    about: when {e every} subscriber's interest is above an emit's
    {e bound}, the event is never even constructed. The bus does not
    filter delivery — a subscriber that declares [Warn] interest must
    still filter the events it receives (the severity sinks do) —
    interest only licenses skipping. *)
val subscribe : ?interest:severity -> t -> (time:float -> event -> unit) -> unit

(** [emit ?bound t ~now event] notifies subscribers; free when there are
    none. The [event] is a thunk so construction is also skipped
    unobserved. [bound] is the {e highest} severity the thunk's event
    could have — when it is below every subscriber's interest, the thunk
    is not run and nothing is allocated. The default [Warn] never skips;
    hot call sites that emit statically-[Debug] chatter pass
    [~bound:Debug]. Declaring a bound lower than the event's actual
    severity would silently drop it for interested subscribers — the
    severity-parity test in [test/test_trace_pipeline.ml] guards the
    in-tree call sites. *)
val emit : ?bound:severity -> t -> now:float -> (unit -> event) -> unit

val pp_event : Format.formatter -> event -> unit

(** {2 Taxonomy} *)

val severity : event -> severity
val severity_to_string : severity -> string
val severity_of_string : string -> severity option

(** [kind e] is the snake_case taxonomy name of the constructor, e.g.
    ["poll_started"]. *)
val kind : event -> string

(** All kind names, in declaration order. *)
val all_kinds : string list

(** [involves e id] is [true] when [id] appears in any role of [e]
    (poller, voter, claimed identity, effort spender or prover). *)
val involves : event -> Ids.Identity.t -> bool

(** [au_of e] is the archival unit the event concerns; [None] for fault
    and churn events, which are not tied to any AU, and for effort
    charges without a correlated AU. *)
val au_of : event -> Ids.Au_id.t option

(** {2:sinks Sinks} *)

(** A sink is just an observer; every sink can be passed to
    {!subscribe}. *)
type sink = time:float -> event -> unit

(** [pretty_sink ?min_severity ppf] renders events human-readably, one
    per line: [\[time\] \[severity\] description]. *)
val pretty_sink : ?min_severity:severity -> Format.formatter -> sink

(** [jsonl_sink ?min_severity oc] writes one JSON object per event (the
    {!to_json} encoding) per line. The channel is flushed per line so a
    crashed run keeps its trace — which makes it expensive; production
    runs use {!buffered_jsonl_sink} instead. *)
val jsonl_sink : ?min_severity:severity -> out_channel -> sink

(** [buffered_jsonl_sink ?min_severity sink] is {!jsonl_sink} writing
    through a buffered {!Obs.Sink} (event time forwarded for
    time-bounded flushing) instead of flushing per event. Close or
    flush the sink to make the tail durable. *)
val buffered_jsonl_sink : ?min_severity:severity -> Obs.Sink.t -> sink

(** [binary_sink ?min_severity w] writes events in the compact binary
    trace format ({!Obs.Btrace}); decoding yields exactly the
    {!to_json} value, so binary and JSONL traces analyze identically. *)
val binary_sink : ?min_severity:severity -> Obs.Btrace.writer -> sink

(** [filter_sink ?min_severity ?peer ?au ?kinds inner] forwards only
    matching events: severity at least [min_severity], involving [peer],
    concerning [au], with {!kind} listed in [kinds]. Omitted criteria
    admit everything. *)
val filter_sink :
  ?min_severity:severity ->
  ?peer:Ids.Identity.t ->
  ?au:Ids.Au_id.t ->
  ?kinds:string list ->
  sink ->
  sink

(** {2 JSON round-trip} *)

(** [to_json ~time e] is a flat object: ["t"] (seconds), ["severity"],
    ["kind"], then the constructor's fields. Optional correlation fields
    of {!event.Effort_charged} are omitted when absent. *)
val to_json : time:float -> event -> Obs.Json.t

(** [of_json j] inverts {!to_json}. Absent or [null] optional
    correlation fields decode to [None]. *)
val of_json : Obs.Json.t -> (float * event, string) result

(** [write_jsonl buf ~time e] appends exactly the bytes of
    [Obs.Json.write buf (to_json ~time e)] (no trailing newline) without
    building the intermediate JSON value — the allocation-light hot path
    used by {!buffered_jsonl_sink}. Byte parity with {!to_json} is
    guarded by a test in test/test_trace_pipeline.ml. *)
val write_jsonl : Buffer.t -> time:float -> event -> unit

(** [to_view ~time e] is the analyzer projection of [e] — agrees with
    [Obs.View.of_json (to_json ~time e)] by construction, without
    building JSON. The live span/ledger bridges feed this to
    [Obs.Analyze.feed_view]. *)
val to_view : time:float -> event -> Obs.View.t

(** {2 Recording} *)

type record = {
  events : (float * event) list;  (** oldest first; at most [capacity] *)
  dropped : int;  (** events evicted from the ring because it was full *)
}

(** [recorder ?capacity t] subscribes a bounded ring recorder and returns
    a function producing what is currently retained. Once more than
    [capacity] (default 65536) events arrive, the oldest are evicted and
    counted in [dropped] — the tail of a run is usually the interesting
    part, and nothing disappears without a trace. *)
val recorder : ?capacity:int -> t -> unit -> record
