(** Structured protocol event tracing.

    A lightweight observer registry the protocol code emits typed events
    into. With no subscribers the cost is one list check per event, so
    production runs pay nothing; tools subscribe to watch poll
    lifecycles, admission decisions and repairs as they happen (see
    [examples/poll_timeline.ml] and [examples/observability_demo.ml]).

    Beyond raw subscription, this module provides an event taxonomy
    ({!kind}, {!severity}), composable {{!sinks} sinks} (pretty-printing,
    JSONL, filtering), a lossless JSON round-trip ({!to_json} /
    {!of_json}) and a bounded-ring {!recorder} that counts what it had to
    drop instead of losing it silently. *)

type event =
  | Poll_started of { poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int; inner_candidates : int }
  | Solicitation_sent of {
      poller : Ids.Identity.t;
      voter : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      attempt : int;
    }
  | Invitation_dropped of {
      voter : Ids.Identity.t;
      claimed : Ids.Identity.t;
      au : Ids.Au_id.t;
      reason : Admission.drop_reason;
    }
  | Invitation_refused of { voter : Ids.Identity.t; poller : Ids.Identity.t; au : Ids.Au_id.t }
      (** admitted but refused: schedule or adaptive-acceptance pushback *)
  | Invitation_accepted of { voter : Ids.Identity.t; poller : Ids.Identity.t; au : Ids.Au_id.t }
  | Vote_sent of { voter : Ids.Identity.t; poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int }
  | Evaluation_started of { poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int; votes : int }
  | Repair_applied of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      block : int;
      version : int;
      clean : bool;  (** replica fully clean after this repair *)
    }
  | Poll_concluded of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      outcome : Metrics.poll_outcome;
    }
  | Fault_dropped of { src : Ids.Identity.t; dst : Ids.Identity.t }
      (** injected message loss (or a copy lost to a crashed endpoint) *)
  | Fault_duplicated of { src : Ids.Identity.t; dst : Ids.Identity.t }
  | Fault_delayed of { src : Ids.Identity.t; dst : Ids.Identity.t; extra : float }
  | Node_crashed of { node : Ids.Identity.t }  (** churn took the node down *)
  | Node_restarted of { node : Ids.Identity.t }

type t

val create : unit -> t

(** [subscribe t f] adds an observer called synchronously on every event
    with the current simulated time. *)
val subscribe : t -> (time:float -> event -> unit) -> unit

(** [emit t ~now event] notifies subscribers; free when there are none.
    The [event] is a thunk so construction is also skipped unobserved. *)
val emit : t -> now:float -> (unit -> event) -> unit

val pp_event : Format.formatter -> event -> unit

(** {2 Taxonomy} *)

(** Event severity, ordered [Debug < Info < Warn]. [Debug] is the
    per-message chatter of healthy polls; [Info] marks poll lifecycle
    milestones, admission drops and repairs; [Warn] marks outcomes that
    indicate trouble (inquorate or alarmed polls). *)
type severity = Debug | Info | Warn

val severity : event -> severity
val severity_to_string : severity -> string
val severity_of_string : string -> severity option

(** [kind e] is the snake_case taxonomy name of the constructor, e.g.
    ["poll_started"]. *)
val kind : event -> string

(** All kind names, in declaration order. *)
val all_kinds : string list

(** [involves e id] is [true] when [id] appears in any role of [e]
    (poller, voter or claimed identity). *)
val involves : event -> Ids.Identity.t -> bool

(** [au_of e] is the archival unit the event concerns; [None] for fault
    and churn events, which are not tied to any AU. *)
val au_of : event -> Ids.Au_id.t option

(** {2:sinks Sinks} *)

(** A sink is just an observer; every sink can be passed to
    {!subscribe}. *)
type sink = time:float -> event -> unit

(** [pretty_sink ?min_severity ppf] renders events human-readably, one
    per line: [\[time\] \[severity\] description]. *)
val pretty_sink : ?min_severity:severity -> Format.formatter -> sink

(** [jsonl_sink ?min_severity oc] writes one JSON object per event (the
    {!to_json} encoding) per line. The channel is flushed per line so a
    crashed run keeps its trace. *)
val jsonl_sink : ?min_severity:severity -> out_channel -> sink

(** [filter_sink ?min_severity ?peer ?au ?kinds inner] forwards only
    matching events: severity at least [min_severity], involving [peer],
    concerning [au], with {!kind} listed in [kinds]. Omitted criteria
    admit everything. *)
val filter_sink :
  ?min_severity:severity ->
  ?peer:Ids.Identity.t ->
  ?au:Ids.Au_id.t ->
  ?kinds:string list ->
  sink ->
  sink

(** {2 JSON round-trip} *)

(** [to_json ~time e] is a flat object: ["t"] (seconds), ["severity"],
    ["kind"], then the constructor's fields. *)
val to_json : time:float -> event -> Obs.Json.t

(** [of_json j] inverts {!to_json}. *)
val of_json : Obs.Json.t -> (float * event, string) result

(** {2 Recording} *)

type record = {
  events : (float * event) list;  (** oldest first; at most [capacity] *)
  dropped : int;  (** events evicted from the ring because it was full *)
}

(** [recorder ?capacity t] subscribes a bounded ring recorder and returns
    a function producing what is currently retained. Once more than
    [capacity] (default 65536) events arrive, the oldest are evicted and
    counted in [dropped] — the tail of a run is usually the interesting
    part, and nothing disappears without a trace. *)
val recorder : ?capacity:int -> t -> unit -> record
