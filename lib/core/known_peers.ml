type entry = { mutable grade : Grade.t; mutable updated : float }

(* [ids.(0 .. n-1)] mirrors the hashtable's key set, ascending. Keeping
   it sorted incrementally (binary-search insert on first encounter,
   shift-out on punish) makes [entries] and [good_ids] linear scans in
   id order instead of a fold-and-sort per call. *)
type t = {
  decay_period : float;
  entries : (Ids.Identity.t, entry) Hashtbl.t;
  mutable ids : Ids.Identity.t array;
  mutable n : int;
}

let create ~decay_period =
  if decay_period <= 0. then invalid_arg "Known_peers.create: decay period";
  { decay_period; entries = Hashtbl.create 32; ids = Array.make 16 0; n = 0 }

(* Smallest index whose id is >= [id] (= [t.n] when all are smaller). *)
let lower_bound t id =
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.ids.(mid) < id then lo := mid + 1 else hi := mid
  done;
  !lo

let insert_id t id =
  let i = lower_bound t id in
  if not (i < t.n && t.ids.(i) = id) then begin
    if t.n = Array.length t.ids then begin
      let ids = Array.make (2 * t.n) 0 in
      Array.blit t.ids 0 ids 0 t.n;
      t.ids <- ids
    end;
    Array.blit t.ids i t.ids (i + 1) (t.n - i);
    t.ids.(i) <- id;
    t.n <- t.n + 1
  end

let remove_id t id =
  let i = lower_bound t id in
  if i < t.n && t.ids.(i) = id then begin
    Array.blit t.ids (i + 1) t.ids i (t.n - i - 1);
    t.n <- t.n - 1
  end

(* Any grade reaches the absorbing Debt state in at most two decay steps,
   so steps beyond this bound are equivalent; clamping keeps the
   [int_of_float] away from its unspecified huge-float behaviour when an
   entry has been untouched for a very long (or infinite) gap. *)
let max_decay_steps = 8

let decay_steps t entry ~now =
  if now <= entry.updated then 0
  else begin
    let raw = (now -. entry.updated) /. t.decay_period in
    if raw >= float_of_int max_decay_steps then max_decay_steps
    else int_of_float raw
  end

let effective t entry ~now = Grade.decayed entry.grade ~steps:(decay_steps t entry ~now)

let grade t ~now identity =
  match Hashtbl.find_opt t.entries identity with
  | None -> None
  | Some entry -> Some (effective t entry ~now)

let update t ~now identity f ~if_unknown =
  match Hashtbl.find_opt t.entries identity with
  | None ->
    Hashtbl.replace t.entries identity { grade = if_unknown; updated = now };
    insert_id t identity
  | Some entry ->
    entry.grade <- f (effective t entry ~now);
    entry.updated <- now

let raise_grade t ~now identity =
  update t ~now identity Grade.raise_grade ~if_unknown:Grade.Even

let lower t ~now identity = update t ~now identity Grade.lower ~if_unknown:Grade.Debt

let punish t ~now:_ identity =
  Hashtbl.remove t.entries identity;
  remove_id t identity

let set t ~now identity grade =
  Hashtbl.replace t.entries identity { grade; updated = now };
  insert_id t identity

let known t identity = Hashtbl.mem t.entries identity

let entries t ~now =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    let id = t.ids.(i) in
    let entry = Hashtbl.find t.entries id in
    acc := (id, effective t entry ~now) :: !acc
  done;
  !acc

let good_ids t ~now ~excluding =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    let id = t.ids.(i) in
    if not (Ids.Identity.equal id excluding) then begin
      match effective t (Hashtbl.find t.entries id) ~now with
      | Grade.Debt -> ()
      | Grade.Even | Grade.Credit -> acc := id :: !acc
    end
  done;
  !acc
