type entry = { mutable grade : Grade.t; mutable updated : float }
type t = { decay_period : float; entries : (Ids.Identity.t, entry) Hashtbl.t }

let create ~decay_period =
  if decay_period <= 0. then invalid_arg "Known_peers.create: decay period";
  { decay_period; entries = Hashtbl.create 32 }

(* Any grade reaches the absorbing Debt state in at most two decay steps,
   so steps beyond this bound are equivalent; clamping keeps the
   [int_of_float] away from its unspecified huge-float behaviour when an
   entry has been untouched for a very long (or infinite) gap. *)
let max_decay_steps = 8

let decay_steps t entry ~now =
  if now <= entry.updated then 0
  else begin
    let raw = (now -. entry.updated) /. t.decay_period in
    if raw >= float_of_int max_decay_steps then max_decay_steps
    else int_of_float raw
  end

let effective t entry ~now = Grade.decayed entry.grade ~steps:(decay_steps t entry ~now)

let grade t ~now identity =
  match Hashtbl.find_opt t.entries identity with
  | None -> None
  | Some entry -> Some (effective t entry ~now)

let update t ~now identity f ~if_unknown =
  match Hashtbl.find_opt t.entries identity with
  | None -> Hashtbl.replace t.entries identity { grade = if_unknown; updated = now }
  | Some entry ->
    entry.grade <- f (effective t entry ~now);
    entry.updated <- now

let raise_grade t ~now identity =
  update t ~now identity Grade.raise_grade ~if_unknown:Grade.Even

let lower t ~now identity = update t ~now identity Grade.lower ~if_unknown:Grade.Debt

let punish t ~now:_ identity = Hashtbl.remove t.entries identity

let set t ~now identity grade =
  Hashtbl.replace t.entries identity { grade; updated = now }

let known t identity = Hashtbl.mem t.entries identity

let entries t ~now =
  Hashtbl.fold (fun id entry acc -> (id, effective t entry ~now) :: acc) t.entries []
  |> List.sort compare
