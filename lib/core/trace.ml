module Json = Obs.Json

(* -- Effort taxonomy ---------------------------------------------------- *)

type effort_role = Loyal | Adversary

let effort_role_to_string = function Loyal -> "loyal" | Adversary -> "adversary"

let effort_role_of_string = function
  | "loyal" -> Some Loyal
  | "adversary" -> Some Adversary
  | _ -> None

type effort_phase = Admission | Solicitation | Voting | Evaluation | Repair

let effort_phase_to_string = function
  | Admission -> "admission"
  | Solicitation -> "solicitation"
  | Voting -> "voting"
  | Evaluation -> "evaluation"
  | Repair -> "repair"

let effort_phase_of_string = function
  | "admission" -> Some Admission
  | "solicitation" -> Some Solicitation
  | "voting" -> Some Voting
  | "evaluation" -> Some Evaluation
  | "repair" -> Some Repair
  | _ -> None

let all_effort_phases = [ Admission; Solicitation; Voting; Evaluation; Repair ]

(* -- Admission paths ---------------------------------------------------- *)

type admission_path =
  | Admitted_introduced
  | Admitted_unknown
  | Admitted_known of Grade.t

let admission_path_of_decision = function
  | `Introduced -> Admitted_introduced
  | `Unknown -> Admitted_unknown
  | `Known g -> Admitted_known g

let admission_path_to_string = function
  | Admitted_introduced -> "introduced"
  | Admitted_unknown -> "unknown"
  | Admitted_known Grade.Debt -> "known_debt"
  | Admitted_known Grade.Even -> "known_even"
  | Admitted_known Grade.Credit -> "known_credit"

let admission_path_of_string = function
  | "introduced" -> Some Admitted_introduced
  | "unknown" -> Some Admitted_unknown
  | "known_debt" -> Some (Admitted_known Grade.Debt)
  | "known_even" -> Some (Admitted_known Grade.Even)
  | "known_credit" -> Some (Admitted_known Grade.Credit)
  | _ -> None

(* -- Reject reasons ------------------------------------------------------ *)

type reject_reason =
  | Bad_au
  | Not_held
  | Unknown_poll
  | Uninvited
  | Wrong_state
  | Wrong_phase
  | Unknown_session
  | Stale_closed
  | Bad_block

let reject_reason_to_string = function
  | Bad_au -> "bad_au"
  | Not_held -> "not_held"
  | Unknown_poll -> "unknown_poll"
  | Uninvited -> "uninvited"
  | Wrong_state -> "wrong_state"
  | Wrong_phase -> "wrong_phase"
  | Unknown_session -> "unknown_session"
  | Stale_closed -> "stale_closed"
  | Bad_block -> "bad_block"

let reject_reason_of_string = function
  | "bad_au" -> Some Bad_au
  | "not_held" -> Some Not_held
  | "unknown_poll" -> Some Unknown_poll
  | "uninvited" -> Some Uninvited
  | "wrong_state" -> Some Wrong_state
  | "wrong_phase" -> Some Wrong_phase
  | "unknown_session" -> Some Unknown_session
  | "stale_closed" -> Some Stale_closed
  | "bad_block" -> Some Bad_block
  | _ -> None

let all_reject_reasons =
  [
    Bad_au;
    Not_held;
    Unknown_poll;
    Uninvited;
    Wrong_state;
    Wrong_phase;
    Unknown_session;
    Stale_closed;
    Bad_block;
  ]

type event =
  | Poll_started of { poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int; inner_candidates : int }
  | Solicitation_sent of {
      poller : Ids.Identity.t;
      voter : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      attempt : int;
    }
  | Invitation_dropped of {
      voter : Ids.Identity.t;
      claimed : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      reason : Admission.drop_reason;
    }
  | Invitation_admitted of {
      voter : Ids.Identity.t;
      claimed : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int option;  (** [None] for unsolicited (garbage) invitations *)
      path : admission_path;
    }
  | Invitation_refused of {
      voter : Ids.Identity.t;
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
    }
  | Invitation_accepted of {
      voter : Ids.Identity.t;
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
    }
  | Vote_sent of { voter : Ids.Identity.t; poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int }
  | Poll_sampled of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      invited : Ids.Identity.t list;
      reference : Ids.Identity.t list;
    }
  | Evaluation_started of { poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int; votes : int }
  | Repair_applied of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      block : int;
      version : int;
      clean : bool;
    }
  | Poll_concluded of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      outcome : Metrics.poll_outcome;
    }
  | Effort_charged of {
      peer : Ids.Identity.t;
      role : effort_role;
      phase : effort_phase;
      poller : Ids.Identity.t option;
      au : Ids.Au_id.t option;
      poll_id : int option;
      seconds : float;
    }
  | Effort_received of {
      peer : Ids.Identity.t;
      from_ : Ids.Identity.t;
      phase : effort_phase;
      au : Ids.Au_id.t;
      poll_id : int;
      seconds : float;
    }
  | Message_rejected of {
      peer : Ids.Identity.t;
      from_ : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int option;
      msg_kind : string;
      reason : reject_reason;
    }
  | Fault_dropped of { src : Ids.Identity.t; dst : Ids.Identity.t }
  | Fault_duplicated of { src : Ids.Identity.t; dst : Ids.Identity.t }
  | Fault_delayed of { src : Ids.Identity.t; dst : Ids.Identity.t; extra : float }
  | Partition_dropped of { src : Ids.Identity.t; dst : Ids.Identity.t }
  | Fault_corrupted of { src : Ids.Identity.t; dst : Ids.Identity.t }
  | Fault_replayed of { src : Ids.Identity.t; dst : Ids.Identity.t; extra : float }
  | Fault_stale of { src : Ids.Identity.t; dst : Ids.Identity.t; extra : float }
  | Fault_stray of { src : Ids.Identity.t; dst : Ids.Identity.t }
  | Node_crashed of { node : Ids.Identity.t }
  | Node_restarted of { node : Ids.Identity.t }
  | Invariant_violated of {
      invariant : string;
      peer : Ids.Identity.t option;
      au : Ids.Au_id.t option;
      poll_id : int option;
      detail : string;
    }

(* Severity is declared ahead of the bus so subscriptions can carry an
   interest level and [emit] can skip event construction outright. *)
type severity = Debug | Info | Warn

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2

type t = {
  mutable subscribers : (time:float -> event -> unit) list;
  (* Minimum interest across subscribers — only meaningful when the
     subscriber list is non-empty. *)
  mutable min_interest : severity;
}

let create () = { subscribers = []; min_interest = Warn }

let subscribe ?(interest = Debug) t f =
  (match t.subscribers with
  | [] -> t.min_interest <- interest
  | _ ->
    if severity_rank interest < severity_rank t.min_interest then
      t.min_interest <- interest);
  t.subscribers <- f :: t.subscribers

(* [bound] is the highest severity the event under construction could
   have — declared at the call site, so when every subscriber asked for
   something stricter the thunk is never run and the emit allocates
   nothing. The default [Warn] (the top severity) disables skipping,
   which is always sound. *)
let emit ?(bound = Warn) t ~now thunk =
  match t.subscribers with
  | [] -> ()
  | subscribers ->
    if severity_rank bound >= severity_rank t.min_interest then begin
      let event = thunk () in
      List.iter (fun f -> f ~time:now event) subscribers
    end

let pp_correlation ppf (poller, au, poll_id) =
  (match poll_id with
  | Some id -> Format.fprintf ppf " poll %d" id
  | None -> ());
  (match poller with
  | Some p -> Format.fprintf ppf " by %a" Ids.Identity.pp p
  | None -> ());
  match au with Some a -> Format.fprintf ppf " on %a" Ids.Au_id.pp a | None -> ()

let pp_event ppf = function
  | Poll_started { poller; au; poll_id; inner_candidates } ->
    Format.fprintf ppf "poll %d started by %a on %a (%d inner candidates)" poll_id
      Ids.Identity.pp poller Ids.Au_id.pp au inner_candidates
  | Solicitation_sent { poller; voter; au; poll_id; attempt } ->
    Format.fprintf ppf "poll %d: %a solicits %a on %a (attempt %d)" poll_id
      Ids.Identity.pp poller Ids.Identity.pp voter Ids.Au_id.pp au attempt
  | Invitation_dropped { voter; claimed; au; poll_id; reason } ->
    let reason =
      match reason with
      | Admission.Refractory -> "refractory"
      | Admission.Random_drop -> "random drop"
      | Admission.Known_rate_limited -> "per-peer rate limit"
    in
    Format.fprintf ppf "poll %d: %a drops invitation claimed by %a on %a (%s)" poll_id
      Ids.Identity.pp voter Ids.Identity.pp claimed Ids.Au_id.pp au reason
  | Invitation_admitted { voter; claimed; au; poll_id; path } ->
    Format.fprintf ppf "%s: %a admits invitation claimed by %a on %a (%s)"
      (match poll_id with Some id -> Printf.sprintf "poll %d" id | None -> "garbage")
      Ids.Identity.pp voter Ids.Identity.pp claimed Ids.Au_id.pp au
      (admission_path_to_string path)
  | Invitation_refused { voter; poller; au; poll_id } ->
    Format.fprintf ppf "poll %d: %a refuses %a on %a (busy)" poll_id Ids.Identity.pp
      voter Ids.Identity.pp poller Ids.Au_id.pp au
  | Invitation_accepted { voter; poller; au; poll_id } ->
    Format.fprintf ppf "poll %d: %a accepts %a on %a" poll_id Ids.Identity.pp voter
      Ids.Identity.pp poller Ids.Au_id.pp au
  | Vote_sent { voter; poller; au; poll_id } ->
    Format.fprintf ppf "poll %d: %a votes for %a on %a" poll_id Ids.Identity.pp voter
      Ids.Identity.pp poller Ids.Au_id.pp au
  | Poll_sampled { poller; au; poll_id; invited; reference } ->
    Format.fprintf ppf "poll %d: %a samples %d of %d reference peers on %a" poll_id
      Ids.Identity.pp poller (List.length invited) (List.length reference) Ids.Au_id.pp
      au
  | Evaluation_started { poller; au; poll_id; votes } ->
    Format.fprintf ppf "poll %d: %a evaluates %d votes on %a" poll_id Ids.Identity.pp
      poller votes Ids.Au_id.pp au
  | Repair_applied { poller; au; poll_id; block; version; clean } ->
    Format.fprintf ppf "poll %d: %a repairs %a block %d to version %d%s" poll_id
      Ids.Identity.pp poller Ids.Au_id.pp au block version
      (if clean then " (replica clean)" else "")
  | Poll_concluded { poller; au; poll_id; outcome } ->
    let outcome =
      match outcome with
      | Metrics.Success -> "success"
      | Metrics.Inquorate -> "inquorate"
      | Metrics.Alarmed -> "ALARM"
    in
    Format.fprintf ppf "poll %d: %a concludes on %a: %s" poll_id Ids.Identity.pp poller
      Ids.Au_id.pp au outcome
  | Effort_charged { peer; role; phase; poller; au; poll_id; seconds } ->
    Format.fprintf ppf "effort: %a (%s) spends %a on %s%a" Ids.Identity.pp peer
      (effort_role_to_string role) Repro_prelude.Duration.pp seconds
      (effort_phase_to_string phase) pp_correlation (poller, au, poll_id)
  | Effort_received { peer; from_; phase; au; poll_id; seconds } ->
    Format.fprintf ppf "effort: %a proves %a of %s effort to %a%a" Ids.Identity.pp from_
      Repro_prelude.Duration.pp seconds (effort_phase_to_string phase) Ids.Identity.pp
      peer pp_correlation (None, Some au, Some poll_id)
  | Message_rejected { peer; from_; au; poll_id; msg_kind; reason } ->
    Format.fprintf ppf "%a rejects %s from %a (%s)%a" Ids.Identity.pp peer msg_kind
      Ids.Identity.pp from_
      (reject_reason_to_string reason)
      pp_correlation (None, Some au, poll_id)
  | Fault_dropped { src; dst } ->
    Format.fprintf ppf "fault: message %a -> %a dropped" Ids.Identity.pp src
      Ids.Identity.pp dst
  | Fault_duplicated { src; dst } ->
    Format.fprintf ppf "fault: message %a -> %a duplicated" Ids.Identity.pp src
      Ids.Identity.pp dst
  | Fault_delayed { src; dst; extra } ->
    Format.fprintf ppf "fault: message %a -> %a delayed by %a" Ids.Identity.pp src
      Ids.Identity.pp dst Repro_prelude.Duration.pp extra
  | Partition_dropped { src; dst } ->
    Format.fprintf ppf "partition: message %a -> %a blocked" Ids.Identity.pp src
      Ids.Identity.pp dst
  | Fault_corrupted { src; dst } ->
    Format.fprintf ppf "fault: message %a -> %a corrupted" Ids.Identity.pp src
      Ids.Identity.pp dst
  | Fault_replayed { src; dst; extra } ->
    Format.fprintf ppf "fault: message %a -> %a replayed after %a" Ids.Identity.pp src
      Ids.Identity.pp dst Repro_prelude.Duration.pp extra
  | Fault_stale { src; dst; extra } ->
    Format.fprintf ppf "fault: message %a -> %a replayed stale after %a" Ids.Identity.pp
      src Ids.Identity.pp dst Repro_prelude.Duration.pp extra
  | Fault_stray { src; dst } ->
    Format.fprintf ppf "fault: stray message forged %a -> %a" Ids.Identity.pp src
      Ids.Identity.pp dst
  | Node_crashed { node } -> Format.fprintf ppf "fault: %a crashed" Ids.Identity.pp node
  | Node_restarted { node } ->
    Format.fprintf ppf "fault: %a restarted" Ids.Identity.pp node
  | Invariant_violated { invariant; peer; au; poll_id; detail } ->
    Format.fprintf ppf "INVARIANT %s violated%a: %s" invariant pp_correlation
      (peer, au, poll_id) detail

(* -- Taxonomy ---------------------------------------------------------- *)

let severity = function
  | Solicitation_sent _ | Invitation_admitted _ | Invitation_refused _
  | Invitation_accepted _ | Vote_sent _ | Poll_sampled _ | Evaluation_started _
  | Effort_charged _ | Effort_received _ | Message_rejected _ | Fault_dropped _
  | Fault_duplicated _ | Fault_delayed _ | Partition_dropped _ | Fault_corrupted _
  | Fault_replayed _ | Fault_stale _ | Fault_stray _ ->
    Debug
  | Poll_started _ | Invitation_dropped _ | Repair_applied _
  | Poll_concluded { outcome = Metrics.Success; _ }
  | Node_crashed _ | Node_restarted _ ->
    Info
  | Poll_concluded { outcome = Metrics.Inquorate | Metrics.Alarmed; _ }
  | Invariant_violated _ ->
    Warn

let severity_to_string = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let severity_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | _ -> None

let kind = function
  | Poll_started _ -> "poll_started"
  | Solicitation_sent _ -> "solicitation_sent"
  | Invitation_dropped _ -> "invitation_dropped"
  | Invitation_admitted _ -> "invitation_admitted"
  | Invitation_refused _ -> "invitation_refused"
  | Invitation_accepted _ -> "invitation_accepted"
  | Vote_sent _ -> "vote_sent"
  | Poll_sampled _ -> "poll_sampled"
  | Evaluation_started _ -> "evaluation_started"
  | Repair_applied _ -> "repair_applied"
  | Poll_concluded _ -> "poll_concluded"
  | Effort_charged _ -> "effort_charged"
  | Effort_received _ -> "effort_received"
  | Message_rejected _ -> "message_rejected"
  | Fault_dropped _ -> "fault_dropped"
  | Fault_duplicated _ -> "fault_duplicated"
  | Fault_delayed _ -> "fault_delayed"
  | Partition_dropped _ -> "partition_dropped"
  | Fault_corrupted _ -> "fault_corrupted"
  | Fault_replayed _ -> "fault_replayed"
  | Fault_stale _ -> "fault_stale"
  | Fault_stray _ -> "fault_stray"
  | Node_crashed _ -> "node_crashed"
  | Node_restarted _ -> "node_restarted"
  | Invariant_violated _ -> "invariant_violated"

let all_kinds =
  [
    "poll_started";
    "solicitation_sent";
    "invitation_dropped";
    "invitation_admitted";
    "invitation_refused";
    "invitation_accepted";
    "vote_sent";
    "poll_sampled";
    "evaluation_started";
    "repair_applied";
    "poll_concluded";
    "effort_charged";
    "effort_received";
    "message_rejected";
    "fault_dropped";
    "fault_duplicated";
    "fault_delayed";
    "partition_dropped";
    "fault_corrupted";
    "fault_replayed";
    "fault_stale";
    "fault_stray";
    "node_crashed";
    "node_restarted";
    "invariant_violated";
  ]

let involves event id =
  let eq = Ids.Identity.equal id in
  match event with
  | Poll_started { poller; _ } | Evaluation_started { poller; _ } -> eq poller
  | Repair_applied { poller; _ } | Poll_concluded { poller; _ } -> eq poller
  | Poll_sampled { poller; invited; _ } -> eq poller || List.exists eq invited
  | Solicitation_sent { poller; voter; _ } -> eq poller || eq voter
  | Invitation_dropped { voter; claimed; _ }
  | Invitation_admitted { voter; claimed; _ } ->
    eq voter || eq claimed
  | Invitation_refused { voter; poller; _ }
  | Invitation_accepted { voter; poller; _ }
  | Vote_sent { voter; poller; _ } ->
    eq voter || eq poller
  | Effort_charged { peer; poller; _ } ->
    eq peer || (match poller with Some p -> eq p | None -> false)
  | Effort_received { peer; from_; _ } | Message_rejected { peer; from_; _ } ->
    eq peer || eq from_
  | Fault_dropped { src; dst } | Fault_duplicated { src; dst }
  | Fault_delayed { src; dst; _ }
  | Partition_dropped { src; dst }
  | Fault_corrupted { src; dst }
  | Fault_replayed { src; dst; _ }
  | Fault_stale { src; dst; _ }
  | Fault_stray { src; dst } ->
    eq src || eq dst
  | Node_crashed { node } | Node_restarted { node } -> eq node
  | Invariant_violated { peer; _ } -> (
    match peer with Some p -> eq p | None -> false)

let au_of = function
  | Poll_started { au; _ }
  | Solicitation_sent { au; _ }
  | Invitation_dropped { au; _ }
  | Invitation_admitted { au; _ }
  | Invitation_refused { au; _ }
  | Invitation_accepted { au; _ }
  | Vote_sent { au; _ }
  | Poll_sampled { au; _ }
  | Evaluation_started { au; _ }
  | Repair_applied { au; _ }
  | Poll_concluded { au; _ }
  | Effort_received { au; _ }
  | Message_rejected { au; _ } ->
    Some au
  | Effort_charged { au; _ } | Invariant_violated { au; _ } -> au
  | Fault_dropped _ | Fault_duplicated _ | Fault_delayed _ | Partition_dropped _
  | Fault_corrupted _ | Fault_replayed _ | Fault_stale _ | Fault_stray _
  | Node_crashed _ | Node_restarted _ ->
    None

(* -- JSON round-trip --------------------------------------------------- *)

let drop_reason_to_string = function
  | Admission.Refractory -> "refractory"
  | Admission.Random_drop -> "random_drop"
  | Admission.Known_rate_limited -> "known_rate_limited"

let drop_reason_of_string = function
  | "refractory" -> Some Admission.Refractory
  | "random_drop" -> Some Admission.Random_drop
  | "known_rate_limited" -> Some Admission.Known_rate_limited
  | _ -> None

let outcome_to_string = function
  | Metrics.Success -> "success"
  | Metrics.Inquorate -> "inquorate"
  | Metrics.Alarmed -> "alarmed"

let outcome_of_string = function
  | "success" -> Some Metrics.Success
  | "inquorate" -> Some Metrics.Inquorate
  | "alarmed" -> Some Metrics.Alarmed
  | _ -> None

let to_json ~time event =
  let opt name = function None -> [] | Some v -> [ (name, Json.Int v) ] in
  let fields =
    match event with
    | Poll_started { poller; au; poll_id; inner_candidates } ->
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("inner_candidates", Json.Int inner_candidates);
      ]
    | Solicitation_sent { poller; voter; au; poll_id; attempt } ->
      [
        ("poller", Json.Int poller);
        ("voter", Json.Int voter);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("attempt", Json.Int attempt);
      ]
    | Invitation_dropped { voter; claimed; au; poll_id; reason } ->
      [
        ("voter", Json.Int voter);
        ("claimed", Json.Int claimed);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("reason", Json.String (drop_reason_to_string reason));
      ]
    | Invitation_admitted { voter; claimed; au; poll_id; path } ->
      [ ("voter", Json.Int voter); ("claimed", Json.Int claimed); ("au", Json.Int au) ]
      @ opt "poll_id" poll_id
      @ [ ("path", Json.String (admission_path_to_string path)) ]
    | Invitation_refused { voter; poller; au; poll_id } ->
      [
        ("voter", Json.Int voter);
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
      ]
    | Invitation_accepted { voter; poller; au; poll_id } ->
      [
        ("voter", Json.Int voter);
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
      ]
    | Vote_sent { voter; poller; au; poll_id } ->
      [
        ("voter", Json.Int voter);
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
      ]
    | Poll_sampled { poller; au; poll_id; invited; reference } ->
      let ids xs = Json.List (List.map (fun i -> Json.Int i) xs) in
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("invited", ids invited);
        ("reference", ids reference);
      ]
    | Evaluation_started { poller; au; poll_id; votes } ->
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("votes", Json.Int votes);
      ]
    | Repair_applied { poller; au; poll_id; block; version; clean } ->
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("block", Json.Int block);
        ("version", Json.Int version);
        ("clean", Json.Bool clean);
      ]
    | Poll_concluded { poller; au; poll_id; outcome } ->
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("outcome", Json.String (outcome_to_string outcome));
      ]
    | Effort_charged { peer; role; phase; poller; au; poll_id; seconds } ->
      [
        ("peer", Json.Int peer);
        ("role", Json.String (effort_role_to_string role));
        ("phase", Json.String (effort_phase_to_string phase));
      ]
      @ opt "poller" poller @ opt "au" au @ opt "poll_id" poll_id
      @ [ ("seconds", Json.Float seconds) ]
    | Effort_received { peer; from_; phase; au; poll_id; seconds } ->
      [
        ("peer", Json.Int peer);
        ("from", Json.Int from_);
        ("phase", Json.String (effort_phase_to_string phase));
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("seconds", Json.Float seconds);
      ]
    | Message_rejected { peer; from_; au; poll_id; msg_kind; reason } ->
      [ ("peer", Json.Int peer); ("from", Json.Int from_); ("au", Json.Int au) ]
      @ opt "poll_id" poll_id
      @ [
          ("msg_kind", Json.String msg_kind);
          ("reason", Json.String (reject_reason_to_string reason));
        ]
    | Fault_dropped { src; dst }
    | Fault_duplicated { src; dst }
    | Partition_dropped { src; dst }
    | Fault_corrupted { src; dst }
    | Fault_stray { src; dst } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst) ]
    | Fault_delayed { src; dst; extra }
    | Fault_replayed { src; dst; extra }
    | Fault_stale { src; dst; extra } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst); ("extra", Json.Float extra) ]
    | Node_crashed { node } | Node_restarted { node } -> [ ("node", Json.Int node) ]
    | Invariant_violated { invariant; peer; au; poll_id; detail } ->
      [ ("invariant", Json.String invariant) ]
      @ opt "peer" peer @ opt "au" au @ opt "poll_id" poll_id
      @ [ ("detail", Json.String detail) ]
  in
  Json.Assoc
    ([
       ("t", Json.Float time);
       ("severity", Json.String (severity_to_string (severity event)));
       ("kind", Json.String (kind event));
     ]
    @ fields)

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name decode =
    match Option.bind (Json.member name json) decode with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or malformed field %S" name)
  in
  let int name = field name Json.to_int in
  let bool name = field name Json.to_bool in
  (* Optional correlation fields are simply omitted when unknown; [Null]
     is accepted too so hand-written traces can be explicit. *)
  let opt_int name =
    match Json.member name json with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_int v with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "malformed optional field %S" name))
  in
  let int_list name =
    field name (fun v ->
        match v with
        | Json.List items ->
          let ints = List.filter_map Json.to_int items in
          if List.length ints = List.length items then Some ints else None
        | _ -> None)
  in
  let str name = field name Json.string_value in
  let* time = field "t" Json.to_float in
  let* kind = field "kind" Json.string_value in
  let* event =
    match kind with
    | "poll_started" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* inner_candidates = int "inner_candidates" in
      Ok (Poll_started { poller; au; poll_id; inner_candidates })
    | "solicitation_sent" ->
      let* poller = int "poller" in
      let* voter = int "voter" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* attempt = int "attempt" in
      Ok (Solicitation_sent { poller; voter; au; poll_id; attempt })
    | "invitation_dropped" ->
      let* voter = int "voter" in
      let* claimed = int "claimed" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* reason =
        field "reason" (fun v -> Option.bind (Json.string_value v) drop_reason_of_string)
      in
      Ok (Invitation_dropped { voter; claimed; au; poll_id; reason })
    | "invitation_admitted" ->
      let* voter = int "voter" in
      let* claimed = int "claimed" in
      let* au = int "au" in
      let* poll_id = opt_int "poll_id" in
      let* path =
        field "path" (fun v -> Option.bind (Json.string_value v) admission_path_of_string)
      in
      Ok (Invitation_admitted { voter; claimed; au; poll_id; path })
    | "invitation_refused" ->
      let* voter = int "voter" in
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      Ok (Invitation_refused { voter; poller; au; poll_id })
    | "invitation_accepted" ->
      let* voter = int "voter" in
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      Ok (Invitation_accepted { voter; poller; au; poll_id })
    | "vote_sent" ->
      let* voter = int "voter" in
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      Ok (Vote_sent { voter; poller; au; poll_id })
    | "poll_sampled" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* invited = int_list "invited" in
      let* reference = int_list "reference" in
      Ok (Poll_sampled { poller; au; poll_id; invited; reference })
    | "evaluation_started" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* votes = int "votes" in
      Ok (Evaluation_started { poller; au; poll_id; votes })
    | "repair_applied" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* block = int "block" in
      let* version = int "version" in
      let* clean = bool "clean" in
      Ok (Repair_applied { poller; au; poll_id; block; version; clean })
    | "poll_concluded" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* outcome =
        field "outcome" (fun v -> Option.bind (Json.string_value v) outcome_of_string)
      in
      Ok (Poll_concluded { poller; au; poll_id; outcome })
    | "effort_charged" ->
      let* peer = int "peer" in
      let* role =
        field "role" (fun v -> Option.bind (Json.string_value v) effort_role_of_string)
      in
      let* phase =
        field "phase" (fun v -> Option.bind (Json.string_value v) effort_phase_of_string)
      in
      let* poller = opt_int "poller" in
      let* au = opt_int "au" in
      let* poll_id = opt_int "poll_id" in
      let* seconds = field "seconds" Json.to_float in
      Ok (Effort_charged { peer; role; phase; poller; au; poll_id; seconds })
    | "effort_received" ->
      let* peer = int "peer" in
      let* from_ = int "from" in
      let* phase =
        field "phase" (fun v -> Option.bind (Json.string_value v) effort_phase_of_string)
      in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* seconds = field "seconds" Json.to_float in
      Ok (Effort_received { peer; from_; phase; au; poll_id; seconds })
    | "message_rejected" ->
      let* peer = int "peer" in
      let* from_ = int "from" in
      let* au = int "au" in
      let* poll_id = opt_int "poll_id" in
      let* msg_kind = str "msg_kind" in
      let* reason =
        field "reason" (fun v -> Option.bind (Json.string_value v) reject_reason_of_string)
      in
      Ok (Message_rejected { peer; from_; au; poll_id; msg_kind; reason })
    | "fault_dropped" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Ok (Fault_dropped { src; dst })
    | "fault_duplicated" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Ok (Fault_duplicated { src; dst })
    | "fault_delayed" ->
      let* src = int "src" in
      let* dst = int "dst" in
      let* extra = field "extra" Json.to_float in
      Ok (Fault_delayed { src; dst; extra })
    | "partition_dropped" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Ok (Partition_dropped { src; dst })
    | "fault_corrupted" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Ok (Fault_corrupted { src; dst })
    | "fault_replayed" ->
      let* src = int "src" in
      let* dst = int "dst" in
      let* extra = field "extra" Json.to_float in
      Ok (Fault_replayed { src; dst; extra })
    | "fault_stale" ->
      let* src = int "src" in
      let* dst = int "dst" in
      let* extra = field "extra" Json.to_float in
      Ok (Fault_stale { src; dst; extra })
    | "fault_stray" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Ok (Fault_stray { src; dst })
    | "node_crashed" ->
      let* node = int "node" in
      Ok (Node_crashed { node })
    | "node_restarted" ->
      let* node = int "node" in
      Ok (Node_restarted { node })
    | "invariant_violated" ->
      let* invariant = str "invariant" in
      let* peer = opt_int "peer" in
      let* au = opt_int "au" in
      let* poll_id = opt_int "poll_id" in
      let* detail = str "detail" in
      Ok (Invariant_violated { invariant; peer; au; poll_id; detail })
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  Ok (time, event)

(* -- Analyzer views ----------------------------------------------------- *)

(* Mirrors [to_json] for the fields the analyzers consume, without
   building any JSON. [Obs.View.of_json (to_json ~time e)] and
   [to_view ~time e] must agree — test_trace_pipeline checks this for
   the whole taxonomy. *)
let to_view ~time event : Obs.View.t =
  let kind = kind event in
  match event with
  | Poll_started { poller; au; poll_id; inner_candidates } ->
    Obs.View.make ~kind ~time ~poller ~au ~poll_id ~inner_candidates ()
  | Solicitation_sent { poller; voter; au; poll_id; attempt = _ } ->
    Obs.View.make ~kind ~time ~poller ~voter ~au ~poll_id ()
  | Invitation_dropped { voter; claimed; au; poll_id; reason = _ } ->
    Obs.View.make ~kind ~time ~voter ~claimed ~au ~poll_id ()
  | Invitation_admitted { voter; claimed; au; poll_id; path = _ } ->
    Obs.View.make ~kind ~time ~voter ~claimed ~au ?poll_id ()
  | Invitation_refused { voter; poller; au; poll_id }
  | Invitation_accepted { voter; poller; au; poll_id }
  | Vote_sent { voter; poller; au; poll_id } ->
    Obs.View.make ~kind ~time ~voter ~poller ~au ~poll_id ()
  | Poll_sampled { poller; au; poll_id; invited = _; reference = _ } ->
    Obs.View.make ~kind ~time ~poller ~au ~poll_id ()
  | Evaluation_started { poller; au; poll_id; votes } ->
    Obs.View.make ~kind ~time ~poller ~au ~poll_id ~votes ()
  | Repair_applied { poller; au; poll_id; block = _; version = _; clean = _ } ->
    Obs.View.make ~kind ~time ~poller ~au ~poll_id ()
  | Poll_concluded { poller; au; poll_id; outcome } ->
    Obs.View.make ~kind ~time ~poller ~au ~poll_id
      ~outcome:(outcome_to_string outcome) ()
  | Effort_charged { peer; role; phase; poller; au; poll_id; seconds } ->
    Obs.View.make ~kind ~time ~peer ~role:(effort_role_to_string role)
      ~phase:(effort_phase_to_string phase) ?poller ?au ?poll_id ~seconds ()
  | Effort_received { peer; from_; phase; au; poll_id; seconds } ->
    Obs.View.make ~kind ~time ~peer ~from_
      ~phase:(effort_phase_to_string phase)
      ~au ~poll_id ~seconds ()
  | Message_rejected { peer; from_; au; poll_id; msg_kind = _; reason = _ } ->
    Obs.View.make ~kind ~time ~peer ~from_ ~au ?poll_id ()
  | Fault_dropped _ | Fault_duplicated _ | Fault_delayed _ | Partition_dropped _
  | Fault_corrupted _ | Fault_replayed _ | Fault_stale _ | Fault_stray _
  | Node_crashed _ | Node_restarted _ ->
    Obs.View.make ~kind ~time ()
  | Invariant_violated { invariant = _; peer; au; poll_id; detail = _ } ->
    Obs.View.make ~kind ~time ?peer ?au ?poll_id ()

(* -- Sinks ------------------------------------------------------------- *)

type sink = time:float -> event -> unit

let severity_at_least min s =
  match (min, s) with
  | Debug, _ -> true
  | Info, (Info | Warn) -> true
  | Warn, Warn -> true
  | _ -> false

let pretty_sink ?(min_severity = Debug) ppf ~time event =
  if severity_at_least min_severity (severity event) then
    Format.fprintf ppf "[%a] [%s] %a@." Repro_prelude.Duration.pp time
      (severity_to_string (severity event))
      pp_event event

(* Direct event-to-bytes serializer producing exactly the bytes of
   [Json.write buf (to_json ~time event)] without building the
   intermediate tree — the hot path under a debug-level file sink.
   Byte parity with [to_json] is guarded by a test in
   test/test_trace_pipeline.ml; enum tokens, kinds and severities are
   known escape-free identifiers and are written raw.
   [write_jsonl_rest] is everything after the rendered time literal, so
   {!buffered_jsonl_sink} can cache that literal across the frequent
   consecutive events sharing a timestamp. [float_lit] renders payload
   floats; the sink passes a memoizing variant (effort charges are
   config constants, so a trace carries only a handful of distinct
   values). *)
(* Keys pre-rendered with separator and quotes so each field prefix is
   one buffer append instead of three. *)
let k_poller = ",\"poller\":"
let k_voter = ",\"voter\":"
let k_au = ",\"au\":"
let k_poll_id = ",\"poll_id\":"
let k_inner_candidates = ",\"inner_candidates\":"
let k_attempt = ",\"attempt\":"
let k_claimed = ",\"claimed\":"
let k_reason = ",\"reason\":"
let k_path = ",\"path\":"
let k_invited = ",\"invited\":"
let k_reference = ",\"reference\":"
let k_votes = ",\"votes\":"
let k_block = ",\"block\":"
let k_version = ",\"version\":"
let k_outcome = ",\"outcome\":"
let k_peer = ",\"peer\":"
let k_role = ",\"role\":"
let k_phase = ",\"phase\":"
let k_from = ",\"from\":"
let k_seconds = ",\"seconds\":"
let k_src = ",\"src\":"
let k_dst = ",\"dst\":"
let k_extra = ",\"extra\":"
let k_node = ",\"node\":"
let k_invariant = ",\"invariant\":"
let k_detail = ",\"detail\":"
let k_msg_kind = ",\"msg_kind\":"

(* Field helpers at top level, taking the buffer as an argument:
   defining them inside [write_jsonl_rest] would allocate one closure
   per helper per event. *)
let int_field buf k i =
  Buffer.add_string buf k;
  Json.write_int buf i

let tok_field buf k s =
  Buffer.add_string buf k;
  Buffer.add_char buf '"';
  Buffer.add_string buf s;
  Buffer.add_char buf '"'

let str_field buf k s =
  Buffer.add_string buf k;
  Json.write buf (Json.String s)

let opt_field buf k = function None -> () | Some i -> int_field buf k i

let rec ids_items buf first = function
  | [] -> ()
  | x :: rest ->
    if not first then Buffer.add_char buf ',';
    Json.write_int buf x;
    ids_items buf false rest

let ids_field buf k xs =
  Buffer.add_string buf k;
  Buffer.add_char buf '[';
  ids_items buf true xs;
  Buffer.add_char buf ']'

let float_field buf float_lit k f =
  Buffer.add_string buf k;
  Buffer.add_string buf (float_lit f)

let write_jsonl_rest ?(float_lit = Json.float_literal) buf event =
  Buffer.add_string buf ",\"severity\":\"";
  Buffer.add_string buf (severity_to_string (severity event));
  Buffer.add_string buf "\",\"kind\":\"";
  Buffer.add_string buf (kind event);
  Buffer.add_char buf '"';
  (match event with
  | Poll_started { poller; au; poll_id; inner_candidates } ->
    int_field buf k_poller poller;
    int_field buf k_au au;
    int_field buf k_poll_id poll_id;
    int_field buf k_inner_candidates inner_candidates
  | Solicitation_sent { poller; voter; au; poll_id; attempt } ->
    int_field buf k_poller poller;
    int_field buf k_voter voter;
    int_field buf k_au au;
    int_field buf k_poll_id poll_id;
    int_field buf k_attempt attempt
  | Invitation_dropped { voter; claimed; au; poll_id; reason } ->
    int_field buf k_voter voter;
    int_field buf k_claimed claimed;
    int_field buf k_au au;
    int_field buf k_poll_id poll_id;
    tok_field buf k_reason (drop_reason_to_string reason)
  | Invitation_admitted { voter; claimed; au; poll_id; path } ->
    int_field buf k_voter voter;
    int_field buf k_claimed claimed;
    int_field buf k_au au;
    opt_field buf k_poll_id poll_id;
    tok_field buf k_path (admission_path_to_string path)
  | Invitation_refused { voter; poller; au; poll_id }
  | Invitation_accepted { voter; poller; au; poll_id }
  | Vote_sent { voter; poller; au; poll_id } ->
    int_field buf k_voter voter;
    int_field buf k_poller poller;
    int_field buf k_au au;
    int_field buf k_poll_id poll_id
  | Poll_sampled { poller; au; poll_id; invited; reference } ->
    int_field buf k_poller poller;
    int_field buf k_au au;
    int_field buf k_poll_id poll_id;
    ids_field buf k_invited invited;
    ids_field buf k_reference reference
  | Evaluation_started { poller; au; poll_id; votes } ->
    int_field buf k_poller poller;
    int_field buf k_au au;
    int_field buf k_poll_id poll_id;
    int_field buf k_votes votes
  | Repair_applied { poller; au; poll_id; block; version; clean } ->
    int_field buf k_poller poller;
    int_field buf k_au au;
    int_field buf k_poll_id poll_id;
    int_field buf k_block block;
    int_field buf k_version version;
    Buffer.add_string buf (if clean then ",\"clean\":true" else ",\"clean\":false")
  | Poll_concluded { poller; au; poll_id; outcome } ->
    int_field buf k_poller poller;
    int_field buf k_au au;
    int_field buf k_poll_id poll_id;
    tok_field buf k_outcome (outcome_to_string outcome)
  | Effort_charged { peer; role; phase; poller; au; poll_id; seconds } ->
    int_field buf k_peer peer;
    tok_field buf k_role (effort_role_to_string role);
    tok_field buf k_phase (effort_phase_to_string phase);
    opt_field buf k_poller poller;
    opt_field buf k_au au;
    opt_field buf k_poll_id poll_id;
    float_field buf float_lit k_seconds seconds
  | Effort_received { peer; from_; phase; au; poll_id; seconds } ->
    int_field buf k_peer peer;
    int_field buf k_from from_;
    tok_field buf k_phase (effort_phase_to_string phase);
    int_field buf k_au au;
    int_field buf k_poll_id poll_id;
    float_field buf float_lit k_seconds seconds
  | Message_rejected { peer; from_; au; poll_id; msg_kind; reason } ->
    int_field buf k_peer peer;
    int_field buf k_from from_;
    int_field buf k_au au;
    opt_field buf k_poll_id poll_id;
    tok_field buf k_msg_kind msg_kind;
    tok_field buf k_reason (reject_reason_to_string reason)
  | Fault_dropped { src; dst }
  | Fault_duplicated { src; dst }
  | Partition_dropped { src; dst }
  | Fault_corrupted { src; dst }
  | Fault_stray { src; dst } ->
    int_field buf k_src src;
    int_field buf k_dst dst
  | Fault_delayed { src; dst; extra }
  | Fault_replayed { src; dst; extra }
  | Fault_stale { src; dst; extra } ->
    int_field buf k_src src;
    int_field buf k_dst dst;
    float_field buf float_lit k_extra extra
  | Node_crashed { node } | Node_restarted { node } -> int_field buf k_node node
  | Invariant_violated { invariant; peer; au; poll_id; detail } ->
    str_field buf k_invariant invariant;
    opt_field buf k_peer peer;
    opt_field buf k_au au;
    opt_field buf k_poll_id poll_id;
    str_field buf k_detail detail);
  Buffer.add_char buf '}'

let write_jsonl buf ~time event =
  Buffer.add_string buf "{\"t\":";
  Buffer.add_string buf (Json.float_literal time);
  write_jsonl_rest buf event

let jsonl_sink ?(min_severity = Debug) oc ~time event =
  if severity_at_least min_severity (severity event) then begin
    output_string oc (Json.to_string (to_json ~time event));
    output_char oc '\n';
    flush oc
  end

let buffered_jsonl_sink ?(min_severity = Debug) sink =
  let scratch = Buffer.create 512 in
  (* Rendering a float is the single most expensive step of a JSONL
     line, and about half of all events share their predecessor's
     timestamp — memoize the last literal. The time lives in a
     one-element float array, not a [float ref]: assigning a float ref
     boxes the value on every store. *)
  let last_time = [| nan |] in
  let last_literal = ref "" in
  let payload_literals : (float, string) Hashtbl.t = Hashtbl.create 32 in
  let float_lit f =
    (* [find] over [find_opt]: the hit path (all but the first sighting
       of each of the handful of distinct payload values) allocates
       nothing. *)
    match Hashtbl.find payload_literals f with
    | s -> s
    | exception Not_found ->
      let s = Json.float_literal f in
      if Hashtbl.length payload_literals < 256 then Hashtbl.add payload_literals f s;
      s
  in
  fun ~time event ->
    if severity_at_least min_severity (severity event) then begin
      Buffer.clear scratch;
      Buffer.add_string scratch "{\"t\":";
      if not (Float.equal time last_time.(0)) then begin
        last_time.(0) <- time;
        last_literal := Json.float_literal time
      end;
      Buffer.add_string scratch !last_literal;
      write_jsonl_rest ~float_lit scratch event;
      Buffer.add_char scratch '\n';
      Obs.Sink.write_buffer sink ~now:time scratch
    end

(* -- Direct binary encoding --------------------------------------------- *)

(* Interned-string handles for every recurring string of the encoding,
   registered once: the binary sink resolves each through an array load
   instead of a hashtable lookup per field. Byte parity with
   [Obs.Btrace.write (to_json ~time event)] is guarded by a test in
   test/test_trace_pipeline.ml. *)

let a_t = Obs.Btrace.atom "t"
let a_severity = Obs.Btrace.atom "severity"
let a_kind = Obs.Btrace.atom "kind"
let a_poller = Obs.Btrace.atom "poller"
let a_au = Obs.Btrace.atom "au"
let a_poll_id = Obs.Btrace.atom "poll_id"
let a_inner_candidates = Obs.Btrace.atom "inner_candidates"
let a_voter = Obs.Btrace.atom "voter"
let a_attempt = Obs.Btrace.atom "attempt"
let a_claimed = Obs.Btrace.atom "claimed"
let a_reason = Obs.Btrace.atom "reason"
let a_path = Obs.Btrace.atom "path"
let a_invited = Obs.Btrace.atom "invited"
let a_reference = Obs.Btrace.atom "reference"
let a_votes = Obs.Btrace.atom "votes"
let a_block = Obs.Btrace.atom "block"
let a_version = Obs.Btrace.atom "version"
let a_clean = Obs.Btrace.atom "clean"
let a_outcome = Obs.Btrace.atom "outcome"
let a_peer = Obs.Btrace.atom "peer"
let a_role = Obs.Btrace.atom "role"
let a_phase = Obs.Btrace.atom "phase"
let a_seconds = Obs.Btrace.atom "seconds"
let a_from = Obs.Btrace.atom "from"
let a_src = Obs.Btrace.atom "src"
let a_extra = Obs.Btrace.atom "extra"
let a_dst = Obs.Btrace.atom "dst"
let a_node = Obs.Btrace.atom "node"
let a_invariant = Obs.Btrace.atom "invariant"
let a_detail = Obs.Btrace.atom "detail"
let a_msg_kind = Obs.Btrace.atom "msg_kind"
let a_sev_debug = Obs.Btrace.atom "debug"
let a_sev_info = Obs.Btrace.atom "info"
let a_sev_warn = Obs.Btrace.atom "warn"

let severity_atom = function
  | Debug -> a_sev_debug
  | Info -> a_sev_info
  | Warn -> a_sev_warn

let a_k_poll_started = Obs.Btrace.atom "poll_started"
let a_k_solicitation_sent = Obs.Btrace.atom "solicitation_sent"
let a_k_invitation_dropped = Obs.Btrace.atom "invitation_dropped"
let a_k_invitation_admitted = Obs.Btrace.atom "invitation_admitted"
let a_k_invitation_refused = Obs.Btrace.atom "invitation_refused"
let a_k_invitation_accepted = Obs.Btrace.atom "invitation_accepted"
let a_k_vote_sent = Obs.Btrace.atom "vote_sent"
let a_k_poll_sampled = Obs.Btrace.atom "poll_sampled"
let a_k_evaluation_started = Obs.Btrace.atom "evaluation_started"
let a_k_repair_applied = Obs.Btrace.atom "repair_applied"
let a_k_poll_concluded = Obs.Btrace.atom "poll_concluded"
let a_k_effort_charged = Obs.Btrace.atom "effort_charged"
let a_k_effort_received = Obs.Btrace.atom "effort_received"
let a_k_message_rejected = Obs.Btrace.atom "message_rejected"
let a_k_fault_dropped = Obs.Btrace.atom "fault_dropped"
let a_k_fault_duplicated = Obs.Btrace.atom "fault_duplicated"
let a_k_fault_delayed = Obs.Btrace.atom "fault_delayed"
let a_k_partition_dropped = Obs.Btrace.atom "partition_dropped"
let a_k_fault_corrupted = Obs.Btrace.atom "fault_corrupted"
let a_k_fault_replayed = Obs.Btrace.atom "fault_replayed"
let a_k_fault_stale = Obs.Btrace.atom "fault_stale"
let a_k_fault_stray = Obs.Btrace.atom "fault_stray"
let a_k_node_crashed = Obs.Btrace.atom "node_crashed"
let a_k_node_restarted = Obs.Btrace.atom "node_restarted"
let a_k_invariant_violated = Obs.Btrace.atom "invariant_violated"

let kind_atom = function
  | Poll_started _ -> a_k_poll_started
  | Solicitation_sent _ -> a_k_solicitation_sent
  | Invitation_dropped _ -> a_k_invitation_dropped
  | Invitation_admitted _ -> a_k_invitation_admitted
  | Invitation_refused _ -> a_k_invitation_refused
  | Invitation_accepted _ -> a_k_invitation_accepted
  | Vote_sent _ -> a_k_vote_sent
  | Poll_sampled _ -> a_k_poll_sampled
  | Evaluation_started _ -> a_k_evaluation_started
  | Repair_applied _ -> a_k_repair_applied
  | Poll_concluded _ -> a_k_poll_concluded
  | Effort_charged _ -> a_k_effort_charged
  | Effort_received _ -> a_k_effort_received
  | Message_rejected _ -> a_k_message_rejected
  | Fault_dropped _ -> a_k_fault_dropped
  | Fault_duplicated _ -> a_k_fault_duplicated
  | Fault_delayed _ -> a_k_fault_delayed
  | Partition_dropped _ -> a_k_partition_dropped
  | Fault_corrupted _ -> a_k_fault_corrupted
  | Fault_replayed _ -> a_k_fault_replayed
  | Fault_stale _ -> a_k_fault_stale
  | Fault_stray _ -> a_k_fault_stray
  | Node_crashed _ -> a_k_node_crashed
  | Node_restarted _ -> a_k_node_restarted
  | Invariant_violated _ -> a_k_invariant_violated

let a_reason_refractory = Obs.Btrace.atom "refractory"
let a_reason_random_drop = Obs.Btrace.atom "random_drop"
let a_reason_known_rate_limited = Obs.Btrace.atom "known_rate_limited"

let reason_atom = function
  | Admission.Refractory -> a_reason_refractory
  | Admission.Random_drop -> a_reason_random_drop
  | Admission.Known_rate_limited -> a_reason_known_rate_limited

let a_reject_bad_au = Obs.Btrace.atom "bad_au"
let a_reject_not_held = Obs.Btrace.atom "not_held"
let a_reject_unknown_poll = Obs.Btrace.atom "unknown_poll"
let a_reject_uninvited = Obs.Btrace.atom "uninvited"
let a_reject_wrong_state = Obs.Btrace.atom "wrong_state"
let a_reject_wrong_phase = Obs.Btrace.atom "wrong_phase"
let a_reject_unknown_session = Obs.Btrace.atom "unknown_session"
let a_reject_stale_closed = Obs.Btrace.atom "stale_closed"
let a_reject_bad_block = Obs.Btrace.atom "bad_block"

let reject_reason_atom = function
  | Bad_au -> a_reject_bad_au
  | Not_held -> a_reject_not_held
  | Unknown_poll -> a_reject_unknown_poll
  | Uninvited -> a_reject_uninvited
  | Wrong_state -> a_reject_wrong_state
  | Wrong_phase -> a_reject_wrong_phase
  | Unknown_session -> a_reject_unknown_session
  | Stale_closed -> a_reject_stale_closed
  | Bad_block -> a_reject_bad_block

let a_path_introduced = Obs.Btrace.atom "introduced"
let a_path_unknown = Obs.Btrace.atom "unknown"
let a_path_known_debt = Obs.Btrace.atom "known_debt"
let a_path_known_even = Obs.Btrace.atom "known_even"
let a_path_known_credit = Obs.Btrace.atom "known_credit"

let path_atom = function
  | Admitted_introduced -> a_path_introduced
  | Admitted_unknown -> a_path_unknown
  | Admitted_known Grade.Debt -> a_path_known_debt
  | Admitted_known Grade.Even -> a_path_known_even
  | Admitted_known Grade.Credit -> a_path_known_credit

let a_outcome_success = Obs.Btrace.atom "success"
let a_outcome_inquorate = Obs.Btrace.atom "inquorate"
let a_outcome_alarmed = Obs.Btrace.atom "alarmed"

let outcome_atom = function
  | Metrics.Success -> a_outcome_success
  | Metrics.Inquorate -> a_outcome_inquorate
  | Metrics.Alarmed -> a_outcome_alarmed

let a_role_loyal = Obs.Btrace.atom "loyal"
let a_role_adversary = Obs.Btrace.atom "adversary"
let role_atom = function Loyal -> a_role_loyal | Adversary -> a_role_adversary

let a_phase_admission = Obs.Btrace.atom "admission"
let a_phase_solicitation = Obs.Btrace.atom "solicitation"
let a_phase_voting = Obs.Btrace.atom "voting"
let a_phase_evaluation = Obs.Btrace.atom "evaluation"
let a_phase_repair = Obs.Btrace.atom "repair"

let phase_atom = function
  | Admission -> a_phase_admission
  | Solicitation -> a_phase_solicitation
  | Voting -> a_phase_voting
  | Evaluation -> a_phase_evaluation
  | Repair -> a_phase_repair

(* Per-field helpers at top level, like the jsonl ones above: locals
   capturing [w] would cost a closure allocation on every event. *)
let bin_int_field w a v =
  Obs.Btrace.put_atom w a;
  Obs.Btrace.put_int w v

let bin_opt_field w a = function None -> () | Some v -> bin_int_field w a v

let rec bin_ids_items w = function
  | [] -> ()
  | x :: rest ->
    Obs.Btrace.put_int w x;
    bin_ids_items w rest

let bin_ids_field w a xs =
  Obs.Btrace.put_atom w a;
  Obs.Btrace.put_list_header w (List.length xs);
  bin_ids_items w xs

(* Assembles the record field by field — byte-identical to encoding
   [to_json ~time event] through the generic path, without building the
   JSON value. *)
let write_binary w ~time event =
  let module B = Obs.Btrace in
  B.begin_record w;
  let n = match event with
    | Poll_started _ -> 4
    | Solicitation_sent _ -> 5
    | Invitation_dropped _ -> 5
    | Invitation_admitted { poll_id; _ } -> 4 + (if poll_id = None then 0 else 1)
    | Invitation_refused _ | Invitation_accepted _ | Vote_sent _ -> 4
    | Poll_sampled _ -> 5
    | Evaluation_started _ -> 4
    | Repair_applied _ -> 6
    | Poll_concluded _ -> 4
    | Effort_charged { poller; au; poll_id; _ } ->
      4
      + (if poller = None then 0 else 1)
      + (if au = None then 0 else 1)
      + if poll_id = None then 0 else 1
    | Effort_received _ -> 6
    | Message_rejected { poll_id; _ } -> 5 + (if poll_id = None then 0 else 1)
    | Fault_dropped _ | Fault_duplicated _ | Partition_dropped _ | Fault_corrupted _
    | Fault_stray _ ->
      2
    | Fault_delayed _ | Fault_replayed _ | Fault_stale _ -> 3
    | Node_crashed _ | Node_restarted _ -> 1
    | Invariant_violated { peer; au; poll_id; _ } ->
      2
      + (if peer = None then 0 else 1)
      + (if au = None then 0 else 1)
      + if poll_id = None then 0 else 1
  in
  B.put_assoc_header w (3 + n);
  B.put_atom w a_t;
  B.put_float w time;
  B.put_atom w a_severity;
  B.put_atom w (severity_atom (severity event));
  B.put_atom w a_kind;
  B.put_atom w (kind_atom event);
  (match event with
  | Poll_started { poller; au; poll_id; inner_candidates } ->
    bin_int_field w a_poller poller;
    bin_int_field w a_au au;
    bin_int_field w a_poll_id poll_id;
    bin_int_field w a_inner_candidates inner_candidates
  | Solicitation_sent { poller; voter; au; poll_id; attempt } ->
    bin_int_field w a_poller poller;
    bin_int_field w a_voter voter;
    bin_int_field w a_au au;
    bin_int_field w a_poll_id poll_id;
    bin_int_field w a_attempt attempt
  | Invitation_dropped { voter; claimed; au; poll_id; reason } ->
    bin_int_field w a_voter voter;
    bin_int_field w a_claimed claimed;
    bin_int_field w a_au au;
    bin_int_field w a_poll_id poll_id;
    B.put_atom w a_reason;
    B.put_atom w (reason_atom reason)
  | Invitation_admitted { voter; claimed; au; poll_id; path } ->
    bin_int_field w a_voter voter;
    bin_int_field w a_claimed claimed;
    bin_int_field w a_au au;
    bin_opt_field w a_poll_id poll_id;
    B.put_atom w a_path;
    B.put_atom w (path_atom path)
  | Invitation_refused { voter; poller; au; poll_id }
  | Invitation_accepted { voter; poller; au; poll_id }
  | Vote_sent { voter; poller; au; poll_id } ->
    bin_int_field w a_voter voter;
    bin_int_field w a_poller poller;
    bin_int_field w a_au au;
    bin_int_field w a_poll_id poll_id
  | Poll_sampled { poller; au; poll_id; invited; reference } ->
    bin_int_field w a_poller poller;
    bin_int_field w a_au au;
    bin_int_field w a_poll_id poll_id;
    bin_ids_field w a_invited invited;
    bin_ids_field w a_reference reference
  | Evaluation_started { poller; au; poll_id; votes } ->
    bin_int_field w a_poller poller;
    bin_int_field w a_au au;
    bin_int_field w a_poll_id poll_id;
    bin_int_field w a_votes votes
  | Repair_applied { poller; au; poll_id; block; version; clean } ->
    bin_int_field w a_poller poller;
    bin_int_field w a_au au;
    bin_int_field w a_poll_id poll_id;
    bin_int_field w a_block block;
    bin_int_field w a_version version;
    B.put_atom w a_clean;
    B.put_bool w clean
  | Poll_concluded { poller; au; poll_id; outcome } ->
    bin_int_field w a_poller poller;
    bin_int_field w a_au au;
    bin_int_field w a_poll_id poll_id;
    B.put_atom w a_outcome;
    B.put_atom w (outcome_atom outcome)
  | Effort_charged { peer; role; phase; poller; au; poll_id; seconds } ->
    bin_int_field w a_peer peer;
    B.put_atom w a_role;
    B.put_atom w (role_atom role);
    B.put_atom w a_phase;
    B.put_atom w (phase_atom phase);
    bin_opt_field w a_poller poller;
    bin_opt_field w a_au au;
    bin_opt_field w a_poll_id poll_id;
    B.put_atom w a_seconds;
    B.put_float w seconds
  | Effort_received { peer; from_; phase; au; poll_id; seconds } ->
    bin_int_field w a_peer peer;
    bin_int_field w a_from from_;
    B.put_atom w a_phase;
    B.put_atom w (phase_atom phase);
    bin_int_field w a_au au;
    bin_int_field w a_poll_id poll_id;
    B.put_atom w a_seconds;
    B.put_float w seconds
  | Message_rejected { peer; from_; au; poll_id; msg_kind; reason } ->
    bin_int_field w a_peer peer;
    bin_int_field w a_from from_;
    bin_int_field w a_au au;
    bin_opt_field w a_poll_id poll_id;
    B.put_atom w a_msg_kind;
    B.put_string w msg_kind;
    B.put_atom w a_reason;
    B.put_atom w (reject_reason_atom reason)
  | Fault_dropped { src; dst }
  | Fault_duplicated { src; dst }
  | Partition_dropped { src; dst }
  | Fault_corrupted { src; dst }
  | Fault_stray { src; dst } ->
    bin_int_field w a_src src;
    bin_int_field w a_dst dst
  | Fault_delayed { src; dst; extra }
  | Fault_replayed { src; dst; extra }
  | Fault_stale { src; dst; extra } ->
    bin_int_field w a_src src;
    bin_int_field w a_dst dst;
    B.put_atom w a_extra;
    B.put_float w extra
  | Node_crashed { node } | Node_restarted { node } -> bin_int_field w a_node node
  | Invariant_violated { invariant; peer; au; poll_id; detail } ->
    B.put_atom w a_invariant;
    B.put_string w invariant;
    bin_opt_field w a_peer peer;
    bin_opt_field w a_au au;
    bin_opt_field w a_poll_id poll_id;
    B.put_atom w a_detail;
    B.put_string w detail);
  B.end_record w ~now:time ()

let binary_sink ?(min_severity = Debug) writer ~time event =
  if severity_at_least min_severity (severity event) then
    write_binary writer ~time event

let filter_sink ?min_severity ?peer ?au ?kinds inner ~time event =
  let pass =
    (match min_severity with
    | None -> true
    | Some min -> severity_at_least min (severity event))
    && (match peer with None -> true | Some id -> involves event id)
    && (match au with
       | None -> true
       | Some a -> (
         match au_of event with
         | Some event_au -> Ids.Au_id.equal a event_au
         | None -> false))
    && match kinds with None -> true | Some ks -> List.mem (kind event) ks
  in
  if pass then inner ~time event

(* -- Recording --------------------------------------------------------- *)

type record = { events : (float * event) list; dropped : int }

let recorder ?(capacity = 65_536) t =
  if capacity <= 0 then invalid_arg "Trace.recorder: capacity must be positive";
  let ring = Array.make capacity None in
  let next = ref 0 in
  let total = ref 0 in
  subscribe t (fun ~time event ->
      ring.(!next) <- Some (time, event);
      next := (!next + 1) mod capacity;
      incr total);
  fun () ->
    let retained = min !total capacity in
    let start = (!next - retained + capacity) mod capacity in
    let events =
      List.init retained (fun i ->
          match ring.((start + i) mod capacity) with
          | Some entry -> entry
          | None -> assert false)
    in
    { events; dropped = !total - retained }
