module Json = Obs.Json

(* -- Effort taxonomy ---------------------------------------------------- *)

type effort_role = Loyal | Adversary

let effort_role_to_string = function Loyal -> "loyal" | Adversary -> "adversary"

let effort_role_of_string = function
  | "loyal" -> Some Loyal
  | "adversary" -> Some Adversary
  | _ -> None

type effort_phase = Admission | Solicitation | Voting | Evaluation | Repair

let effort_phase_to_string = function
  | Admission -> "admission"
  | Solicitation -> "solicitation"
  | Voting -> "voting"
  | Evaluation -> "evaluation"
  | Repair -> "repair"

let effort_phase_of_string = function
  | "admission" -> Some Admission
  | "solicitation" -> Some Solicitation
  | "voting" -> Some Voting
  | "evaluation" -> Some Evaluation
  | "repair" -> Some Repair
  | _ -> None

let all_effort_phases = [ Admission; Solicitation; Voting; Evaluation; Repair ]

(* -- Admission paths ---------------------------------------------------- *)

type admission_path =
  | Admitted_introduced
  | Admitted_unknown
  | Admitted_known of Grade.t

let admission_path_of_decision = function
  | `Introduced -> Admitted_introduced
  | `Unknown -> Admitted_unknown
  | `Known g -> Admitted_known g

let admission_path_to_string = function
  | Admitted_introduced -> "introduced"
  | Admitted_unknown -> "unknown"
  | Admitted_known Grade.Debt -> "known_debt"
  | Admitted_known Grade.Even -> "known_even"
  | Admitted_known Grade.Credit -> "known_credit"

let admission_path_of_string = function
  | "introduced" -> Some Admitted_introduced
  | "unknown" -> Some Admitted_unknown
  | "known_debt" -> Some (Admitted_known Grade.Debt)
  | "known_even" -> Some (Admitted_known Grade.Even)
  | "known_credit" -> Some (Admitted_known Grade.Credit)
  | _ -> None

type event =
  | Poll_started of { poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int; inner_candidates : int }
  | Solicitation_sent of {
      poller : Ids.Identity.t;
      voter : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      attempt : int;
    }
  | Invitation_dropped of {
      voter : Ids.Identity.t;
      claimed : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      reason : Admission.drop_reason;
    }
  | Invitation_admitted of {
      voter : Ids.Identity.t;
      claimed : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int option;  (** [None] for unsolicited (garbage) invitations *)
      path : admission_path;
    }
  | Invitation_refused of {
      voter : Ids.Identity.t;
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
    }
  | Invitation_accepted of {
      voter : Ids.Identity.t;
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
    }
  | Vote_sent of { voter : Ids.Identity.t; poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int }
  | Poll_sampled of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      invited : Ids.Identity.t list;
      reference : Ids.Identity.t list;
    }
  | Evaluation_started of { poller : Ids.Identity.t; au : Ids.Au_id.t; poll_id : int; votes : int }
  | Repair_applied of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      block : int;
      version : int;
      clean : bool;
    }
  | Poll_concluded of {
      poller : Ids.Identity.t;
      au : Ids.Au_id.t;
      poll_id : int;
      outcome : Metrics.poll_outcome;
    }
  | Effort_charged of {
      peer : Ids.Identity.t;
      role : effort_role;
      phase : effort_phase;
      poller : Ids.Identity.t option;
      au : Ids.Au_id.t option;
      poll_id : int option;
      seconds : float;
    }
  | Effort_received of {
      peer : Ids.Identity.t;
      from_ : Ids.Identity.t;
      phase : effort_phase;
      au : Ids.Au_id.t;
      poll_id : int;
      seconds : float;
    }
  | Fault_dropped of { src : Ids.Identity.t; dst : Ids.Identity.t }
  | Fault_duplicated of { src : Ids.Identity.t; dst : Ids.Identity.t }
  | Fault_delayed of { src : Ids.Identity.t; dst : Ids.Identity.t; extra : float }
  | Node_crashed of { node : Ids.Identity.t }
  | Node_restarted of { node : Ids.Identity.t }
  | Invariant_violated of {
      invariant : string;
      peer : Ids.Identity.t option;
      au : Ids.Au_id.t option;
      poll_id : int option;
      detail : string;
    }

type t = { mutable subscribers : (time:float -> event -> unit) list }

let create () = { subscribers = [] }
let subscribe t f = t.subscribers <- f :: t.subscribers

let emit t ~now thunk =
  match t.subscribers with
  | [] -> ()
  | subscribers ->
    let event = thunk () in
    List.iter (fun f -> f ~time:now event) subscribers

let pp_correlation ppf (poller, au, poll_id) =
  (match poll_id with
  | Some id -> Format.fprintf ppf " poll %d" id
  | None -> ());
  (match poller with
  | Some p -> Format.fprintf ppf " by %a" Ids.Identity.pp p
  | None -> ());
  match au with Some a -> Format.fprintf ppf " on %a" Ids.Au_id.pp a | None -> ()

let pp_event ppf = function
  | Poll_started { poller; au; poll_id; inner_candidates } ->
    Format.fprintf ppf "poll %d started by %a on %a (%d inner candidates)" poll_id
      Ids.Identity.pp poller Ids.Au_id.pp au inner_candidates
  | Solicitation_sent { poller; voter; au; poll_id; attempt } ->
    Format.fprintf ppf "poll %d: %a solicits %a on %a (attempt %d)" poll_id
      Ids.Identity.pp poller Ids.Identity.pp voter Ids.Au_id.pp au attempt
  | Invitation_dropped { voter; claimed; au; poll_id; reason } ->
    let reason =
      match reason with
      | Admission.Refractory -> "refractory"
      | Admission.Random_drop -> "random drop"
      | Admission.Known_rate_limited -> "per-peer rate limit"
    in
    Format.fprintf ppf "poll %d: %a drops invitation claimed by %a on %a (%s)" poll_id
      Ids.Identity.pp voter Ids.Identity.pp claimed Ids.Au_id.pp au reason
  | Invitation_admitted { voter; claimed; au; poll_id; path } ->
    Format.fprintf ppf "%s: %a admits invitation claimed by %a on %a (%s)"
      (match poll_id with Some id -> Printf.sprintf "poll %d" id | None -> "garbage")
      Ids.Identity.pp voter Ids.Identity.pp claimed Ids.Au_id.pp au
      (admission_path_to_string path)
  | Invitation_refused { voter; poller; au; poll_id } ->
    Format.fprintf ppf "poll %d: %a refuses %a on %a (busy)" poll_id Ids.Identity.pp
      voter Ids.Identity.pp poller Ids.Au_id.pp au
  | Invitation_accepted { voter; poller; au; poll_id } ->
    Format.fprintf ppf "poll %d: %a accepts %a on %a" poll_id Ids.Identity.pp voter
      Ids.Identity.pp poller Ids.Au_id.pp au
  | Vote_sent { voter; poller; au; poll_id } ->
    Format.fprintf ppf "poll %d: %a votes for %a on %a" poll_id Ids.Identity.pp voter
      Ids.Identity.pp poller Ids.Au_id.pp au
  | Poll_sampled { poller; au; poll_id; invited; reference } ->
    Format.fprintf ppf "poll %d: %a samples %d of %d reference peers on %a" poll_id
      Ids.Identity.pp poller (List.length invited) (List.length reference) Ids.Au_id.pp
      au
  | Evaluation_started { poller; au; poll_id; votes } ->
    Format.fprintf ppf "poll %d: %a evaluates %d votes on %a" poll_id Ids.Identity.pp
      poller votes Ids.Au_id.pp au
  | Repair_applied { poller; au; poll_id; block; version; clean } ->
    Format.fprintf ppf "poll %d: %a repairs %a block %d to version %d%s" poll_id
      Ids.Identity.pp poller Ids.Au_id.pp au block version
      (if clean then " (replica clean)" else "")
  | Poll_concluded { poller; au; poll_id; outcome } ->
    let outcome =
      match outcome with
      | Metrics.Success -> "success"
      | Metrics.Inquorate -> "inquorate"
      | Metrics.Alarmed -> "ALARM"
    in
    Format.fprintf ppf "poll %d: %a concludes on %a: %s" poll_id Ids.Identity.pp poller
      Ids.Au_id.pp au outcome
  | Effort_charged { peer; role; phase; poller; au; poll_id; seconds } ->
    Format.fprintf ppf "effort: %a (%s) spends %a on %s%a" Ids.Identity.pp peer
      (effort_role_to_string role) Repro_prelude.Duration.pp seconds
      (effort_phase_to_string phase) pp_correlation (poller, au, poll_id)
  | Effort_received { peer; from_; phase; au; poll_id; seconds } ->
    Format.fprintf ppf "effort: %a proves %a of %s effort to %a%a" Ids.Identity.pp from_
      Repro_prelude.Duration.pp seconds (effort_phase_to_string phase) Ids.Identity.pp
      peer pp_correlation (None, Some au, Some poll_id)
  | Fault_dropped { src; dst } ->
    Format.fprintf ppf "fault: message %a -> %a dropped" Ids.Identity.pp src
      Ids.Identity.pp dst
  | Fault_duplicated { src; dst } ->
    Format.fprintf ppf "fault: message %a -> %a duplicated" Ids.Identity.pp src
      Ids.Identity.pp dst
  | Fault_delayed { src; dst; extra } ->
    Format.fprintf ppf "fault: message %a -> %a delayed by %a" Ids.Identity.pp src
      Ids.Identity.pp dst Repro_prelude.Duration.pp extra
  | Node_crashed { node } -> Format.fprintf ppf "fault: %a crashed" Ids.Identity.pp node
  | Node_restarted { node } ->
    Format.fprintf ppf "fault: %a restarted" Ids.Identity.pp node
  | Invariant_violated { invariant; peer; au; poll_id; detail } ->
    Format.fprintf ppf "INVARIANT %s violated%a: %s" invariant pp_correlation
      (peer, au, poll_id) detail

(* -- Taxonomy ---------------------------------------------------------- *)

type severity = Debug | Info | Warn

let severity = function
  | Solicitation_sent _ | Invitation_admitted _ | Invitation_refused _
  | Invitation_accepted _ | Vote_sent _ | Poll_sampled _ | Evaluation_started _
  | Effort_charged _ | Effort_received _ | Fault_dropped _ | Fault_duplicated _
  | Fault_delayed _ ->
    Debug
  | Poll_started _ | Invitation_dropped _ | Repair_applied _
  | Poll_concluded { outcome = Metrics.Success; _ }
  | Node_crashed _ | Node_restarted _ ->
    Info
  | Poll_concluded { outcome = Metrics.Inquorate | Metrics.Alarmed; _ }
  | Invariant_violated _ ->
    Warn

let severity_to_string = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let severity_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | _ -> None

let kind = function
  | Poll_started _ -> "poll_started"
  | Solicitation_sent _ -> "solicitation_sent"
  | Invitation_dropped _ -> "invitation_dropped"
  | Invitation_admitted _ -> "invitation_admitted"
  | Invitation_refused _ -> "invitation_refused"
  | Invitation_accepted _ -> "invitation_accepted"
  | Vote_sent _ -> "vote_sent"
  | Poll_sampled _ -> "poll_sampled"
  | Evaluation_started _ -> "evaluation_started"
  | Repair_applied _ -> "repair_applied"
  | Poll_concluded _ -> "poll_concluded"
  | Effort_charged _ -> "effort_charged"
  | Effort_received _ -> "effort_received"
  | Fault_dropped _ -> "fault_dropped"
  | Fault_duplicated _ -> "fault_duplicated"
  | Fault_delayed _ -> "fault_delayed"
  | Node_crashed _ -> "node_crashed"
  | Node_restarted _ -> "node_restarted"
  | Invariant_violated _ -> "invariant_violated"

let all_kinds =
  [
    "poll_started";
    "solicitation_sent";
    "invitation_dropped";
    "invitation_admitted";
    "invitation_refused";
    "invitation_accepted";
    "vote_sent";
    "poll_sampled";
    "evaluation_started";
    "repair_applied";
    "poll_concluded";
    "effort_charged";
    "effort_received";
    "fault_dropped";
    "fault_duplicated";
    "fault_delayed";
    "node_crashed";
    "node_restarted";
    "invariant_violated";
  ]

let involves event id =
  let eq = Ids.Identity.equal id in
  match event with
  | Poll_started { poller; _ } | Evaluation_started { poller; _ } -> eq poller
  | Repair_applied { poller; _ } | Poll_concluded { poller; _ } -> eq poller
  | Poll_sampled { poller; invited; _ } -> eq poller || List.exists eq invited
  | Solicitation_sent { poller; voter; _ } -> eq poller || eq voter
  | Invitation_dropped { voter; claimed; _ }
  | Invitation_admitted { voter; claimed; _ } ->
    eq voter || eq claimed
  | Invitation_refused { voter; poller; _ }
  | Invitation_accepted { voter; poller; _ }
  | Vote_sent { voter; poller; _ } ->
    eq voter || eq poller
  | Effort_charged { peer; poller; _ } ->
    eq peer || (match poller with Some p -> eq p | None -> false)
  | Effort_received { peer; from_; _ } -> eq peer || eq from_
  | Fault_dropped { src; dst } | Fault_duplicated { src; dst }
  | Fault_delayed { src; dst; _ } ->
    eq src || eq dst
  | Node_crashed { node } | Node_restarted { node } -> eq node
  | Invariant_violated { peer; _ } -> (
    match peer with Some p -> eq p | None -> false)

let au_of = function
  | Poll_started { au; _ }
  | Solicitation_sent { au; _ }
  | Invitation_dropped { au; _ }
  | Invitation_admitted { au; _ }
  | Invitation_refused { au; _ }
  | Invitation_accepted { au; _ }
  | Vote_sent { au; _ }
  | Poll_sampled { au; _ }
  | Evaluation_started { au; _ }
  | Repair_applied { au; _ }
  | Poll_concluded { au; _ }
  | Effort_received { au; _ } ->
    Some au
  | Effort_charged { au; _ } | Invariant_violated { au; _ } -> au
  | Fault_dropped _ | Fault_duplicated _ | Fault_delayed _ | Node_crashed _
  | Node_restarted _ ->
    None

(* -- JSON round-trip --------------------------------------------------- *)

let drop_reason_to_string = function
  | Admission.Refractory -> "refractory"
  | Admission.Random_drop -> "random_drop"
  | Admission.Known_rate_limited -> "known_rate_limited"

let drop_reason_of_string = function
  | "refractory" -> Some Admission.Refractory
  | "random_drop" -> Some Admission.Random_drop
  | "known_rate_limited" -> Some Admission.Known_rate_limited
  | _ -> None

let outcome_to_string = function
  | Metrics.Success -> "success"
  | Metrics.Inquorate -> "inquorate"
  | Metrics.Alarmed -> "alarmed"

let outcome_of_string = function
  | "success" -> Some Metrics.Success
  | "inquorate" -> Some Metrics.Inquorate
  | "alarmed" -> Some Metrics.Alarmed
  | _ -> None

let to_json ~time event =
  let opt name = function None -> [] | Some v -> [ (name, Json.Int v) ] in
  let fields =
    match event with
    | Poll_started { poller; au; poll_id; inner_candidates } ->
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("inner_candidates", Json.Int inner_candidates);
      ]
    | Solicitation_sent { poller; voter; au; poll_id; attempt } ->
      [
        ("poller", Json.Int poller);
        ("voter", Json.Int voter);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("attempt", Json.Int attempt);
      ]
    | Invitation_dropped { voter; claimed; au; poll_id; reason } ->
      [
        ("voter", Json.Int voter);
        ("claimed", Json.Int claimed);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("reason", Json.String (drop_reason_to_string reason));
      ]
    | Invitation_admitted { voter; claimed; au; poll_id; path } ->
      [ ("voter", Json.Int voter); ("claimed", Json.Int claimed); ("au", Json.Int au) ]
      @ opt "poll_id" poll_id
      @ [ ("path", Json.String (admission_path_to_string path)) ]
    | Invitation_refused { voter; poller; au; poll_id } ->
      [
        ("voter", Json.Int voter);
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
      ]
    | Invitation_accepted { voter; poller; au; poll_id } ->
      [
        ("voter", Json.Int voter);
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
      ]
    | Vote_sent { voter; poller; au; poll_id } ->
      [
        ("voter", Json.Int voter);
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
      ]
    | Poll_sampled { poller; au; poll_id; invited; reference } ->
      let ids xs = Json.List (List.map (fun i -> Json.Int i) xs) in
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("invited", ids invited);
        ("reference", ids reference);
      ]
    | Evaluation_started { poller; au; poll_id; votes } ->
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("votes", Json.Int votes);
      ]
    | Repair_applied { poller; au; poll_id; block; version; clean } ->
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("block", Json.Int block);
        ("version", Json.Int version);
        ("clean", Json.Bool clean);
      ]
    | Poll_concluded { poller; au; poll_id; outcome } ->
      [
        ("poller", Json.Int poller);
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("outcome", Json.String (outcome_to_string outcome));
      ]
    | Effort_charged { peer; role; phase; poller; au; poll_id; seconds } ->
      [
        ("peer", Json.Int peer);
        ("role", Json.String (effort_role_to_string role));
        ("phase", Json.String (effort_phase_to_string phase));
      ]
      @ opt "poller" poller @ opt "au" au @ opt "poll_id" poll_id
      @ [ ("seconds", Json.Float seconds) ]
    | Effort_received { peer; from_; phase; au; poll_id; seconds } ->
      [
        ("peer", Json.Int peer);
        ("from", Json.Int from_);
        ("phase", Json.String (effort_phase_to_string phase));
        ("au", Json.Int au);
        ("poll_id", Json.Int poll_id);
        ("seconds", Json.Float seconds);
      ]
    | Fault_dropped { src; dst } | Fault_duplicated { src; dst } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst) ]
    | Fault_delayed { src; dst; extra } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst); ("extra", Json.Float extra) ]
    | Node_crashed { node } | Node_restarted { node } -> [ ("node", Json.Int node) ]
    | Invariant_violated { invariant; peer; au; poll_id; detail } ->
      [ ("invariant", Json.String invariant) ]
      @ opt "peer" peer @ opt "au" au @ opt "poll_id" poll_id
      @ [ ("detail", Json.String detail) ]
  in
  Json.Assoc
    ([
       ("t", Json.Float time);
       ("severity", Json.String (severity_to_string (severity event)));
       ("kind", Json.String (kind event));
     ]
    @ fields)

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name decode =
    match Option.bind (Json.member name json) decode with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or malformed field %S" name)
  in
  let int name = field name Json.to_int in
  let bool name = field name Json.to_bool in
  (* Optional correlation fields are simply omitted when unknown; [Null]
     is accepted too so hand-written traces can be explicit. *)
  let opt_int name =
    match Json.member name json with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_int v with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "malformed optional field %S" name))
  in
  let int_list name =
    field name (fun v ->
        match v with
        | Json.List items ->
          let ints = List.filter_map Json.to_int items in
          if List.length ints = List.length items then Some ints else None
        | _ -> None)
  in
  let str name = field name Json.string_value in
  let* time = field "t" Json.to_float in
  let* kind = field "kind" Json.string_value in
  let* event =
    match kind with
    | "poll_started" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* inner_candidates = int "inner_candidates" in
      Ok (Poll_started { poller; au; poll_id; inner_candidates })
    | "solicitation_sent" ->
      let* poller = int "poller" in
      let* voter = int "voter" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* attempt = int "attempt" in
      Ok (Solicitation_sent { poller; voter; au; poll_id; attempt })
    | "invitation_dropped" ->
      let* voter = int "voter" in
      let* claimed = int "claimed" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* reason =
        field "reason" (fun v -> Option.bind (Json.string_value v) drop_reason_of_string)
      in
      Ok (Invitation_dropped { voter; claimed; au; poll_id; reason })
    | "invitation_admitted" ->
      let* voter = int "voter" in
      let* claimed = int "claimed" in
      let* au = int "au" in
      let* poll_id = opt_int "poll_id" in
      let* path =
        field "path" (fun v -> Option.bind (Json.string_value v) admission_path_of_string)
      in
      Ok (Invitation_admitted { voter; claimed; au; poll_id; path })
    | "invitation_refused" ->
      let* voter = int "voter" in
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      Ok (Invitation_refused { voter; poller; au; poll_id })
    | "invitation_accepted" ->
      let* voter = int "voter" in
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      Ok (Invitation_accepted { voter; poller; au; poll_id })
    | "vote_sent" ->
      let* voter = int "voter" in
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      Ok (Vote_sent { voter; poller; au; poll_id })
    | "poll_sampled" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* invited = int_list "invited" in
      let* reference = int_list "reference" in
      Ok (Poll_sampled { poller; au; poll_id; invited; reference })
    | "evaluation_started" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* votes = int "votes" in
      Ok (Evaluation_started { poller; au; poll_id; votes })
    | "repair_applied" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* block = int "block" in
      let* version = int "version" in
      let* clean = bool "clean" in
      Ok (Repair_applied { poller; au; poll_id; block; version; clean })
    | "poll_concluded" ->
      let* poller = int "poller" in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* outcome =
        field "outcome" (fun v -> Option.bind (Json.string_value v) outcome_of_string)
      in
      Ok (Poll_concluded { poller; au; poll_id; outcome })
    | "effort_charged" ->
      let* peer = int "peer" in
      let* role =
        field "role" (fun v -> Option.bind (Json.string_value v) effort_role_of_string)
      in
      let* phase =
        field "phase" (fun v -> Option.bind (Json.string_value v) effort_phase_of_string)
      in
      let* poller = opt_int "poller" in
      let* au = opt_int "au" in
      let* poll_id = opt_int "poll_id" in
      let* seconds = field "seconds" Json.to_float in
      Ok (Effort_charged { peer; role; phase; poller; au; poll_id; seconds })
    | "effort_received" ->
      let* peer = int "peer" in
      let* from_ = int "from" in
      let* phase =
        field "phase" (fun v -> Option.bind (Json.string_value v) effort_phase_of_string)
      in
      let* au = int "au" in
      let* poll_id = int "poll_id" in
      let* seconds = field "seconds" Json.to_float in
      Ok (Effort_received { peer; from_; phase; au; poll_id; seconds })
    | "fault_dropped" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Ok (Fault_dropped { src; dst })
    | "fault_duplicated" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Ok (Fault_duplicated { src; dst })
    | "fault_delayed" ->
      let* src = int "src" in
      let* dst = int "dst" in
      let* extra = field "extra" Json.to_float in
      Ok (Fault_delayed { src; dst; extra })
    | "node_crashed" ->
      let* node = int "node" in
      Ok (Node_crashed { node })
    | "node_restarted" ->
      let* node = int "node" in
      Ok (Node_restarted { node })
    | "invariant_violated" ->
      let* invariant = str "invariant" in
      let* peer = opt_int "peer" in
      let* au = opt_int "au" in
      let* poll_id = opt_int "poll_id" in
      let* detail = str "detail" in
      Ok (Invariant_violated { invariant; peer; au; poll_id; detail })
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  Ok (time, event)

(* -- Sinks ------------------------------------------------------------- *)

type sink = time:float -> event -> unit

let severity_at_least min s =
  match (min, s) with
  | Debug, _ -> true
  | Info, (Info | Warn) -> true
  | Warn, Warn -> true
  | _ -> false

let pretty_sink ?(min_severity = Debug) ppf ~time event =
  if severity_at_least min_severity (severity event) then
    Format.fprintf ppf "[%a] [%s] %a@." Repro_prelude.Duration.pp time
      (severity_to_string (severity event))
      pp_event event

let jsonl_sink ?(min_severity = Debug) oc ~time event =
  if severity_at_least min_severity (severity event) then begin
    output_string oc (Json.to_string (to_json ~time event));
    output_char oc '\n';
    flush oc
  end

let filter_sink ?min_severity ?peer ?au ?kinds inner ~time event =
  let pass =
    (match min_severity with
    | None -> true
    | Some min -> severity_at_least min (severity event))
    && (match peer with None -> true | Some id -> involves event id)
    && (match au with
       | None -> true
       | Some a -> (
         match au_of event with
         | Some event_au -> Ids.Au_id.equal a event_au
         | None -> false))
    && match kinds with None -> true | Some ks -> List.mem (kind event) ks
  in
  if pass then inner ~time event

(* -- Recording --------------------------------------------------------- *)

type record = { events : (float * event) list; dropped : int }

let recorder ?(capacity = 65_536) t =
  if capacity <= 0 then invalid_arg "Trace.recorder: capacity must be positive";
  let ring = Array.make capacity None in
  let next = ref 0 in
  let total = ref 0 in
  subscribe t (fun ~time event ->
      ring.(!next) <- Some (time, event);
      next := (!next + 1) mod capacity;
      incr total);
  fun () ->
    let retained = min !total capacity in
    let start = (!next - retained + capacity) mod capacity in
    let events =
      List.init retained (fun i ->
          match ring.((start + i) mod capacity) with
          | Some entry -> entry
          | None -> assert false)
    in
    { events; dropped = !total - retained }
