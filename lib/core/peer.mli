(** Peer state and the simulation context shared by the protocol logic.

    A peer plays both protocol roles: {e poller} (state in {!poll}, logic
    in {!Poller}) and {e voter} (state in {!voter_session}, logic in
    {!Voter}). This module owns all mutable state so the role modules stay
    cycle-free; it contains no protocol decisions of its own. *)

type candidate_status =
  | Not_invited  (** solicitation not yet attempted *)
  | Awaiting_ack of Narses.Engine.event_id  (** Poll sent; id is the timeout *)
  | Awaiting_vote of Narses.Engine.event_id  (** accepted; id is the timeout *)
  | Voted
  | Failed  (** refused/unresponsive beyond the retry budget *)

type candidate = {
  cand_identity : Ids.Identity.t;
  inner : bool;  (** inner-circle (outcome-determining) vs outer (discovery) *)
  mutable attempts : int;
  mutable status : candidate_status;
  mutable cand_nonce : int64;  (** nonce sent in PollProof, echoed by the vote *)
}

type poll_phase = Soliciting | Repairing | Concluded

type poll = {
  poll_id : int;
  poll_au : Ids.Au_id.t;
  started_at : float;
  inner_deadline : float;  (** end of the inner solicitation window *)
  outer_deadline : float;  (** end of the outer window; evaluation begins *)
  mutable candidates : candidate list;
  mutable votes : (candidate * Vote.t) list;  (** all received votes *)
  mutable nominations : Ids.Identity.t list;  (** discovery pool *)
  mutable phase : poll_phase;
  mutable pending_repairs : (int * Ids.Identity.t list) list;
      (** blocks awaiting repair and their candidate suppliers *)
  mutable repair_timer : Narses.Engine.event_id option;
  mutable repair_attempts : int;
  mutable alarmed : bool;
}

type voter_state =
  | Awaiting_proof of Narses.Engine.event_id  (** accepted; id is the timeout *)
  | Computing
  | Voted_waiting_receipt of Narses.Engine.event_id
  | Closed

type voter_session = {
  vs_poller : Ids.Identity.t;
  vs_poller_node : Narses.Topology.node;
  vs_au : Ids.Au_id.t;
  vs_poll_id : int;
  mutable vs_reservation : Effort.Task_schedule.reservation option;
  mutable vs_finish : float;  (** quoted completion time of the vote work *)
  mutable vs_nonce : int64;
  mutable vs_vote : Vote.t option;  (** kept for the expected receipt *)
  mutable vs_state : voter_state;
}

type au_state = {
  au : Ids.Au_id.t;
  held : bool;  (** whether this peer preserves the AU (collection diversity) *)
  replica : Replica.t;
  known : Known_peers.t;
  admission : Admission.t;
  reference : Reference_list.t;
  mutable current_poll : poll option;
}

type t = {
  node : Narses.Topology.node;
  identity : Ids.Identity.t;
  friends : Ids.Identity.t list;
  schedule : Effort.Task_schedule.t;
  rng : Repro_prelude.Rng.t;
  aus : au_state array;
  mutable poll_counter : int;
  voter_sessions : (Ids.Identity.t * Ids.Au_id.t * int, voter_session) Hashtbl.t;
  closed_sessions : (Ids.Identity.t * Ids.Au_id.t * int, unit) Hashtbl.t;
      (** recently closed voter-session keys, so duplicate deliveries of
          an already-handled Poll are dropped instead of opening a ghost
          session (bounded by [closed_ring]) *)
  closed_ring : (Ids.Identity.t * Ids.Au_id.t * int) option array;
  mutable closed_next : int;
  mutable active : bool;
      (** dormant peers (churn experiments) ignore all traffic and call no
          polls until activated; fault-injected crashes also clear it *)
}

type ctx = {
  engine : Narses.Engine.t;
  net : Message.t Narses.Net.t;
  cfg : Config.t;
  metrics : Metrics.t;
  trace : Trace.t;  (** structured protocol event stream *)
  peers : t array;  (** loyal peers; index = node = identity *)
  identity_nodes : (Ids.Identity.t, Narses.Topology.node) Hashtbl.t;
      (** where to route replies for non-loyal (adversary) identities *)
}

(** [au_state peer au] is the peer's state for that AU. *)
val au_state : t -> Ids.Au_id.t -> au_state

(** [node_of_identity ctx identity] resolves an identity to the node
    replies are sent to; loyal identities are their own node. *)
val node_of_identity : ctx -> Ids.Identity.t -> Narses.Topology.node

(** [register_identity ctx identity node] routes an adversary identity. *)
val register_identity : ctx -> Ids.Identity.t -> Narses.Topology.node -> unit

(** [fresh_poll_id peer] increments and returns the poll counter. *)
val fresh_poll_id : t -> int

(** [send ctx ~from ~to_node msg] transmits over the simulated network,
    computing the wire size from the config. *)
val send : ctx -> from:t -> to_node:Narses.Topology.node -> Message.t -> unit

(** [charge ctx ~who ~phase ?poller ?au ?poll_id ~work] records loyal
    effort that is too small to displace the schedule (verifications,
    considerations), attributed to the spender [who], the protocol
    [phase] and — when known — the [(poller, au, poll_id)] correlation
    key; every charge also emits a [Trace.Effort_charged] event so
    trace-derived ledgers reconcile with the {!Metrics} aggregates. *)
val charge :
  ctx ->
  who:Ids.Identity.t ->
  phase:Trace.effort_phase ->
  ?poller:Ids.Identity.t ->
  ?au:Ids.Au_id.t ->
  ?poll_id:int ->
  float ->
  unit

(** [charge_and_delay ctx peer ~phase ~au ~poll_id ~work] books [work]
    reference-seconds on the peer's schedule, charges it as loyal effort
    (attributed as {!charge} with [peer] as both spender and poller),
    and returns the completion time at which dependent actions should
    run. Only pollers displace their schedule, so the correlation key is
    always fully known here. *)
val charge_and_delay :
  ctx -> t -> phase:Trace.effort_phase -> au:Ids.Au_id.t -> poll_id:int -> work:float -> float

(** [charge_adversary ctx ~who ~phase ?poller ?au ?poll_id ~work] is
    {!charge} booked against the adversary's budget instead of the loyal
    population's. *)
val charge_adversary :
  ctx ->
  who:Ids.Identity.t ->
  phase:Trace.effort_phase ->
  ?poller:Ids.Identity.t ->
  ?au:Ids.Au_id.t ->
  ?poll_id:int ->
  float ->
  unit

(** [note_effort_received ctx ~peer ~from_ ~phase ~au ~poll_id ~seconds]
    emits a [Trace.Effort_received] event: [peer] verified a
    provable-effort proof worth [seconds] supplied by [from_]. Call it
    only after the proof actually verified (and only when effort
    balancing is enabled, so receipts mirror real proven work). *)
val note_effort_received :
  ctx ->
  peer:Ids.Identity.t ->
  from_:Ids.Identity.t ->
  phase:Trace.effort_phase ->
  au:Ids.Au_id.t ->
  poll_id:int ->
  seconds:float ->
  unit

(** {2 Protocol timer classes}

    Every protocol timer is scheduled under one of these {!Narses.Engine}
    event classes so the engine's per-class live counters can be
    cross-checked against owner state by the end-of-run leak audit
    ([Check.Leak]). *)

val cls_ack_timeout : Narses.Engine.cls
val cls_vote_timeout : Narses.Engine.cls
val cls_proof_timeout : Narses.Engine.cls
val cls_receipt_timeout : Narses.Engine.cls
val cls_repair_timeout : Narses.Engine.cls

(** [reject_message ctx peer ~from_ ~au ?poll_id ~msg_kind reason] emits
    a [Trace.Message_rejected] event: [peer] received a message claiming
    sender [from_] that failed handler validation and was dropped
    without touching protocol state. RNG- and charge-free, so rejecting
    never perturbs determinism. *)
val reject_message :
  ctx ->
  t ->
  from_:Ids.Identity.t ->
  au:Ids.Au_id.t ->
  ?poll_id:int ->
  msg_kind:string ->
  Trace.reject_reason ->
  unit

(** [session_key session] is the key the voter-session table uses. *)
val session_key : voter_session -> Ids.Identity.t * Ids.Au_id.t * int

(** Capacity of the recently-closed session memory (per peer). *)
val closed_session_capacity : int

(** [note_session_closed peer key] remembers that the voter session [key]
    has been handled to completion; the memory holds the most recent
    {!closed_session_capacity} keys. *)
val note_session_closed : t -> Ids.Identity.t * Ids.Au_id.t * int -> unit

(** [session_recently_closed peer key] is [true] when a duplicate Poll
    for [key] should be ignored rather than admitted as a new session. *)
val session_recently_closed : t -> Ids.Identity.t * Ids.Au_id.t * int -> bool

(** [fallback_identities peer au_state] lists peers suitable for topping
    up the reference list: non-debt known peers plus friends, minus
    self. *)
val fallback_identities : t -> au_state -> now:float -> Ids.Identity.t list
