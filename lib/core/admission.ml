module Rng = Repro_prelude.Rng

type drop_reason = Refractory | Random_drop | Known_rate_limited

type decision =
  | Admitted of [ `Known of Grade.t | `Unknown | `Introduced ]
  | Dropped of drop_reason

type t = {
  cfg : Config.t;
  intros : Introductions.t;
  mutable refractory_until : float;
  last_known_admission : (Ids.Identity.t, float) Hashtbl.t;
}

let create (cfg : Config.t) =
  {
    cfg;
    intros = Introductions.create ~max_outstanding:cfg.Config.max_outstanding_introductions;
    refractory_until = neg_infinity;
    last_known_admission = Hashtbl.create 16;
  }

let introductions t = t.intros
let in_refractory t ~now = now < t.refractory_until

let known_slot_free t ~now identity =
  match Hashtbl.find_opt t.last_known_admission identity with
  | None -> true
  | Some last -> now -. last >= t.cfg.Config.refractory_period

let last_admission t identity = Hashtbl.find_opt t.last_known_admission identity

(* Self-clocking gates *every* admission path: the refractory check runs
   first, so an introduced poller arriving inside the refractory window is
   dropped *without* consuming its introduction (it can retry once the
   window closes). Introductions bypass only the random drops, per the
   paper. Every admission — introduced, known, or unknown — re-arms the
   refractory window. *)
let consider t ~rng ~now ~known ~identity =
  let cfg = t.cfg in
  if not cfg.Config.admission_control_enabled then Admitted `Unknown
  else if in_refractory t ~now then Dropped Refractory
  else begin
    let admit ?(record = true) decision =
      t.refractory_until <- now +. cfg.Config.refractory_period;
      if record then Hashtbl.replace t.last_known_admission identity now;
      decision
    in
    if
      cfg.Config.introductions_enabled
      && Introductions.consume t.intros ~introducee:identity
    then admit (Admitted `Introduced)
    else begin
      match Known_peers.grade known ~now identity with
      | Some (Grade.Even | Grade.Credit) as graded ->
        let g = match graded with Some g -> g | None -> assert false in
        if known_slot_free t ~now identity then admit (Admitted (`Known g))
        else Dropped Known_rate_limited
      | (None | Some Grade.Debt) as graded ->
        let drop_probability =
          match graded with
          | None -> cfg.Config.drop_unknown
          | Some _ -> cfg.Config.drop_debt
        in
        if Rng.bernoulli rng drop_probability then Dropped Random_drop
        else
          admit ~record:false
            (match graded with
            | None -> Admitted `Unknown
            | Some g -> Admitted (`Known g))
      end
  end
