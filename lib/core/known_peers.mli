(** Per-AU known-peers list with first-hand reputation.

    "Each peer P maintains a known-peers list, separately for each AU it
    preserves. The list contains an entry for every peer that P has
    encountered in the past ... Entries decay with time toward the debt
    grade."

    Decay is applied lazily: an entry's effective grade at time [now] has
    one step toward debt applied per elapsed [decay_period] since the last
    explicit update. *)

type t

val create : decay_period:float -> t

(** [grade t ~now identity] is the effective grade, or [None] for a peer
    never encountered (an {e unknown} peer — treated more harshly than a
    known in-debt peer by admission control). *)
val grade : t -> now:float -> Ids.Identity.t -> Grade.t option

(** [raise_grade t ~now identity] records a reciprocation (e.g. the peer
    supplied a valid vote): one step toward credit from the current
    effective grade. Unknown peers enter at [Even] (debt raised once). *)
val raise_grade : t -> now:float -> Ids.Identity.t -> unit

(** [lower t ~now identity] records a consumption (e.g. we supplied the
    peer a vote): one step toward debt. Unknown peers enter at [Debt]. *)
val lower : t -> now:float -> Ids.Identity.t -> unit

(** [punish t ~now identity] records misbehaviour by forgetting the peer
    entirely: a misbehaver is treated as {e unknown} from then on, which
    admission control drops harder (0.90) than a known in-debt peer
    (0.80) — whitewashing by deserting buys nothing. *)
val punish : t -> now:float -> Ids.Identity.t -> unit

(** [set t ~now identity grade] forces an entry (used to seed adversary
    identities with a debt grade, and in tests). *)
val set : t -> now:float -> Ids.Identity.t -> Grade.t -> unit

(** [known t identity] ignores decay and reports whether the peer was ever
    encountered. *)
val known : t -> Ids.Identity.t -> bool

(** [entries t ~now] lists (identity, effective grade) pairs, ascending
    by identity. *)
val entries : t -> now:float -> (Ids.Identity.t * Grade.t) list

(** [good_ids t ~now ~excluding] is the ascending list of known peers
    whose effective grade is [Even] or [Credit], without [excluding]
    (the owner's own identity). *)
val good_ids : t -> now:float -> excluding:Ids.Identity.t -> Ids.Identity.t list
